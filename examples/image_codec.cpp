// Fixed-point JPEG-2000-style image codec walk-through: run the 2-level
// CDF 9/7 DWT codec on a synthetic texture at several word-lengths,
// compare measured PSNR against the PSNR predicted from the analytical
// noise estimate, and write the images for visual inspection.
//
// Run with --engine psd|moment to pick the analytical predictor (default:
// psd). The DWT is a multirate system, so the flat engine cannot apply,
// and the measured PSNR column *is* the simulation engine.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/accuracy_engine.hpp"
#include "core/metrics.hpp"
#include "example_common.hpp"
#include "fixedpoint/format.hpp"
#include "imaging/image.hpp"
#include "imaging/textures.hpp"
#include "support/table.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"

int main(int argc, char** argv) {
  using namespace psdacc;
  const core::EngineKind kind = examples::parse_engine_flag(argc, argv);
  if (kind != core::EngineKind::kPsd && kind != core::EngineKind::kMoment) {
    std::fprintf(stderr,
                 "--engine expects psd | moment here (the DWT codec is "
                 "multirate, so the flat engine does not apply; measured "
                 "PSNR already is the simulation)\n");
    return 2;
  }

  const std::size_t size = 128;
  const auto image =
      img::make_texture(img::TextureKind::kPowerLaw, size, size, 2026);
  img::write_pgm(image, "codec_input.pgm");
  std::printf("input: %zux%zu synthetic power-law texture "
              "(codec_input.pgm); predictor: %s engine\n\n",
              size, size, std::string(core::to_string(kind)).c_str());

  const auto reference = wav::dwt2d_roundtrip(image, 2, {});

  TextTable table({"frac bits d", "measured PSNR (dB)",
                   "predicted PSNR (dB)", "E_d"});
  for (int d : {6, 8, 10, 12, 16}) {
    const auto fmt = fxp::q_format(2, d);
    const auto fixed = wav::dwt2d_roundtrip(image, 2, fmt);
    const double measured_mse = img::mse(reference, fixed);
    const double measured_psnr = 10.0 * std::log10(1.0 / measured_mse);

    const wav::Dwt2dNoiseConfig cfg{.levels = 2, .format = fmt,
                                    .n_bins = 64, .quantize_input = true};
    const double predicted_mse =
        kind == core::EngineKind::kPsd
            ? wav::dwt2d_noise_psd(cfg).power()
            : wav::dwt2d_noise_power_moments(cfg);
    const double predicted_psnr = 10.0 * std::log10(1.0 / predicted_mse);

    table.add_row(
        {std::to_string(d), TextTable::num(measured_psnr, 4),
         TextTable::num(predicted_psnr, 4),
         TextTable::percent(core::mse_deviation(measured_mse,
                                                predicted_mse))});

    if (d == 6) {
      img::write_pgm(wav::align_reconstruction(fixed, 2),
                     "codec_output_d6.pgm");
    }
  }
  table.print();
  std::printf(
      "\nwrote codec_output_d6.pgm (coarsest setting, visible noise).\n"
      "The analytical PSNR prediction takes microseconds per word-length\n"
      "setting — fixed-point refinement of the codec never needs to run\n"
      "the image pipeline itself.\n");
  return 0;
}
