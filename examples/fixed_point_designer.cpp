// End-to-end fixed-point design walk-through: given a filter spec and a
// quality target, pick integer bits by range analysis, fractional bits by
// word-length optimization, compare realization forms, and export the
// final design's SFG as Graphviz DOT — the full design-automation loop
// the paper's fast accuracy evaluation enables.
//
// Run with --engine flat|moment|psd|simulation to pick the accuracy engine
// the optimizer probes with (default: psd). The moment backend shows how
// the PSD-agnostic baseline mis-sizes shaped-noise designs; the simulation
// backend shows why analytical engines exist (it is orders of magnitude
// slower per probe).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/accuracy_engine.hpp"
#include "core/metrics.hpp"
#include "core/range_analysis.hpp"
#include "example_common.hpp"
#include "filters/sos.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "sfg/dot.hpp"
#include "sfg/realizations.hpp"
#include "sim/error_measurement.hpp"
#include "support/table.hpp"

namespace {

using namespace psdacc;

filt::Zpk spec_filter() {
  // Spec: 6th-order Butterworth low-pass, cutoff 0.18, unit DC gain.
  const auto proto =
      filt::analog_prototype(filt::IirFamily::kButterworth, 6);
  const double wc = 2.0 * std::tan(3.141592653589793 * 0.18);
  auto digital = filt::bilinear(filt::lp_to_lp(proto, wc));
  filt::cplx dc(1.0, 0.0);
  for (const auto& z : digital.zeros) dc *= filt::cplx(1.0, 0.0) - z;
  for (const auto& p : digital.poles) dc /= filt::cplx(1.0, 0.0) - p;
  digital.gain = 1.0 / std::abs(dc);
  return digital;
}

}  // namespace

int main(int argc, char** argv) {
  const core::EngineKind kind = examples::parse_engine_flag(argc, argv);
  const auto zpk = spec_filter();
  const auto sections = filt::zpk_to_sos(zpk);
  std::printf("spec: Butterworth-6 low-pass, %zu biquad sections\n\n",
              sections.size());

  // Step 1 — integer bits from range analysis of the unquantized cascade.
  sfg::Graph probe;
  const auto pin = probe.add_input();
  auto head = pin;
  for (const auto& s : sections) head = probe.add_block(head, s.tf());
  probe.add_output(head);
  const auto ranges = core::analyze_ranges(probe, core::Range{-1.0, 1.0});
  int ibits = 2;
  for (sfg::NodeId id = 0; id < probe.node_count(); ++id)
    ibits = std::max(ibits, core::required_integer_bits(ranges[id]));
  std::printf("step 1: range analysis -> %d integer bits "
              "(worst node range [%.2f, %.2f])\n",
              ibits, ranges[probe.node_count() - 1].lo,
              ranges[probe.node_count() - 1].hi);

  // Step 2 — fractional bits from word-length optimization against a
  // 90 dB SQNR budget for a full-scale uniform input.
  const double signal_power = 1.0 / 3.0;  // uniform [-1, 1]
  const double budget = signal_power / 1e9;  // 90 dB
  auto g = sfg::build_cascade_form(sections,
                                   fxp::q_format(ibits, 20));
  std::vector<sfg::NodeId> variables = g.noise_sources();
  opt::OptimizerConfig cfg;
  cfg.noise_budget = budget;
  cfg.min_bits = 6;
  cfg.max_bits = 24;
  cfg.engine = kind;  // any AccuracyEngine can drive the same search
  cfg.engine_opts.sim_samples = 1u << 14;  // keep sim-backed probes sane
  opt::WordlengthOptimizer optimizer(g, variables, cfg);
  const auto result = optimizer.greedy_descent();
  std::printf(
      "step 2: word-length optimization -> cost %.0f fractional bits over "
      "%zu variables\n        (%zu %s-engine evaluations, est. noise %.3g "
      "vs budget %.3g)\n",
      result.cost, variables.size(), result.evaluations,
      std::string(core::to_string(kind)).c_str(), result.noise, budget);
  TextTable bits_table({"noise source", "fractional bits"});
  for (std::size_t v = 0; v < variables.size(); ++v)
    bits_table.add_row({std::string(g.node(variables[v]).name),
                        std::to_string(result.bits[v])});
  bits_table.print();

  // Step 3 — verify by simulation.
  sim::EvaluationConfig sim_cfg;
  sim_cfg.sim_samples = 1u << 17;
  sim_cfg.input_amplitude = 1.0;
  const auto report = sim::evaluate_accuracy(g, sim_cfg);
  std::printf(
      "\nstep 3: simulation check -> measured %.3g (psd E_d = %.2f%%, "
      "moment E_d = %.2f%%), SQNR %.1f dB\n",
      report.reference_power, 100.0 * report.ed(core::EngineKind::kPsd),
      100.0 * report.ed(core::EngineKind::kMoment),
      10.0 * std::log10(signal_power / report.reference_power));

  // Step 4 — export the final design for documentation.
  std::ofstream dot_file("fixed_point_design.dot");
  sfg::dot::to_dot(dot_file, g, "cascade6");
  std::printf(
      "\nstep 4: wrote fixed_point_design.dot (render with: dot -Tpng "
      "fixed_point_design.dot)\n");
  return 0;
}
