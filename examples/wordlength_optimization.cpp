// Word-length optimization — the use-case that motivates the paper.
//
// Fixed-point refinement searches for the cheapest per-block word-length
// assignment meeting an output-noise budget. The search evaluates
// thousands of candidate assignments, so evaluation speed decides whether
// the search is tractable: this example runs a classic greedy descent
// ("min +1 bit" / "max -1 bit") with the PSD analyzer as the inner-loop
// oracle, then verifies the final assignment by simulation.
#include <cstdio>
#include <vector>

#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace psdacc;

// A 4-stage channelizer-like chain; each stage has its own word-length.
struct Design {
  std::vector<int> frac_bits;  // per stage
};

sfg::Graph build(const Design& d) {
  sfg::Graph g;
  const auto in = g.add_input();
  auto head = g.add_quantizer(in, fxp::q_format(4, d.frac_bits[0]));
  head = g.add_block(head,
                     filt::iir_lowpass(filt::IirFamily::kButterworth, 4,
                                       0.22),
                     fxp::q_format(4, d.frac_bits[1]), "lp");
  head = g.add_block(head,
                     filt::TransferFunction(filt::fir_bandpass(63, 0.05,
                                                               0.20)),
                     fxp::q_format(4, d.frac_bits[2]), "bp");
  head = g.add_block(head,
                     filt::iir_highpass(filt::IirFamily::kChebyshev1, 3,
                                        0.04),
                     fxp::q_format(4, d.frac_bits[3]), "hp");
  g.add_output(head);
  return g;
}

double estimated_noise(const Design& d) {
  const auto g = build(d);
  return core::PsdAnalyzer(g, {.n_psd = 512}).output_noise_power();
}

// Hardware cost proxy: total fractional bits (linear in multiplier area).
int cost(const Design& d) {
  int acc = 0;
  for (int b : d.frac_bits) acc += b;
  return acc;
}

}  // namespace

int main() {
  // Noise budget: what a uniform 12-bit design would produce.
  const Design uniform{{12, 12, 12, 12}};
  const double budget = estimated_noise(uniform);
  std::printf("noise budget (uniform 12-bit design): %.4g, cost %d bits\n\n",
              budget, cost(uniform));

  // Greedy descent: start generous, repeatedly remove one bit from the
  // stage whose removal keeps the estimate within budget with the most
  // margin. Every probe is one fast PSD evaluation.
  Design current{{16, 16, 16, 16}};
  Stopwatch clock;
  int evaluations = 0;
  for (;;) {
    int best_stage = -1;
    double best_noise = 0.0;
    for (std::size_t s = 0; s < current.frac_bits.size(); ++s) {
      if (current.frac_bits[s] <= 4) continue;
      Design probe = current;
      --probe.frac_bits[s];
      const double noise = estimated_noise(probe);
      ++evaluations;
      if (noise <= budget &&
          (best_stage < 0 || noise < best_noise)) {
        best_stage = static_cast<int>(s);
        best_noise = noise;
      }
    }
    if (best_stage < 0) break;
    --current.frac_bits[static_cast<std::size_t>(best_stage)];
  }
  const double search_time = clock.seconds();

  TextTable table({"stage", "uniform bits", "optimized bits"});
  const char* names[] = {"input quant", "iir low-pass", "fir band-pass",
                         "cheby high-pass"};
  for (std::size_t s = 0; s < current.frac_bits.size(); ++s)
    table.add_row({names[s], std::to_string(uniform.frac_bits[s]),
                   std::to_string(current.frac_bits[s])});
  table.print();
  std::printf(
      "\ncost: %d -> %d fractional bits; %d PSD evaluations in %.2f s "
      "(%.2f ms each)\n",
      cost(uniform), cost(current), evaluations, search_time,
      1e3 * search_time / evaluations);

  // Verify the optimized design against simulation.
  const auto g = build(current);
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 18;
  const auto report = sim::evaluate_accuracy(g, cfg);
  std::printf(
      "\noptimized design: estimated %.4g, simulated %.4g (E_d = %.2f%%), "
      "budget %.4g\n",
      report.psd_power, report.simulated_power, 100.0 * report.psd_ed,
      budget);
  std::printf("within budget by simulation: %s\n",
              report.simulated_power <= 1.15 * budget ? "yes" : "NO");
  return 0;
}
