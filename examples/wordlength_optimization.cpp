// Word-length optimization — the use-case that motivates the paper.
//
// Fixed-point refinement searches for the cheapest per-block word-length
// assignment meeting an output-noise budget. The search evaluates
// thousands of candidate assignments, so evaluation speed decides whether
// the search is tractable. This example drives the full parallel runtime:
//
//   * opt::WordlengthOptimizer scores each iteration's candidate probes
//     concurrently (one PSD evaluation per free variable, one graph clone
//     per worker);
//   * runtime::BatchRunner then verifies the candidate designs against
//     Monte-Carlo simulation as one concurrent batch of scenarios.
//
// Run with --jobs N to choose the worker count (default: all cores).
// Results are bit-identical for any N; only the wall-clock changes.
// Run with --engine flat|moment|psd|simulation to pick the accuracy
// engine the optimizer probes with (default: psd) — the same search under
// a different backend is the paper's Table-II comparison turned into a
// search-quality experiment.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/accuracy_engine.hpp"
#include "example_common.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace psdacc;

// A 4-stage channelizer-like chain; each stage has its own word-length.
struct Design {
  sfg::Graph graph;
  std::vector<sfg::NodeId> variables;  // one per stage
};

Design build(const std::vector<int>& frac_bits) {
  Design d;
  const auto in = d.graph.add_input();
  auto head = d.graph.add_quantizer(in, fxp::q_format(4, frac_bits[0]));
  d.variables.push_back(head);
  head = d.graph.add_block(head,
                           filt::iir_lowpass(filt::IirFamily::kButterworth,
                                             4, 0.22),
                           fxp::q_format(4, frac_bits[1]), "lp");
  d.variables.push_back(head);
  head = d.graph.add_block(head,
                           filt::TransferFunction(filt::fir_bandpass(63, 0.05,
                                                                     0.20)),
                           fxp::q_format(4, frac_bits[2]), "bp");
  d.variables.push_back(head);
  head = d.graph.add_block(head,
                           filt::iir_highpass(filt::IirFamily::kChebyshev1,
                                              3, 0.04),
                           fxp::q_format(4, frac_bits[3]), "hp");
  d.variables.push_back(head);
  d.graph.add_output(head);
  return d;
}

int cost_of(const std::vector<int>& bits) {
  int acc = 0;
  for (int b : bits) acc += b;
  return acc;
}

std::size_t parse_jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) continue;
    const long n = i + 1 < argc ? std::atol(argv[i + 1]) : 0;
    if (n < 1 || n > 1024) {
      std::fprintf(stderr, "--jobs expects an integer in [1, 1024]\n");
      std::exit(2);
    }
    return static_cast<std::size_t>(n);
  }
  return runtime::hardware_workers();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = parse_jobs(argc, argv);
  const core::EngineKind kind = examples::parse_engine_flag(argc, argv);
  std::printf("workers: %zu (override with --jobs N), probe engine: %s\n\n",
              jobs, std::string(core::to_string(kind)).c_str());

  // Noise budget: what a uniform 12-bit design would produce, measured by
  // the same engine that will drive the search.
  const std::vector<int> uniform_bits{12, 12, 12, 12};
  auto uniform = build(uniform_bits);
  const double budget =
      core::make_engine(kind, uniform.graph,
                        {.n_psd = 512, .sim_samples = 1u << 14})
          ->output_noise_power();
  std::printf("noise budget (uniform 12-bit design): %.4g, cost %d bits\n\n",
              budget, cost_of(uniform_bits));

  // Greedy descent ("max -1 bit"): each iteration scores one candidate
  // probe per stage; the probes run concurrently on the worker pool.
  auto design = build({16, 16, 16, 16});
  opt::OptimizerConfig cfg;
  cfg.noise_budget = budget;
  cfg.min_bits = 4;
  cfg.max_bits = 16;
  cfg.n_psd = 512;
  cfg.workers = jobs;
  cfg.engine = kind;
  cfg.engine_opts.sim_samples = 1u << 14;  // for simulation-backed probes
  opt::WordlengthOptimizer optimizer(design.graph, design.variables, cfg);
  Stopwatch clock;
  const auto result = optimizer.greedy_descent();
  const double search_time = clock.seconds();

  TextTable table({"stage", "uniform bits", "optimized bits"});
  const char* names[] = {"input quant", "iir low-pass", "fir band-pass",
                         "cheby high-pass"};
  for (std::size_t s = 0; s < result.bits.size(); ++s)
    table.add_row({names[s], std::to_string(uniform_bits[s]),
                   std::to_string(result.bits[s])});
  table.print();
  std::printf(
      "\ncost: %d -> %.0f fractional bits; %zu %s-engine evaluations in "
      "%.3f s (%.0f evaluations/s)\n",
      cost_of(uniform_bits), result.cost, result.evaluations,
      std::string(core::to_string(kind)).c_str(), search_time,
      static_cast<double>(result.evaluations) / search_time);

  // Verify the candidate designs against simulation — one BatchRunner
  // sweep instead of one-at-a-time evaluate_accuracy calls.
  std::vector<runtime::BatchJob> scenarios;
  auto add_scenario = [&scenarios](std::string name, Design d) {
    runtime::BatchJob job;
    job.name = std::move(name);
    job.graph = std::move(d.graph);
    job.config.sim_samples = 1u << 18;
    job.config.shards = 8;  // sharded Monte-Carlo inside each scenario
    scenarios.push_back(std::move(job));
  };
  add_scenario("uniform-12", build(uniform_bits));
  add_scenario("optimized", build(result.bits));
  add_scenario("optimized+1", build([&] {
                 auto bits = result.bits;
                 for (int& b : bits) ++b;
                 return bits;
               }()));

  runtime::BatchRunner runner(jobs);
  clock.reset();
  const auto reports = runner.run(std::move(scenarios));
  const double batch_time = clock.seconds();

  TextTable verify({"scenario", "estimated", "simulated", "E_d", "time"});
  for (const auto& r : reports)
    verify.add_row(
        {r.name, TextTable::num(r.report.power(core::EngineKind::kPsd), 3),
         TextTable::num(r.report.reference_power, 3),
         TextTable::percent(r.report.ed(core::EngineKind::kPsd), 2),
         TextTable::num(r.seconds, 3) + " s"});
  std::printf("\n");
  verify.print();
  std::printf(
      "\nbatch: %zu scenarios in %.3f s (%.2f scenarios/s, workers %zu)\n",
      reports.size(), batch_time,
      static_cast<double>(reports.size()) / batch_time, jobs);
  std::printf("within budget by simulation: %s\n",
              reports[1].report.reference_power <= 1.15 * budget ? "yes"
                                                                 : "NO");
  return 0;
}
