// Quickstart: estimate the output quantization noise of a small fixed-point
// system with the proposed PSD method, and check it against Monte-Carlo
// simulation — the 60-second tour of the psdacc API.
//
//   system: x --Q(d)--> [IIR low-pass, quantized] --> [FIR high-pass,
//           quantized] --> y
#include <cstdio>

#include "core/metrics.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "runtime/batch_runner.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"

int main() {
  using namespace psdacc;

  // 1. Pick a fixed-point format: signed, 4 integer bits, 12 fractional
  //    bits, round-to-nearest, saturating.
  const auto fmt = fxp::q_format(4, 12);
  std::printf("format: %s, step %.3g\n", fmt.to_string().c_str(),
              fmt.step());

  // 2. Describe the system as a signal-flow graph. Quantizers and
  //    quantized blocks are the noise sources (Eq. 10 of the paper).
  sfg::Graph g;
  const auto in = g.add_input("x");
  const auto q_in = g.add_quantizer(in, fmt, "input quantizer");
  const auto lp = g.add_block(
      q_in, filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2), fmt,
      "butterworth lp");
  const auto hp = g.add_block(
      lp, filt::TransferFunction(filt::fir_highpass(31, 0.05)), fmt,
      "fir hp");
  g.add_output(hp, "y");

  // 3. Analytical estimate: one preprocessing pass (block responses on the
  //    N_PSD grid), then an O(N) propagation sweep per evaluation.
  core::PsdAnalyzer psd(g, {.n_psd = 1024});
  const auto spectrum = psd.output_spectrum();
  std::printf("estimated noise power (PSD method):    %.6g\n",
              spectrum.power());

  // The PSD-agnostic baseline for comparison.
  core::MomentAnalyzer moments(g);
  std::printf("estimated noise power (PSD-agnostic):  %.6g\n",
              moments.output_noise_power());

  // 4. Monte-Carlo reference: run the graph in double and fixed-point and
  //    measure the output difference.
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 18;
  const auto report = sim::evaluate_accuracy(g, cfg);
  std::printf("simulated noise power:                 %.6g\n",
              report.simulated_power);
  std::printf("E_d (proposed) = %.2f%%   E_d (agnostic) = %.2f%%\n",
              100.0 * report.psd_ed, 100.0 * report.moment_ed);

  // 5. The estimated spectrum itself (the information scalar methods lose).
  std::printf("\nestimated error PSD (8 of %zu bins, f = k/N):\n",
              spectrum.size());
  for (std::size_t k = 0; k < spectrum.size() / 2;
       k += spectrum.size() / 16)
    std::printf("  f = %5.3f : %.3g\n",
                static_cast<double>(k) / static_cast<double>(spectrum.size()),
                spectrum.bin(k));

  // 6. Scale out: sweep word-length variants of the same system as one
  //    concurrent batch. Reports come back in job order and are
  //    bit-identical for any worker count.
  std::vector<runtime::BatchJob> jobs;
  for (const int bits : {8, 12, 16}) {
    runtime::BatchJob job;
    job.name = "Q4.";
    job.name += std::to_string(bits);
    sfg::Graph variant;
    const auto vfmt = fxp::q_format(4, bits);
    const auto vin = variant.add_input("x");
    const auto vq = variant.add_quantizer(vin, vfmt, "input quantizer");
    const auto vlp = variant.add_block(
        vq, filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2), vfmt,
        "butterworth lp");
    const auto vhp = variant.add_block(
        vlp, filt::TransferFunction(filt::fir_highpass(31, 0.05)), vfmt,
        "fir hp");
    variant.add_output(vhp, "y");
    job.graph = std::move(variant);
    job.config.sim_samples = 1u << 16;
    jobs.push_back(std::move(job));
  }
  runtime::BatchRunner runner;  // one worker per core
  std::printf("\nbatch sweep over word-lengths (workers: %zu):\n",
              runner.pool().workers());
  for (const auto& r : runner.run(jobs))
    std::printf("  %s : estimated %.3g, simulated %.3g (%.3f s)\n",
                r.name.c_str(), r.report.psd_power,
                r.report.simulated_power, r.seconds);
  return 0;
}
