// Quickstart: estimate the output quantization noise of a small fixed-point
// system through the unified core::AccuracyEngine interface, and check the
// analytical engines against Monte-Carlo simulation — the 60-second tour of
// the psdacc API.
//
//   system: x --Q(d)--> [IIR low-pass, quantized] --> [FIR high-pass,
//           quantized] --> y
//
// Run with --engine flat|moment|psd|simulation to pick which engine the
// walk-through spotlights (default: psd, the paper's proposed method).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/accuracy_engine.hpp"
#include "example_common.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "runtime/batch_runner.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"

int main(int argc, char** argv) {
  using namespace psdacc;
  const core::EngineKind kind = examples::parse_engine_flag(argc, argv);

  // 1. Pick a fixed-point format: signed, 4 integer bits, 12 fractional
  //    bits, round-to-nearest, saturating.
  const auto fmt = fxp::q_format(4, 12);
  std::printf("format: %s, step %.3g\n", fmt.to_string().c_str(),
              fmt.step());

  // 2. Describe the system as a signal-flow graph. Quantizers and
  //    quantized blocks are the noise sources (Eq. 10 of the paper).
  sfg::Graph g;
  const auto in = g.add_input("x");
  const auto q_in = g.add_quantizer(in, fmt, "input quantizer");
  const auto lp = g.add_block(
      q_in, filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2), fmt,
      "butterworth lp");
  const auto hp = g.add_block(
      lp, filt::TransferFunction(filt::fir_highpass(31, 0.05)), fmt,
      "fir hp");
  g.add_output(hp, "y");

  // 3. One factory call binds any accuracy engine to the graph. For the
  //    analytical engines construction is the one-time preprocessing pass
  //    (tau_pp) and each evaluation is a cheap sweep (tau_eval).
  auto engine = core::make_engine(kind, g, {.n_psd = 1024,
                                            .sim_samples = 1u << 18});
  std::printf("estimated noise power (%s engine): %.6g\n",
              std::string(engine->name()).c_str(),
              engine->output_noise_power());

  // 4. Compare every engine against the Monte-Carlo reference in one call:
  //    the report is keyed by engine, with per-engine tau_pp / tau_eval.
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 18;
  const auto report = sim::evaluate_accuracy(g, cfg);
  std::printf("\n%-12s %-12s %-8s %-11s %s\n", "engine", "power", "E_d",
              "tau_pp (s)", "tau_eval (s)");
  for (const auto& est : report.estimates)
    std::printf("%-12s %-12.4g %6.2f%% %-11.3g %.3g\n", est.name.c_str(),
                est.power, 100.0 * est.ed, est.tau_pp, est.tau_eval);

  // 5. The estimated spectrum itself (the information scalar methods
  //    lose). Engines advertise what they can do instead of hard-coding
  //    per-method special cases.
  if (engine->capabilities().spectrum) {
    const auto spectrum = engine->output_spectrum();
    std::printf("\nestimated error PSD (8 of %zu bins, f = k/N):\n",
                spectrum.size());
    for (std::size_t k = 0; k < spectrum.size() / 2;
         k += spectrum.size() / 16)
      std::printf("  f = %5.3f : %.3g\n",
                  static_cast<double>(k) /
                      static_cast<double>(spectrum.size()),
                  spectrum.bin(k));
  } else {
    std::printf("\n(%s engine has no spectrum: capabilities().spectrum is "
                "false)\n",
                std::string(engine->name()).c_str());
  }

  // 6. Scale out: sweep word-length variants of the same system as one
  //    concurrent batch. Jobs are moved, never copied; reports come back
  //    in job order and are bit-identical for any worker count.
  std::vector<runtime::BatchJob> jobs;
  for (const int bits : {8, 12, 16}) {
    runtime::BatchJob job;
    job.name = "Q4." + std::to_string(bits);
    sfg::Graph variant;
    const auto vfmt = fxp::q_format(4, bits);
    const auto vin = variant.add_input("x");
    const auto vq = variant.add_quantizer(vin, vfmt, "input quantizer");
    const auto vlp = variant.add_block(
        vq, filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2), vfmt,
        "butterworth lp");
    const auto vhp = variant.add_block(
        vlp, filt::TransferFunction(filt::fir_highpass(31, 0.05)), vfmt,
        "fir hp");
    variant.add_output(vhp, "y");
    job.graph = std::move(variant);
    job.config.sim_samples = 1u << 16;
    job.config.engines = {core::EngineKind::kSimulation};
    if (kind != core::EngineKind::kSimulation)
      job.config.engines.push_back(kind);
    jobs.push_back(std::move(job));
  }
  runtime::BatchRunner runner;  // one worker per core
  std::printf("\nbatch sweep over word-lengths (workers: %zu):\n",
              runner.pool().workers());
  for (const auto& r : runner.run(std::move(jobs)))
    std::printf("  %s : estimated %.3g, simulated %.3g (%.3f s)\n",
                r.name.c_str(), r.report.power(kind),
                r.report.reference_power, r.seconds);
  return 0;
}
