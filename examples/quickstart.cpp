// Quickstart: estimate the output quantization noise of a small fixed-point
// system with the proposed PSD method, and check it against Monte-Carlo
// simulation — the 60-second tour of the psdacc API.
//
//   system: x --Q(d)--> [IIR low-pass, quantized] --> [FIR high-pass,
//           quantized] --> y
#include <cstdio>

#include "core/metrics.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"

int main() {
  using namespace psdacc;

  // 1. Pick a fixed-point format: signed, 4 integer bits, 12 fractional
  //    bits, round-to-nearest, saturating.
  const auto fmt = fxp::q_format(4, 12);
  std::printf("format: %s, step %.3g\n", fmt.to_string().c_str(),
              fmt.step());

  // 2. Describe the system as a signal-flow graph. Quantizers and
  //    quantized blocks are the noise sources (Eq. 10 of the paper).
  sfg::Graph g;
  const auto in = g.add_input("x");
  const auto q_in = g.add_quantizer(in, fmt, "input quantizer");
  const auto lp = g.add_block(
      q_in, filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2), fmt,
      "butterworth lp");
  const auto hp = g.add_block(
      lp, filt::TransferFunction(filt::fir_highpass(31, 0.05)), fmt,
      "fir hp");
  g.add_output(hp, "y");

  // 3. Analytical estimate: one preprocessing pass (block responses on the
  //    N_PSD grid), then an O(N) propagation sweep per evaluation.
  core::PsdAnalyzer psd(g, {.n_psd = 1024});
  const auto spectrum = psd.output_spectrum();
  std::printf("estimated noise power (PSD method):    %.6g\n",
              spectrum.power());

  // The PSD-agnostic baseline for comparison.
  core::MomentAnalyzer moments(g);
  std::printf("estimated noise power (PSD-agnostic):  %.6g\n",
              moments.output_noise_power());

  // 4. Monte-Carlo reference: run the graph in double and fixed-point and
  //    measure the output difference.
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 18;
  const auto report = sim::evaluate_accuracy(g, cfg);
  std::printf("simulated noise power:                 %.6g\n",
              report.simulated_power);
  std::printf("E_d (proposed) = %.2f%%   E_d (agnostic) = %.2f%%\n",
              100.0 * report.psd_ed, 100.0 * report.moment_ed);

  // 5. The estimated spectrum itself (the information scalar methods lose).
  std::printf("\nestimated error PSD (8 of %zu bins, f = k/N):\n",
              spectrum.size());
  for (std::size_t k = 0; k < spectrum.size() / 2;
       k += spectrum.size() / 16)
    std::printf("  f = %5.3f : %.3g\n",
                static_cast<double>(k) / static_cast<double>(spectrum.size()),
                spectrum.bin(k));
  return 0;
}
