// Fixed-point accuracy analysis of a three-band audio equalizer — a
// realistic parallel topology (band-split, per-band gains, recombination
// adder) where noises from different branches meet at an adder and the
// output error spectrum matters perceptually (hiss vs rumble).
//
// Run with --engine flat|moment|psd|simulation to pick the accuracy engine
// producing the estimates (default: psd).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/accuracy_engine.hpp"
#include "core/metrics.hpp"
#include "example_common.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"
#include "support/table.hpp"

namespace {

using namespace psdacc;

// Crossovers at 0.06 and 0.22 cycles/sample (e.g. ~2.6 kHz / ~9.7 kHz at
// 44.1 kHz), gains in dB per band.
sfg::Graph build_equalizer(int d, double low_db, double mid_db,
                           double high_db) {
  const auto fmt = fxp::q_format(4, d);
  auto db = [](double g) { return std::pow(10.0, g / 20.0); };

  sfg::Graph g;
  const auto in = g.add_input("audio");
  const auto q = g.add_quantizer(in, fmt, "adc");

  const auto low = g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.06), fmt,
      "low band");
  const auto low_g = g.add_gain(low, db(low_db), "low gain");

  const auto mid = g.add_block(
      q, filt::TransferFunction(filt::fir_bandpass(63, 0.06, 0.22)), fmt,
      "mid band");
  const auto mid_g = g.add_gain(mid, db(mid_db), "mid gain");

  const auto high = g.add_block(
      q, filt::iir_highpass(filt::IirFamily::kButterworth, 4, 0.22), fmt,
      "high band");
  const auto high_g = g.add_gain(high, db(high_db), "high gain");

  const auto mix = g.add_adder({low_g, mid_g, high_g}, "mix");
  const auto q_out = g.add_quantizer(mix, fmt, "dac");
  g.add_output(q_out);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  const core::EngineKind kind = examples::parse_engine_flag(argc, argv);
  std::printf(
      "three-band equalizer (bass +6 dB, mid 0 dB, treble -3 dB):\n"
      "output noise vs data word-length, %s engine\n\n",
      std::string(core::to_string(kind)).c_str());

  TextTable table({"frac bits d", "est. noise power", "SQNR (dB)",
                   "E_d vs sim"});
  for (int d : {8, 10, 12, 16, 20}) {
    const auto g = build_equalizer(d, 6.0, 0.0, -3.0);
    sim::EvaluationConfig cfg;
    cfg.sim_samples = 1u << 17;
    cfg.seed = static_cast<std::uint64_t>(d);
    cfg.engines = {core::EngineKind::kSimulation};
    if (kind != core::EngineKind::kSimulation) cfg.engines.push_back(kind);
    const auto report = sim::evaluate_accuracy(g, cfg);
    const double est = report.power(kind);

    // Signal power of a full-scale uniform input ~ a^2/3 through the EQ;
    // use the simulated reference output power as the signal reference.
    const double sqnr =
        10.0 * std::log10((0.9 * 0.9 / 3.0) / est);
    table.add_row({std::to_string(d), TextTable::num(est, 4),
                   TextTable::num(sqnr, 4),
                   TextTable::percent(report.ed(kind))});
  }
  table.print();

  // Where does the error live spectrally? (d = 12)
  const auto g = build_equalizer(12, 6.0, 0.0, -3.0);
  auto engine = core::make_engine(kind, g, {.n_psd = 64,
                                            .sim_samples = 1u << 16});
  if (!engine->capabilities().spectrum) {
    std::printf(
        "\n(%s engine has no spectrum — rerun with --engine psd, flat, or\n"
        " simulation to see where the error lives across the band.)\n",
        std::string(engine->name()).c_str());
    return 0;
  }
  const auto spec = engine->output_spectrum();
  std::printf("\nerror PSD across the band (d = 12), 0..Nyquist:\n");
  double peak = 0.0;
  for (std::size_t k = 0; k < spec.size() / 2; ++k)
    peak = std::max(peak, spec.bin(k));
  for (std::size_t k = 0; k < spec.size() / 2; k += 2) {
    const int bars =
        static_cast<int>(std::round(40.0 * spec.bin(k) / peak));
    std::printf("  f=%5.3f |%.*s\n",
                static_cast<double>(k) / static_cast<double>(spec.size()),
                bars,
                "########################################");
  }
  std::printf(
      "\n(the bass band's +6 dB gain amplifies its branch noise: the hiss\n"
      " floor is strongest at low frequency — exactly the insight scalar\n"
      " noise-power methods cannot provide.)\n");
  return 0;
}
