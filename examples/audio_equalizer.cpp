// Fixed-point accuracy analysis of a three-band audio equalizer — a
// realistic parallel topology (band-split, per-band gains, recombination
// adder) where noises from different branches meet at an adder and the
// output error spectrum matters perceptually (hiss vs rumble).
#include <cmath>
#include <cstdio>

#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"
#include "support/table.hpp"

namespace {

using namespace psdacc;

// Crossovers at 0.06 and 0.22 cycles/sample (e.g. ~2.6 kHz / ~9.7 kHz at
// 44.1 kHz), gains in dB per band.
sfg::Graph build_equalizer(int d, double low_db, double mid_db,
                           double high_db) {
  const auto fmt = fxp::q_format(4, d);
  auto db = [](double g) { return std::pow(10.0, g / 20.0); };

  sfg::Graph g;
  const auto in = g.add_input("audio");
  const auto q = g.add_quantizer(in, fmt, "adc");

  const auto low = g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.06), fmt,
      "low band");
  const auto low_g = g.add_gain(low, db(low_db), "low gain");

  const auto mid = g.add_block(
      q, filt::TransferFunction(filt::fir_bandpass(63, 0.06, 0.22)), fmt,
      "mid band");
  const auto mid_g = g.add_gain(mid, db(mid_db), "mid gain");

  const auto high = g.add_block(
      q, filt::iir_highpass(filt::IirFamily::kButterworth, 4, 0.22), fmt,
      "high band");
  const auto high_g = g.add_gain(high, db(high_db), "high gain");

  const auto mix = g.add_adder({low_g, mid_g, high_g}, "mix");
  const auto q_out = g.add_quantizer(mix, fmt, "dac");
  g.add_output(q_out);
  return g;
}

}  // namespace

int main() {
  std::printf(
      "three-band equalizer (bass +6 dB, mid 0 dB, treble -3 dB):\n"
      "output noise vs data word-length\n\n");

  TextTable table({"frac bits d", "est. noise power", "SQNR (dB)",
                   "E_d vs sim"});
  for (int d : {8, 10, 12, 16, 20}) {
    const auto g = build_equalizer(d, 6.0, 0.0, -3.0);
    core::PsdAnalyzer psd(g, {.n_psd = 1024});
    const double est = psd.output_noise_power();

    sim::EvaluationConfig cfg;
    cfg.sim_samples = 1u << 17;
    cfg.seed = static_cast<std::uint64_t>(d);
    const auto report = sim::evaluate_accuracy(g, cfg);

    // Signal power of a full-scale uniform input ~ a^2/3 through the EQ;
    // use the simulated reference output power as the signal reference.
    const double sqnr =
        10.0 * std::log10((0.9 * 0.9 / 3.0) / est);
    table.add_row({std::to_string(d), TextTable::num(est, 4),
                   TextTable::num(sqnr, 4),
                   TextTable::percent(report.psd_ed)});
  }
  table.print();

  // Where does the error live spectrally? (d = 12)
  const auto g = build_equalizer(12, 6.0, 0.0, -3.0);
  core::PsdAnalyzer psd(g, {.n_psd = 64});
  const auto spec = psd.output_spectrum();
  std::printf("\nerror PSD across the band (d = 12), 0..Nyquist:\n");
  double peak = 0.0;
  for (std::size_t k = 0; k < spec.size() / 2; ++k)
    peak = std::max(peak, spec.bin(k));
  for (std::size_t k = 0; k < spec.size() / 2; k += 2) {
    const int bars =
        static_cast<int>(std::round(40.0 * spec.bin(k) / peak));
    std::printf("  f=%5.3f |%.*s\n",
                static_cast<double>(k) / static_cast<double>(spec.size()),
                bars,
                "########################################");
  }
  std::printf(
      "\n(the bass band's +6 dB gain amplifies its branch noise: the hiss\n"
      " floor is strongest at low frequency — exactly the insight scalar\n"
      " noise-power methods cannot provide.)\n");
  return 0;
}
