// Shared argv helpers for the example binaries (included relative to this
// directory, like bench/bench_common.hpp for the benchmarks).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/accuracy_engine.hpp"

namespace psdacc::examples {

/// The accuracy engine selected by "--engine <name>" (default: psd, the
/// paper's proposed method). Exits with a usage error on unknown names.
inline core::EngineKind parse_engine_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine") != 0) continue;
    if (i + 1 < argc)
      if (const auto kind = core::parse_engine_kind(argv[i + 1]))
        return *kind;
    std::fprintf(stderr,
                 "--engine expects flat | moment | psd | simulation\n");
    std::exit(2);
  }
  return core::EngineKind::kPsd;
}

}  // namespace psdacc::examples
