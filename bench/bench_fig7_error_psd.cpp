// Fig. 7 of the paper: 2-D frequency repartition of the fixed-point error
// after 2-level DWT encoding+decoding with d = 12, comparing intensive
// simulation against the PSD estimate. Writes two log-normalized PGM
// images (center = DC, borders = high frequency, as in the paper) and
// prints a quantitative shape-agreement score.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "dsp/fft.hpp"
#include "imaging/image.hpp"
#include "imaging/textures.hpp"
#include "support/table.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"

namespace {

using namespace psdacc;

// 2-D periodogram of an error image, accumulated over the corpus; returns
// an n x n grid (frequencies k/n per axis).
std::vector<double> accumulate_error_psd(std::size_t n, std::size_t images,
                                         const fxp::FixedPointFormat& fmt) {
  std::vector<double> acc(n * n, 0.0);
  const auto bank = img::texture_bank(images, n, n, 1234);
  for (const auto& im : bank) {
    const auto ref = wav::dwt2d_roundtrip(im, 2, {});
    const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
    // Row-column 2-D FFT of the error image.
    std::vector<std::vector<dsp::cplx>> field(
        n, std::vector<dsp::cplx>(n));
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        field[r][c] = dsp::cplx(fx.at(r, c) - ref.at(r, c), 0.0);
    for (std::size_t r = 0; r < n; ++r) dsp::fft(field[r]);
    std::vector<dsp::cplx> col(n);
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t r = 0; r < n; ++r) col[r] = field[r][c];
      dsp::fft(col);
      for (std::size_t r = 0; r < n; ++r) field[r][c] = col[r];
    }
    const double scale = 1.0 / (static_cast<double>(n * n) *
                                static_cast<double>(n * n));
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c)
        acc[r * n + c] += std::norm(field[r][c]) * scale;
  }
  for (double& v : acc) v /= static_cast<double>(images);
  return acc;
}

// fftshift + log-normalize into an Image for PGM output (paper's
// black-to-white rendering, DC at the center).
img::Image render_log(const std::vector<double>& psd, std::size_t n) {
  img::Image out(n, n);
  double lo = 1e300, hi = -1e300;
  for (double v : psd) {
    const double l = std::log10(v + 1e-30);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      const std::size_t rs = (r + n / 2) % n;
      const std::size_t cs = (c + n / 2) % n;
      const double l = std::log10(psd[r * n + c] + 1e-30);
      out.at(rs, cs) = (l - lo) / std::max(hi - lo, 1e-12);
    }
  return out;
}

// Pearson correlation of the log-PSDs — the shape-match score.
double log_correlation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  const std::size_t n = a.size();
  double ma = 0.0, mb = 0.0;
  std::vector<double> la(n), lb(n);
  for (std::size_t i = 0; i < n; ++i) {
    la[i] = std::log10(a[i] + 1e-30);
    lb[i] = std::log10(b[i] + 1e-30);
    ma += la[i];
    mb += lb[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (la[i] - ma) * (lb[i] - mb);
    da += (la[i] - ma) * (la[i] - ma);
    db += (lb[i] - mb) * (lb[i] - mb);
  }
  return num / std::sqrt(da * db);
}

}  // namespace

int main() {
  const std::size_t n = 64;
  const std::size_t images = bench::sim_samples(12);
  const int d = 12;
  const auto fmt = fxp::q_format(4, d);
  std::printf(
      "== Fig. 7: 2-D frequency repartition of the DWT fixed-point error "
      "==\n   (d = %d, 2 levels, %zu synthetic images, %zux%zu grid)\n\n",
      d, images, n, n);

  const auto sim_psd = accumulate_error_psd(n, images, fmt);

  const wav::Dwt2dNoiseConfig cfg{
      .levels = 2, .format = fmt, .n_bins = n, .quantize_input = true};
  const auto est = wav::dwt2d_noise_psd(cfg);
  std::vector<double> est_psd(n * n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      est_psd[r * n + c] = est.bin(r, c);
  est_psd[0] += est.mean() * est.mean();

  img::write_pgm(render_log(sim_psd, n), "fig7_simulation.pgm");
  img::write_pgm(render_log(est_psd, n), "fig7_estimation.pgm");
  std::printf("wrote fig7_simulation.pgm and fig7_estimation.pgm\n");

  double sim_total = 0.0, est_total = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    sim_total += sim_psd[i];
    est_total += est_psd[i];
  }
  TextTable table({"quantity", "simulation", "PSD estimate"});
  table.add_row({"total error power", TextTable::num(sim_total, 4),
                 TextTable::num(est_total, 4)});
  table.print();
  std::printf("\nE_d (total power): %s\n",
              TextTable::percent(core::mse_deviation(sim_total, est_total))
                  .c_str());
  std::printf("log-PSD shape correlation (1.0 = identical): %.3f\n",
              log_correlation(sim_psd, est_psd));
  return 0;
}
