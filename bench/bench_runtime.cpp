// Thread-scaling benchmarks of the parallel evaluation runtime: the
// optimizer's concurrent candidate probes, the BatchRunner scenario
// driver, and sharded Monte-Carlo measurement, each swept over worker
// counts. Real time (not CPU time) is the quantity of interest: the work
// is fixed, the wall-clock should shrink with workers.
//
// Record results in docs/PERFORMANCE.md together with the core count of
// the machine that produced them — scaling numbers from a 1-core CI
// container are parity checks, not speedups.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"

namespace {

using namespace psdacc;

struct BenchSystem {
  sfg::Graph graph;
  std::vector<sfg::NodeId> variables;
};

// A chain of quantized stages; every stage is one free word-length
// variable, so each optimizer iteration scores `stages` candidate probes —
// the parallel width the thread pool exploits.
BenchSystem make_chain(int stages) {
  BenchSystem s;
  auto head = s.graph.add_input();
  head = s.graph.add_quantizer(head, fxp::q_format(4, 12));
  s.variables.push_back(head);
  for (int i = 0; i < stages; ++i) {
    head = s.graph.add_block(
        head,
        i % 2 == 0
            ? filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.35)
            : filt::TransferFunction(filt::fir_highpass(15, 0.02)),
        fxp::q_format(4, 12));
    s.variables.push_back(head);
  }
  s.graph.add_output(head);
  return s;
}

void greedy_descent_bench(benchmark::State& state, bool incremental) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  // Pool hoisted out of the timed loop: thread spawn and the workers'
  // thread-local FFT plan caches are one-time costs a real search
  // amortizes, not part of one descent.
  runtime::ThreadPool pool(workers);
  for (auto _ : state) {
    auto sys = make_chain(7);
    opt::OptimizerConfig cfg;
    cfg.noise_budget = 1e-7;
    cfg.min_bits = 4;
    cfg.max_bits = 20;
    cfg.n_psd = 1024;
    cfg.pool = &pool;
    cfg.incremental = incremental;
    opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
    const auto result = optimizer.greedy_descent();
    benchmark::DoNotOptimize(result);
  }
}

// Full-probe search: every probe is one O(nodes x N) propagation sweep.
// Kept on the full path explicitly so the thread-scaling parity quantity
// stays comparable across baselines now that delta probing is the
// optimizer default.
void BM_GreedyDescent(benchmark::State& state) {
  greedy_descent_bench(state, /*incremental=*/false);
}
BENCHMARK(BM_GreedyDescent)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Delta-probe search (the default config): probes re-derive one source's
// contribution and combine the rest from the per-worker context caches.
// The absolute gap to BM_GreedyDescent is the incremental win; across
// worker counts it doubles as a parity check that near-free probes do not
// drown in scheduling overhead.
void BM_GreedyDescentDelta(benchmark::State& state) {
  greedy_descent_bench(state, /*incremental=*/true);
}
BENCHMARK(BM_GreedyDescentDelta)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_BatchEvaluate(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::vector<runtime::BatchJob> jobs;
  for (int bits = 6; bits < 18; ++bits) {
    runtime::BatchJob job;
    // snprintf instead of string concatenation: the assign+append forms
    // trip a GCC 12 -Wrestrict false positive when inlined here.
    char name[16];
    std::snprintf(name, sizeof name, "q%d", bits);
    job.name = name;
    job.graph = make_chain(4).graph;
    job.config.sim_samples = 1u << 14;
    job.config.discard = 256;
    job.config.n_psd = 512;
    job.config.seed = static_cast<std::uint64_t>(bits);
    jobs.push_back(std::move(job));
  }
  runtime::BatchRunner runner(workers);
  for (auto _ : state) {
    const auto results = runner.run(jobs);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(BM_BatchEvaluate)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ShardedMonteCarlo(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto sys = make_chain(4);
  sim::ShardedErrorConfig cfg;
  cfg.total_samples = 1u << 17;
  cfg.shards = 16;  // fixed decomposition: results identical for any worker count
  cfg.discard = 256;
  cfg.keep_signal = false;
  runtime::ThreadPool pool(workers);
  for (auto _ : state) {
    const auto m = sim::measure_output_error_sharded(sys.graph, cfg, &pool);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_ShardedMonteCarlo)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
