// Ablation A4: realization-form roundoff noise (Jackson 1970, the paper's
// reference [10]) — the same H(z) realized as direct form, cascade of
// biquads, and parallel sections produces different output quantization
// noise; the PSD engine predicts each and simulation confirms it.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/flat_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/sos.hpp"
#include "sfg/realizations.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"
#include "support/table.hpp"

namespace {

using namespace psdacc;

filt::Zpk normalized_lowpass(filt::IirFamily family, int order,
                             double cutoff) {
  const auto proto = filt::analog_prototype(family, order);
  const double wc = 2.0 * std::tan(3.141592653589793 * cutoff);
  auto digital = filt::bilinear(filt::lp_to_lp(proto, wc));
  filt::cplx dc(1.0, 0.0);
  for (const auto& z : digital.zeros) dc *= filt::cplx(1.0, 0.0) - z;
  for (const auto& p : digital.poles) dc /= filt::cplx(1.0, 0.0) - p;
  digital.gain = 1.0 / std::abs(dc);
  return digital;
}

struct FormResult {
  double estimated = 0.0;
  double flat = 0.0;
  double simulated = 0.0;
  double ed = 0.0;
  double ed_flat = 0.0;
};

FormResult measure(const sfg::Graph& g, std::size_t samples,
                   std::uint64_t seed) {
  FormResult r;
  r.estimated = core::PsdAnalyzer(g, {.n_psd = 1024}).output_noise_power();
  r.flat = core::FlatAnalyzer(g, 1024).output_noise_power();
  Xoshiro256 rng(seed);
  const auto x = uniform_signal(samples, 0.4, rng);
  r.simulated = sim::measure_output_error(g, x, 1024).power;
  r.ed = core::mse_deviation(r.simulated, r.estimated);
  r.ed_flat = core::mse_deviation(r.simulated, r.flat);
  return r;
}

}  // namespace

int main() {
  const std::size_t samples = bench::sim_samples(1u << 17);
  const auto fmt = fxp::q_format(4, 14);
  std::printf(
      "== Ablation A4: realization forms of the same H(z) "
      "(Jackson-style) ==\n"
      "   (d = 14, %zu samples; noise power in units of q^2 = 2^-28)\n\n",
      samples);
  const double q2 = fmt.step() * fmt.step();

  TextTable table({"filter", "form", "est/q^2", "sim/q^2", "Ed psd",
                   "Ed flat"});
  struct Case {
    const char* name;
    filt::IirFamily family;
    int order;
    double cutoff;
  };
  for (const Case& c :
       {Case{"butter6@0.20", filt::IirFamily::kButterworth, 6, 0.20},
        Case{"cheby5@0.12", filt::IirFamily::kChebyshev1, 5, 0.12}}) {
    const auto zpk = normalized_lowpass(c.family, c.order, c.cutoff);
    auto b = filt::poly_from_roots(zpk.zeros);
    for (auto& coef : b) coef *= zpk.gain;
    const filt::TransferFunction tf(std::move(b),
                                    filt::poly_from_roots(zpk.poles));

    const auto direct = measure(sfg::build_direct_form(tf, fmt), samples,
                                11);
    const auto cascade = measure(
        sfg::build_cascade_form(filt::zpk_to_sos(zpk), fmt), samples, 12);
    const auto parallel = measure(
        sfg::build_parallel_form(filt::zpk_to_parallel(zpk), fmt), samples,
        13);

    for (const auto& [form, r] :
         {std::pair<const char*, FormResult>{"direct", direct},
          {"cascade", cascade},
          {"parallel", parallel}}) {
      table.add_row({c.name, form, TextTable::num(r.estimated / q2, 4),
                     TextTable::num(r.simulated / q2, 4),
                     TextTable::percent(r.ed),
                     TextTable::percent(r.ed_flat)});
    }
  }
  table.print();
  std::printf(
      "\n(same transfer function, different noise. The parallel form's\n"
      " branches all carry the input quantizer's noise, which re-converges\n"
      " coherently at the output adder: Eq. 14 (hierarchical PSD) can\n"
      " overestimate there, while the flat analyzer's cross terms stay\n"
      " exact — the scalability/accuracy trade the paper discusses.)\n");
  return 0;
}
