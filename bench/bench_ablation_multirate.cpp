// Ablation A1 (DESIGN.md): effect of the multirate bin-mapping
// interpolation (nearest vs linear) on the DWT 1-D codec estimate across
// N_PSD. Fractional bin indices only arise in the decimation fold, so this
// isolates that design choice.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "wavelet/dwt_sfg.hpp"

namespace {
using namespace psdacc;
}

int main() {
  const int d = 14;
  const auto fmt = fxp::q_format(4, d);
  const auto g = wav::build_dwt1d_codec({.levels = 2, .format = fmt});

  const std::size_t samples = bench::sim_samples(1u << 17);
  Xoshiro256 rng(4321);
  const auto x = uniform_signal(samples, 0.9, rng);
  const double simulated = sim::measure_output_error(g, x, 512).power;

  std::printf(
      "== Ablation A1: multirate PSD interpolation (DWT 1-D, d = %d, %zu "
      "samples) ==\n\n",
      d, samples);
  TextTable table({"N_PSD", "Ed linear", "Ed nearest", "|linear|-|nearest|"});
  for (std::size_t n = 16; n <= 1024; n *= 2) {
    const double lin =
        core::mse_deviation(simulated,
                            core::PsdAnalyzer(
                                g, {.n_psd = n,
                                    .interp = core::NoiseSpectrum::Interp::
                                        kLinear})
                                .output_noise_power());
    const double near =
        core::mse_deviation(simulated,
                            core::PsdAnalyzer(
                                g, {.n_psd = n,
                                    .interp = core::NoiseSpectrum::Interp::
                                        kNearest})
                                .output_noise_power());
    table.add_row({std::to_string(n), TextTable::percent(lin),
                   TextTable::percent(near),
                   TextTable::percent(std::abs(lin) - std::abs(near))});
  }
  table.print();
  std::printf(
      "\n(negative last column: linear interpolation is more accurate)\n");
  return 0;
}
