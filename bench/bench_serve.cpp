// Serving-layer latency benchmarks: the full client->server->client
// round-trip over a loopback socket for (a) a stats query (pure protocol
// overhead), (b) a cache-hit evaluation (content hash + LRU replay, no
// engine), and (c) a cache-miss evaluation (hash + admission + the PSD
// engine itself). The hit/miss gap is the serving tier's reason to exist;
// the stats round-trip is its floor. Real time is the quantity of
// interest — the path crosses threads (connection handler, job executor),
// so cpu_time of the benchmark thread alone undercounts the work.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sfg/graph.hpp"
#include "sfg/serialize.hpp"
#include "sim/error_measurement.hpp"

namespace {

using namespace psdacc;

// A small but non-trivial document: a quantized 15-tap filter chain, PSD
// engine only, n_psd 256 — enough work that the miss path measures the
// engine, not just the parser. @p salt perturbs a gain so each salted
// document gets its own content hash (a guaranteed miss).
std::string document_with_salt(std::size_t salt) {
  sfg::Graph g;
  const auto in = g.add_input("in");
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12), "q");
  const auto gain =
      g.add_gain(q, 0.5 + 1e-9 * static_cast<double>(salt), "g");
  g.add_output(gain);
  sim::EvaluationConfig cfg;
  cfg.n_psd = 256;
  cfg.engines = {core::EngineKind::kPsd};
  return sfg::serialize(sfg::Scenario{std::move(g), std::move(cfg), {}, {}});
}

void BM_ServeStatsRoundTrip(benchmark::State& state) {
  serve::Server server;
  server.start();
  serve::Client client(server.port());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.stats_text());
  }
  server.stop();
}
BENCHMARK(BM_ServeStatsRoundTrip)->UseRealTime();

void BM_ServeEvalCacheHit(benchmark::State& state) {
  serve::Server server;
  server.start();
  serve::Client client(server.port());
  const std::string doc = document_with_salt(0);
  (void)client.submit_eval(doc);  // warm the cache
  for (auto _ : state) {
    const auto r = client.submit_eval(doc);
    if (!r.ok || !r.cache_hit) state.SkipWithError("expected a cache hit");
    benchmark::DoNotOptimize(r.raw.data());
  }
  server.stop();
}
BENCHMARK(BM_ServeEvalCacheHit)->UseRealTime();

void BM_ServeEvalCacheMiss(benchmark::State& state) {
  serve::ServerConfig cfg;
  // Capacity 0 keeps every submission on the miss path without salting
  // interference from the LRU (inserts are skipped entirely).
  cfg.cache_capacity = 0;
  serve::Server server(cfg);
  server.start();
  serve::Client client(server.port());
  std::size_t salt = 0;
  for (auto _ : state) {
    const auto r = client.submit_eval(document_with_salt(salt++));
    if (!r.ok || r.cache_hit) state.SkipWithError("expected a cache miss");
    benchmark::DoNotOptimize(r.raw.data());
  }
  server.stop();
}
BENCHMARK(BM_ServeEvalCacheMiss)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
