// Fig. 4 of the paper: E_d versus fractional bit-width d in {8,12,...,32}
// for the two benchmark systems (frequency-domain filtering and the
// 2-level Daubechies 9/7 DWT). The paper reports flat curves with at most
// ~10% deviation.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "freqfilt/freq_filter.hpp"
#include "imaging/textures.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"

namespace {

using namespace psdacc;

double freqfilt_ed(int d, std::size_t samples) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, d);
  ff::FreqDomainBandpass fx_sys(cfg);
  auto ref_cfg = cfg;
  ref_cfg.format.reset();
  ff::FreqDomainBandpass ref_sys(ref_cfg);

  Xoshiro256 rng(900 + static_cast<std::uint64_t>(d));
  const auto x = uniform_signal(samples, 0.9, rng);
  const auto yr = ref_sys.process(x);
  const auto yf = fx_sys.process(x);
  RunningStats err;
  for (std::size_t i = 512; i < x.size(); ++i) err.add(yf[i] - yr[i]);

  const auto g = ff::build_freqfilt_sfg(cfg);
  const double est =
      core::PsdAnalyzer(g, {.n_psd = 1024}).output_noise_power();
  return core::mse_deviation(err.mean_square(), est);
}

double dwt_ed(int d, std::size_t images) {
  const auto fmt = fxp::q_format(4, d);
  const wav::Dwt2dNoiseConfig cfg{
      .levels = 2, .format = fmt, .n_bins = 64, .quantize_input = true};
  const double est = wav::dwt2d_noise_psd(cfg).power();

  const auto bank = img::texture_bank(images, 64, 64, 500);
  double err_acc = 0.0;
  for (const auto& im : bank) {
    const auto ref = wav::dwt2d_roundtrip(im, 2, {});
    const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
    err_acc += img::mse(ref, fx);
  }
  const double simulated = err_acc / static_cast<double>(bank.size());
  return core::mse_deviation(simulated, est);
}

}  // namespace

int main() {
  const std::size_t ff_samples = bench::sim_samples(1u << 17);
  const std::size_t dwt_images = bench::sim_samples(12);
  std::printf(
      "== Fig. 4: E_d versus fractional bit-width d ==\n"
      "   (freq. filtering: %zu samples; DWT 9/7: %zu synthetic 64x64 "
      "images;\n    paper: |E_d| within ~10%% across d = 8..32)\n\n",
      ff_samples, dwt_images);

  TextTable table({"d (frac bits)", "Ed Freq.Filt.", "Ed DWT 9/7"});
  bool all_within_one_bit = true;
  for (int d = 8; d <= 32; d += 4) {
    const double e_ff = freqfilt_ed(d, ff_samples);
    const double e_dwt = dwt_ed(d, dwt_images);
    all_within_one_bit = all_within_one_bit && core::within_one_bit(e_ff) &&
                         core::within_one_bit(e_dwt);
    table.add_row({std::to_string(d), TextTable::percent(e_ff),
                   TextTable::percent(e_dwt)});
  }
  table.print();
  std::printf("\nall points within the one-bit band (-75%%, +300%%): %s\n",
              all_within_one_bit ? "yes" : "NO");
  return 0;
}
