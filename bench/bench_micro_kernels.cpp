// google-benchmark microbenchmarks of the kernels whose costs set the
// paper's complexity story: FFT preprocessing (tau_pp, O(N log N)), one
// PSD propagation sweep (tau_eval, O(N) per node), the flat analyzer
// (O(sources x nodes x N)), and the fixed-point simulation (O(taps x
// samples)).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "dsp/kernels.hpp"
#include "core/accuracy_engine.hpp"
#include "core/flat_analyzer.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/spectral.hpp"
#include "filters/iir_design.hpp"
#include "sim/error_measurement.hpp"
#include "sim/execution_plan.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(1);
  std::vector<dsp::cplx> data(n);
  for (auto& v : data) v = dsp::cplx(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    auto copy = data;
    dsp::fft(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

// Real-input transform through a cached plan (reused output buffer), the
// primitive under every Welch segment.
void BM_Rfft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(2);
  const auto x = gaussian_signal(n, rng);
  const dsp::FftPlan& plan = dsp::plan_for(n);
  std::vector<dsp::cplx> spectrum;
  for (auto _ : state) {
    plan.rfft(x, spectrum);
    benchmark::DoNotOptimize(spectrum);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Rfft)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

// The acceptance workload: Welch PSD of 2^14 samples over 1024 bins.
void BM_WelchPsd(benchmark::State& state) {
  Xoshiro256 rng(3);
  const auto x = gaussian_signal(1u << 14, rng);
  for (auto _ : state) {
    auto psd = dsp::welch_psd(x, 1024);
    benchmark::DoNotOptimize(psd);
  }
}
BENCHMARK(BM_WelchPsd);

// execute_sisos over the Table-1 filter banks (one fixed-point + one
// reference sweep per filter, fresh plan per call, as the Table-1 harness
// does). bank: 0 = FIR population, 1 = IIR population.
void BM_ExecuteSisosTable1(benchmark::State& state) {
  const auto bank = state.range(0) == 0 ? bench::fir_bank()
                                        : bench::iir_bank();
  std::vector<sfg::Graph> graphs;
  graphs.reserve(bank.size());
  for (const auto& spec : bank)
    graphs.push_back(bench::quantized_filter_graph(spec.tf, 12));
  Xoshiro256 rng(4);
  const auto x = uniform_signal(1u << 12, 0.9, rng);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& g : graphs) {
      acc += sim::execute_sisos(g, x, sim::Mode::kReference)[5];
      acc += sim::execute_sisos(g, x, sim::Mode::kFixedPoint)[5];
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ExecuteSisosTable1)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"bank"})
    ->Unit(benchmark::kMillisecond);

sfg::Graph chain_graph(int blocks, int d) {
  sfg::Graph g;
  auto head = g.add_input();
  head = g.add_quantizer(head, fxp::q_format(4, d));
  for (int b = 0; b < blocks; ++b) {
    const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 3,
                                      0.1 + 0.03 * (b % 10));
    head = g.add_block(head, tf, fxp::q_format(4, d));
  }
  g.add_output(head);
  return g;
}

// Repeated simulation through one long-lived ExecutionPlan: what a
// Monte-Carlo loop pays per sweep once plan setup and buffers are amortized.
void BM_ExecutionPlanReuse(benchmark::State& state) {
  const auto g = chain_graph(4, 12);
  Xoshiro256 rng(5);
  const auto x = uniform_signal(1u << 12, 0.9, rng);
  sim::ExecutionPlan plan(g);
  for (auto _ : state) {
    const auto y = plan.run_sisos(x, sim::Mode::kFixedPoint);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ExecutionPlanReuse)->Unit(benchmark::kMicrosecond);

// One optimizer-style probe: PsdAnalyzer::output_noise_power() into the
// analyzer's reused workspace (allocation-free after the first call).
void BM_PsdProbe(benchmark::State& state) {
  const auto g = chain_graph(16, 12);
  core::PsdAnalyzer analyzer(g, {.n_psd = 512});
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.output_noise_power());
  }
}
BENCHMARK(BM_PsdProbe)->Unit(benchmark::kMicrosecond);

// tau_pp: constructing the analyzer samples all block responses.
void BM_PsdPreprocess(benchmark::State& state) {
  const auto g = chain_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
    benchmark::DoNotOptimize(&analyzer);
  }
}
BENCHMARK(BM_PsdPreprocess)->Arg(4)->Arg(16)->Arg(64);

// tau_eval: one propagation sweep; linear in both nodes and N_PSD.
void BM_PsdEvaluate(benchmark::State& state) {
  const auto g = chain_graph(16, 12);
  core::PsdAnalyzer analyzer(
      g, {.n_psd = static_cast<std::size_t>(state.range(0))});
  for (auto _ : state) {
    auto spectra = analyzer.evaluate();
    benchmark::DoNotOptimize(spectra);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PsdEvaluate)
    ->RangeMultiplier(2)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_MomentEvaluate(benchmark::State& state) {
  const auto g = chain_graph(static_cast<int>(state.range(0)), 12);
  core::MomentAnalyzer analyzer(g);
  for (auto _ : state) {
    auto moments = analyzer.evaluate();
    benchmark::DoNotOptimize(moments);
  }
}
BENCHMARK(BM_MomentEvaluate)->Arg(4)->Arg(16)->Arg(64);

// One moment-backed optimizer probe: output_noise_power() into the
// analyzer's reused workspace — parity with BM_PsdProbe so the
// allocation-free path of both engine backends is tracked.
void BM_MomentProbe(benchmark::State& state) {
  const auto g = chain_graph(16, 12);
  core::MomentAnalyzer analyzer(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.output_noise_power());
  }
}
BENCHMARK(BM_MomentProbe)->Unit(benchmark::kMicrosecond);

// One incremental optimizer probe (AccuracyEngine::evaluate_delta):
// re-derives a single source's noise contribution and combines the other
// sources' contributions from the engine's cache — O(sources) scalar work
// instead of a full O(nodes x N) propagation sweep. Counterpart to
// BM_PsdProbe / BM_MomentProbe on the same 16-block chain; the gap between
// them is the per-probe win the incremental optimizer path banks.
// engine: 0 = psd, 1 = moment, 2 = flat.
void BM_DeltaProbe(benchmark::State& state) {
  const auto g = chain_graph(16, 12);
  const auto kind = state.range(0) == 0   ? core::EngineKind::kPsd
                    : state.range(0) == 1 ? core::EngineKind::kMoment
                                          : core::EngineKind::kFlat;
  const auto engine = core::make_engine(kind, g, {.n_psd = 512});
  const auto v = g.noise_sources().front();
  const auto coarse = fxp::q_format(4, 11);
  const auto fine = fxp::q_format(4, 13);
  // Warm the lazily built per-source unit responses (one-time cost, the
  // delta analog of analyzer construction).
  engine->evaluate_delta(v, coarse);
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    benchmark::DoNotOptimize(engine->evaluate_delta(v, flip ? fine : coarse));
  }
}
BENCHMARK(BM_DeltaProbe)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgNames({"engine"})
    ->Unit(benchmark::kNanosecond);

// Flat method: per-source full-graph sweeps — the scalability wall.
void BM_FlatEvaluate(benchmark::State& state) {
  const auto g = chain_graph(static_cast<int>(state.range(0)), 12);
  core::FlatAnalyzer analyzer(g, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.output_noise_power());
  }
}
BENCHMARK(BM_FlatEvaluate)->Arg(4)->Arg(16);

void BM_FixedPointSimulation(benchmark::State& state) {
  const auto g = chain_graph(4, 12);
  Xoshiro256 rng(2);
  const auto x =
      uniform_signal(static_cast<std::size_t>(state.range(0)), 0.9, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::measure_output_error(g, x, 0).power);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FixedPointSimulation)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

// ---------------------------------------------------------------------------
// dsp::kernels primitives (the SIMD layer). Each has a kernels::scalar
// twin, so a regression here localizes to the vector path itself rather
// than the call sites above.
// ---------------------------------------------------------------------------

void BM_FirKernel(benchmark::State& state) {
  Xoshiro256 rng(6);
  const auto x = gaussian_signal(1u << 14, rng);
  const auto b = gaussian_signal(24, rng);
  std::vector<double> out;
  for (auto _ : state) {
    dsp::kernels::fir_apply(b, x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::string(dsp::kernels::active_isa()));
}
BENCHMARK(BM_FirKernel)->Unit(benchmark::kMicrosecond);

void BM_QuantizeSpan(benchmark::State& state) {
  Xoshiro256 rng(7);
  const auto x = uniform_signal(1u << 14, 0.9, rng);
  std::vector<double> out(x.size());
  const fxp::QuantizerKernel q(fxp::q_format(4, 12));
  for (auto _ : state) {
    dsp::kernels::quantize_span(q, x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::string(dsp::kernels::active_isa()));
}
BENCHMARK(BM_QuantizeSpan)->Unit(benchmark::kMicrosecond);

void BM_WelchAccumulate(benchmark::State& state) {
  Xoshiro256 rng(8);
  const std::size_t n = 1024;
  std::vector<dsp::cplx> spectrum(n);
  for (auto& v : spectrum) v = dsp::cplx(rng.gaussian(), rng.gaussian());
  std::vector<double> acc(n, 0.0);
  for (auto _ : state) {
    dsp::kernels::window_accumulate(acc, spectrum, 1.0 / 64.0);
    benchmark::DoNotOptimize(acc.data());
  }
}
BENCHMARK(BM_WelchAccumulate);

// One radix-2 stage worth of butterflies at FFT-typical group sizes.
void BM_Butterfly(benchmark::State& state) {
  const auto half = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(9);
  auto re = gaussian_signal(2 * half, rng);
  auto im = gaussian_signal(2 * half, rng);
  std::vector<double> wr(half), wi(half);
  for (std::size_t k = 0; k < half; ++k) {
    const double ang =
        -3.14159265358979323846 * static_cast<double>(k) /
        static_cast<double>(half);
    wr[k] = std::cos(ang);
    wi[k] = std::sin(ang);
  }
  for (auto _ : state) {
    dsp::kernels::butterfly(re.data(), im.data(), half, wr.data(),
                            wi.data(), false);
    benchmark::DoNotOptimize(re.data());
  }
}
BENCHMARK(BM_Butterfly)->Arg(8)->Arg(512);

// ---------------------------------------------------------------------------
// Acceptance floor: the SIMD build must beat the always-compiled scalar
// references by >= 1.5x on the FIR and quantizer kernels, measured
// in-process on this machine. Scalar builds (width() == 1) skip the check
// — there the public entry points *are* the references.
// ---------------------------------------------------------------------------

template <typename F>
double seconds_per_call(F&& fn, int iters) {
  fn();  // warm up caches and the page tables backing the buffers
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return dt.count() / iters;
}

int check_simd_floor() {
  if (dsp::kernels::width() <= 1) {
    std::printf("kernel floor: scalar build (%s), skipping speedup gate\n",
                std::string(dsp::kernels::active_isa()).c_str());
    return 0;
  }
  Xoshiro256 rng(10);
  const auto x = uniform_signal(1u << 14, 0.9, rng);
  const auto b = gaussian_signal(24, rng);
  std::vector<double> out(x.size());
  const fxp::QuantizerKernel q(fxp::q_format(4, 12));
  constexpr int kIters = 200;
  constexpr double kFloor = 1.5;

  const double fir_simd = seconds_per_call(
      [&] { dsp::kernels::fir_apply(b, x, out); }, kIters);
  const double fir_scalar = seconds_per_call(
      [&] { dsp::kernels::scalar::fir_apply(b, x, out); }, kIters);
  const double q_simd = seconds_per_call(
      [&] { dsp::kernels::quantize_span(q, x, out); }, kIters);
  const double q_scalar = seconds_per_call(
      [&] { dsp::kernels::scalar::quantize_span(q, x, out); }, kIters);

  const double fir_speedup = fir_scalar / fir_simd;
  const double q_speedup = q_scalar / q_simd;
  std::printf(
      "kernel floor (%s, width %zu): fir %.2fx, quantize %.2fx "
      "(floor %.1fx)\n",
      std::string(dsp::kernels::active_isa()).c_str(),
      dsp::kernels::width(), fir_speedup, q_speedup, kFloor);
  int failures = 0;
  if (fir_speedup < kFloor) {
    std::fprintf(stderr, "FAIL: fir_apply speedup %.2fx < %.1fx\n",
                 fir_speedup, kFloor);
    ++failures;
  }
  if (q_speedup < kFloor) {
    std::fprintf(stderr, "FAIL: quantize_span speedup %.2fx < %.1fx\n",
                 q_speedup, kFloor);
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return check_simd_floor();
}
