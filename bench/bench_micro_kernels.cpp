// google-benchmark microbenchmarks of the kernels whose costs set the
// paper's complexity story: FFT preprocessing (tau_pp, O(N log N)), one
// PSD propagation sweep (tau_eval, O(N) per node), the flat analyzer
// (O(sources x nodes x N)), and the fixed-point simulation (O(taps x
// samples)).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/flat_analyzer.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "dsp/fft.hpp"
#include "filters/iir_design.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(1);
  std::vector<dsp::cplx> data(n);
  for (auto& v : data) v = dsp::cplx(rng.gaussian(), rng.gaussian());
  for (auto _ : state) {
    auto copy = data;
    dsp::fft(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->RangeMultiplier(4)->Range(64, 16384)->Complexity();

sfg::Graph chain_graph(int blocks, int d) {
  sfg::Graph g;
  auto head = g.add_input();
  head = g.add_quantizer(head, fxp::q_format(4, d));
  for (int b = 0; b < blocks; ++b) {
    const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 3,
                                      0.1 + 0.03 * (b % 10));
    head = g.add_block(head, tf, fxp::q_format(4, d));
  }
  g.add_output(head);
  return g;
}

// tau_pp: constructing the analyzer samples all block responses.
void BM_PsdPreprocess(benchmark::State& state) {
  const auto g = chain_graph(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) {
    core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
    benchmark::DoNotOptimize(&analyzer);
  }
}
BENCHMARK(BM_PsdPreprocess)->Arg(4)->Arg(16)->Arg(64);

// tau_eval: one propagation sweep; linear in both nodes and N_PSD.
void BM_PsdEvaluate(benchmark::State& state) {
  const auto g = chain_graph(16, 12);
  core::PsdAnalyzer analyzer(
      g, {.n_psd = static_cast<std::size_t>(state.range(0))});
  for (auto _ : state) {
    auto spectra = analyzer.evaluate();
    benchmark::DoNotOptimize(spectra);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PsdEvaluate)
    ->RangeMultiplier(2)
    ->Range(16, 4096)
    ->Complexity(benchmark::oN);

void BM_MomentEvaluate(benchmark::State& state) {
  const auto g = chain_graph(static_cast<int>(state.range(0)), 12);
  core::MomentAnalyzer analyzer(g);
  for (auto _ : state) {
    auto moments = analyzer.evaluate();
    benchmark::DoNotOptimize(moments);
  }
}
BENCHMARK(BM_MomentEvaluate)->Arg(4)->Arg(16)->Arg(64);

// Flat method: per-source full-graph sweeps — the scalability wall.
void BM_FlatEvaluate(benchmark::State& state) {
  const auto g = chain_graph(static_cast<int>(state.range(0)), 12);
  core::FlatAnalyzer analyzer(g, 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.output_noise_power());
  }
}
BENCHMARK(BM_FlatEvaluate)->Arg(4)->Arg(16);

void BM_FixedPointSimulation(benchmark::State& state) {
  const auto g = chain_graph(4, 12);
  Xoshiro256 rng(2);
  const auto x =
      uniform_signal(static_cast<std::size_t>(state.range(0)), 0.9, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::measure_output_error(g, x, 0).power);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FixedPointSimulation)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 16)
    ->Complexity(benchmark::oN);

}  // namespace

BENCHMARK_MAIN();
