#!/usr/bin/env python3
"""Gate google-benchmark results against a committed baseline.

Usage:
    compare_bench.py --baseline BENCH_baseline.json \
        --current micro.json runtime.json [--threshold 1.30] [--no-normalize]

Reads one or more --benchmark_format=json outputs, matches benchmarks to the
baseline by name, and fails (exit 1) when any kernel's cpu_time regressed by
more than the threshold (default 1.30 = +30%).

Cross-machine tolerance: the committed baseline comes from a 1-core
container while CI runs on hosted runners of a different speed class, so
absolute times are not comparable. By default every per-benchmark ratio
current/baseline is divided by the *median* ratio across all matched
benchmarks before gating — a uniformly faster or slower machine cancels
out, and only kernels that regressed *relative to the rest of the suite*
fail. A genuine regression in one kernel barely moves the median as long
as the suite is reasonably large; a regression in *every* kernel at once
is indistinguishable from a slow machine and will not be caught (that is
the price of machine independence — refresh the baseline on the CI runner
class if that ever matters). --no-normalize compares raw ratios for
same-machine runs.

The 30% default threshold is deliberately loose: 1-core runners time-slice
the benchmark against the harness itself, and nanosecond-scale kernels
(BM_DeltaProbe) jitter by a few percent run to run. Tighten it only with a
quieter runner.

Aggregate rows (BigO / RMS from ->Complexity()) are skipped. Benchmarks
present only in the current run are reported as new (not gated); baseline
entries missing from the current run are reported loudly but do not fail
the job, so partial reruns and renames stay usable — refresh the baseline
when removing or renaming benchmarks.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path: str) -> dict[str, float]:
    """name -> cpu_time in ns for every real (non-aggregate) benchmark."""
    with open(path) as f:
        data = json.load(f)
    times: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type", "iteration") != "iteration":
            continue  # BigO / RMS aggregates
        name = bench["name"]
        unit = _UNIT_TO_NS[bench.get("time_unit", "ns")]
        times[name] = float(bench["cpu_time"]) * unit
    return times


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True, nargs="+")
    parser.add_argument("--threshold", type=float, default=1.30,
                        help="fail when normalized ratio exceeds this "
                             "(default 1.30 = +30%%)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="gate on raw ratios (same-machine runs only)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    current: dict[str, float] = {}
    for path in args.current:
        current.update(load_times(path))

    matched = sorted(set(baseline) & set(current))
    new = sorted(set(current) - set(baseline))
    missing = sorted(set(baseline) - set(current))
    if not matched:
        print("error: no benchmarks in common with the baseline")
        return 1

    ratios = {name: current[name] / baseline[name] for name in matched}
    scale = 1.0 if args.no_normalize else statistics.median(ratios.values())
    print(f"{len(matched)} benchmarks matched against {args.baseline}; "
          f"median machine-speed ratio {scale:.3f} "
          f"({'not ' if args.no_normalize else ''}normalized out)")

    failures = []
    for name in matched:
        norm = ratios[name] / scale
        marker = ""
        if norm > args.threshold:
            failures.append(name)
            marker = f"  REGRESSION (> {args.threshold:.2f}x)"
        elif norm < 1.0 / args.threshold:
            marker = "  (improved)"
        print(f"  {name:<50} base {baseline[name]:>12.1f} ns  "
              f"cur {current[name]:>12.1f} ns  norm x{norm:.3f}{marker}")

    for name in new:
        print(f"  {name:<50} NEW (no baseline entry; add it on the next "
              "baseline refresh)")
    for name in missing:
        print(f"  {name:<50} MISSING from the current run — the gate no "
              "longer covers it; refresh the baseline if it was removed")

    if failures:
        print(f"\nFAIL: {len(failures)} kernel(s) regressed beyond "
              f"{args.threshold:.2f}x: " + ", ".join(failures))
        return 1
    print("\nOK: no kernel regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
