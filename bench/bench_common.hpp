// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures. Each bench binary prints the corresponding
// rows/series; absolute values depend on the host, but the shapes are the
// paper's.
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "filters/transfer_function.hpp"
#include "fixedpoint/format.hpp"
#include "sfg/graph.hpp"

namespace psdacc::bench {

/// Scales Monte-Carlo sample counts via the PSDACC_SIM_SCALE environment
/// variable (default 1; the paper's 10^6-10^7 runs correspond to ~8-64).
inline std::size_t sim_samples(std::size_t base) {
  const char* scale = std::getenv("PSDACC_SIM_SCALE");
  if (scale == nullptr) return base;
  const long s = std::strtol(scale, nullptr, 10);
  return s >= 1 ? base * static_cast<std::size_t>(s) : base;
}

/// One benchmark filter: the paper's Table I population is 147 FIR and
/// 147 IIR filters spanning low-pass / high-pass / band-pass
/// functionalities and a range of orders.
struct FilterSpec {
  std::string name;
  filt::TransferFunction tf;
};

/// 147 FIR filters: 3 functionalities x 49 tap counts in [16, 128].
inline std::vector<FilterSpec> fir_bank() {
  std::vector<FilterSpec> bank;
  for (int k = 0; k < 49; ++k) {
    const std::size_t taps = 16 + 2 * static_cast<std::size_t>(k);
    const double lo = 0.08 + 0.003 * k;  // sweep band edges with size
    const double hi = 0.30 + 0.003 * k;
    bank.push_back({"fir_lp_" + std::to_string(taps),
                    filt::TransferFunction(filt::fir_lowpass(taps, hi))});
    bank.push_back({"fir_hp_" + std::to_string(taps),
                    filt::TransferFunction(filt::fir_highpass(taps, lo))});
    bank.push_back(
        {"fir_bp_" + std::to_string(taps),
         filt::TransferFunction(filt::fir_bandpass(taps, lo, hi))});
  }
  return bank;
}

/// 147 IIR filters: 3 functionalities x (orders 2..10 x ~5 band variants),
/// Butterworth and Chebyshev-I alternating.
inline std::vector<FilterSpec> iir_bank() {
  std::vector<FilterSpec> bank;
  int produced = 0;
  for (int order = 2; order <= 10 && produced < 49; ++order) {
    for (int v = 0; v < 6 && produced < 49; ++v) {
      const auto family = (order + v) % 2 == 0
                              ? filt::IirFamily::kButterworth
                              : filt::IirFamily::kChebyshev1;
      const double lo = 0.10 + 0.02 * v;
      const double hi = lo + 0.18;
      const std::string tag = std::to_string(order) + "_" +
                              std::to_string(v);
      bank.push_back(
          {"iir_lp_" + tag, filt::iir_lowpass(family, order, hi)});
      bank.push_back(
          {"iir_hp_" + tag, filt::iir_highpass(family, order, lo)});
      // Band-pass uses half the prototype order so the digital order stays
      // in the paper's 2..10 range.
      bank.push_back({"iir_bp_" + tag,
                      filt::iir_bandpass(family, std::max(1, order / 2),
                                         lo, hi)});
      ++produced;
    }
  }
  return bank;
}

/// in -> Q(d) -> quantized filter block -> out (the Table I system).
inline sfg::Graph quantized_filter_graph(const filt::TransferFunction& tf,
                                         int d) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, d));
  g.add_output(g.add_block(q, tf, fxp::q_format(4, d)));
  return g;
}

}  // namespace psdacc::bench
