// Arena/SoA graph-core scaling harness: constructs chains, adder trees,
// reconvergent meshes, and multirate cascades up to 10^5+ nodes and times
// construction, engine preprocessing, and incremental delta probes.
//
// Beyond the google-benchmark sweeps (gated against BENCH_baseline.json by
// bench/compare_bench.py like the other suites), main() runs a hard
// complexity gate and exits nonzero when it fails:
//   * constructing a 10^5-node chain must take < 1 s on one core, and
//   * the median edit+probe cycle (set_format on a source with an O(1)-size
//     downstream cone, then evaluate_delta) on a 10^5-node chain must stay
//     within 3x of the same cycle on a 10^3-node chain. An implementation
//     that re-derives per-source state by sweeping the whole graph scales
//     this cycle by ~100x between the two sizes; O(|cone|) sweeps keep it
//     flat.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/accuracy_engine.hpp"
#include "fixedpoint/format.hpp"
#include "sfg/graph.hpp"
#include "sfg/serialize.hpp"

namespace {

using namespace psdacc;

fxp::FixedPointFormat fmt(int d) { return fxp::q_format(4, d); }

// Every generator plants ~127 evenly spaced quantizers (so the delta-term
// cache takes its segment-tree probe path at every size) plus one "probe"
// quantizer a fixed 8 nodes before the output. The probe source's
// downstream cone is the same size at every N, which is what makes the
// edit+probe cycle a clean O(|cone|)-vs-O(|graph|) discriminator.
constexpr std::size_t kSpacedSources = 127;
constexpr std::size_t kProbeTailNodes = 8;

struct SizedGraph {
  sfg::Graph g;
  sfg::NodeId probe = 0;  // the fixed-size-cone quantizer near the output
};

// in -> [gain/delay, quantizer every N/127] -> probe Q -> 8 gains -> out.
SizedGraph chain_graph(std::size_t n) {
  SizedGraph out;
  sfg::Graph& g = out.g;
  g.reserve(n, n);
  const std::size_t body = n - kProbeTailNodes - 3;
  const std::size_t stride = std::max<std::size_t>(2, body / kSpacedSources);
  sfg::NodeId head = g.add_input();
  for (std::size_t i = 0; g.node_count() < body; ++i) {
    if (i % stride == stride - 1)
      head = g.add_quantizer(head, fmt(12));
    else if (i % 5 == 4)
      head = g.add_delay(head, 1);
    else
      head = g.add_gain(head, 0.9999);
  }
  out.probe = head = g.add_quantizer(head, fmt(12));
  for (std::size_t i = 0; i < kProbeTailNodes; ++i)
    head = g.add_gain(head, 1.0001);
  g.add_output(head);
  return out;
}

// Balanced adder tree: quantized gain branches off the input, summed
// pairwise; the probe quantizer sits between the root and the output.
SizedGraph tree_graph(std::size_t n) {
  SizedGraph out;
  sfg::Graph& g = out.g;
  g.reserve(n, n + n / 2);
  const auto in = g.add_input();
  const std::size_t leaves = std::max<std::size_t>(2, n / 3);
  const std::size_t stride = std::max<std::size_t>(2, leaves / kSpacedSources);
  std::vector<sfg::NodeId> level;
  level.reserve(leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    sfg::NodeId leaf = g.add_gain(in, 0.25 + 0.5 / static_cast<double>(i + 1));
    if (i % stride == stride - 1) leaf = g.add_quantizer(leaf, fmt(12));
    level.push_back(leaf);
  }
  std::vector<sfg::NodeId> next;
  while (level.size() > 1) {
    next.clear();
    for (std::size_t i = 0; i + 1 < level.size(); i += 2)
      next.push_back(g.add_adder({level[i], level[i + 1]}));
    if (level.size() % 2 == 1) next.push_back(level.back());
    level.swap(next);
  }
  out.probe = g.add_quantizer(level[0], fmt(12));
  sfg::NodeId head = out.probe;
  for (std::size_t i = 0; i < kProbeTailNodes; ++i)
    head = g.add_gain(head, 1.0001);
  g.add_output(head);
  return out;
}

// Reconvergent mesh: repeated diamonds head -> {gain, delay} -> adder, a
// quantizer every few stages — every source's paths re-join downstream.
SizedGraph mesh_graph(std::size_t n) {
  SizedGraph out;
  sfg::Graph& g = out.g;
  g.reserve(n, n + n / 3);
  const std::size_t body = n - kProbeTailNodes - 3;
  sfg::NodeId head = g.add_input();
  const std::size_t stride =
      std::max<std::size_t>(2, (body / 3) / kSpacedSources);
  for (std::size_t stage = 0; g.node_count() + 3 <= body; ++stage) {
    const auto left = g.add_gain(head, 0.5);
    const auto right = g.add_delay(head, 1);
    head = g.add_adder({left, right});
    if (stage % stride == stride - 1)
      head = g.add_quantizer(head, fmt(12));
  }
  out.probe = head = g.add_quantizer(head, fmt(12));
  for (std::size_t i = 0; i < kProbeTailNodes; ++i)
    head = g.add_gain(head, 1.0001);
  g.add_output(head);
  return out;
}

// Multirate cascade: the chain with a factor-2 decimator between source
// segments (downsample-only keeps every engine's delta decomposition
// exact; see CapabilityHonesty in test_incremental).
SizedGraph multirate_graph(std::size_t n) {
  SizedGraph out;
  sfg::Graph& g = out.g;
  g.reserve(n, n);
  const std::size_t body = n - kProbeTailNodes - 3;
  const std::size_t stride = std::max<std::size_t>(3, body / kSpacedSources);
  sfg::NodeId head = g.add_input();
  for (std::size_t i = 0; g.node_count() < body; ++i) {
    if (i % stride == stride - 1)
      head = g.add_quantizer(head, fmt(12));
    else if (i % stride == stride / 2)
      head = g.add_downsample(head, 2);
    else
      head = g.add_gain(head, 0.9999);
  }
  out.probe = head = g.add_quantizer(head, fmt(12));
  for (std::size_t i = 0; i < kProbeTailNodes; ++i)
    head = g.add_gain(head, 1.0001);
  g.add_output(head);
  return out;
}

SizedGraph make_graph(int family, std::size_t n) {
  switch (family) {
    case 0: return chain_graph(n);
    case 1: return tree_graph(n);
    case 2: return mesh_graph(n);
    default: return multirate_graph(n);
  }
}

// --- google-benchmark sweeps ----------------------------------------------

void BM_Construct(benchmark::State& state) {
  const auto family = static_cast<int>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    auto sized = make_graph(family, n);
    benchmark::DoNotOptimize(sized.g.node_count());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Construct)
    ->ArgNames({"family", "nodes"})
    ->Args({0, 1 << 12})
    ->Args({0, 1 << 15})
    ->Args({0, 1 << 17})
    ->Args({1, 1 << 15})
    ->Args({2, 1 << 15})
    ->Args({3, 1 << 15})
    ->Unit(benchmark::kMicrosecond);

// Serialize round-trip at scale: canonical emission plus the reserving
// two-pass parser.
void BM_SerializeRoundTrip(benchmark::State& state) {
  const auto sized = chain_graph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto text = sfg::serialize(sized.g);
    auto parsed = sfg::parse_graph(text);
    benchmark::DoNotOptimize(parsed.node_count());
  }
}
BENCHMARK(BM_SerializeRoundTrip)
    ->Arg(1 << 12)
    ->Arg(1 << 15)
    ->Unit(benchmark::kMicrosecond);

// Warm incremental probe: the O(1) (segment-tree) path — no graph edit, the
// per-source cache stays synced.
void BM_WarmDeltaProbe(benchmark::State& state) {
  const auto sized = chain_graph(static_cast<std::size_t>(state.range(0)));
  const auto engine =
      core::make_engine(core::EngineKind::kMoment, sized.g, {});
  benchmark::DoNotOptimize(engine->evaluate_delta(sized.probe, fmt(10)));
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    benchmark::DoNotOptimize(
        engine->evaluate_delta(sized.probe, fmt(flip ? 10 : 14)));
  }
}
BENCHMARK(BM_WarmDeltaProbe)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Unit(benchmark::kNanosecond);

// Edit+probe cycle: set_format moves one source whose downstream cone has
// the same fixed size at every N, then evaluate_delta re-derives exactly
// that source's contribution. O(|cone|), so the series must stay flat in N.
void BM_TailEditProbe(benchmark::State& state) {
  auto sized = chain_graph(static_cast<std::size_t>(state.range(0)));
  const auto engine =
      core::make_engine(core::EngineKind::kMoment, sized.g, {});
  benchmark::DoNotOptimize(engine->evaluate_delta(sized.probe, fmt(10)));
  int bits = 10;
  for (auto _ : state) {
    bits = bits == 10 ? 14 : 10;
    sized.g.set_format(sized.probe, fmt(bits));
    benchmark::DoNotOptimize(engine->evaluate_delta(sized.probe, fmt(12)));
  }
}
BENCHMARK(BM_TailEditProbe)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Unit(benchmark::kNanosecond);

// --- hard complexity gate --------------------------------------------------

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Median wall-clock of one set_format + evaluate_delta cycle.
double median_edit_probe_seconds(SizedGraph& sized) {
  const auto engine =
      core::make_engine(core::EngineKind::kMoment, sized.g, {});
  benchmark::DoNotOptimize(engine->evaluate_delta(sized.probe, fmt(10)));
  constexpr int kReps = 41;
  std::vector<double> times;
  times.reserve(kReps);
  int bits = 10;
  for (int r = 0; r < kReps; ++r) {
    bits = bits == 10 ? 14 : 10;
    const auto t0 = std::chrono::steady_clock::now();
    sized.g.set_format(sized.probe, fmt(bits));
    benchmark::DoNotOptimize(engine->evaluate_delta(sized.probe, fmt(12)));
    times.push_back(seconds_since(t0));
  }
  std::nth_element(times.begin(), times.begin() + kReps / 2, times.end());
  return times[kReps / 2];
}

bool run_complexity_gate() {
  bool ok = true;

  const auto t0 = std::chrono::steady_clock::now();
  auto large = chain_graph(100000);
  const double construct_s = seconds_since(t0);
  std::printf("[gate] 10^5-node chain construction: %.3f s (budget 1.0 s)\n",
              construct_s);
  if (construct_s >= 1.0) {
    std::printf("[gate] FAIL: construction exceeded 1 s\n");
    ok = false;
  }

  auto small = chain_graph(1000);
  const double t_small = median_edit_probe_seconds(small);
  const double t_large = median_edit_probe_seconds(large);
  const double ratio = t_large / t_small;
  std::printf(
      "[gate] median edit+probe: 10^3 chain %.3f us, 10^5 chain %.3f us, "
      "ratio %.2fx (budget 3x; O(|graph|) sweeps would be ~100x)\n",
      t_small * 1e6, t_large * 1e6, ratio);
  if (ratio >= 3.0) {
    std::printf("[gate] FAIL: delta-probe cost scales with graph size\n");
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_complexity_gate() ? 0 : 1;
}
