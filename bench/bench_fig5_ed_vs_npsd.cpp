// Fig. 5 of the paper: E_d versus the number of PSD samples N_PSD in
// {16, 32, ..., 1024} at fixed word-length, for the frequency filtering
// and DWT systems. The paper reports E_d around -8% (freq. filt.) and +1%
// (DWT) at N_PSD = 16, both converging into +-1% ... small values as
// N_PSD grows.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "freqfilt/freq_filter.hpp"
#include "imaging/textures.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"

namespace {

using namespace psdacc;

// The paper fixes d = 32 for this experiment; quantization noise is then
// tiny but E_d is scale-free.
constexpr int kFracBits = 20;  // d = 32 makes Monte-Carlo convergence slow
                               // relative to double rounding; 20 keeps the
                               // identical spectral structure

double freqfilt_simulated_power(std::size_t samples) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, kFracBits);
  ff::FreqDomainBandpass fx_sys(cfg);
  auto ref_cfg = cfg;
  ref_cfg.format.reset();
  ff::FreqDomainBandpass ref_sys(ref_cfg);
  Xoshiro256 rng(321);
  const auto x = uniform_signal(samples, 0.9, rng);
  const auto yr = ref_sys.process(x);
  const auto yf = fx_sys.process(x);
  RunningStats err;
  for (std::size_t i = 512; i < x.size(); ++i) err.add(yf[i] - yr[i]);
  return err.mean_square();
}

double dwt_simulated_power(std::size_t images) {
  const auto fmt = fxp::q_format(4, kFracBits);
  const auto bank = img::texture_bank(images, 64, 64, 700);
  double acc = 0.0;
  for (const auto& im : bank) {
    const auto ref = wav::dwt2d_roundtrip(im, 2, {});
    const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
    acc += img::mse(ref, fx);
  }
  return acc / static_cast<double>(images);
}

}  // namespace

int main() {
  const std::size_t ff_samples = bench::sim_samples(1u << 18);
  const std::size_t dwt_images = bench::sim_samples(12);
  std::printf(
      "== Fig. 5: E_d versus number of PSD samples N_PSD ==\n"
      "   (d = %d fractional bits everywhere; simulation is computed once\n"
      "    per system and reused across N_PSD)\n\n",
      kFracBits);

  const double ff_sim = freqfilt_simulated_power(ff_samples);
  const double dwt_sim = dwt_simulated_power(dwt_images);

  ff::FreqFilterConfig ff_cfg;
  ff_cfg.format = fxp::q_format(8, kFracBits);
  const auto ff_graph = ff::build_freqfilt_sfg(ff_cfg);

  TextTable table({"N_PSD", "Ed Freq.Filt.", "Ed DWT 9/7"});
  for (std::size_t n = 16; n <= 1024; n *= 2) {
    const double ff_est =
        core::PsdAnalyzer(ff_graph, {.n_psd = n}).output_noise_power();
    const wav::Dwt2dNoiseConfig dwt_cfg{
        .levels = 2, .format = fxp::q_format(4, kFracBits),
        .n_bins = std::max<std::size_t>(n <= 64 ? n : 64, 4),
        .quantize_input = true};
    const double dwt_est = wav::dwt2d_noise_psd(dwt_cfg).power();
    table.add_row({std::to_string(n),
                   TextTable::percent(core::mse_deviation(ff_sim, ff_est)),
                   TextTable::percent(core::mse_deviation(dwt_sim,
                                                          dwt_est))});
  }
  table.print();
  std::printf(
      "\n(2-D DWT bins are per axis and capped at 64 -> 4096 total bins;\n"
      " the 1-D frequency-filtering system sweeps the full 16..1024.)\n");
  return 0;
}
