// Ablation A2 (DESIGN.md): what the hierarchical PSD method gives up by
// assuming uncorrelated noises at adders (Eq. 14) on reconvergent graphs,
// versus the flat analyzer that keeps complex per-source path responses
// (Eq. 12 with cross-spectra). Sweeps the relative delay of a two-path
// reconvergence: with delay 0 the paths are fully correlated (worst case
// for Eq. 14); white noise decorrelates as the delay grows, closing the
// gap.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/flat_analyzer.hpp"
#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"
#include "support/table.hpp"

namespace {

using namespace psdacc;

sfg::Graph two_path_graph(std::size_t delay, int d) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, d));
  const auto direct = g.add_gain(q, 1.0);
  const auto delayed = g.add_delay(q, delay);
  const auto sum = g.add_adder({direct, delayed});
  g.add_output(sum);
  return g;
}

}  // namespace

int main() {
  const int d = 12;
  const std::size_t samples = bench::sim_samples(1u << 17);
  std::printf(
      "== Ablation A2: reconvergent paths, Eq. 14 vs flat cross-spectra "
      "==\n   (x -> Q(d=%d) -> [direct + z^-D] -> +, %zu samples)\n\n",
      d, samples);

  TextTable table({"delay D", "sim power/q^2", "Ed hierarchical-PSD",
                   "Ed flat"});
  const double q2 = fxp::q_format(4, d).step() * fxp::q_format(4, d).step();
  for (std::size_t delay : {0u, 1u, 2u, 4u, 16u, 64u}) {
    const auto g = two_path_graph(delay, d);
    Xoshiro256 rng(17 + delay);
    const auto x = uniform_signal(samples, 0.9, rng);
    const double simulated = sim::measure_output_error(g, x, 256).power;
    const double psd =
        core::PsdAnalyzer(g, {.n_psd = 1024}).output_noise_power();
    const double flat = core::FlatAnalyzer(g, 1024).output_noise_power();
    table.add_row({std::to_string(delay),
                   TextTable::num(simulated / q2, 4),
                   TextTable::percent(core::mse_deviation(simulated, psd)),
                   TextTable::percent(core::mse_deviation(simulated,
                                                          flat))});
  }
  table.print();
  std::printf(
      "\n(D = 0: same-source reconvergence -> hierarchical method "
      "underestimates by ~2x;\n flat stays exact at every delay. White "
      "noise decorrelates for D >= 1, so the\n Eq. 14 approximation "
      "recovers — the regime the paper's systems live in.)\n");
  return 0;
}
