// Search-subsystem harness: annealing / tabu / branch-and-bound single
// runs and Pareto-front sweeps over the paper's Fig. 2 frequency-domain
// band-pass, timed with google-benchmark and gated against
// BENCH_baseline.json by bench/compare_bench.py like the other suites.
//
// Beyond the sweeps, main() runs a hard gate and exits nonzero when it
// fails:
//   * annealing on the fig6 system must ride the delta probe path:
//     probe_counters() after a run must show delta >= 100x full (a full
//     evaluation costs O(graph * n_psd); the whole point of PR-5's
//     incremental contract is that search strategies pay it only for the
//     baseline stamp, ~once per round);
//   * the Pareto sweep on the same system must produce a
//     dominance-consistent front that is bit-identical between a 1-worker
//     and a 4-worker fan-out (the sweep determinism contract).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "fixedpoint/format.hpp"
#include "freqfilt/freq_filter.hpp"
#include "opt/search/annealing.hpp"
#include "opt/search/branch_and_bound.hpp"
#include "opt/search/pareto.hpp"
#include "opt/search/strategies.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "sfg/graph.hpp"

namespace {

using namespace psdacc;

sfg::Graph fig6_graph() {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, 16);
  return ff::build_freqfilt_sfg(cfg);
}

opt::OptimizerConfig search_config(bool incremental) {
  opt::OptimizerConfig cfg;
  cfg.noise_budget = 1e-7;
  cfg.min_bits = 4;
  cfg.max_bits = 20;
  cfg.n_psd = 256;
  cfg.incremental = incremental;
  return cfg;
}

opt::search::AnnealOptions anneal_options() {
  opt::search::AnnealOptions o;
  o.seed = 42;
  o.rounds = 40;
  o.proposals_per_round = 4;
  return o;
}

// Simulated annealing over the fig6 system, delta probes vs full
// re-evaluations — the pair whose ratio is the delta path's dividend.
void BM_AnnealFig6(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  for (auto _ : state) {
    sfg::Graph g = fig6_graph();
    opt::WordlengthOptimizer optimizer(g, g.noise_sources(),
                                       search_config(incremental));
    opt::search::SimulatedAnnealing anneal(anneal_options());
    const auto r = anneal.run(optimizer);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_AnnealFig6)
    ->ArgNames({"incremental"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_TabuFig6(benchmark::State& state) {
  opt::search::TabuOptions topt;
  topt.rounds = 24;
  for (auto _ : state) {
    sfg::Graph g = fig6_graph();
    opt::WordlengthOptimizer optimizer(g, g.noise_sources(),
                                       search_config(true));
    opt::search::TabuSearch tabu(topt);
    const auto r = tabu.run(optimizer);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_TabuFig6)->Unit(benchmark::kMillisecond);

// Branch-and-bound over a deliberately narrow bit window: the point is the
// flat-bound pruning machinery, not an exponential search.
void BM_BnbFig6(benchmark::State& state) {
  opt::OptimizerConfig cfg = search_config(true);
  cfg.min_bits = 8;
  cfg.max_bits = 12;
  cfg.noise_budget = 1e-6;
  opt::search::BnbOptions bopt;
  bopt.max_nodes = 20000;
  for (auto _ : state) {
    sfg::Graph g = fig6_graph();
    opt::WordlengthOptimizer optimizer(g, g.noise_sources(), cfg);
    opt::search::BranchAndBound bnb(bopt);
    const auto r = bnb.run(optimizer);
    benchmark::DoNotOptimize(r.cost);
  }
}
BENCHMARK(BM_BnbFig6)->Unit(benchmark::kMillisecond);

// Greedy Pareto sweep, serial vs 4-way point fan-out.
void BM_SweepFig6(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const sfg::Graph g = fig6_graph();
  opt::search::SweepConfig cfg;
  cfg.budgets = {1e-9, 1e-8, 1e-7, 1e-6};
  cfg.base = search_config(true);
  cfg.workers = workers;
  for (auto _ : state) {
    opt::search::ParetoSweep sweep(g, g.noise_sources(), cfg);
    const auto points = sweep.run_points();
    benchmark::DoNotOptimize(points.size());
  }
}
BENCHMARK(BM_SweepFig6)
    ->ArgNames({"workers"})
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// --- hard gate -------------------------------------------------------------

bool bits_equal(const std::vector<opt::search::ParetoPoint>& a,
                const std::vector<opt::search::ParetoPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].budget != b[i].budget || a[i].cost != b[i].cost ||
        a[i].noise != b[i].noise || a[i].bits != b[i].bits)
      return false;
  }
  return true;
}

bool run_search_gate() {
  bool ok = true;

  // 1. Annealing rides the delta probe path: delta >> full.
  {
    sfg::Graph g = fig6_graph();
    opt::WordlengthOptimizer optimizer(g, g.noise_sources(),
                                       search_config(true));
    opt::search::SimulatedAnnealing anneal(anneal_options());
    const auto r = anneal.run(optimizer);
    const auto c = optimizer.probe_counters();
    std::printf(
        "[gate] anneal probes: full=%zu cached=%zu delta=%zu "
        "(cost %.0f, feasible %d)\n",
        c.full, c.cached, c.delta, r.cost, r.feasible ? 1 : 0);
    if (c.delta < 100 * c.full || c.delta == 0) {
      std::printf(
          "[gate] FAIL: annealing is not on the delta probe path "
          "(need delta >= 100x full)\n");
      ok = false;
    }
  }

  // 2. Sweep determinism + dominance: the front is bit-identical for a
  //    1-worker and a 4-worker fan-out, and no kept point dominates
  //    another.
  {
    const sfg::Graph g = fig6_graph();
    opt::search::SweepConfig cfg;
    cfg.budgets = {1e-9, 1e-8, 1e-7, 1e-6};
    cfg.base = search_config(true);
    cfg.workers = 1;
    opt::search::ParetoSweep serial(g, g.noise_sources(), cfg);
    const auto serial_front =
        opt::search::ParetoFront::from_points(serial.run_points());
    cfg.workers = 4;
    opt::search::ParetoSweep fanned(g, g.noise_sources(), cfg);
    const auto fanned_front =
        opt::search::ParetoFront::from_points(fanned.run_points());
    std::printf("[gate] sweep front: %zu points (1 worker) vs %zu (4)\n",
                serial_front.points().size(), fanned_front.points().size());
    if (!bits_equal(serial_front.points(), fanned_front.points())) {
      std::printf("[gate] FAIL: front differs between fan-out widths\n");
      ok = false;
    }
    if (!serial_front.dominance_consistent() ||
        serial_front.points().empty()) {
      std::printf("[gate] FAIL: front empty or dominance-inconsistent\n");
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return run_search_gate() ? 0 : 1;
}
