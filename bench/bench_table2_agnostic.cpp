// Table II of the paper: E_d of the proposed PSD method (at its best and
// worst N_PSD) against the PSD-agnostic hierarchical method, on the
// frequency filtering and DWT systems. The paper reports 29.5% (freq.
// filt.) and 610% (DWT) for the agnostic method versus sub-10% / ~1% for
// the proposed one.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/accuracy_engine.hpp"
#include "core/metrics.hpp"
#include "freqfilt/freq_filter.hpp"
#include "imaging/textures.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"

namespace {

using namespace psdacc;

constexpr int kFracBits = 16;

struct SystemResult {
  double ed_psd_min_npsd = 0.0;  // N_PSD = 16 (paper's "max accuracy" col
                                 // is the max-|Ed| end of the sweep)
  double ed_psd_max_npsd = 0.0;  // N_PSD = 1024
  double ed_agnostic = 0.0;
};

SystemResult freqfilt_case(std::size_t samples) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, kFracBits);
  ff::FreqDomainBandpass fx_sys(cfg);
  auto ref_cfg = cfg;
  ref_cfg.format.reset();
  ff::FreqDomainBandpass ref_sys(ref_cfg);
  Xoshiro256 rng(11);
  const auto x = uniform_signal(samples, 0.9, rng);
  const auto yr = ref_sys.process(x);
  const auto yf = fx_sys.process(x);
  RunningStats err;
  for (std::size_t i = 512; i < x.size(); ++i) err.add(yf[i] - yr[i]);
  const double simulated = err.mean_square();

  const auto g = ff::build_freqfilt_sfg(cfg);
  // Estimation goes through the unified engine interface: same driver
  // code, different EngineKind/options per column.
  SystemResult r;
  r.ed_psd_min_npsd = core::mse_deviation(
      simulated, core::make_engine(core::EngineKind::kPsd, g, {.n_psd = 16})
                     ->output_noise_power());
  r.ed_psd_max_npsd = core::mse_deviation(
      simulated,
      core::make_engine(core::EngineKind::kPsd, g, {.n_psd = 1024})
          ->output_noise_power());
  r.ed_agnostic = core::mse_deviation(
      simulated, core::make_engine(core::EngineKind::kMoment, g)
                     ->output_noise_power());
  return r;
}

SystemResult dwt_case(std::size_t images) {
  const auto fmt = fxp::q_format(4, kFracBits);
  const auto bank = img::texture_bank(images, 64, 64, 900);
  double acc = 0.0;
  for (const auto& im : bank) {
    const auto ref = wav::dwt2d_roundtrip(im, 2, {});
    const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
    acc += img::mse(ref, fx);
  }
  const double simulated = acc / static_cast<double>(images);

  SystemResult r;
  const wav::Dwt2dNoiseConfig coarse{.levels = 2, .format = fmt,
                                     .n_bins = 16, .quantize_input = true};
  wav::Dwt2dNoiseConfig fine = coarse;
  fine.n_bins = 64;
  r.ed_psd_min_npsd =
      core::mse_deviation(simulated, wav::dwt2d_noise_psd(coarse).power());
  r.ed_psd_max_npsd =
      core::mse_deviation(simulated, wav::dwt2d_noise_psd(fine).power());
  r.ed_agnostic = core::mse_deviation(
      simulated, wav::dwt2d_noise_power_moments(coarse));
  return r;
}

}  // namespace

int main() {
  const std::size_t ff_samples = bench::sim_samples(1u << 18);
  const std::size_t dwt_images = bench::sim_samples(12);
  std::printf(
      "== Table II: proposed PSD method vs PSD-agnostic method ==\n"
      "   (d = %d; N_PSD = 1024 for max accuracy, 16 for min accuracy;\n"
      "    paper: agnostic 29.5%% on freq. filt., 610%% on DWT)\n\n",
      kFracBits);

  const auto ffr = freqfilt_case(ff_samples);
  const auto dwtr = dwt_case(dwt_images);

  TextTable table({"", "PSD method (max acc.)", "PSD method (min acc.)",
                   "PSD-agnostic"});
  table.add_row({"Freq. Filt.", TextTable::percent(ffr.ed_psd_max_npsd),
                 TextTable::percent(ffr.ed_psd_min_npsd),
                 TextTable::percent(ffr.ed_agnostic)});
  table.add_row({"DWT 9/7", TextTable::percent(dwtr.ed_psd_max_npsd),
                 TextTable::percent(dwtr.ed_psd_min_npsd),
                 TextTable::percent(dwtr.ed_agnostic)});
  table.print();

  const double ff_factor =
      std::abs(ffr.ed_agnostic) /
      std::max(std::abs(ffr.ed_psd_min_npsd), 1e-12);
  const double dwt_factor =
      std::abs(dwtr.ed_agnostic) /
      std::max(std::abs(dwtr.ed_psd_min_npsd), 1e-12);
  std::printf(
      "\nagnostic-vs-proposed |Ed| ratio (worst-case proposed): %.1fx "
      "(freq. filt.), %.1fx (DWT)\n"
      "(the agnostic baseline is the paper's Fig. 1.b blind propagation; "
      "see\n bench_ablation_multirate for the corrected-moments variant)\n",
      ff_factor, dwt_factor);
  return 0;
}
