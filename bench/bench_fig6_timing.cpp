// Fig. 6 of the paper: execution time of simulation vs PSD estimation, and
// the speed-up factor, as N_PSD sweeps 16..4096, for both benchmark
// systems. The paper reports 3-5 orders of magnitude speed-up.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/accuracy_engine.hpp"
#include "freqfilt/freq_filter.hpp"
#include "imaging/textures.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"

namespace {

using namespace psdacc;

constexpr int kFracBits = 16;

double time_freqfilt_simulation(std::size_t samples) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, kFracBits);
  ff::FreqDomainBandpass fx_sys(cfg);
  auto ref_cfg = cfg;
  ref_cfg.format.reset();
  ff::FreqDomainBandpass ref_sys(ref_cfg);
  Xoshiro256 rng(1);
  const auto x = uniform_signal(samples, 0.9, rng);
  Stopwatch w;
  const auto yr = ref_sys.process(x);
  const auto yf = fx_sys.process(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    acc += (yf[i] - yr[i]) * (yf[i] - yr[i]);
  const double t = w.seconds();
  if (acc < 0.0) std::printf("?");  // keep the computation observable
  return t;
}

double time_dwt_simulation(std::size_t images) {
  const auto fmt = fxp::q_format(4, kFracBits);
  const auto bank = img::texture_bank(images, 64, 64, 33);
  Stopwatch w;
  double acc = 0.0;
  for (const auto& im : bank) {
    const auto ref = wav::dwt2d_roundtrip(im, 2, {});
    const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
    acc += img::mse(ref, fx);
  }
  const double t = w.seconds();
  if (acc < 0.0) std::printf("?");
  return t;
}

// Median-of-repeats timing of the estimation stage alone (tau_eval).
template <typename F>
double time_estimation(F&& evaluate, int repeats = 7) {
  std::vector<double> times;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch w;
    evaluate();
    times.push_back(w.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  const std::size_t ff_samples = bench::sim_samples(1u << 19);
  const std::size_t dwt_images = bench::sim_samples(16);
  std::printf(
      "== Fig. 6: execution time (s) and speed-up vs N_PSD ==\n"
      "   (simulation: %zu samples / %zu images; estimation: tau_eval of\n"
      "    one propagation sweep; paper reports 10^3..10^5 speed-up)\n\n",
      ff_samples, dwt_images);

  const double sim_ff = time_freqfilt_simulation(ff_samples);
  const double sim_dwt = time_dwt_simulation(dwt_images);
  std::printf("simulation time: freq. filt. %.3f s, DWT %.3f s\n\n", sim_ff,
              sim_dwt);

  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, kFracBits);
  const auto ff_graph = ff::build_freqfilt_sfg(cfg);

  TextTable table({"N_PSD", "est FF (s)", "est DWT (s)", "speedup FF",
                   "speedup DWT", "log10(FF)", "log10(DWT)"});
  for (std::size_t n = 16; n <= 4096; n *= 2) {
    // tau_eval through the unified engine interface (construction outside
    // the timed lambda is the tau_pp phase, as the paper splits it).
    const auto engine =
        core::make_engine(core::EngineKind::kPsd, ff_graph, {.n_psd = n});
    const double est_ff =
        time_estimation([&] { return engine->output_noise_power(); });
    const wav::Dwt2dNoiseConfig dwt_cfg{
        .levels = 2, .format = fxp::q_format(4, kFracBits),
        .n_bins = std::min<std::size_t>(std::max<std::size_t>(n, 4), 128),
        .quantize_input = true};
    const double est_dwt =
        time_estimation([&] { return wav::dwt2d_noise_psd(dwt_cfg); });
    table.add_row(
        {std::to_string(n), TextTable::num(est_ff, 3),
         TextTable::num(est_dwt, 3), TextTable::num(sim_ff / est_ff, 3),
         TextTable::num(sim_dwt / est_dwt, 3),
         TextTable::num(std::log10(sim_ff / est_ff), 3),
         TextTable::num(std::log10(sim_dwt / est_dwt), 3)});
  }
  table.print();
  std::printf(
      "\n(2-D DWT estimation bins are per axis, capped at 128 -> 16384\n"
      " total bins; its cost grows with N_PSD^2 as the 2-D grid does.)\n");
  return 0;
}
