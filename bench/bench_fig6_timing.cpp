// Fig. 6 of the paper: execution time of simulation vs PSD estimation, and
// the speed-up factor, as N_PSD sweeps 16..4096, for both benchmark
// systems. The paper reports 3-5 orders of magnitude speed-up. On top of
// the paper's figure, the incremental section times the word-length
// optimizer end to end with delta probing on vs off on the largest
// configuration of the frequency-filtering system, asserting both searches
// land on identical word-lengths.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/accuracy_engine.hpp"
#include "freqfilt/freq_filter.hpp"
#include "imaging/textures.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"

namespace {

using namespace psdacc;

constexpr int kFracBits = 16;

double time_freqfilt_simulation(std::size_t samples) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, kFracBits);
  ff::FreqDomainBandpass fx_sys(cfg);
  auto ref_cfg = cfg;
  ref_cfg.format.reset();
  ff::FreqDomainBandpass ref_sys(ref_cfg);
  Xoshiro256 rng(1);
  const auto x = uniform_signal(samples, 0.9, rng);
  Stopwatch w;
  const auto yr = ref_sys.process(x);
  const auto yf = fx_sys.process(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    acc += (yf[i] - yr[i]) * (yf[i] - yr[i]);
  const double t = w.seconds();
  if (acc < 0.0) std::printf("?");  // keep the computation observable
  return t;
}

double time_dwt_simulation(std::size_t images) {
  const auto fmt = fxp::q_format(4, kFracBits);
  const auto bank = img::texture_bank(images, 64, 64, 33);
  Stopwatch w;
  double acc = 0.0;
  for (const auto& im : bank) {
    const auto ref = wav::dwt2d_roundtrip(im, 2, {});
    const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
    acc += img::mse(ref, fx);
  }
  const double t = w.seconds();
  if (acc < 0.0) std::printf("?");
  return t;
}

// Median-of-repeats timing of the estimation stage alone (tau_eval).
template <typename F>
double time_estimation(F&& evaluate, int repeats = 7) {
  std::vector<double> times;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch w;
    evaluate();
    times.push_back(w.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// Stamps a noise source's fractional bits (set_bits semantics). The timed
// estimation loops flip a source between evaluations: engines memoize
// unchanged-graph evaluations on sfg::Graph::revision(), and tau_eval
// means the cost of a *real* probe — evaluation after a word-length move —
// not a cache hit.
void stamp_source_bits(sfg::Graph& g, sfg::NodeId id, int bits) {
  const sfg::NodeView node = g.node(id);
  if (const auto* q = std::get_if<sfg::QuantizerNode>(&node.payload)) {
    auto format = q->format;
    format.fractional_bits = bits;
    g.set_format(id, format);
    return;
  }
  auto format = *std::get<sfg::BlockNode>(node.payload).output_format;
  format.fractional_bits = bits;
  g.set_format(id, format);
}

// End-to-end optimizer wall-clock with delta probing on vs off, identical
// searches asserted. Returns false (and reports) on any mismatch or if the
// largest system misses the 3x bar.
bool run_incremental_section() {
  std::printf(
      "\n== Incremental probing: greedy_descent wall-clock, delta vs full "
      "==\n   (frequency-filtering system, psd engine; same final "
      "word-lengths asserted)\n\n");
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, kFracBits);

  bool ok = true;
  double largest_speedup = 0.0;
  TextTable table({"N_PSD", "full (s)", "delta (s)", "speedup", "evals",
                   "bits equal"});
  for (const std::size_t n : {256u, 1024u, 4096u}) {
    opt::OptimizerConfig ocfg;
    ocfg.noise_budget = 5e-10;
    ocfg.min_bits = 4;
    ocfg.max_bits = 24;
    ocfg.n_psd = n;

    ocfg.incremental = false;
    auto g_full = ff::build_freqfilt_sfg(cfg);
    opt::WordlengthOptimizer full(g_full, g_full.noise_sources(), ocfg);
    Stopwatch w_full;
    const auto r_full = full.greedy_descent();
    const double t_full = w_full.seconds();

    ocfg.incremental = true;
    auto g_delta = ff::build_freqfilt_sfg(cfg);
    opt::WordlengthOptimizer delta(g_delta, g_delta.noise_sources(), ocfg);
    Stopwatch w_delta;
    const auto r_delta = delta.greedy_descent();
    const double t_delta = w_delta.seconds();

    const bool equal = r_full.bits == r_delta.bits &&
                       r_full.evaluations == r_delta.evaluations;
    ok = ok && equal;
    const double speedup = t_full / t_delta;
    largest_speedup = speedup;  // last row is the largest N_PSD
    table.add_row({std::to_string(n), TextTable::num(t_full, 4),
                   TextTable::num(t_delta, 4), TextTable::num(speedup, 2),
                   std::to_string(r_delta.evaluations),
                   equal ? "yes" : "NO"});
  }
  table.print();
  if (!ok)
    std::printf("\nFAIL: delta and full probing diverged (see table)\n");
  if (largest_speedup < 3.0) {
    std::printf(
        "\nFAIL: delta speedup %.2fx on the largest system is below the "
        "3x bar\n",
        largest_speedup);
    ok = false;
  }
  return ok;
}

}  // namespace

int main() {
  const std::size_t ff_samples = bench::sim_samples(1u << 19);
  const std::size_t dwt_images = bench::sim_samples(16);
  std::printf(
      "== Fig. 6: execution time (s) and speed-up vs N_PSD ==\n"
      "   (simulation: %zu samples / %zu images; estimation: tau_eval of\n"
      "    one propagation sweep; paper reports 10^3..10^5 speed-up)\n\n",
      ff_samples, dwt_images);

  const double sim_ff = time_freqfilt_simulation(ff_samples);
  const double sim_dwt = time_dwt_simulation(dwt_images);
  std::printf("simulation time: freq. filt. %.3f s, DWT %.3f s\n\n", sim_ff,
              sim_dwt);

  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, kFracBits);
  auto ff_graph = ff::build_freqfilt_sfg(cfg);
  const auto ff_probe_node = ff_graph.noise_sources().front();

  TextTable table({"N_PSD", "est FF (s)", "est DWT (s)", "speedup FF",
                   "speedup DWT", "log10(FF)", "log10(DWT)"});
  for (std::size_t n = 16; n <= 4096; n *= 2) {
    // tau_eval through the unified engine interface (construction outside
    // the timed lambda is the tau_pp phase, as the paper splits it). Each
    // timed evaluation follows a word-length move — see stamp_source_bits.
    const auto engine =
        core::make_engine(core::EngineKind::kPsd, ff_graph, {.n_psd = n});
    bool flip = false;
    const double est_ff = time_estimation([&] {
      flip = !flip;
      stamp_source_bits(ff_graph, ff_probe_node,
                        flip ? kFracBits + 1 : kFracBits);
      return engine->output_noise_power();
    });
    const wav::Dwt2dNoiseConfig dwt_cfg{
        .levels = 2, .format = fxp::q_format(4, kFracBits),
        .n_bins = std::min<std::size_t>(std::max<std::size_t>(n, 4), 128),
        .quantize_input = true};
    const double est_dwt =
        time_estimation([&] { return wav::dwt2d_noise_psd(dwt_cfg); });
    table.add_row(
        {std::to_string(n), TextTable::num(est_ff, 3),
         TextTable::num(est_dwt, 3), TextTable::num(sim_ff / est_ff, 3),
         TextTable::num(sim_dwt / est_dwt, 3),
         TextTable::num(std::log10(sim_ff / est_ff), 3),
         TextTable::num(std::log10(sim_dwt / est_dwt), 3)});
  }
  table.print();
  std::printf(
      "\n(2-D DWT estimation bins are per axis, capped at 128 -> 16384\n"
      " total bins; its cost grows with N_PSD^2 as the 2-D grid does.)\n");

  return run_incremental_section() ? 0 : 1;
}
