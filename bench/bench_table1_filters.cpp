// Table I of the paper: E_d statistics (min / max / mean |E_d|) of the
// proposed PSD estimate against fixed-point simulation over a population
// of 147 FIR and 147 IIR filters, plus the flat-method equivalence check
// the paper reports alongside ("classical flat estimation ... gives
// exactly the same results").
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/flat_analyzer.hpp"
#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace psdacc;

struct BankStats {
  double min_ed = 0.0;
  double max_ed = 0.0;
  double mean_abs_ed = 0.0;
  double max_flat_gap = 0.0;  // max |psd - flat| / psd over the bank
  std::size_t count = 0;
};

BankStats run_bank(const std::vector<bench::FilterSpec>& bank, int d,
                   std::size_t samples, std::uint64_t seed0) {
  std::vector<double> eds;
  double max_flat_gap = 0.0;
  std::uint64_t seed = seed0;
  for (const auto& spec : bank) {
    const auto g = bench::quantized_filter_graph(spec.tf, d);
    core::PsdAnalyzer psd(g, {.n_psd = 1024});
    const double est = psd.output_noise_power();

    const core::FlatAnalyzer flat(g, 1024);
    max_flat_gap = std::max(
        max_flat_gap, std::abs(est - flat.output_noise_power()) / est);

    Xoshiro256 rng(seed++);
    const auto x = uniform_signal(samples, 0.9, rng);
    const double simulated = sim::measure_output_error(g, x, 1024).power;
    eds.push_back(core::mse_deviation(simulated, est));
  }
  BankStats s;
  s.min_ed = psdacc::min_element(eds);
  s.max_ed = psdacc::max_element(eds);
  s.mean_abs_ed = psdacc::mean_abs(eds);
  s.max_flat_gap = max_flat_gap;
  s.count = eds.size();
  return s;
}

}  // namespace

int main() {
  const int d = 12;
  const std::size_t samples = bench::sim_samples(1u << 17);
  std::printf(
      "== Table I: relative error power estimation statistics E_d ==\n"
      "   (d = %d fractional bits, %zu simulation samples per filter,\n"
      "    N_PSD = 1024; paper: FIR within +-0.37%%, IIR within "
      "[-19.4%%, 31.2%%])\n\n",
      d, samples);

  Stopwatch clock;
  const auto fir = run_bank(bench::fir_bank(), d, samples, 1000);
  const auto iir = run_bank(bench::iir_bank(), d, samples, 2000);

  TextTable table({"", "FIR filters", "IIR filters"});
  table.add_row({"filters", std::to_string(fir.count),
                 std::to_string(iir.count)});
  table.add_row({"min(Ed)", TextTable::percent(fir.min_ed),
                 TextTable::percent(iir.min_ed)});
  table.add_row({"max(Ed)", TextTable::percent(fir.max_ed),
                 TextTable::percent(iir.max_ed)});
  table.add_row({"mean(|Ed|)", TextTable::percent(fir.mean_abs_ed),
                 TextTable::percent(iir.mean_abs_ed)});
  table.print();

  std::printf(
      "\nFlat-method equivalence on elementary blocks: max relative gap\n"
      "|P_psd - P_flat| / P_psd = %.3g (FIR bank), %.3g (IIR bank)\n",
      fir.max_flat_gap, iir.max_flat_gap);
  std::printf("[table1] total wall time: %.1f s\n", clock.seconds());
  return 0;
}
