// psdacc-submit: client CLI for a running psdacc-serve daemon.
//
//   psdacc-submit [--port P] eval [--timeout-ms T] [--check] <file.sfg>...
//       Submit each document for evaluation and print the per-engine
//       output noise powers. With --check, also compare the served values
//       against the file's own `expect` section (1e-9 relative — the
//       golden-corpus contract) and fail on mismatch.
//
//   psdacc-submit [--port P] opt [--strategy S] [--budget B]
//                 [--min-bits N] [--max-bits N] [--engine E]
//                 [--timeout-ms T] <file.sfg>
//       Submit a word-length optimization job and print the resulting
//       assignment (streamed PROG frames are counted, not printed).
//
//   psdacc-submit [--port P] sweep [--strategy S] [--budgets B1,B2,...]
//                 [--budget-lo B] [--budget-hi B] [--points N]
//                 [--min-bits N] [--max-bits N] [--engine E] [--seed S]
//                 [--timeout-ms T] <file.sfg>
//       Submit a Pareto-sweep job (PARJ) and print the dominance-filtered
//       front as CSV (one PROG frame streams per completed budget point).
//
//   psdacc-submit [--port P] stats
//       Print the server's stats snapshot.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "sfg/serialize.hpp"

namespace {

using namespace psdacc;

int usage() {
  std::fprintf(
      stderr,
      "usage: psdacc-submit [--port P] eval [--timeout-ms T] [--check]"
      " <file.sfg>...\n"
      "       psdacc-submit [--port P] opt [--strategy S] [--budget B]"
      " [--min-bits N]\n"
      "                     [--max-bits N] [--engine E] [--timeout-ms T]"
      " <file.sfg>\n"
      "       psdacc-submit [--port P] sweep [--strategy S]"
      " [--budgets B1,B2,...]\n"
      "                     [--budget-lo B] [--budget-hi B] [--points N]"
      " [--min-bits N]\n"
      "                     [--max-bits N] [--engine E] [--seed S]"
      " [--timeout-ms T] <file.sfg>\n"
      "       psdacc-submit [--port P] stats\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_failure(const std::string& path, const serve::Response& r) {
  std::fprintf(stderr, "FAIL %s [%s] %s\n", path.c_str(), r.error.c_str(),
               r.message.c_str());
  if (r.error == "PARSE")
    std::fprintf(stderr, "     at line %llu, column %llu\n",
                 static_cast<unsigned long long>(r.line),
                 static_cast<unsigned long long>(r.column));
}

/// Served value vs the document's recorded golden, 1e-9 relative.
bool check_goldens(const std::string& path, const sfg::Scenario& scenario,
                   const serve::Response& r) {
  bool ok = true;
  for (const auto& [kind, golden] : scenario.expected) {
    bool found = false;
    for (const auto& engine : r.engines) {
      if (engine.kind != kind) continue;
      found = true;
      const double rel = std::abs(engine.power - golden) /
                         std::max(std::abs(golden), 1e-300);
      if (rel > 1e-9) {
        std::fprintf(stderr,
                     "FAIL %s golden %s: served %.17g, expected %.17g "
                     "(rel %.3g)\n",
                     path.c_str(),
                     std::string(core::to_string(kind)).c_str(),
                     engine.power, golden, rel);
        ok = false;
      }
    }
    if (!found) {
      std::fprintf(stderr, "FAIL %s golden %s: engine missing from reply\n",
                   path.c_str(),
                   std::string(core::to_string(kind)).c_str());
      ok = false;
    }
  }
  return ok;
}

int cmd_eval(serve::Client& client, const std::vector<std::string>& args) {
  std::chrono::milliseconds timeout{0};
  bool check = false;
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--timeout-ms" && i + 1 < args.size())
      timeout = std::chrono::milliseconds(
          std::strtol(args[++i].c_str(), nullptr, 10));
    else if (args[i] == "--check")
      check = true;
    else
      files.push_back(args[i]);
  }
  if (files.empty()) return usage();

  int failures = 0;
  for (const auto& path : files) {
    const std::string document = read_file(path);
    const serve::Response r = client.submit_eval(document, timeout);
    if (!r.ok) {
      print_failure(path, r);
      ++failures;
      continue;
    }
    std::string engines;
    for (const auto& engine : r.engines) {
      engines += ' ';
      engines += core::to_string(engine.kind);
      engines += '=';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", engine.power);
      engines += buf;
    }
    std::printf("ok   %s cache=%s%s\n", path.c_str(),
                r.cache_hit ? "hit" : "miss", engines.c_str());
    if (check &&
        !check_goldens(path, sfg::parse_scenario(document), r))
      ++failures;
  }
  if (failures > 0)
    std::fprintf(stderr, "%d of %zu submission(s) failed\n", failures,
                 files.size());
  return failures == 0 ? 0 : 1;
}

int cmd_opt(serve::Client& client, const std::vector<std::string>& args) {
  serve::OptimizerSpec spec;
  std::chrono::milliseconds timeout{0};
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    const char* v = nullptr;
    if (args[i] == "--strategy" && (v = value()) != nullptr)
      spec.strategy = v;
    else if (args[i] == "--budget" && (v = value()) != nullptr)
      spec.noise_budget = std::strtod(v, nullptr);
    else if (args[i] == "--min-bits" && (v = value()) != nullptr)
      spec.min_bits = static_cast<int>(std::strtol(v, nullptr, 10));
    else if (args[i] == "--max-bits" && (v = value()) != nullptr)
      spec.max_bits = static_cast<int>(std::strtol(v, nullptr, 10));
    else if (args[i] == "--engine" && (v = value()) != nullptr) {
      const auto kind = core::parse_engine_kind(v);
      if (!kind.has_value()) {
        std::fprintf(stderr, "psdacc-submit: unknown engine '%s'\n", v);
        return 2;
      }
      spec.engine = *kind;
    } else if (args[i] == "--timeout-ms" && (v = value()) != nullptr)
      timeout = std::chrono::milliseconds(std::strtol(v, nullptr, 10));
    else
      files.push_back(args[i]);
  }
  if (files.size() != 1) return usage();

  const std::string& path = files.front();
  const serve::Response r =
      client.submit_opt(read_file(path), spec, timeout);
  if (!r.ok && r.error != "TIMEOUT") {
    print_failure(path, r);
    return 1;
  }
  std::string bits;
  for (std::size_t i = 0; i < r.bits.size(); ++i) {
    if (i > 0) bits += ' ';
    bits += std::to_string(r.bits[i]);
  }
  std::printf(
      "%s %s strategy=%s feasible=%d cost=%g noise=%.12g evaluations=%llu "
      "progress=%zu bits=[%s]\n",
      r.cancelled ? "TIMEOUT(partial)" : "ok  ", path.c_str(),
      r.strategy.c_str(), r.feasible ? 1 : 0, r.cost, r.noise,
      static_cast<unsigned long long>(r.evaluations), r.progress.size(),
      bits.c_str());
  return r.cancelled ? 3 : 0;
}

int cmd_sweep(serve::Client& client, const std::vector<std::string>& args) {
  serve::SweepSpec spec;
  std::chrono::milliseconds timeout{0};
  std::vector<std::string> files;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    const char* v = nullptr;
    if (args[i] == "--strategy" && (v = value()) != nullptr)
      spec.strategy = v;
    else if (args[i] == "--budgets" && (v = value()) != nullptr) {
      spec.budgets.clear();
      std::string list(v);
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t end = list.find(',', pos);
        if (end == std::string::npos) end = list.size();
        if (end > pos)
          spec.budgets.push_back(
              std::strtod(list.substr(pos, end - pos).c_str(), nullptr));
        pos = end + 1;
      }
    } else if (args[i] == "--budget-lo" && (v = value()) != nullptr)
      spec.budget_lo = std::strtod(v, nullptr);
    else if (args[i] == "--budget-hi" && (v = value()) != nullptr)
      spec.budget_hi = std::strtod(v, nullptr);
    else if (args[i] == "--points" && (v = value()) != nullptr)
      spec.points = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    else if (args[i] == "--min-bits" && (v = value()) != nullptr)
      spec.min_bits = static_cast<int>(std::strtol(v, nullptr, 10));
    else if (args[i] == "--max-bits" && (v = value()) != nullptr)
      spec.max_bits = static_cast<int>(std::strtol(v, nullptr, 10));
    else if (args[i] == "--engine" && (v = value()) != nullptr) {
      const auto kind = core::parse_engine_kind(v);
      if (!kind.has_value()) {
        std::fprintf(stderr, "psdacc-submit: unknown engine '%s'\n", v);
        return 2;
      }
      spec.engine = *kind;
    } else if (args[i] == "--seed" && (v = value()) != nullptr)
      spec.seed = std::strtoull(v, nullptr, 10);
    else if (args[i] == "--timeout-ms" && (v = value()) != nullptr)
      timeout = std::chrono::milliseconds(std::strtol(v, nullptr, 10));
    else
      files.push_back(args[i]);
  }
  if (files.size() != 1) return usage();

  const std::string& path = files.front();
  const serve::Response r =
      client.submit_sweep(read_file(path), spec, timeout);
  if (!r.ok && r.error != "TIMEOUT") {
    print_failure(path, r);
    return 1;
  }
  const bool partial = !r.ok;  // TIMEOUT with a completed prefix attached
  std::printf("%s %s strategy=%s cache=%s points=%zu front=%zu "
              "probes_full=%llu probes_delta=%llu progress=%zu\n",
              partial ? "TIMEOUT(partial)" : "ok  ", path.c_str(),
              r.strategy.c_str(), r.cache_hit ? "hit" : "miss",
              r.sweep_points.size(), r.front.size(),
              static_cast<unsigned long long>(r.probes_full),
              static_cast<unsigned long long>(r.probes_delta),
              r.progress.size());
  std::printf("budget,cost,noise,feasible,evaluations,bits\n");
  for (const auto& p : r.front) {
    std::string bits;
    for (std::size_t i = 0; i < p.bits.size(); ++i) {
      if (i > 0) bits += '|';
      bits += std::to_string(p.bits[i]);
    }
    std::printf("%.17g,%.17g,%.17g,%d,%llu,%s\n", p.budget, p.cost,
                p.noise, p.feasible ? 1 : 0,
                static_cast<unsigned long long>(p.evaluations),
                bits.c_str());
  }
  return partial ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7533;
  int i = 1;
  if (i + 1 < argc && std::strcmp(argv[i], "--port") == 0) {
    port = static_cast<std::uint16_t>(std::strtoul(argv[i + 1], nullptr, 10));
    i += 2;
  }
  if (i >= argc) return usage();
  const std::string cmd = argv[i++];
  const std::vector<std::string> args(argv + i, argv + argc);

  try {
    serve::Client client(port);
    if (cmd == "eval") return cmd_eval(client, args);
    if (cmd == "opt") return cmd_opt(client, args);
    if (cmd == "sweep") return cmd_sweep(client, args);
    if (cmd == "stats" && args.empty()) {
      std::fputs(client.stats_text().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdacc-submit: %s\n", e.what());
    return 1;
  }
  return usage();
}
