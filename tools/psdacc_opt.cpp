// psdacc-opt: offline word-length search driver over serialized scenario
// documents — the CLI face of the src/opt/search/ subsystem.
//
//   psdacc-opt run [--strategy S] [--budget B] [--min-bits N] [--max-bits N]
//                  [--engine E] [--seed S] [--workers N] [--json]
//                  <file.sfg>
//       One search (S in: uniform | greedy | min_plus_one | anneal | tabu
//       | bnb) over the document's graph, variables = its noise sources.
//       `anneal`/`bnb` also work as verbs: `psdacc-opt anneal f.sfg` ==
//       `psdacc-opt run --strategy anneal f.sfg`.
//
//   psdacc-opt sweep [--strategy S] [--budgets B1,B2,...]
//                    [--budget-lo B] [--budget-hi B] [--points N]
//                    [--min-bits N] [--max-bits N] [--engine E] [--seed S]
//                    [--workers N] [--csv] [--json] [--all-points]
//                    <file.sfg>
//       Pareto-front sweep: one search per budget, dominance-filtered.
//       Default output is the front as a table; --csv emits the canonical
//       CSV (`budget,cost,noise,feasible,evaluations,bits`), --all-points
//       includes dominated ladder points in the CSV/JSON.
//
// Exit codes: 0 success, 1 infeasible/empty front, 2 usage/config error.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "opt/search/pareto.hpp"
#include "opt/search/strategies.hpp"
#include "sfg/serialize.hpp"
#include "sfg/verify.hpp"

namespace {

using namespace psdacc;

int usage() {
  std::fprintf(
      stderr,
      "usage: psdacc-opt run [--strategy S] [--budget B] [--min-bits N]\n"
      "                      [--max-bits N] [--engine E] [--seed S]"
      " [--workers N]\n"
      "                      [--json] <file.sfg>\n"
      "       psdacc-opt sweep [--strategy S] [--budgets B1,B2,...]\n"
      "                      [--budget-lo B] [--budget-hi B] [--points N]\n"
      "                      [--min-bits N] [--max-bits N] [--engine E]"
      " [--seed S]\n"
      "                      [--workers N] [--csv] [--json] [--all-points]"
      " <file.sfg>\n"
      "       (any strategy token also works as a verb: psdacc-opt anneal"
      " <file.sfg>)\n");
  return 2;
}

std::string shortest(double v) {
  char buf[64];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, r.ptr);
}

std::string join_bits(const std::vector<int>& bits, char sep) {
  std::string out;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (i > 0) out += sep;
    out += std::to_string(bits[i]);
  }
  return out;
}

/// Everything both verbs share; sweep-only fields are ignored by `run`.
struct Options {
  std::string strategy = "greedy";
  double budget = 1e-6;
  std::vector<double> budgets;
  double budget_lo = 1e-10;
  double budget_hi = 1e-4;
  std::size_t points = 8;
  int min_bits = 2;
  int max_bits = 24;
  core::EngineKind engine = core::EngineKind::kPsd;
  bool engine_set = false;
  std::uint64_t seed = 0;
  std::size_t workers = 1;
  bool json = false;
  bool csv = false;
  bool all_points = false;
  std::string path;
};

bool parse_options(const std::vector<std::string>& args, Options& o) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < args.size() ? args[++i].c_str() : nullptr;
    };
    const char* v = nullptr;
    if (args[i] == "--strategy" && (v = value()) != nullptr)
      o.strategy = v;
    else if (args[i] == "--budget" && (v = value()) != nullptr)
      o.budget = std::strtod(v, nullptr);
    else if (args[i] == "--budgets" && (v = value()) != nullptr) {
      o.budgets.clear();
      std::string list(v);
      std::size_t pos = 0;
      while (pos < list.size()) {
        std::size_t end = list.find(',', pos);
        if (end == std::string::npos) end = list.size();
        if (end > pos)
          o.budgets.push_back(
              std::strtod(list.substr(pos, end - pos).c_str(), nullptr));
        pos = end + 1;
      }
    } else if (args[i] == "--budget-lo" && (v = value()) != nullptr)
      o.budget_lo = std::strtod(v, nullptr);
    else if (args[i] == "--budget-hi" && (v = value()) != nullptr)
      o.budget_hi = std::strtod(v, nullptr);
    else if (args[i] == "--points" && (v = value()) != nullptr)
      o.points = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    else if (args[i] == "--min-bits" && (v = value()) != nullptr)
      o.min_bits = static_cast<int>(std::strtol(v, nullptr, 10));
    else if (args[i] == "--max-bits" && (v = value()) != nullptr)
      o.max_bits = static_cast<int>(std::strtol(v, nullptr, 10));
    else if (args[i] == "--engine" && (v = value()) != nullptr) {
      const auto kind = core::parse_engine_kind(v);
      if (!kind.has_value()) {
        std::fprintf(stderr, "psdacc-opt: unknown engine '%s'\n", v);
        return false;
      }
      o.engine = *kind;
      o.engine_set = true;
    } else if (args[i] == "--seed" && (v = value()) != nullptr)
      o.seed = std::strtoull(v, nullptr, 10);
    else if (args[i] == "--workers" && (v = value()) != nullptr)
      o.workers = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    else if (args[i] == "--json")
      o.json = true;
    else if (args[i] == "--csv")
      o.csv = true;
    else if (args[i] == "--all-points")
      o.all_points = true;
    else if (!args[i].empty() && args[i][0] == '-') {
      std::fprintf(stderr, "psdacc-opt: unknown option '%s'\n",
                   args[i].c_str());
      return false;
    } else if (o.path.empty())
      o.path = args[i];
    else {
      std::fprintf(stderr, "psdacc-opt: one input document, got '%s' too\n",
                   args[i].c_str());
      return false;
    }
  }
  if (o.path.empty()) {
    std::fprintf(stderr, "psdacc-opt: missing input document\n");
    return false;
  }
  if (!opt::search::known_strategy(o.strategy)) {
    std::fprintf(stderr, "psdacc-opt: unknown strategy '%s'\n",
                 o.strategy.c_str());
    return false;
  }
  return true;
}

opt::OptimizerConfig base_config(const Options& o,
                                 const sfg::Scenario& scenario) {
  opt::OptimizerConfig cfg;
  cfg.noise_budget = o.budget;
  cfg.min_bits = o.min_bits;
  cfg.max_bits = o.max_bits;
  cfg.n_psd = scenario.config.n_psd;
  cfg.engine = o.engine;
  cfg.engine_opts = sfg::engine_options_for(scenario.config);
  cfg.workers = o.workers;
  return cfg;
}

opt::search::StrategySpec strategy_spec(const Options& o) {
  opt::search::StrategySpec spec;
  spec.name = o.strategy;
  spec.anneal.seed = o.seed;
  return spec;
}

int cmd_run(const std::vector<std::string>& args,
            const std::string& strategy_verb) {
  Options o;
  if (!strategy_verb.empty()) o.strategy = strategy_verb;
  if (!parse_options(args, o)) return 2;

  sfg::Scenario scenario = sfg::load_scenario(o.path);
  if (scenario.graph.noise_sources().empty()) {
    std::fprintf(stderr, "psdacc-opt: %s has no noise sources\n",
                 o.path.c_str());
    return 2;
  }
  if (!core::engine_supports(o.engine, scenario.graph)) {
    std::fprintf(stderr,
                 "psdacc-opt: engine cannot evaluate this graph\n");
    return 2;
  }
  opt::WordlengthOptimizer optimizer(
      scenario.graph, scenario.graph.noise_sources(), base_config(o,
                                                                  scenario));
  const opt::OptimizerResult r =
      opt::search::run_strategy(optimizer, strategy_spec(o));
  const auto counters = optimizer.probe_counters();

  if (o.json) {
    std::printf(
        "{\"strategy\":\"%s\",\"budget\":%s,\"feasible\":%s,"
        "\"cost\":%s,\"noise\":%s,\"evaluations\":%zu,"
        "\"probes\":{\"full\":%zu,\"cached\":%zu,\"delta\":%zu},"
        "\"bits\":[%s]}\n",
        o.strategy.c_str(), shortest(o.budget).c_str(),
        r.feasible ? "true" : "false", shortest(r.cost).c_str(),
        shortest(r.noise).c_str(), r.evaluations, counters.full,
        counters.cached, counters.delta, join_bits(r.bits, ',').c_str());
  } else {
    std::printf(
        "strategy=%s budget=%s feasible=%d cost=%s noise=%s "
        "evaluations=%zu probes_delta=%zu probes_full=%zu bits=[%s]\n",
        o.strategy.c_str(), shortest(o.budget).c_str(), r.feasible ? 1 : 0,
        shortest(r.cost).c_str(), shortest(r.noise).c_str(), r.evaluations,
        counters.delta, counters.full, join_bits(r.bits, ' ').c_str());
  }
  return r.feasible ? 0 : 1;
}

int cmd_sweep(const std::vector<std::string>& args) {
  Options o;
  if (!parse_options(args, o)) return 2;

  sfg::Scenario scenario = sfg::load_scenario(o.path);
  if (scenario.graph.noise_sources().empty()) {
    std::fprintf(stderr, "psdacc-opt: %s has no noise sources\n",
                 o.path.c_str());
    return 2;
  }
  if (!core::engine_supports(o.engine, scenario.graph)) {
    std::fprintf(stderr,
                 "psdacc-opt: engine cannot evaluate this graph\n");
    return 2;
  }
  opt::search::SweepConfig cfg;
  cfg.budgets = o.budgets;
  cfg.budget_lo = o.budget_lo;
  cfg.budget_hi = o.budget_hi;
  cfg.points = o.points;
  cfg.base = base_config(o, scenario);
  cfg.base.workers = 1;  // fan out across points instead
  cfg.strategy = strategy_spec(o);
  cfg.workers = o.workers;
  opt::search::ParetoSweep sweep(
      scenario.graph, scenario.graph.noise_sources(), cfg);
  const std::vector<opt::search::ParetoPoint> points = sweep.run_points();
  const auto front = opt::search::ParetoFront::from_points(points);
  const auto counters = sweep.probe_counters();

  if (o.json) {
    const auto emit = [](const opt::search::ParetoPoint& p) {
      std::string out = "{\"budget\":" + shortest(p.budget) +
                        ",\"cost\":" + shortest(p.cost) +
                        ",\"noise\":" + shortest(p.noise) +
                        ",\"feasible\":" + (p.feasible ? "true" : "false") +
                        ",\"evaluations\":" + std::to_string(p.evaluations) +
                        ",\"bits\":[" + join_bits(p.bits, ',') + "]}";
      return out;
    };
    std::string body = "{\"strategy\":\"" + o.strategy + "\",\"front\":[";
    for (std::size_t i = 0; i < front.points().size(); ++i) {
      if (i > 0) body += ',';
      body += emit(front.points()[i]);
    }
    body += ']';
    if (o.all_points) {
      body += ",\"points\":[";
      for (std::size_t i = 0; i < points.size(); ++i) {
        if (i > 0) body += ',';
        body += emit(points[i]);
      }
      body += ']';
    }
    body += ",\"probes\":{\"full\":" + std::to_string(counters.full) +
            ",\"cached\":" + std::to_string(counters.cached) +
            ",\"delta\":" + std::to_string(counters.delta) + "}}";
    std::printf("%s\n", body.c_str());
  } else if (o.csv) {
    std::fputs(o.all_points ? opt::search::points_to_csv(points).c_str()
                            : front.to_csv().c_str(),
               stdout);
  } else {
    std::printf("%s", front.to_table().c_str());
    std::printf(
        "points=%zu front=%zu probes_full=%zu probes_cached=%zu "
        "probes_delta=%zu\n",
        points.size(), front.points().size(), counters.full,
        counters.cached, counters.delta);
  }
  return front.points().empty() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "run") return cmd_run(args, "");
    if (cmd == "sweep") return cmd_sweep(args);
    if (opt::search::known_strategy(cmd)) return cmd_run(args, cmd);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdacc-opt: %s\n", e.what());
    return 2;
  }
  return usage();
}
