// psdacc-verify: corpus checking, golden regeneration, and structure-aware
// differential fuzzing over the versioned SFG text format.
//
//   psdacc-verify check <file.sfg>...
//       Parse each document, verify canonical byte-identity, recompute every
//       engine named in its `expect` section against the recorded golden
//       value (1e-9 rel), check delta-vs-full parity (1e-12 rel) and
//       cross-engine agreement. Exit 1 on any issue.
//
//   psdacc-verify regen <file.sfg>...
//       Re-evaluate every engine in each document's config and rewrite the
//       file canonically with fresh `expect` values. Use after an
//       intentional engine change, then inspect the diff.
//
//   psdacc-verify emit-corpus <dir>
//       Write the standard golden corpus (the tests/corpus/ population)
//       into <dir>, expectations freshly evaluated.
//
//   psdacc-verify fuzz [--seeds N] [--seed-base B] [--sim-every K]
//       Deterministic structure-aware fuzzing: for each seed build a random
//       SFG (profiles default / multirate / hostile-names / degenerate,
//       cycled by seed), round-trip it through the serializer, and require
//       bit-identical engine results on the parsed copy plus delta parity
//       and cross-engine agreement. Every K-th seed (default 997) also runs
//       the Monte-Carlo simulation band check. Exit 1 on any finding.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "filters/sos.hpp"
#include "sfg/random_graph.hpp"
#include "sfg/realizations.hpp"
#include "sfg/serialize.hpp"
#include "sfg/verify.hpp"
#include "wavelet/dwt_sfg.hpp"

namespace {

using namespace psdacc;

int usage() {
  std::fprintf(stderr,
               "usage: psdacc-verify check <file.sfg>...\n"
               "       psdacc-verify regen <file.sfg>...\n"
               "       psdacc-verify emit-corpus <dir>\n"
               "       psdacc-verify fuzz [--seeds N] [--seed-base B]"
               " [--sim-every K]\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_issues(const std::string& subject,
                  const std::vector<sfg::VerifyIssue>& issues) {
  for (const auto& issue : issues)
    std::fprintf(stderr, "FAIL %s [%s] %s\n", subject.c_str(),
                 issue.check.c_str(), issue.detail.c_str());
}

int cmd_check(const std::vector<std::string>& files) {
  if (files.empty()) return usage();
  int failures = 0;
  for (const auto& path : files) {
    std::vector<sfg::VerifyIssue> issues;
    try {
      issues = sfg::verify_scenario_text(read_file(path));
    } catch (const std::exception& e) {
      issues.push_back({"io", e.what()});
    }
    if (issues.empty()) {
      std::printf("ok   %s\n", path.c_str());
    } else {
      print_issues(path, issues);
      ++failures;
    }
  }
  if (failures > 0)
    std::fprintf(stderr, "%d of %zu file(s) failed\n", failures,
                 files.size());
  return failures == 0 ? 0 : 1;
}

int cmd_regen(const std::vector<std::string>& files) {
  if (files.empty()) return usage();
  for (const auto& path : files) {
    try {
      sfg::Scenario s = sfg::parse_scenario(read_file(path));
      s.expected = sfg::evaluate_expected(s);
      s.opt_expected = sfg::evaluate_opt_expected(s);
      sfg::save_scenario(path, s);
      std::printf("regen %s (%zu expectation(s), %zu optimizer golden(s))\n",
                  path.c_str(), s.expected.size(), s.opt_expected.size());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// The standard corpus
// ---------------------------------------------------------------------------

struct CorpusEntry {
  std::string name;
  sfg::Scenario scenario;
};

sim::EvaluationConfig analytic_config() {
  sim::EvaluationConfig cfg;
  cfg.n_psd = 512;
  cfg.engines = {core::EngineKind::kPsd, core::EngineKind::kMoment,
                 core::EngineKind::kFlat};
  return cfg;
}

sim::EvaluationConfig multirate_config() {
  sim::EvaluationConfig cfg = analytic_config();
  cfg.engines = {core::EngineKind::kPsd, core::EngineKind::kMoment};
  return cfg;
}

sim::EvaluationConfig simulation_config(std::uint64_t seed) {
  sim::EvaluationConfig cfg = analytic_config();
  cfg.engines.insert(cfg.engines.begin(), core::EngineKind::kSimulation);
  cfg.sim_samples = 1u << 16;
  cfg.discard = 1024;
  cfg.seed = seed;
  return cfg;
}

sfg::Graph quantized_filter(const filt::TransferFunction& tf,
                            const fxp::FixedPointFormat& fmt) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fmt);
  const auto h = g.add_block(q, tf, fmt, "h");
  g.add_output(h);
  return g;
}

sfg::Graph two_path_graph(std::size_t delay,
                          const fxp::FixedPointFormat& fmt) {
  // Reconvergent fan-out: the quantizer's noise reaches the adder along
  // two differently-filtered paths; the decorrelating delay controls how
  // wrong the uncorrelated-sources assumption is.
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fmt);
  const auto left =
      g.add_block(q, filt::TransferFunction(filt::fir_lowpass(15, 0.3)),
                  fmt, "left");
  const auto d = g.add_delay(q, delay);
  const auto right =
      g.add_block(d, filt::TransferFunction(filt::fir_highpass(15, 0.25)),
                  fmt, "right");
  g.add_output(g.add_adder({left, right}));
  return g;
}

std::vector<CorpusEntry> standard_corpus() {
  using filt::IirFamily;
  using filt::TransferFunction;
  const auto q412 = fxp::q_format(4, 12);
  const auto q310 = fxp::q_format(3, 10);

  std::vector<CorpusEntry> corpus;
  const auto add = [&](std::string name, sfg::Graph g,
                       sim::EvaluationConfig cfg) {
    corpus.push_back({std::move(name),
                      sfg::Scenario{std::move(g), std::move(cfg), {}, {}}});
  };

  // Table-I-style single quantized filters.
  add("fir_lp_direct",
      quantized_filter(TransferFunction(filt::fir_lowpass(31, 0.25)), q412),
      analytic_config());
  add("fir_hp_direct",
      quantized_filter(TransferFunction(filt::fir_highpass(21, 0.2)), q310),
      analytic_config());
  add("fir_bp_direct",
      quantized_filter(TransferFunction(filt::fir_bandpass(27, 0.12, 0.34)),
                       q412),
      analytic_config());
  add("iir_butter_lp_direct",
      quantized_filter(filt::iir_lowpass(IirFamily::kButterworth, 4, 0.2),
                       q412),
      analytic_config());
  add("iir_cheby_hp_direct",
      quantized_filter(filt::iir_highpass(IirFamily::kChebyshev1, 3, 0.3),
                       q310),
      analytic_config());

  // Jackson realization-form comparison: the same H(z) in three forms.
  const auto h = filt::iir_lowpass(IirFamily::kButterworth, 4, 0.2);
  add("realization_direct", sfg::build_direct_form(h, q412),
      analytic_config());
  add("realization_cascade",
      sfg::build_cascade_form(
          filt::design_sos_lowpass(IirFamily::kButterworth, 6, 0.25), q412),
      analytic_config());
  add("realization_parallel",
      sfg::build_parallel_form(
          filt::zpk_to_parallel(filt::bilinear(filt::lp_to_lp(
              filt::analog_prototype(IirFamily::kButterworth, 4),
              std::tan(3.14159265358979323846 * 0.2)))),
          q412),
      analytic_config());

  // Reconvergent fan-out at several decorrelation delays.
  add("two_path_d1", two_path_graph(1, q412), analytic_config());
  add("two_path_d5", two_path_graph(5, q412), analytic_config());
  add("two_path_d9", two_path_graph(9, q412), analytic_config());

  // Wavelet codecs (deep reconvergence, compensating delays).
  add("dwt1d_level1", wav::build_dwt1d_codec({1, q412}), analytic_config());
  add("dwt1d_level2", wav::build_dwt1d_codec({2, q310}), analytic_config());

  // Multirate shapes (flat engine unsupported; psd + moment only).
  {
    sfg::Graph g;
    const auto in = g.add_input();
    const auto q = g.add_quantizer(in, q412);
    const auto aa = g.add_block(
        q, TransferFunction(filt::fir_lowpass(23, 0.2)), q412, "antialias");
    const auto dn = g.add_downsample(aa, 2);
    const auto post = g.add_block(
        dn, TransferFunction(filt::fir_lowpass(11, 0.3)), q412, "post");
    g.add_output(post);
    add("multirate_decimator", std::move(g), multirate_config());
  }
  {
    sfg::Graph g;
    const auto in = g.add_input();
    const auto q = g.add_quantizer(in, q412);
    const auto up = g.add_upsample(q, 2);
    const auto interp = g.add_block(
        up, TransferFunction(filt::fir_lowpass(23, 0.2)), q412, "interp");
    g.add_output(interp);
    add("multirate_interpolator", std::move(g), multirate_config());
  }
  {
    sfg::Graph g;
    const auto in = g.add_input();
    const auto q = g.add_quantizer(in, q412);
    const auto aa = g.add_block(
        q, TransferFunction(filt::fir_lowpass(19, 0.22)), q412, "antialias");
    // Up-sampling requires n_psd divisible by the factor; stick to 2/4.
    const auto dn = g.add_downsample(aa, 4);
    const auto up = g.add_upsample(dn, 4);
    const auto interp = g.add_block(
        up, TransferFunction(filt::fir_lowpass(19, 0.22)), q412, "interp");
    g.add_output(interp);
    add("multirate_cascade", std::move(g), multirate_config());
  }

  // Every rounding/overflow/sign combination in one chain.
  {
    sfg::Graph g;
    const auto in = g.add_input();
    fxp::FixedPointFormat f1 = q412;
    fxp::FixedPointFormat f2{3, 9, true, fxp::RoundingMode::kTruncate,
                             fxp::OverflowMode::kWrap};
    fxp::FixedPointFormat f3{2, 10, false, fxp::RoundingMode::kConvergent,
                             fxp::OverflowMode::kSaturate};
    auto head = g.add_quantizer(in, f1, "q-round-sat");
    head = g.add_block(head, TransferFunction(filt::fir_lowpass(11, 0.3)),
                       f2, "h-trunc-wrap");
    head = g.add_quantizer(head, f3, "q-conv-unsigned");
    g.add_output(head);
    add("formats_zoo", std::move(g), analytic_config());
  }

  // Caller-supplied (non-PQN) noise moments: delta parity is skipped here
  // by design; goldens still pin the evaluated powers.
  {
    sfg::Graph g;
    const auto in = g.add_input();
    const auto q = g.add_quantizer(in, q412,
                                   fxp::NoiseMoments{1e-4, 5e-9},
                                   "measured");
    g.add_output(g.add_block(
        q, TransferFunction(filt::fir_lowpass(15, 0.28)), {}, "h"));
    add("moments_override", std::move(g), analytic_config());
  }

  // Parser-hostile node names (escaping stress).
  add("hostile_names",
      sfg::random_graph(7, {.depth = 4, .hostile_names = true}),
      analytic_config());

  // Pure chain: no reconvergence, flat == psd to golden precision.
  {
    sfg::Graph g;
    const auto in = g.add_input();
    auto head = g.add_quantizer(in, q412);
    head = g.add_block(head, TransferFunction(filt::fir_lowpass(15, 0.3)),
                       q412, "h1");
    head = g.add_gain(head, 0.8);
    head = g.add_delay(head, 3);
    head = g.add_block(head,
                       filt::iir_lowpass(IirFamily::kButterworth, 2, 0.25),
                       q412, "h2");
    g.add_output(head);
    add("pure_chain", std::move(g), analytic_config());
  }

  // Subtracting adder (signs round-trip).
  {
    sfg::Graph g;
    const auto in = g.add_input();
    const auto q = g.add_quantizer(in, q412);
    const auto direct = g.add_gain(q, 1.0, "direct");
    const auto lp = g.add_block(
        q, TransferFunction(filt::fir_lowpass(15, 0.2)), q412, "lp");
    const sfg::NodeId srcs[] = {direct, lp};
    const double signs[] = {1.0, -1.0};
    g.add_output(g.add_adder(srcs, signs, "diff"));
    add("adder_signs", std::move(g), analytic_config());
  }

  // Monte-Carlo cross-checked entries (simulation golden is seed-pinned).
  add("sim_fir",
      quantized_filter(TransferFunction(filt::fir_lowpass(31, 0.25)), q412),
      simulation_config(1234));
  add("sim_iir",
      quantized_filter(filt::iir_lowpass(IirFamily::kButterworth, 4, 0.2),
                       q412),
      simulation_config(5678));

  // Optimizer goldens: word-length searches pinned end to end (budget →
  // searched cost) on a chain, a reconvergent join, and a multirate
  // decimator. Costs are filled by regen/emit — the strategies are
  // deterministic, so these pin search behavior like `expect` pins the
  // engines.
  const auto add_opt_golden = [&](const std::string& name,
                                  const char* strategy,
                                  core::EngineKind engine, double budget,
                                  std::uint64_t seed) {
    for (auto& entry : corpus) {
      if (entry.name != name) continue;
      sfg::OptExpectation e;
      e.strategy = strategy;
      e.engine = engine;
      e.budget = budget;
      e.seed = seed;
      entry.scenario.opt_expected.push_back(std::move(e));
      return;
    }
  };
  add_opt_golden("fir_lp_direct", "greedy", core::EngineKind::kPsd, 1e-8, 0);
  add_opt_golden("fir_lp_direct", "anneal", core::EngineKind::kPsd, 1e-8,
                 42);
  add_opt_golden("fir_lp_direct", "bnb", core::EngineKind::kPsd, 1e-8, 0);
  add_opt_golden("two_path_d5", "greedy", core::EngineKind::kPsd, 1e-8, 0);
  add_opt_golden("two_path_d5", "anneal", core::EngineKind::kPsd, 1e-8, 42);
  add_opt_golden("two_path_d5", "tabu", core::EngineKind::kPsd, 1e-8, 0);
  add_opt_golden("multirate_decimator", "greedy", core::EngineKind::kPsd,
                 1e-8, 0);
  add_opt_golden("multirate_decimator", "min_plus_one",
                 core::EngineKind::kPsd, 1e-8, 0);

  return corpus;
}

int cmd_emit_corpus(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const std::string& dir = args[0];
  auto corpus = standard_corpus();
  for (auto& entry : corpus) {
    entry.scenario.expected = sfg::evaluate_expected(entry.scenario);
    entry.scenario.opt_expected =
        sfg::evaluate_opt_expected(entry.scenario);
    const std::string path = dir + "/" + entry.name + ".sfg";
    try {
      sfg::save_scenario(path, entry.scenario);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), e.what());
      return 1;
    }
    std::printf("wrote %s (%zu expectation(s))\n", path.c_str(),
                entry.scenario.expected.size());
  }
  std::printf("%zu corpus file(s) written to %s\n", corpus.size(),
              dir.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Fuzzing
// ---------------------------------------------------------------------------

sfg::RandomGraphOptions fuzz_profile(std::uint64_t seed) {
  // Cycle the generator profiles so every run covers single-rate,
  // multirate, hostile-name, and boundary-shape populations.
  switch (seed % 4) {
    case 0: return {.depth = 6};
    case 1: return {.depth = 6, .multirate = true};
    case 2: return {.depth = 5, .hostile_names = true};
    default:
      return {.depth = 4, .multirate = true, .hostile_names = true,
              .degenerate = true};
  }
}

int cmd_fuzz(const std::vector<std::string>& args) {
  std::uint64_t seeds = 10000;
  std::uint64_t seed_base = 1;
  std::uint64_t sim_every = 997;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= args.size()) return nullptr;
      return args[++i].c_str();
    };
    const char* value = nullptr;
    if (args[i] == "--seeds" && (value = need_value()) != nullptr)
      seeds = std::strtoull(value, nullptr, 10);
    else if (args[i] == "--seed-base" && (value = need_value()) != nullptr)
      seed_base = std::strtoull(value, nullptr, 10);
    else if (args[i] == "--sim-every" && (value = need_value()) != nullptr)
      sim_every = std::strtoull(value, nullptr, 10);
    else
      return usage();
  }

  // Hard contracts (round-trip, canonical bytes, bit-identical engine
  // differential, delta parity, chain exactness) are zero-tolerance.
  // "band:" issues — one-bit agreement on reconvergent graphs — are the
  // paper's statistical claim, so they gate on the aggregate rate: at
  // most 1% of seeds may fall outside the band.
  std::uint64_t failures = 0;
  std::uint64_t band_violations = 0;
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = seed_base + i;
    sfg::DifferentialOptions opts;
    opts.with_simulation = sim_every != 0 && i % sim_every == sim_every - 1;
    const auto issues =
        sfg::differential_check(sfg::random_graph(seed, fuzz_profile(seed)),
                                opts);
    std::vector<sfg::VerifyIssue> hard;
    bool out_of_band = false;
    for (const auto& issue : issues) {
      if (issue.check.rfind("band:", 0) == 0)
        out_of_band = true;
      else
        hard.push_back(issue);
    }
    if (out_of_band) ++band_violations;
    if (!hard.empty()) {
      print_issues("seed " + std::to_string(seed), hard);
      ++failures;
    }
    if ((i + 1) % 1000 == 0)
      std::printf("fuzz: %llu/%llu seeds, %llu failure(s), %llu out of "
                  "band\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(seeds),
                  static_cast<unsigned long long>(failures),
                  static_cast<unsigned long long>(band_violations));
  }
  const std::uint64_t band_budget = std::max<std::uint64_t>(1, seeds / 100);
  if (band_violations > band_budget)
    std::fprintf(stderr,
                 "FAIL band rate: %llu of %llu seed(s) outside the one-bit "
                 "band (budget %llu)\n",
                 static_cast<unsigned long long>(band_violations),
                 static_cast<unsigned long long>(seeds),
                 static_cast<unsigned long long>(band_budget));
  std::printf("fuzz: done, %llu seed(s), %llu failure(s), %llu out of band "
              "(budget %llu)\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(band_violations),
              static_cast<unsigned long long>(band_budget));
  return failures == 0 && band_violations <= band_budget ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "check") return cmd_check(args);
    if (cmd == "regen") return cmd_regen(args);
    if (cmd == "emit-corpus") return cmd_emit_corpus(args);
    if (cmd == "fuzz") return cmd_fuzz(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdacc-verify: %s\n", e.what());
    return 1;
  }
  return usage();
}
