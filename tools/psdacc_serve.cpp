// psdacc-serve: the accuracy-evaluation daemon. Listens on the IPv4
// loopback, accepts serialized scenario documents over the framed protocol
// (see docs/SERVING.md), and answers with per-engine output noise powers or
// word-length optimization results. SIGTERM/SIGINT trigger a graceful
// shutdown: admitted jobs run to completion and deliver their responses
// before the process exits.
//
//   psdacc-serve [--port P] [--workers N] [--queue-depth D] [--cache C]
//                [--pool-workers N] [--default-timeout-ms T]
//                [--max-timeout-ms T]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/server.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: psdacc-serve [--port P] [--workers N]"
               " [--queue-depth D] [--cache C] [--pool-workers N]\n"
               "                    [--default-timeout-ms T]"
               " [--max-timeout-ms T]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using psdacc::serve::Server;
  using psdacc::serve::ServerConfig;

  ServerConfig cfg;
  cfg.port = 7533;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--port") == 0 && (v = value()) != nullptr)
      cfg.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    else if (std::strcmp(argv[i], "--workers") == 0 &&
             (v = value()) != nullptr)
      cfg.job_workers = std::strtoul(v, nullptr, 10);
    else if (std::strcmp(argv[i], "--queue-depth") == 0 &&
             (v = value()) != nullptr)
      cfg.max_queue_depth = std::strtoul(v, nullptr, 10);
    else if (std::strcmp(argv[i], "--cache") == 0 && (v = value()) != nullptr)
      cfg.cache_capacity = std::strtoul(v, nullptr, 10);
    else if (std::strcmp(argv[i], "--pool-workers") == 0 &&
             (v = value()) != nullptr)
      cfg.pool_workers = std::strtoul(v, nullptr, 10);
    else if (std::strcmp(argv[i], "--default-timeout-ms") == 0 &&
             (v = value()) != nullptr)
      cfg.default_timeout =
          std::chrono::milliseconds(std::strtol(v, nullptr, 10));
    else if (std::strcmp(argv[i], "--max-timeout-ms") == 0 &&
             (v = value()) != nullptr)
      cfg.max_timeout =
          std::chrono::milliseconds(std::strtol(v, nullptr, 10));
    else
      return usage();
  }

  // Block the shutdown signals before spawning any server thread (threads
  // inherit the mask), then sigwait on the main thread: the handler-free
  // way to turn SIGTERM into an orderly Server::stop().
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  Server server(cfg);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psdacc-serve: %s\n", e.what());
    return 1;
  }
  // Scripts scrape this line for the (possibly ephemeral) port.
  std::printf("psdacc-serve listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&signals, &sig);
  std::printf("psdacc-serve: signal %d, draining...\n", sig);
  std::fflush(stdout);
  server.stop();

  const auto stats = server.stats();
  std::printf(
      "psdacc-serve: done (%llu connection(s), %llu completed, "
      "%llu cache hit(s))\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.jobs_completed),
      static_cast<unsigned long long>(stats.cache_hits));
  return 0;
}
