// Frequency-domain band-pass (Fig. 2) tests: the reference path must equal
// a plain FIR cascade; the fixed-point path's error must match the
// equivalent-LTI SFG estimate.
#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "dsp/convolution.hpp"
#include "freqfilt/freq_filter.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"

namespace {

using namespace psdacc;

ff::FreqFilterConfig reference_config() {
  ff::FreqFilterConfig cfg;
  cfg.format.reset();
  return cfg;
}

TEST(FreqFilterReference, EqualsDirectFirCascade) {
  const auto cfg = reference_config();
  ff::FreqDomainBandpass sys(cfg);
  Xoshiro256 rng(1);
  const auto x = uniform_signal(1024, 0.9, rng);
  const auto y = sys.process(x);
  ASSERT_EQ(y.size(), x.size());
  // Direct: x -> h_fir -> h_fd (causal "same" output).
  const auto mid = dsp::convolve_direct(x, sys.front_fir());
  const auto full = dsp::convolve_direct(
      std::span<const double>(mid.data(), x.size()), sys.fd_fir());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], full[i], 1e-9) << "i=" << i;
}

TEST(FreqFilterReference, BandpassShape) {
  const auto cfg = reference_config();
  ff::FreqDomainBandpass sys(cfg);
  const filt::TransferFunction h =
      filt::TransferFunction(sys.front_fir())
          .cascade(filt::TransferFunction(sys.fd_fir()));
  // Pass inside [fd_cutoff, fir_cutoff] (narrow band), block outside.
  double peak = 0.0;
  for (double f = sys.config().fd_cutoff; f <= sys.config().fir_cutoff;
       f += 0.002)
    peak = std::max(peak, std::abs(h.response(f)));
  // The default band is deliberately narrow and the filters short, so the
  // in-band peak is well below unity; what matters is pass >> stop.
  EXPECT_GT(peak, 0.4);
  EXPECT_LT(std::abs(h.response(0.01)), 0.15);
  EXPECT_LT(std::abs(h.response(0.49)), 0.15);
}

TEST(FreqFilterFixedPoint, OutputOnGrid) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, 10);
  ff::FreqDomainBandpass sys(cfg);
  Xoshiro256 rng(2);
  const auto x = uniform_signal(512, 0.9, rng);
  const auto y = sys.process(x);
  const double step = cfg.format->step();
  for (double v : y)
    EXPECT_NEAR(v / step, std::round(v / step), 1e-9);
}

class FreqFilterAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(FreqFilterAccuracy, EstimateTracksSimulatedError) {
  const int d = GetParam();
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, d);
  ff::FreqDomainBandpass fx_sys(cfg);
  ff::FreqDomainBandpass ref_sys(reference_config());

  Xoshiro256 rng(100 + d);
  const auto x = uniform_signal(1u << 16, 0.9, rng);
  const auto yr = ref_sys.process(x);
  const auto yf = fx_sys.process(x);
  RunningStats err;
  for (std::size_t i = 256; i < x.size(); ++i) err.add(yf[i] - yr[i]);

  const auto g = ff::build_freqfilt_sfg(cfg);
  core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
  const double est = analyzer.output_noise_power();
  const double ed = core::mse_deviation(err.mean_square(), est);
  EXPECT_TRUE(core::within_one_bit(ed)) << "d=" << d << " E_d=" << ed;
  EXPECT_LT(std::abs(ed), 0.4) << "d=" << d << " E_d=" << ed;
}

INSTANTIATE_TEST_SUITE_P(WordLengths, FreqFilterAccuracy,
                         ::testing::Values(8, 10, 12, 16));

TEST(FreqFilterSfg, GraphStructureReference) {
  const auto g = ff::build_freqfilt_sfg(reference_config());
  EXPECT_EQ(g.noise_sources().size(), 0u);
  EXPECT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
}

TEST(FreqFilterSfg, GraphStructureFixedPoint) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, 12);
  const auto g = ff::build_freqfilt_sfg(cfg);
  // q_in, quantized front FIR block, q_fft, q_ifft.
  EXPECT_EQ(g.noise_sources().size(), 4u);
}

TEST(FreqFilterSfg, EstimateScalesWithWordLength) {
  ff::FreqFilterConfig fine;
  fine.format = fxp::q_format(8, 16);
  ff::FreqFilterConfig coarse;
  coarse.format = fxp::q_format(8, 12);
  const double p_fine =
      core::PsdAnalyzer(ff::build_freqfilt_sfg(fine), {.n_psd = 256})
          .output_noise_power();
  const double p_coarse =
      core::PsdAnalyzer(ff::build_freqfilt_sfg(coarse), {.n_psd = 256})
          .output_noise_power();
  EXPECT_NEAR(p_coarse / p_fine, 256.0, 2.0);
}

TEST(FreqFilterSfg, MomentBaselineDiffersFromPsd) {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, 12);
  const auto g = ff::build_freqfilt_sfg(cfg);
  const double psd =
      core::PsdAnalyzer(g, {.n_psd = 1024}).output_noise_power();
  const double mom = core::MomentAnalyzer(g).output_noise_power();
  EXPECT_GT(psd, 0.0);
  EXPECT_GT(mom, 0.0);
  // The front FIR shapes the input-quantization noise before h_fd; the
  // blind method cannot see that.
  EXPECT_GT(std::abs(psd - mom) / psd, 1e-3);
}

TEST(FreqFilterConfigValidation, RejectsTooSmallFft) {
  ff::FreqFilterConfig cfg;
  cfg.fd_taps = 17;  // needs fft >= 2*17-2 = 32 > 16
  EXPECT_DEATH(ff::FreqDomainBandpass{cfg}, "precondition");
}

class StagewiseFftAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(StagewiseFftAccuracy, EstimateTracksBitTrueButterflies) {
  const int d = GetParam();
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, d);
  cfg.stagewise_fft = true;
  ff::FreqDomainBandpass fx_sys(cfg);
  ff::FreqDomainBandpass ref_sys(reference_config());

  Xoshiro256 rng(500 + d);
  const auto x = uniform_signal(1u << 15, 0.9, rng);
  const auto yr = ref_sys.process(x);
  const auto yf = fx_sys.process(x);
  RunningStats err;
  for (std::size_t i = 256; i < x.size(); ++i) err.add(yf[i] - yr[i]);

  const auto g = ff::build_freqfilt_sfg(cfg);
  core::PsdAnalyzer analyzer(g, {.n_psd = 512});
  const double est = analyzer.output_noise_power();
  const double ed = core::mse_deviation(err.mean_square(), est);
  EXPECT_TRUE(core::within_one_bit(ed)) << "d=" << d << " E_d=" << ed;
  EXPECT_LT(std::abs(ed), 0.5) << "d=" << d << " E_d=" << ed;
}

INSTANTIATE_TEST_SUITE_P(WordLengths, StagewiseFftAccuracy,
                         ::testing::Values(10, 12, 16));

TEST(StagewiseFft, ChangesErrorRelativeToBoundaryModel) {
  // Stage-wise rounding injects different (usually less, since only
  // nontrivial twiddles round on a 16-point FFT) noise than rounding
  // every bin at the boundary.
  ff::FreqFilterConfig boundary;
  boundary.format = fxp::q_format(8, 12);
  ff::FreqFilterConfig stagewise = boundary;
  stagewise.stagewise_fft = true;

  ff::FreqDomainBandpass ref_sys(reference_config());
  Xoshiro256 rng(42);
  const auto x = uniform_signal(1u << 15, 0.9, rng);
  const auto yr = ref_sys.process(x);

  auto error_power = [&](const ff::FreqFilterConfig& cfg) {
    ff::FreqDomainBandpass sys(cfg);
    const auto yf = sys.process(x);
    RunningStats err;
    for (std::size_t i = 256; i < x.size(); ++i) err.add(yf[i] - yr[i]);
    return err.mean_square();
  };
  const double p_boundary = error_power(boundary);
  const double p_stagewise = error_power(stagewise);
  EXPECT_GT(std::abs(p_boundary - p_stagewise) /
                std::min(p_boundary, p_stagewise),
            0.02);
}

}  // namespace
