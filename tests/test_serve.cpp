// Serving-layer tests: wire-protocol robustness (truncated frames,
// oversized length prefixes, unknown tags, malformed payloads), admission
// control and drain semantics of the JobQueue, ResultCache LRU behavior,
// latency histogram quantiles, and full end-to-end runs against a live
// in-process server — including the golden corpus submitted over a real
// socket and checked against its recorded expectations at 1e-9.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.hpp"
#include "serve/job_queue.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"
#include "serve/stats.hpp"
#include "sfg/serialize.hpp"

#ifndef PSDACC_CORPUS_DIR
#error "PSDACC_CORPUS_DIR must point at the checked-in corpus"
#endif

namespace {

using namespace psdacc;
using namespace std::chrono_literals;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(PSDACC_CORPUS_DIR)) {
    if (entry.path().extension() == ".sfg")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A small scenario document evaluated by the analytical engines in a few
// milliseconds — the standard payload for protocol-level tests.
std::string quick_document() {
  sfg::Graph g;
  const auto in = g.add_input("in");
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12), "q");
  g.add_output(g.add_gain(q, 0.5, "g"));
  sim::EvaluationConfig cfg;
  cfg.n_psd = 64;
  cfg.engines = {core::EngineKind::kPsd, core::EngineKind::kFlat};
  return sfg::serialize(sfg::Scenario{std::move(g), std::move(cfg), {}, {}});
}

// A document whose evaluation takes hundreds of milliseconds (Monte-Carlo
// engines) — used to hold an executor busy or trip deadlines.
std::string slow_document(std::size_t engines = 2,
                          std::size_t samples = 1u << 18) {
  sfg::Graph g;
  const auto in = g.add_input("in");
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12), "q");
  g.add_output(g.add_gain(q, 0.5, "g"));
  sim::EvaluationConfig cfg;
  cfg.n_psd = 64;
  cfg.sim_samples = samples;
  cfg.engines.assign(engines, core::EngineKind::kSimulation);
  return sfg::serialize(sfg::Scenario{std::move(g), std::move(cfg), {}, {}});
}

std::uint64_t stat_of(serve::Client& client, std::string_view key) {
  const auto kv = client.stats();
  return std::strtoull(std::string(serve::kv_get(kv, key, "0")).c_str(),
                       nullptr, 10);
}

class ServeServerTest : public ::testing::Test {
 protected:
  void start(serve::ServerConfig cfg = {}) {
    cfg.port = 0;  // ephemeral
    server_ = std::make_unique<serve::Server>(cfg);
    server_->start();
  }
  serve::Client connect() { return serve::Client(server_->port()); }

  std::unique_ptr<serve::Server> server_;
};

// ---------------------------------------------------------------------------
// Frame encoding / kv primitives
// ---------------------------------------------------------------------------

TEST(ServeProtocol, FrameTagsRoundTrip) {
  for (const auto type :
       {serve::FrameType::kSubmitEval, serve::FrameType::kSubmitOpt,
        serve::FrameType::kStatsQuery, serve::FrameType::kResult,
        serve::FrameType::kProgress, serve::FrameType::kError,
        serve::FrameType::kStatsReply}) {
    const auto parsed = serve::parse_frame_tag(serve::frame_tag(type));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, type);
  }
  EXPECT_FALSE(serve::parse_frame_tag(0xdeadbeefu).has_value());
}

TEST(ServeProtocol, EncodeFrameLayout) {
  const std::string wire =
      serve::encode_frame(serve::FrameType::kSubmitEval, "abc");
  ASSERT_EQ(wire.size(), 11u);
  EXPECT_EQ(wire.substr(0, 4), "EVAL");
  EXPECT_EQ(static_cast<unsigned char>(wire[4]), 3u);  // LE length
  EXPECT_EQ(static_cast<unsigned char>(wire[7]), 0u);
  EXPECT_EQ(wire.substr(8), "abc");
}

TEST(ServeProtocol, KvLinesRoundTrip) {
  std::string text;
  serve::append_kv(text, "name", "value with = signs");
  serve::append_kv(text, "pi", 3.141592653589793);
  serve::append_kv(text, "count", std::uint64_t{42});
  const auto kv = serve::parse_kv_lines(text);
  EXPECT_EQ(serve::kv_get(kv, "name"), "value with = signs");
  EXPECT_EQ(std::strtod(std::string(serve::kv_get(kv, "pi")).c_str(),
                        nullptr),
            3.141592653589793);
  EXPECT_EQ(serve::kv_get(kv, "count"), "42");
  EXPECT_EQ(serve::kv_get(kv, "missing", "fallback"), "fallback");
}

TEST(ServeProtocol, EnvelopeRoundTrip) {
  serve::OptimizerSpec spec;
  spec.strategy = "min_plus_one";
  spec.noise_budget = 2.5e-7;
  spec.min_bits = 3;
  spec.max_bits = 18;
  spec.engine = core::EngineKind::kMoment;
  const std::string payload =
      serve::encode_envelope_prefix(750ms, &spec) + "psdacc-sfg v1\n";
  const auto env = serve::parse_envelope(payload);
  EXPECT_EQ(env.timeout, 750ms);
  ASSERT_TRUE(env.has_optimizer);
  EXPECT_EQ(env.optimizer.strategy, "min_plus_one");
  EXPECT_EQ(env.optimizer.noise_budget, 2.5e-7);
  EXPECT_EQ(env.optimizer.min_bits, 3);
  EXPECT_EQ(env.optimizer.max_bits, 18);
  EXPECT_EQ(env.optimizer.engine, core::EngineKind::kMoment);
  EXPECT_EQ(env.document, "psdacc-sfg v1\n");
}

TEST(ServeProtocol, EnvelopeRejectsMalformedHeaders) {
  EXPECT_THROW(serve::parse_envelope("job {\n  timeout_ms=abc\n}\ndoc"),
               serve::EnvelopeError);
  EXPECT_THROW(serve::parse_envelope("optimizer {\n  strategy=wat\n}\ndoc"),
               serve::EnvelopeError);
  EXPECT_THROW(serve::parse_envelope("job {\n  timeout_ms=5\n"),
               serve::EnvelopeError);  // unterminated section
  // Unknown keys are skipped (forward compatibility).
  const auto env = serve::parse_envelope(
      "job {\n  timeout_ms=5\n  shiny_new_knob=1\n}\npsdacc-sfg v1\n");
  EXPECT_EQ(env.timeout, 5ms);
}

// ---------------------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------------------

serve::ContentHash key_of(std::uint64_t n) {
  return serve::ContentHash{n, ~n};
}

TEST(ServeCache, LruEvictionAndCounters) {
  serve::ResultCache cache(2);
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  cache.insert(key_of(1), "one");
  cache.insert(key_of(2), "two");
  EXPECT_EQ(cache.lookup(key_of(1)).value(), "one");  // 1 is now MRU
  cache.insert(key_of(3), "three");                   // evicts 2
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
  EXPECT_EQ(cache.lookup(key_of(1)).value(), "one");
  EXPECT_EQ(cache.lookup(key_of(3)).value(), "three");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ServeCache, OverwriteRefreshesEntry) {
  serve::ResultCache cache(2);
  cache.insert(key_of(1), "a");
  cache.insert(key_of(2), "b");
  cache.insert(key_of(1), "a2");  // refresh, 2 becomes LRU
  cache.insert(key_of(3), "c");   // evicts 2
  EXPECT_EQ(cache.lookup(key_of(1)).value(), "a2");
  EXPECT_FALSE(cache.lookup(key_of(2)).has_value());
}

TEST(ServeCache, ZeroCapacityDisables) {
  serve::ResultCache cache(0);
  cache.insert(key_of(1), "x");
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 0u);  // disabled, not "always missing"
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(ServeStats, HistogramQuantilesAreBucketUpperBounds) {
  serve::LatencyHistogram h;
  EXPECT_EQ(h.quantile_us(0.5), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.record_seconds(100e-6);  // bucket [64,128)
  for (int i = 0; i < 10; ++i) h.record_seconds(5000e-6);  // [4096,8192)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.quantile_us(0.50), 128.0);
  EXPECT_EQ(h.quantile_us(0.95), 8192.0);
}

// ---------------------------------------------------------------------------
// JobQueue admission control and drain
// ---------------------------------------------------------------------------

TEST(ServeQueue, AdmissionControlShedsBeyondDepth) {
  serve::JobQueue queue(/*workers=*/1, /*max_depth=*/1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ASSERT_TRUE(queue.try_submit([gate] { gate.wait(); }));
  // Wait for the worker to pick the blocker up.
  for (int i = 0; i < 1000 && queue.running() == 0; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(queue.running(), 1u);
  EXPECT_TRUE(queue.try_submit([] {}));   // fills the backlog
  EXPECT_FALSE(queue.try_submit([] {}));  // REJECTED_BUSY territory
  EXPECT_EQ(queue.depth(), 1u);
  release.set_value();
  queue.drain_and_stop();
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_FALSE(queue.try_submit([] {}));  // stopped queues admit nothing
}

TEST(ServeQueue, DepthZeroAdmitsOnlyWhatStartsNow) {
  serve::JobQueue queue(/*workers=*/1, /*max_depth=*/0);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  ASSERT_TRUE(queue.try_submit([gate] { gate.wait(); }));
  for (int i = 0; i < 1000 && queue.running() == 0; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_FALSE(queue.try_submit([] {}));  // no backlog allowed
  release.set_value();
}

TEST(ServeQueue, DrainRunsEveryAdmittedJob) {
  std::atomic<int> ran{0};
  {
    serve::JobQueue queue(/*workers=*/2, /*max_depth=*/16);
    for (int i = 0; i < 10; ++i)
      ASSERT_TRUE(queue.try_submit([&ran] {
        std::this_thread::sleep_for(2ms);
        ++ran;
      }));
    queue.drain_and_stop();  // must complete all 10, not abandon the queue
  }
  EXPECT_EQ(ran.load(), 10);
}

TEST(ServeQueue, SurvivesThrowingJobs) {
  serve::JobQueue queue(/*workers=*/1, /*max_depth=*/4);
  ASSERT_TRUE(queue.try_submit([] { throw std::runtime_error("boom"); }));
  std::atomic<bool> ran{false};
  ASSERT_TRUE(queue.try_submit([&ran] { ran = true; }));
  queue.drain_and_stop();
  EXPECT_TRUE(ran.load());
}

// ---------------------------------------------------------------------------
// Live server: protocol robustness
// ---------------------------------------------------------------------------

TEST_F(ServeServerTest, TruncatedFramesDoNotKillTheServer) {
  start();
  {  // EOF inside the 8-byte header
    serve::Socket raw = serve::connect_local(server_->port());
    ASSERT_TRUE(raw.write_all("EVA", 3));
    raw.close();
  }
  {  // EOF inside the payload
    serve::Socket raw = serve::connect_local(server_->port());
    const std::string wire =
        serve::encode_frame(serve::FrameType::kSubmitEval, "psdacc-sfg v1");
    ASSERT_TRUE(raw.write_all(wire.data(), wire.size() - 5));
    raw.close();
  }
  // The server dropped both without replying and still serves.
  serve::Client client = connect();
  EXPECT_TRUE(client.submit_eval(quick_document()).ok);
}

TEST_F(ServeServerTest, OversizedLengthPrefixIsAProtocolError) {
  start();
  serve::Socket raw = serve::connect_local(server_->port());
  std::string header = "EVAL";
  header += '\xff';  // length 0xffffffff, far beyond kMaxFramePayload
  header += '\xff';
  header += '\xff';
  header += '\xff';
  ASSERT_TRUE(raw.write_all(header.data(), header.size()));
  serve::Frame reply;
  ASSERT_EQ(serve::read_frame(raw, reply), serve::ReadStatus::kOk);
  EXPECT_EQ(reply.type, serve::FrameType::kError);
  const auto r = serve::parse_response(reply.type, reply.payload);
  EXPECT_EQ(r.error, "PROTOCOL");
  // The connection is closed after the error reply.
  char byte = 0;
  EXPECT_EQ(raw.read_some(&byte, 1), 0);
}

TEST_F(ServeServerTest, UnknownTagIsAProtocolError) {
  start();
  serve::Socket raw = serve::connect_local(server_->port());
  const std::string header = std::string("NOPE") + std::string(4, '\0');
  ASSERT_TRUE(raw.write_all(header.data(), header.size()));
  serve::Frame reply;
  ASSERT_EQ(serve::read_frame(raw, reply), serve::ReadStatus::kOk);
  const auto r = serve::parse_response(reply.type, reply.payload);
  EXPECT_EQ(r.error, "PROTOCOL");
}

TEST_F(ServeServerTest, MalformedScenarioReportsParsePosition) {
  start();
  serve::Client client = connect();
  // A dangling edge: the parser anchors the diagnostic at the offending
  // node statement (line 4, column 3 — see SerializeErrors).
  const auto r = client.submit_eval(
      "psdacc-sfg v1\ngraph {\n  node 0 input\n  node 1 output in=[99]\n}\n");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "PARSE");
  // The ParseError's 1-based position travels through the wire.
  EXPECT_EQ(r.line, 4u);
  EXPECT_EQ(r.column, 3u);
  // The connection survives a rejected submission.
  EXPECT_TRUE(client.submit_eval(quick_document()).ok);
}

TEST_F(ServeServerTest, MalformedEnvelopeIsBadRequest) {
  start();
  serve::Client client = connect();
  ASSERT_TRUE(serve::write_frame(client.socket(),
                                 serve::FrameType::kSubmitEval,
                                 "job {\n  timeout_ms=oops\n}\ndoc"));
  serve::Frame reply;
  ASSERT_EQ(serve::read_frame(client.socket(), reply),
            serve::ReadStatus::kOk);
  const auto r = serve::parse_response(reply.type, reply.payload);
  EXPECT_EQ(r.error, "BAD_REQUEST");
}

TEST_F(ServeServerTest, ServerToClientTagInARequestIsRejected) {
  start();
  serve::Socket raw = serve::connect_local(server_->port());
  const std::string wire =
      serve::encode_frame(serve::FrameType::kResult, "status=OK\n");
  ASSERT_TRUE(raw.write_all(wire.data(), wire.size()));
  serve::Frame reply;
  ASSERT_EQ(serve::read_frame(raw, reply), serve::ReadStatus::kOk);
  const auto r = serve::parse_response(reply.type, reply.payload);
  EXPECT_EQ(r.error, "PROTOCOL");
}

// ---------------------------------------------------------------------------
// Live server: evaluation, caching, stats
// ---------------------------------------------------------------------------

TEST_F(ServeServerTest, EvaluatesAndCachesWithBitIdenticalReplay) {
  start();
  serve::Client client = connect();
  const std::string doc = quick_document();
  const auto first = client.submit_eval(doc);
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.cache_hit);
  ASSERT_EQ(first.engines.size(), 2u);
  EXPECT_EQ(first.hash.size(), 32u);

  // Resubmission: a cache hit whose engine payload is replayed from the
  // stored bytes — everything after the hash line must be byte-identical.
  const auto second = client.submit_eval(doc);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.hash, first.hash);
  const auto body_of = [](const std::string& raw) {
    const auto pos = raw.find("engines=");
    return pos == std::string::npos ? raw : raw.substr(pos);
  };
  EXPECT_EQ(body_of(second.raw), body_of(first.raw));
  ASSERT_EQ(second.engines.size(), first.engines.size());
  for (std::size_t i = 0; i < first.engines.size(); ++i) {
    EXPECT_EQ(second.engines[i].kind, first.engines[i].kind);
    // Bit-identical, not just close.
    EXPECT_EQ(second.engines[i].power, first.engines[i].power);
  }

  // The hit is observable through the stats frame, and the server hashed
  // the same canonical document the client can hash locally.
  EXPECT_EQ(stat_of(client, "cache_hits"), 1u);
  EXPECT_EQ(stat_of(client, "cache_misses"), 1u);
  const auto scenario = sfg::parse_scenario(doc);
  EXPECT_EQ(first.hash,
            sfg::content_hash(scenario.graph, scenario.config).to_string());

  // The key covers only (graph, config): a resubmission carrying a stale
  // expect section still hits — the canonical form, not the bytes.
  sfg::Scenario stale = sfg::parse_scenario(doc);
  stale.expected = {{core::EngineKind::kPsd, 123.0}};
  const auto third = client.submit_eval(sfg::serialize(stale));
  ASSERT_TRUE(third.ok);
  EXPECT_TRUE(third.cache_hit);
  EXPECT_EQ(third.hash, first.hash);
}

TEST_F(ServeServerTest, StatsCountersTrackTraffic) {
  start();
  serve::Client client = connect();
  ASSERT_TRUE(client.submit_eval(quick_document()).ok);
  EXPECT_FALSE(client.submit_eval("garbage, not a document").ok);
  const auto kv = client.stats();
  EXPECT_GE(std::stoull(std::string(serve::kv_get(kv, "connections"))), 1u);
  EXPECT_GE(std::stoull(std::string(serve::kv_get(kv, "frames"))), 2u);
  EXPECT_EQ(serve::kv_get(kv, "jobs_accepted"), "1");
  EXPECT_EQ(serve::kv_get(kv, "jobs_completed"), "1");
  EXPECT_GE(std::stoull(std::string(serve::kv_get(kv, "latency_count"))),
            1u);
  EXPECT_GT(std::stod(std::string(serve::kv_get(kv, "latency_p95_us"))),
            0.0);
}

TEST_F(ServeServerTest, RejectsWhenTheQueueIsFull) {
  serve::ServerConfig cfg;
  cfg.job_workers = 1;
  cfg.max_queue_depth = 0;  // admit only what can start immediately
  start(cfg);
  // Hold the single executor with a slow Monte-Carlo evaluation...
  std::thread blocker([this] {
    serve::Client slow = connect();
    EXPECT_TRUE(slow.submit_eval(slow_document(1, 1u << 20)).ok);
  });
  serve::Client client = connect();
  for (int i = 0; i < 2000 && stat_of(client, "jobs_running") == 0; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(stat_of(client, "jobs_running"), 1u);
  // ...so a second submission is shed immediately instead of queueing.
  const auto rejected = client.submit_eval(quick_document());
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "REJECTED_BUSY");
  blocker.join();
  EXPECT_EQ(stat_of(client, "jobs_rejected"), 1u);
  // Capacity freed (the executor's bookkeeping may trail the response by
  // a few microseconds): the same submission now succeeds.
  for (int i = 0; i < 2000 && stat_of(client, "jobs_running") != 0; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(client.submit_eval(quick_document()).ok);
}

TEST_F(ServeServerTest, EvalDeadlineExpiresBetweenEngines) {
  start();
  serve::Client client = connect();
  // Two Monte-Carlo engines, a budget neither fits: the between-engines
  // deadline check must fire and answer TIMEOUT.
  const auto r = client.submit_eval(slow_document(2, 1u << 23), 20ms);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "TIMEOUT");
  // The queue is not stalled: the next job on the same connection runs.
  EXPECT_TRUE(client.submit_eval(quick_document()).ok);
  EXPECT_EQ(stat_of(client, "jobs_timeout"), 1u);
}

TEST_F(ServeServerTest, DisconnectMidJobLeavesTheServerServing) {
  start();
  {
    serve::Client doomed = connect();
    ASSERT_TRUE(serve::write_frame(
        doomed.socket(), serve::FrameType::kSubmitEval, slow_document()));
    // Vanish without reading the response.
  }
  serve::Client client = connect();
  for (int i = 0;
       i < 5000 && stat_of(client, "jobs_completed") +
                           stat_of(client, "jobs_failed") +
                           stat_of(client, "jobs_timeout") ==
                       0;
       ++i)
    std::this_thread::sleep_for(2ms);
  // The orphaned job finished (its response write failed harmlessly) and
  // the server still answers.
  EXPECT_TRUE(client.submit_eval(quick_document()).ok);
}

TEST_F(ServeServerTest, StopDrainsAdmittedJobs) {
  serve::ServerConfig cfg;
  cfg.job_workers = 1;
  cfg.max_queue_depth = 8;
  start(cfg);
  // A response must arrive even when stop() lands while the job waits.
  std::thread submitter([this] {
    serve::Client c = connect();
    EXPECT_TRUE(c.submit_eval(slow_document(1, 1u << 19)).ok);
  });
  serve::Client client = connect();
  for (int i = 0; i < 2000 && stat_of(client, "jobs_accepted") == 0; ++i)
    std::this_thread::sleep_for(1ms);
  server_->stop();  // drain: the in-flight evaluation completes first
  submitter.join();
  EXPECT_GE(server_->stats().jobs_completed, 1u);
}

// ---------------------------------------------------------------------------
// Live server: optimizer jobs
// ---------------------------------------------------------------------------

TEST_F(ServeServerTest, OptimizerJobStreamsProgressAndReturnsAssignment) {
  start();
  serve::Client client = connect();
  serve::OptimizerSpec spec;
  spec.strategy = "greedy";
  spec.noise_budget = 1e-8;
  const auto r =
      client.submit_opt(read_file(std::string(PSDACC_CORPUS_DIR) +
                                  "/fir_lp_direct.sfg"),
                        spec);
  ASSERT_TRUE(r.ok) << r.error << ": " << r.message;
  EXPECT_EQ(r.strategy, "greedy");
  EXPECT_TRUE(r.feasible);
  EXPECT_FALSE(r.cancelled);
  EXPECT_FALSE(r.bits.empty());
  EXPECT_GT(r.evaluations, 0u);
  // One PROG frame per accepted descent round.
  EXPECT_GE(r.progress.size(), 1u);
  const auto kv = serve::parse_kv_lines(r.progress.front());
  EXPECT_EQ(serve::kv_get(kv, "step"), "1");
}

TEST_F(ServeServerTest, OptimizerTimeoutReturnsPartialState) {
  start();
  serve::Client client = connect();
  serve::OptimizerSpec spec;
  spec.strategy = "greedy";
  spec.noise_budget = 1e-10;  // deep search
  spec.engine = core::EngineKind::kSimulation;  // slow, cancellable probes
  const auto r = client.submit_opt(
      read_file(std::string(PSDACC_CORPUS_DIR) + "/fir_lp_direct.sfg"),
      spec, 100ms);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "TIMEOUT");
  EXPECT_TRUE(r.cancelled);
  // The partial state rides on the error frame: the assignment the search
  // held when its deadline fired.
  EXPECT_FALSE(r.bits.empty());
  EXPECT_EQ(stat_of(client, "jobs_timeout"), 1u);
  // The executor is free again.
  EXPECT_TRUE(client.submit_eval(quick_document()).ok);
}

TEST_F(ServeServerTest, OptimizerOnSourcelessGraphIsBadRequest) {
  start();
  serve::Client client = connect();
  sfg::Graph g;
  g.add_output(g.add_gain(g.add_input(), 0.5));
  serve::OptimizerSpec spec;
  const auto r = client.submit_opt(
      sfg::serialize(sfg::Scenario{std::move(g), {}, {}, {}}), spec);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "BAD_REQUEST");
}

TEST_F(ServeServerTest, OptimizerJobRunsSeededAnnealNoWorseThanGreedy) {
  start();
  serve::Client client = connect();
  const std::string doc =
      read_file(std::string(PSDACC_CORPUS_DIR) + "/fir_lp_direct.sfg");
  serve::OptimizerSpec greedy;
  greedy.strategy = "greedy";
  greedy.noise_budget = 1e-8;
  const auto g = client.submit_opt(doc, greedy);
  ASSERT_TRUE(g.ok) << g.error << ": " << g.message;

  serve::OptimizerSpec anneal = greedy;
  anneal.strategy = "anneal";
  anneal.seed = 42;
  const auto a = client.submit_opt(doc, anneal);
  ASSERT_TRUE(a.ok) << a.error << ": " << a.message;
  EXPECT_EQ(a.strategy, "anneal");
  EXPECT_TRUE(a.feasible);
  // Annealing is seeded from greedy and keeps the best-ever assignment,
  // so it can never come back worse.
  EXPECT_LE(a.cost, g.cost);
  // Both optimizer runs fold their probe counters into the lifetime stats.
  EXPECT_GT(stat_of(client, "opt_probes_delta"), 0u);
}

TEST_F(ServeServerTest, OptimizerRejectsUnknownStrategy) {
  start();
  serve::Client client = connect();
  serve::OptimizerSpec spec;
  spec.strategy = "gradient";  // not in the search vocabulary
  const auto r = client.submit_opt(quick_document(), spec);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "BAD_REQUEST");
}

// ---------------------------------------------------------------------------
// Live server: Pareto sweep jobs (PARJ)
// ---------------------------------------------------------------------------

TEST_F(ServeServerTest, SweepJobStreamsOnePointPerBudgetAndReturnsFront) {
  start();
  serve::Client client = connect();
  serve::SweepSpec spec;
  spec.budgets = {1e-9, 1e-8, 1e-7, 1e-6};
  spec.min_bits = 4;
  spec.max_bits = 20;
  const std::string doc =
      read_file(std::string(PSDACC_CORPUS_DIR) + "/fir_lp_direct.sfg");
  const auto r = client.submit_sweep(doc, spec);
  ASSERT_TRUE(r.ok) << r.error << ": " << r.message;
  EXPECT_EQ(r.strategy, "greedy");
  EXPECT_FALSE(r.cache_hit);
  EXPECT_EQ(r.hash.size(), 32u);

  // Every budget produced a point, in ladder order.
  ASSERT_EQ(r.sweep_points.size(), spec.budgets.size());
  for (std::size_t i = 0; i < spec.budgets.size(); ++i) {
    EXPECT_EQ(r.sweep_points[i].index, i);
    EXPECT_EQ(r.sweep_points[i].budget, spec.budgets[i]);
  }
  // The front is non-empty, cost-ascending, and dominance-consistent.
  ASSERT_FALSE(r.front.empty());
  for (std::size_t i = 1; i < r.front.size(); ++i) {
    EXPECT_GT(r.front[i].cost, r.front[i - 1].cost);
    EXPECT_LT(r.front[i].noise, r.front[i - 1].noise);
  }
  for (const auto& p : r.front) EXPECT_TRUE(p.feasible);

  // One PROG frame per completed point, in ladder order (serve sweeps run
  // the ladder serially; the pool accelerates the probes inside a point).
  ASSERT_EQ(r.progress.size(), spec.budgets.size());
  for (std::size_t i = 0; i < r.progress.size(); ++i) {
    const auto kv = serve::parse_kv_lines(r.progress[i]);
    EXPECT_EQ(serve::kv_get(kv, "point"), std::to_string(i));
    EXPECT_FALSE(serve::kv_get(kv, "budget").empty());
    EXPECT_FALSE(serve::kv_get(kv, "cost").empty());
  }

  // The sweep rode the delta probe path: delta >> full re-evaluations.
  EXPECT_GT(r.probes_delta, r.probes_full);
  EXPECT_GT(r.probes_delta, 0u);
}

TEST_F(ServeServerTest, SweepCacheHitReplaysBitIdenticalWithoutProgress) {
  start();
  serve::Client client = connect();
  serve::SweepSpec spec;
  spec.budgets = {1e-8, 1e-7};
  spec.min_bits = 4;
  spec.max_bits = 20;
  const std::string doc =
      read_file(std::string(PSDACC_CORPUS_DIR) + "/fir_lp_direct.sfg");
  const auto first = client.submit_sweep(doc, spec);
  ASSERT_TRUE(first.ok) << first.error << ": " << first.message;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.progress.size(), 2u);

  // Replay: same document + same sweep section → stored bytes verbatim,
  // terminal RSLT only (completed points are in the body, not re-streamed).
  const auto second = client.submit_sweep(doc, spec);
  ASSERT_TRUE(second.ok);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.progress.empty());
  EXPECT_EQ(second.hash, first.hash);
  const auto body_of = [](const std::string& raw) {
    const auto pos = raw.find("strategy=");
    return pos == std::string::npos ? raw : raw.substr(pos);
  };
  EXPECT_EQ(body_of(second.raw), body_of(first.raw));
  EXPECT_EQ(stat_of(client, "cache_hits"), 1u);

  // A different ladder is a different key: miss, not a stale replay.
  spec.budgets = {1e-6};
  const auto third = client.submit_sweep(doc, spec);
  ASSERT_TRUE(third.ok);
  EXPECT_FALSE(third.cache_hit);
  EXPECT_NE(third.hash, first.hash);
}

TEST_F(ServeServerTest, SweepStatsAggregateOptimizerProbeCounters) {
  start();
  serve::Client client = connect();
  serve::SweepSpec spec;
  spec.budgets = {1e-8, 1e-7};
  spec.min_bits = 4;
  spec.max_bits = 20;
  const std::string doc =
      read_file(std::string(PSDACC_CORPUS_DIR) + "/fir_lp_direct.sfg");
  const auto r = client.submit_sweep(doc, spec);
  ASSERT_TRUE(r.ok) << r.error << ": " << r.message;
  // Satellite contract: the lifetime STTS counters equal the one job's
  // response counters on a fresh server — and show delta >> full, the
  // serving-side signature of the delta probe path.
  EXPECT_EQ(stat_of(client, "opt_probes_full"), r.probes_full);
  EXPECT_EQ(stat_of(client, "opt_probes_cached"), r.probes_cached);
  EXPECT_EQ(stat_of(client, "opt_probes_delta"), r.probes_delta);
  EXPECT_GT(stat_of(client, "opt_probes_delta"),
            stat_of(client, "opt_probes_full"));
}

TEST_F(ServeServerTest, SweepRejectsBadSections) {
  start();
  serve::Client client = connect();
  const std::string doc = quick_document();
  {
    serve::SweepSpec spec;
    spec.strategy = "gradient";  // unknown token: rejected at parse
    const auto r = client.submit_sweep(doc, spec);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "BAD_REQUEST");
  }
  {
    serve::SweepSpec spec;
    spec.budget_lo = 1e-4;  // inverted ladder
    spec.budget_hi = 1e-9;
    const auto r = client.submit_sweep(doc, spec);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "BAD_REQUEST");
  }
  {
    sfg::Graph g;
    g.add_output(g.add_gain(g.add_input(), 0.5));  // no noise sources
    serve::SweepSpec spec;
    const auto r = client.submit_sweep(
        sfg::serialize(sfg::Scenario{std::move(g), {}, {}, {}}), spec);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error, "BAD_REQUEST");
  }
  // The connection survives every rejection.
  EXPECT_TRUE(client.submit_eval(doc).ok);
}

// ---------------------------------------------------------------------------
// Golden corpus over the wire: the end-to-end contract
// ---------------------------------------------------------------------------

class ServeCorpusFile : public ::testing::TestWithParam<std::string> {};

TEST_P(ServeCorpusFile, ServedResultsMatchTheRecordedGoldens) {
  static serve::Server* shared_server = [] {
    static serve::Server server{[] {
      serve::ServerConfig cfg;
      cfg.port = 0;
      return cfg;
    }()};
    server.start();
    return &server;
  }();
  serve::Client client(shared_server->port());
  const std::string text = read_file(GetParam());
  const auto response = client.submit_eval(text);
  ASSERT_TRUE(response.ok) << response.error << ": " << response.message;

  const sfg::Scenario scenario = sfg::parse_scenario(text);
  for (const auto& [kind, golden] : scenario.expected) {
    bool found = false;
    for (const auto& engine : response.engines) {
      if (engine.kind != kind) continue;
      found = true;
      const double rel = std::abs(engine.power - golden) /
                         std::max(std::abs(golden), 1e-300);
      EXPECT_LE(rel, 1e-9)
          << core::to_string(kind) << ": served " << engine.power
          << " vs golden " << golden;
    }
    EXPECT_TRUE(found) << "engine " << core::to_string(kind)
                       << " missing from the served reply";
  }
}

std::string test_name_for(const ::testing::TestParamInfo<std::string>& info) {
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ServeCorpusFile,
                         ::testing::ValuesIn(corpus_files()),
                         test_name_for);

}  // namespace
