// Simulation-engine tests: reference/fixed-point execution, error
// measurement statistics, transient discarding, and measured error PSDs.
#include <cmath>

#include <gtest/gtest.h>

#include "core/accuracy_engine.hpp"
#include "filters/iir_design.hpp"
#include "sim/error_measurement.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using sfg::Graph;

TEST(ErrorMeasurement, PureQuantizerErrorStatistics) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 8)));
  Xoshiro256 rng(1);
  const auto x = uniform_signal(1u << 17, 0.9, rng);
  const auto m = sim::measure_output_error(g, x, 0);
  const auto predicted =
      fxp::continuous_quantization_noise(fxp::q_format(4, 8));
  EXPECT_NEAR(m.power, predicted.power(), 0.03 * predicted.power());
  EXPECT_NEAR(m.mean, 0.0, 0.02 * fxp::q_format(4, 8).step());
  EXPECT_EQ(m.samples, x.size());
}

TEST(ErrorMeasurement, TruncationBiasVisible) {
  const auto fmt = fxp::q_format(4, 8, fxp::RoundingMode::kTruncate);
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fmt));
  Xoshiro256 rng(2);
  const auto x = uniform_signal(1u << 16, 0.9, rng);
  const auto m = sim::measure_output_error(g, x, 0);
  EXPECT_NEAR(m.mean, -fmt.step() / 2.0, 0.05 * fmt.step());
}

TEST(ErrorMeasurement, DiscardSkipsTransient) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 8)));
  Xoshiro256 rng(3);
  const auto x = uniform_signal(4096, 0.9, rng);
  const auto full = sim::measure_output_error(g, x, 0);
  const auto cut = sim::measure_output_error(g, x, 1000);
  EXPECT_EQ(full.samples, 4096u);
  EXPECT_EQ(cut.samples, 3096u);
  EXPECT_EQ(cut.signal.size(), 3096u);
}

TEST(ErrorMeasurement, ReferenceModeHasZeroError) {
  // A graph with no quantization has identical ref/fx behavior.
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_block(
      in, filt::iir_lowpass(filt::IirFamily::kButterworth, 2, 0.2)));
  Xoshiro256 rng(4);
  const auto x = uniform_signal(2048, 0.9, rng);
  const auto m = sim::measure_output_error(g, x, 0);
  EXPECT_DOUBLE_EQ(m.power, 0.0);
}

TEST(ErrorMeasurement, MeasuredPsdTotalsErrorPower) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 8));
  g.add_output(g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.15),
      fxp::q_format(4, 8)));
  Xoshiro256 rng(5);
  const auto x = uniform_signal(1u << 16, 0.9, rng);
  const auto m = sim::measure_output_error(g, x, 256);
  const auto psd = sim::measured_error_psd(m, 128);
  double tot = 0.0;
  for (double v : psd) tot += v;
  EXPECT_NEAR(tot, m.power, 0.1 * m.power);
}

TEST(EvaluateAccuracy, ReportFieldsConsistent) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 10));
  g.add_output(g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 2, 0.25),
      fxp::q_format(4, 10)));
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 16;
  cfg.n_psd = 256;
  const auto report = sim::evaluate_accuracy(g, cfg);
  // Single-rate graph: all four engines must be present, keyed by kind.
  ASSERT_EQ(report.estimates.size(), 4u);
  EXPECT_GT(report.reference_power, 0.0);
  EXPECT_EQ(report.reference_power,
            report.power(core::EngineKind::kSimulation));
  EXPECT_DOUBLE_EQ(report.ed(core::EngineKind::kSimulation), 0.0);
  for (const auto& est : report.estimates) {
    EXPECT_GT(est.power, 0.0) << est.name;
    EXPECT_EQ(est.name, core::to_string(est.kind));
    EXPECT_GE(est.tau_pp, 0.0);
    EXPECT_GE(est.tau_eval, 0.0);
    EXPECT_NEAR(est.ed,
                (report.reference_power - est.power) /
                    report.reference_power,
                1e-15)
        << est.name;
  }
  EXPECT_LT(std::abs(report.ed(core::EngineKind::kPsd)), 0.5);
}

TEST(EvaluateAccuracy, DeterministicGivenSeed) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 8)));
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 14;
  const auto a = sim::evaluate_accuracy(g, cfg);
  const auto b = sim::evaluate_accuracy(g, cfg);
  EXPECT_DOUBLE_EQ(a.reference_power, b.reference_power);
}

TEST(Executor, MultirateChainLengths) {
  Graph g;
  const auto in = g.add_input();
  const auto down = g.add_downsample(in, 3);
  const auto up = g.add_upsample(down, 2);
  const auto out = g.add_output(up);
  std::map<sfg::NodeId, std::vector<double>> inputs;
  inputs[in] = std::vector<double>(12, 1.0);
  const auto signals = sim::execute(g, inputs, sim::Mode::kReference);
  EXPECT_EQ(signals[down].size(), 4u);
  EXPECT_EQ(signals[out].size(), 8u);
}

}  // namespace
