// Fixed-point substrate tests: format arithmetic, all rounding and
// overflow modes, quantizer idempotence, and empirical validation of the
// PQN noise model (the statistics Eq. 10 is built on).
#include <cmath>

#include <gtest/gtest.h>

#include "fixedpoint/format.hpp"
#include "fixedpoint/noise_model.hpp"
#include "fixedpoint/noise_model_psd.hpp"
#include "fixedpoint/quantizer.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"

namespace {

using psdacc::Xoshiro256;
using namespace psdacc::fxp;

TEST(Format, StepAndRange) {
  const auto fmt = q_format(4, 12);
  EXPECT_DOUBLE_EQ(fmt.step(), std::ldexp(1.0, -12));
  EXPECT_DOUBLE_EQ(fmt.max_value(), 8.0 - std::ldexp(1.0, -12));
  EXPECT_DOUBLE_EQ(fmt.min_value(), -8.0);
  EXPECT_EQ(fmt.word_length(), 16);
}

TEST(Format, UnsignedRange) {
  FixedPointFormat fmt;
  fmt.integer_bits = 3;
  fmt.fractional_bits = 5;
  fmt.is_signed = false;
  EXPECT_DOUBLE_EQ(fmt.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(fmt.max_value(), 8.0 - std::ldexp(1.0, -5));
}

TEST(Format, ToStringIsDescriptive) {
  const auto fmt = q_format(2, 14, RoundingMode::kTruncate);
  EXPECT_EQ(fmt.to_string(), "sQ2.14/trunc/sat");
}

TEST(Quantize, RoundNearestGrid) {
  const auto fmt = q_format(4, 2);  // step 0.25
  EXPECT_DOUBLE_EQ(quantize(0.30, fmt), 0.25);
  EXPECT_DOUBLE_EQ(quantize(0.38, fmt), 0.50);
  EXPECT_DOUBLE_EQ(quantize(-0.30, fmt), -0.25);
  // Half-up ties.
  EXPECT_DOUBLE_EQ(quantize(0.125, fmt), 0.25);
  EXPECT_DOUBLE_EQ(quantize(-0.125, fmt), 0.0);
}

TEST(Quantize, TruncateFloorsTowardMinusInfinity) {
  auto fmt = q_format(4, 2, RoundingMode::kTruncate);
  EXPECT_DOUBLE_EQ(quantize(0.99, fmt), 0.75);
  EXPECT_DOUBLE_EQ(quantize(-0.01, fmt), -0.25);
  EXPECT_DOUBLE_EQ(quantize(-0.99, fmt), -1.0);
}

TEST(Quantize, ConvergentBreaksTiesToEven) {
  auto fmt = q_format(4, 2, RoundingMode::kConvergent);  // step 0.25
  // 0.125 is a tie between 0 (even multiple) and 0.25 (odd multiple).
  EXPECT_DOUBLE_EQ(quantize(0.125, fmt), 0.0);
  // 0.375 ties between 0.25 (1 unit) and 0.5 (2 units) -> even 0.5.
  EXPECT_DOUBLE_EQ(quantize(0.375, fmt), 0.5);
  // Non-ties round to nearest as usual.
  EXPECT_DOUBLE_EQ(quantize(0.30, fmt), 0.25);
}

TEST(Quantize, SaturationClampsAtRange) {
  const auto fmt = q_format(2, 4);  // range [-2, 2)
  EXPECT_DOUBLE_EQ(quantize(5.0, fmt), fmt.max_value());
  EXPECT_DOUBLE_EQ(quantize(-5.0, fmt), -2.0);
}

TEST(Quantize, WrapModeWrapsAround) {
  auto fmt = q_format(2, 4);
  fmt.overflow = OverflowMode::kWrap;
  // Range [-2, 2); 2.0 wraps to -2.0.
  EXPECT_DOUBLE_EQ(quantize(2.0, fmt), -2.0);
  EXPECT_DOUBLE_EQ(quantize(2.5, fmt), -1.5);
  EXPECT_DOUBLE_EQ(quantize(-2.25, fmt), 1.75);
}

TEST(Quantize, WrapAppliesRoundingBeforeWrapAround) {
  auto fmt = q_format(2, 4, RoundingMode::kRoundNearest);  // step 0.0625
  fmt.overflow = OverflowMode::kWrap;
  // Just below the top of range: rounds up onto 2.0, which wraps to -2.0.
  EXPECT_DOUBLE_EQ(quantize(fmt.max_value() + fmt.step() / 2.0, fmt), -2.0);
  // Rounds down to max_value(): stays in range, no wrap.
  EXPECT_DOUBLE_EQ(quantize(fmt.max_value() + 0.4 * fmt.step(), fmt),
                   fmt.max_value());
  // Half-up tie exactly at the wrap boundary.
  EXPECT_DOUBLE_EQ(quantize(2.0 - fmt.step() / 2.0, fmt), -2.0);
}

TEST(Quantize, WrapIsPeriodicAcrossMultipleRanges) {
  auto fmt = q_format(2, 4);  // range [-2, 2), span 4
  fmt.overflow = OverflowMode::kWrap;
  for (const double base : {0.5, -1.25, 1.9375}) {
    for (int k = -3; k <= 3; ++k) {
      EXPECT_DOUBLE_EQ(quantize(base + 4.0 * k, fmt), quantize(base, fmt))
          << "base " << base << " period " << k;
    }
  }
}

TEST(Quantize, WrapKeepsResultOnGridAndInRange) {
  auto fmt = q_format(2, 3, RoundingMode::kRoundNearest);
  fmt.overflow = OverflowMode::kWrap;
  Xoshiro256 rng(11);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform(-40.0, 40.0);
    const double q = quantize(v, fmt);
    EXPECT_GE(q, fmt.min_value());
    EXPECT_LE(q, fmt.max_value());
    const double units = q / fmt.step();
    EXPECT_NEAR(units, std::round(units), 1e-9);
  }
}

TEST(Quantize, KernelMatchesFreeFunction) {
  // The precompiled kernel must agree with the one-shot form bit for bit in
  // every rounding/overflow combination.
  for (const auto rounding :
       {RoundingMode::kTruncate, RoundingMode::kRoundNearest,
        RoundingMode::kConvergent}) {
    for (const auto overflow : {OverflowMode::kSaturate, OverflowMode::kWrap}) {
      auto fmt = q_format(3, 5, rounding);
      fmt.overflow = overflow;
      const QuantizerKernel kernel(fmt);
      Xoshiro256 rng(17);
      for (int i = 0; i < 500; ++i) {
        const double v = rng.uniform(-12.0, 12.0);
        EXPECT_DOUBLE_EQ(kernel(v), quantize(v, fmt));
      }
    }
  }
}

TEST(Quantize, IdempotentOnGridValues) {
  const auto fmt = q_format(4, 8);
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-7.0, 7.0);
    const double q1 = quantize(v, fmt);
    EXPECT_DOUBLE_EQ(quantize(q1, fmt), q1);
  }
}

TEST(Quantize, ErrorBoundedByStep) {
  const auto fmt = q_format(4, 10);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-7.0, 7.0);
    EXPECT_LE(std::abs(quantize(v, fmt) - v), fmt.step() / 2.0 + 1e-15);
  }
}

class PqnMoments : public ::testing::TestWithParam<int> {};

TEST_P(PqnMoments, RoundingMatchesEmpiricalStatistics) {
  const int d = GetParam();
  const auto fmt = q_format(4, d);
  const auto predicted = continuous_quantization_noise(fmt);
  Xoshiro256 rng(1000 + d);
  psdacc::RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    stats.add(quantize(v, fmt) - v);
  }
  const double q = fmt.step();
  EXPECT_NEAR(stats.mean(), predicted.mean, 0.02 * q);
  EXPECT_NEAR(stats.variance(), predicted.variance,
              0.05 * predicted.variance);
}

TEST_P(PqnMoments, TruncationMatchesEmpiricalStatistics) {
  const int d = GetParam();
  const auto fmt = q_format(4, d, RoundingMode::kTruncate);
  const auto predicted = continuous_quantization_noise(fmt);
  Xoshiro256 rng(2000 + d);
  psdacc::RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double v = rng.uniform(-1.0, 1.0);
    stats.add(quantize(v, fmt) - v);
  }
  const double q = fmt.step();
  EXPECT_NEAR(stats.mean(), predicted.mean, 0.02 * q);
  EXPECT_NEAR(stats.variance(), predicted.variance,
              0.05 * predicted.variance);
}

INSTANTIATE_TEST_SUITE_P(FractionalBits, PqnMoments,
                         ::testing::Values(4, 6, 8, 10, 12));

TEST(NarrowingMoments, TruncationOnDiscreteGrid) {
  // Narrow from 10 to 6 fractional bits.
  const auto out_fmt = q_format(4, 6, RoundingMode::kTruncate);
  const auto predicted = narrowing_quantization_noise(10, out_fmt);
  const auto in_fmt = q_format(4, 10, RoundingMode::kRoundNearest);
  Xoshiro256 rng(31);
  psdacc::RunningStats stats;
  for (int i = 0; i < 400000; ++i) {
    const double v = quantize(rng.uniform(-1.0, 1.0), in_fmt);
    stats.add(quantize(v, out_fmt) - v);
  }
  EXPECT_NEAR(stats.mean(), predicted.mean, 0.02 * out_fmt.step());
  EXPECT_NEAR(stats.variance(), predicted.variance,
              0.05 * predicted.variance);
}

TEST(NarrowingMoments, RoundNearestTieBias) {
  const auto out_fmt = q_format(4, 6, RoundingMode::kRoundNearest);
  const auto predicted = narrowing_quantization_noise(10, out_fmt);
  const auto in_fmt = q_format(4, 10, RoundingMode::kRoundNearest);
  Xoshiro256 rng(32);
  psdacc::RunningStats stats;
  for (int i = 0; i < 400000; ++i) {
    const double v = quantize(rng.uniform(-1.0, 1.0), in_fmt);
    stats.add(quantize(v, out_fmt) - v);
  }
  // Predicted bias is q_in / 2 = 2^-11.
  EXPECT_NEAR(predicted.mean, std::ldexp(1.0, -11), 1e-15);
  EXPECT_NEAR(stats.mean(), predicted.mean, 0.25 * predicted.mean);
  EXPECT_NEAR(stats.variance(), predicted.variance,
              0.05 * predicted.variance);
}

TEST(NarrowingMoments, NoBitsDroppedMeansNoNoise) {
  const auto fmt = q_format(4, 8);
  const auto m = narrowing_quantization_noise(8, fmt);
  EXPECT_DOUBLE_EQ(m.mean, 0.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.0);
}

TEST(WhiteNoisePsd, SumsToTotalPower) {
  NoiseMoments m{0.01, 2.5e-5};
  const auto psd = white_noise_psd(m, 64);
  ASSERT_EQ(psd.size(), 64u);
  EXPECT_DOUBLE_EQ(psd[0], m.mean * m.mean);
  double non_dc = 0.0;
  for (std::size_t k = 1; k < psd.size(); ++k) non_dc += psd[k];
  EXPECT_NEAR(non_dc, m.variance, 1e-15);
}

TEST(NoiseMoments, PowerIsMeanSquarePlusVariance) {
  NoiseMoments m{-0.5, 0.25};
  EXPECT_DOUBLE_EQ(m.power(), 0.5);
}

}  // namespace
