// Convolution tests: direct vs FFT agreement, overlap-save streaming
// equivalence with one-shot convolution, history handling across blocks.
#include <gtest/gtest.h>

#include "dsp/convolution.hpp"
#include "support/random.hpp"

namespace {

using psdacc::Xoshiro256;

TEST(DirectConvolution, KnownSmallCase) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const std::vector<double> h{1.0, -1.0};
  const auto y = psdacc::dsp::convolve_direct(x, h);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
  EXPECT_DOUBLE_EQ(y[3], -3.0);
}

TEST(DirectConvolution, IdentityKernel) {
  Xoshiro256 rng(1);
  const auto x = psdacc::gaussian_signal(37, rng);
  const std::vector<double> h{1.0};
  const auto y = psdacc::dsp::convolve_direct(x, h);
  ASSERT_EQ(y.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(DirectConvolution, Commutes) {
  Xoshiro256 rng(2);
  const auto a = psdacc::gaussian_signal(13, rng);
  const auto b = psdacc::gaussian_signal(29, rng);
  const auto ab = psdacc::dsp::convolve_direct(a, b);
  const auto ba = psdacc::dsp::convolve_direct(b, a);
  ASSERT_EQ(ab.size(), ba.size());
  for (std::size_t i = 0; i < ab.size(); ++i)
    EXPECT_NEAR(ab[i], ba[i], 1e-12);
}

class ConvolutionEquivalence
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(ConvolutionEquivalence, FftMatchesDirect) {
  const auto [nx, nh] = GetParam();
  Xoshiro256 rng(nx * 31 + nh);
  const auto x = psdacc::gaussian_signal(nx, rng);
  const auto h = psdacc::gaussian_signal(nh, rng);
  const auto direct = psdacc::dsp::convolve_direct(x, h);
  const auto fast = psdacc::dsp::convolve_fft(x, h);
  ASSERT_EQ(direct.size(), fast.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_NEAR(direct[i], fast[i], 1e-9) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvolutionEquivalence,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{8, 3},
                      std::pair<std::size_t, std::size_t>{100, 16},
                      std::pair<std::size_t, std::size_t>{16, 100},
                      std::pair<std::size_t, std::size_t>{255, 9},
                      std::pair<std::size_t, std::size_t>{1000, 63}));

TEST(OverlapSave, BlockSizeArithmetic) {
  const std::vector<double> h(9, 0.1);
  psdacc::dsp::OverlapSave os(h, 32);
  EXPECT_EQ(os.fft_size(), 32u);
  EXPECT_EQ(os.block_size(), 32u - 9u + 1u);
}

TEST(OverlapSave, MatchesDirectConvolutionOverManyBlocks) {
  Xoshiro256 rng(77);
  const auto h = psdacc::gaussian_signal(9, rng);
  const auto x = psdacc::gaussian_signal(240, rng);
  psdacc::dsp::OverlapSave os(h, 32);
  const auto streamed = os.filter(x);
  const auto reference = psdacc::dsp::convolve_direct(x, h);
  ASSERT_EQ(streamed.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(streamed[i], reference[i], 1e-9) << "index " << i;
}

TEST(OverlapSave, SignalShorterThanOneBlock) {
  Xoshiro256 rng(78);
  const auto h = psdacc::gaussian_signal(5, rng);
  const auto x = psdacc::gaussian_signal(7, rng);
  psdacc::dsp::OverlapSave os(h, 16);
  const auto streamed = os.filter(x);
  const auto reference = psdacc::dsp::convolve_direct(x, h);
  ASSERT_EQ(streamed.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(streamed[i], reference[i], 1e-9);
}

TEST(OverlapSave, ResetClearsHistory) {
  Xoshiro256 rng(79);
  const auto h = psdacc::gaussian_signal(9, rng);
  const auto x = psdacc::gaussian_signal(48, rng);
  psdacc::dsp::OverlapSave os(h, 32);
  const auto first = os.filter(x);
  os.reset();
  const auto second = os.filter(x);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_DOUBLE_EQ(first[i], second[i]);
}

TEST(OverlapSave, SingleTapFilterIsGain) {
  const std::vector<double> h{2.5};
  psdacc::dsp::OverlapSave os(h, 8);
  EXPECT_EQ(os.block_size(), 8u);
  Xoshiro256 rng(80);
  const auto x = psdacc::gaussian_signal(24, rng);
  const auto y = os.filter(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], 2.5 * x[i], 1e-12);
}

}  // namespace
