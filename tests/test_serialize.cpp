// Property tests for the versioned SFG text format: round-trips over
// realistic and randomized graphs, canonical byte-identity, forward
// compatibility, and diagnostics (not UB) on malformed input.
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "filters/sos.hpp"
#include "sfg/random_graph.hpp"
#include "sfg/realizations.hpp"
#include "sfg/serialize.hpp"
#include "wavelet/dwt_sfg.hpp"

namespace {

using namespace psdacc;

void expect_round_trip(const sfg::Graph& g) {
  const std::string text = sfg::serialize(g);
  const sfg::Graph parsed = sfg::parse_graph(text);
  EXPECT_TRUE(sfg::graphs_equal(g, parsed)) << text;
  // Canonical: emitting the parsed graph reproduces the bytes exactly.
  EXPECT_EQ(sfg::serialize(parsed), text);
}

// Matcher-style helper: parsing must throw a ParseError whose diagnostic
// carries the expected substring and a plausible position.
void expect_parse_error(const std::string& text, const std::string& needle,
                        int expected_line = 0) {
  try {
    (void)sfg::parse_scenario(text);
    FAIL() << "expected ParseError(" << needle << ") on:\n" << text;
  } catch (const sfg::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "wanted '" << needle << "', got: " << e.what();
    EXPECT_GE(e.line(), 1);
    EXPECT_GE(e.column(), 1);
    if (expected_line > 0) {
      EXPECT_EQ(e.line(), expected_line) << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// Round-trips
// ---------------------------------------------------------------------------

TEST(SerializeRoundTrip, RealizationForms) {
  const auto fmt = fxp::q_format(4, 12);
  const auto h = filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2);
  expect_round_trip(sfg::build_direct_form(h, fmt));
  expect_round_trip(sfg::build_cascade_form(
      filt::design_sos_lowpass(filt::IirFamily::kButterworth, 6, 0.25),
      fmt));
  expect_round_trip(sfg::build_parallel_form(
      filt::zpk_to_parallel(filt::bilinear(filt::lp_to_lp(
          filt::analog_prototype(filt::IirFamily::kButterworth, 4),
          std::tan(3.14159265358979323846 * 0.2)))),
      fmt));
}

TEST(SerializeRoundTrip, DwtCodecs) {
  expect_round_trip(wav::build_dwt1d_codec({1, fxp::q_format(4, 12)}));
  expect_round_trip(wav::build_dwt1d_codec({2, fxp::q_format(3, 10)}));
  expect_round_trip(wav::build_dwt1d_codec({2, {}}));  // reference mode
}

TEST(SerializeRoundTrip, RandomDefaultProfile) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    expect_round_trip(sfg::random_graph(seed, {.depth = 6}));
}

TEST(SerializeRoundTrip, RandomMultirateProfile) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    expect_round_trip(
        sfg::random_graph(seed, {.depth = 6, .multirate = true}));
}

TEST(SerializeRoundTrip, RandomHostileNames) {
  // Names with quotes, backslashes, newlines, NUL bytes, control chars,
  // '#', '=', brackets, leading/trailing spaces, 200+-char runs.
  for (std::uint64_t seed = 1; seed <= 60; ++seed)
    expect_round_trip(
        sfg::random_graph(seed, {.depth = 5, .hostile_names = true}));
}

TEST(SerializeRoundTrip, DegenerateBoundaryGraphs) {
  expect_round_trip(sfg::Graph{});  // empty graph
  {
    sfg::Graph g;
    g.add_input("only");
    expect_round_trip(g);  // single node
  }
  for (std::uint64_t seed = 1; seed <= 40; ++seed)
    expect_round_trip(sfg::random_graph(
        seed, {.depth = 3, .hostile_names = true, .degenerate = true}));
}

TEST(SerializeRoundTrip, FeedbackLoop) {
  // add_adder_input is the only way to create a forward (feedback) edge;
  // the parser must rebuild it via Graph::from_nodes.
  sfg::Graph g;
  const auto in = g.add_input();
  const auto add = g.add_adder({in});
  const auto q = g.add_quantizer(add, fxp::q_format(4, 12));
  const auto d = g.add_delay(q, 1);
  const auto gain = g.add_gain(d, -0.5, "fb");
  g.add_adder_input(add, gain);
  g.add_output(q);
  ASSERT_TRUE(g.has_cycles());
  expect_round_trip(g);
}

TEST(SerializeRoundTrip, QuantizerWithOverriddenMoments) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12),
                                 fxp::NoiseMoments{1e-4, 5e-9}, "measured");
  g.add_output(q);
  const auto parsed = sfg::parse_graph(sfg::serialize(g));
  ASSERT_TRUE(sfg::graphs_equal(g, parsed));
  const auto* qn =
      std::get_if<sfg::QuantizerNode>(&parsed.node(1).payload);
  ASSERT_NE(qn, nullptr);
  EXPECT_EQ(qn->moments.mean, 1e-4);
  EXPECT_EQ(qn->moments.variance, 5e-9);
}

TEST(SerializeRoundTrip, AllFormatVariants) {
  sfg::Graph g;
  auto head = g.add_input();
  int i = 0;
  for (const bool is_signed : {true, false})
    for (const auto rounding :
         {fxp::RoundingMode::kTruncate, fxp::RoundingMode::kRoundNearest,
          fxp::RoundingMode::kConvergent})
      for (const auto overflow :
           {fxp::OverflowMode::kSaturate, fxp::OverflowMode::kWrap}) {
        fxp::FixedPointFormat f{2 + (i % 3), 8 + i, is_signed, rounding,
                                overflow};
        std::string qname = "q";
        qname += std::to_string(i++);
        head = g.add_quantizer(head, f, std::move(qname));
      }
  g.add_output(head);
  expect_round_trip(g);
}

TEST(SerializeRoundTrip, ScenarioWithConfigAndExpect) {
  sfg::Scenario s;
  const auto in = s.graph.add_input();
  s.graph.add_output(s.graph.add_quantizer(in, fxp::q_format(4, 12)));
  s.config.n_psd = 256;
  s.config.sim_samples = 1u << 18;
  s.config.discard = 512;
  s.config.seed = 99;
  s.config.input_amplitude = 0.75;
  s.config.shards = 4;
  s.config.engines = {core::EngineKind::kPsd, core::EngineKind::kFlat};
  s.expected = {{core::EngineKind::kPsd, 1.25e-8},
                {core::EngineKind::kFlat, 1.25e-8}};

  const std::string text = sfg::serialize(s);
  const sfg::Scenario parsed = sfg::parse_scenario(text);
  EXPECT_TRUE(sfg::graphs_equal(s.graph, parsed.graph));
  EXPECT_EQ(parsed.config.n_psd, 256u);
  EXPECT_EQ(parsed.config.sim_samples, 1u << 18);
  EXPECT_EQ(parsed.config.discard, 512u);
  EXPECT_EQ(parsed.config.seed, 99u);
  EXPECT_EQ(parsed.config.input_amplitude, 0.75);
  EXPECT_EQ(parsed.config.shards, 4u);
  ASSERT_EQ(parsed.config.engines.size(), 2u);
  EXPECT_EQ(parsed.config.engines[0], core::EngineKind::kPsd);
  EXPECT_EQ(parsed.config.engines[1], core::EngineKind::kFlat);
  ASSERT_EQ(parsed.expected.size(), 2u);
  EXPECT_EQ(parsed.expected[0].second, 1.25e-8);
  EXPECT_EQ(sfg::serialize(parsed), text);
}

TEST(SerializeRoundTrip, OptExpectSectionRoundTripsCanonically) {
  sfg::Scenario s;
  const auto in = s.graph.add_input();
  s.graph.add_output(s.graph.add_quantizer(in, fxp::q_format(4, 12)));
  s.opt_expected = {
      {"greedy", core::EngineKind::kPsd, 1e-8, 2, 24, 0, 38.0},
      {"anneal", core::EngineKind::kPsd, 1e-8, 2, 16, 42, 37.0},
      {"bnb", core::EngineKind::kFlat, 1e-6, 4, 12, 0, 30.0},
  };
  const std::string text = sfg::serialize(s);
  const sfg::Scenario parsed = sfg::parse_scenario(text);
  ASSERT_EQ(parsed.opt_expected.size(), 3u);
  EXPECT_EQ(parsed.opt_expected[0].strategy, "greedy");
  EXPECT_EQ(parsed.opt_expected[0].cost, 38.0);
  EXPECT_EQ(parsed.opt_expected[1].strategy, "anneal");
  EXPECT_EQ(parsed.opt_expected[1].seed, 42u);
  EXPECT_EQ(parsed.opt_expected[1].max_bits, 16);
  EXPECT_EQ(parsed.opt_expected[2].engine, core::EngineKind::kFlat);
  EXPECT_EQ(parsed.opt_expected[2].budget, 1e-6);
  // Canonical: re-emitting reproduces the bytes exactly, opt_expect
  // included (the corpus regen path depends on this).
  EXPECT_EQ(sfg::serialize(parsed), text);
  EXPECT_NE(text.find("opt_expect {"), std::string::npos);
  EXPECT_NE(
      text.find("run strategy=anneal engine=psd budget=1e-08 min_bits=2 "
                "max_bits=16 seed=42 cost=37"),
      std::string::npos);
}

TEST(SerializeCompat, OptExpectUnknownAttributesAreSkipped) {
  sfg::Graph g;
  g.add_output(g.add_quantizer(g.add_input(), fxp::q_format(4, 12)));
  std::string text = sfg::serialize(g);
  text +=
      "opt_expect {\n"
      "  run strategy=tabu future_knob=7 cost=12\n"
      "}\n";
  const sfg::Scenario parsed = sfg::parse_scenario(text);
  ASSERT_EQ(parsed.opt_expected.size(), 1u);
  EXPECT_EQ(parsed.opt_expected[0].strategy, "tabu");
  EXPECT_EQ(parsed.opt_expected[0].cost, 12.0);
  // Unset attributes fall back to the documented defaults.
  EXPECT_EQ(parsed.opt_expected[0].engine, core::EngineKind::kPsd);
  EXPECT_EQ(parsed.opt_expected[0].min_bits, 2);
  EXPECT_EQ(parsed.opt_expected[0].max_bits, 24);
  EXPECT_EQ(parsed.opt_expected[0].seed, 0u);
}

TEST(SerializeErrors, OptExpectSectionProblems) {
  sfg::Graph g;
  g.add_output(g.add_quantizer(g.add_input(), fxp::q_format(4, 12)));
  const std::string doc = sfg::serialize(g);
  expect_parse_error(doc + "opt_expect {\n  run strategy=greedy\n}\n",
                     "requires cost=");
  expect_parse_error(doc + "opt_expect {\n  run cost=1 engine=warp\n}\n",
                     "unknown engine");
  expect_parse_error(
      doc + "opt_expect {\n  run cost=1 min_bits=9 max_bits=4\n}\n",
      "min_bits <= max_bits");
  expect_parse_error(doc + "opt_expect {\n  run cost=1\n",
                     "unterminated opt_expect");
  expect_parse_error(doc + "opt_expect {\n  walk cost=1\n}\n",
                     "expected 'run' or '}'");
}

TEST(SerializeRoundTrip, GraphOnlyDocumentGetsDefaultConfig) {
  sfg::Graph g;
  g.add_output(g.add_input());
  const sfg::Scenario s = sfg::parse_scenario(sfg::serialize(g));
  const sim::EvaluationConfig defaults;
  EXPECT_EQ(s.config.n_psd, defaults.n_psd);
  EXPECT_EQ(s.config.seed, defaults.seed);
  EXPECT_TRUE(s.expected.empty());
}

TEST(SerializeRoundTrip, DoublesSurviveExactly) {
  // Shortest-round-trip emission: gnarly doubles must come back bitwise.
  sfg::Graph g;
  const auto in = g.add_input();
  const auto gn = g.add_gain(in, 0.1 + 0.2);  // 0.30000000000000004
  const auto g2 = g.add_gain(gn, 1.0 / 3.0);
  const auto g3 = g.add_gain(g2, 4.967053731282552e-09);
  g.add_output(g3);
  const auto parsed = sfg::parse_graph(sfg::serialize(g));
  for (sfg::NodeId id : {gn, g2, g3}) {
    const auto* a = std::get_if<sfg::GainNode>(&g.node(id).payload);
    const auto* b = std::get_if<sfg::GainNode>(&parsed.node(id).payload);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->gain, b->gain);
  }
}

// ---------------------------------------------------------------------------
// Forward compatibility and input tolerance
// ---------------------------------------------------------------------------

TEST(SerializeCompat, UnknownKeysAndSectionsAreSkipped) {
  const std::string text =
      "psdacc-sfg v1\n"
      "# a future writer added things this reader does not know\n"
      "graph {\n"
      "  node 0 input future_flag=7 name=\"in\" future_list=[1 2 [3]]\n"
      "  node 1 output in=[0] name=\"out\" future_str=\"x\"\n"
      "}\n"
      "metadata {\n"
      "  author=\"someone\"\n"
      "  nested { deeper { key=[1 2 3] } }\n"
      "}\n"
      "config {\n"
      "  n_psd=128\n"
      "  future_knob=3.5\n"
      "}\n";
  const sfg::Scenario s = sfg::parse_scenario(text);
  EXPECT_EQ(s.graph.node_count(), 2u);
  EXPECT_EQ(s.config.n_psd, 128u);
}

TEST(SerializeCompat, CommentsAndWhitespaceAreFree) {
  const std::string text =
      "psdacc-sfg v1   # header comment\n"
      "\n"
      "graph {   # graph\n"
      "\tnode 0 input\tname=\"in\"\n"
      "  # a full-line comment\n"
      "  node 1 output in=[ 0 ] name=\"out\"\n"
      "}\n";
  const sfg::Graph g = sfg::parse_graph(text);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node(0).name, "in");
}

TEST(SerializeCompat, MissingOptionalNodeFieldsGetDefaults) {
  // a=[...] defaults to [1]; adder signs default to +1; names default to
  // the node kind.
  const std::string text =
      "psdacc-sfg v1\n"
      "graph {\n"
      "  node 0 input\n"
      "  node 1 block in=[0] b=[0.5 0.5]\n"
      "  node 2 adder in=[0 1]\n"
      "  node 3 output in=[2]\n"
      "}\n";
  const sfg::Graph g = sfg::parse_graph(text);
  const auto* b = std::get_if<sfg::BlockNode>(&g.node(1).payload);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->tf.denominator(), std::vector<double>{1.0});
  EXPECT_FALSE(b->output_format.has_value());
  const auto* a = std::get_if<sfg::AdderNode>(&g.node(2).payload);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->signs, (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(g.node(0).name, "input");
}

// ---------------------------------------------------------------------------
// Malformed input: diagnostics, never UB
// ---------------------------------------------------------------------------

TEST(SerializeErrors, EmptyAndTruncatedDocuments) {
  expect_parse_error("", "expected 'psdacc-sfg");
  expect_parse_error("psdacc-sfg", "expected a format version");
  expect_parse_error("psdacc-sfg v1\n", "missing graph section");
  expect_parse_error("psdacc-sfg v1\ngraph {\n", "expected 'node' or '}'");
  expect_parse_error("psdacc-sfg v1\ngraph {\n  node 0 input\n",
                     "expected 'node' or '}'");
  expect_parse_error(
      "psdacc-sfg v1\ngraph { node 0 input }\nconfig {\n  n_psd=4\n",
      "unterminated config section");
}

TEST(SerializeErrors, BadVersions) {
  expect_parse_error("psdacc-sfg v2\ngraph { }\n",
                     "unsupported format version 2", 1);
  expect_parse_error("psdacc-sfg vx\ngraph { }\n",
                     "expected a format version", 1);
  expect_parse_error("not-psdacc\n", "expected 'psdacc-sfg", 1);
}

TEST(SerializeErrors, DanglingEdge) {
  expect_parse_error(
      "psdacc-sfg v1\n"
      "graph {\n"
      "  node 0 input\n"
      "  node 1 output in=[99]\n"
      "}\n",
      "edge to undefined node 99", 4);
}

TEST(SerializeErrors, NonFiniteCoefficients) {
  expect_parse_error(
      "psdacc-sfg v1\n"
      "graph {\n"
      "  node 0 input\n"
      "  node 1 block in=[0] b=[nan]\n"
      "  node 2 output in=[1]\n"
      "}\n",
      "non-finite value", 4);
  expect_parse_error(
      "psdacc-sfg v1\n"
      "graph {\n"
      "  node 0 input\n"
      "  node 1 gain in=[0] gain=inf\n"
      "  node 2 output in=[1]\n"
      "}\n",
      "non-finite value", 4);
}

TEST(SerializeErrors, StructuralNodeProblems) {
  // Out-of-order node id.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 1 input\n}\n",
      "out of order", 3);
  // Unknown node kind.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 widget\n}\n",
      "unknown node kind 'widget'", 3);
  // Input-arity mismatch.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input\n  node 1 input\n"
      "  node 2 gain in=[0 1] gain=2\n}\n",
      "expects 1 input(s), got 2", 5);
  // Adder signs arity mismatch.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input\n"
      "  node 1 adder in=[0] signs=[1 -1]\n  node 2 output in=[1]\n}\n",
      "1 input(s) but 2 sign(s)", 4);
  // Quantizer without a format.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input\n  node 1 quant in=[0]\n}\n",
      "quant node requires format=", 4);
  // Zero resampling factor.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input\n"
      "  node 1 down in=[0] factor=0\n}\n",
      "factor must be >= 1", 4);
  // Empty block numerator.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input\n"
      "  node 1 block in=[0] b=[]\n}\n",
      "non-empty numerator", 4);
  // Unstable denominator head.
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input\n"
      "  node 1 block in=[0] b=[1] a=[0 1]\n}\n",
      "leading coefficient must be nonzero", 4);
}

TEST(SerializeErrors, LexicalProblems) {
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input name=\"oops\n}\n",
      "unterminated string literal", 3);
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input name=\"bad \\q esc\"\n}\n",
      "unknown escape sequence", 3);
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 input name=\"bad \\xZZ\"\n}\n",
      "bad \\x escape", 3);
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 gain gain=abc in=[]\n}\n",
      "expected a number");
  expect_parse_error(
      "psdacc-sfg v1\ngraph {\n  node 0 quant format=Q4.12 in=[]\n}\n",
      "bad fixed-point format");
}

TEST(SerializeErrors, ExpectSectionProblems) {
  const std::string prefix =
      "psdacc-sfg v1\ngraph {\n  node 0 input\n  node 1 output in=[0]\n}\n";
  expect_parse_error(prefix + "expect {\n  warp=1e-9\n}\n",
                     "unknown engine 'warp'", 7);
  expect_parse_error(prefix + "expect {\n  psd=1e-9\n  psd=2e-9\n}\n",
                     "duplicate expect entry", 8);
  expect_parse_error(prefix + "config {\n  engines=[psd warp]\n}\n",
                     "unknown engine 'warp'", 7);
}

TEST(SerializeErrors, DuplicateGraphSection) {
  expect_parse_error(
      "psdacc-sfg v1\ngraph { }\ngraph { }\n", "duplicate graph section", 3);
}

TEST(SerializeErrors, PositionsPointAtTheOffendingStatement) {
  // Dangling edges are only detectable after the whole section is read;
  // the diagnostic anchors back at the offending node statement.
  try {
    (void)sfg::parse_graph(
        "psdacc-sfg v1\ngraph {\n  node 0 input\n  node 1 output in=[99]\n}\n");
    FAIL() << "expected ParseError";
  } catch (const sfg::ParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_EQ(e.column(), 3);  // the "node" keyword, past the indent
    EXPECT_NE(std::string(e.what()).find("line 4, column 3"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// graphs_equal sanity
// ---------------------------------------------------------------------------

TEST(GraphsEqual, DistinguishesStructureAndParameters) {
  sfg::Graph a;
  a.add_output(a.add_gain(a.add_input(), 0.5));
  sfg::Graph b;
  b.add_output(b.add_gain(b.add_input(), 0.5));
  EXPECT_TRUE(sfg::graphs_equal(a, b));

  sfg::Graph c;
  c.add_output(c.add_gain(c.add_input(), 0.5000001));
  EXPECT_FALSE(sfg::graphs_equal(a, c));

  sfg::Graph d;
  d.add_output(d.add_delay(d.add_input(), 1));
  EXPECT_FALSE(sfg::graphs_equal(a, d));
}

// ---------------------------------------------------------------------------
// Content hashing: the serving layer's cache-key contract
// ---------------------------------------------------------------------------

sfg::Graph hash_fixture_graph() {
  sfg::Graph g;
  const auto in = g.add_input("in");
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12), "q");
  const auto b = g.add_block(
      q, filt::TransferFunction(filt::fir_lowpass(7, 0.25)),
      fxp::q_format(4, 12), "h");
  g.add_output(b);
  return g;
}

sim::EvaluationConfig hash_fixture_config() {
  sim::EvaluationConfig cfg;
  cfg.n_psd = 256;
  cfg.engines = {core::EngineKind::kPsd, core::EngineKind::kFlat};
  return cfg;
}

TEST(ContentHash, PinnedValues) {
  // FNV-1a/128 primitive: the empty input must hash to the offset basis
  // (the algorithm's spec constant) — any drift here breaks every
  // persisted cache key.
  EXPECT_EQ(sfg::content_hash_bytes("").to_string(),
            "6c62272e07bb014262b821756295c58d");
  EXPECT_EQ(sfg::content_hash_bytes("psdacc").to_string(),
            "adc8f29cc33c64bf6f4b26b7d85a4339");
  // Graph and scenario digests are pinned across PRs: they may only change
  // together with an intentional canonical-format (version) bump.
  EXPECT_EQ(sfg::content_hash(hash_fixture_graph()).to_string(),
            "ffc29af424f246f7c6da82a0694f6581");
  EXPECT_EQ(
      sfg::content_hash(hash_fixture_graph(), hash_fixture_config())
          .to_string(),
      "b007e2c77f6185dee0722e2dd3b0c745");
}

TEST(ContentHash, HashesTheCanonicalSerializedForm) {
  const sfg::Graph g = hash_fixture_graph();
  const sim::EvaluationConfig cfg = hash_fixture_config();
  EXPECT_EQ(sfg::content_hash(g),
            sfg::content_hash_bytes(sfg::serialize(g)));
  // The scenario overload covers header + graph + config — identical to
  // hashing a serialized Scenario without expectations.
  EXPECT_EQ(sfg::content_hash(g, cfg),
            sfg::content_hash_bytes(sfg::serialize(sfg::Scenario{g, cfg, {}, {}})));
}

TEST(ContentHash, IndependentOfConstructionHistory) {
  const sfg::Graph g = hash_fixture_graph();
  // A parse(serialize()) copy has fresh revision counters and no warm
  // caches; the digest must not see any of that.
  const sfg::Graph copy = sfg::parse_graph(sfg::serialize(g));
  EXPECT_EQ(sfg::content_hash(g), sfg::content_hash(copy));

  // Mutating and restoring a format bumps revisions but restores content.
  sfg::Graph touched = hash_fixture_graph();
  const auto q = touched.noise_sources().front();
  touched.set_format(q, fxp::q_format(4, 8));
  EXPECT_NE(sfg::content_hash(touched), sfg::content_hash(g));
  touched.set_format(q, fxp::q_format(4, 12));
  EXPECT_EQ(sfg::content_hash(touched), sfg::content_hash(g));
}

TEST(ContentHash, CoversEvaluationConfig) {
  const sfg::Graph g = hash_fixture_graph();
  const sim::EvaluationConfig cfg = hash_fixture_config();
  sim::EvaluationConfig other = cfg;
  other.n_psd = 512;
  EXPECT_NE(sfg::content_hash(g, cfg), sfg::content_hash(g, other));
  sim::EvaluationConfig fewer = cfg;
  fewer.engines = {core::EngineKind::kPsd};
  EXPECT_NE(sfg::content_hash(g, cfg), sfg::content_hash(g, fewer));
  EXPECT_NE(sfg::content_hash(g, cfg), sfg::content_hash(g));
}

TEST(ContentHash, ToStringIsStableHex) {
  const sfg::ContentHash h{0x0123456789abcdefull, 0x00000000000000ffull};
  EXPECT_EQ(h.to_string(), "0123456789abcdef00000000000000ff");
  EXPECT_EQ(sfg::ContentHash{}.to_string(),
            "0000000000000000" "0000000000000000");
}

}  // namespace
