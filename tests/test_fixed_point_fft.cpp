// Bit-true fixed-point FFT tests: agreement with the double FFT at wide
// formats, stage-noise model vs empirical error power, twiddle counting,
// and round-trip behaviour.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/fft.hpp"
#include "fixedpoint/quantizer.hpp"
#include "freqfilt/fixed_point_fft.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"

namespace {

using namespace psdacc;
using dsp::cplx;

TEST(TwiddleCount, Size16Structure) {
  ff::FixedPointFft fft(16, fxp::q_format(8, 12));
  // Stage 0 (len 2): W = 1 only -> 0 nontrivial.
  EXPECT_EQ(fft.nontrivial_twiddles(0), 0u);
  // Stage 1 (len 4): k in {0,1}; k=1 is W=-j (trivial) -> 0.
  EXPECT_EQ(fft.nontrivial_twiddles(1), 0u);
  // Stage 2 (len 8): k in 0..3; trivial k=0,2 -> 2 per group x 2 groups.
  EXPECT_EQ(fft.nontrivial_twiddles(2), 4u);
  // Stage 3 (len 16): k in 0..7; trivial k=0,4 -> 6 x 1 group.
  EXPECT_EQ(fft.nontrivial_twiddles(3), 6u);
}

TEST(FixedPointFft, WideFormatMatchesDoubleFft) {
  const std::size_t n = 64;
  ff::FixedPointFft fft(n, fxp::q_format(10, 30));
  Xoshiro256 rng(1);
  const auto x = uniform_signal(n, 0.9, rng);
  const auto fx = fft.forward(x);
  const auto ref = dsp::fft_real(x);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_LT(std::abs(fx[k] - ref[k]), 1e-6) << "bin " << k;
}

TEST(FixedPointFft, RoundTripRecoversSignal) {
  const std::size_t n = 32;
  ff::FixedPointFft fft(n, fxp::q_format(10, 24));
  Xoshiro256 rng(2);
  const auto x = uniform_signal(n, 0.9, rng);
  const auto back = fft.inverse(fft.forward(x));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(back[i].real(), x[i], 1e-4);
}

class FftNoiseModel
    : public ::testing::TestWithParam<std::pair<std::size_t, int>> {};

TEST_P(FftNoiseModel, ForwardErrorPowerMatchesPrediction) {
  const auto [n, d] = GetParam();
  // Integer bits sized for the sqrt(N)-ish growth of random inputs.
  const auto fmt = fxp::q_format(10, d);
  ff::FixedPointFft fft(n, fmt);
  Xoshiro256 rng(100 + n + static_cast<std::uint64_t>(d));
  RunningStats err;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    // Quantize the input first: the model predicts the *internal* stage
    // noise, relative to an exact transform of the same datapath input.
    const auto x = fxp::quantize(uniform_signal(n, 0.9, rng), fmt);
    const auto fx = fft.forward(x);
    const auto ref = dsp::fft_real(x);
    for (std::size_t k = 0; k < n; ++k) {
      err.add(fx[k].real() - ref[k].real());
      err.add(fx[k].imag() - ref[k].imag());
    }
  }
  // err accumulates per real dimension; the model predicts per complex
  // element, i.e. 2x the per-dimension value.
  const double measured = 2.0 * err.mean_square();
  const double predicted = fft.forward_noise_variance();
  EXPECT_GT(predicted, 0.0);
  // The independence approximations (correlated butterfly outputs) leave
  // tens of percent; require factor-2 agreement.
  EXPECT_LT(measured, 2.0 * predicted) << "n=" << n << " d=" << d;
  EXPECT_GT(measured, 0.5 * predicted) << "n=" << n << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FftNoiseModel,
    ::testing::Values(std::pair<std::size_t, int>{16, 12},
                      std::pair<std::size_t, int>{32, 12},
                      std::pair<std::size_t, int>{64, 12},
                      std::pair<std::size_t, int>{64, 16},
                      std::pair<std::size_t, int>{128, 14}));

TEST(FftNoiseModel, VarianceGrowsWithSize) {
  const auto fmt = fxp::q_format(10, 12);
  const double v16 = ff::FixedPointFft(16, fmt).forward_noise_variance();
  const double v64 = ff::FixedPointFft(64, fmt).forward_noise_variance();
  const double v256 = ff::FixedPointFft(256, fmt).forward_noise_variance();
  EXPECT_LT(v16, v64);
  EXPECT_LT(v64, v256);
}

TEST(FftNoiseModel, InverseIncludesScalingNoise) {
  const auto fmt = fxp::q_format(10, 12);
  ff::FixedPointFft fft(32, fmt);
  const double v = fmt.step() * fmt.step() / 12.0;
  // At minimum the final rounding contributes 2v per complex element.
  EXPECT_GE(fft.inverse_noise_variance(), 2.0 * v);
}

}  // namespace
