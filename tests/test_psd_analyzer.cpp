// Validation of the proposed PSD engine: estimates must match Monte-Carlo
// fixed-point simulation within the paper's sub-one-bit band (and much
// tighter for FIR chains), across filter families and word-lengths.
#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using sfg::Graph;

Graph quantized_filter_graph(const filt::TransferFunction& tf, int d) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, d));
  const auto blk = g.add_block(q, tf, fxp::q_format(4, d));
  g.add_output(blk);
  return g;
}

double simulate_error_power(const Graph& g, std::size_t samples,
                            std::uint64_t seed = 99) {
  Xoshiro256 rng(seed);
  const auto x = uniform_signal(samples, 0.9, rng);
  return sim::measure_output_error(g, x, 512).power;
}

TEST(PsdAnalyzer, PureQuantizerMatchesPqnPower) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 10));
  g.add_output(q);
  core::PsdAnalyzer analyzer(g, {.n_psd = 256});
  const auto est = analyzer.output_noise_power();
  const auto moments = fxp::continuous_quantization_noise(fxp::q_format(4, 10));
  EXPECT_NEAR(est, moments.power(), 1e-15);
  const double simulated = simulate_error_power(g, 1u << 18);
  EXPECT_LT(std::abs(core::mse_deviation(simulated, est)), 0.02);
}

TEST(PsdAnalyzer, SerialQuantizersAddPower) {
  Graph g;
  const auto in = g.add_input();
  const auto q1 = g.add_quantizer(in, fxp::q_format(4, 12));
  // Narrowing 12 -> 8 bits uses the corrected discrete moments.
  const auto fmt8 = fxp::q_format(4, 8);
  const auto q2 = g.add_quantizer(
      q1, fmt8, fxp::narrowing_quantization_noise(12, fmt8));
  g.add_output(q2);
  core::PsdAnalyzer analyzer(g, {.n_psd = 128});
  const double est = analyzer.output_noise_power();
  const double simulated = simulate_error_power(g, 1u << 18);
  EXPECT_LT(std::abs(core::mse_deviation(simulated, est)), 0.05);
}

class FirFilterAccuracy
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, int>> {
};

TEST_P(FirFilterAccuracy, EstimateWithinTightBand) {
  const auto [taps, cutoff, d] = GetParam();
  const filt::TransferFunction tf(filt::fir_lowpass(taps, cutoff));
  const auto g = quantized_filter_graph(tf, d);
  core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
  const double est = analyzer.output_noise_power();
  const double simulated = simulate_error_power(g, 1u << 19, taps * 7 + d);
  const double ed = core::mse_deviation(simulated, est);
  // The paper reports |E_d| <= 0.37% for FIR banks; allow Monte-Carlo
  // slack.
  EXPECT_LT(std::abs(ed), 0.05) << "taps=" << taps << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FirFilterAccuracy,
    ::testing::Combine(::testing::Values<std::size_t>(16, 64),
                       ::testing::Values(0.15, 0.3),
                       ::testing::Values(8, 12, 16)));

class IirFilterAccuracy
    : public ::testing::TestWithParam<std::tuple<filt::IirFamily, int, int>> {
};

TEST_P(IirFilterAccuracy, EstimateWithinOneBitBand) {
  const auto [family, order, d] = GetParam();
  const auto tf = filt::iir_lowpass(family, order, 0.2);
  const auto g = quantized_filter_graph(tf, d);
  core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
  const double est = analyzer.output_noise_power();
  const double simulated =
      simulate_error_power(g, 1u << 19, 7u * static_cast<unsigned>(order) + d);
  const double ed = core::mse_deviation(simulated, est);
  // IIR noise modelling is harder (paper: up to ~31%); require the
  // one-bit-equivalent band with margin.
  EXPECT_TRUE(core::within_one_bit(ed)) << "E_d = " << ed;
  EXPECT_LT(std::abs(ed), 0.5) << "order=" << order << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IirFilterAccuracy,
    ::testing::Combine(::testing::Values(filt::IirFamily::kButterworth,
                                         filt::IirFamily::kChebyshev1),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(10, 14)));

TEST(PsdAnalyzer, CascadeShapingBeatsWhiteAssumption) {
  // Two cascaded narrow low-pass IIR filters, quantization between them:
  // the noise reaching the second filter is already low-pass shaped, so
  // the true output power is higher than the white assumption predicts
  // (the low-pass keeps the shaped noise's band).
  const auto tf1 = filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.1);
  const auto tf2 = filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.1);
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto b1 = g.add_block(q, tf1, fxp::q_format(4, 12));
  const auto b2 = g.add_block(b1, tf2, fxp::q_format(4, 12));
  g.add_output(b2);

  core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
  const double est = analyzer.output_noise_power();
  const double simulated = simulate_error_power(g, 1u << 19);
  EXPECT_LT(std::abs(core::mse_deviation(simulated, est)), 0.30);
}

TEST(PsdAnalyzer, GainAndDelayAreTransparent) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 10));
  const auto gain = g.add_gain(q, -2.0);
  const auto del = g.add_delay(gain, 5);
  g.add_output(del);
  core::PsdAnalyzer analyzer(g, {.n_psd = 64});
  const auto moments =
      fxp::continuous_quantization_noise(fxp::q_format(4, 10));
  EXPECT_NEAR(analyzer.output_noise_power(), 4.0 * moments.power(), 1e-15);
}

TEST(PsdAnalyzer, AdderAccumulatesBranchNoises) {
  // Two independently quantized branches summed: powers add.
  Graph g;
  const auto in = g.add_input();
  const auto qa = g.add_quantizer(in, fxp::q_format(4, 10));
  const auto qb = g.add_quantizer(in, fxp::q_format(4, 8));
  const auto sum = g.add_adder({qa, qb});
  g.add_output(sum);
  core::PsdAnalyzer analyzer(g, {.n_psd = 64});
  const auto ma = fxp::continuous_quantization_noise(fxp::q_format(4, 10));
  const auto mb = fxp::continuous_quantization_noise(fxp::q_format(4, 8));
  EXPECT_NEAR(analyzer.output_noise_power(), ma.power() + mb.power(),
              1e-15);
}

TEST(PsdAnalyzer, OutputSpectrumShapeMatchesSimulation) {
  // Low-pass shaping must appear in the estimated spectrum, matching the
  // Welch PSD of the simulated error.
  const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 5, 0.12);
  const auto g = quantized_filter_graph(tf, 12);
  const std::size_t bins = 64;
  core::PsdAnalyzer analyzer(g, {.n_psd = bins});
  const auto est = analyzer.output_spectrum();

  Xoshiro256 rng(77);
  const auto x = uniform_signal(1u << 18, 0.9, rng);
  const auto meas = sim::measure_output_error(g, x, 512);
  const auto sim_psd = sim::measured_error_psd(meas, bins);

  // Compare band-aggregated shapes (low vs high half of the band).
  auto band_power = [bins](auto&& get, std::size_t lo, std::size_t hi) {
    double acc = 0.0;
    for (std::size_t k = lo; k < hi; ++k) acc += get(k);
    return acc;
  };
  const double est_low =
      band_power([&](std::size_t k) { return est.bin(k); }, 1, bins / 4);
  const double est_high = band_power(
      [&](std::size_t k) { return est.bin(k); }, bins / 4, bins / 2);
  const double sim_low =
      band_power([&](std::size_t k) { return sim_psd[k]; }, 1, bins / 4);
  const double sim_high = band_power(
      [&](std::size_t k) { return sim_psd[k]; }, bins / 4, bins / 2);
  // Both must agree that the error is low-frequency dominated.
  EXPECT_GT(est_low, 3.0 * est_high);
  EXPECT_GT(sim_low, 3.0 * sim_high);
  EXPECT_NEAR(est_low / est_high, sim_low / sim_high,
              0.5 * (sim_low / sim_high));
}

TEST(PsdAnalyzer, EvaluationIsDeterministic) {
  const auto tf = filt::iir_lowpass(filt::IirFamily::kChebyshev1, 4, 0.2);
  const auto g = quantized_filter_graph(tf, 12);
  core::PsdAnalyzer analyzer(g, {.n_psd = 256});
  EXPECT_DOUBLE_EQ(analyzer.output_noise_power(),
                   analyzer.output_noise_power());
}

TEST(PsdAnalyzer, TruncationBiasPropagatesThroughDcGain) {
  // Truncation noise has mean -q/2; through a DC-gain-2 filter the output
  // mean doubles, and mean^2 dominates for narrow filters.
  const auto fmt = fxp::q_format(4, 10, fxp::RoundingMode::kTruncate);
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fmt);
  const auto gn = g.add_gain(q, 2.0);
  g.add_output(gn);
  core::PsdAnalyzer analyzer(g, {.n_psd = 128});
  const auto spec = analyzer.output_spectrum();
  const auto m = fxp::continuous_quantization_noise(fmt);
  EXPECT_NEAR(spec.mean(), 2.0 * m.mean, 1e-15);
  const double simulated = simulate_error_power(g, 1u << 18);
  EXPECT_LT(std::abs(core::mse_deviation(simulated, spec.power())), 0.05);
}

}  // namespace
