// Filter library tests: transfer-function algebra, frequency responses of
// designed FIR/IIR filters, stability, and streaming-filter equivalences.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/convolution.hpp"
#include "filters/filtering.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "filters/transfer_function.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc::filt;
using psdacc::Xoshiro256;

TEST(TransferFunction, GainDelayIdentity) {
  const auto id = TransferFunction::identity();
  EXPECT_NEAR(std::abs(id.response(0.13)), 1.0, 1e-14);
  const auto g = TransferFunction::gain(2.5);
  EXPECT_NEAR(std::abs(g.response(0.4)), 2.5, 1e-14);
  const auto d = TransferFunction::delay(3);
  EXPECT_NEAR(std::abs(d.response(0.27)), 1.0, 1e-14);
  // Delay phase: -2*pi*f*k.
  const auto r = d.response(0.1);
  EXPECT_NEAR(std::arg(r), -2.0 * 3.141592653589793 * 0.1 * 3.0, 1e-9);
}

TEST(TransferFunction, DenominatorNormalization) {
  TransferFunction tf({2.0, 4.0}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(tf.denominator()[0], 1.0);
  EXPECT_DOUBLE_EQ(tf.denominator()[1], 0.5);
  EXPECT_DOUBLE_EQ(tf.numerator()[0], 1.0);
  EXPECT_DOUBLE_EQ(tf.numerator()[1], 2.0);
}

TEST(TransferFunction, ImpulseResponseOfOnePoleSystem) {
  // H(z) = 1 / (1 - 0.5 z^-1): h[n] = 0.5^n.
  TransferFunction tf({1.0}, {1.0, -0.5});
  const auto h = tf.impulse_response(8);
  for (std::size_t n = 0; n < h.size(); ++n)
    EXPECT_NEAR(h[n], std::pow(0.5, static_cast<double>(n)), 1e-12);
}

TEST(TransferFunction, PowerGainOfOnePoleSystem) {
  // sum 0.25^n = 1/(1-0.25) = 4/3.
  TransferFunction tf({1.0}, {1.0, -0.5});
  EXPECT_NEAR(tf.power_gain(4096), 4.0 / 3.0, 1e-9);
}

TEST(TransferFunction, CascadeMultipliesResponses) {
  TransferFunction a({1.0, 0.5});
  TransferFunction b({1.0}, {1.0, -0.3});
  const auto c = a.cascade(b);
  for (double f : {0.0, 0.1, 0.33, 0.49})
    EXPECT_NEAR(std::abs(c.response(f) - a.response(f) * b.response(f)),
                0.0, 1e-12);
}

TEST(TransferFunction, AddSumsResponses) {
  TransferFunction a({0.5, 0.25});
  TransferFunction b({1.0}, {1.0, 0.4});
  const auto c = a.add(b);
  for (double f : {0.0, 0.2, 0.45})
    EXPECT_NEAR(std::abs(c.response(f) - (a.response(f) + b.response(f))),
                0.0, 1e-12);
}

TEST(TransferFunction, FeedbackClosedLoopResponse) {
  // G = 1, L = 0.5 z^-1: H = 1 / (1 + 0.5 z^-1).
  const auto g = TransferFunction::identity();
  const auto loop = TransferFunction::gain(0.5).cascade(
      TransferFunction::delay(1));
  const auto h = g.feedback(loop);
  const TransferFunction expected({1.0}, {1.0, 0.5});
  for (double f : {0.0, 0.11, 0.37})
    EXPECT_NEAR(std::abs(h.response(f) - expected.response(f)), 0.0, 1e-12);
}

TEST(TransferFunction, StabilityDetection) {
  EXPECT_TRUE(TransferFunction({1.0}, {1.0, -0.9}).is_stable());
  EXPECT_FALSE(TransferFunction({1.0}, {1.0, -1.1}).is_stable());
  EXPECT_TRUE(TransferFunction({1.0, 2.0, 3.0}).is_stable());  // FIR
  // Pole pair at radius 0.95.
  EXPECT_TRUE(
      TransferFunction({1.0}, {1.0, -1.2, 0.9025}).is_stable());
  // Pole pair outside the unit circle.
  EXPECT_FALSE(
      TransferFunction({1.0}, {1.0, -1.2, 1.21}).is_stable());
}

TEST(PolyFromRoots, ConjugatePairGivesRealQuadratic) {
  const std::vector<cplx> roots{{0.5, 0.5}, {0.5, -0.5}};
  const auto p = poly_from_roots(roots);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], -1.0, 1e-12);
  EXPECT_NEAR(p[2], 0.5, 1e-12);
}

class FirDesignCase
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(FirDesignCase, LowpassPassesDcBlocksNyquist) {
  const auto [taps, cutoff] = GetParam();
  const TransferFunction tf(psdacc::filt::fir_lowpass(taps, cutoff));
  EXPECT_NEAR(std::abs(tf.response(0.0)), 1.0, 1e-9);
  EXPECT_LT(std::abs(tf.response(0.5)), 0.05);
  EXPECT_LT(std::abs(tf.response(std::min(0.49, cutoff + 0.15))), 0.2);
}

TEST_P(FirDesignCase, HighpassBlocksDcPassesNyquist) {
  const auto [taps, cutoff] = GetParam();
  const TransferFunction tf(psdacc::filt::fir_highpass(taps, cutoff));
  EXPECT_LT(std::abs(tf.response(0.0)), 0.05);
  EXPECT_NEAR(std::abs(tf.response(0.5)), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FirDesignCase,
    ::testing::Combine(::testing::Values<std::size_t>(16, 33, 64, 127),
                       ::testing::Values(0.1, 0.2, 0.3)));

TEST(FirDesign, BandpassPassesCenterBlocksEdges) {
  const TransferFunction tf(psdacc::filt::fir_bandpass(63, 0.1, 0.3));
  EXPECT_NEAR(std::abs(tf.response(0.2)), 1.0, 1e-9);
  EXPECT_LT(std::abs(tf.response(0.0)), 0.02);
  EXPECT_LT(std::abs(tf.response(0.5)), 0.02);
}

TEST(FirDesign, BandstopBlocksCenterPassesEdges) {
  const TransferFunction tf(psdacc::filt::fir_bandstop(63, 0.15, 0.35));
  EXPECT_LT(std::abs(tf.response(0.25)), 0.05);
  EXPECT_NEAR(std::abs(tf.response(0.0)), 1.0, 1e-9);
}

TEST(FirDesign, LinearPhaseSymmetry) {
  const auto h = psdacc::filt::fir_lowpass(33, 0.2);
  for (std::size_t i = 0; i < h.size(); ++i)
    EXPECT_NEAR(h[i], h[h.size() - 1 - i], 1e-12);
}

class IirDesignCase : public ::testing::TestWithParam<
                          std::tuple<IirFamily, int, double>> {};

TEST_P(IirDesignCase, LowpassShapeAndStability) {
  const auto [family, order, cutoff] = GetParam();
  const auto tf = iir_lowpass(family, order, cutoff);
  EXPECT_TRUE(tf.is_stable());
  EXPECT_NEAR(std::abs(tf.response(0.0)), 1.0, 1e-9);
  EXPECT_LT(std::abs(tf.response(0.5)),
            std::pow(10.0, -0.5 * order));  // deep stop-band for high order
  // Monotone-ish decay beyond cutoff: response well below 1 at 1.8*cutoff.
  if (1.8 * cutoff < 0.5) {
    EXPECT_LT(std::abs(tf.response(1.8 * cutoff)), 0.9);
  }
}

TEST_P(IirDesignCase, HighpassShapeAndStability) {
  const auto [family, order, cutoff] = GetParam();
  const auto tf = iir_highpass(family, order, cutoff);
  EXPECT_TRUE(tf.is_stable());
  EXPECT_NEAR(std::abs(tf.response(0.5)), 1.0, 1e-9);
  EXPECT_LT(std::abs(tf.response(0.0)), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Families, IirDesignCase,
    ::testing::Combine(::testing::Values(IirFamily::kButterworth,
                                         IirFamily::kChebyshev1),
                       ::testing::Values(2, 4, 7, 10),
                       ::testing::Values(0.1, 0.25)));

TEST(IirDesign, ButterworthHalfPowerAtCutoff) {
  for (int order : {2, 4, 6}) {
    const auto tf = iir_lowpass(IirFamily::kButterworth, order, 0.2);
    EXPECT_NEAR(std::abs(tf.response(0.2)), 1.0 / std::sqrt(2.0), 1e-6)
        << "order " << order;
  }
}

TEST(IirDesign, ChebyshevRippleBounded) {
  const double ripple_db = 1.0;
  const auto tf = iir_lowpass(IirFamily::kChebyshev1, 5, 0.2, ripple_db);
  // Passband magnitude stays within the ripple band (after DC
  // normalization, within a small numerical margin).
  const double floor_mag = std::pow(10.0, -ripple_db / 20.0);
  for (double f = 0.0; f <= 0.19; f += 0.004) {
    const double mag = std::abs(tf.response(f));
    EXPECT_GT(mag, floor_mag * 0.98) << "f=" << f;
    EXPECT_LT(mag, 1.0 / (floor_mag * 0.98)) << "f=" << f;
  }
}

TEST(IirDesign, BandpassPeaksInsideBand) {
  const auto tf = iir_bandpass(IirFamily::kButterworth, 3, 0.15, 0.3);
  EXPECT_TRUE(tf.is_stable());
  EXPECT_LT(std::abs(tf.response(0.02)), 0.1);
  EXPECT_LT(std::abs(tf.response(0.48)), 0.1);
  // Near unit gain somewhere inside the band.
  double peak = 0.0;
  for (double f = 0.15; f <= 0.3; f += 0.002)
    peak = std::max(peak, std::abs(tf.response(f)));
  EXPECT_NEAR(peak, 1.0, 0.05);
}

TEST(Filtering, Df2tMatchesConvolutionForFir) {
  Xoshiro256 rng(8);
  const auto h = psdacc::filt::fir_lowpass(16, 0.2);
  const auto x = psdacc::gaussian_signal(200, rng);
  DirectForm2T filter{TransferFunction(h)};
  const auto y = filter.process(x);
  const auto full = psdacc::dsp::convolve_direct(x, h);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y[i], full[i], 1e-10);
}

TEST(Filtering, Df2tMatchesImpulseResponseForIir) {
  const auto tf = iir_lowpass(IirFamily::kButterworth, 4, 0.2);
  std::vector<double> impulse(64, 0.0);
  impulse[0] = 1.0;
  DirectForm2T filter{tf};
  const auto y = filter.process(impulse);
  const auto h = tf.impulse_response(64);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], h[i], 1e-10);
}

TEST(Filtering, ResetRestoresInitialState) {
  const auto tf = iir_lowpass(IirFamily::kButterworth, 3, 0.15);
  Xoshiro256 rng(9);
  const auto x = psdacc::gaussian_signal(50, rng);
  DirectForm2T filter{tf};
  const auto first = filter.process(x);
  filter.reset();
  const auto second = filter.process(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_DOUBLE_EQ(first[i], second[i]);
}

TEST(Filtering, FixedPointConvergesToDoubleWithWideFormat) {
  const auto tf = iir_lowpass(IirFamily::kButterworth, 2, 0.2);
  Xoshiro256 rng(10);
  const auto x = psdacc::uniform_signal(500, 0.9, rng);
  DirectForm2T ref{tf};
  psdacc::fxp::FixedPointFormat wide = psdacc::fxp::q_format(4, 28);
  FixedPointDirectForm fx(tf, wide);
  const auto yr = ref.process(x);
  const auto yf = fx.process(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(yf[i], yr[i], 1e-6);
}

TEST(Filtering, FixedPointOutputIsOnGrid) {
  const auto tf = iir_lowpass(IirFamily::kButterworth, 2, 0.2);
  Xoshiro256 rng(11);
  const auto x = psdacc::uniform_signal(200, 0.9, rng);
  const auto fmt = psdacc::fxp::q_format(4, 8);
  FixedPointDirectForm fx(tf, fmt);
  for (double v : fx.process(x)) {
    const double units = v / fmt.step();
    EXPECT_NEAR(units, std::round(units), 1e-9);
  }
}

TEST(Filtering, CoefficientQuantizationChangesEffectiveTf) {
  const auto tf = iir_lowpass(IirFamily::kChebyshev1, 4, 0.2);
  const auto coeff_fmt = psdacc::fxp::q_format(2, 6);
  FixedPointDirectForm fx(tf, psdacc::fxp::q_format(4, 24), coeff_fmt);
  const auto& eff = fx.effective_tf();
  for (double c : eff.numerator()) {
    const double units = c / coeff_fmt.step();
    EXPECT_NEAR(units, std::round(units), 1e-9);
  }
}

}  // namespace
