// Second-order-section and parallel realization tests: decompositions
// must reproduce the original transfer function, and the realization-form
// SFGs must agree with simulation (the Jackson-style experiment).
#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/sos.hpp"
#include "sfg/realizations.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using filt::Biquad;
using filt::IirFamily;
using filt::cplx;

filt::Zpk digital_lowpass_zpk(IirFamily family, int order, double cutoff) {
  const auto proto = filt::analog_prototype(family, order);
  const double wc = 2.0 * std::tan(3.141592653589793 * cutoff);
  auto digital = filt::bilinear(filt::lp_to_lp(proto, wc));
  // Normalize to unit DC gain (|H(1)| = prod |1 - z_i| / prod |1 - p_i|).
  cplx dc(1.0, 0.0);
  for (const auto& z : digital.zeros) dc *= cplx(1.0, 0.0) - z;
  for (const auto& p : digital.poles) dc /= cplx(1.0, 0.0) - p;
  digital.gain = 1.0 / std::abs(dc);
  return digital;
}

void expect_same_response(const filt::TransferFunction& a,
                          const filt::TransferFunction& b, double tol) {
  for (double f = 0.0; f < 0.5; f += 0.01) {
    const auto ra = a.response(f);
    const auto rb = b.response(f);
    EXPECT_LT(std::abs(ra - rb), tol * (1.0 + std::abs(ra))) << "f=" << f;
  }
}

TEST(Biquad, TransferFunctionRoundTrip) {
  Biquad s{0.5, 0.2, 0.1, -0.3, 0.4};
  const auto tf = s.tf();
  EXPECT_EQ(tf.numerator().size(), 3u);
  EXPECT_EQ(tf.denominator().size(), 3u);
  EXPECT_DOUBLE_EQ(tf.denominator()[1], -0.3);
}

class SosDecomposition
    : public ::testing::TestWithParam<std::tuple<IirFamily, int>> {};

TEST_P(SosDecomposition, CascadeReproducesTransferFunction) {
  const auto [family, order] = GetParam();
  const auto zpk = digital_lowpass_zpk(family, order, 0.2);
  const auto sections = zpk_to_sos(zpk);
  // ceil(order / 2) sections.
  EXPECT_EQ(sections.size(),
            static_cast<std::size_t>((order + 1) / 2));
  const auto rebuilt = filt::sos_to_tf(sections);
  const auto original = [&] {
    auto b = filt::poly_from_roots(zpk.zeros);
    for (auto& c : b) c *= zpk.gain;
    auto a = filt::poly_from_roots(zpk.poles);
    return filt::TransferFunction(std::move(b), std::move(a));
  }();
  expect_same_response(rebuilt, original, 1e-8);
}

TEST_P(SosDecomposition, ParallelReproducesTransferFunction) {
  const auto [family, order] = GetParam();
  const auto zpk = digital_lowpass_zpk(family, order, 0.15);
  const auto form = filt::zpk_to_parallel(zpk);
  const auto rebuilt = filt::parallel_to_tf(form);
  const auto original = [&] {
    auto b = filt::poly_from_roots(zpk.zeros);
    for (auto& c : b) c *= zpk.gain;
    auto a = filt::poly_from_roots(zpk.poles);
    return filt::TransferFunction(std::move(b), std::move(a));
  }();
  expect_same_response(rebuilt, original, 1e-7);
}

TEST_P(SosDecomposition, AllSectionsStable) {
  const auto [family, order] = GetParam();
  const auto zpk = digital_lowpass_zpk(family, order, 0.2);
  for (const auto& s : zpk_to_sos(zpk)) EXPECT_TRUE(s.tf().is_stable());
}

INSTANTIATE_TEST_SUITE_P(
    Orders, SosDecomposition,
    ::testing::Combine(::testing::Values(IirFamily::kButterworth,
                                         IirFamily::kChebyshev1),
                       ::testing::Values(2, 3, 4, 5, 7, 8)));

TEST(SosDesign, LowpassUnitDcGain) {
  const auto sections =
      filt::design_sos_lowpass(IirFamily::kButterworth, 6, 0.2);
  const auto tf = filt::sos_to_tf(sections);
  EXPECT_NEAR(std::abs(tf.response(0.0)), 1.0, 1e-9);
  EXPECT_LT(std::abs(tf.response(0.45)), 1e-3);
}

TEST(SosDesign, PairingPutsHighQPolesFirst) {
  const auto sections =
      filt::design_sos_lowpass(IirFamily::kChebyshev1, 6, 0.2);
  // Section pole radii: sqrt(a2); must be non-increasing.
  for (std::size_t i = 0; i + 1 < sections.size(); ++i)
    EXPECT_GE(std::sqrt(sections[i].a2) + 1e-12,
              std::sqrt(sections[i + 1].a2));
}

TEST(RealizationGraphs, CascadeFormEstimateTracksSimulation) {
  const auto zpk = digital_lowpass_zpk(IirFamily::kButterworth, 6, 0.2);
  auto sections = filt::zpk_to_sos(zpk);
  const auto fmt = fxp::q_format(4, 12);
  const auto g = sfg::build_cascade_form(sections, fmt);
  core::PsdAnalyzer psd(g, {.n_psd = 1024});
  Xoshiro256 rng(3);
  const auto x = uniform_signal(1u << 17, 0.5, rng);
  const double simulated = sim::measure_output_error(g, x, 512).power;
  const double ed =
      core::mse_deviation(simulated, psd.output_noise_power());
  EXPECT_TRUE(core::within_one_bit(ed)) << "E_d=" << ed;
  EXPECT_LT(std::abs(ed), 0.5);
}

TEST(RealizationGraphs, ParallelFormEstimateTracksSimulation) {
  const auto zpk = digital_lowpass_zpk(IirFamily::kButterworth, 5, 0.2);
  const auto form = filt::zpk_to_parallel(zpk);
  const auto fmt = fxp::q_format(4, 12);
  const auto g = sfg::build_parallel_form(form, fmt);
  core::PsdAnalyzer psd(g, {.n_psd = 1024});
  Xoshiro256 rng(4);
  const auto x = uniform_signal(1u << 17, 0.5, rng);
  const double simulated = sim::measure_output_error(g, x, 512).power;
  const double ed =
      core::mse_deviation(simulated, psd.output_noise_power());
  EXPECT_TRUE(core::within_one_bit(ed)) << "E_d=" << ed;
  EXPECT_LT(std::abs(ed), 0.5);
}

TEST(RealizationGraphs, FormsDifferInPredictedNoise) {
  // The Jackson observation: same H(z), different realization, different
  // roundoff noise. Predictions for direct vs cascade must differ
  // measurably for a high-order narrow filter.
  const auto zpk = digital_lowpass_zpk(IirFamily::kChebyshev1, 6, 0.1);
  auto b = filt::poly_from_roots(zpk.zeros);
  for (auto& c : b) c *= zpk.gain;
  auto a = filt::poly_from_roots(zpk.poles);
  const filt::TransferFunction tf(std::move(b), std::move(a));
  const auto fmt = fxp::q_format(4, 14);

  const auto g_direct = sfg::build_direct_form(tf, fmt);
  const auto g_cascade =
      sfg::build_cascade_form(filt::zpk_to_sos(zpk), fmt);
  const double p_direct =
      core::PsdAnalyzer(g_direct, {.n_psd = 1024}).output_noise_power();
  const double p_cascade =
      core::PsdAnalyzer(g_cascade, {.n_psd = 1024}).output_noise_power();
  // Both realizations model one rounding per recursion; the cascade's
  // extra inter-section quantizers and section-local noise shaping still
  // move the prediction measurably (a few percent at this order — the
  // full Jackson-scale gaps need per-multiplier noise models).
  EXPECT_GT(std::abs(p_direct - p_cascade) /
                std::min(p_direct, p_cascade),
            0.04);
}

}  // namespace
