// Integration tests cutting across every module: miniature versions of the
// paper's experiments asserting the headline claims hold end-to-end.
#include <cmath>

#include <gtest/gtest.h>

#include "core/accuracy_engine.hpp"
#include "core/flat_analyzer.hpp"
#include "core/metrics.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "freqfilt/freq_filter.hpp"
#include "sfg/graph.hpp"
#include "sfg/transform.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"
#include "support/timer.hpp"
#include "wavelet/dwt_sfg.hpp"

namespace {

using namespace psdacc;
using sfg::Graph;

Graph quantized_filter_graph(const filt::TransferFunction& tf, int d) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, d));
  g.add_output(g.add_block(q, tf, fxp::q_format(4, d)));
  return g;
}

TEST(MiniTable1, FirBankWithinOneBit) {
  // A reduced version of the paper's 147-filter FIR sweep.
  int checked = 0;
  for (std::size_t taps : {16u, 48u, 96u}) {
    for (double cutoff : {0.12, 0.3}) {
      const filt::TransferFunction tf(filt::fir_lowpass(taps, cutoff));
      const auto g = quantized_filter_graph(tf, 12);
      sim::EvaluationConfig cfg;
      cfg.sim_samples = 1u << 17;
      cfg.seed = taps + static_cast<std::uint64_t>(cutoff * 100);
      const auto r = sim::evaluate_accuracy(g, cfg);
      EXPECT_LT(std::abs(r.ed(core::EngineKind::kPsd)), 0.1)
          << "taps=" << taps << " cutoff=" << cutoff;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 6);
}

TEST(MiniTable1, IirBankWithinOneBit) {
  int checked = 0;
  for (int order : {2, 5, 8}) {
    for (auto family :
         {filt::IirFamily::kButterworth, filt::IirFamily::kChebyshev1}) {
      const auto tf = filt::iir_lowpass(family, order, 0.2);
      const auto g = quantized_filter_graph(tf, 12);
      sim::EvaluationConfig cfg;
      cfg.sim_samples = 1u << 17;
      cfg.seed = static_cast<std::uint64_t>(order * 13);
      const auto r = sim::evaluate_accuracy(g, cfg);
      EXPECT_TRUE(core::within_one_bit(r.ed(core::EngineKind::kPsd)))
          << "order=" << order << " E_d=" << r.ed(core::EngineKind::kPsd);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 6);
}

TEST(MiniFig4, EdFlatAcrossWordLengths) {
  // E_d must stay bounded as d sweeps (estimate scales with the error).
  for (int d : {8, 16, 24}) {
    ff::FreqFilterConfig cfg;
    cfg.format = fxp::q_format(8, d);
    ff::FreqDomainBandpass fx_sys(cfg);
    ff::FreqDomainBandpass ref_sys([&] {
      auto c = cfg;
      c.format.reset();
      return c;
    }());
    Xoshiro256 rng(d);
    const auto x = uniform_signal(1u << 15, 0.9, rng);
    const auto yr = ref_sys.process(x);
    const auto yf = fx_sys.process(x);
    RunningStats err;
    for (std::size_t i = 128; i < x.size(); ++i) err.add(yf[i] - yr[i]);
    const auto g = ff::build_freqfilt_sfg(cfg);
    const double est =
        core::PsdAnalyzer(g, {.n_psd = 512}).output_noise_power();
    const double ed = core::mse_deviation(err.mean_square(), est);
    EXPECT_LT(std::abs(ed), 0.4) << "d=" << d;
  }
}

TEST(MiniFig5, AccuracyImprovesOrHoldsWithNpsd) {
  // DWT 1-D codec: |E_d| at N_PSD = 1024 should not be worse than at 16
  // (allowing Monte-Carlo noise of a few percent).
  const auto fmt = fxp::q_format(4, 14);
  const auto g = wav::build_dwt1d_codec({.levels = 2, .format = fmt});
  Xoshiro256 rng(50);
  const auto x = uniform_signal(1u << 16, 0.9, rng);
  const double simulated = sim::measure_output_error(g, x, 256).power;

  auto ed_at = [&](std::size_t n_psd) {
    core::PsdAnalyzer a(g, {.n_psd = n_psd});
    return std::abs(core::mse_deviation(simulated,
                                        a.output_noise_power()));
  };
  const double coarse = ed_at(16);
  const double fine = ed_at(1024);
  EXPECT_LT(fine, coarse + 0.05);
  EXPECT_TRUE(core::within_one_bit(ed_at(16)));
  EXPECT_TRUE(core::within_one_bit(ed_at(1024)));
}

TEST(MiniTable2, PsdBeatsAgnosticOnShapedCascade) {
  // The headline claim: on systems with more than one frequency-sensitive
  // component, the PSD method is substantially more accurate than the
  // PSD-agnostic hierarchical baseline.
  const auto lp1 = filt::iir_lowpass(filt::IirFamily::kButterworth, 5, 0.1);
  const filt::TransferFunction lp2(filt::fir_lowpass(48, 0.12));
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto b1 = g.add_block(q, lp1);
  const auto b2 = g.add_block(b1, lp2);
  g.add_output(b2);

  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 18;
  const auto r = sim::evaluate_accuracy(g, cfg);
  EXPECT_LT(std::abs(r.ed(core::EngineKind::kPsd)), 0.1);
  EXPECT_GT(std::abs(r.ed(core::EngineKind::kMoment)),
            4.0 * std::abs(r.ed(core::EngineKind::kPsd)));
}

TEST(MiniFig6, EstimationOrdersOfMagnitudeFasterThanSimulation) {
  const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 6, 0.15);
  const auto g = quantized_filter_graph(tf, 12);

  Xoshiro256 rng(60);
  const auto x = uniform_signal(1u << 17, 0.9, rng);
  Stopwatch sim_clock;
  const double simulated = sim::measure_output_error(g, x, 256).power;
  const double sim_time = sim_clock.seconds();

  core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
  Stopwatch est_clock;
  const double est = analyzer.output_noise_power();
  const double est_time = est_clock.seconds();

  EXPECT_GT(simulated, 0.0);
  EXPECT_GT(est, 0.0);
  // At least 10x faster even in this miniature case (paper: 10^3-10^5).
  EXPECT_LT(est_time * 10.0, sim_time);
}

TEST(CycleBreaking, QuantizedRecursionViaRationalBlockMatchesSim) {
  // Paper method step 1: a feedback SFG is collapsed, and its quantized
  // realization is modelled by a rational block whose noise transfer is
  // 1/A(z). Verify the chain end-to-end against simulation. The loop gain
  // is deliberately non-dyadic: with a dyadic coefficient (e.g. 0.75) the
  // recursion's products stay on a coarse sub-grid and the continuous PQN
  // model understates both the bias and the discreteness of the rounding
  // error (see fxp::narrowing_quantization_noise).
  const double a = 0.737;
  Graph loop;
  const auto in = loop.add_input();
  const auto sum = loop.add_adder({in});
  const auto del = loop.add_delay(sum, 1);
  const auto gn = loop.add_gain(del, a);
  loop.add_adder_input(sum, gn);
  loop.add_output(sum);
  const auto collapsed = sfg::collapse_loops(loop);
  ASSERT_FALSE(collapsed.has_cycles());

  // Rebuild as a quantized rational block (the supported modelling of a
  // quantized recursion) and compare estimate vs simulation.
  const filt::TransferFunction tf({1.0}, {1.0, -a});
  const auto g = quantized_filter_graph(tf, 12);
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 17;
  const auto r = sim::evaluate_accuracy(g, cfg);
  EXPECT_TRUE(core::within_one_bit(r.ed(core::EngineKind::kPsd)))
      << "E_d=" << r.ed(core::EngineKind::kPsd);
  EXPECT_LT(std::abs(r.ed(core::EngineKind::kPsd)), 0.3);
}

TEST(FlatEquivalence, FlatMatchesPsdOnElementaryBlocks) {
  // "classical flat estimation applied to the same filters gives exactly
  // the same results" (Section IV.B).
  for (double cutoff : {0.1, 0.2, 0.35}) {
    const filt::TransferFunction tf(filt::fir_lowpass(32, cutoff));
    const auto g = quantized_filter_graph(tf, 10);
    const double psd =
        core::PsdAnalyzer(g, {.n_psd = 256}).output_noise_power();
    const double flat =
        core::FlatAnalyzer(g, 256).output_noise_power();
    EXPECT_NEAR(psd, flat, 1e-12 * psd) << "cutoff=" << cutoff;
  }
}

}  // namespace
