// Determinism contract of the parallel runtime: every parallel workload
// must return bit-identical results for 1 worker and N workers. These
// tests compare doubles with EXPECT_EQ on purpose — "close enough" would
// hide scheduling-dependent reductions.
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "core/accuracy_engine.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "opt/search/annealing.hpp"
#include "opt/search/pareto.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/error_measurement.hpp"

namespace {

using namespace psdacc;

struct TestSystem {
  sfg::Graph graph;
  std::vector<sfg::NodeId> variables;
};

TestSystem make_chain() {
  TestSystem s;
  const auto in = s.graph.add_input();
  const auto q = s.graph.add_quantizer(in, fxp::q_format(4, 12));
  const auto b1 = s.graph.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.2),
      fxp::q_format(4, 12), "lp");
  const auto b2 = s.graph.add_block(
      b1, filt::TransferFunction(filt::fir_highpass(31, 0.05)),
      fxp::q_format(4, 12), "hp");
  s.graph.add_output(b2);
  s.variables = {q, b1, b2};
  return s;
}

opt::OptimizerConfig optimizer_config(std::size_t workers) {
  opt::OptimizerConfig cfg;
  cfg.noise_budget = 1e-6;
  cfg.min_bits = 4;
  cfg.max_bits = 20;
  cfg.n_psd = 256;
  cfg.workers = workers;
  return cfg;
}

void expect_identical(const opt::OptimizerResult& a,
                      const opt::OptimizerResult& b) {
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.noise, b.noise);  // bitwise
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.feasible, b.feasible);
}

TEST(Determinism, GreedyDescentIsWorkerCountInvariant) {
  auto serial_sys = make_chain();
  opt::WordlengthOptimizer serial(serial_sys.graph, serial_sys.variables,
                                  optimizer_config(1));
  const auto serial_result = serial.greedy_descent();

  for (const std::size_t workers : {2u, 4u, 8u}) {
    auto sys = make_chain();
    opt::WordlengthOptimizer parallel(sys.graph, sys.variables,
                                      optimizer_config(workers));
    expect_identical(parallel.greedy_descent(), serial_result);
  }
}

TEST(Determinism, EngineAgnosticOptimizerIsWorkerCountInvariant) {
  // The engine abstraction must not leak scheduling into results: under
  // every analytical backend (and the Monte-Carlo one, which is seeded),
  // the parallel search matches the serial search bit for bit.
  for (const core::EngineKind kind :
       {core::EngineKind::kPsd, core::EngineKind::kMoment,
        core::EngineKind::kFlat, core::EngineKind::kSimulation}) {
    auto cfg = optimizer_config(1);
    cfg.engine = kind;
    if (kind == core::EngineKind::kSimulation) {
      cfg.engine_opts.sim_samples = 1u << 10;  // keep the MC search cheap
      cfg.engine_opts.sim_discard = 64;
    }
    auto serial_sys = make_chain();
    opt::WordlengthOptimizer serial(serial_sys.graph, serial_sys.variables,
                                    cfg);
    const auto serial_result = serial.greedy_descent();

    cfg.workers = 4;
    auto sys = make_chain();
    opt::WordlengthOptimizer parallel(sys.graph, sys.variables, cfg);
    expect_identical(parallel.greedy_descent(), serial_result);
  }
}

TEST(Determinism, MomentBackedMinPlusOneIsWorkerCountInvariant) {
  auto cfg = optimizer_config(1);
  cfg.engine = core::EngineKind::kMoment;
  auto serial_sys = make_chain();
  opt::WordlengthOptimizer serial(serial_sys.graph, serial_sys.variables,
                                  cfg);
  const auto serial_result = serial.min_plus_one();

  cfg.workers = 4;
  auto sys = make_chain();
  opt::WordlengthOptimizer parallel(sys.graph, sys.variables, cfg);
  expect_identical(parallel.min_plus_one(), serial_result);
}

TEST(Determinism, MinPlusOneIsWorkerCountInvariant) {
  auto serial_sys = make_chain();
  opt::WordlengthOptimizer serial(serial_sys.graph, serial_sys.variables,
                                  optimizer_config(1));
  const auto serial_result = serial.min_plus_one();

  for (const std::size_t workers : {2u, 4u}) {
    auto sys = make_chain();
    opt::WordlengthOptimizer parallel(sys.graph, sys.variables,
                                      optimizer_config(workers));
    expect_identical(parallel.min_plus_one(), serial_result);
  }
}

TEST(Determinism, DeltaProbingIsWorkerCountInvariant) {
  // Incremental probes combine cached per-source contributions inside each
  // worker's probe context; the caches are pure functions of the stamped
  // assignment (fixed-order summation, format-independent unit responses),
  // so which worker probed what — and in which order contexts were
  // recycled — must never show in the result. Asserted explicitly per
  // analytical engine and for both search strategies.
  for (const core::EngineKind kind :
       {core::EngineKind::kPsd, core::EngineKind::kMoment,
        core::EngineKind::kFlat}) {
    for (const bool greedy : {true, false}) {
      auto cfg = optimizer_config(1);
      cfg.engine = kind;
      cfg.incremental = true;
      auto serial_sys = make_chain();
      opt::WordlengthOptimizer serial(serial_sys.graph,
                                      serial_sys.variables, cfg);
      const auto serial_result =
          greedy ? serial.greedy_descent() : serial.min_plus_one();
      ASSERT_TRUE(serial.engine().capabilities().delta);
      EXPECT_GT(serial.probe_counters().delta, 0u);

      for (const std::size_t workers : {2u, 4u}) {
        cfg.workers = workers;
        auto sys = make_chain();
        opt::WordlengthOptimizer parallel(sys.graph, sys.variables, cfg);
        expect_identical(greedy ? parallel.greedy_descent()
                                : parallel.min_plus_one(),
                         serial_result);
      }
    }
  }
}

TEST(Determinism, SharedPoolMatchesOwnedPool) {
  auto owned_sys = make_chain();
  opt::WordlengthOptimizer owned(owned_sys.graph, owned_sys.variables,
                                 optimizer_config(4));
  const auto owned_result = owned.greedy_descent();

  runtime::ThreadPool pool(4);
  auto shared_sys = make_chain();
  auto cfg = optimizer_config(1);
  cfg.pool = &pool;  // overrides workers
  opt::WordlengthOptimizer shared(shared_sys.graph, shared_sys.variables,
                                  cfg);
  expect_identical(shared.greedy_descent(), owned_result);
}

TEST(Determinism, GreedyWithCostWeightsIsWorkerCountInvariant) {
  auto serial_sys = make_chain();
  auto cfg = optimizer_config(1);
  cfg.cost_weights = {10.0, 1.0, 2.0};
  opt::WordlengthOptimizer serial(serial_sys.graph, serial_sys.variables,
                                  cfg);
  const auto serial_result = serial.greedy_descent();

  auto sys = make_chain();
  cfg.workers = 4;
  opt::WordlengthOptimizer parallel(sys.graph, sys.variables, cfg);
  expect_identical(parallel.greedy_descent(), serial_result);
}

TEST(Determinism, ShardedMeasurementIsWorkerCountInvariant) {
  const auto sys = make_chain();
  sim::ShardedErrorConfig cfg;
  cfg.total_samples = 1u << 14;
  cfg.shards = 6;
  cfg.discard = 128;

  const auto serial = sim::measure_output_error_sharded(sys.graph, cfg);
  for (const std::size_t workers : {2u, 4u}) {
    runtime::ThreadPool pool(workers);
    const auto parallel =
        sim::measure_output_error_sharded(sys.graph, cfg, &pool);
    EXPECT_EQ(parallel.power, serial.power);  // bitwise
    EXPECT_EQ(parallel.mean, serial.mean);
    EXPECT_EQ(parallel.variance, serial.variance);
    EXPECT_EQ(parallel.samples, serial.samples);
    EXPECT_EQ(parallel.signal, serial.signal);
  }
}

TEST(Determinism, ShardedMeasurementAccumulatesExactlyTotalSamples) {
  const auto sys = make_chain();
  sim::ShardedErrorConfig cfg;
  cfg.total_samples = 10000;  // not divisible by 6
  cfg.shards = 6;
  cfg.discard = 64;
  const auto m = sim::measure_output_error_sharded(sys.graph, cfg);
  EXPECT_EQ(m.samples, 10000u);
  EXPECT_EQ(m.signal.size(), 10000u);
}

TEST(Determinism, ShardedMeasurementDependsOnShardCountNotWorkers) {
  // Changing the shard decomposition changes the estimator (different
  // input streams); changing workers never does. Guard against conflating
  // the two.
  const auto sys = make_chain();
  sim::ShardedErrorConfig six;
  six.total_samples = 1u << 14;
  six.shards = 6;
  sim::ShardedErrorConfig three = six;
  three.shards = 3;
  const auto a = sim::measure_output_error_sharded(sys.graph, six);
  const auto b = sim::measure_output_error_sharded(sys.graph, three);
  EXPECT_NE(a.power, b.power);
  // Both estimate the same physical quantity, though.
  EXPECT_NEAR(a.power, b.power, 0.5 * a.power);
}

TEST(Determinism, BatchRunnerIsWorkerCountInvariant) {
  auto make_jobs = [] {
    std::vector<runtime::BatchJob> jobs;
    for (const int bits : {8, 10, 12, 14}) {
      runtime::BatchJob job;
      // snprintf instead of string concatenation: the assign+append forms
      // trip a GCC 12 -Wrestrict false positive when inlined here.
      char name[16];
      std::snprintf(name, sizeof name, "q%d", bits);
      job.name = name;
      job.graph = make_chain().graph;
      // Vary the systems via the evaluation seed and resolution instead of
      // rebuilding: cheap and sufficient to exercise distinct jobs.
      job.config.sim_samples = 1u << 13;
      job.config.discard = 128;
      job.config.n_psd = 128;
      job.config.seed = static_cast<std::uint64_t>(bits);
      job.config.shards = 4;
      jobs.push_back(std::move(job));
    }
    return jobs;
  };

  const auto jobs = make_jobs();
  runtime::BatchRunner serial_runner(1);
  const auto serial = serial_runner.run(jobs);

  for (const std::size_t workers : {2u, 4u}) {
    runtime::BatchRunner runner(workers);
    const auto parallel = runner.run(jobs);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].name, serial[i].name);
      EXPECT_EQ(parallel[i].report.reference_power,
                serial[i].report.reference_power);  // bitwise
      ASSERT_EQ(parallel[i].report.estimates.size(),
                serial[i].report.estimates.size());
      for (std::size_t e = 0; e < serial[i].report.estimates.size(); ++e) {
        const auto& pe = parallel[i].report.estimates[e];
        const auto& se = serial[i].report.estimates[e];
        EXPECT_EQ(pe.kind, se.kind);
        EXPECT_EQ(pe.power, se.power);  // bitwise
        EXPECT_EQ(pe.ed, se.ed);
      }
    }
  }
}

TEST(Determinism, AnnealingTrajectoryIsWorkerCountInvariant) {
  // The annealer's round-r stream is Xoshiro256(seed).substream(r) and
  // acceptance is a serial scan, so for a fixed seed the *entire accepted-
  // move trace* — not just the final result — must match bit for bit
  // between 1 and N probe workers, under every analytical engine.
  for (const core::EngineKind kind :
       {core::EngineKind::kPsd, core::EngineKind::kMoment,
        core::EngineKind::kFlat}) {
    auto cfg = optimizer_config(1);
    cfg.engine = kind;
    opt::search::AnnealOptions aopt;
    aopt.seed = 42;
    aopt.rounds = 60;
    aopt.proposals_per_round = 4;

    auto serial_sys = make_chain();
    opt::WordlengthOptimizer serial(serial_sys.graph, serial_sys.variables,
                                    cfg);
    opt::search::SimulatedAnnealing serial_anneal(aopt);
    const auto serial_result = serial_anneal.run(serial);
    const auto serial_traj = serial_anneal.trajectory();

    for (const std::size_t workers : {2u, 4u}) {
      cfg.workers = workers;
      auto sys = make_chain();
      opt::WordlengthOptimizer parallel(sys.graph, sys.variables, cfg);
      opt::search::SimulatedAnnealing anneal(aopt);
      expect_identical(anneal.run(parallel), serial_result);
      const auto& traj = anneal.trajectory();
      ASSERT_EQ(traj.size(), serial_traj.size()) << "workers " << workers;
      for (std::size_t i = 0; i < traj.size(); ++i) {
        EXPECT_EQ(traj[i].round, serial_traj[i].round);
        EXPECT_EQ(traj[i].cost, serial_traj[i].cost);
        EXPECT_EQ(traj[i].noise, serial_traj[i].noise);  // bitwise
      }
    }
  }
}

TEST(Determinism, TabuTrajectoryIsWorkerCountInvariant) {
  auto serial_sys = make_chain();
  opt::WordlengthOptimizer serial(serial_sys.graph, serial_sys.variables,
                                  optimizer_config(1));
  opt::search::TabuSearch serial_tabu;
  const auto serial_result = serial_tabu.run(serial);
  const auto serial_traj = serial_tabu.trajectory();

  auto sys = make_chain();
  opt::WordlengthOptimizer parallel(sys.graph, sys.variables,
                                    optimizer_config(4));
  opt::search::TabuSearch tabu;
  expect_identical(tabu.run(parallel), serial_result);
  ASSERT_EQ(tabu.trajectory().size(), serial_traj.size());
  for (std::size_t i = 0; i < serial_traj.size(); ++i) {
    EXPECT_EQ(tabu.trajectory()[i].cost, serial_traj[i].cost);
    EXPECT_EQ(tabu.trajectory()[i].noise, serial_traj[i].noise);
  }
}

TEST(Determinism, ParetoFrontIsFanOutInvariantAcrossEngines) {
  // Budget points are the sweep's unit of parallelism; each point runs on
  // a private clone with a serial inner optimizer when the sweep fans
  // out. The front must be bit-identical for 1-vs-N point workers under
  // psd, moment and flat alike.
  for (const core::EngineKind kind :
       {core::EngineKind::kPsd, core::EngineKind::kMoment,
        core::EngineKind::kFlat}) {
    const auto sys = make_chain();
    opt::search::SweepConfig cfg;
    cfg.budgets = {1e-8, 1e-7, 1e-6, 1e-5};
    cfg.base = optimizer_config(1);
    cfg.base.engine = kind;

    cfg.workers = 1;
    opt::search::ParetoSweep serial(sys.graph, sys.variables, cfg);
    const auto serial_points = serial.run_points();

    for (const std::size_t workers : {2u, 4u}) {
      cfg.workers = workers;
      opt::search::ParetoSweep fanned(sys.graph, sys.variables, cfg);
      const auto points = fanned.run_points();
      ASSERT_EQ(points.size(), serial_points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].budget, serial_points[i].budget);
        EXPECT_EQ(points[i].bits, serial_points[i].bits);
        EXPECT_EQ(points[i].cost, serial_points[i].cost);
        EXPECT_EQ(points[i].noise, serial_points[i].noise);  // bitwise
        EXPECT_EQ(points[i].evaluations, serial_points[i].evaluations);
      }
      EXPECT_EQ(opt::search::ParetoFront::from_points(points).to_csv(),
                opt::search::ParetoFront::from_points(serial_points)
                    .to_csv());
    }
  }
}

TEST(Determinism, EvaluateAccuracyShardedMatchesAcrossPools) {
  const auto sys = make_chain();
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 14;
  cfg.discard = 128;
  cfg.n_psd = 256;
  cfg.shards = 4;

  const auto serial = sim::evaluate_accuracy(sys.graph, cfg);
  runtime::ThreadPool pool(4);
  const auto parallel = sim::evaluate_accuracy(sys.graph, cfg, &pool);
  EXPECT_EQ(parallel.reference_power, serial.reference_power);  // bitwise
  EXPECT_EQ(parallel.power(core::EngineKind::kPsd),
            serial.power(core::EngineKind::kPsd));
  EXPECT_EQ(parallel.ed(core::EngineKind::kPsd),
            serial.ed(core::EngineKind::kPsd));
}

}  // namespace
