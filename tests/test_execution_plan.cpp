// ExecutionPlan tests: equivalence with the streaming filter realizations,
// buffer reuse across runs, live re-reading of mutated formats, and the
// free-function executor wrappers built on top of the plan.
#include <cmath>
#include <variant>

#include <gtest/gtest.h>

#include "filters/filtering.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sim/execution_plan.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;

TEST(ExecutionPlan, ReferenceBlockMatchesDirectForm2T) {
  const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2);
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_block(in, tf));
  Xoshiro256 rng(1);
  const auto x = uniform_signal(512, 0.9, rng);

  sim::ExecutionPlan plan(g);
  const auto y = plan.run_sisos(x, sim::Mode::kReference);
  const auto expected = filt::filter_signal(tf, x);
  ASSERT_EQ(y.size(), expected.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], expected[i], 1e-10) << "n=" << i;
}

TEST(ExecutionPlan, FixedPointBlockMatchesStreamingRealization) {
  const auto tf = filt::iir_lowpass(filt::IirFamily::kChebyshev1, 3, 0.25);
  const auto fmt = fxp::q_format(4, 8);
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_block(in, tf, fmt));
  Xoshiro256 rng(2);
  const auto x = uniform_signal(512, 0.9, rng);

  sim::ExecutionPlan plan(g);
  const auto y = plan.run_sisos(x, sim::Mode::kFixedPoint);
  filt::FixedPointDirectForm stream(tf, fmt);
  const auto expected = stream.process(x);
  ASSERT_EQ(y.size(), expected.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_DOUBLE_EQ(y[i], expected[i]) << "n=" << i;
}

TEST(ExecutionPlan, FixedPointFirMatchesStreamingRealization) {
  const filt::TransferFunction tf(filt::fir_lowpass(31, 0.2));
  const auto fmt = fxp::q_format(4, 10);
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_block(in, tf, fmt));
  Xoshiro256 rng(3);
  const auto x = uniform_signal(256, 0.9, rng);

  sim::ExecutionPlan plan(g);
  const auto y = plan.run_sisos(x, sim::Mode::kFixedPoint);
  filt::FixedPointDirectForm stream(tf, fmt);
  const auto expected = stream.process(x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_DOUBLE_EQ(y[i], expected[i]) << "n=" << i;
}

TEST(ExecutionPlan, RepeatedRunsReuseBuffersAndMatch) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 6));
  g.add_output(g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.15),
      fxp::q_format(4, 6)));
  Xoshiro256 rng(4);
  const auto x = uniform_signal(1024, 0.9, rng);

  sim::ExecutionPlan plan(g);
  const auto first_view = plan.run_sisos(x, sim::Mode::kFixedPoint);
  const std::vector<double> first(first_view.begin(), first_view.end());
  // Interleave a reference run (different per-node lengths / values), then
  // re-run fixed point: the reused buffers must not leak state.
  plan.run_sisos(x, sim::Mode::kReference);
  const auto second = plan.run_sisos(x, sim::Mode::kFixedPoint);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_DOUBLE_EQ(second[i], first[i]) << "n=" << i;
}

TEST(ExecutionPlan, PicksUpMutatedQuantizerFormat) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 2));
  g.add_output(q);
  const std::vector<double> x{0.3, -0.3};

  sim::ExecutionPlan plan(g);
  const auto coarse = plan.run_sisos(x, sim::Mode::kFixedPoint);
  EXPECT_DOUBLE_EQ(coarse[0], 0.25);
  // Formats are read live on each run, so optimizer-style mutation between
  // runs must take effect without recompiling the plan.
  g.set_format(q, fxp::q_format(4, 8));
  const auto fine = plan.run_sisos(x, sim::Mode::kFixedPoint);
  EXPECT_NEAR(fine[0], 0.3, fxp::q_format(4, 8).step());
  EXPECT_NE(fine[0], 0.25);
}

TEST(ExecutionPlan, RunSisosShapesAndReleaseSignals) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto down = g.add_downsample(in, 3);
  const auto out = g.add_output(g.add_upsample(down, 2));
  sim::ExecutionPlan plan(g);
  const std::vector<double> long_input(12, 1.0);
  plan.set_input(in, long_input);
  plan.run(sim::Mode::kReference);
  auto signals = plan.release_signals();
  EXPECT_EQ(signals[down].size(), 4u);
  EXPECT_EQ(signals[out].size(), 8u);
  // The plan recovers after release: the next run re-creates its buffers.
  const std::vector<double> short_input(6, 2.0);
  plan.set_input(in, short_input);
  const auto& again = plan.run(sim::Mode::kReference);
  EXPECT_EQ(again[down].size(), 2u);
}

TEST(ExecutionPlan, MatchesFreeFunctionExecutor) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 8));
  const auto b = g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 2, 0.3),
      fxp::q_format(4, 8));
  const auto d = g.add_delay(b, 2);
  g.add_output(g.add_adder({b, d}));
  Xoshiro256 rng(5);
  const auto x = uniform_signal(300, 0.9, rng);

  const auto via_free = sim::execute_sisos(g, x, sim::Mode::kFixedPoint);
  sim::ExecutionPlan plan(g);
  const auto via_plan = plan.run_sisos(x, sim::Mode::kFixedPoint);
  ASSERT_EQ(via_free.size(), via_plan.size());
  for (std::size_t i = 0; i < via_free.size(); ++i)
    EXPECT_DOUBLE_EQ(via_free[i], via_plan[i]);
}

}  // namespace
