// Dithered-quantizer tests: empirical error moments match the analytical
// model, and TPDF dither decorrelates the error from the signal (the PQN
// guarantee the paper's Eq. 10 relies on).
#include <cmath>

#include <gtest/gtest.h>

#include "fixedpoint/dither.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"

namespace {

using namespace psdacc;
using fxp::DitherMode;

class DitherMoments : public ::testing::TestWithParam<DitherMode> {};

TEST_P(DitherMoments, EmpiricalErrorMatchesModel) {
  const auto fmt = fxp::q_format(4, 8);
  const auto predicted = fxp::dithered_quantization_noise(fmt, GetParam());
  fxp::DitheredQuantizer quant(fmt, GetParam(), 99);
  Xoshiro256 rng(1);
  RunningStats stats;
  for (int i = 0; i < 400000; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    stats.add(quant(x) - x);
  }
  EXPECT_NEAR(stats.mean(), predicted.mean, 0.03 * fmt.step());
  EXPECT_NEAR(stats.variance(), predicted.variance,
              0.05 * predicted.variance);
}

INSTANTIATE_TEST_SUITE_P(Modes, DitherMoments,
                         ::testing::Values(DitherMode::kNone,
                                           DitherMode::kRectangular,
                                           DitherMode::kTriangular));

TEST(DitherModel, VarianceOrdering) {
  const auto fmt = fxp::q_format(4, 10);
  const double none =
      fxp::dithered_quantization_noise(fmt, DitherMode::kNone).variance;
  const double rect =
      fxp::dithered_quantization_noise(fmt, DitherMode::kRectangular)
          .variance;
  const double tri =
      fxp::dithered_quantization_noise(fmt, DitherMode::kTriangular)
          .variance;
  const double q2 = fmt.step() * fmt.step();
  EXPECT_NEAR(none, q2 / 12.0, 1e-18);
  EXPECT_NEAR(rect, q2 / 6.0, 1e-18);
  EXPECT_NEAR(tri, q2 / 4.0, 1e-18);
}

TEST(Dither, TpdfDecorrelatesErrorPowerFromSignal) {
  // A signal sitting exactly on the quantization grid produces ZERO error
  // without dither (PQN breaks down); TPDF dither restores the modelled
  // error power.
  const auto fmt = fxp::q_format(4, 6);
  Xoshiro256 rng(2);

  fxp::DitheredQuantizer plain(fmt, DitherMode::kNone, 7);
  fxp::DitheredQuantizer tpdf(fmt, DitherMode::kTriangular, 7);
  RunningStats err_plain, err_tpdf;
  for (int i = 0; i < 100000; ++i) {
    // On-grid signal: integer multiples of the step.
    const double x =
        std::round(rng.uniform(-32.0, 32.0)) * fmt.step();
    err_plain.add(plain(x) - x);
    err_tpdf.add(tpdf(x) - x);
  }
  EXPECT_DOUBLE_EQ(err_plain.mean_square(), 0.0);  // PQN failure mode
  const double predicted =
      fxp::dithered_quantization_noise(fmt, DitherMode::kTriangular)
          .variance;
  EXPECT_NEAR(err_tpdf.mean_square(), predicted, 0.05 * predicted);
}

TEST(Dither, OutputStaysOnGrid) {
  const auto fmt = fxp::q_format(4, 5);
  fxp::DitheredQuantizer quant(fmt, DitherMode::kTriangular, 3);
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double y = quant(rng.uniform(-7.0, 7.0));
    EXPECT_NEAR(y / fmt.step(), std::round(y / fmt.step()), 1e-9);
  }
}

TEST(Dither, DeterministicGivenSeed) {
  const auto fmt = fxp::q_format(4, 8);
  fxp::DitheredQuantizer a(fmt, DitherMode::kRectangular, 42);
  fxp::DitheredQuantizer b(fmt, DitherMode::kRectangular, 42);
  for (int i = 0; i < 100; ++i) {
    const double x = 0.001 * i;
    EXPECT_DOUBLE_EQ(a(x), b(x));
  }
}

}  // namespace
