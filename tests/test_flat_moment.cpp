// Flat analyzer and PSD-agnostic moment baseline: equivalences on single
// blocks (the paper notes flat == PSD on an elementary filter), exactness
// of the flat method on reconvergent graphs, and the failure mode of the
// moment method on shaped-noise cascades.
#include <cmath>

#include <gtest/gtest.h>

#include "core/flat_analyzer.hpp"
#include "core/metrics.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using sfg::Graph;

Graph single_block_graph(const filt::TransferFunction& tf, int d) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, d));
  g.add_output(g.add_block(q, tf, fxp::q_format(4, d)));
  return g;
}

TEST(FlatVsPsd, IdenticalOnElementaryFirBlock) {
  const filt::TransferFunction tf(filt::fir_lowpass(32, 0.2));
  const auto g = single_block_graph(tf, 12);
  const core::PsdAnalyzer psd(g, {.n_psd = 512});
  const core::FlatAnalyzer flat(g, 512);
  EXPECT_NEAR(psd.output_noise_power(), flat.output_noise_power(),
              1e-12 * psd.output_noise_power());
}

TEST(FlatVsPsd, IdenticalOnElementaryIirBlock) {
  const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 4, 0.2);
  const auto g = single_block_graph(tf, 12);
  const core::PsdAnalyzer psd(g, {.n_psd = 512});
  const core::FlatAnalyzer flat(g, 512);
  EXPECT_NEAR(psd.output_noise_power(), flat.output_noise_power(),
              1e-12 * psd.output_noise_power());
}

TEST(MomentVsPsd, IdenticalForWhiteNoiseThroughOneBlock) {
  // With a single white source into a single block, the blind power-gain
  // propagation is exact, so moment and PSD methods agree (up to the
  // impulse-response truncation of the power gain).
  const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.25);
  const auto g = single_block_graph(tf, 10);
  const core::PsdAnalyzer psd(g, {.n_psd = 4096});
  const core::MomentAnalyzer moments(g);
  EXPECT_NEAR(psd.output_noise_power(), moments.output_noise_power(),
              5e-3 * psd.output_noise_power());
}

Graph reconvergent_graph(int d, double branch_gain) {
  // One quantizer whose noise reaches the output through two paths that
  // re-converge at an adder: a direct path and a delayed, scaled path.
  // The same-source paths are correlated; Eq. 14 (PSD method) misses the
  // cross term, the flat analyzer keeps it.
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, d));
  const auto direct = g.add_gain(q, 1.0);
  const auto delayed = g.add_gain(g.add_delay(q, 0), branch_gain);
  const auto sum = g.add_adder({direct, delayed});
  g.add_output(sum);
  return g;
}

TEST(FlatAnalyzer, ExactOnReconvergentPaths) {
  // Zero-delay reconvergence with gain 1: the two branches carry the SAME
  // noise, so the true output noise is (1+1)^2 = 4x the source power.
  const auto g = reconvergent_graph(10, 1.0);
  const auto m = fxp::continuous_quantization_noise(fxp::q_format(4, 10));

  const core::FlatAnalyzer flat(g, 256);
  EXPECT_NEAR(flat.output_noise_power(), 4.0 * m.power(),
              1e-12 * m.power());

  // The hierarchical PSD method adds branch powers: 2x. This is the
  // documented approximation (ablation A2).
  const core::PsdAnalyzer psd(g, {.n_psd = 256});
  EXPECT_NEAR(psd.output_noise_power(), 2.0 * m.power(), 1e-12 * m.power());

  // Simulation agrees with the flat method.
  Xoshiro256 rng(5);
  const auto x = uniform_signal(1u << 17, 0.9, rng);
  const double simulated = sim::measure_output_error(g, x, 16).power;
  EXPECT_LT(std::abs(core::mse_deviation(simulated,
                                         flat.output_noise_power())),
            0.03);
}

TEST(FlatAnalyzer, CancellingReconvergence) {
  // Gain -1 on the second branch cancels the noise entirely; only the flat
  // analyzer sees it.
  const auto g = reconvergent_graph(10, -1.0);
  const core::FlatAnalyzer flat(g, 128);
  EXPECT_NEAR(flat.output_noise_power(), 0.0, 1e-18);
  const core::PsdAnalyzer psd(g, {.n_psd = 128});
  EXPECT_GT(psd.output_noise_power(), 0.0);
}

TEST(FlatAnalyzer, DelayedReconvergenceCombFilter) {
  // y = b + z^-D b: |1 + z^-D|^2 comb. Total power = 2 sigma^2 (white
  // noise decorrelates across the delay), which the PSD method also gets;
  // but the flat method additionally reproduces the comb shape.
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 10));
  const auto del = g.add_delay(q, 4);
  const auto sum = g.add_adder({q, del});
  g.add_output(sum);

  const std::size_t bins = 64;
  const core::FlatAnalyzer flat(g, bins);
  const auto spec = flat.output_spectrum();
  const auto m = fxp::continuous_quantization_noise(fxp::q_format(4, 10));
  EXPECT_NEAR(spec.variance(), 2.0 * m.variance, 1e-12);
  // Comb nulls at f = (2k+1)/(2*4): bin 8 of 64 (f=1/8) must be ~zero.
  EXPECT_NEAR(spec.bin(8), 0.0, 1e-15);
  // Comb peaks at f = k/4: bin 16 (f=1/4) carries ~4x the flat density.
  EXPECT_NEAR(spec.bin(16), 4.0 * m.variance / bins, 1e-12);
}

TEST(MomentAnalyzer, MatchesSimulationForSingleWhiteSource) {
  const filt::TransferFunction tf(filt::fir_highpass(31, 0.2));
  const auto g = single_block_graph(tf, 12);
  const core::MomentAnalyzer moments(g);
  Xoshiro256 rng(6);
  const auto x = uniform_signal(1u << 18, 0.9, rng);
  const double simulated = sim::measure_output_error(g, x, 128).power;
  EXPECT_LT(std::abs(core::mse_deviation(simulated,
                                         moments.output_noise_power())),
            0.06);
}

TEST(MomentAnalyzer, FailsOnShapedNoiseCascade) {
  // Quantizer -> narrow low-pass (no own noise) -> another narrow
  // low-pass. After the first filter the noise is strongly shaped; the
  // white assumption inside the second power gain misestimates badly,
  // while the PSD method tracks it. This is Table II in miniature.
  const auto lp = filt::iir_lowpass(filt::IirFamily::kButterworth, 6, 0.08);
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto b1 = g.add_block(q, lp);   // unquantized: pure shaping
  const auto b2 = g.add_block(b1, lp);  // unquantized: pure shaping
  g.add_output(b2);

  const core::PsdAnalyzer psd(g, {.n_psd = 2048});
  const core::MomentAnalyzer moments(g);
  Xoshiro256 rng(7);
  const auto x = uniform_signal(1u << 18, 0.9, rng);
  const double simulated = sim::measure_output_error(g, x, 1024).power;

  const double psd_ed =
      std::abs(core::mse_deviation(simulated, psd.output_noise_power()));
  const double mom_ed = std::abs(
      core::mse_deviation(simulated, moments.output_noise_power()));
  EXPECT_LT(psd_ed, 0.1);
  EXPECT_GT(mom_ed, 5.0 * psd_ed);  // order(s) of magnitude worse
}

TEST(FlatAnalyzer, SourceResponseGridExposed) {
  const auto g = reconvergent_graph(10, 1.0);
  const core::FlatAnalyzer flat(g, 32);
  const auto sources = g.noise_sources();
  ASSERT_EQ(sources.size(), 1u);
  const auto resp = flat.source_response(sources[0]);
  ASSERT_EQ(resp.size(), 32u);
  for (const auto& r : resp) EXPECT_NEAR(std::abs(r), 2.0, 1e-12);
}

TEST(MomentAnalyzer, UpsampleMomentRule) {
  // Quantizer noise through up-2: E[y^2] halves with the corrected rule;
  // the paper's blind baseline passes it through unchanged.
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 10));
  g.add_output(g.add_upsample(q, 2));
  const auto m = fxp::continuous_quantization_noise(fxp::q_format(4, 10));
  const core::MomentAnalyzer corrected(g, {.blind_multirate = false});
  EXPECT_NEAR(corrected.output_noise_power(), m.power() / 2.0, 1e-15);
  const core::MomentAnalyzer blind(g, {.blind_multirate = true});
  EXPECT_NEAR(blind.output_noise_power(), m.power(), 1e-15);
}

}  // namespace
