// Wavelet tests: CDF 9/7 biorthogonality / perfect reconstruction (1-D SFG
// and 2-D codec), codec delay arithmetic, Spectrum2d invariants, and the
// 2-D analytical estimate against fixed-point simulation on images.
#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/psd_analyzer.hpp"
#include "dsp/convolution.hpp"
#include "imaging/textures.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"
#include "wavelet/daub97.hpp"
#include "wavelet/dwt2d.hpp"
#include "wavelet/dwt2d_noise.hpp"
#include "wavelet/dwt_sfg.hpp"

namespace {

using namespace psdacc;

TEST(Daub97, CoefficientSums) {
  double s0 = 0.0, s1 = 0.0, sg0 = 0.0, sg1 = 0.0;
  for (double v : wav::analysis_lowpass()) s0 += v;
  for (double v : wav::analysis_highpass()) s1 += v;
  for (double v : wav::synthesis_lowpass()) sg0 += v;
  for (double v : wav::synthesis_highpass()) sg1 += v;
  EXPECT_NEAR(s0, 1.0, 1e-9);   // DC gain 1
  EXPECT_NEAR(s1, 0.0, 1e-9);   // zero at DC
  EXPECT_NEAR(sg0, 2.0, 1e-9);  // synthesis DC gain 2
  EXPECT_NEAR(sg1, 0.0, 1e-9);
}

TEST(Daub97, FilterLengths) {
  EXPECT_EQ(wav::analysis_lowpass().size(), 9u);
  EXPECT_EQ(wav::analysis_highpass().size(), 7u);
  EXPECT_EQ(wav::synthesis_lowpass().size(), 7u);
  EXPECT_EQ(wav::synthesis_highpass().size(), 9u);
}

TEST(Daub97, DistortionFunctionIsPureDelay) {
  // T(z) = (h0*g0 + h1*g1)/2 must be a unit impulse at kReconstructionDelay.
  const auto p0 = dsp::convolve_direct(wav::analysis_lowpass(),
                                       wav::synthesis_lowpass());
  const auto p1 = dsp::convolve_direct(wav::analysis_highpass(),
                                       wav::synthesis_highpass());
  ASSERT_EQ(p0.size(), p1.size());
  for (std::size_t n = 0; n < p0.size(); ++n) {
    const double t = 0.5 * (p0[n] + p1[n]);
    const double expected = (n == wav::kReconstructionDelay) ? 1.0 : 0.0;
    EXPECT_NEAR(t, expected, 1e-9) << "n=" << n;
  }
}

TEST(Daub97, AliasCancellation) {
  // G0(z)H0(-z) + G1(z)H1(-z) == 0: flip signs of odd-indexed analysis
  // coefficients and convolve.
  auto flip = [](std::vector<double> h) {
    for (std::size_t n = 1; n < h.size(); n += 2) h[n] = -h[n];
    return h;
  };
  const auto a0 = dsp::convolve_direct(flip(wav::analysis_lowpass()),
                                       wav::synthesis_lowpass());
  const auto a1 = dsp::convolve_direct(flip(wav::analysis_highpass()),
                                       wav::synthesis_highpass());
  ASSERT_EQ(a0.size(), a1.size());
  for (std::size_t n = 0; n < a0.size(); ++n)
    EXPECT_NEAR(a0[n] + a1[n], 0.0, 1e-9) << "n=" << n;
}

TEST(DwtSfgCodec, DelayFormula) {
  EXPECT_EQ(wav::dwt1d_codec_delay(1), 7u);
  EXPECT_EQ(wav::dwt1d_codec_delay(2), 21u);
  EXPECT_EQ(wav::dwt1d_codec_delay(3), 49u);
}

class DwtPerfectReconstruction : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(DwtPerfectReconstruction, ReferenceModeReconstructsInput) {
  const std::size_t levels = GetParam();
  const auto g = wav::build_dwt1d_codec({.levels = levels, .format = {}});
  Xoshiro256 rng(20 + levels);
  const std::size_t n = 512;
  const auto x = gaussian_signal(n, rng);
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  const std::size_t delay = wav::dwt1d_codec_delay(levels);
  ASSERT_EQ(y.size(), n);
  for (std::size_t i = delay; i < n; ++i)
    EXPECT_NEAR(y[i], x[i - delay], 1e-9) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Levels, DwtPerfectReconstruction,
                         ::testing::Values(1, 2, 3));

TEST(DwtSfgCodec, FixedPointErrorWithinEstimateBand) {
  const auto fmt = fxp::q_format(4, 12);
  const auto g = wav::build_dwt1d_codec({.levels = 2, .format = fmt});
  Xoshiro256 rng(21);
  const auto x = uniform_signal(1u << 16, 0.9, rng);
  const auto ref = sim::execute_sisos(g, x, sim::Mode::kReference);
  const auto fx = sim::execute_sisos(g, x, sim::Mode::kFixedPoint);
  double err_power = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 256; i < ref.size(); ++i) {
    const double e = fx[i] - ref[i];
    err_power += e * e;
    ++count;
  }
  err_power /= static_cast<double>(count);

  core::PsdAnalyzer analyzer(g, {.n_psd = 1024});
  const double est = analyzer.output_noise_power();
  const double ed = core::mse_deviation(err_power, est);
  EXPECT_TRUE(core::within_one_bit(ed)) << "E_d = " << ed;
  EXPECT_LT(std::abs(ed), 0.35) << "E_d = " << ed;
}

TEST(CircularFilter, MatchesLinearForShortKernel) {
  Xoshiro256 rng(22);
  const auto x = gaussian_signal(64, rng);
  const std::vector<double> h{0.25, 0.5, 0.25};
  const auto circ = wav::circular_filter(x, h);
  const auto lin = dsp::convolve_direct(x, h);
  // Away from the wrap-around region the outputs agree.
  for (std::size_t i = h.size(); i < x.size(); ++i)
    EXPECT_NEAR(circ[i], lin[i], 1e-12);
}

TEST(Dwt2dCodec, PerfectReconstructionOneLevel) {
  const auto im = img::make_texture(img::TextureKind::kPowerLaw, 64, 64, 3);
  const auto bands = wav::analyze_2d(im);
  EXPECT_EQ(bands.ll.rows(), 32u);
  EXPECT_EQ(bands.hh.cols(), 32u);
  const auto recon = wav::synthesize_2d(bands);
  const auto aligned = wav::align_reconstruction(recon, 1);
  EXPECT_LT(img::mse(aligned, im), 1e-18);
}

TEST(Dwt2dCodec, PerfectReconstructionTwoLevels) {
  const auto im = img::make_texture(img::TextureKind::kGrating, 64, 64, 4);
  const auto recon = wav::dwt2d_roundtrip(im, 2, {});
  const auto aligned = wav::align_reconstruction(recon, 2);
  EXPECT_LT(img::mse(aligned, im), 1e-18);
}

TEST(Dwt2dCodec, FixedPointIntroducesBoundedError) {
  const auto im = img::make_texture(img::TextureKind::kBlobs, 64, 64, 5);
  const auto fmt = fxp::q_format(4, 12);
  const auto ref = wav::dwt2d_roundtrip(im, 2, {});
  const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
  const double err = img::mse(ref, fx);
  EXPECT_GT(err, 0.0);
  // Error stays within a few orders of q^2.
  const double q2 = fmt.step() * fmt.step();
  EXPECT_LT(err, 1000.0 * q2);
}

TEST(Spectrum2d, WhiteInjectionBookkeeping) {
  wav::Spectrum2d s(16);
  s.add_white(2.0, 0.25);
  EXPECT_NEAR(s.variance(), 2.0, 1e-12);
  EXPECT_NEAR(s.power(), 2.0 + 0.0625, 1e-12);
}

TEST(Spectrum2d, RowResponsePreservesColumnAxis) {
  wav::Spectrum2d s(8);
  s.add_white(1.0);
  std::vector<double> resp(8, 0.0);
  resp[0] = 1.0;  // keep only kx = 0
  s.apply_row_response(resp, 1.0);
  EXPECT_NEAR(s.variance(), 1.0 / 8.0, 1e-12);
  for (std::size_t ky = 0; ky < 8; ++ky)
    for (std::size_t kx = 1; kx < 8; ++kx)
      EXPECT_DOUBLE_EQ(s.bin(ky, kx), 0.0);
}

TEST(Spectrum2d, DecimatePreservesPowerExpandDivides) {
  wav::Spectrum2d s(16);
  s.add_white(1.0);
  s.decimate_rows(2);
  EXPECT_NEAR(s.variance(), 1.0, 1e-9);
  s.decimate_cols(2);
  EXPECT_NEAR(s.variance(), 1.0, 1e-9);
  s.expand_rows(2);
  EXPECT_NEAR(s.variance(), 0.5, 1e-9);
  s.expand_cols(2);
  EXPECT_NEAR(s.variance(), 0.25, 1e-9);
}

TEST(Dwt2dNoise, EstimateMatchesImageSimulation) {
  // Average fixed-point error over a few synthetic images vs the proposed
  // 2-D PSD estimate.
  const auto fmt = fxp::q_format(4, 12);
  const wav::Dwt2dNoiseConfig cfg{
      .levels = 2, .format = fmt, .n_bins = 32, .quantize_input = true};
  const double est = wav::dwt2d_noise_psd(cfg).power();

  const auto bank = img::texture_bank(8, 64, 64, 11);
  double err_acc = 0.0;
  for (const auto& im : bank) {
    const auto ref = wav::dwt2d_roundtrip(im, 2, {});
    const auto fx = wav::dwt2d_roundtrip(im, 2, fmt);
    err_acc += img::mse(ref, fx);
  }
  const double simulated = err_acc / static_cast<double>(bank.size());
  const double ed = core::mse_deviation(simulated, est);
  EXPECT_TRUE(core::within_one_bit(ed)) << "E_d = " << ed;
  EXPECT_LT(std::abs(ed), 0.5) << "E_d = " << ed;
}

TEST(Dwt2dNoise, MomentBaselineProducesEstimate) {
  const auto fmt = fxp::q_format(4, 12);
  const wav::Dwt2dNoiseConfig cfg{
      .levels = 2, .format = fmt, .n_bins = 32, .quantize_input = true};
  const double est = wav::dwt2d_noise_power_moments(cfg);
  EXPECT_GT(est, 0.0);
}

TEST(Dwt2dNoise, PowerScalesWithWordLength) {
  // Four fewer fractional bits => ~256x the noise power.
  const wav::Dwt2dNoiseConfig fine{
      .levels = 2, .format = fxp::q_format(4, 16), .n_bins = 32,
      .quantize_input = true};
  wav::Dwt2dNoiseConfig coarse = fine;
  coarse.format = fxp::q_format(4, 12);
  const double p_fine = wav::dwt2d_noise_psd(fine).power();
  const double p_coarse = wav::dwt2d_noise_psd(coarse).power();
  EXPECT_NEAR(p_coarse / p_fine, 256.0, 1.0);
}

}  // namespace
