// Signal-flow-graph tests: construction, validation, topology queries,
// cycle detection, loop collapsing, and executor semantics per node type.
#include <gtest/gtest.h>

#include "filters/iir_design.hpp"
#include "sfg/graph.hpp"
#include "sfg/transform.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using sfg::Graph;
using sfg::NodeId;

TEST(GraphBuild, NodeKindNames) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 8));
  const auto b = g.add_block(q, filt::TransferFunction::identity());
  const auto out = g.add_output(b);
  EXPECT_STREQ(sfg::node_kind_name(g.node(in).payload), "input");
  EXPECT_STREQ(sfg::node_kind_name(g.node(q).payload), "quant");
  EXPECT_STREQ(sfg::node_kind_name(g.node(b).payload), "block");
  EXPECT_STREQ(sfg::node_kind_name(g.node(out).payload), "output");
}

TEST(GraphBuild, InputsOutputsAndSources) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 8));
  const auto blk = g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 2, 0.2),
      fxp::q_format(4, 8));
  g.add_output(blk);
  EXPECT_EQ(g.inputs().size(), 1u);
  EXPECT_EQ(g.outputs().size(), 1u);
  // Quantizer + quantized block are both noise sources.
  EXPECT_EQ(g.noise_sources().size(), 2u);
}

TEST(GraphBuild, ConsumersInverseAdjacency) {
  Graph g;
  const auto in = g.add_input();
  const auto a = g.add_gain(in, 2.0);
  const auto b = g.add_gain(in, 3.0);
  const auto sum = g.add_adder({a, b});
  g.add_output(sum);
  ASSERT_EQ(g.consumers(in).size(), 2u);
  EXPECT_EQ(g.consumers(a).size(), 1u);
  EXPECT_EQ(g.consumers(a)[0], sum);
}

TEST(GraphBuild, TopologicalOrderRespectsEdges) {
  Graph g;
  const auto in = g.add_input();
  const auto d = g.add_delay(in, 1);
  const auto s = g.add_adder({in, d});
  const auto out = g.add_output(s);
  const auto order = g.topological_order();
  auto pos = [&](NodeId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(in), pos(d));
  EXPECT_LT(pos(d), pos(s));
  EXPECT_LT(pos(s), pos(out));
}

TEST(Cycles, AcyclicGraphHasNone) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_gain(in, 1.0));
  EXPECT_FALSE(g.has_cycles());
  EXPECT_TRUE(sfg::find_cycles(g).empty());
}

Graph one_pole_feedback_graph(double a, NodeId* adder_out = nullptr) {
  // y[n] = x[n] + a * y[n-1]  ==  H(z) = 1 / (1 - a z^-1).
  Graph g;
  const auto in = g.add_input();
  const auto sum = g.add_adder({in});
  const auto del = g.add_delay(sum, 1);
  const auto gain = g.add_gain(del, a);
  g.add_adder_input(sum, gain);
  g.add_output(sum);
  if (adder_out != nullptr) *adder_out = sum;
  return g;
}

TEST(Cycles, FeedbackLoopDetected) {
  const auto g = one_pole_feedback_graph(0.5);
  EXPECT_TRUE(g.has_cycles());
  const auto sccs = sfg::find_cycles(g);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].size(), 3u);  // adder, delay, gain
}

TEST(Cycles, CollapseProducesEquivalentAcyclicGraph) {
  const double a = 0.6;
  const auto g = one_pole_feedback_graph(a);
  const auto collapsed = sfg::collapse_loops(g);
  EXPECT_FALSE(collapsed.has_cycles());

  // Impulse through the collapsed graph must match 1/(1 - a z^-1).
  std::vector<double> impulse(32, 0.0);
  impulse[0] = 1.0;
  const auto y = sim::execute_sisos(collapsed, impulse,
                                    sim::Mode::kReference);
  const filt::TransferFunction expected({1.0}, {1.0, -a});
  const auto h = expected.impulse_response(32);
  for (std::size_t i = 0; i < h.size(); ++i)
    EXPECT_NEAR(y[i], h[i], 1e-10) << "n=" << i;
}

TEST(Cycles, CollapseWithBlockInLoop) {
  // Loop gain L(z) = 0.8 z^-2 via a block; H = 1 / (1 - 0.8 z^-2).
  Graph g;
  const auto in = g.add_input();
  const auto sum = g.add_adder({in});
  const auto blk = g.add_block(
      sum, filt::TransferFunction::gain(0.8).cascade(
               filt::TransferFunction::delay(2)));
  g.add_adder_input(sum, blk);
  g.add_output(sum);
  const auto collapsed = sfg::collapse_loops(g);
  EXPECT_FALSE(collapsed.has_cycles());
  std::vector<double> impulse(16, 0.0);
  impulse[0] = 1.0;
  const auto y =
      sim::execute_sisos(collapsed, impulse, sim::Mode::kReference);
  const filt::TransferFunction expected({1.0}, {1.0, 0.0, -0.8});
  const auto h = expected.impulse_response(16);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_NEAR(y[i], h[i], 1e-10);
}

TEST(Cycles, NegativeFeedbackSign) {
  // y[n] = x[n] - 0.5 y[n-1]  ==  H = 1 / (1 + 0.5 z^-1).
  Graph g;
  const auto in = g.add_input();
  const auto sum = g.add_adder({in});
  const auto del = g.add_delay(sum, 1);
  const auto gain = g.add_gain(del, 0.5);
  g.add_adder_input(sum, gain, -1.0);
  g.add_output(sum);
  const auto collapsed = sfg::collapse_loops(g);
  std::vector<double> impulse(16, 0.0);
  impulse[0] = 1.0;
  const auto y =
      sim::execute_sisos(collapsed, impulse, sim::Mode::kReference);
  const filt::TransferFunction expected({1.0}, {1.0, 0.5});
  const auto h = expected.impulse_response(16);
  for (std::size_t i = 0; i < h.size(); ++i) EXPECT_NEAR(y[i], h[i], 1e-10);
}

TEST(Cycles, CollapseIsNoOpOnAcyclicGraphs) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_delay(in, 2));
  const auto collapsed = sfg::collapse_loops(g);
  EXPECT_EQ(collapsed.node_count(), g.node_count());
}

TEST(Executor, DelaySemantics) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_delay(in, 3));
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  EXPECT_EQ(y, (std::vector<double>{0.0, 0.0, 0.0, 1.0, 2.0}));
}

TEST(Executor, AdderWithSigns) {
  Graph g;
  const auto in = g.add_input();
  const auto a = g.add_gain(in, 2.0);
  const auto b = g.add_gain(in, 0.5);
  std::vector<NodeId> srcs{a, b};
  std::vector<double> signs{1.0, -1.0};
  const auto sum = g.add_adder(srcs, signs);
  g.add_output(sum);
  const std::vector<double> x{1.0, -2.0};
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  EXPECT_DOUBLE_EQ(y[0], 1.5);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
}

TEST(Executor, DownUpSampleSemantics) {
  Graph g;
  const auto in = g.add_input();
  const auto down = g.add_downsample(in, 2);
  g.add_output(g.add_upsample(down, 2));
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  EXPECT_EQ(y, (std::vector<double>{1.0, 0.0, 3.0, 0.0, 5.0, 0.0}));
}

TEST(Executor, QuantizerActsOnlyInFixedPointMode) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 2)));
  const std::vector<double> x{0.3, -0.3};
  const auto ref = sim::execute_sisos(g, x, sim::Mode::kReference);
  const auto fx = sim::execute_sisos(g, x, sim::Mode::kFixedPoint);
  EXPECT_DOUBLE_EQ(ref[0], 0.3);
  EXPECT_DOUBLE_EQ(fx[0], 0.25);
  EXPECT_DOUBLE_EQ(fx[1], -0.25);
}

TEST(Executor, BlockUsesFixedPointRealizationInFxMode) {
  const auto tf = filt::iir_lowpass(filt::IirFamily::kButterworth, 2, 0.2);
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_block(in, tf, fxp::q_format(4, 6)));
  Xoshiro256 rng(12);
  const auto x = uniform_signal(100, 0.9, rng);
  const auto ref = sim::execute_sisos(g, x, sim::Mode::kReference);
  const auto fx = sim::execute_sisos(g, x, sim::Mode::kFixedPoint);
  const double step = fxp::q_format(4, 6).step();
  bool any_difference = false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    // Fixed-point outputs on the grid...
    EXPECT_NEAR(fx[i] / step, std::round(fx[i] / step), 1e-9);
    if (std::abs(fx[i] - ref[i]) > 1e-12) any_difference = true;
  }
  // ... and differ from the double reference somewhere.
  EXPECT_TRUE(any_difference);
}

TEST(Executor, MultipleInputsByNodeId) {
  Graph g;
  const auto in1 = g.add_input("a");
  const auto in2 = g.add_input("b");
  const auto sum = g.add_adder({in1, in2});
  const auto out = g.add_output(sum);
  std::map<sfg::NodeId, std::vector<double>> inputs;
  inputs[in1] = {1.0, 2.0};
  inputs[in2] = {10.0, 20.0};
  const auto signals = sim::execute(g, inputs, sim::Mode::kReference);
  EXPECT_EQ(signals[out], (std::vector<double>{11.0, 22.0}));
}

TEST(Validation, SingleRateDetection) {
  Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_gain(in, 1.0));
  EXPECT_TRUE(g.is_single_rate());
  Graph g2;
  const auto in2 = g2.add_input();
  g2.add_output(g2.add_downsample(in2, 2));
  EXPECT_FALSE(g2.is_single_rate());
}

}  // namespace
