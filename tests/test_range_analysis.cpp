// Range-analysis tests: interval propagation per node type, L1-norm
// soundness against simulated extrema, and integer-bit selection.
#include <cmath>

#include <gtest/gtest.h>

#include "core/range_analysis.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using core::Range;

TEST(Range, Accessors) {
  const Range r{-2.0, 6.0};
  EXPECT_DOUBLE_EQ(r.center(), 2.0);
  EXPECT_DOUBLE_EQ(r.half_width(), 4.0);
  EXPECT_DOUBLE_EQ(r.max_abs(), 6.0);
  EXPECT_TRUE(r.contains(0.0));
  EXPECT_FALSE(r.contains(-3.0));
}

TEST(L1Norm, FirIsSumOfAbsoluteTaps) {
  const filt::TransferFunction tf({0.5, -0.25, 0.125});
  EXPECT_DOUBLE_EQ(core::l1_norm(tf, 16), 0.875);
}

TEST(L1Norm, OnePoleGeometricSeries) {
  const filt::TransferFunction tf({1.0}, {1.0, -0.5});
  EXPECT_NEAR(core::l1_norm(tf, 4096), 2.0, 1e-9);
}

TEST(RangePropagation, GainAndAdder) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto a = g.add_gain(in, -2.0);
  const auto b = g.add_gain(in, 0.5);
  const auto sum = g.add_adder({a, b});
  const auto out = g.add_output(sum);
  const auto ranges = core::analyze_ranges(g, Range{-1.0, 1.0});
  EXPECT_DOUBLE_EQ(ranges[a].lo, -2.0);
  EXPECT_DOUBLE_EQ(ranges[a].hi, 2.0);
  EXPECT_DOUBLE_EQ(ranges[out].lo, -2.5);
  EXPECT_DOUBLE_EQ(ranges[out].hi, 2.5);
}

TEST(RangePropagation, SubtractingAdder) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto d = g.add_delay(in, 1);
  std::vector<sfg::NodeId> srcs{in, d};
  std::vector<double> signs{1.0, -1.0};
  const auto diff = g.add_adder(srcs, signs);
  const auto out = g.add_output(diff);
  const auto ranges = core::analyze_ranges(g, Range{0.0, 1.0});
  // x in [0,1], delayed in [0,1]: difference in [-1, 1].
  EXPECT_DOUBLE_EQ(ranges[out].lo, -1.0);
  EXPECT_DOUBLE_EQ(ranges[out].hi, 1.0);
}

TEST(RangePropagation, BlockL1BoundIsSoundAndTight) {
  const filt::TransferFunction tf(filt::fir_lowpass(31, 0.2));
  sfg::Graph g;
  const auto in = g.add_input();
  const auto out = g.add_output(g.add_block(in, tf));
  const auto ranges = core::analyze_ranges(g, Range{-1.0, 1.0});

  // Soundness: simulated outputs stay inside the bound.
  Xoshiro256 rng(1);
  const auto x = uniform_signal(1u << 15, 1.0, rng);
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  double peak = 0.0;
  for (double v : y) peak = std::max(peak, std::abs(v));
  EXPECT_LE(peak, ranges[out].max_abs() + 1e-12);
  // Tightness: the L1 bound is achievable for FIR (sign-matched input),
  // so it should be within a small factor of the random-input peak.
  EXPECT_LT(ranges[out].max_abs(), 4.0 * peak);
}

TEST(RangePropagation, AsymmetricInputCenterIsMapped) {
  // A DC-heavy input through a DC-gain-1 filter keeps its center.
  const filt::TransferFunction tf(filt::fir_lowpass(15, 0.25));
  sfg::Graph g;
  const auto in = g.add_input();
  const auto out = g.add_output(g.add_block(in, tf));
  const auto ranges = core::analyze_ranges(g, Range{0.8, 1.2});
  EXPECT_NEAR(ranges[out].center(), 1.0, 1e-9);
  EXPECT_TRUE(ranges[out].contains(1.0));
}

TEST(RangePropagation, QuantizerClampsToFormatRange) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto g10 = g.add_gain(in, 10.0);
  const auto q = g.add_quantizer(g10, fxp::q_format(3, 8));  // [-4, 4)
  const auto out = g.add_output(q);
  const auto ranges = core::analyze_ranges(g, Range{-1.0, 1.0});
  EXPECT_GE(ranges[out].lo, -4.0);
  EXPECT_LE(ranges[out].hi, 4.0);
}

TEST(RangePropagation, DelayAndUpsampleIncludeZero) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto d = g.add_delay(in, 2);
  const auto u = g.add_upsample(d, 2);
  const auto out = g.add_output(u);
  const auto ranges = core::analyze_ranges(g, Range{0.5, 1.0});
  EXPECT_DOUBLE_EQ(ranges[out].lo, 0.0);  // inserted zeros / initial state
  EXPECT_DOUBLE_EQ(ranges[out].hi, 1.0);
}

TEST(RangePropagation, IirRecursiveAmplification) {
  // H = 1/(1 - 0.9 z^-1): L1 norm 10; input [-1,1] -> output [-10, 10].
  const filt::TransferFunction tf({1.0}, {1.0, -0.9});
  sfg::Graph g;
  const auto in = g.add_input();
  const auto out = g.add_output(g.add_block(in, tf));
  const auto ranges = core::analyze_ranges(g, Range{-1.0, 1.0});
  EXPECT_NEAR(ranges[out].hi, 10.0, 0.01);
  EXPECT_NEAR(ranges[out].lo, -10.0, 0.01);
}

TEST(IntegerBits, CoversRange) {
  EXPECT_EQ(core::required_integer_bits(Range{-1.0, 0.999}), 1);
  EXPECT_EQ(core::required_integer_bits(Range{-1.0, 1.0}), 2);
  EXPECT_EQ(core::required_integer_bits(Range{-8.0, 7.9}), 4);
  EXPECT_EQ(core::required_integer_bits(Range{0.0, 100.0}), 8);
  EXPECT_EQ(core::required_integer_bits(Range{-0.1, 0.1}), 1);
}

TEST(IntegerBits, EndToEndFormatSelection) {
  // Pick integer bits from range analysis, then verify no saturation in
  // simulation.
  const auto tf = filt::iir_lowpass(filt::IirFamily::kChebyshev1, 4, 0.1);
  sfg::Graph g;
  const auto in = g.add_input();
  const auto blk = g.add_block(in, tf);
  const auto out = g.add_output(blk);
  const auto ranges = core::analyze_ranges(g, Range{-1.0, 1.0});
  const int ibits = core::required_integer_bits(ranges[out]);

  // Rebuild with a quantized block using the selected format.
  sfg::Graph g2;
  const auto in2 = g2.add_input();
  const auto fmt = fxp::q_format(ibits, 12);
  const auto blk2 = g2.add_block(in2, tf, fmt);
  g2.add_output(blk2);
  Xoshiro256 rng(2);
  const auto x = uniform_signal(1u << 14, 1.0, rng);
  const auto y = sim::execute_sisos(g2, x, sim::Mode::kFixedPoint);
  for (double v : y) {
    EXPECT_GT(v, fmt.min_value() - 1e-12);
    EXPECT_LT(v, fmt.max_value() + 1e-12);
  }
}

}  // namespace
