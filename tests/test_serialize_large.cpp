// Large-graph serialization: the >= 10^4-node corpus entry is byte-for-byte
// the canonical serialization of tests/large_corpus_graph.hpp's generator,
// and the reserving two-pass parser round-trips it exactly.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "large_corpus_graph.hpp"
#include "sfg/serialize.hpp"

#ifndef PSDACC_CORPUS_DIR
#error "PSDACC_CORPUS_DIR must point at the checked-in corpus"
#endif

namespace {

using namespace psdacc;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const char* corpus_path() {
  return PSDACC_CORPUS_DIR "/large_mesh_10k.sfg";
}

TEST(SerializeLarge, GeneratorMatchesCheckedInEntryByteForByte) {
  const auto scenario = psdacc::testing::make_large_corpus_scenario();
  ASSERT_GE(scenario.graph.node_count(), 10000u);
  EXPECT_EQ(sfg::serialize(scenario), read_file(corpus_path()))
      << "regenerate with the emitter in tests/large_corpus_graph.hpp";
}

TEST(SerializeLarge, ParseRoundTripsByteIdentically) {
  const std::string text = read_file(corpus_path());
  const auto scenario = sfg::parse_scenario(text);
  ASSERT_GE(scenario.graph.node_count(), 10000u);
  EXPECT_EQ(sfg::serialize(scenario), text);

  // Graph-section-only round trip through the reserving parse path.
  const std::string graph_text = sfg::serialize(scenario.graph);
  const auto parsed = sfg::parse_graph(graph_text);
  EXPECT_TRUE(sfg::graphs_equal(scenario.graph, parsed));
  EXPECT_EQ(sfg::serialize(parsed), graph_text);
}

}  // namespace
