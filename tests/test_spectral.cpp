// Spectral estimation tests: power normalization (discrete Parseval),
// whiteness of white noise, tone localization, autocorrelation identities,
// cross-PSD consistency.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "dsp/spectral.hpp"
#include "support/random.hpp"
#include "support/statistics.hpp"

namespace {

using psdacc::Xoshiro256;

double total(const std::vector<double>& psd) {
  double acc = 0.0;
  for (double v : psd) acc += v;
  return acc;
}

TEST(Autocorrelation, LagZeroIsMeanSquare) {
  Xoshiro256 rng(5);
  const auto x = psdacc::gaussian_signal(4096, rng);
  const auto r = psdacc::dsp::autocorrelation(x, 8);
  EXPECT_NEAR(r[0], psdacc::mean_square(x), 1e-12);
}

TEST(Autocorrelation, WhiteNoiseDecorrelatesAtNonzeroLags) {
  Xoshiro256 rng(6);
  const auto x = psdacc::gaussian_signal(1u << 16, rng);
  const auto r = psdacc::dsp::autocorrelation(x, 4);
  for (std::size_t m = 1; m <= 4; ++m)
    EXPECT_NEAR(r[m], 0.0, 0.02) << "lag " << m;
}

TEST(Autocorrelation, DeterministicRamp) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const auto r = psdacc::dsp::autocorrelation(x, 2);
  EXPECT_DOUBLE_EQ(r[0], (1.0 + 4.0 + 9.0 + 16.0) / 4.0);
  EXPECT_DOUBLE_EQ(r[1], (1.0 * 2 + 2.0 * 3 + 3.0 * 4) / 4.0);
  EXPECT_DOUBLE_EQ(r[2], (1.0 * 3 + 2.0 * 4) / 4.0);
}

class PsdNormalization : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PsdNormalization, PeriodogramTotalsMeanSquare) {
  const std::size_t n_bins = GetParam();
  Xoshiro256 rng(n_bins);
  const auto x = psdacc::gaussian_signal(n_bins, rng);
  const auto psd = psdacc::dsp::periodogram(x, n_bins);
  EXPECT_NEAR(total(psd), psdacc::mean_square(x),
              1e-9 * psdacc::mean_square(x));
}

TEST_P(PsdNormalization, WelchTotalsVarianceOfWhiteNoise) {
  const std::size_t n_bins = GetParam();
  Xoshiro256 rng(n_bins + 1);
  const auto x = psdacc::gaussian_signal(1u << 17, rng);
  const auto psd = psdacc::dsp::welch_psd(x, n_bins);
  // Welch of stationary noise converges to E[x^2] = 1.
  EXPECT_NEAR(total(psd), 1.0, 0.05);
}

TEST_P(PsdNormalization, WelchWhiteNoiseIsFlat) {
  const std::size_t n_bins = GetParam();
  Xoshiro256 rng(n_bins + 2);
  const auto x = psdacc::gaussian_signal(1u << 18, rng);
  const auto psd = psdacc::dsp::welch_psd(x, n_bins);
  const double expected = 1.0 / static_cast<double>(n_bins);
  for (std::size_t k = 0; k < n_bins; ++k)
    EXPECT_NEAR(psd[k], expected, 0.35 * expected) << "bin " << k;
}

INSTANTIATE_TEST_SUITE_P(Bins, PsdNormalization,
                         ::testing::Values(16, 64, 256));

struct ParsevalCase {
  std::size_t samples;
  std::size_t n_bins;
};

class PsdParseval : public ::testing::TestWithParam<ParsevalCase> {};

TEST_P(PsdParseval, PeriodogramTotalsMeanSquareExactly) {
  // Holds exactly for every (N, n) combination, including N > n (the old
  // implementation silently truncated the tail) and N not a multiple of n.
  const auto p = GetParam();
  Xoshiro256 rng(p.samples * 131 + p.n_bins);
  const auto x = psdacc::gaussian_signal(p.samples, rng);
  const auto psd = psdacc::dsp::periodogram(x, p.n_bins);
  const double ms = psdacc::mean_square(x);
  EXPECT_NEAR(total(psd), ms, 1e-9 * ms)
      << "N=" << p.samples << " bins=" << p.n_bins;
}

TEST_P(PsdParseval, WelchTotalsMeanSquareOfWhiteNoise) {
  const auto p = GetParam();
  Xoshiro256 rng(p.samples * 137 + p.n_bins);
  const auto x = psdacc::gaussian_signal(std::max<std::size_t>(p.samples,
                                                               1u << 15),
                                         rng);
  const auto psd = psdacc::dsp::welch_psd(x, p.n_bins);
  EXPECT_NEAR(total(psd), 1.0, 0.06)
      << "N=" << p.samples << " bins=" << p.n_bins;
}

// Bin counts cover powers of two, odd composites, and primes; sample counts
// cover shorter-than-bins, exact multiples, and ragged tails.
INSTANTIATE_TEST_SUITE_P(
    Sizes, PsdParseval,
    ::testing::Values(ParsevalCase{100, 128}, ParsevalCase{128, 128},
                      ParsevalCase{1000, 128}, ParsevalCase{4096, 64},
                      ParsevalCase{5000, 64}, ParsevalCase{4097, 31},
                      ParsevalCase{997, 16}, ParsevalCase{2048, 45},
                      ParsevalCase{3001, 101}, ParsevalCase{1u << 14, 1024}));

TEST(PsdShape, SinusoidConcentratesInItsBin) {
  const std::size_t n = 1u << 14;
  const std::size_t bins = 128;
  const double f = 16.0 / static_cast<double>(bins);  // exactly bin 16
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sqrt(2.0) *
           std::sin(2.0 * std::numbers::pi * f * static_cast<double>(i));
  const auto psd = psdacc::dsp::periodogram(x, bins);
  // Total power of a sqrt(2) sine is 1, split between bins 16 and 112.
  EXPECT_NEAR(psd[16] + psd[bins - 16], 1.0, 0.02);
  EXPECT_GT(psd[16], 0.4);
}

TEST(PsdShape, Ar1LowpassSpectrumDecreasesWithFrequency) {
  Xoshiro256 rng(42);
  const auto x = psdacc::ar1_signal(1u << 17, 0.9, rng);
  const auto psd = psdacc::dsp::welch_psd(x, 64);
  // Positive-rho AR(1) has monotonically decreasing PSD on [0, 0.5].
  EXPECT_GT(psd[1], psd[8]);
  EXPECT_GT(psd[8], psd[31]);
}

TEST(CrossPsd, SelfCrossEqualsAutoPsd) {
  Xoshiro256 rng(43);
  const auto x = psdacc::gaussian_signal(1u << 14, rng);
  const auto auto_psd = psdacc::dsp::welch_psd(x, 64);
  const auto cross = psdacc::dsp::welch_cross_psd_real(x, x, 64);
  ASSERT_EQ(cross.size(), auto_psd.size());
  for (std::size_t k = 0; k < cross.size(); ++k)
    EXPECT_NEAR(cross[k], auto_psd[k], 1e-10);
}

TEST(CrossPsd, IndependentSignalsHaveSmallCrossTerms) {
  Xoshiro256 rng(44);
  const auto x = psdacc::gaussian_signal(1u << 16, rng);
  const auto y = psdacc::gaussian_signal(1u << 16, rng);
  const auto cross = psdacc::dsp::welch_cross_psd_real(x, y, 64);
  for (double v : cross) EXPECT_NEAR(v, 0.0, 5e-3);
}

TEST(CrossPsd, SumPowerDecomposition) {
  // E[(x+y)^2] spectral decomposition: S_zz = S_xx + S_yy + 2 Re S_xy.
  Xoshiro256 rng(45);
  const std::size_t n = 1u << 15;
  const auto x = psdacc::gaussian_signal(n, rng);
  auto y = psdacc::gaussian_signal(n, rng);
  for (std::size_t i = 0; i < n; ++i) y[i] = 0.5 * y[i] + 0.5 * x[i];
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = x[i] + y[i];
  const std::size_t bins = 32;
  const auto sxx = psdacc::dsp::welch_psd(x, bins);
  const auto syy = psdacc::dsp::welch_psd(y, bins);
  const auto szz = psdacc::dsp::welch_psd(z, bins);
  const auto sxy = psdacc::dsp::welch_cross_psd_real(x, y, bins);
  for (std::size_t k = 0; k < bins; ++k)
    EXPECT_NEAR(szz[k], sxx[k] + syy[k] + 2.0 * sxy[k], 2e-10)
        << "bin " << k;
}

}  // namespace
