// Window function properties: symmetry, endpoint/center values, Kaiser
// design formulas, Bessel I0 accuracy.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/window.hpp"

namespace {

using psdacc::dsp::WindowKind;
using psdacc::dsp::make_window;

class WindowSymmetry : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowSymmetry, IsSymmetric) {
  for (std::size_t n : {5u, 8u, 33u, 64u}) {
    const auto w = make_window(GetParam(), n);
    ASSERT_EQ(w.size(), n);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(w[i], w[n - 1 - i], 1e-12) << "n=" << n << " i=" << i;
  }
}

TEST_P(WindowSymmetry, ValuesInUnitRange) {
  const auto w = make_window(GetParam(), 51);
  for (double v : w) {
    EXPECT_GE(v, -1e-12);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

TEST_P(WindowSymmetry, LengthOneIsUnity) {
  const auto w = make_window(GetParam(), 1);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, WindowSymmetry,
                         ::testing::Values(WindowKind::kRectangular,
                                           WindowKind::kHann,
                                           WindowKind::kHamming,
                                           WindowKind::kBlackman,
                                           WindowKind::kKaiser));

TEST(WindowValues, HannEndpointsAreZero) {
  const auto w = make_window(WindowKind::kHann, 21);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[20], 0.0, 1e-12);
  EXPECT_NEAR(w[10], 1.0, 1e-12);  // center of odd-length window
}

TEST(WindowValues, HammingEndpoints) {
  const auto w = make_window(WindowKind::kHamming, 21);
  EXPECT_NEAR(w[0], 0.08, 1e-12);
  EXPECT_NEAR(w[10], 1.0, 1e-12);
}

TEST(WindowValues, BlackmanEndpoints) {
  const auto w = make_window(WindowKind::kBlackman, 21);
  EXPECT_NEAR(w[0], 0.0, 1e-12);  // 0.42 - 0.5 + 0.08
  EXPECT_NEAR(w[10], 1.0, 1e-12);
}

TEST(WindowValues, RectangularIsAllOnes) {
  const auto w = make_window(WindowKind::kRectangular, 16);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(BesselI0, MatchesSeriesReference) {
  // Reference values of I0 (Abramowitz & Stegun).
  EXPECT_NEAR(psdacc::dsp::bessel_i0(0.0), 1.0, 1e-14);
  EXPECT_NEAR(psdacc::dsp::bessel_i0(1.0), 1.2660658777520084, 1e-12);
  EXPECT_NEAR(psdacc::dsp::bessel_i0(2.0), 2.2795853023360673, 1e-12);
  EXPECT_NEAR(psdacc::dsp::bessel_i0(5.0), 27.239871823604450, 1e-9);
}

TEST(BesselI0, IsEvenFunction) {
  EXPECT_DOUBLE_EQ(psdacc::dsp::bessel_i0(3.0), psdacc::dsp::bessel_i0(3.0));
}

TEST(KaiserDesign, BetaFormulaRegions) {
  // Below 21 dB the window degenerates to rectangular (beta = 0).
  EXPECT_DOUBLE_EQ(psdacc::dsp::kaiser_beta_for_attenuation(10.0), 0.0);
  // Mid region.
  const double beta40 = psdacc::dsp::kaiser_beta_for_attenuation(40.0);
  EXPECT_NEAR(beta40, 0.5842 * std::pow(19.0, 0.4) + 0.07886 * 19.0, 1e-12);
  // High-attenuation region.
  EXPECT_NEAR(psdacc::dsp::kaiser_beta_for_attenuation(80.0),
              0.1102 * (80.0 - 8.7), 1e-12);
  // Monotone increasing in attenuation.
  EXPECT_LT(beta40, psdacc::dsp::kaiser_beta_for_attenuation(60.0));
}

TEST(KaiserWindow, PeaksAtCenter) {
  const auto w = make_window(WindowKind::kKaiser, 33, 8.6);
  const auto peak = std::max_element(w.begin(), w.end());
  EXPECT_EQ(std::distance(w.begin(), peak), 16);
  EXPECT_NEAR(*peak, 1.0, 1e-12);
}

TEST(KaiserWindow, LargerBetaNarrowsWindow) {
  const auto narrow = make_window(WindowKind::kKaiser, 33, 12.0);
  const auto wide = make_window(WindowKind::kKaiser, 33, 4.0);
  // Edge taps decay faster with larger beta.
  EXPECT_LT(narrow[2], wide[2]);
}

}  // namespace
