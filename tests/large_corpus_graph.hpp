// Deterministic generator for the large-graph corpus entry
// (tests/corpus/large_mesh_10k.sfg). The checked-in document is the
// canonical serialization of exactly this scenario; the byte-identity
// test in test_serialize_large.cpp regenerates it and compares bytes, so
// any drift in the generator, the serializer, or the checked-in file is
// caught. Engines are left empty on purpose: the entry exists to pin the
// serializer and the reserving parser at scale, not to record goldens
// (psdacc-verify regen would otherwise evaluate a 10^4-node graph).
#pragma once

#include <cstdint>

#include "fixedpoint/format.hpp"
#include "sfg/serialize.hpp"

namespace psdacc::testing {

inline sfg::Scenario make_large_corpus_scenario() {
  constexpr std::size_t kTargetNodes = 10006;
  sfg::Scenario s;
  sfg::Graph& g = s.graph;
  g.reserve(kTargetNodes + 2, kTargetNodes + kTargetNodes / 4);
  const auto in = g.add_input("x");
  sfg::NodeId head = g.add_quantizer(in, fxp::q_format(4, 12), "q_in");
  sfg::NodeId tap = head;
  // splitmix64-style walk: fully deterministic, no <random> involved.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  while (g.node_count() < kTargetNodes) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint64_t roll = state >> 33;
    switch (roll % 8) {
      case 0:
        head = g.add_delay(head, 1 + static_cast<std::size_t>(roll % 3));
        break;
      case 1:
        head = g.add_quantizer(
            head, fxp::q_format(4, 8 + static_cast<int>((roll >> 8) % 8)));
        break;
      case 2: {
        // Reconvergent edge back to an earlier tap.
        const auto sum = g.add_adder({head, tap});
        tap = head;
        head = sum;
        break;
      }
      default:
        head = g.add_gain(
            head, 0.5 + static_cast<double>((roll >> 8) & 0x1ff) / 2048.0);
        break;
    }
  }
  g.add_output(head, "y");
  s.config.engines.clear();
  return s;
}

}  // namespace psdacc::testing
