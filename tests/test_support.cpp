// Support substrate tests: RNG determinism and distribution moments,
// running statistics, table rendering.
#include <array>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "support/random.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace psdacc;

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Xoshiro256 c(124);
  bool differs = false;
  Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, UniformInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Xoshiro, UniformMomentsConverge) {
  Xoshiro256 rng(2);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
}

TEST(Xoshiro, GaussianMomentsConverge) {
  Xoshiro256 rng(3);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.variance(), 1.0, 0.02);
}

TEST(Xoshiro, BelowIsUnbiasedAndInRange) {
  Xoshiro256 rng(4);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Signals, Ar1HasUnitVarianceAndCorrelation) {
  Xoshiro256 rng(5);
  const auto x = ar1_signal(1u << 17, 0.8, rng);
  RunningStats s;
  s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
  // Lag-1 correlation ~ rho.
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) acc += x[i] * x[i + 1];
  acc /= static_cast<double>(x.size() - 1);
  EXPECT_NEAR(acc, 0.8, 0.03);
}

TEST(Signals, MultitonePeakBounded) {
  Xoshiro256 rng(6);
  const auto x = multitone_signal(4096, 5, 0.9, rng);
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 0.9, 1e-9);
}

TEST(RunningStats, MatchesBatchFormulas) {
  Xoshiro256 rng(7);
  std::vector<double> xs(1000);
  for (auto& v : xs) v = rng.uniform(-2.0, 3.0);
  RunningStats s;
  s.add(xs);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(s.mean_square(), mean_square(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), min_element(xs));
  EXPECT_DOUBLE_EQ(s.max(), max_element(xs));
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Statistics, SubtractElementwise) {
  const std::vector<double> a{3.0, 2.0, 1.0};
  const std::vector<double> b{1.0, 1.0, 1.0};
  EXPECT_EQ(subtract(a, b), (std::vector<double>{2.0, 1.0, 0.0}));
}

TEST(Table, RendersAlignedCells) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "123456"});
  const auto s = t.render();
  EXPECT_NE(s.find("| name  | value  |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1      |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 123456 |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1234.5678, 4), "1235");
  EXPECT_EQ(TextTable::num(0.000123456, 3), "0.000123");
  EXPECT_EQ(TextTable::percent(0.295, 1), "29.5%");
  EXPECT_EQ(TextTable::percent(-0.0840, 2), "-8.40%");
}

// --- xoshiro256 jump verification -----------------------------------------
//
// The state update of xoshiro256 is linear over GF(2), so "advance by
// 2^128 steps" is multiplication by T^(2^128) for the 256x256 one-step
// transition matrix T. The test builds T by stepping basis vectors through
// an independent encoding of the published update, squares it 128 times,
// and checks that jump() (which uses the published jump *constants*) lands
// on exactly the same state. This validates the constants without trusting
// them.

using StateVec = std::array<std::uint64_t, 4>;

std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

StateVec xoshiro_step(StateVec s) {
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl64(s[3], 45);
  return s;
}

// Matrix stored as 256 columns, each a 256-bit state vector.
using Gf2Matrix = std::vector<StateVec>;

StateVec matvec(const Gf2Matrix& m, const StateVec& v) {
  StateVec out{};
  for (std::size_t j = 0; j < 256; ++j) {
    if ((v[j >> 6] >> (j & 63)) & 1u) {
      for (std::size_t w = 0; w < 4; ++w) out[w] ^= m[j][w];
    }
  }
  return out;
}

Gf2Matrix matsquare(const Gf2Matrix& m) {
  Gf2Matrix out(256);
  for (std::size_t j = 0; j < 256; ++j) out[j] = matvec(m, m[j]);
  return out;
}

TEST(Xoshiro, JumpMatchesTransitionMatrixPower) {
  Gf2Matrix m(256);
  for (std::size_t j = 0; j < 256; ++j) {
    StateVec basis{};
    basis[j >> 6] = 1ull << (j & 63);
    m[j] = xoshiro_step(basis);
  }
  for (int square = 0; square < 128; ++square) m = matsquare(m);  // T^(2^128)

  Xoshiro256 rng(2026);
  const StateVec before = rng.state();
  rng.jump();
  const StateVec expected = matvec(m, before);
  for (std::size_t w = 0; w < 4; ++w)
    EXPECT_EQ(rng.state()[w], expected[w]) << "state word " << w;
}

TEST(Xoshiro, SubstreamZeroIsTheBaseStream) {
  const Xoshiro256 base(7);
  Xoshiro256 a = base.substream(0);
  Xoshiro256 b(7);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SubstreamsAreReproducibleAndDistinct) {
  const Xoshiro256 base(99);
  Xoshiro256 s2a = base.substream(2);
  Xoshiro256 s2b = base.substream(2);
  Xoshiro256 s3 = base.substream(3);
  bool differs = false;
  for (int i = 0; i < 64; ++i) {
    const auto v = s2a();
    EXPECT_EQ(v, s2b());
    if (v != s3()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, SubstreamIsIteratedJump) {
  const Xoshiro256 base(4242);
  Xoshiro256 jumped(4242);
  jumped.jump();
  jumped.jump();
  const Xoshiro256 stream = base.substream(2);
  EXPECT_EQ(stream.state(), jumped.state());
}

TEST(RunningStats, MergeMatchesSequentialAccumulation) {
  Xoshiro256 rng(5);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.gaussian(1.5, 2.0);

  RunningStats whole;
  whole.add(xs);
  RunningStats front, back, merged;
  front.add(std::span<const double>(xs).subspan(0, 700));
  back.add(std::span<const double>(xs).subspan(700));
  merged.merge(front);
  merged.merge(back);

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12);
  EXPECT_EQ(merged.min(), whole.min());
  EXPECT_EQ(merged.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySidesIsIdentity) {
  RunningStats a;
  a.add(3.0);
  a.add(5.0);
  RunningStats empty;
  RunningStats b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 4.0);
  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 4.0);
  EXPECT_DOUBLE_EQ(c.variance(), a.variance());
}

TEST(RunningStats, FromMomentsRoundTripsThroughMerge) {
  RunningStats a;
  for (double x : {1.0, 2.0, 6.0, -3.0}) a.add(x);
  const RunningStats rebuilt = RunningStats::from_moments(
      a.count(), a.mean(), a.variance() * static_cast<double>(a.count()));
  EXPECT_EQ(rebuilt.count(), a.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), a.mean());
  EXPECT_NEAR(rebuilt.variance(), a.variance(), 1e-15);
  EXPECT_NEAR(rebuilt.mean_square(), a.mean_square(), 1e-15);
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch w;
  volatile double acc = 0.0;
  for (int i = 0; i < 10000; ++i) acc = acc + 1.0;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.milliseconds(), 0.0);
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
}

}  // namespace
