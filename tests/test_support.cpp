// Support substrate tests: RNG determinism and distribution moments,
// running statistics, table rendering.
#include <cmath>

#include <gtest/gtest.h>

#include "support/random.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace psdacc;

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Xoshiro256 c(124);
  bool differs = false;
  Xoshiro256 a2(123);
  for (int i = 0; i < 100; ++i)
    if (a2() != c()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Xoshiro, UniformInRange) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Xoshiro, UniformMomentsConverge) {
  Xoshiro256 rng(2);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.005);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.002);
}

TEST(Xoshiro, GaussianMomentsConverge) {
  Xoshiro256 rng(3);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.01);
  EXPECT_NEAR(s.variance(), 1.0, 0.02);
}

TEST(Xoshiro, BelowIsUnbiasedAndInRange) {
  Xoshiro256 rng(4);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.below(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Signals, Ar1HasUnitVarianceAndCorrelation) {
  Xoshiro256 rng(5);
  const auto x = ar1_signal(1u << 17, 0.8, rng);
  RunningStats s;
  s.add(x);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
  // Lag-1 correlation ~ rho.
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < x.size(); ++i) acc += x[i] * x[i + 1];
  acc /= static_cast<double>(x.size() - 1);
  EXPECT_NEAR(acc, 0.8, 0.03);
}

TEST(Signals, MultitonePeakBounded) {
  Xoshiro256 rng(6);
  const auto x = multitone_signal(4096, 5, 0.9, rng);
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 0.9, 1e-9);
}

TEST(RunningStats, MatchesBatchFormulas) {
  Xoshiro256 rng(7);
  std::vector<double> xs(1000);
  for (auto& v : xs) v = rng.uniform(-2.0, 3.0);
  RunningStats s;
  s.add(xs);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-12);
  EXPECT_NEAR(s.mean_square(), mean_square(xs), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), min_element(xs));
  EXPECT_DOUBLE_EQ(s.max(), max_element(xs));
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Statistics, SubtractElementwise) {
  const std::vector<double> a{3.0, 2.0, 1.0};
  const std::vector<double> b{1.0, 1.0, 1.0};
  EXPECT_EQ(subtract(a, b), (std::vector<double>{2.0, 1.0, 0.0}));
}

TEST(Table, RendersAlignedCells) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "123456"});
  const auto s = t.render();
  EXPECT_NE(s.find("| name  | value  |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1      |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 123456 |"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1234.5678, 4), "1235");
  EXPECT_EQ(TextTable::num(0.000123456, 3), "0.000123");
  EXPECT_EQ(TextTable::percent(0.295, 1), "29.5%");
  EXPECT_EQ(TextTable::percent(-0.0840, 2), "-8.40%");
}

TEST(Stopwatch, MeasuresNonNegativeTime) {
  Stopwatch w;
  volatile double acc = 0.0;
  for (int i = 0; i < 10000; ++i) acc = acc + 1.0;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.milliseconds(), 0.0);
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
}

}  // namespace
