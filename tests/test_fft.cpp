// FFT unit and property tests: agreement with the O(N^2) DFT oracle,
// inversion, Parseval, linearity, and known closed-form transforms.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "support/random.hpp"

namespace {

using psdacc::Xoshiro256;
using psdacc::dsp::cplx;

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(rng.gaussian(), rng.gaussian());
  return x;
}

double max_abs_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(FftBasics, PowerOfTwoHelpers) {
  EXPECT_TRUE(psdacc::dsp::is_power_of_two(1));
  EXPECT_TRUE(psdacc::dsp::is_power_of_two(2));
  EXPECT_TRUE(psdacc::dsp::is_power_of_two(1024));
  EXPECT_FALSE(psdacc::dsp::is_power_of_two(0));
  EXPECT_FALSE(psdacc::dsp::is_power_of_two(3));
  EXPECT_FALSE(psdacc::dsp::is_power_of_two(1023));
  EXPECT_EQ(psdacc::dsp::next_power_of_two(1), 1u);
  EXPECT_EQ(psdacc::dsp::next_power_of_two(5), 8u);
  EXPECT_EQ(psdacc::dsp::next_power_of_two(1024), 1024u);
  EXPECT_EQ(psdacc::dsp::next_power_of_two(1025), 2048u);
}

TEST(FftBasics, ImpulseTransformsToFlatSpectrum) {
  std::vector<cplx> x(16, cplx(0.0, 0.0));
  x[0] = cplx(1.0, 0.0);
  psdacc::dsp::fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(FftBasics, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  std::vector<cplx> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = 2.0 * std::numbers::pi * static_cast<double>(tone * i) /
                     static_cast<double>(n);
    x[i] = cplx(std::cos(w), 0.0);
  }
  psdacc::dsp::fft(x);
  EXPECT_NEAR(std::abs(x[tone]), static_cast<double>(n) / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(x[n - tone]), static_cast<double>(n) / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == tone || k == n - tone) continue;
    EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-9) << "bin " << k;
  }
}

class FftAgainstDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftAgainstDft, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 100 + n);
  const auto expected = psdacc::dsp::dft_reference(x);
  psdacc::dsp::fft(x);
  EXPECT_LT(max_abs_diff(x, expected), 1e-8 * static_cast<double>(n));
}

TEST_P(FftAgainstDft, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 200 + n);
  auto x = original;
  psdacc::dsp::fft(x);
  psdacc::dsp::ifft(x);
  EXPECT_LT(max_abs_diff(x, original), 1e-9 * static_cast<double>(n + 1));
}

TEST_P(FftAgainstDft, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 300 + n);
  auto spec = x;
  psdacc::dsp::fft(spec);
  double time_energy = 0.0;
  double freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : spec) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * time_energy);
}

TEST_P(FftAgainstDft, LinearityHolds) {
  const std::size_t n = GetParam();
  const auto a = random_signal(n, 400 + n);
  const auto b = random_signal(n, 500 + n);
  const cplx alpha(1.7, -0.3);
  std::vector<cplx> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = alpha * a[i] + b[i];
  auto fa = a, fb = b;
  psdacc::dsp::fft(fa);
  psdacc::dsp::fft(fb);
  psdacc::dsp::fft(combo);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(combo[i] - (alpha * fa[i] + fb[i])),
              1e-8 * static_cast<double>(n));
}

// Covers powers of two (radix-2 path) and several non-powers (Bluestein).
INSTANTIATE_TEST_SUITE_P(Sizes, FftAgainstDft,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17,
                                           31, 32, 45, 64, 100, 128, 255,
                                           256));

TEST(FftAgainstDftLargePrime, BluesteinMatchesReferenceDft) {
  // A large prime exercises the full Bluestein path (chirp + cached kernel
  // spectrum) with no radix-2 shortcut anywhere in the size.
  const std::size_t n = 1009;
  auto x = random_signal(n, 600);
  const auto expected = psdacc::dsp::dft_reference(x);
  psdacc::dsp::fft(x);
  double max_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_diff = std::max(max_diff, std::abs(x[i] - expected[i]));
  EXPECT_LT(max_diff, 1e-9 * static_cast<double>(n));
}

class RealFftAgainstDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RealFftAgainstDft, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  Xoshiro256 rng(700 + n);
  const auto x = psdacc::gaussian_signal(n, rng);
  std::vector<cplx> ref(n);
  for (std::size_t i = 0; i < n; ++i) ref[i] = cplx(x[i], 0.0);
  const auto expected = psdacc::dsp::dft_reference(ref);
  const auto spec = psdacc::dsp::fft_real(x);
  ASSERT_EQ(spec.size(), n);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_LT(std::abs(spec[k] - expected[k]), 1e-9)
        << "n=" << n << " bin " << k;
}

// Even sizes use the half-size packing trick; odd and prime sizes take the
// complex fallback; 2 and 6 exercise the tiny half-plans.
INSTANTIATE_TEST_SUITE_P(Sizes, RealFftAgainstDft,
                         ::testing::Values(1, 2, 3, 5, 6, 8, 10, 17, 34, 64,
                                           101, 128, 202, 256));

TEST(RealFft, MatchesComplexPath) {
  Xoshiro256 rng(9);
  const auto x = psdacc::gaussian_signal(64, rng);
  const auto spec = psdacc::dsp::fft_real(x);
  std::vector<cplx> ref(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) ref[i] = cplx(x[i], 0.0);
  psdacc::dsp::fft(ref);
  EXPECT_LT(max_abs_diff(spec, ref), 1e-10);
}

TEST(RealFft, ZeroPadsToRequestedLength) {
  const std::vector<double> x{1.0, 2.0, 3.0};
  const auto spec = psdacc::dsp::fft_real(x, 8);
  ASSERT_EQ(spec.size(), 8u);
  // DC bin equals the sum of samples.
  EXPECT_NEAR(spec[0].real(), 6.0, 1e-12);
  EXPECT_NEAR(spec[0].imag(), 0.0, 1e-12);
}

TEST(RealFft, ConjugateSymmetryForRealInput) {
  Xoshiro256 rng(10);
  const auto x = psdacc::gaussian_signal(32, rng);
  const auto spec = psdacc::dsp::fft_real(x);
  for (std::size_t k = 1; k < x.size(); ++k) {
    EXPECT_NEAR(spec[k].real(), spec[x.size() - k].real(), 1e-10);
    EXPECT_NEAR(spec[k].imag(), -spec[x.size() - k].imag(), 1e-10);
  }
}

TEST(RealFft, IfftRealRoundTrip) {
  Xoshiro256 rng(11);
  const auto x = psdacc::gaussian_signal(48, rng);
  const auto spec = psdacc::dsp::fft_real(x);
  const auto back = psdacc::dsp::ifft_real(spec);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back[i], x[i], 1e-10);
}

// ---------------------------------------------------------------------------
// The bounded thread-local plan cache
// ---------------------------------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  static psdacc::dsp::PlanCache& cache() {
    return psdacc::dsp::PlanCache::instance();
  }

  void SetUp() override {
    saved_capacity_ = cache().capacity();
    cache().clear();
  }
  void TearDown() override {
    cache().set_capacity(saved_capacity_);
    cache().clear();
  }

 private:
  std::size_t saved_capacity_ = 0;
};

TEST_F(PlanCacheTest, CapacityClampsToAtLeastOne) {
  cache().set_capacity(0);
  EXPECT_EQ(cache().capacity(), 1u);
  psdacc::dsp::plan_for(8);
  EXPECT_LE(cache().size(), 1u);
}

TEST_F(PlanCacheTest, SizeStaysUnderCapAcrossManySizes) {
  cache().set_capacity(4);
  // Mix of radix-2 and Bluestein sizes; the latter recursively insert
  // their convolution and rfft-half sub-plans, so this also exercises
  // eviction during construction.
  for (const std::size_t n :
       {8u, 16u, 5u, 100u, 31u, 64u, 7u, 128u, 48u, 1000u}) {
    psdacc::dsp::plan_for(n);
    EXPECT_LE(cache().size(), 4u) << "after size " << n;
  }
}

TEST_F(PlanCacheTest, EvictsLeastRecentlyUsedFirst) {
  cache().set_capacity(2);
  const auto p1 = cache().handle(1);
  const auto p2 = cache().handle(2);
  cache().handle(2);  // size 1 is now the LRU entry
  // Size 4's constructor touches its half-plan (size 2) and the insert of
  // 4 overflows the cap, so the victim must be size 1.
  cache().handle(4);
  EXPECT_EQ(cache().handle(2).get(), p2.get())
      << "recently used plan was evicted";
  EXPECT_NE(cache().handle(1).get(), p1.get())
      << "LRU plan survived eviction";
}

TEST_F(PlanCacheTest, ShrinkingCapacityEvictsImmediately) {
  cache().set_capacity(16);
  for (const std::size_t n : {8u, 16u, 32u, 64u}) psdacc::dsp::plan_for(n);
  EXPECT_GE(cache().size(), 4u);
  cache().set_capacity(2);
  EXPECT_LE(cache().size(), 2u);
}

TEST_F(PlanCacheTest, EvictedHoldersStayValidAndCorrect) {
  cache().set_capacity(1);
  // The handle co-owns the whole sub-plan chain (Bluestein convolution,
  // rfft halves), so a capacity-1 storm of other sizes must not invalidate
  // it.
  const auto held = cache().handle(24);
  for (const std::size_t n : {7u, 256u, 13u, 100u})
    psdacc::dsp::plan_for(n);
  EXPECT_LE(cache().size(), 1u);

  Xoshiro256 rng(21);
  const auto x = psdacc::gaussian_signal(24, rng);
  std::vector<cplx> via_plan;
  held->rfft(x, via_plan);
  std::vector<cplx> reference(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    reference[i] = cplx(x[i], 0.0);
  psdacc::dsp::fft(reference);
  ASSERT_EQ(via_plan.size(), reference.size());
  EXPECT_LT(max_abs_diff(via_plan, reference), 1e-10);
}

TEST_F(PlanCacheTest, ReRequestAfterEvictionIsCorrect) {
  cache().set_capacity(1);
  psdacc::dsp::plan_for(48);
  psdacc::dsp::plan_for(512);  // evicts 48
  auto x = random_signal(48, 31);
  auto reference = x;
  psdacc::dsp::fft(reference);
  psdacc::dsp::plan_for(48).forward(x);  // rebuilt plan
  EXPECT_LT(max_abs_diff(x, reference), 1e-10);
}

// The deprecated free-function spellings must keep forwarding to the same
// thread-local cache until they are removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST_F(PlanCacheTest, DeprecatedForwardersReachTheSameCache) {
  psdacc::dsp::set_plan_cache_capacity(3);
  EXPECT_EQ(cache().capacity(), 3u);
  EXPECT_EQ(psdacc::dsp::plan_cache_capacity(), 3u);

  const auto via_forwarder = psdacc::dsp::plan_handle_for(16);
  EXPECT_EQ(via_forwarder.get(), cache().handle(16).get());
  EXPECT_EQ(psdacc::dsp::plan_cache_size(), cache().size());

  psdacc::dsp::clear_plan_cache();
  EXPECT_EQ(cache().size(), 0u);
}
#pragma GCC diagnostic pop

}  // namespace
