// Incremental (delta) evaluation layer: graph revision counters and the
// downstream-cone query, randomized incremental-vs-full parity across every
// engine kind that supports delta on SISO, multirate, and reconvergent
// topologies, honest capability reporting with full-evaluation fallback,
// and the cache-warm contracts (revision-keyed power memo, hoisted range
// analysis) asserted through the probe-counter hooks.
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/accuracy_engine.hpp"
#include "core/range_analysis.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using core::EngineKind;

// --- Graph revision counters and the downstream cone -----------------------

TEST(GraphRevision, StructuralEditsBumpTopologyAndGraphRevision) {
  sfg::Graph g;
  const auto r0 = g.revision();
  const auto t0 = g.topology_revision();
  const auto in = g.add_input();
  EXPECT_GT(g.revision(), r0);
  EXPECT_GT(g.topology_revision(), t0);
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  g.add_output(q);
  EXPECT_EQ(g.node_revision(q), 0u);
}

std::vector<sfg::NodeId> cone_ids(const sfg::Graph& g, sfg::NodeId v) {
  const auto cone = g.downstream_cone(v);
  return {cone.begin(), cone.end()};
}

TEST(GraphRevision, FormatEditBumpsNodeAndGraphRevisionOnly) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  g.add_output(q);
  const auto r0 = g.revision();
  const auto t0 = g.topology_revision();
  const auto p0 = g.propagation_revision();
  const auto n0 = g.node_revision(q);
  g.set_format(q, fxp::q_format(4, 10));
  EXPECT_EQ(g.revision(), r0 + 1);
  EXPECT_EQ(g.node_revision(q), n0 + 1);
  EXPECT_EQ(g.topology_revision(), t0);
  // A format edit rescales one source's injection but never alters a
  // transfer function, so propagation-keyed caches stay warm.
  EXPECT_EQ(g.propagation_revision(), p0);
  // Const access never bumps.
  std::as_const(g).node(q);
  EXPECT_EQ(g.revision(), r0 + 1);
}

TEST(GraphRevision, PayloadEditBumpsPropagationButNotTopology) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto gain = g.add_gain(in, 1.0);
  g.add_output(gain);
  const auto t0 = g.topology_revision();
  const auto p0 = g.propagation_revision();
  g.set_payload(gain, sfg::GainNode{2.0});
  EXPECT_EQ(g.topology_revision(), t0);
  EXPECT_GT(g.propagation_revision(), p0);
}

TEST(DownstreamCone, CoversExactlyTheReachableSetOnReconvergence) {
  // in -> q -> {left, right} -> add -> out, plus a dead-end gain off `in`.
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto left = g.add_gain(q, 0.5);
  const auto right = g.add_delay(q, 2);
  const auto add = g.add_adder({left, right});
  const auto out = g.add_output(add);
  const auto side = g.add_gain(in, 2.0);  // not downstream of q

  EXPECT_EQ(cone_ids(g, q),
            (std::vector<sfg::NodeId>{q, left, right, add, out}));
  EXPECT_EQ(cone_ids(g, side), (std::vector<sfg::NodeId>{side}));
  // Memoized: the same bitset row backs the view while the topology is
  // unchanged, and format edits do not invalidate it.
  const auto* first = g.downstream_cone(q).words().data();
  g.set_format(q, fxp::q_format(4, 10));
  EXPECT_EQ(g.downstream_cone(q).words().data(), first);
}

TEST(DownstreamCone, TopologyEditsInvalidateTheMemo) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto add = g.add_adder({q});
  g.add_output(add);
  ASSERT_EQ(g.downstream_cone(in).size(), 4u);

  // New branch into the adder: `side` must appear in in's cone afterwards.
  const auto side = g.add_gain(in, 0.25);
  g.add_adder_input(add, side);
  const auto cone = g.downstream_cone(in);
  EXPECT_TRUE(cone.contains(side));
  EXPECT_EQ(cone.size(), 5u);
}

// --- Randomized incremental-vs-full parity ---------------------------------

// Random LTI block, as in test_random_graphs.
filt::TransferFunction random_block(Xoshiro256& rng) {
  switch (rng.below(4)) {
    case 0:
      return filt::TransferFunction(filt::fir_lowpass(
          9 + 2 * rng.below(12), rng.uniform(0.08, 0.4)));
    case 1:
      return filt::iir_lowpass(filt::IirFamily::kButterworth,
                               2 + static_cast<int>(rng.below(3)),
                               rng.uniform(0.1, 0.35));
    case 2:
      return filt::iir_highpass(filt::IirFamily::kChebyshev1, 2,
                                rng.uniform(0.1, 0.3));
    default:
      return filt::TransferFunction::gain(rng.uniform(0.3, 1.5));
  }
}

enum class Topology { kSiso, kReconvergent, kMultirate };

// Random acyclic SFG of the requested family. Truncation rounding on
// purpose: nonzero source means exercise the coherent-mean bookkeeping of
// the decomposition, which round-nearest (mean 0) would leave untested.
sfg::Graph random_graph(Topology topology, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const auto bits = [&](int base) {
    return base + static_cast<int>(rng.below(4));
  };
  const auto fmt = [](int d) {
    return fxp::q_format(5, d, fxp::RoundingMode::kTruncate);
  };
  sfg::Graph g;
  const auto in = g.add_input();
  sfg::NodeId head = g.add_quantizer(in, fmt(bits(10)));
  const int stages = 3 + static_cast<int>(rng.below(3));
  for (int stage = 0; stage < stages; ++stage) {
    switch (rng.below(4)) {
      case 0:
        if (topology == Topology::kReconvergent) {
          const auto left =
              g.add_block(head, random_block(rng), fmt(bits(11)));
          const auto right =
              g.add_block(g.add_delay(head, 1 + rng.below(4)),
                          random_block(rng), fmt(bits(11)));
          head = g.add_adder({left, right});
          break;
        }
        [[fallthrough]];
      case 1:
        head = g.add_block(head, random_block(rng), fmt(bits(11)));
        break;
      case 2:
        if (topology == Topology::kMultirate) {
          // Downsample only: expanders break the decomposition and are
          // gated off (covered by CapabilityHonesty below).
          head = g.add_downsample(head, 2);
          break;
        }
        head = g.add_gain(head, rng.uniform(0.4, 1.3));
        break;
      default:
        head = g.add_quantizer(head, fmt(bits(9)));
        break;
    }
  }
  g.add_output(head);
  g.validate();
  return g;
}

core::EngineOptions small_options() {
  core::EngineOptions opts;
  opts.n_psd = 128;
  return opts;
}

// For every engine kind that reports delta support on the graph: probing
// any source at any candidate format through evaluate_delta must equal
// applying the format and fully re-evaluating, to 1e-12 (relative).
void expect_delta_matches_full(const sfg::Graph& g, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (const EngineKind kind : core::kAllEngineKinds) {
    if (!core::engine_supports(kind, g)) continue;
    if (kind == EngineKind::kSimulation) continue;  // delta == false always
    const auto engine = core::make_engine(kind, g, small_options());
    if (!engine->capabilities().delta) continue;
    for (const sfg::NodeId src : g.noise_sources()) {
      const int bits = 6 + static_cast<int>(rng.below(12));
      // Truncation: a nonzero mean exercises the coherent-mean terms.
      const auto format =
          fxp::q_format(5, bits, fxp::RoundingMode::kTruncate);
      const double delta = engine->evaluate_delta(src, format);

      // Reference: a private copy with the format actually applied (same
      // moments evaluate_delta hypothesizes), fully re-evaluated fresh.
      sfg::Graph applied = g;
      applied.set_format(src, format);
      const double full = core::make_engine(kind, applied, small_options())
                              ->output_noise_power();
      EXPECT_NEAR(delta, full, 1e-12 * std::max(std::abs(full), 1e-30))
          << core::to_string(kind) << " src=" << src << " bits=" << bits
          << " seed=" << seed;
    }
  }
}

class IncrementalParity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalParity, SisoChains) {
  expect_delta_matches_full(random_graph(Topology::kSiso, GetParam()),
                            GetParam());
}

TEST_P(IncrementalParity, ReconvergentGraphs) {
  expect_delta_matches_full(
      random_graph(Topology::kReconvergent, GetParam()), GetParam());
}

TEST_P(IncrementalParity, MultirateGraphs) {
  expect_delta_matches_full(random_graph(Topology::kMultirate, GetParam()),
                            GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalParity,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(IncrementalParity, DeltaTracksBaselineMutationsIncrementally) {
  // Mutate one source at a time between delta probes: the cache must
  // re-derive exactly the moved contribution and stay in lockstep with
  // full evaluation throughout.
  auto g = random_graph(Topology::kReconvergent, 4242);
  const auto engine =
      core::make_engine(EngineKind::kPsd, g, small_options());
  ASSERT_TRUE(engine->capabilities().delta);
  const auto sources = g.noise_sources();
  int bits = 8;
  for (const sfg::NodeId src : sources) {
    const auto format = fxp::q_format(5, bits++,
                                      fxp::RoundingMode::kTruncate);
    g.set_format(src, format);  // bumps src's revision
    const sfg::NodeId probe = sources.front();
    const double current_format_delta = engine->evaluate_delta(
        probe, std::get_if<sfg::QuantizerNode>(
                   &std::as_const(g).node(probe).payload)
                   ->format);
    const double full = engine->output_noise_power();
    EXPECT_NEAR(current_format_delta, full, 1e-12 * full);
  }
}

TEST(IncrementalParity, NonSourceCoefficientEditsInvalidateUnitResponses) {
  // Retuning a non-source node (a gain) through set_payload changes the
  // propagation the cached unit responses were
  // derived from: the cache must drop and rebuild them, keeping
  // evaluate_delta in lockstep with full evaluation (regression: a stale
  // cache silently returned the pre-edit value).
  for (const EngineKind kind :
       {EngineKind::kPsd, EngineKind::kMoment, EngineKind::kFlat}) {
    sfg::Graph g;
    const auto in = g.add_input();
    const auto format =
        fxp::q_format(4, 10, fxp::RoundingMode::kTruncate);
    const auto q = g.add_quantizer(in, format);
    const auto gain = g.add_gain(q, 1.0);
    g.add_output(gain);

    const auto engine = core::make_engine(kind, g, small_options());
    ASSERT_TRUE(engine->capabilities().delta);
    const double before = engine->evaluate_delta(q, format);
    EXPECT_NEAR(before, engine->output_noise_power(),
                1e-12 * before);

    g.set_payload(gain, sfg::GainNode{2.0});
    const double full = engine->output_noise_power();
    EXPECT_NEAR(full, 4.0 * before, 1e-9 * full);  // power scales by g^2
    EXPECT_NEAR(engine->evaluate_delta(q, format), full, 1e-12 * full)
        << core::to_string(kind)
        << ": stale unit responses survived a gain edit";
  }
}

// --- Capability honesty and fallback ---------------------------------------

TEST(CapabilityHonesty, SimulationEngineReportsNoDeltaAndThrows) {
  const auto g = random_graph(Topology::kSiso, 7);
  const auto engine = core::make_engine(EngineKind::kSimulation, g, [] {
    auto o = core::EngineOptions{};
    o.sim_samples = 1u << 10;
    o.sim_discard = 64;
    return o;
  }());
  EXPECT_FALSE(engine->capabilities().delta);
  EXPECT_THROW(
      engine->evaluate_delta(g.noise_sources().front(), fxp::q_format(4, 8)),
      std::logic_error);
}

sfg::Graph upsampler_graph() {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(
      in, fxp::q_format(4, 10, fxp::RoundingMode::kTruncate));
  const auto up = g.add_upsample(q, 2);
  const auto lp = g.add_block(
      up, filt::TransferFunction(filt::fir_lowpass(16, 0.2)),
      fxp::q_format(4, 10, fxp::RoundingMode::kTruncate));
  g.add_output(lp);
  return g;
}

TEST(CapabilityHonesty, PsdEngineGatesDeltaOffForUpsamplers) {
  // Zero-stuffing folds (mean/L)^2 of the *total* mean into the bins —
  // quadratic, so per-source contributions no longer add and the engine
  // must refuse rather than be subtly wrong.
  const auto g = upsampler_graph();
  const auto engine = core::make_engine(EngineKind::kPsd, g, small_options());
  EXPECT_FALSE(engine->capabilities().delta);
  EXPECT_THROW(
      engine->evaluate_delta(g.noise_sources().front(), fxp::q_format(4, 8)),
      std::logic_error);
}

TEST(CapabilityHonesty, MomentEngineGatesDeltaOnMultirateRules) {
  const auto g = upsampler_graph();
  auto opts = small_options();
  opts.blind_multirate = true;  // expander transparent: decomposition exact
  EXPECT_TRUE(core::make_engine(EngineKind::kMoment, g, opts)
                  ->capabilities()
                  .delta);
  opts.blind_multirate = false;  // corrected rule: quadratic in total mean
  EXPECT_FALSE(core::make_engine(EngineKind::kMoment, g, opts)
                   ->capabilities()
                   .delta);
}

TEST(CapabilityHonesty, OptimizerFallsBackToFullProbesAndMatches) {
  // psd engine on an upsampler graph: capabilities().delta == false, so
  // cfg.incremental = true silently takes the full-probe path and must
  // land on the identical result.
  auto make_cfg = [](bool incremental) {
    opt::OptimizerConfig cfg;
    cfg.noise_budget = 2e-6;
    cfg.min_bits = 4;
    cfg.max_bits = 18;
    cfg.n_psd = 128;
    cfg.incremental = incremental;
    return cfg;
  };
  auto g_full = upsampler_graph();
  opt::WordlengthOptimizer full(g_full, g_full.noise_sources(),
                                make_cfg(false));
  const auto r_full = full.greedy_descent();

  auto g_delta = upsampler_graph();
  opt::WordlengthOptimizer fallback(g_delta, g_delta.noise_sources(),
                                    make_cfg(true));
  EXPECT_FALSE(fallback.engine().capabilities().delta);
  const auto r_fallback = fallback.greedy_descent();
  EXPECT_EQ(r_full.bits, r_fallback.bits);
  EXPECT_EQ(r_full.noise, r_fallback.noise);  // bitwise
  EXPECT_EQ(r_full.evaluations, r_fallback.evaluations);
}

// --- Incremental vs full search equivalence --------------------------------

sfg::Graph optimizer_chain() {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto b1 = g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.2),
      fxp::q_format(4, 12));
  const auto b2 = g.add_block(
      b1, filt::TransferFunction(filt::fir_highpass(31, 0.05)),
      fxp::q_format(4, 12));
  g.add_output(b2);
  return g;
}

TEST(IncrementalSearch, DeltaAndFullProbesFindIdenticalWordlengths) {
  for (const EngineKind kind :
       {EngineKind::kPsd, EngineKind::kMoment, EngineKind::kFlat}) {
    for (const bool greedy : {true, false}) {
      opt::OptimizerConfig cfg;
      cfg.noise_budget = 1e-6;
      cfg.min_bits = 4;
      cfg.max_bits = 20;
      cfg.n_psd = 256;
      cfg.engine = kind;

      cfg.incremental = false;
      auto g_full = optimizer_chain();
      opt::WordlengthOptimizer full(g_full, g_full.noise_sources(), cfg);
      const auto r_full = greedy ? full.greedy_descent() : full.min_plus_one();

      cfg.incremental = true;
      auto g_delta = optimizer_chain();
      opt::WordlengthOptimizer delta(g_delta, g_delta.noise_sources(), cfg);
      EXPECT_TRUE(delta.engine().capabilities().delta);
      const auto r_delta =
          greedy ? delta.greedy_descent() : delta.min_plus_one();

      EXPECT_EQ(r_full.bits, r_delta.bits)
          << core::to_string(kind) << (greedy ? " greedy" : " min+1");
      EXPECT_EQ(r_full.noise, r_delta.noise);  // bitwise: same final apply
      EXPECT_EQ(r_full.evaluations, r_delta.evaluations);
      // The probes really took the delta path.
      EXPECT_GT(delta.probe_counters().delta, 0u);
      EXPECT_EQ(full.probe_counters().delta, 0u);
    }
  }
}

// --- Cache-warm contracts (probe-counter hooks) ----------------------------

TEST(CacheWarm, RepeatedEvaluateOnUnchangedGraphHitsThePowerMemo) {
  for (const EngineKind kind :
       {EngineKind::kPsd, EngineKind::kMoment, EngineKind::kFlat}) {
    auto g = optimizer_chain();
    opt::OptimizerConfig cfg;
    cfg.noise_budget = 1e-6;
    cfg.n_psd = 128;
    cfg.engine = kind;
    opt::WordlengthOptimizer optimizer(g, g.noise_sources(), cfg);
    const double first = optimizer.evaluate();
    const auto after_first = optimizer.engine().eval_counters();
    const double second = optimizer.evaluate();
    const double third = optimizer.evaluate();
    const auto after_third = optimizer.engine().eval_counters();
    EXPECT_EQ(first, second);  // bitwise
    EXPECT_EQ(first, third);
    EXPECT_EQ(after_third.full, after_first.full)
        << core::to_string(kind) << ": unchanged graph must not re-analyze";
    EXPECT_EQ(after_third.cached, after_first.cached + 2);
    // A real change invalidates the memo.
    optimizer.apply(std::vector<int>(g.noise_sources().size(), 9));
    optimizer.evaluate();
    EXPECT_EQ(optimizer.engine().eval_counters().full, after_first.full + 1);
  }
}

TEST(CacheWarm, RangeAnalysisIsHoistedBehindTheTopologyRevision) {
  auto g = optimizer_chain();
  opt::OptimizerConfig cfg;
  cfg.noise_budget = 1e-6;
  cfg.n_psd = 128;
  cfg.input_range = core::Range{-0.9, 0.9};
  const auto calls_before = core::analyze_ranges_calls();
  opt::WordlengthOptimizer optimizer(g, g.noise_sources(), cfg);
  EXPECT_EQ(core::analyze_ranges_calls(), calls_before + 1);
  optimizer.evaluate();
  optimizer.evaluate();
  optimizer.apply({10, 12, 14});
  optimizer.evaluate();
  const auto r = optimizer.greedy_descent();
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(core::analyze_ranges_calls(), calls_before + 1)
      << "range analysis must run once per topology, not per evaluate()";
  // The analysis actually sized the variables' integer bits.
  for (const sfg::NodeId id : g.noise_sources()) {
    const sfg::NodeView node = g.node(id);
    const auto format =
        std::holds_alternative<sfg::QuantizerNode>(node.payload)
            ? std::get<sfg::QuantizerNode>(node.payload).format
            : *std::get<sfg::BlockNode>(node.payload).output_format;
    EXPECT_GE(format.integer_bits, 1);
  }
}

}  // namespace
