// NoiseSpectrum invariants: power bookkeeping through every transformation
// the propagation engine applies (Eq. 10/11/14 + multirate rules).
#include <cmath>

#include <gtest/gtest.h>

#include "core/noise_spectrum.hpp"
#include "filters/iir_design.hpp"

namespace {

using psdacc::core::NoiseSpectrum;
using psdacc::fxp::NoiseMoments;

TEST(Construction, ZeroSpectrum) {
  NoiseSpectrum s(64);
  EXPECT_EQ(s.size(), 64u);
  EXPECT_DOUBLE_EQ(s.power(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Construction, WhiteSpectrumPowerExact) {
  const NoiseMoments m{-0.002, 3.5e-6};
  NoiseSpectrum s(128, m);
  EXPECT_NEAR(s.variance(), m.variance, 1e-18);
  EXPECT_NEAR(s.power(), m.power(), 1e-18);
  EXPECT_DOUBLE_EQ(s.mean(), m.mean);
  // Flat bins.
  for (std::size_t k = 0; k < s.size(); ++k)
    EXPECT_DOUBLE_EQ(s.bin(k), m.variance / 128.0);
}

TEST(Addition, UncorrelatedAddsBinsAndMeansCoherently) {
  NoiseSpectrum a(32, NoiseMoments{0.1, 1.0});
  const NoiseSpectrum b(32, NoiseMoments{-0.04, 2.0});
  a.add_uncorrelated(b);
  EXPECT_NEAR(a.variance(), 3.0, 1e-12);
  EXPECT_NEAR(a.mean(), 0.06, 1e-12);
  // Negative sign flips the added mean but not the power.
  NoiseSpectrum c(32, NoiseMoments{0.1, 1.0});
  c.add_uncorrelated(b, -1.0);
  EXPECT_NEAR(c.mean(), 0.14, 1e-12);
  EXPECT_NEAR(c.variance(), 3.0, 1e-12);
}

TEST(Response, AllpassPreservesPower) {
  NoiseSpectrum s(64, NoiseMoments{0.01, 1.0});
  const std::vector<double> allpass(64, 1.0);
  s.apply_power_response(allpass, 1.0);
  EXPECT_NEAR(s.power(), 1.0 + 1e-4, 1e-12);
}

TEST(Response, GainScalesPowerQuadratically) {
  NoiseSpectrum s(64, NoiseMoments{0.5, 2.0});
  s.apply_gain(-3.0);
  EXPECT_NEAR(s.variance(), 18.0, 1e-12);
  EXPECT_NEAR(s.mean(), -1.5, 1e-12);
}

TEST(Response, FilterShapesSpectrum) {
  const auto tf =
      psdacc::filt::iir_lowpass(psdacc::filt::IirFamily::kButterworth, 4,
                                0.1);
  NoiseSpectrum s(256, NoiseMoments{0.0, 1.0});
  s.apply_power_response(tf.power_response_grid(256), tf.dc_gain());
  // Low-pass: low bins keep power, high bins lose it.
  EXPECT_GT(s.bin(2), 100.0 * s.bin(128));
  // Total variance equals the filter's noise power gain for white input.
  EXPECT_NEAR(s.variance(), tf.power_gain(8192), 1e-3);
}

TEST(Decimate, WhiteNoisePowerPreserved) {
  for (std::size_t m : {2u, 3u, 4u}) {
    NoiseSpectrum s(120, NoiseMoments{0.02, 1.0});
    s.decimate(m);
    EXPECT_NEAR(s.variance(), 1.0, 1e-9) << "factor " << m;
    EXPECT_DOUBLE_EQ(s.mean(), 0.02);
  }
}

TEST(Decimate, ShapedSpectrumPowerPreserved) {
  const auto tf =
      psdacc::filt::iir_lowpass(psdacc::filt::IirFamily::kButterworth, 3,
                                0.15);
  NoiseSpectrum s(256, NoiseMoments{0.0, 1.0});
  s.apply_power_response(tf.power_response_grid(256), tf.dc_gain());
  const double before = s.variance();
  s.decimate(2);
  EXPECT_NEAR(s.variance(), before, 1e-6 + 1e-3 * before);
}

TEST(Decimate, LowpassHalfBandFoldsFlat) {
  // An ideal half-band low-pass spectrum folds back to (roughly) flat after
  // 2:1 decimation.
  NoiseSpectrum s(64);
  for (std::size_t k = 0; k < 64; ++k) {
    const double f = static_cast<double>(k) / 64.0;
    const bool in_band = f < 0.25 || f > 0.75;
    s.bin(k) = in_band ? 1.0 : 0.0;
  }
  s.decimate(2);
  // All power now spread over the full band at half the density. Bins
  // adjacent to the brick-wall transitions (k near 32) see interpolation
  // edge effects and are excluded.
  for (std::size_t k = 1; k < 63; ++k) {
    if (k >= 30 && k <= 34) continue;
    EXPECT_NEAR(s.bin(k), 0.5, 0.26) << "bin " << k;
  }
  // Power is preserved overall (31 bins carried 1.0 before decimation).
  EXPECT_NEAR(s.variance(), 31.0, 0.5);
}

TEST(Expand, WhitePowerDividesByFactor) {
  NoiseSpectrum s(64, NoiseMoments{0.0, 1.0});
  s.expand(2);
  EXPECT_NEAR(s.variance(), 0.5, 1e-12);
}

TEST(Expand, MeanSplitsIntoDcAndImageLine) {
  const double mu = 0.3;
  NoiseSpectrum s(64, NoiseMoments{mu, 0.0});
  s.expand(2);
  EXPECT_NEAR(s.mean(), mu / 2.0, 1e-15);
  // Image line at Nyquist bin with power (mu/2)^2.
  EXPECT_NEAR(s.bin(32), (mu / 2.0) * (mu / 2.0), 1e-15);
  // Total power mu^2/2 (zero-insertion halves the power of the pattern).
  EXPECT_NEAR(s.power(), mu * mu / 2.0, 1e-15);
}

TEST(Expand, SpectrumCompression) {
  // Put all power in bin 4 of 64; expansion by 2 maps images to bins that
  // satisfy 2k mod 64 == 4, i.e. k = 2 and k = 34.
  NoiseSpectrum s(64);
  s.bin(4) = 1.0;
  s.expand(2);
  EXPECT_NEAR(s.bin(2), 0.5, 1e-15);
  EXPECT_NEAR(s.bin(34), 0.5, 1e-15);
  EXPECT_NEAR(s.variance(), 1.0, 1e-12);
}

TEST(DecimateExpand, RoundTripWhiteNoiseHalvesPower) {
  // down2 then up2 on white noise: power sigma^2 -> sigma^2 -> sigma^2/2,
  // matching zeroing half the samples.
  NoiseSpectrum s(64, NoiseMoments{0.0, 1.0});
  s.decimate(2);
  s.expand(2);
  EXPECT_NEAR(s.variance(), 0.5, 1e-9);
}

TEST(Resample, PreservesVarianceAcrossBinCounts) {
  const auto tf =
      psdacc::filt::iir_lowpass(psdacc::filt::IirFamily::kChebyshev1, 3,
                                0.2);
  NoiseSpectrum s(512, NoiseMoments{0.01, 1.0});
  s.apply_power_response(tf.power_response_grid(512), tf.dc_gain());
  const double var = s.variance();
  for (std::size_t n : {64u, 128u, 1024u}) {
    const auto r = s.resampled(n);
    EXPECT_EQ(r.size(), n);
    EXPECT_NEAR(r.variance(), var, 0.02 * var) << "n=" << n;
    EXPECT_DOUBLE_EQ(r.mean(), s.mean());
  }
}

TEST(Interp, NearestAndLinearAgreeOnSmoothSpectra) {
  NoiseSpectrum a(128, NoiseMoments{0.0, 1.0});
  NoiseSpectrum b = a;
  a.decimate(2, NoiseSpectrum::Interp::kLinear);
  b.decimate(2, NoiseSpectrum::Interp::kNearest);
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_NEAR(a.bin(k), b.bin(k), 1e-12);
}

}  // namespace
