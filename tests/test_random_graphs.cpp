// Randomized property tests: on randomly generated single-rate LTI SFGs,
// (1) the flat analyzer must match Monte-Carlo simulation (it is exact up
// to PQN assumptions), (2) the hierarchical PSD method must stay within
// the one-bit band of simulation, and (3) all engines must agree on
// graphs without reconvergence. Also covers DOT export on arbitrary
// graphs.
#include <cmath>

#include <gtest/gtest.h>

#include "core/flat_analyzer.hpp"
#include "core/metrics.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "sfg/dot.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using sfg::Graph;
using sfg::NodeId;

// Random LTI block from a small design zoo.
filt::TransferFunction random_block(Xoshiro256& rng) {
  switch (rng.below(5)) {
    case 0:
      return filt::TransferFunction(
          filt::fir_lowpass(9 + 2 * rng.below(20),
                            rng.uniform(0.08, 0.4)));
    case 1:
      return filt::TransferFunction(
          filt::fir_highpass(9 + 2 * rng.below(20),
                             rng.uniform(0.08, 0.4)));
    case 2:
      return filt::iir_lowpass(filt::IirFamily::kButterworth,
                               2 + static_cast<int>(rng.below(4)),
                               rng.uniform(0.1, 0.35));
    case 3:
      return filt::iir_highpass(filt::IirFamily::kChebyshev1,
                                2 + static_cast<int>(rng.below(3)),
                                rng.uniform(0.1, 0.3));
    default:
      return filt::TransferFunction::gain(rng.uniform(0.3, 1.5));
  }
}

// Builds a random acyclic single-rate SFG: a trunk of quantized blocks
// with occasional two-branch fan-out/fan-in (distinct sources per branch,
// so Eq. 14 is applicable) and delays.
Graph random_graph(std::uint64_t seed, int depth) {
  Xoshiro256 rng(seed);
  Graph g;
  const auto in = g.add_input();
  NodeId head = g.add_quantizer(in, fxp::q_format(5, 12));
  for (int stage = 0; stage < depth; ++stage) {
    const auto choice = rng.below(4);
    if (choice == 0) {
      // Branch: two differently-filtered quantized paths, re-joined. The
      // common upstream noise reconverges with a decorrelating delay.
      const auto left = g.add_block(head, random_block(rng),
                                    fxp::q_format(5, 12));
      const auto right_d = g.add_delay(head, 1 + rng.below(8));
      const auto right = g.add_block(right_d, random_block(rng),
                                     fxp::q_format(5, 12));
      head = g.add_adder({left, right});
    } else if (choice == 1) {
      head = g.add_gain(head, rng.uniform(0.4, 1.2));
    } else if (choice == 2) {
      head = g.add_delay(head, 1 + rng.below(4));
    } else {
      head = g.add_block(head, random_block(rng), fxp::q_format(5, 12));
    }
  }
  g.add_output(head);
  g.validate();
  return g;
}

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomGraphProperty, FlatMatchesSimulation) {
  const auto g = random_graph(GetParam(), 5);
  const core::FlatAnalyzer flat(g, 512);
  const double est = flat.output_noise_power();

  Xoshiro256 rng(GetParam() + 999);
  const auto x = uniform_signal(1u << 16, 0.4, rng);
  const double simulated = sim::measure_output_error(g, x, 512).power;
  const double ed = core::mse_deviation(simulated, est);
  EXPECT_LT(std::abs(ed), 0.35) << "seed=" << GetParam() << " E_d=" << ed;
}

TEST_P(RandomGraphProperty, HierarchicalPsdWithinOneBitOfSimulation) {
  const auto g = random_graph(GetParam(), 6);
  const core::PsdAnalyzer psd(g, {.n_psd = 512});
  const double est = psd.output_noise_power();

  Xoshiro256 rng(GetParam() + 555);
  const auto x = uniform_signal(1u << 16, 0.4, rng);
  const double simulated = sim::measure_output_error(g, x, 512).power;
  const double ed = core::mse_deviation(simulated, est);
  EXPECT_TRUE(core::within_one_bit(ed))
      << "seed=" << GetParam() << " E_d=" << ed;
}

TEST_P(RandomGraphProperty, PsdNeverLessAccurateThanMomentByMuch) {
  // On random shaped-noise graphs the PSD estimate should compare
  // favourably to the blind baseline relative to the flat (exact) result.
  const auto g = random_graph(GetParam(), 6);
  const double exact = core::FlatAnalyzer(g, 1024).output_noise_power();
  const double psd =
      core::PsdAnalyzer(g, {.n_psd = 1024}).output_noise_power();
  const double mom = core::MomentAnalyzer(g).output_noise_power();
  const double psd_gap = std::abs(psd - exact) / exact;
  const double mom_gap = std::abs(mom - exact) / exact;
  EXPECT_LE(psd_gap, mom_gap + 0.02) << "seed=" << GetParam();
}

TEST_P(RandomGraphProperty, EnginesAgreeOnPureChains) {
  // Chains (no adders) have no reconvergence: flat and hierarchical PSD
  // must agree exactly.
  Xoshiro256 rng(GetParam());
  Graph g;
  const auto in = g.add_input();
  NodeId head = g.add_quantizer(in, fxp::q_format(5, 10));
  for (int i = 0; i < 4; ++i)
    head = g.add_block(head, random_block(rng), fxp::q_format(5, 10));
  g.add_output(head);
  const double flat = core::FlatAnalyzer(g, 256).output_noise_power();
  const double psd =
      core::PsdAnalyzer(g, {.n_psd = 256}).output_noise_power();
  EXPECT_NEAR(psd, flat, 1e-9 * flat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(DotExport, ContainsEveryNodeAndEdge) {
  const auto g = random_graph(123, 4);
  const auto dot = sfg::to_dot(g, "random");
  EXPECT_NE(dot.find("digraph \"random\""), std::string::npos);
  for (sfg::NodeId id = 0; id < g.node_count(); ++id) {
    std::string needle = "n";
    needle += std::to_string(id);
    needle += " [";
    EXPECT_NE(dot.find(needle), std::string::npos) << "node " << id;
  }
  // Count edges.
  std::size_t edges = 0;
  for (sfg::NodeId id = 0; id < g.node_count(); ++id)
    edges += g.node(id).inputs.size();
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1))
    ++arrows;
  EXPECT_EQ(arrows, edges);
}

TEST(DotExport, QuantizersAreDoubleCircles) {
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 8)));
  const auto dot = sfg::to_dot(g);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

}  // namespace
