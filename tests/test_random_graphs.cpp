// Randomized property tests: on randomly generated single-rate LTI SFGs,
// (1) the flat analyzer must match Monte-Carlo simulation (it is exact up
// to PQN assumptions), (2) the hierarchical PSD method must stay within
// the one-bit band of simulation, and (3) all engines must agree on
// graphs without reconvergence. Also covers DOT export on arbitrary
// graphs, including parser-hostile node names.
//
// The generator itself lives in the library (sfg/random_graph.hpp) so the
// serializer round-trip suite and the `psdacc-verify fuzz` differential
// fuzzer draw from the same population.
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/flat_analyzer.hpp"
#include "core/metrics.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "sfg/dot.hpp"
#include "sfg/random_graph.hpp"
#include "sim/error_measurement.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
using sfg::Graph;
using sfg::NodeId;

// The DOT tests inspect the whole document, so render the streaming API
// into a string.
std::string render_dot(const Graph& g, std::string_view title = "sfg") {
  std::ostringstream out;
  sfg::dot::to_dot(out, g, title);
  return out.str();
}

Graph random_graph(std::uint64_t seed, int depth) {
  return sfg::random_graph(seed, {.depth = depth});
}

class RandomGraphProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomGraphProperty, FlatMatchesSimulation) {
  const auto g = random_graph(GetParam(), 5);
  const core::FlatAnalyzer flat(g, 512);
  const double est = flat.output_noise_power();

  Xoshiro256 rng(GetParam() + 999);
  const auto x = uniform_signal(1u << 16, 0.4, rng);
  const double simulated = sim::measure_output_error(g, x, 512).power;
  const double ed = core::mse_deviation(simulated, est);
  EXPECT_LT(std::abs(ed), 0.35) << "seed=" << GetParam() << " E_d=" << ed;
}

TEST_P(RandomGraphProperty, HierarchicalPsdWithinOneBitOfSimulation) {
  const auto g = random_graph(GetParam(), 6);
  const core::PsdAnalyzer psd(g, {.n_psd = 512});
  const double est = psd.output_noise_power();

  Xoshiro256 rng(GetParam() + 555);
  const auto x = uniform_signal(1u << 16, 0.4, rng);
  const double simulated = sim::measure_output_error(g, x, 512).power;
  const double ed = core::mse_deviation(simulated, est);
  EXPECT_TRUE(core::within_one_bit(ed))
      << "seed=" << GetParam() << " E_d=" << ed;
}

TEST_P(RandomGraphProperty, PsdNeverLessAccurateThanMomentByMuch) {
  // On random shaped-noise graphs the PSD estimate should compare
  // favourably to the blind baseline relative to the flat (exact) result.
  const auto g = random_graph(GetParam(), 6);
  const double exact = core::FlatAnalyzer(g, 1024).output_noise_power();
  const double psd =
      core::PsdAnalyzer(g, {.n_psd = 1024}).output_noise_power();
  const double mom = core::MomentAnalyzer(g).output_noise_power();
  const double psd_gap = std::abs(psd - exact) / exact;
  const double mom_gap = std::abs(mom - exact) / exact;
  EXPECT_LE(psd_gap, mom_gap + 0.02) << "seed=" << GetParam();
}

TEST_P(RandomGraphProperty, EnginesAgreeOnPureChains) {
  // Chains (no adders) have no reconvergence: flat and hierarchical PSD
  // must agree exactly.
  Xoshiro256 rng(GetParam());
  Graph g;
  const auto in = g.add_input();
  NodeId head = g.add_quantizer(in, fxp::q_format(5, 10));
  for (int i = 0; i < 4; ++i)
    head = g.add_block(head, sfg::random_transfer_function(rng),
                       fxp::q_format(5, 10));
  g.add_output(head);
  const double flat = core::FlatAnalyzer(g, 256).output_noise_power();
  const double psd =
      core::PsdAnalyzer(g, {.n_psd = 256}).output_noise_power();
  EXPECT_NEAR(psd, flat, 1e-9 * flat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(DotExport, ContainsEveryNodeAndEdge) {
  const auto g = random_graph(123, 4);
  const auto dot = render_dot(g, "random");
  EXPECT_NE(dot.find("digraph \"random\""), std::string::npos);
  for (sfg::NodeId id = 0; id < g.node_count(); ++id) {
    std::string needle = "n";
    needle += std::to_string(id);
    needle += " [";
    EXPECT_NE(dot.find(needle), std::string::npos) << "node " << id;
  }
  // Count edges.
  std::size_t edges = 0;
  for (sfg::NodeId id = 0; id < g.node_count(); ++id)
    edges += g.node(id).inputs.size();
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1))
    ++arrows;
  EXPECT_EQ(arrows, edges);
}

TEST(DotExport, QuantizersAreDoubleCircles) {
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 8)));
  const auto dot = render_dot(g);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
}

// Regression: escape() used to handle only '"' and '\\', so a node name
// containing a newline emitted a raw line break inside a quoted DOT string
// (broken DOT). Newlines must come out as the \n line-break escape and
// other control characters must not survive raw.
TEST(DotExport, EscapesNewlinesAndControlCharacters) {
  sfg::Graph g;
  const auto in = g.add_input("line\nbreak");
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 8), "ctrl\x01\x7fname"),
               "cr\rname");
  const auto dot = render_dot(g, "title\nwith newline");

  // No raw control characters anywhere in the emitted document (the
  // structural '\n' line ends are fine; check inside quotes only by
  // scanning quoted spans).
  bool in_quotes = false;
  for (std::size_t i = 0; i < dot.size(); ++i) {
    const char c = dot[i];
    if (c == '"' && (i == 0 || dot[i - 1] != '\\')) in_quotes = !in_quotes;
    if (in_quotes) {
      EXPECT_NE(c, '\n') << "raw newline inside quoted string at " << i;
      EXPECT_NE(c, '\r') << "raw CR inside quoted string at " << i;
      EXPECT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != ' ')
          << "raw control char inside quoted string at " << i;
    }
  }
  EXPECT_FALSE(in_quotes) << "unbalanced quotes in DOT output";
  // The newline became a DOT \n escape.
  EXPECT_NE(dot.find("line\\nbreak"), std::string::npos);
  // Control characters render as visible \xHH text.
  EXPECT_NE(dot.find("\\\\x01"), std::string::npos);
  EXPECT_NE(dot.find("\\\\x7f"), std::string::npos);
}

TEST(DotExport, HostileRandomNamesStayQuoted) {
  for (const std::uint64_t seed : {7u, 17u, 27u, 37u}) {
    const auto g = sfg::random_graph(seed,
                                     {.depth = 4, .hostile_names = true});
    const auto dot = render_dot(g, "hostile");
    bool in_quotes = false;
    for (std::size_t i = 0; i < dot.size(); ++i) {
      const char c = dot[i];
      if (c == '"' && (i == 0 || dot[i - 1] != '\\')) in_quotes = !in_quotes;
      if (in_quotes) {
        ASSERT_FALSE(static_cast<unsigned char>(c) < 0x20 && c != ' ')
            << "seed=" << seed << " raw control char at " << i;
      }
    }
    ASSERT_FALSE(in_quotes) << "seed=" << seed;
  }
}

}  // namespace
