// Bit-exactness suite for dsp::kernels: every public entry point must
// produce bit-identical output to its kernels::scalar reference on the
// same inputs — that is the contract that lets the SIMD build share golden
// files, corpus hashes, and determinism tests with the scalar build.
//
// In a scalar build (PSDACC_SIMD=OFF) the public entry points *are* the
// scalar references, so the suite degenerates to self-consistency and
// still passes; in a SIMD build it exercises the vector main loops, the
// scalar tails (odd/prime/tail-heavy lengths), unaligned spans, and the
// quantizer's overflow/non-finite scalar-replay fallbacks.
#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/kernels.hpp"
#include "fixedpoint/format.hpp"
#include "fixedpoint/quantizer.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;
namespace kernels = dsp::kernels;
using cplx = std::complex<double>;

// Lengths chosen to hit: empty, single lane, sub-width, exactly one
// vector, one vector + tail, the 2x-unrolled main loop, prime lengths
// (maximal tails), and a large round size.
const std::size_t kLengths[] = {0,  1,  2,  3,  5,  7,  8,
                                13, 16, 31, 64, 97, 128, 1021};

// memcmp-exact comparison: distinguishes -0.0 from +0.0 and fails on any
// NaN payload difference, which EXPECT_DOUBLE_EQ would not.
void expect_bits_eq(std::span<const double> got,
                    std::span<const double> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << " lane " << i << ": got " << got[i] << " want "
        << want[i];
  }
}

void expect_bits_eq(std::span<const cplx> got, std::span<const cplx> want,
                    const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(cplx)), 0)
        << what << " bin " << i;
  }
}

std::vector<double> signal(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.gaussian();
  return x;
}

std::vector<cplx> csignal(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<cplx> x(n);
  for (auto& v : x) v = cplx(rng.gaussian(), rng.gaussian());
  return x;
}

TEST(Kernels, ReportsConsistentWidthAndIsa) {
  const std::size_t w = kernels::width();
  EXPECT_TRUE(w == 1 || w == 2 || w == 4 || w == 8) << w;
  if (w == 1) {
    EXPECT_EQ(kernels::active_isa(), "scalar");
  } else {
    EXPECT_EQ(kernels::active_isa(),
              w == 2 ? "vec128" : (w == 4 ? "vec256" : "vec512"));
  }
#ifdef PSDACC_SIMD_SCALAR
  EXPECT_EQ(w, 1u);
#endif
}

TEST(Kernels, FirMatchesScalarBitExactly) {
  for (const std::size_t taps : {1u, 2u, 3u, 8u, 24u, 33u}) {
    const auto b = signal(taps, 100 + taps);
    for (const std::size_t n : kLengths) {
      const auto x = signal(n, 7 * n + 1);
      std::vector<double> got, want;
      kernels::fir_apply(b, x, got);
      kernels::scalar::fir_apply(b, x, want);
      expect_bits_eq(got, want, "fir_apply");
    }
  }
}

TEST(Kernels, FirUnalignedInputMatchesScalar) {
  const auto b = signal(17, 3);
  const auto x = signal(260, 4);
  for (std::size_t off = 0; off < 4; ++off) {
    const std::span<const double> view(x.data() + off, x.size() - off);
    std::vector<double> got, want;
    kernels::fir_apply(b, view, got);
    kernels::scalar::fir_apply(b, view, want);
    expect_bits_eq(got, want, "fir_apply unaligned");
  }
}

TEST(Kernels, IirDf2MatchesScalarBitExactly) {
  const auto b = signal(5, 11);
  std::vector<double> a = {0.4, -0.2, 0.05};  // stable feedback taps
  for (const std::size_t n : kLengths) {
    const auto x = signal(n, 13 * n + 5);
    std::vector<double> got, want;
    kernels::iir_df2(b, a, x, got);
    kernels::scalar::iir_df2(b, a, x, want);
    expect_bits_eq(got, want, "iir_df2");
  }
}

TEST(Kernels, IirDf1QuantizedMatchesScalarBitExactly) {
  const auto b = signal(4, 21);
  std::vector<double> a = {0.3, -0.1};
  const fxp::QuantizerKernel q(fxp::q_format(4, 12));
  for (const std::size_t n : kLengths) {
    const auto x = signal(n, 17 * n + 3);
    std::vector<double> got, want;
    kernels::iir_df1_quantized(b, a, q, x, got);
    kernels::scalar::iir_df1_quantized(b, a, q, x, want);
    expect_bits_eq(got, want, "iir_df1_quantized");
  }
}

std::vector<fxp::FixedPointFormat> quantizer_formats() {
  std::vector<fxp::FixedPointFormat> fmts;
  for (const auto rounding :
       {fxp::RoundingMode::kTruncate, fxp::RoundingMode::kRoundNearest,
        fxp::RoundingMode::kConvergent}) {
    for (const auto overflow :
         {fxp::OverflowMode::kSaturate, fxp::OverflowMode::kWrap}) {
      for (const bool is_signed : {true, false}) {
        fxp::FixedPointFormat fmt;
        fmt.integer_bits = 3;
        fmt.fractional_bits = 7;
        fmt.is_signed = is_signed;
        fmt.rounding = rounding;
        fmt.overflow = overflow;
        fmts.push_back(fmt);
      }
    }
  }
  return fmts;
}

TEST(Kernels, QuantizeSpanMatchesScalarOnRandomData) {
  for (const auto& fmt : quantizer_formats()) {
    const fxp::QuantizerKernel q(fmt);
    for (const std::size_t n : kLengths) {
      // Amplitude 6 exceeds the Q3.7 range, so saturate and wrap paths
      // both see boundary traffic mixed with in-range lanes.
      Xoshiro256 rng(n + 31);
      std::vector<double> x(n);
      for (auto& v : x) v = 6.0 * (2.0 * rng.uniform() - 1.0);
      std::vector<double> got(n), want(n);
      kernels::quantize_span(q, x, got);
      kernels::scalar::quantize_span(q, x, want);
      expect_bits_eq(got, want, fmt.to_string().c_str());
    }
  }
}

TEST(Kernels, QuantizeSpanMatchesScalarOnEdgeValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  for (const auto& fmt : quantizer_formats()) {
    const fxp::QuantizerKernel q(fmt);
    const double step = fmt.step();
    const double hi = fmt.max_value();
    const double lo = fmt.min_value();
    // Edge battery: signed zeros, exact grid points, ties for every
    // rounding mode, both saturation boundaries and one step beyond,
    // wrap-period offsets, non-finite lanes (forcing the scalar-replay
    // path), subnormals, and values at the exact-floor domain boundary.
    const std::vector<double> x = {
        +0.0,          -0.0,
        step,          -step,
        0.5 * step,    -0.5 * step,
        1.5 * step,    -1.5 * step,
        2.5 * step,    -2.5 * step,
        hi,            lo,
        hi - step,     lo + step,
        hi + step,     lo - step,
        hi + 0.5 * step, lo - 0.5 * step,
        2.0 * hi,      2.0 * lo - 1.0,
        1e6,           -1e6,
        inf,           -inf,
        nan,           denorm,
        -denorm,       4.5031827360639603e15,  // near 2^52 * step
        -4.5031827360639603e15, 0.3};
    std::vector<double> got(x.size()), want(x.size());
    kernels::quantize_span(q, x, got);
    kernels::scalar::quantize_span(q, x, want);
    // NaN outputs compare by bit pattern too; both paths must forward the
    // scalar kernel's NaN handling verbatim.
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
          << fmt.to_string() << " x=" << x[i] << " got " << got[i]
          << " want " << want[i];
    }
  }
}

TEST(Kernels, QuantizeSpanInPlaceAndUnaligned) {
  const fxp::QuantizerKernel q(fxp::q_format(4, 8));
  auto x = signal(131, 77);
  auto expected = x;
  kernels::scalar::quantize_span(q, x, expected);
  // In place...
  auto in_place = x;
  kernels::quantize_span(q, in_place, in_place);
  expect_bits_eq(in_place, expected, "quantize_span in-place");
  // ...and through unaligned subspans.
  for (std::size_t off = 1; off < 4; ++off) {
    std::vector<double> got(x.size() - off);
    kernels::quantize_span(
        q, std::span<const double>(x.data() + off, x.size() - off), got);
    expect_bits_eq(got,
                   std::span<const double>(expected.data() + off,
                                           expected.size() - off),
                   "quantize_span unaligned");
  }
}

TEST(Kernels, WindowApplyMatchesScalar) {
  for (const std::size_t n : kLengths) {
    const auto x = signal(n, n + 41);
    const auto w = signal(n, n + 43);
    std::vector<double> got(n), want(n);
    kernels::window_apply(x, w, got);
    kernels::scalar::window_apply(x, w, want);
    expect_bits_eq(got, want, "window_apply");
    // In-place form.
    auto in_place = x;
    kernels::window_apply(in_place, w, in_place);
    expect_bits_eq(in_place, want, "window_apply in-place");
  }
}

TEST(Kernels, WindowAccumulateMatchesScalar) {
  for (const std::size_t n : kLengths) {
    const auto spectrum = csignal(n, n + 51);
    const auto seed_acc = signal(n, n + 53);
    auto got = seed_acc;
    auto want = seed_acc;
    kernels::window_accumulate(got, spectrum, 0.37);
    kernels::scalar::window_accumulate(want, spectrum, 0.37);
    expect_bits_eq(got, want, "window_accumulate");
  }
}

TEST(Kernels, ComplexMulSplitMatchesScalar) {
  for (const std::size_t n : kLengths) {
    const auto xr0 = signal(n, n + 61);
    const auto xi0 = signal(n, n + 62);
    const auto yr = signal(n, n + 63);
    const auto yi = signal(n, n + 64);
    auto gr = xr0, gi = xi0, wr = xr0, wi = xi0;
    kernels::complex_mul(gr, gi, yr, yi);
    kernels::scalar::complex_mul(wr, wi, yr, yi);
    expect_bits_eq(gr, wr, "complex_mul split re");
    expect_bits_eq(gi, wi, "complex_mul split im");
  }
}

TEST(Kernels, ComplexMulInterleavedMatchesScalar) {
  for (const std::size_t n : kLengths) {
    const auto x0 = csignal(n, n + 71);
    const auto y = csignal(n, n + 72);
    auto got = x0;
    auto want = x0;
    kernels::complex_mul(std::span<cplx>(got), y);
    kernels::scalar::complex_mul(std::span<cplx>(want), y);
    expect_bits_eq(got, want, "complex_mul interleaved");
  }
}

TEST(Kernels, ComplexMulAddMatchesScalar) {
  for (const std::size_t n : kLengths) {
    const auto xr = signal(n, n + 81);
    const auto xi = signal(n, n + 82);
    const auto yr = signal(n, n + 83);
    const auto yi = signal(n, n + 84);
    const auto or0 = signal(n, n + 85);
    const auto oi0 = signal(n, n + 86);
    auto gor = or0, goi = oi0, wor = or0, woi = oi0;
    kernels::complex_mul_add(gor, goi, xr, xi, yr, yi);
    kernels::scalar::complex_mul_add(wor, woi, xr, xi, yr, yi);
    expect_bits_eq(gor, wor, "complex_mul_add re");
    expect_bits_eq(goi, woi, "complex_mul_add im");
  }
}

TEST(Kernels, SplitMergeRoundTripsBitExactly) {
  for (const std::size_t n : kLengths) {
    const auto x = csignal(n, n + 91);
    std::vector<double> gre(n), gim(n), wre(n), wim(n);
    kernels::split_complex(x, gre, gim);
    kernels::scalar::split_complex(x, wre, wim);
    expect_bits_eq(gre, wre, "split_complex re");
    expect_bits_eq(gim, wim, "split_complex im");
    std::vector<cplx> merged(n), merged_ref(n);
    kernels::merge_complex(gre, gim, merged);
    kernels::scalar::merge_complex(wre, wim, merged_ref);
    expect_bits_eq(merged, merged_ref, "merge_complex");
    expect_bits_eq(merged, x, "split/merge round trip");
  }
}

TEST(Kernels, ScaleMatchesScalar) {
  for (const std::size_t n : kLengths) {
    for (const double s : {0.25, -1.0, 1.0 / 3.0}) {
      auto got = signal(n, n + 95);
      auto want = got;
      kernels::scale(got, s);
      kernels::scalar::scale(want, s);
      expect_bits_eq(got, want, "scale");
    }
  }
}

TEST(Kernels, ButterflyMatchesScalar) {
  for (const std::size_t half : {1u, 2u, 3u, 4u, 7u, 16u, 33u}) {
    for (const bool conj : {false, true}) {
      auto re = signal(2 * half, half + 7);
      auto im = signal(2 * half, half + 8);
      auto re_ref = re;
      auto im_ref = im;
      // Forward twiddles for a size-2*half stage.
      std::vector<double> wr(half), wi(half);
      for (std::size_t k = 0; k < half; ++k) {
        const double ang = -3.14159265358979323846 *
                           static_cast<double>(k) /
                           static_cast<double>(half);
        wr[k] = std::cos(ang);
        wi[k] = std::sin(ang);
      }
      kernels::butterfly(re.data(), im.data(), half, wr.data(), wi.data(),
                         conj);
      kernels::scalar::butterfly(re_ref.data(), im_ref.data(), half,
                                 wr.data(), wi.data(), conj);
      expect_bits_eq(re, re_ref, "butterfly re");
      expect_bits_eq(im, im_ref, "butterfly im");
    }
  }
}

// The full quantizer (rounding + saturation on top of the vector path)
// must still agree with the one-shot fxp::quantize on every mode — the
// span overload routes through kernels::quantize_span, so this pins the
// public fixedpoint API to the scalar semantics too.
TEST(Kernels, SpanQuantizeAgreesWithScalarQuantize) {
  for (const auto& fmt : quantizer_formats()) {
    Xoshiro256 rng(99);
    std::vector<double> x(257);
    for (auto& v : x) v = 9.0 * (2.0 * rng.uniform() - 1.0);
    const auto spanned = fxp::quantize(x, fmt);
    ASSERT_EQ(spanned.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double one = fxp::quantize(x[i], fmt);
      EXPECT_EQ(std::memcmp(&spanned[i], &one, sizeof(double)), 0)
          << fmt.to_string() << " x=" << x[i];
    }
  }
}

}  // namespace
