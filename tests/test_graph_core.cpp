// Invalidation semantics of the arena/SoA graph core's derived views:
// reverse-CSR consumers, memoized downstream cones under batched
// invalidation, and the role memos — exercised through feedback edges
// (add_adder_input), from_nodes-built graphs, and a seeded randomized
// edit sequence checked against a naive recompute-from-scratch oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <sstream>
#include <vector>

#include "fixedpoint/format.hpp"
#include "sfg/dot.hpp"
#include "sfg/graph.hpp"

namespace {

using namespace psdacc;

// Ground truth: forward reachability over the primary fan-in storage,
// independent of the consumers CSR and the cone memo being tested.
std::set<sfg::NodeId> oracle_cone(const sfg::Graph& g, sfg::NodeId src) {
  std::vector<std::vector<sfg::NodeId>> fwd(g.node_count());
  for (sfg::NodeId v = 0; v < g.node_count(); ++v)
    for (sfg::NodeId u : g.node(v).inputs) fwd[u].push_back(v);
  std::set<sfg::NodeId> seen{src};
  std::vector<sfg::NodeId> frontier{src};
  while (!frontier.empty()) {
    const sfg::NodeId id = frontier.back();
    frontier.pop_back();
    for (sfg::NodeId c : fwd[id])
      if (seen.insert(c).second) frontier.push_back(c);
  }
  return seen;
}

// Asserts the memoized cone agrees with the oracle in membership,
// iteration order (ascending), and reported size.
void expect_cone_matches_oracle(const sfg::Graph& g, sfg::NodeId src) {
  const auto expected = oracle_cone(g, src);
  const auto cone = g.downstream_cone(src);
  EXPECT_EQ(cone.size(), expected.size()) << "source " << src;
  for (sfg::NodeId v = 0; v < g.node_count(); ++v)
    EXPECT_EQ(cone.contains(v), expected.count(v) != 0)
        << "source " << src << " vertex " << v;
  const std::vector<sfg::NodeId> iterated(cone.begin(), cone.end());
  EXPECT_TRUE(std::is_sorted(iterated.begin(), iterated.end()));
  EXPECT_EQ(iterated, std::vector<sfg::NodeId>(expected.begin(),
                                               expected.end()));
}

void expect_consumers_match_oracle(const sfg::Graph& g) {
  std::vector<std::vector<sfg::NodeId>> fwd(g.node_count());
  for (sfg::NodeId v = 0; v < g.node_count(); ++v)
    for (sfg::NodeId u : g.node(v).inputs) fwd[u].push_back(v);
  for (sfg::NodeId v = 0; v < g.node_count(); ++v) {
    std::sort(fwd[v].begin(), fwd[v].end());
    const auto got = g.consumers(v);
    ASSERT_EQ(std::vector<sfg::NodeId>(got.begin(), got.end()), fwd[v])
        << "consumers of " << v;
  }
}

TEST(GraphCore, FeedbackEdgeUpdatesConsumersAndCones) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto adder = g.add_adder({in});
  const auto gain = g.add_gain(adder, 0.5);
  const auto delay = g.add_delay(gain, 1);
  const auto out = g.add_output(adder);

  // Warm every derived view before the feedback edge lands.
  expect_consumers_match_oracle(g);
  for (sfg::NodeId v = 0; v < g.node_count(); ++v)
    expect_cone_matches_oracle(g, v);
  EXPECT_FALSE(g.downstream_cone(delay).contains(gain));

  // Feedback: delay -> adder closes the loop adder -> gain -> delay.
  g.add_adder_input(adder, delay, -1.0);
  EXPECT_TRUE(g.has_cycles());

  expect_consumers_match_oracle(g);
  for (sfg::NodeId v = 0; v < g.node_count(); ++v)
    expect_cone_matches_oracle(g, v);
  // Every loop member's cone now holds the whole loop plus the output.
  for (const sfg::NodeId member : {adder, gain, delay}) {
    const auto cone = g.downstream_cone(member);
    EXPECT_TRUE(cone.contains(adder));
    EXPECT_TRUE(cone.contains(gain));
    EXPECT_TRUE(cone.contains(delay));
    EXPECT_TRUE(cone.contains(out));
    EXPECT_FALSE(cone.contains(in));
  }
}

TEST(GraphCore, BatchedInvalidationDropsOnlyIntersectingCones) {
  // Two parallel branches off one input: an edge added inside branch A
  // must not rebuild branch B's memoized rows.
  sfg::Graph g;
  const auto in = g.add_input();
  const auto a0 = g.add_adder({in});
  const auto a1 = g.add_gain(a0, 0.5);
  const auto a2 = g.add_delay(a1, 1);
  const auto b0 = g.add_gain(in, 2.0);
  const auto b1 = g.add_delay(b0, 1);
  g.add_output(a2, "out_a");
  g.add_output(b1, "out_b");

  const auto before_b = g.downstream_cone(b0);
  const auto* b_words = before_b.words().data();
  const std::vector<std::uint64_t> b_copy(before_b.words().begin(),
                                          before_b.words().end());
  (void)g.downstream_cone(a1);

  // New edge a2 -> a0 (tail a2): only rows reaching a2 may drop. This
  // edit adds no nodes, so surviving rows must keep their exact storage.
  g.add_adder_input(a0, a2);

  const auto after_b = g.downstream_cone(b0);
  EXPECT_EQ(after_b.words().data(), b_words)
      << "disjoint cone was rebuilt by an edit outside it";
  EXPECT_EQ(std::vector<std::uint64_t>(after_b.words().begin(),
                                       after_b.words().end()),
            b_copy);
  // The intersecting row was refreshed and reflects the new loop.
  EXPECT_TRUE(g.downstream_cone(a1).contains(a0));
  expect_cone_matches_oracle(g, a1);
  expect_cone_matches_oracle(g, in);
}

TEST(GraphCore, FromNodesGraphsBuildConsistentViews) {
  // Hand-built storage through from_nodes, including an adder with signs
  // and a feedback edge already present in the node list.
  std::vector<sfg::Node> nodes(6);
  nodes[0].payload = sfg::InputNode{};
  nodes[0].name = "in";
  nodes[1].payload = sfg::AdderNode{{1.0, -1.0}};
  nodes[1].inputs = {0, 4};
  nodes[1].name = "fb_adder";
  nodes[2].payload = sfg::QuantizerNode{fxp::q_format(4, 12),
                                        fxp::NoiseMoments{}};
  nodes[2].inputs = {1};
  nodes[2].name = "q";
  nodes[3].payload = sfg::GainNode{0.25};
  nodes[3].inputs = {2};
  nodes[3].name = "g";
  nodes[4].payload = sfg::DelayNode{1};
  nodes[4].inputs = {3};
  nodes[4].name = "z";
  nodes[5].payload = sfg::OutputNode{};
  nodes[5].inputs = {2};
  nodes[5].name = "out";

  auto g = sfg::Graph::from_nodes(nodes);
  ASSERT_EQ(g.node_count(), nodes.size());
  EXPECT_TRUE(g.has_cycles());
  expect_consumers_match_oracle(g);
  for (sfg::NodeId v = 0; v < g.node_count(); ++v)
    expect_cone_matches_oracle(g, v);

  // Round-trip preserves every node (deep equality through NodeView).
  const auto back = g.to_nodes();
  ASSERT_EQ(back.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    EXPECT_EQ(back[i], nodes[i]) << "node " << i;

  // Growing a from_nodes graph invalidates like any other graph.
  const auto tap = g.add_gain(4, 3.0);
  g.add_output(tap, "tap_out");
  expect_consumers_match_oracle(g);
  expect_cone_matches_oracle(g, 0);
  expect_cone_matches_oracle(g, 4);
}

TEST(GraphCore, RoleMemosTrackStructuralAndFormatEdits) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  g.add_output(q);

  const auto& sources = g.noise_sources();
  ASSERT_EQ(sources, std::vector<sfg::NodeId>{q});
  // Format edits leave the memo valid (propagation revision untouched).
  g.set_format(q, fxp::q_format(4, 8));
  EXPECT_EQ(&g.noise_sources(), &sources);
  EXPECT_EQ(g.noise_sources(), std::vector<sfg::NodeId>{q});

  // Structural edits refresh contents.
  const auto q2 = g.add_quantizer(in, fxp::q_format(4, 10));
  g.add_output(q2, "out2");
  EXPECT_EQ(g.noise_sources(), (std::vector<sfg::NodeId>{q, q2}));
  EXPECT_EQ(g.inputs(), std::vector<sfg::NodeId>{in});
  EXPECT_EQ(g.outputs().size(), 2u);
}

TEST(GraphCore, DotStreamingCapsNodeCount) {
  sfg::Graph g;
  auto head = g.add_input();
  for (int i = 0; i < 20; ++i) head = g.add_gain(head, 0.5);
  g.add_output(head);

  // Uncapped emission covers everything and elides nothing.
  std::ostringstream full;
  sfg::dot::to_dot(full, g, "chain");
  EXPECT_NE(full.str().find("digraph \"chain\""), std::string::npos);
  EXPECT_EQ(full.str().find("elided"), std::string::npos);

  // Capped emission keeps only the first max_nodes nodes, drops edges
  // with an elided endpoint, and reports what it dropped.
  std::ostringstream capped;
  sfg::dot::to_dot(capped, g, "chain", {.max_nodes = 5});
  const std::string text = capped.str();
  EXPECT_NE(text.find("elided 17 of 22 nodes"), std::string::npos) << text;
  for (sfg::NodeId v = 0; v < g.node_count(); ++v) {
    const std::string decl = "  n" + std::to_string(v) + " [";
    EXPECT_EQ(text.find(decl) != std::string::npos, v < 5)
        << "node " << v << "\n" << text;
  }
  EXPECT_EQ(text.find("n5 ->"), std::string::npos);
  // Still a closed graph document.
  EXPECT_NE(text.find('}'), std::string::npos);
}

// Randomized edit sequences, memoized views vs the naive oracle. Edits
// interleave with queries so most syncs take the batched-invalidation
// path on warm memos; long bursts (> the pending-tail window) push the
// memo through its full-drop overflow path too.
TEST(GraphCore, RandomizedEditsMatchNaiveOracle) {
  for (const unsigned seed : {11u, 23u, 57u}) {
    std::mt19937 rng(seed);
    sfg::Graph g;
    std::vector<sfg::NodeId> adders;
    const auto in = g.add_input();
    auto pick = [&](std::size_t n) {
      return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
    };
    // Seed DAG.
    for (int i = 0; i < 40; ++i) {
      const sfg::NodeId src = static_cast<sfg::NodeId>(pick(g.node_count()));
      switch (pick(4)) {
        case 0: g.add_gain(src, 0.5); break;
        case 1: g.add_delay(src, 1); break;
        case 2: g.add_quantizer(src, fxp::q_format(4, 12)); break;
        default:
          adders.push_back(g.add_adder(
              {src, static_cast<sfg::NodeId>(pick(g.node_count()))}));
          break;
      }
    }
    (void)in;

    auto check_some = [&] {
      expect_consumers_match_oracle(g);
      for (int k = 0; k < 6; ++k)
        expect_cone_matches_oracle(
            g, static_cast<sfg::NodeId>(pick(g.node_count())));
    };
    check_some();  // warm the memos so later syncs exercise invalidation

    for (int burst = 0; burst < 8; ++burst) {
      // Burst length crosses the pending-tail overflow threshold on the
      // later iterations.
      const int edits = 3 + burst * 14;
      for (int e = 0; e < edits; ++e) {
        const sfg::NodeId src =
            static_cast<sfg::NodeId>(pick(g.node_count()));
        switch (pick(5)) {
          case 0: g.add_gain(src, 1.5); break;
          case 1: g.add_delay(src, 2); break;
          case 2:
            adders.push_back(g.add_adder(
                {src, static_cast<sfg::NodeId>(pick(g.node_count()))}));
            break;
          case 3:
            // Edge-only edit; may create feedback.
            g.add_adder_input(adders[pick(adders.size())], src,
                              pick(2) == 0 ? 1.0 : -1.0);
            break;
          default:
            g.add_quantizer(src, fxp::q_format(4, 10));
            break;
        }
      }
      check_some();
    }
    // Full sweep at the end of each seed.
    for (sfg::NodeId v = 0; v < g.node_count(); ++v)
      expect_cone_matches_oracle(g, v);
  }
}

}  // namespace
