// Golden-corpus regression suite: every checked-in tests/corpus/*.sfg
// document must parse, re-serialize byte-identically, reproduce its
// recorded per-engine noise powers to 1e-9 relative, and satisfy the
// delta-vs-full parity and cross-engine agreement contracts.
//
// To refresh expectations after an intentional engine change:
//   build/psdacc-verify regen tests/corpus/*.sfg   (then inspect the diff)
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sfg/verify.hpp"

#ifndef PSDACC_CORPUS_DIR
#error "PSDACC_CORPUS_DIR must point at the checked-in corpus"
#endif

namespace {

using namespace psdacc;

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(PSDACC_CORPUS_DIR)) {
    if (entry.path().extension() == ".sfg")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class CorpusFile : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusFile, PassesFullVerification) {
  const auto issues = sfg::verify_scenario_text(read_file(GetParam()));
  for (const auto& issue : issues)
    ADD_FAILURE() << "[" << issue.check << "] " << issue.detail;
}

std::string test_name_for(const ::testing::TestParamInfo<std::string>& info) {
  // GoogleTest names must be alphanumeric/underscore only.
  std::string stem = std::filesystem::path(info.param).stem().string();
  for (char& c : stem)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return stem;
}

INSTANTIATE_TEST_SUITE_P(Golden, CorpusFile,
                         ::testing::ValuesIn(corpus_files()),
                         test_name_for);

TEST(Corpus, HasTheFullPopulation) {
  // The corpus is a regression anchor: losing files silently weakens it.
  EXPECT_GE(corpus_files().size(), 20u);
}

}  // namespace
