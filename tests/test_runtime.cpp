// Parallel runtime tests: ThreadPool scheduling semantics (futures,
// exception propagation, nesting, edge cases), thread-safety of the FFT
// plan cache, and the BatchRunner scenario driver.
#include <atomic>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sfg/graph.hpp"

namespace {

using namespace psdacc;

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, SubmitReturnsResultThroughFuture) {
  runtime::ThreadPool pool(4);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SingleWorkerPoolRunsInlineAndSpawnsNothing) {
  runtime::ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  const auto caller = std::this_thread::get_id();
  auto fut = pool.submit([caller] { return std::this_thread::get_id() == caller; });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPool, ZeroWorkersIsTreatedAsOne) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 1u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasksReturnsImmediately) {
  runtime::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_TRUE(pool.parallel_map(0, [](std::size_t) { return 1; }).empty());
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  runtime::ThreadPool pool(4);
  const auto out =
      pool.parallel_map(257, [](std::size_t i) { return 3.0 * static_cast<double>(i); });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], 3.0 * static_cast<double>(i));
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  runtime::ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsFirstTaskException) {
  for (const std::size_t workers : {1u, 4u}) {
    runtime::ThreadPool pool(workers);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [](std::size_t i) {
                                     if (i == 37)
                                       throw std::invalid_argument("37");
                                   }),
                 std::invalid_argument);
  }
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  runtime::ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 10, [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedSubmitFromTaskRunsInline) {
  runtime::ThreadPool pool(2);
  // A task that blocks on a nested submit's future would deadlock unless
  // the nested task runs inline on the same worker.
  auto fut = pool.submit([&pool] {
    auto inner = pool.submit([] { return 19; });
    return inner.get() + 1;
  });
  EXPECT_EQ(fut.get(), 20);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  runtime::ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, OversubscribedPoolStillCompletes) {
  runtime::ThreadPool pool(16);  // more workers than this machine has cores
  std::atomic<int> count{0};
  pool.parallel_for(0, 200, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 200);
}

// --- FFT plan cache under concurrency -------------------------------------

TEST(PlanCache, ConcurrentPlanForIsSafeAndCorrect) {
  // Hammer plan_for from several raw threads with overlapping sizes
  // (including Bluestein sizes that recurse into sub-plans) and check every
  // thread computes correct transforms. Run under TSan, this is the
  // cache-safety regression test.
  const std::vector<std::size_t> sizes = {8, 64, 100, 37, 256, 1000};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        for (const std::size_t n : sizes) {
          // Transform of e_0 is all-ones: easy to verify exactly.
          std::vector<dsp::cplx> data(n, dsp::cplx(0.0, 0.0));
          data[0] = dsp::cplx(1.0, 0.0);
          dsp::plan_for(n).forward(data);
          for (const auto& v : data) {
            if (std::abs(v.real() - 1.0) > 1e-9 || std::abs(v.imag()) > 1e-9)
              failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(PlanCache, ClearPlanCacheRebuildsPlans) {
  const auto* before = &dsp::plan_for(64);
  EXPECT_EQ(before, &dsp::plan_for(64));  // cached
  dsp::PlanCache::instance().clear();
  const dsp::FftPlan& rebuilt = dsp::plan_for(64);
  std::vector<dsp::cplx> data(64, dsp::cplx(0.0, 0.0));
  data[0] = dsp::cplx(1.0, 0.0);
  rebuilt.forward(data);
  for (const auto& v : data) EXPECT_NEAR(v.real(), 1.0, 1e-12);
}

// --- BatchRunner ----------------------------------------------------------

sfg::Graph make_system(int frac_bits) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, frac_bits));
  const auto lp = g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.2),
      fxp::q_format(4, frac_bits), "lp");
  g.add_output(lp);
  return g;
}

std::vector<runtime::BatchJob> make_jobs() {
  std::vector<runtime::BatchJob> jobs;
  for (const int bits : {8, 10, 12, 14, 16}) {
    runtime::BatchJob job;
    job.name = "q" + std::to_string(bits);
    job.graph = make_system(bits);
    job.config.sim_samples = 1u << 14;
    job.config.discard = 256;
    job.config.n_psd = 256;
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TEST(BatchRunner, ReportsArriveInJobOrderWithSaneValues) {
  runtime::BatchRunner runner(4);
  const auto jobs = make_jobs();
  const auto results = runner.run(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].name, jobs[i].name);
    EXPECT_GT(results[i].report.reference_power, 0.0);
    EXPECT_GT(results[i].report.power(core::EngineKind::kPsd), 0.0);
    EXPECT_GE(results[i].seconds, 0.0);
  }
  // More fractional bits -> less noise, across the batch.
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_LT(results[i].report.power(core::EngineKind::kPsd),
              results[i - 1].report.power(core::EngineKind::kPsd));
}

TEST(BatchRunner, SharedPoolConstructorWorks) {
  runtime::ThreadPool pool(2);
  runtime::BatchRunner runner(pool);
  EXPECT_EQ(&runner.pool(), &pool);
  const auto jobs = make_jobs();
  EXPECT_EQ(runner.run(jobs).size(), jobs.size());
}

TEST(BatchRunner, EmptyBatchYieldsEmptyResults) {
  runtime::BatchRunner runner(2);
  EXPECT_TRUE(runner.run(std::span<const runtime::BatchJob>{}).empty());
}

}  // namespace
