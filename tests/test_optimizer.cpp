// Word-length optimizer tests: feasibility, strategy quality ordering,
// cost-weight sensitivity, and verification of the chosen design by
// simulation.
#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "sim/error_measurement.hpp"

namespace {

using namespace psdacc;

struct TestSystem {
  sfg::Graph graph;
  std::vector<sfg::NodeId> variables;
};

TestSystem make_chain() {
  TestSystem s;
  const auto in = s.graph.add_input();
  const auto q = s.graph.add_quantizer(in, fxp::q_format(4, 12));
  const auto b1 = s.graph.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.2),
      fxp::q_format(4, 12), "lp");
  const auto b2 = s.graph.add_block(
      b1, filt::TransferFunction(filt::fir_highpass(31, 0.05)),
      fxp::q_format(4, 12), "hp");
  s.graph.add_output(b2);
  s.variables = {q, b1, b2};
  return s;
}

opt::OptimizerConfig budget_config(double budget) {
  opt::OptimizerConfig cfg;
  cfg.noise_budget = budget;
  cfg.min_bits = 4;
  cfg.max_bits = 20;
  cfg.n_psd = 256;
  return cfg;
}

TEST(Optimizer, UniformFindsFeasibleAssignment) {
  auto sys = make_chain();
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                     budget_config(1e-6));
  const auto r = optimizer.uniform();
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.noise, 1e-6);
  for (std::size_t i = 1; i < r.bits.size(); ++i)
    EXPECT_EQ(r.bits[i], r.bits[0]);  // uniform by construction
}

TEST(Optimizer, GreedyBeatsOrMatchesUniformCost) {
  auto sys = make_chain();
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                     budget_config(1e-6));
  const auto uniform = optimizer.uniform();
  const auto greedy = optimizer.greedy_descent();
  EXPECT_TRUE(greedy.feasible);
  EXPECT_LE(greedy.cost, uniform.cost);
}

TEST(Optimizer, MinPlusOneIsFeasible) {
  auto sys = make_chain();
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                     budget_config(1e-6));
  const auto r = optimizer.min_plus_one();
  EXPECT_TRUE(r.feasible);
  EXPECT_LE(r.noise, 1e-6);
}

TEST(Optimizer, TighterBudgetCostsMoreBits) {
  auto sys = make_chain();
  opt::WordlengthOptimizer loose(sys.graph, sys.variables,
                                 budget_config(1e-5));
  const double loose_cost = loose.greedy_descent().cost;
  auto sys2 = make_chain();
  opt::WordlengthOptimizer tight(sys2.graph, sys2.variables,
                                 budget_config(1e-8));
  const double tight_cost = tight.greedy_descent().cost;
  EXPECT_GT(tight_cost, loose_cost);
}

TEST(Optimizer, CostWeightsShiftBits) {
  // Make the first variable 10x as expensive: it should end up with no
  // more bits than in the unweighted solution.
  auto sys_a = make_chain();
  opt::WordlengthOptimizer plain(sys_a.graph, sys_a.variables,
                                 budget_config(1e-6));
  const auto unweighted = plain.greedy_descent();

  auto sys_b = make_chain();
  auto cfg = budget_config(1e-6);
  cfg.cost_weights = {10.0, 1.0, 1.0};
  opt::WordlengthOptimizer weighted(sys_b.graph, sys_b.variables, cfg);
  const auto shifted = weighted.greedy_descent();
  EXPECT_TRUE(shifted.feasible);
  EXPECT_LE(shifted.bits[0], unweighted.bits[0] + 1);
}

TEST(Optimizer, ResultVerifiedBySimulation) {
  auto sys = make_chain();
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                     budget_config(2e-7));
  const auto r = optimizer.greedy_descent();
  ASSERT_TRUE(r.feasible);
  // The graph still carries the optimized formats; simulate it.
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 16;
  const auto report = sim::evaluate_accuracy(sys.graph, cfg);
  // Simulation within 30% of the budget (estimate error + MC noise).
  EXPECT_LT(report.reference_power, 1.3 * 2e-7);
}

TEST(Optimizer, GreedyScoresMarginalNoiseNotAbsoluteNoise) {
  // Three parallel quantizer->gain branches into one adder. The fixed
  // branch C sets a noise floor that dominates every candidate's absolute
  // output noise, so scoring weight/absolute-noise degenerates to ranking
  // by weight alone: it strips the heavy-weight variable A first, burning
  // the budget on A's large marginal increases and stranding B at 11 bits
  // (final bits {3, 11}, cost 46). Scoring weight/marginal-increase trades
  // the two correctly and ends at {4, 5} with cost 42.
  const double c_a = 0.0014501723118430063;
  const double c_b = 0.00790649610142119;
  const double c_fixed = 2e-5;
  // Quantizer at d fractional bits injects variance 4^-d / 12; a gain of
  // sqrt(12 c) scales that to c * 4^-d at the output.
  sfg::Graph g;
  const auto in = g.add_input();
  const auto qa = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto ga = g.add_gain(qa, std::sqrt(12.0 * c_a));
  const auto qb = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto gb = g.add_gain(qb, std::sqrt(12.0 * c_b));
  const auto qc = g.add_quantizer(in, fxp::q_format(4, 8));
  const double var_c = std::ldexp(1.0, -16) / 12.0;
  const auto gc = g.add_gain(qc, std::sqrt(c_fixed / var_c));
  g.add_output(g.add_adder({ga, gb, gc}));

  opt::OptimizerConfig cfg;
  cfg.noise_budget = 4.2663281771083254e-5;
  cfg.min_bits = 2;
  cfg.max_bits = 12;
  cfg.n_psd = 64;
  cfg.cost_weights = {8.0, 2.0};
  opt::WordlengthOptimizer optimizer(g, {qa, qb}, cfg);
  const auto r = optimizer.greedy_descent();
  EXPECT_TRUE(r.feasible);
  ASSERT_EQ(r.bits.size(), 2u);
  EXPECT_EQ(r.bits[0], 4);
  EXPECT_EQ(r.bits[1], 5);
  EXPECT_DOUBLE_EQ(r.cost, 42.0);
}

TEST(Optimizer, InfeasibleBudgetReported) {
  auto sys = make_chain();
  auto cfg = budget_config(1e-30);  // impossible
  cfg.max_bits = 12;
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
  const auto r = optimizer.greedy_descent();
  EXPECT_FALSE(r.feasible);
}

TEST(Optimizer, EvaluationCountIsTracked) {
  auto sys = make_chain();
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                     budget_config(1e-6));
  const auto r = optimizer.greedy_descent();
  EXPECT_GT(r.evaluations, 3u);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation (the hook server-side job timeouts ride on)
// ---------------------------------------------------------------------------

TEST(OptimizerCancellation, NeverFiringCheckChangesNothing) {
  auto sys_a = make_chain();
  opt::WordlengthOptimizer plain(sys_a.graph, sys_a.variables,
                                 budget_config(1e-6));
  const auto reference = plain.greedy_descent();

  auto sys_b = make_chain();
  auto cfg = budget_config(1e-6);
  cfg.cancel_check = [] { return false; };
  opt::WordlengthOptimizer checked(sys_b.graph, sys_b.variables, cfg);
  const auto r = checked.greedy_descent();
  EXPECT_FALSE(r.cancelled);
  EXPECT_EQ(r.bits, reference.bits);
  EXPECT_EQ(r.cost, reference.cost);
}

TEST(OptimizerCancellation, GreedyStopsEarlyWithPartialState) {
  auto sys_a = make_chain();
  opt::WordlengthOptimizer plain(sys_a.graph, sys_a.variables,
                                 budget_config(1e-8));
  const auto full = plain.greedy_descent();

  // Cancel after two accepted rounds: the search must stop with the
  // assignment it held at that point — fewer probes spent, every variable
  // still at or above the converged answer (greedy only removes bits).
  auto sys_b = make_chain();
  auto cfg = budget_config(1e-8);
  int polls = 0;
  cfg.cancel_check = [&polls] { return ++polls > 2; };
  opt::WordlengthOptimizer cancelled(sys_b.graph, sys_b.variables, cfg);
  const auto partial = cancelled.greedy_descent();
  EXPECT_TRUE(partial.cancelled);
  EXPECT_TRUE(partial.feasible);  // greedy's working state stays feasible
  EXPECT_LT(partial.evaluations, full.evaluations);
  ASSERT_EQ(partial.bits.size(), full.bits.size());
  for (std::size_t i = 0; i < full.bits.size(); ++i)
    EXPECT_GE(partial.bits[i], full.bits[i]) << "variable " << i;
  EXPECT_GE(partial.cost, full.cost);

  // The partial assignment was applied to the graph and its noise
  // re-evaluated — the "report what you have" server contract.
  opt::WordlengthOptimizer probe(sys_b.graph, sys_b.variables,
                                 budget_config(1e-8));
  EXPECT_DOUBLE_EQ(probe.evaluate(), partial.noise);
}

TEST(OptimizerCancellation, ImmediateCancelReportsStartState) {
  auto sys = make_chain();
  auto cfg = budget_config(1e-6);
  cfg.cancel_check = [] { return true; };
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
  const auto r = optimizer.greedy_descent();
  EXPECT_TRUE(r.cancelled);
  ASSERT_EQ(r.bits.size(), sys.variables.size());
  for (const int bits : r.bits) EXPECT_EQ(bits, cfg.max_bits);
}

TEST(OptimizerCancellation, AllStrategiesHonorTheCheck) {
  for (const int strategy : {0, 1, 2}) {
    auto sys = make_chain();
    auto cfg = budget_config(1e-6);
    int polls = 0;
    cfg.cancel_check = [&polls] { return ++polls > 1; };
    opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
    const auto r = strategy == 0   ? optimizer.uniform()
                   : strategy == 1 ? optimizer.greedy_descent()
                                   : optimizer.min_plus_one();
    EXPECT_TRUE(r.cancelled) << "strategy " << strategy;
    EXPECT_EQ(r.bits.size(), sys.variables.size()) << "strategy "
                                                   << strategy;
    EXPECT_GT(polls, 1) << "strategy " << strategy;
  }
}

}  // namespace
