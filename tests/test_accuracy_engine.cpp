// Contract suite for the unified core::AccuracyEngine interface: every
// EngineKind must satisfy the same behavioral contract (repeatable
// evaluation, independent worker clones, honest capabilities), the factory
// must refuse graphs an engine cannot evaluate, and the engine-keyed
// AccuracyReport must expose every method the paper compares — including
// the flat-vs-PSD reconvergence gap the old fixed-field report could not
// show.
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/accuracy_engine.hpp"
#include "core/flat_analyzer.hpp"
#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/error_measurement.hpp"

namespace {

using namespace psdacc;
using core::EngineKind;

sfg::Graph make_chain() {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 12));
  const auto b1 = g.add_block(
      q, filt::iir_lowpass(filt::IirFamily::kButterworth, 3, 0.2),
      fxp::q_format(4, 12), "lp");
  const auto b2 = g.add_block(
      b1, filt::TransferFunction(filt::fir_highpass(31, 0.05)),
      fxp::q_format(4, 12), "hp");
  g.add_output(b2);
  return g;
}

sfg::Graph make_multirate() {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 10));
  const auto up = g.add_upsample(q, 2);
  const auto lp = g.add_block(
      up, filt::TransferFunction(filt::fir_lowpass(16, 0.2)));
  g.add_output(g.add_downsample(lp, 2));
  return g;
}

// Small options so the simulation engine stays test-sized.
core::EngineOptions test_options() {
  core::EngineOptions opts;
  opts.n_psd = 256;
  opts.sim_samples = 1u << 12;
  opts.sim_discard = 128;
  return opts;
}

class EngineContractTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineContractTest, ConstructThenEvaluateTwiceIsIdempotent) {
  const auto g = make_chain();
  const auto engine = core::make_engine(GetParam(), g, test_options());
  EXPECT_EQ(engine->kind(), GetParam());
  const double first = engine->output_noise_power();
  const double second = engine->output_noise_power();
  EXPECT_GT(first, 0.0);
  EXPECT_EQ(first, second);  // bitwise: evaluation must not drift
}

TEST_P(EngineContractTest, EvaluationTracksGraphMutation) {
  auto g = make_chain();
  const auto engine = core::make_engine(GetParam(), g, test_options());
  const double coarse = engine->output_noise_power();
  // Double every fractional word-length: noise must drop a lot, through
  // the *same* engine instance (preprocessing is topology-only).
  for (sfg::NodeId id : g.noise_sources()) {
    const sfg::NodeView node = g.node(id);
    auto format =
        std::holds_alternative<sfg::QuantizerNode>(node.payload)
            ? std::get<sfg::QuantizerNode>(node.payload).format
            : *std::get<sfg::BlockNode>(node.payload).output_format;
    format.fractional_bits = 24;
    g.set_format(id, format);
  }
  const double fine = engine->output_noise_power();
  EXPECT_LT(fine, 1e-4 * coarse);
}

TEST_P(EngineContractTest, CloneForWorkerIsIndependentUnderThreadPool) {
  const auto g = make_chain();
  const auto prototype = core::make_engine(GetParam(), g, test_options());
  const double serial = prototype->output_noise_power();

  // One private graph clone per worker engine, evaluated concurrently —
  // the per-worker-clone pattern every parallel driver uses.
  constexpr std::size_t kClones = 8;
  std::vector<sfg::Graph> graphs(kClones, g);
  runtime::ThreadPool pool(4);
  const auto powers = pool.parallel_map(kClones, [&](std::size_t i) {
    const auto engine = prototype->clone_for_worker(graphs[i]);
    const double a = engine->output_noise_power();
    const double b = engine->output_noise_power();
    return a == b ? a : std::numeric_limits<double>::quiet_NaN();
  });
  for (const double p : powers) EXPECT_EQ(p, serial);  // bitwise
}

TEST_P(EngineContractTest, SpectrumCapabilityIsHonest) {
  const auto g = make_chain();
  const auto engine = core::make_engine(GetParam(), g, test_options());
  if (!engine->capabilities().spectrum) {
    EXPECT_THROW(engine->output_spectrum(), std::logic_error);
    return;
  }
  const auto spectrum = engine->output_spectrum();
  const double power = engine->output_noise_power();
  // Analytical spectra integrate exactly to the scalar estimate; the
  // simulation engine's Welch estimate carries windowing leakage.
  const double tol = engine->capabilities().stochastic ? 0.15 : 1e-9;
  EXPECT_NEAR(spectrum.power(), power, tol * power);
}

TEST_P(EngineContractTest, DeltaCapabilityIsHonest) {
  auto g = make_chain();
  const auto engine = core::make_engine(GetParam(), g, test_options());
  const auto sources = g.noise_sources();
  const auto& q =
      std::get<sfg::QuantizerNode>(std::as_const(g).node(sources[0]).payload);
  if (!engine->capabilities().delta) {
    EXPECT_THROW(engine->evaluate_delta(sources[0], q.format),
                 std::logic_error);
    return;
  }
  // Null delta: hypothesizing the format a source already carries must
  // reproduce the full evaluation (up to summation reordering).
  const double full = engine->output_noise_power();
  const double null_delta = engine->evaluate_delta(sources[0], q.format);
  EXPECT_NEAR(null_delta, full, 1e-12 * full);
  // A hypothetical probe must not mutate the graph or the evaluation.
  auto finer = q.format;
  finer.fractional_bits += 4;
  const double probed = engine->evaluate_delta(sources[0], finer);
  EXPECT_LT(probed, full);
  EXPECT_EQ(engine->output_noise_power(), full);  // bitwise
}

TEST_P(EngineContractTest, NameRoundTripsThroughParse) {
  const auto kind = GetParam();
  const auto parsed = core::parse_engine_kind(core::to_string(kind));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllEngineKinds, EngineContractTest,
    ::testing::ValuesIn(core::kAllEngineKinds),
    [](const ::testing::TestParamInfo<EngineKind>& info) {
      return std::string(core::to_string(info.param));
    });

TEST(AccuracyEngine, FlatRefusesMultirateGraphWithClearError) {
  const auto g = make_multirate();
  EXPECT_FALSE(core::engine_supports(EngineKind::kFlat, g));
  EXPECT_THROW(core::make_engine(EngineKind::kFlat, g),
               std::invalid_argument);
  // Everything else accepts the same graph.
  for (const EngineKind kind :
       {EngineKind::kPsd, EngineKind::kMoment, EngineKind::kSimulation}) {
    EXPECT_TRUE(core::engine_supports(kind, g));
    EXPECT_GT(core::make_engine(kind, g, test_options())
                  ->output_noise_power(),
              0.0);
  }
}

TEST(AccuracyEngine, MatchesUnderlyingAnalyzersBitwise) {
  const auto g = make_chain();
  const auto opts = test_options();
  EXPECT_EQ(core::make_engine(EngineKind::kPsd, g, opts)
                ->output_noise_power(),
            core::PsdAnalyzer(g, {.n_psd = opts.n_psd})
                .output_noise_power());
  EXPECT_EQ(core::make_engine(EngineKind::kMoment, g, opts)
                ->output_noise_power(),
            core::MomentAnalyzer(g).output_noise_power());
  EXPECT_EQ(core::make_engine(EngineKind::kFlat, g, opts)
                ->output_noise_power(),
            core::FlatAnalyzer(g, opts.n_psd).output_noise_power());
}

TEST(AccuracyEngine, ParseRejectsUnknownNames) {
  EXPECT_FALSE(core::parse_engine_kind("psd2").has_value());
  EXPECT_FALSE(core::parse_engine_kind("").has_value());
  EXPECT_EQ(core::parse_engine_kind("sim"), EngineKind::kSimulation);
}

TEST(AccuracyReport, ContainsEverySupportedEngineWithTimings) {
  const auto g = make_chain();
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 14;
  cfg.discard = 128;
  cfg.n_psd = 256;
  const auto report = sim::evaluate_accuracy(g, cfg);
  ASSERT_EQ(report.estimates.size(), 4u);
  EXPECT_EQ(report.reference_power,
            report.power(EngineKind::kSimulation));
  EXPECT_DOUBLE_EQ(report.ed(EngineKind::kSimulation), 0.0);
  for (const auto& est : report.estimates) {
    EXPECT_EQ(est.name, core::to_string(est.kind));
    EXPECT_GT(est.power, 0.0);
    EXPECT_GE(est.tau_pp, 0.0);
    EXPECT_GE(est.tau_eval, 0.0);
    EXPECT_NEAR(
        est.ed,
        (report.reference_power - est.power) / report.reference_power,
        1e-15);
  }
}

TEST(AccuracyReport, SkipsFlatOnMultirateGraphs) {
  const auto g = make_multirate();
  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 13;
  cfg.discard = 128;
  cfg.n_psd = 128;
  const auto report = sim::evaluate_accuracy(g, cfg);
  EXPECT_EQ(report.find(EngineKind::kFlat), nullptr);
  ASSERT_EQ(report.estimates.size(), 3u);
  EXPECT_GT(report.power(EngineKind::kPsd), 0.0);
  EXPECT_GT(report.power(EngineKind::kMoment), 0.0);
}

TEST(AccuracyReport, EngineSubsetWithoutSimulationHasNoReference) {
  const auto g = make_chain();
  sim::EvaluationConfig cfg;
  cfg.n_psd = 128;
  cfg.engines = {EngineKind::kPsd, EngineKind::kMoment};
  const auto report = sim::evaluate_accuracy(g, cfg);
  ASSERT_EQ(report.estimates.size(), 2u);
  EXPECT_EQ(report.reference_power, 0.0);
  for (const auto& est : report.estimates)
    EXPECT_TRUE(std::isnan(est.ed)) << est.name;
}

TEST(AccuracyReport, FlatVsPsdReconvergenceGapIsVisible) {
  // One quantizer whose noise reaches the output through two identical
  // paths re-converging at an adder: the true output noise is 4x the
  // source power (coherent), which the flat engine reproduces, while the
  // hierarchical PSD engine adds branch powers (2x, the documented Eq. 14
  // approximation). The engine-keyed report makes the paper's flat-vs-PSD
  // comparison a one-call experiment — impossible with the old
  // fixed-field report, which never ran the flat analyzer at all.
  sfg::Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fxp::q_format(4, 10));
  const auto direct = g.add_gain(q, 1.0);
  const auto delayed = g.add_gain(g.add_delay(q, 0), 1.0);
  g.add_output(g.add_adder({direct, delayed}));
  const auto m = fxp::continuous_quantization_noise(fxp::q_format(4, 10));

  sim::EvaluationConfig cfg;
  cfg.sim_samples = 1u << 16;
  cfg.discard = 64;
  cfg.n_psd = 256;
  const auto report = sim::evaluate_accuracy(g, cfg);
  ASSERT_NE(report.find(EngineKind::kFlat), nullptr);
  EXPECT_NEAR(report.power(EngineKind::kFlat), 4.0 * m.power(),
              1e-12 * m.power());
  EXPECT_NEAR(report.power(EngineKind::kPsd), 2.0 * m.power(),
              1e-12 * m.power());
  // Simulation agrees with the flat method: its deviation stays small
  // while the PSD engine misses the coherent cross term by ~half.
  EXPECT_LT(std::abs(report.ed(EngineKind::kFlat)), 0.05);
  EXPECT_GT(report.ed(EngineKind::kPsd), 0.4);
}

TEST(AccuracyEngine, OptimizerRunsUnderEveryAnalyticalEngine) {
  for (const EngineKind kind :
       {EngineKind::kPsd, EngineKind::kMoment, EngineKind::kFlat}) {
    auto g = make_chain();
    opt::OptimizerConfig cfg;
    cfg.noise_budget = 1e-6;
    cfg.min_bits = 4;
    cfg.max_bits = 20;
    cfg.n_psd = 128;
    cfg.engine = kind;
    opt::WordlengthOptimizer optimizer(g, g.noise_sources(), cfg);
    EXPECT_EQ(optimizer.engine().kind(), kind);
    const auto r = optimizer.uniform();
    EXPECT_TRUE(r.feasible) << core::to_string(kind);
    EXPECT_LE(r.noise, 1e-6) << core::to_string(kind);
  }
}

TEST(BatchRunner, MovedJobsNeverCopyAGraph) {
  static_assert(std::is_nothrow_move_constructible_v<runtime::BatchJob>,
                "BatchJob must stay cheaply movable");
  // Build the graphs first (construction itself copies nothing), then
  // count every Graph copy from job assembly through the whole batch run.
  std::vector<sfg::Graph> graphs;
  for (int i = 0; i < 3; ++i) graphs.push_back(make_chain());

  const std::size_t before = sfg::Graph::copies_made();
  std::vector<runtime::BatchJob> jobs;
  jobs.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    runtime::BatchJob job;
    job.name = "job" + std::to_string(i);
    job.graph = std::move(graphs[i]);
    job.config.sim_samples = 1u << 12;
    job.config.discard = 64;
    job.config.n_psd = 64;
    jobs.push_back(std::move(job));
  }
  runtime::BatchRunner runner(2);
  const auto results = runner.run(std::move(jobs));
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results)
    EXPECT_GT(r.report.reference_power, 0.0);
  EXPECT_EQ(sfg::Graph::copies_made(), before)
      << "the move-friendly batch path must not copy graphs";
}

}  // namespace
