// Imaging substrate tests: container semantics, metrics, PGM output, and
// the synthetic texture bank that substitutes for the paper's image corpus.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "dsp/spectral.hpp"
#include "imaging/image.hpp"
#include "imaging/textures.hpp"

namespace {

using namespace psdacc::img;

TEST(Image, AccessorsAndRowColumnViews) {
  Image im(3, 4, 0.0);
  im.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(im.at(1, 2), 5.0);
  const auto r = im.row(1);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[2], 5.0);
  const auto c = im.col(2);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[1], 5.0);
}

TEST(Image, SetRowAndColumnRoundTrip) {
  Image im(4, 4);
  im.set_row(2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(im.row(2), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  im.set_col(0, {9.0, 8.0, 7.0, 6.0});
  EXPECT_DOUBLE_EQ(im.at(2, 0), 7.0);
  EXPECT_DOUBLE_EQ(im.at(2, 1), 2.0);
}

TEST(Metrics, MseAndPsnr) {
  Image a(2, 2, 0.5);
  Image b(2, 2, 0.5);
  b.at(0, 0) = 0.6;
  EXPECT_NEAR(mse(a, b), 0.01 / 4.0, 1e-15);
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(1.0 / (0.01 / 4.0)), 1e-9);
}

TEST(Pgm, WritesValidHeaderAndPayload) {
  Image im(2, 3, 0.0);
  im.at(0, 0) = 1.0;
  const std::string path = "/tmp/psdacc_test_image.pgm";
  write_pgm(im, path);
  std::ifstream f(path, std::ios::binary);
  ASSERT_TRUE(f.good());
  std::string magic;
  f >> magic;
  EXPECT_EQ(magic, "P5");
  std::size_t w = 0, h = 0, maxval = 0;
  f >> w >> h >> maxval;
  EXPECT_EQ(w, 3u);
  EXPECT_EQ(h, 2u);
  EXPECT_EQ(maxval, 255u);
  f.get();  // single whitespace after header
  std::vector<unsigned char> pixels(6);
  f.read(reinterpret_cast<char*>(pixels.data()), 6);
  EXPECT_EQ(pixels[0], 255);
  EXPECT_EQ(pixels[1], 0);
  std::remove(path.c_str());
}

TEST(Textures, DeterministicGivenSeed) {
  const auto a = make_texture(TextureKind::kPowerLaw, 32, 32, 77);
  const auto b = make_texture(TextureKind::kPowerLaw, 32, 32, 77);
  EXPECT_LT(mse(a, b), 1e-30);
  const auto c = make_texture(TextureKind::kPowerLaw, 32, 32, 78);
  EXPECT_GT(mse(a, c), 1e-6);
}

class TextureRange : public ::testing::TestWithParam<TextureKind> {};

TEST_P(TextureRange, PixelsInUnitRange) {
  const auto im = make_texture(GetParam(), 64, 64, 5);
  for (double v : im.data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST_P(TextureRange, HasNontrivialContrast) {
  const auto im = make_texture(GetParam(), 64, 64, 6);
  const auto [lo, hi] =
      std::minmax_element(im.data().begin(), im.data().end());
  EXPECT_GT(*hi - *lo, 0.5);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, TextureRange,
                         ::testing::Values(TextureKind::kPowerLaw,
                                           TextureKind::kGrating,
                                           TextureKind::kCheckerboard,
                                           TextureKind::kBlobs));

TEST(Textures, BankCyclesThroughFamiliesDeterministically) {
  const auto bank = texture_bank(8, 32, 32, 7);
  ASSERT_EQ(bank.size(), 8u);
  const auto again = texture_bank(8, 32, 32, 7);
  for (std::size_t i = 0; i < bank.size(); ++i)
    EXPECT_LT(mse(bank[i], again[i]), 1e-30) << "image " << i;
  // Images across the bank differ from one another.
  EXPECT_GT(mse(bank[0], bank[4]), 1e-6);
}

TEST(Textures, PowerLawFieldIsLowFrequencyDominated) {
  const auto im = make_texture(TextureKind::kPowerLaw, 128, 128, 9);
  // Average the PSD of all rows: low bins should dominate high bins.
  std::vector<double> acc(32, 0.0);
  for (std::size_t r = 0; r < im.rows(); ++r) {
    auto row = im.row(r);
    const double m = [&] {
      double s = 0.0;
      for (double v : row) s += v;
      return s / static_cast<double>(row.size());
    }();
    for (double& v : row) v -= m;
    const auto psd = psdacc::dsp::periodogram(row, 32);
    for (std::size_t k = 0; k < 32; ++k) acc[k] += psd[k];
  }
  double low = 0.0, high = 0.0;
  for (std::size_t k = 1; k < 5; ++k) low += acc[k];
  for (std::size_t k = 12; k < 16; ++k) high += acc[k];
  EXPECT_GT(low, 5.0 * high);
}

TEST(Textures, GratingIsNarrowBand) {
  const auto im = make_texture(TextureKind::kGrating, 128, 128, 10);
  // Total variance concentrated: the largest PSD bin of the mean row
  // spectrum should hold a large share of the AC power.
  std::vector<double> acc(64, 0.0);
  for (std::size_t r = 0; r < im.rows(); ++r) {
    auto row = im.row(r);
    const auto psd = psdacc::dsp::periodogram(row, 64);
    for (std::size_t k = 1; k < 64; ++k) acc[k] += psd[k];
  }
  double total = 0.0, peak = 0.0;
  for (std::size_t k = 1; k < 64; ++k) {
    total += acc[k];
    peak = std::max(peak, acc[k] + acc[(64 - k) % 64]);
  }
  ASSERT_GT(total, 1e-12);
  EXPECT_GT(peak / total, 0.2);
}

}  // namespace
