// Edge cases across modules: degenerate sizes, boundary parameters, and
// failure-injection (death tests on contract violations).
#include <cmath>

#include <gtest/gtest.h>

#include "core/psd_analyzer.hpp"
#include "dsp/convolution.hpp"
#include "dsp/fft.hpp"
#include "filters/fir_design.hpp"
#include "filters/transfer_function.hpp"
#include "fixedpoint/quantizer.hpp"
#include "sfg/graph.hpp"
#include "sfg/transform.hpp"
#include "sim/executor.hpp"
#include "support/random.hpp"

namespace {

using namespace psdacc;

TEST(FftEdge, SizeOneIsIdentity) {
  std::vector<dsp::cplx> x{dsp::cplx(3.5, -1.25)};
  dsp::fft(x);
  EXPECT_DOUBLE_EQ(x[0].real(), 3.5);
  dsp::ifft(x);
  EXPECT_DOUBLE_EQ(x[0].real(), 3.5);
}

TEST(FftEdge, LargePrimeSizeBluestein) {
  // 97 is prime: pure Bluestein path; check Parseval.
  Xoshiro256 rng(1);
  std::vector<dsp::cplx> x(97);
  for (auto& v : x) v = dsp::cplx(rng.gaussian(), 0.0);
  double te = 0.0;
  for (const auto& v : x) te += std::norm(v);
  auto spec = x;
  dsp::fft(spec);
  double fe = 0.0;
  for (const auto& v : spec) fe += std::norm(v);
  EXPECT_NEAR(fe / 97.0, te, 1e-8 * te);
}

TEST(ConvolutionEdge, SingleSampleSignal) {
  const std::vector<double> x{2.0};
  const std::vector<double> h{3.0};
  const auto y = dsp::convolve_direct(x, h);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
}

TEST(TransferFunctionEdge, LeadingZeroNumerator) {
  // b0 == 0 is legal (pure z^-1 systems).
  const filt::TransferFunction tf({0.0, 1.0});
  EXPECT_NEAR(std::abs(tf.response(0.3)), 1.0, 1e-12);
  const auto h = tf.impulse_response(3);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
}

TEST(TransferFunctionEdge, MarginallyStablePoleRejected) {
  // Pole exactly on the unit circle is not strictly stable.
  EXPECT_FALSE(filt::TransferFunction({1.0}, {1.0, -1.0}).is_stable());
  EXPECT_FALSE(filt::TransferFunction({1.0}, {1.0, 1.0}).is_stable());
}

TEST(QuantizeEdge, ZeroFractionalBitsIsIntegerRounding) {
  const auto fmt = fxp::q_format(5, 0);
  EXPECT_DOUBLE_EQ(fxp::quantize(2.4, fmt), 2.0);
  EXPECT_DOUBLE_EQ(fxp::quantize(2.5, fmt), 3.0);
  EXPECT_DOUBLE_EQ(fxp::quantize(-2.4, fmt), -2.0);
}

TEST(QuantizeEdge, ValuesAtExactSaturationBoundary) {
  const auto fmt = fxp::q_format(2, 4);
  EXPECT_DOUBLE_EQ(fxp::quantize(fmt.max_value(), fmt), fmt.max_value());
  EXPECT_DOUBLE_EQ(fxp::quantize(fmt.min_value(), fmt), fmt.min_value());
  // Half a step above max rounds up and saturates back.
  EXPECT_DOUBLE_EQ(fxp::quantize(fmt.max_value() + fmt.step(), fmt),
                   fmt.max_value());
}

TEST(ExecutorEdge, DelayLongerThanSignal) {
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_delay(in, 10));
  const std::vector<double> x{1.0, 2.0, 3.0};
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  EXPECT_EQ(y, (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(ExecutorEdge, DownsampleByLargeFactor) {
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_downsample(in, 5));
  const std::vector<double> x{1, 2, 3, 4, 5, 6, 7};
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  EXPECT_EQ(y, (std::vector<double>{1.0, 6.0}));
}

TEST(ExecutorEdge, AdderOfMultirateBranchesUsesShortestLength) {
  // One branch decimated, one not: the adder works on the common prefix.
  // (Physically meaningless rates, but the executor must not crash.)
  sfg::Graph g;
  const auto in = g.add_input();
  const auto down = g.add_downsample(in, 2);
  const auto sum = g.add_adder({in, down});
  g.add_output(sum);
  const std::vector<double> x{1, 2, 3, 4};
  const auto y = sim::execute_sisos(g, x, sim::Mode::kReference);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 + 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 + 3.0);
}

TEST(GraphDeath, AdderSignCountMismatch) {
  sfg::Graph g;
  const auto in = g.add_input();
  std::vector<sfg::NodeId> srcs{in, in};
  std::vector<double> signs{1.0};  // wrong arity
  EXPECT_DEATH(g.add_adder(srcs, signs), "precondition");
}

TEST(GraphDeath, EdgeToUnknownNode) {
  sfg::Graph g;
  EXPECT_DEATH(g.add_output(42), "precondition");
}

TEST(GraphDeath, AnalyzerRejectsCyclicGraph) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto sum = g.add_adder({in});
  const auto del = g.add_delay(sum, 1);
  g.add_adder_input(sum, del);
  g.add_output(sum);
  EXPECT_DEATH(core::PsdAnalyzer(g, {.n_psd = 16}), "precondition");
}

TEST(GraphDeath, CollapseRejectsQuantizerInLoop) {
  sfg::Graph g;
  const auto in = g.add_input();
  const auto sum = g.add_adder({in});
  const auto q = g.add_quantizer(sum, fxp::q_format(4, 8));
  const auto del = g.add_delay(q, 1);
  g.add_adder_input(sum, del);
  g.add_output(sum);
  EXPECT_DEATH(sfg::collapse_loops(g), "loop");
}

TEST(FirDesignEdge, MinimumTapCount) {
  const auto h = filt::fir_lowpass(2, 0.25);
  ASSERT_EQ(h.size(), 2u);
  double sum = 0.0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-12);  // DC-normalized
}

TEST(PsdAnalyzerEdge, MinimumBinCount) {
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(g.add_quantizer(in, fxp::q_format(4, 8)));
  core::PsdAnalyzer analyzer(g, {.n_psd = 2});
  const auto m = fxp::continuous_quantization_noise(fxp::q_format(4, 8));
  EXPECT_NEAR(analyzer.output_noise_power(), m.power(), 1e-15);
}

TEST(PsdAnalyzerEdge, GraphWithNoNoiseSourcesIsZero) {
  sfg::Graph g;
  const auto in = g.add_input();
  g.add_output(
      g.add_block(in, filt::TransferFunction(filt::fir_lowpass(8, 0.2))));
  core::PsdAnalyzer analyzer(g, {.n_psd = 64});
  EXPECT_DOUBLE_EQ(analyzer.output_noise_power(), 0.0);
}

}  // namespace
