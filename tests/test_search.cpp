// Search-subsystem tests: simulated annealing / tabu / branch-and-bound
// over delta probes, and Pareto-front sweeps. The quality regressions are
// seed-pinned (the annealer is deterministic per seed — see
// docs/OPTIMIZERS.md for the substream contract), the exhaustive check
// brute-forces a <=8-node system, and the sweep tests pin the fan-out
// bit-identity the serving layer relies on.
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "fixedpoint/format.hpp"
#include "freqfilt/freq_filter.hpp"
#include "opt/search/annealing.hpp"
#include "opt/search/branch_and_bound.hpp"
#include "opt/search/pareto.hpp"
#include "opt/search/strategies.hpp"
#include "opt/wordlength_optimizer.hpp"
#include "runtime/batch_runner.hpp"
#include "sfg/graph.hpp"

namespace {

using namespace psdacc;

struct TestSystem {
  sfg::Graph graph;
  std::vector<sfg::NodeId> variables;
};

// Reconvergent two-path system: in -> q0 -> {0.9 -> qa -> z^-3,
// -0.85 -> qb} -> adder -> out. The correlated path contributions make
// the cost landscape non-separable — the terrain where greedy's one-
// variable-at-a-time descent leaves swaps on the table.
TestSystem make_reconvergent() {
  TestSystem s;
  const auto in = s.graph.add_input();
  const auto q0 = s.graph.add_quantizer(in, fxp::q_format(4, 12));
  const auto ga = s.graph.add_gain(q0, 0.9);
  const auto qa = s.graph.add_quantizer(ga, fxp::q_format(4, 12));
  const auto da = s.graph.add_delay(qa, 3);
  const auto gb = s.graph.add_gain(q0, -0.85);
  const auto qb = s.graph.add_quantizer(gb, fxp::q_format(4, 12));
  const auto sum = s.graph.add_adder({da, qb});
  s.graph.add_output(sum);
  s.variables = {q0, qa, qb};
  return s;
}

// 7-node chain (in, q1, gain, q2, gain, q3, out) — small enough to
// brute-force every assignment.
TestSystem make_tiny_chain() {
  TestSystem s;
  const auto in = s.graph.add_input();
  const auto q1 = s.graph.add_quantizer(in, fxp::q_format(4, 10));
  const auto g1 = s.graph.add_gain(q1, 0.7);
  const auto q2 = s.graph.add_quantizer(g1, fxp::q_format(4, 10));
  const auto g2 = s.graph.add_gain(q2, 1.3);
  const auto q3 = s.graph.add_quantizer(g2, fxp::q_format(4, 10));
  s.graph.add_output(q3);
  s.variables = {q1, q2, q3};
  return s;
}

sfg::Graph fig6_graph() {
  ff::FreqFilterConfig cfg;
  cfg.format = fxp::q_format(8, 16);
  return ff::build_freqfilt_sfg(cfg);
}

opt::OptimizerConfig reconv_config() {
  opt::OptimizerConfig cfg;
  cfg.noise_budget = 1e-8;
  cfg.min_bits = 2;
  cfg.max_bits = 16;
  cfg.n_psd = 128;
  cfg.cost_weights = {5.0, 1.0, 1.0};
  return cfg;
}

opt::search::AnnealOptions pinned_anneal() {
  opt::search::AnnealOptions o;
  o.seed = 42;
  o.rounds = 150;
  o.proposals_per_round = 6;
  return o;
}

// --- quality regressions ---------------------------------------------------

TEST(Anneal, BeatsGreedyOnReconvergentSystem) {
  // Seed-pinned: greedy lands on cost 90 (bits [13 13 12] under weights
  // {5,1,1}); the annealer's swap moves reach 87. A regression that
  // breaks the Metropolis acceptance or the substream draw order will
  // lose this margin.
  auto greedy_sys = make_reconvergent();
  opt::WordlengthOptimizer greedy_opt(greedy_sys.graph,
                                      greedy_sys.variables, reconv_config());
  const auto greedy = greedy_opt.greedy_descent();
  ASSERT_TRUE(greedy.feasible);

  auto anneal_sys = make_reconvergent();
  opt::WordlengthOptimizer anneal_opt(anneal_sys.graph,
                                      anneal_sys.variables, reconv_config());
  opt::search::SimulatedAnnealing anneal(pinned_anneal());
  const auto annealed = anneal.run(anneal_opt);
  ASSERT_TRUE(annealed.feasible);
  EXPECT_LE(annealed.noise, reconv_config().noise_budget);
  EXPECT_LT(annealed.cost, greedy.cost);  // strictly lower, same budget
}

TEST(Anneal, SameSeedIsBitIdentical) {
  const auto run_once = [](std::size_t workers) {
    auto sys = make_reconvergent();
    auto cfg = reconv_config();
    cfg.workers = workers;
    opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
    opt::search::SimulatedAnnealing anneal(pinned_anneal());
    const auto r = anneal.run(optimizer);
    return std::make_pair(r, anneal.trajectory());
  };
  const auto [r1, t1] = run_once(1);
  const auto [r2, t2] = run_once(1);
  EXPECT_EQ(r1.bits, r2.bits);
  EXPECT_EQ(r1.cost, r2.cost);
  EXPECT_EQ(r1.noise, r2.noise);  // bitwise
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].round, t2[i].round);
    EXPECT_EQ(t1[i].cost, t2[i].cost);
    EXPECT_EQ(t1[i].noise, t2[i].noise);
  }
}

TEST(Anneal, DifferentSeedsMayDifferButStayFeasible) {
  for (const std::uint64_t seed : {1ull, 7ull, 123ull}) {
    auto sys = make_reconvergent();
    opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                       reconv_config());
    auto o = pinned_anneal();
    o.seed = seed;
    opt::search::SimulatedAnnealing anneal(o);
    const auto r = anneal.run(optimizer);
    EXPECT_TRUE(r.feasible) << "seed " << seed;
    EXPECT_LE(r.noise, reconv_config().noise_budget) << "seed " << seed;
  }
}

TEST(Anneal, RespectsCancelCheck) {
  auto sys = make_reconvergent();
  auto cfg = reconv_config();
  int polls = 0;
  cfg.cancel_check = [&polls] { return ++polls > 3; };
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
  opt::search::SimulatedAnnealing anneal(pinned_anneal());
  const auto r = anneal.run(optimizer);
  EXPECT_TRUE(r.cancelled);
  EXPECT_FALSE(r.bits.empty());  // partial state still attached
}

TEST(Tabu, FeasibleDeterministicAndNoWorseThanGreedySeed) {
  // Tabu is RNG-free: two runs must agree exactly, and since it starts
  // from the greedy seed and only accepts feasible moves that keep the
  // best assignment, it can never end above greedy.
  auto greedy_sys = make_reconvergent();
  opt::WordlengthOptimizer greedy_opt(greedy_sys.graph,
                                      greedy_sys.variables, reconv_config());
  const double greedy_cost = greedy_opt.greedy_descent().cost;

  const auto run_once = [] {
    auto sys = make_reconvergent();
    opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                       reconv_config());
    opt::search::TabuSearch tabu;
    return tabu.run(optimizer);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  ASSERT_TRUE(r1.feasible);
  EXPECT_LE(r1.cost, greedy_cost);
  EXPECT_EQ(r1.bits, r2.bits);
  EXPECT_EQ(r1.cost, r2.cost);
  EXPECT_EQ(r1.noise, r2.noise);
}

TEST(BranchAndBound, MatchesExhaustiveOnTinySystem) {
  opt::OptimizerConfig cfg;
  cfg.noise_budget = 1e-6;
  cfg.min_bits = 4;
  cfg.max_bits = 10;
  cfg.n_psd = 64;

  // Exhaustive reference: every assignment in the 7^3 window, scored by
  // the same probe engine.
  auto ref_sys = make_tiny_chain();
  opt::WordlengthOptimizer ref(ref_sys.graph, ref_sys.variables, cfg);
  double best_cost = -1.0;
  std::vector<int> best_bits;
  std::vector<int> bits(3, 0);
  for (bits[0] = cfg.min_bits; bits[0] <= cfg.max_bits; ++bits[0])
    for (bits[1] = cfg.min_bits; bits[1] <= cfg.max_bits; ++bits[1])
      for (bits[2] = cfg.min_bits; bits[2] <= cfg.max_bits; ++bits[2]) {
        const double noise = ref.probe_assignment(bits);
        if (!(noise <= cfg.noise_budget)) continue;
        const double cost = ref.cost_of(bits);
        if (best_cost < 0.0 || cost < best_cost) {
          best_cost = cost;
          best_bits = bits;
        }
      }
  ASSERT_GE(best_cost, 0.0);  // the window contains feasible points

  auto bnb_sys = make_tiny_chain();
  opt::WordlengthOptimizer optimizer(bnb_sys.graph, bnb_sys.variables, cfg);
  opt::search::BranchAndBound bnb;
  const auto r = bnb.run(optimizer);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost, best_cost);  // exact: integer-valued sums
  EXPECT_TRUE(bnb.stats().exhausted);
  EXPECT_GT(bnb.stats().pruned_cost + bnb.stats().pruned_infeasible, 0u);
}

TEST(BranchAndBound, NodeCapReturnsGreedyIncumbent) {
  auto sys = make_tiny_chain();
  opt::OptimizerConfig cfg;
  cfg.noise_budget = 1e-6;
  cfg.min_bits = 4;
  cfg.max_bits = 12;
  cfg.n_psd = 64;
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
  opt::search::BnbOptions o;
  o.max_nodes = 1;
  opt::search::BranchAndBound bnb(o);
  const auto r = bnb.run(optimizer);
  EXPECT_TRUE(r.feasible);  // never worse than the greedy incumbent
  EXPECT_FALSE(bnb.stats().exhausted);
}

// --- strategy dispatch -----------------------------------------------------

TEST(Search, KnownStrategyVocabulary) {
  for (const char* name :
       {"uniform", "greedy", "min_plus_one", "anneal", "tabu", "bnb"})
    EXPECT_TRUE(opt::search::known_strategy(name)) << name;
  EXPECT_FALSE(opt::search::known_strategy("gradient"));
  EXPECT_FALSE(opt::search::known_strategy(""));
}

TEST(Search, RunStrategyDispatchesAndThrowsOnUnknown) {
  auto sys = make_tiny_chain();
  opt::OptimizerConfig cfg;
  cfg.noise_budget = 1e-6;
  cfg.min_bits = 4;
  cfg.max_bits = 12;
  cfg.n_psd = 64;
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables, cfg);
  opt::search::StrategySpec spec;
  spec.name = "min_plus_one";
  EXPECT_TRUE(opt::search::run_strategy(optimizer, spec).feasible);
  spec.name = "gradient";
  EXPECT_THROW(opt::search::run_strategy(optimizer, spec),
               std::invalid_argument);
}

TEST(Search, AnnealRidesTheDeltaProbePath) {
  auto sys = make_reconvergent();
  opt::WordlengthOptimizer optimizer(sys.graph, sys.variables,
                                     reconv_config());
  opt::search::SimulatedAnnealing anneal(pinned_anneal());
  anneal.run(optimizer);
  const auto c = optimizer.probe_counters();
  EXPECT_GT(c.delta, 10 * c.full)
      << "full=" << c.full << " delta=" << c.delta;
}

// --- Pareto sweeps ---------------------------------------------------------

TEST(Pareto, LogSpacedBudgetsEndpointsExact) {
  const auto b = opt::search::log_spaced_budgets(1e-9, 1e-5, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.front(), 1e-9);  // rails exact, not just close
  EXPECT_EQ(b.back(), 1e-5);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
  EXPECT_EQ(opt::search::log_spaced_budgets(1e-8, 1e-8, 1),
            std::vector<double>{1e-8});
  EXPECT_THROW(opt::search::log_spaced_budgets(0.0, 1e-5, 4),
               std::invalid_argument);
  EXPECT_THROW(opt::search::log_spaced_budgets(1e-5, 1e-9, 4),
               std::invalid_argument);
  EXPECT_THROW(opt::search::log_spaced_budgets(1e-9, 1e-5, 0),
               std::invalid_argument);
}

TEST(Pareto, Fig6FrontIsDominanceConsistentAndFanOutInvariant) {
  // The PR's acceptance criterion: the fig6 sweep front is dominance-
  // consistent and bit-identical between 1 and 4 workers.
  const sfg::Graph g = fig6_graph();
  opt::search::SweepConfig cfg;
  cfg.budgets = {1e-9, 1e-8, 1e-7, 1e-6};
  cfg.base.min_bits = 4;
  cfg.base.max_bits = 20;
  cfg.base.n_psd = 256;

  cfg.workers = 1;
  opt::search::ParetoSweep serial(g, g.noise_sources(), cfg);
  const auto serial_points = serial.run_points();
  cfg.workers = 4;
  opt::search::ParetoSweep fanned(g, g.noise_sources(), cfg);
  const auto fanned_points = fanned.run_points();

  ASSERT_EQ(serial_points.size(), fanned_points.size());
  for (std::size_t i = 0; i < serial_points.size(); ++i) {
    EXPECT_EQ(serial_points[i].budget, fanned_points[i].budget);
    EXPECT_EQ(serial_points[i].cost, fanned_points[i].cost);
    EXPECT_EQ(serial_points[i].noise, fanned_points[i].noise);  // bitwise
    EXPECT_EQ(serial_points[i].bits, fanned_points[i].bits);
    EXPECT_TRUE(serial_points[i].feasible) << "point " << i;
  }
  const auto front = opt::search::ParetoFront::from_points(serial_points);
  EXPECT_TRUE(front.dominance_consistent());
  EXPECT_FALSE(front.points().empty());
  EXPECT_EQ(front.to_csv(),
            opt::search::ParetoFront::from_points(fanned_points).to_csv());
}

TEST(Pareto, FrontFiltersDominatedAndInfeasiblePoints) {
  std::vector<opt::search::ParetoPoint> pts(4);
  pts[0] = {1e-6, 10.0, 5e-7, true, false, 1, {5}};
  pts[1] = {1e-7, 12.0, 6e-7, true, false, 1, {6}};   // dominated by [0]
  pts[2] = {1e-8, 14.0, 1e-8, true, false, 1, {7}};
  pts[3] = {1e-9, 20.0, 1e-9, false, false, 1, {8}};  // infeasible
  const auto front = opt::search::ParetoFront::from_points(pts);
  ASSERT_EQ(front.points().size(), 2u);
  EXPECT_EQ(front.points()[0].cost, 10.0);
  EXPECT_EQ(front.points()[1].cost, 14.0);
  EXPECT_TRUE(front.dominance_consistent());
}

TEST(Pareto, CsvSchemaIsCanonical) {
  std::vector<opt::search::ParetoPoint> pts(1);
  pts[0] = {1e-6, 38.0, 7.5e-7, true, false, 12, {12, 13, 13}};
  EXPECT_EQ(opt::search::points_to_csv(pts),
            "budget,cost,noise,feasible,evaluations,bits\n"
            "1e-06,38,7.5e-07,1,12,12|13|13\n");
}

TEST(Pareto, CancelSkipsRemainingPoints) {
  auto sys = make_reconvergent();
  opt::search::SweepConfig cfg;
  cfg.budgets = {1e-6, 1e-7, 1e-8};
  cfg.base = reconv_config();
  cfg.base.cancel_check = [] { return true; };  // cancelled from the start
  opt::search::ParetoSweep sweep(sys.graph, sys.variables, cfg);
  const auto points = sweep.run_points();
  ASSERT_EQ(points.size(), 3u);
  for (const auto& p : points) EXPECT_TRUE(p.cancelled);
  EXPECT_TRUE(
      opt::search::ParetoFront::from_points(points).points().empty());
}

TEST(Pareto, OnPointCallbackArrivesInLadderOrderWhenSerial) {
  auto sys = make_reconvergent();
  opt::search::SweepConfig cfg;
  cfg.budgets = {1e-6, 1e-7, 1e-8};
  cfg.base = reconv_config();
  std::vector<std::size_t> order;
  cfg.on_point = [&order](std::size_t index,
                          const opt::search::ParetoPoint&) {
    order.push_back(index);
  };
  opt::search::ParetoSweep sweep(sys.graph, sys.variables, cfg);
  sweep.run_points();
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Pareto, BatchRunnerFanOutMatchesOwnedPool) {
  const sfg::Graph g = fig6_graph();
  opt::search::SweepConfig cfg;
  cfg.budgets = {1e-8, 1e-7, 1e-6};
  cfg.base.min_bits = 4;
  cfg.base.max_bits = 20;
  cfg.base.n_psd = 256;
  opt::search::ParetoSweep owned(g, g.noise_sources(), cfg);
  const auto a = owned.run_points();

  runtime::BatchRunner runner(4);
  opt::search::ParetoSweep shared(g, g.noise_sources(), cfg);
  const auto b = shared.run_points(runner);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cost, b[i].cost);
    EXPECT_EQ(a[i].noise, b[i].noise);
    EXPECT_EQ(a[i].bits, b[i].bits);
  }
}

TEST(Pareto, SweepAggregatesProbeCounters) {
  auto sys = make_reconvergent();
  opt::search::SweepConfig cfg;
  cfg.budgets = {1e-6, 1e-8};
  cfg.base = reconv_config();
  opt::search::ParetoSweep sweep(sys.graph, sys.variables, cfg);
  const auto points = sweep.run_points();
  const auto c = sweep.probe_counters();
  std::size_t evals = 0;
  for (const auto& p : points) evals += p.evaluations;
  EXPECT_GT(c.delta, 0u);
  EXPECT_GT(c.delta + c.full + c.cached, 0u);
  EXPECT_GT(evals, 0u);
}

}  // namespace
