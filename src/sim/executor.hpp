// Executable semantics for SFGs: processes whole signal vectors node by
// node in topological order. Two modes:
//
//  * kReference — every node computes in double precision; quantizers and
//    block output formats are ignored. This is the "infinite precision"
//    reference of Section II (IEEE double).
//  * kFixedPoint — quantizers round the stream to their format; blocks with
//    an output_format run a direct-form realization whose output (and
//    recursive state) is quantized each sample.
//
// The error signal err = y_fx - y_ref measured over a long random input is
// the paper's E[err^2_sim].
//
// These free functions compile a fresh ExecutionPlan per call; loops that
// simulate one graph repeatedly should construct an ExecutionPlan directly
// (see execution_plan.hpp) to amortize graph analysis and buffer setup.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "sfg/graph.hpp"
#include "sim/execution_plan.hpp"

namespace psdacc::sim {

/// Runs the graph on the given input signals (one per Input node, keyed by
/// NodeId). Returns the signal at every node.
std::vector<std::vector<double>> execute(
    const sfg::Graph& g,
    const std::map<sfg::NodeId, std::vector<double>>& inputs, Mode mode);

/// Convenience for single-input single-output graphs: returns the signal at
/// the unique Output node.
std::vector<double> execute_sisos(const sfg::Graph& g,
                                  std::span<const double> input, Mode mode);

}  // namespace psdacc::sim
