// Monte-Carlo measurement of the fixed-point error at a graph output, and
// the top-level harness tying simulation to the three analytical engines.
#pragma once

#include <cstddef>
#include <vector>

#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "sfg/graph.hpp"
#include "support/random.hpp"

namespace psdacc::runtime {
class ThreadPool;
}

namespace psdacc::sim {

/// What the simulation measured at the output.
struct ErrorMeasurement {
  double power = 0.0;          // E[err^2]
  double mean = 0.0;           // E[err]
  double variance = 0.0;       // Var[err]
  std::size_t samples = 0;     // error samples actually accumulated
  std::vector<double> signal;  // the raw error signal (optional use)
};

/// Simulates the graph twice (reference vs fixed-point) on `input` and
/// returns the statistics of the output difference. `discard` initial
/// samples are dropped to skip filter transients.
ErrorMeasurement measure_output_error(const sfg::Graph& g,
                                      std::span<const double> input,
                                      std::size_t discard = 0);

/// Sharded Monte-Carlo measurement plan: `shards` independent uniform input
/// streams drawn from non-overlapping RNG substreams of `seed`
/// (Xoshiro256::substream), each simulated with its own transient discard.
struct ShardedErrorConfig {
  std::size_t total_samples = 1u << 20;  ///< Error samples across all shards.
  std::size_t shards = 1;                ///< Independent streams (not workers).
  std::size_t discard = 1024;            ///< Transient discard per shard.
  std::uint64_t seed = 42;
  double input_amplitude = 0.9;  ///< Uniform input in [-a, a].
  bool keep_signal = true;       ///< Concatenate shard error signals.
};

/// Runs the shards (concurrently when @p pool is given) and combines their
/// statistics with a shard-ordered parallel-Welford reduction. The shard
/// decomposition is fixed by @p cfg alone, so the result is bit-identical
/// for any worker count — including serial `pool == nullptr` runs.
ErrorMeasurement measure_output_error_sharded(
    const sfg::Graph& g, const ShardedErrorConfig& cfg,
    runtime::ThreadPool* pool = nullptr);

/// Welch PSD of the simulated error over n_bins, normalized so that
/// sum(bins) == E[err^2]. For validating the estimated spectrum shape.
std::vector<double> measured_error_psd(const ErrorMeasurement& m,
                                       std::size_t n_bins);

/// One-stop comparison of the three estimates against simulation.
struct AccuracyReport {
  double simulated_power = 0.0;
  double psd_power = 0.0;       // proposed method
  double moment_power = 0.0;    // PSD-agnostic baseline
  double psd_ed = 0.0;          // Eq. 15 deviations
  double moment_ed = 0.0;
};

struct EvaluationConfig {
  std::size_t n_psd = 1024;
  std::size_t sim_samples = 1u << 20;
  std::size_t discard = 1024;
  std::uint64_t seed = 42;
  double input_amplitude = 0.9;  // uniform input in [-a, a]
  /// > 1 splits the simulation into that many independent Monte-Carlo
  /// shards (see measure_output_error_sharded); 1 keeps the single-stream
  /// run. Results depend on this value, never on the worker count.
  std::size_t shards = 1;
};

/// Runs the full comparison on a SISO graph with a uniform random input.
/// When @p pool is given, Monte-Carlo shards (cfg.shards > 1) run
/// concurrently on it.
AccuracyReport evaluate_accuracy(const sfg::Graph& g,
                                 const EvaluationConfig& cfg,
                                 runtime::ThreadPool* pool = nullptr);

}  // namespace psdacc::sim
