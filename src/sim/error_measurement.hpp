// Monte-Carlo measurement of the fixed-point error at a graph output, and
// the top-level harness comparing every core::AccuracyEngine against the
// simulated ground truth.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/accuracy_engine.hpp"
#include "sfg/graph.hpp"
#include "support/random.hpp"

namespace psdacc::runtime {
class ThreadPool;
}

namespace psdacc::sim {

/// What the simulation measured at the output.
struct ErrorMeasurement {
  double power = 0.0;          // E[err^2]
  double mean = 0.0;           // E[err]
  double variance = 0.0;       // Var[err]
  std::size_t samples = 0;     // error samples actually accumulated
  std::vector<double> signal;  // the raw error signal (optional use)
};

/// Simulates the graph twice (reference vs fixed-point) on `input` and
/// returns the statistics of the output difference. `discard` initial
/// samples are dropped to skip filter transients. With `keep_signal`
/// false the raw error signal is never materialized — the form repeated
/// probes (e.g. the simulation engine) use.
ErrorMeasurement measure_output_error(const sfg::Graph& g,
                                      std::span<const double> input,
                                      std::size_t discard = 0,
                                      bool keep_signal = true);

/// Sharded Monte-Carlo measurement plan: `shards` independent uniform input
/// streams drawn from non-overlapping RNG substreams of `seed`
/// (Xoshiro256::substream), each simulated with its own transient discard.
struct ShardedErrorConfig {
  std::size_t total_samples = 1u << 20;  ///< Error samples across all shards.
  std::size_t shards = 1;                ///< Independent streams (not workers).
  std::size_t discard = 1024;            ///< Transient discard per shard.
  std::uint64_t seed = 42;
  double input_amplitude = 0.9;  ///< Uniform input in [-a, a].
  bool keep_signal = true;       ///< Concatenate shard error signals.
};

/// Runs the shards (concurrently when @p pool is given) and combines their
/// statistics with a shard-ordered parallel-Welford reduction. The shard
/// decomposition is fixed by @p cfg alone, so the result is bit-identical
/// for any worker count — including serial `pool == nullptr` runs.
ErrorMeasurement measure_output_error_sharded(
    const sfg::Graph& g, const ShardedErrorConfig& cfg,
    runtime::ThreadPool* pool = nullptr);

/// Welch PSD of the simulated error over n_bins, normalized so that
/// sum(bins) == E[err^2]. For validating the estimated spectrum shape.
std::vector<double> measured_error_psd(const ErrorMeasurement& m,
                                       std::size_t n_bins);

/// One engine's entry in an AccuracyReport: what it estimated (or
/// measured) and what the two phases cost — the paper's tau_pp / tau_eval
/// split, reported per engine.
struct EngineEstimate {
  core::EngineKind kind = core::EngineKind::kPsd;
  std::string name;       ///< to_string(kind), for table/report printing
  double power = 0.0;     ///< estimated output noise power
  double ed = 0.0;        ///< Eq. 15 deviation vs the simulation reference
                          ///< (0 for the reference itself); NaN when the
                          ///< report has no reference or it measured zero
  double tau_pp = 0.0;    ///< preprocessing seconds (engine construction)
  double tau_eval = 0.0;  ///< one evaluation pass, seconds
};

/// Engine-keyed comparison report: one EngineEstimate per engine run, in
/// the order requested. Replaces the old fixed psd/moment field pair, so a
/// report can carry any engine set (including future backends) without an
/// API change.
struct AccuracyReport {
  /// Simulated ground-truth power (the kSimulation estimate), 0 when the
  /// simulation engine was not part of the run.
  double reference_power = 0.0;
  std::vector<EngineEstimate> estimates;

  /// First estimate of @p kind, or nullptr when that engine did not run
  /// (not requested, or skipped as unsupported on this graph).
  const EngineEstimate* find(core::EngineKind kind) const;
  /// As find(), but asserts the engine ran.
  const EngineEstimate& at(core::EngineKind kind) const;
  double power(core::EngineKind kind) const { return at(kind).power; }
  double ed(core::EngineKind kind) const { return at(kind).ed; }
};

struct EvaluationConfig {
  std::size_t n_psd = 1024;
  std::size_t sim_samples = 1u << 20;
  std::size_t discard = 1024;
  std::uint64_t seed = 42;
  double input_amplitude = 0.9;  // uniform input in [-a, a]
  /// > 1 splits the simulation into that many independent Monte-Carlo
  /// shards (see measure_output_error_sharded); 1 keeps the single-stream
  /// run. Results depend on this value, never on the worker count.
  std::size_t shards = 1;
  /// Engines to run, in report order. Engines that cannot evaluate the
  /// graph (engine_supports() == false, e.g. flat on a multirate SFG) are
  /// skipped rather than failing the whole report.
  std::vector<core::EngineKind> engines{core::kAllEngineKinds.begin(),
                                        core::kAllEngineKinds.end()};
};

/// Runs every requested engine on a SISO graph and scores each against the
/// simulated reference (when kSimulation is among them). When @p pool is
/// given, Monte-Carlo shards (cfg.shards > 1) run concurrently on it.
AccuracyReport evaluate_accuracy(const sfg::Graph& g,
                                 const EvaluationConfig& cfg,
                                 runtime::ThreadPool* pool = nullptr);

}  // namespace psdacc::sim
