// Monte-Carlo measurement of the fixed-point error at a graph output, and
// the top-level harness tying simulation to the three analytical engines.
#pragma once

#include <cstddef>
#include <vector>

#include "core/moment_analyzer.hpp"
#include "core/psd_analyzer.hpp"
#include "sfg/graph.hpp"
#include "support/random.hpp"

namespace psdacc::sim {

/// What the simulation measured at the output.
struct ErrorMeasurement {
  double power = 0.0;          // E[err^2]
  double mean = 0.0;           // E[err]
  double variance = 0.0;       // Var[err]
  std::size_t samples = 0;     // error samples actually accumulated
  std::vector<double> signal;  // the raw error signal (optional use)
};

/// Simulates the graph twice (reference vs fixed-point) on `input` and
/// returns the statistics of the output difference. `discard` initial
/// samples are dropped to skip filter transients.
ErrorMeasurement measure_output_error(const sfg::Graph& g,
                                      std::span<const double> input,
                                      std::size_t discard = 0);

/// Welch PSD of the simulated error over n_bins, normalized so that
/// sum(bins) == E[err^2]. For validating the estimated spectrum shape.
std::vector<double> measured_error_psd(const ErrorMeasurement& m,
                                       std::size_t n_bins);

/// One-stop comparison of the three estimates against simulation.
struct AccuracyReport {
  double simulated_power = 0.0;
  double psd_power = 0.0;       // proposed method
  double moment_power = 0.0;    // PSD-agnostic baseline
  double psd_ed = 0.0;          // Eq. 15 deviations
  double moment_ed = 0.0;
};

struct EvaluationConfig {
  std::size_t n_psd = 1024;
  std::size_t sim_samples = 1u << 20;
  std::size_t discard = 1024;
  std::uint64_t seed = 42;
  double input_amplitude = 0.9;  // uniform input in [-a, a]
};

/// Runs the full comparison on a SISO graph with a uniform random input.
AccuracyReport evaluate_accuracy(const sfg::Graph& g,
                                 const EvaluationConfig& cfg);

}  // namespace psdacc::sim
