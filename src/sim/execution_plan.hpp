// Compiled execution plan for SFG simulation.
//
// The free-function executor in executor.hpp re-validates the graph,
// recomputes the topological order, and allocates a fresh signal vector per
// node on every call. An ExecutionPlan does that work once: it validates and
// sorts the graph at construction, caches per-block coefficient arrays, and
// keeps one signal buffer per node that is reused across run() calls — so a
// Monte-Carlo loop or an accuracy probe that simulates the same system
// hundreds of times performs no per-call graph work and (after the first
// run) no allocations.
//
// The plan holds a pointer to the graph: topology and block coefficients
// must not change after construction, but quantizer formats and block
// output formats may (they are read live on every run, which is what the
// word-length optimizer mutates between probes).
#pragma once

#include <span>
#include <vector>

#include "sfg/graph.hpp"

namespace psdacc::sim {

enum class Mode { kReference, kFixedPoint };

class ExecutionPlan {
 public:
  /// Validates, topologically sorts, and compiles @p g (must be acyclic and
  /// outlive the plan).
  explicit ExecutionPlan(const sfg::Graph& g);

  /// Stages the signal for one Input node. Staging persists across runs:
  /// the span must stay valid until it is re-staged or the plan's last
  /// run() using it returns (each run copies it into the node's signal
  /// buffer).
  void set_input(sfg::NodeId id, std::span<const double> x);

  /// Runs one sweep and returns the signal at every node (indexed by
  /// NodeId). The buffers are owned by the plan and overwritten by the next
  /// run().
  const std::vector<std::vector<double>>& run(Mode mode);

  /// Convenience for single-input single-output graphs: stages @p input on
  /// the unique Input node and returns a view of the Output node's signal
  /// (valid until the next run()).
  std::span<const double> run_sisos(std::span<const double> input, Mode mode);

  /// Moves the per-node signal buffers out of the plan (after a run);
  /// the plan re-allocates them on its next run().
  std::vector<std::vector<double>> release_signals();

  const std::vector<sfg::NodeId>& topological_order() const { return order_; }
  const std::vector<sfg::NodeId>& input_ids() const { return input_ids_; }
  const std::vector<sfg::NodeId>& output_ids() const { return output_ids_; }

 private:
  // Coefficients of one LTI block, normalized so a[0] == 1 and ready for
  // the direct-form whole-vector kernels.
  struct BlockKernel {
    std::vector<double> b;
    std::vector<double> a;  // a[0] stripped; empty for FIR blocks
  };

  void run_node(sfg::NodeId id, Mode mode);

  const sfg::Graph* graph_;
  std::vector<sfg::NodeId> order_;
  std::vector<sfg::NodeId> input_ids_;
  std::vector<sfg::NodeId> output_ids_;
  std::vector<BlockKernel> kernels_;             // by NodeId, empty for most
  std::vector<std::span<const double>> staged_;  // by NodeId (inputs only)
  std::vector<unsigned char> staged_set_;        // by NodeId: input staged?
  std::vector<std::vector<double>> signals_;     // by NodeId, reused
};

}  // namespace psdacc::sim
