#include "sim/error_measurement.hpp"

#include <cmath>
#include <limits>

#include "core/metrics.hpp"
#include "dsp/spectral.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/execution_plan.hpp"
#include "support/assert.hpp"
#include "support/statistics.hpp"
#include "support/timer.hpp"

namespace psdacc::sim {

ErrorMeasurement measure_output_error(const sfg::Graph& g,
                                      std::span<const double> input,
                                      std::size_t discard,
                                      bool keep_signal) {
  // One compiled plan serves both sweeps; the reference output must be
  // copied out because the fixed-point run reuses the plan's buffers.
  ExecutionPlan plan(g);
  const auto ref_view = plan.run_sisos(input, Mode::kReference);
  const std::vector<double> ref(ref_view.begin(), ref_view.end());
  const auto fx = plan.run_sisos(input, Mode::kFixedPoint);
  PSDACC_EXPECTS(ref.size() == fx.size());
  PSDACC_EXPECTS(ref.size() > discard);

  ErrorMeasurement m;
  if (keep_signal) m.signal.reserve(ref.size() - discard);
  RunningStats stats;
  for (std::size_t i = discard; i < ref.size(); ++i) {
    const double e = fx[i] - ref[i];
    if (keep_signal) m.signal.push_back(e);
    stats.add(e);
  }
  m.power = stats.mean_square();
  m.mean = stats.mean();
  m.variance = stats.variance();
  m.samples = stats.count();
  return m;
}

ErrorMeasurement measure_output_error_sharded(const sfg::Graph& g,
                                              const ShardedErrorConfig& cfg,
                                              runtime::ThreadPool* pool) {
  PSDACC_EXPECTS(cfg.shards >= 1);
  PSDACC_EXPECTS(cfg.total_samples >= cfg.shards);
  // Split total_samples exactly: the first (total mod shards) shards
  // measure one extra sample, so result.samples == total_samples always.
  const std::size_t base_samples = cfg.total_samples / cfg.shards;
  const std::size_t extra_shards = cfg.total_samples % cfg.shards;
  const Xoshiro256 base(cfg.seed);

  // Shards are fully independent: their own RNG substream, input signal,
  // and execution plan (the shared graph is only read). Running them via
  // parallel_map keeps the per-shard work identical for any worker count;
  // only the reduction below could reorder, and it runs in shard order.
  auto run_shard = [&](std::size_t s) {
    const std::size_t samples = base_samples + (s < extra_shards ? 1 : 0);
    Xoshiro256 rng = base.substream(s);
    const auto input =
        uniform_signal(samples + cfg.discard, cfg.input_amplitude, rng);
    return measure_output_error(g, input, cfg.discard, cfg.keep_signal);
  };
  std::vector<ErrorMeasurement> shards =
      pool != nullptr ? pool->parallel_map(cfg.shards, run_shard)
                      : [&] {
                          std::vector<ErrorMeasurement> out(cfg.shards);
                          for (std::size_t s = 0; s < cfg.shards; ++s)
                            out[s] = run_shard(s);
                          return out;
                        }();

  // Deterministic ordered reduction: rebuild each shard's Welford state
  // from its reported moments and merge in shard-index order.
  ErrorMeasurement total;
  if (cfg.keep_signal) total.signal.reserve(cfg.total_samples);
  RunningStats stats;
  for (const ErrorMeasurement& m : shards) {
    stats.merge(RunningStats::from_moments(
        m.samples, m.mean, m.variance * static_cast<double>(m.samples)));
    if (cfg.keep_signal)
      total.signal.insert(total.signal.end(), m.signal.begin(),
                          m.signal.end());
  }
  total.power = stats.mean_square();
  total.mean = stats.mean();
  total.variance = stats.variance();
  total.samples = stats.count();
  return total;
}

std::vector<double> measured_error_psd(const ErrorMeasurement& m,
                                       std::size_t n_bins) {
  PSDACC_EXPECTS(!m.signal.empty());
  // Welch on the zero-mean part, then put the DC power back in bin 0 so the
  // total matches E[err^2].
  std::vector<double> centered(m.signal.size());
  for (std::size_t i = 0; i < centered.size(); ++i)
    centered[i] = m.signal[i] - m.mean;
  auto psd = dsp::welch_psd(centered, n_bins);
  psd[0] += m.mean * m.mean;
  return psd;
}

const EngineEstimate* AccuracyReport::find(core::EngineKind kind) const {
  for (const EngineEstimate& e : estimates)
    if (e.kind == kind) return &e;
  return nullptr;
}

const EngineEstimate& AccuracyReport::at(core::EngineKind kind) const {
  const EngineEstimate* e = find(kind);
  PSDACC_EXPECTS(e != nullptr && "engine did not run in this report");
  return *e;
}

AccuracyReport evaluate_accuracy(const sfg::Graph& g,
                                 const EvaluationConfig& cfg,
                                 runtime::ThreadPool* pool) {
  core::EngineOptions opts;
  opts.n_psd = cfg.n_psd;
  opts.sim_samples = cfg.sim_samples;
  opts.sim_shards = cfg.shards;
  opts.sim_discard = cfg.discard;
  opts.sim_seed = cfg.seed;
  opts.sim_amplitude = cfg.input_amplitude;
  opts.pool = pool;

  AccuracyReport report;
  report.estimates.reserve(cfg.engines.size());
  for (const core::EngineKind kind : cfg.engines) {
    if (!core::engine_supports(kind, g)) continue;  // e.g. flat, multirate
    EngineEstimate est;
    est.kind = kind;
    est.name = core::to_string(kind);
    const Stopwatch pp;
    const auto engine = core::make_engine(kind, g, opts);
    est.tau_pp = pp.seconds();
    const Stopwatch eval;
    est.power = engine->output_noise_power();
    est.tau_eval = eval.seconds();
    report.estimates.push_back(std::move(est));
  }

  // Score every estimate against the simulated reference (its own ed is 0
  // by construction). Without a reference — or with a zero-power one,
  // where Eq. 15 is undefined — the other deviations are NaN.
  const EngineEstimate* ref = report.find(core::EngineKind::kSimulation);
  report.reference_power = ref != nullptr ? ref->power : 0.0;
  for (EngineEstimate& e : report.estimates) {
    if (&e == ref)
      e.ed = 0.0;
    else
      e.ed = ref != nullptr && ref->power > 0.0
                 ? core::mse_deviation(ref->power, e.power)
                 : std::numeric_limits<double>::quiet_NaN();
  }
  return report;
}

}  // namespace psdacc::sim
