#include "sim/error_measurement.hpp"

#include "core/metrics.hpp"
#include "dsp/spectral.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/execution_plan.hpp"
#include "support/assert.hpp"
#include "support/statistics.hpp"

namespace psdacc::sim {

ErrorMeasurement measure_output_error(const sfg::Graph& g,
                                      std::span<const double> input,
                                      std::size_t discard) {
  // One compiled plan serves both sweeps; the reference output must be
  // copied out because the fixed-point run reuses the plan's buffers.
  ExecutionPlan plan(g);
  const auto ref_view = plan.run_sisos(input, Mode::kReference);
  const std::vector<double> ref(ref_view.begin(), ref_view.end());
  const auto fx = plan.run_sisos(input, Mode::kFixedPoint);
  PSDACC_EXPECTS(ref.size() == fx.size());
  PSDACC_EXPECTS(ref.size() > discard);

  ErrorMeasurement m;
  m.signal.reserve(ref.size() - discard);
  RunningStats stats;
  for (std::size_t i = discard; i < ref.size(); ++i) {
    const double e = fx[i] - ref[i];
    m.signal.push_back(e);
    stats.add(e);
  }
  m.power = stats.mean_square();
  m.mean = stats.mean();
  m.variance = stats.variance();
  m.samples = stats.count();
  return m;
}

ErrorMeasurement measure_output_error_sharded(const sfg::Graph& g,
                                              const ShardedErrorConfig& cfg,
                                              runtime::ThreadPool* pool) {
  PSDACC_EXPECTS(cfg.shards >= 1);
  PSDACC_EXPECTS(cfg.total_samples >= cfg.shards);
  // Split total_samples exactly: the first (total mod shards) shards
  // measure one extra sample, so result.samples == total_samples always.
  const std::size_t base_samples = cfg.total_samples / cfg.shards;
  const std::size_t extra_shards = cfg.total_samples % cfg.shards;
  const Xoshiro256 base(cfg.seed);

  // Shards are fully independent: their own RNG substream, input signal,
  // and execution plan (the shared graph is only read). Running them via
  // parallel_map keeps the per-shard work identical for any worker count;
  // only the reduction below could reorder, and it runs in shard order.
  auto run_shard = [&](std::size_t s) {
    const std::size_t samples = base_samples + (s < extra_shards ? 1 : 0);
    Xoshiro256 rng = base.substream(s);
    const auto input =
        uniform_signal(samples + cfg.discard, cfg.input_amplitude, rng);
    ErrorMeasurement m = measure_output_error(g, input, cfg.discard);
    if (!cfg.keep_signal) {
      m.signal.clear();
      m.signal.shrink_to_fit();
    }
    return m;
  };
  std::vector<ErrorMeasurement> shards =
      pool != nullptr ? pool->parallel_map(cfg.shards, run_shard)
                      : [&] {
                          std::vector<ErrorMeasurement> out(cfg.shards);
                          for (std::size_t s = 0; s < cfg.shards; ++s)
                            out[s] = run_shard(s);
                          return out;
                        }();

  // Deterministic ordered reduction: rebuild each shard's Welford state
  // from its reported moments and merge in shard-index order.
  ErrorMeasurement total;
  if (cfg.keep_signal) total.signal.reserve(cfg.total_samples);
  RunningStats stats;
  for (const ErrorMeasurement& m : shards) {
    stats.merge(RunningStats::from_moments(
        m.samples, m.mean, m.variance * static_cast<double>(m.samples)));
    if (cfg.keep_signal)
      total.signal.insert(total.signal.end(), m.signal.begin(),
                          m.signal.end());
  }
  total.power = stats.mean_square();
  total.mean = stats.mean();
  total.variance = stats.variance();
  total.samples = stats.count();
  return total;
}

std::vector<double> measured_error_psd(const ErrorMeasurement& m,
                                       std::size_t n_bins) {
  PSDACC_EXPECTS(!m.signal.empty());
  // Welch on the zero-mean part, then put the DC power back in bin 0 so the
  // total matches E[err^2].
  std::vector<double> centered(m.signal.size());
  for (std::size_t i = 0; i < centered.size(); ++i)
    centered[i] = m.signal[i] - m.mean;
  auto psd = dsp::welch_psd(centered, n_bins);
  psd[0] += m.mean * m.mean;
  return psd;
}

AccuracyReport evaluate_accuracy(const sfg::Graph& g,
                                 const EvaluationConfig& cfg,
                                 runtime::ThreadPool* pool) {
  AccuracyReport report;
  if (cfg.shards <= 1) {
    // Single-stream path, unchanged from the serial library: one input of
    // sim_samples with `discard` output samples dropped.
    Xoshiro256 rng(cfg.seed);
    const auto input =
        uniform_signal(cfg.sim_samples, cfg.input_amplitude, rng);
    report.simulated_power = measure_output_error(g, input, cfg.discard).power;
  } else {
    const ShardedErrorConfig mc{.total_samples = cfg.sim_samples,
                                .shards = cfg.shards,
                                .discard = cfg.discard,
                                .seed = cfg.seed,
                                .input_amplitude = cfg.input_amplitude,
                                .keep_signal = false};
    report.simulated_power = measure_output_error_sharded(g, mc, pool).power;
  }

  const core::PsdAnalyzer psd(g, {.n_psd = cfg.n_psd});
  report.psd_power = psd.output_noise_power();

  const core::MomentAnalyzer moments(g);
  report.moment_power = moments.output_noise_power();

  report.psd_ed =
      core::mse_deviation(report.simulated_power, report.psd_power);
  report.moment_ed =
      core::mse_deviation(report.simulated_power, report.moment_power);
  return report;
}

}  // namespace psdacc::sim
