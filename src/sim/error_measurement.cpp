#include "sim/error_measurement.hpp"

#include "core/metrics.hpp"
#include "dsp/spectral.hpp"
#include "sim/execution_plan.hpp"
#include "support/assert.hpp"
#include "support/statistics.hpp"

namespace psdacc::sim {

ErrorMeasurement measure_output_error(const sfg::Graph& g,
                                      std::span<const double> input,
                                      std::size_t discard) {
  // One compiled plan serves both sweeps; the reference output must be
  // copied out because the fixed-point run reuses the plan's buffers.
  ExecutionPlan plan(g);
  const auto ref_view = plan.run_sisos(input, Mode::kReference);
  const std::vector<double> ref(ref_view.begin(), ref_view.end());
  const auto fx = plan.run_sisos(input, Mode::kFixedPoint);
  PSDACC_EXPECTS(ref.size() == fx.size());
  PSDACC_EXPECTS(ref.size() > discard);

  ErrorMeasurement m;
  m.signal.reserve(ref.size() - discard);
  RunningStats stats;
  for (std::size_t i = discard; i < ref.size(); ++i) {
    const double e = fx[i] - ref[i];
    m.signal.push_back(e);
    stats.add(e);
  }
  m.power = stats.mean_square();
  m.mean = stats.mean();
  m.variance = stats.variance();
  m.samples = stats.count();
  return m;
}

std::vector<double> measured_error_psd(const ErrorMeasurement& m,
                                       std::size_t n_bins) {
  PSDACC_EXPECTS(!m.signal.empty());
  // Welch on the zero-mean part, then put the DC power back in bin 0 so the
  // total matches E[err^2].
  std::vector<double> centered(m.signal.size());
  for (std::size_t i = 0; i < centered.size(); ++i)
    centered[i] = m.signal[i] - m.mean;
  auto psd = dsp::welch_psd(centered, n_bins);
  psd[0] += m.mean * m.mean;
  return psd;
}

AccuracyReport evaluate_accuracy(const sfg::Graph& g,
                                 const EvaluationConfig& cfg) {
  Xoshiro256 rng(cfg.seed);
  const auto input =
      uniform_signal(cfg.sim_samples, cfg.input_amplitude, rng);

  AccuracyReport report;
  report.simulated_power =
      measure_output_error(g, input, cfg.discard).power;

  const core::PsdAnalyzer psd(g, {.n_psd = cfg.n_psd});
  report.psd_power = psd.output_noise_power();

  const core::MomentAnalyzer moments(g);
  report.moment_power = moments.output_noise_power();

  report.psd_ed =
      core::mse_deviation(report.simulated_power, report.psd_power);
  report.moment_ed =
      core::mse_deviation(report.simulated_power, report.moment_power);
  return report;
}

}  // namespace psdacc::sim
