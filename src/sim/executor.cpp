#include "sim/executor.hpp"

#include <utility>

#include "support/assert.hpp"

namespace psdacc::sim {

std::vector<std::vector<double>> execute(
    const sfg::Graph& g,
    const std::map<sfg::NodeId, std::vector<double>>& inputs, Mode mode) {
  ExecutionPlan plan(g);
  for (const auto& [id, signal] : inputs) plan.set_input(id, signal);
  plan.run(mode);
  return plan.release_signals();
}

std::vector<double> execute_sisos(const sfg::Graph& g,
                                  std::span<const double> input, Mode mode) {
  ExecutionPlan plan(g);
  plan.run_sisos(input, mode);
  auto signals = plan.release_signals();
  return std::move(signals[plan.output_ids()[0]]);
}

}  // namespace psdacc::sim
