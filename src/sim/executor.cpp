#include "sim/executor.hpp"

#include <algorithm>

#include "filters/filtering.hpp"
#include "fixedpoint/quantizer.hpp"
#include "support/assert.hpp"

namespace psdacc::sim {
namespace {

std::vector<double> run_block(const sfg::BlockNode& block,
                              std::span<const double> x, Mode mode) {
  if (mode == Mode::kFixedPoint && block.output_format.has_value()) {
    filt::FixedPointDirectForm f(block.tf, *block.output_format);
    return f.process(x);
  }
  filt::DirectForm2T f(block.tf);
  return f.process(x);
}

}  // namespace

std::vector<std::vector<double>> execute(
    const sfg::Graph& g,
    const std::map<sfg::NodeId, std::vector<double>>& inputs, Mode mode) {
  PSDACC_EXPECTS(!g.has_cycles());
  g.validate();
  std::vector<std::vector<double>> signals(g.node_count());

  for (sfg::NodeId id : g.topological_order()) {
    const sfg::Node& node = g.node(id);
    auto& out = signals[id];
    struct Visitor {
      const sfg::Graph& g;
      const std::map<sfg::NodeId, std::vector<double>>& inputs;
      Mode mode;
      const sfg::Node& node;
      sfg::NodeId id;
      std::vector<std::vector<double>>& signals;
      std::vector<double>& out;

      const std::vector<double>& in(std::size_t port = 0) const {
        return signals[node.inputs[port]];
      }

      void operator()(const sfg::InputNode&) const {
        const auto it = inputs.find(id);
        PSDACC_EXPECTS(it != inputs.end() &&
                       "no signal provided for input node");
        out = it->second;
      }
      void operator()(const sfg::OutputNode&) const { out = in(); }
      void operator()(const sfg::BlockNode& block) const {
        out = run_block(block, in(), mode);
      }
      void operator()(const sfg::GainNode& gain) const {
        out = in();
        for (double& v : out) v *= gain.gain;
      }
      void operator()(const sfg::DelayNode& delay) const {
        const auto& x = in();
        out.assign(x.size(), 0.0);
        for (std::size_t i = delay.delay; i < x.size(); ++i)
          out[i] = x[i - delay.delay];
      }
      void operator()(const sfg::AdderNode& adder) const {
        std::size_t len = in(0).size();
        for (std::size_t p = 1; p < node.inputs.size(); ++p)
          len = std::min(len, in(p).size());
        out.assign(len, 0.0);
        for (std::size_t p = 0; p < node.inputs.size(); ++p) {
          const auto& x = in(p);
          const double s = adder.signs[p];
          for (std::size_t i = 0; i < len; ++i) out[i] += s * x[i];
        }
      }
      void operator()(const sfg::DownsampleNode& d) const {
        const auto& x = in();
        out.clear();
        out.reserve(x.size() / d.factor + 1);
        for (std::size_t i = 0; i < x.size(); i += d.factor)
          out.push_back(x[i]);
      }
      void operator()(const sfg::UpsampleNode& u) const {
        const auto& x = in();
        out.assign(x.size() * u.factor, 0.0);
        for (std::size_t i = 0; i < x.size(); ++i)
          out[i * u.factor] = x[i];
      }
      void operator()(const sfg::QuantizerNode& q) const {
        if (mode == Mode::kFixedPoint) {
          out = fxp::quantize(in(), q.format);
        } else {
          out = in();
        }
      }
    };
    std::visit(Visitor{g, inputs, mode, node, id, signals, out},
               node.payload);
  }
  return signals;
}

std::vector<double> execute_sisos(const sfg::Graph& g,
                                  std::span<const double> input, Mode mode) {
  const auto ins = g.inputs();
  const auto outs = g.outputs();
  PSDACC_EXPECTS(ins.size() == 1);
  PSDACC_EXPECTS(outs.size() == 1);
  std::map<sfg::NodeId, std::vector<double>> inputs;
  inputs.emplace(ins[0], std::vector<double>(input.begin(), input.end()));
  auto signals = execute(g, inputs, mode);
  return std::move(signals[outs[0]]);
}

}  // namespace psdacc::sim
