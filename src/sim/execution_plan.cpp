#include "sim/execution_plan.hpp"

#include <algorithm>
#include <variant>

#include "dsp/kernels.hpp"
#include "fixedpoint/quantizer.hpp"
#include "support/assert.hpp"

// The per-sample block kernels (whole-vector FIR, direct-form IIR, and the
// quantized direct-form-I realization) used to be hand-rolled here; they
// now live behind dsp::kernels, which supplies the SIMD implementations
// with bit-identical scalar fallbacks. The feedforward/feedback
// decomposition in dsp/kernels.cpp accumulates taps in exactly the order
// the old one-pass loops did, so simulation outputs are unchanged to the
// last bit.

namespace psdacc::sim {

ExecutionPlan::ExecutionPlan(const sfg::Graph& g) : graph_(&g) {
  PSDACC_EXPECTS(!g.has_cycles());
  g.validate();
  order_ = g.topological_order();
  input_ids_ = g.inputs();
  output_ids_ = g.outputs();
  staged_.resize(g.node_count());
  staged_set_.assign(g.node_count(), 0);
  signals_.resize(g.node_count());
  kernels_.resize(g.node_count());
  for (sfg::NodeId id = 0; id < g.node_count(); ++id) {
    const auto* block = std::get_if<sfg::BlockNode>(&g.node(id).payload);
    if (block == nullptr) continue;
    BlockKernel& k = kernels_[id];
    k.b.assign(block->tf.numerator().begin(), block->tf.numerator().end());
    const auto& a = block->tf.denominator();
    // Feedback taps a[1..]; a[0] is treated as 1, exactly like the
    // direct-form realizations in filters/filtering.hpp.
    k.a.assign(a.begin() + (a.empty() ? 0 : 1), a.end());
  }
}

void ExecutionPlan::set_input(sfg::NodeId id, std::span<const double> x) {
  PSDACC_EXPECTS(id < staged_.size());
  PSDACC_EXPECTS(
      std::holds_alternative<sfg::InputNode>(graph_->node(id).payload));
  staged_[id] = x;
  staged_set_[id] = 1;
}

void ExecutionPlan::run_node(sfg::NodeId id, Mode mode) {
  const sfg::NodeView node = graph_->node(id);
  std::vector<double>& out = signals_[id];
  struct Visitor {
    ExecutionPlan& self;
    sfg::NodeView node;
    sfg::NodeId id;
    Mode mode;
    std::vector<double>& out;
    const std::vector<double>& in(std::size_t port = 0) const {
      return self.signals_[node.inputs[port]];
    }

    void operator()(const sfg::InputNode&) const {
      PSDACC_EXPECTS(self.staged_set_[id] &&
                     "no signal provided for input node");
      const auto x = self.staged_[id];
      out.assign(x.begin(), x.end());
    }
    void operator()(const sfg::OutputNode&) const {
      const auto& x = in();
      out.assign(x.begin(), x.end());
    }
    void operator()(const sfg::BlockNode& block) const {
      const BlockKernel& k = self.kernels_[id];
      const auto& x = in();
      if (mode == Mode::kFixedPoint && block.output_format.has_value()) {
        // Direct form I with the accumulator quantized each sample and the
        // feedback taps reading the quantized outputs, matching
        // filt::FixedPointDirectForm with zero initial state.
        const fxp::QuantizerKernel q(*block.output_format);
        dsp::kernels::iir_df1_quantized(k.b, k.a, q, x, out);
      } else if (k.a.empty()) {
        dsp::kernels::fir_apply(k.b, x, out);
      } else {
        dsp::kernels::iir_df2(k.b, k.a, x, out);
      }
    }
    void operator()(const sfg::GainNode& gain) const {
      const auto& x = in();
      out.resize(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) out[i] = gain.gain * x[i];
    }
    void operator()(const sfg::DelayNode& delay) const {
      const auto& x = in();
      out.assign(x.size(), 0.0);
      for (std::size_t i = delay.delay; i < x.size(); ++i)
        out[i] = x[i - delay.delay];
    }
    void operator()(const sfg::AdderNode& adder) const {
      std::size_t len = in(0).size();
      for (std::size_t p = 1; p < node.inputs.size(); ++p)
        len = std::min(len, in(p).size());
      out.assign(len, 0.0);
      for (std::size_t p = 0; p < node.inputs.size(); ++p) {
        const auto& x = in(p);
        const double s = adder.signs[p];
        for (std::size_t i = 0; i < len; ++i) out[i] += s * x[i];
      }
    }
    void operator()(const sfg::DownsampleNode& d) const {
      const auto& x = in();
      out.clear();
      out.reserve(x.size() / d.factor + 1);
      for (std::size_t i = 0; i < x.size(); i += d.factor)
        out.push_back(x[i]);
    }
    void operator()(const sfg::UpsampleNode& u) const {
      const auto& x = in();
      out.assign(x.size() * u.factor, 0.0);
      for (std::size_t i = 0; i < x.size(); ++i) out[i * u.factor] = x[i];
    }
    void operator()(const sfg::QuantizerNode& q) const {
      const auto& x = in();
      if (mode == Mode::kFixedPoint) {
        const fxp::QuantizerKernel quantize(q.format);
        out.resize(x.size());
        dsp::kernels::quantize_span(quantize, x, out);
      } else {
        out.assign(x.begin(), x.end());
      }
    }
  };
  std::visit(Visitor{*this, node, id, mode, out}, node.payload);
}

const std::vector<std::vector<double>>& ExecutionPlan::run(Mode mode) {
  if (signals_.size() != graph_->node_count())
    signals_.resize(graph_->node_count());
  for (sfg::NodeId id : order_) run_node(id, mode);
  return signals_;
}

std::span<const double> ExecutionPlan::run_sisos(std::span<const double> input,
                                                Mode mode) {
  PSDACC_EXPECTS(input_ids_.size() == 1);
  PSDACC_EXPECTS(output_ids_.size() == 1);
  set_input(input_ids_[0], input);
  run(mode);
  return signals_[output_ids_[0]];
}

std::vector<std::vector<double>> ExecutionPlan::release_signals() {
  return std::move(signals_);
}

}  // namespace psdacc::sim
