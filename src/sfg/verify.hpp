/// @file verify.hpp
/// The verification layer on top of SFG serialization: golden-corpus
/// checking and structure-aware differential testing, shared by the
/// `psdacc-verify` CLI, tests/test_corpus.cpp, and the fuzz smoke tests.
///
/// Tolerances (the documented contracts):
///  * golden values: each engine named in a document's `expect` section
///    must reproduce its recorded output noise power to 1e-9 relative;
///  * delta parity: `evaluate_delta(v, current format)` must equal the
///    full evaluation to 1e-12 relative on every delta-capable engine
///    (the PR-5 incremental-evaluation contract);
///  * serialization differential: every engine must produce *bit-identical*
///    results on a graph and on its parse(serialize(...)) copy;
///  * cross-engine: on single-rate graphs the hierarchical PSD estimate
///    must stay within the paper's one-bit band of the flat (exact)
///    method — E_d in (-75%, +300%), core::within_one_bit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sfg/serialize.hpp"

namespace psdacc::sfg {

/// One failed check. `check` is a stable machine-readable tag
/// ("parse", "canonical", "golden:psd", "delta:moment",
/// "differential:flat", "cross:flat-vs-psd", ...); `detail` is for
/// humans. Tags with the "band:" prefix are advisory one-bit-band
/// observations (statistical claims, not per-graph contracts); callers
/// like the fuzz driver count them against a rate threshold instead of
/// treating each as a failure.
struct VerifyIssue {
  std::string check;
  std::string detail;
};

struct VerifyOptions {
  double golden_rel_tol = 1e-9;
  double delta_rel_tol = 1e-12;
  /// Check flat-vs-psd one-bit agreement when both engines run. Only
  /// applied when the document's *recorded* goldens are themselves in
  /// band: graphs with strongly correlated reconvergent noise (e.g.
  /// realization_parallel in the corpus) legitimately violate the
  /// uncorrelated-sources assumption, and their goldens document that.
  bool cross_engine = true;
};

/// Builds the EngineOptions an evaluation of @p cfg uses (spectral
/// resolution + the Monte-Carlo plan; single-threaded).
core::EngineOptions engine_options_for(const sim::EvaluationConfig& cfg);

/// Full golden-corpus verification of one serialized document: parse,
/// canonical byte-identity, every `expect` engine against its golden value,
/// delta-vs-full parity, cross-engine agreement. Empty result == pass.
std::vector<VerifyIssue> verify_scenario_text(std::string_view text,
                                              const VerifyOptions& opts = {});

/// Recomputes the golden expectations for a scenario: runs every engine in
/// `config.engines` that supports the graph and returns (kind, power)
/// pairs — the `expect` section a corpus file should carry.
std::vector<std::pair<core::EngineKind, double>> evaluate_expected(
    const Scenario& s);

/// Recomputes the optimizer goldens for a scenario: re-runs every
/// `opt_expect` entry (strategy over the graph's noise sources, unit
/// weights, the scenario config's n_psd) and returns the entries with
/// their costs replaced by the freshly searched ones — the section a
/// corpus file should carry after `psdacc-verify regen`. Entries with an
/// unknown strategy or an engine that cannot evaluate the graph are
/// dropped.
std::vector<OptExpectation> evaluate_opt_expected(const Scenario& s);

struct DifferentialOptions {
  /// Spectral resolution for the analytical engines (small: the fuzzer
  /// sweeps many graphs).
  std::size_t n_psd = 128;
  double delta_rel_tol = 1e-12;
  /// Also run Monte-Carlo simulation and band-check the analytical
  /// engines against it (expensive; the fuzzer samples this).
  bool with_simulation = false;
  std::size_t sim_samples = 1u << 14;
};

/// Structure-aware differential check of one graph, the fuzzer's core:
///  1. round-trip: parse(serialize(g)) is structurally equal to g and
///     re-serializes byte-identically;
///  2. serialization differential: flat/moment/psd each produce
///     bit-identical powers on g and on the parsed copy;
///  3. delta parity to `delta_rel_tol` on delta-capable engines;
///  4. cross-engine flat-vs-psd agreement: exact to 1e-9 on adder-free
///     chains (a theorem — hard "cross:chain-exact" issue); with
///     reconvergent joins the one-bit band is advisory ("band:" issue:
///     correlated path contributions can legitimately leave the band on
///     individual graphs, so callers threshold the aggregate rate);
///  5. optionally, advisory one-bit bands of flat/psd vs simulation.
/// Graphs the engines cannot evaluate (no/multiple outputs, no sources,
/// cycles) only get step 1. Empty result == pass.
std::vector<VerifyIssue> differential_check(
    const Graph& g, const DifferentialOptions& opts = {});

}  // namespace psdacc::sfg
