#include "sfg/graph.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "support/assert.hpp"

namespace psdacc::sfg {
namespace {

std::atomic<std::size_t> graph_copies{0};

// Fan-in arity legality per payload kind, shared by validate() and
// set_payload().
struct ArityVisitor {
  std::size_t fan_in;
  void operator()(const InputNode&) const { PSDACC_EXPECTS(fan_in == 0); }
  void operator()(const OutputNode&) const { PSDACC_EXPECTS(fan_in == 1); }
  void operator()(const BlockNode&) const { PSDACC_EXPECTS(fan_in == 1); }
  void operator()(const GainNode&) const { PSDACC_EXPECTS(fan_in == 1); }
  void operator()(const DelayNode&) const { PSDACC_EXPECTS(fan_in == 1); }
  void operator()(const AdderNode& a) const {
    PSDACC_EXPECTS(fan_in >= 1);
    PSDACC_EXPECTS(a.signs.size() == fan_in);
  }
  void operator()(const DownsampleNode& d) const {
    PSDACC_EXPECTS(fan_in == 1);
    PSDACC_EXPECTS(d.factor >= 1);
  }
  void operator()(const UpsampleNode& u) const {
    PSDACC_EXPECTS(fan_in == 1);
    PSDACC_EXPECTS(u.factor >= 1);
  }
  void operator()(const QuantizerNode&) const { PSDACC_EXPECTS(fan_in == 1); }
};

}  // namespace

Graph::CopyCounter::CopyCounter(const CopyCounter&) {
  graph_copies.fetch_add(1, std::memory_order_relaxed);
}

Graph::CopyCounter& Graph::CopyCounter::operator=(const CopyCounter&) {
  graph_copies.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

std::size_t Graph::copies_made() {
  return graph_copies.load(std::memory_order_relaxed);
}

const char* node_kind_name(const NodePayload& payload) {
  struct Visitor {
    const char* operator()(const InputNode&) const { return "input"; }
    const char* operator()(const OutputNode&) const { return "output"; }
    const char* operator()(const BlockNode&) const { return "block"; }
    const char* operator()(const GainNode&) const { return "gain"; }
    const char* operator()(const DelayNode&) const { return "delay"; }
    const char* operator()(const AdderNode&) const { return "adder"; }
    const char* operator()(const DownsampleNode&) const { return "down"; }
    const char* operator()(const UpsampleNode&) const { return "up"; }
    const char* operator()(const QuantizerNode&) const { return "quant"; }
  };
  return std::visit(Visitor{}, payload);
}

void Graph::reserve(std::size_t nodes, std::size_t edges) {
  payloads_.reserve(nodes);
  name_ids_.reserve(nodes);
  fanin_begin_.reserve(nodes);
  fanin_count_.reserve(nodes);
  node_revisions_.reserve(nodes);
  edge_pool_.reserve(edges != 0 ? edges : nodes);
}

std::uint32_t Graph::intern(std::string_view name) {
  const auto it = name_lookup_.find(name);
  if (it != name_lookup_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(name_pool_.size());
  name_pool_.emplace_back(name);
  name_lookup_.emplace(name_pool_.back(), id);
  return id;
}

void Graph::note_new_edge_tail(NodeId tail) {
  if (cone_pending_overflow_) return;
  if (cone_pending_tails_.size() >= kMaxPendingTails) {
    cone_pending_overflow_ = true;
    cone_pending_tails_.clear();
    return;
  }
  cone_pending_tails_.push_back(tail);
}

NodeId Graph::append(NodePayload payload, std::span<const NodeId> inputs,
                     std::string_view name) {
  PSDACC_EXPECTS(edge_pool_.size() + inputs.size() <
                 std::numeric_limits<std::uint32_t>::max());
  const NodeId id = payloads_.size();
  payloads_.push_back(std::move(payload));
  name_ids_.push_back(intern(name));
  fanin_begin_.push_back(static_cast<std::uint32_t>(edge_pool_.size()));
  fanin_count_.push_back(static_cast<std::uint32_t>(inputs.size()));
  edge_pool_.insert(edge_pool_.end(), inputs.begin(), inputs.end());
  node_revisions_.push_back(0);
  for (NodeId src : inputs) note_new_edge_tail(src);
  ++topology_revision_;
  ++propagation_revision_;
  ++revision_;
  return id;
}

NodeId Graph::add_input(std::string_view name) {
  return append(InputNode{}, {}, name);
}

NodeId Graph::add_output(NodeId src, std::string_view name) {
  PSDACC_EXPECTS(src < node_count());
  return append(OutputNode{}, {&src, 1}, name);
}

NodeId Graph::add_block(NodeId src, filt::TransferFunction tf,
                        std::optional<fxp::FixedPointFormat> output_format,
                        std::string_view name) {
  PSDACC_EXPECTS(src < node_count());
  return append(BlockNode{std::move(tf), output_format}, {&src, 1}, name);
}

NodeId Graph::add_gain(NodeId src, double gain, std::string_view name) {
  PSDACC_EXPECTS(src < node_count());
  return append(GainNode{gain}, {&src, 1}, name);
}

NodeId Graph::add_delay(NodeId src, std::size_t delay,
                        std::string_view name) {
  PSDACC_EXPECTS(src < node_count());
  return append(DelayNode{delay}, {&src, 1}, name);
}

NodeId Graph::add_adder(std::span<const NodeId> srcs,
                        std::span<const double> signs,
                        std::string_view name) {
  PSDACC_EXPECTS(srcs.size() >= 1);
  for (NodeId s : srcs) PSDACC_EXPECTS(s < node_count());
  AdderNode adder;
  if (signs.empty()) {
    adder.signs.assign(srcs.size(), 1.0);
  } else {
    PSDACC_EXPECTS(signs.size() == srcs.size());
    adder.signs.assign(signs.begin(), signs.end());
  }
  return append(std::move(adder), srcs, name);
}

NodeId Graph::add_adder(std::initializer_list<NodeId> srcs,
                        std::string_view name) {
  std::vector<NodeId> v(srcs);
  return add_adder(std::span<const NodeId>(v), {}, name);
}

NodeId Graph::add_downsample(NodeId src, std::size_t factor,
                             std::string_view name) {
  PSDACC_EXPECTS(src < node_count());
  PSDACC_EXPECTS(factor >= 1);
  return append(DownsampleNode{factor}, {&src, 1}, name);
}

NodeId Graph::add_upsample(NodeId src, std::size_t factor,
                           std::string_view name) {
  PSDACC_EXPECTS(src < node_count());
  PSDACC_EXPECTS(factor >= 1);
  return append(UpsampleNode{factor}, {&src, 1}, name);
}

NodeId Graph::add_quantizer(NodeId src, fxp::FixedPointFormat format,
                            std::string_view name) {
  return add_quantizer(src, format,
                       fxp::continuous_quantization_noise(format), name);
}

NodeId Graph::add_quantizer(NodeId src, fxp::FixedPointFormat format,
                            fxp::NoiseMoments moments, std::string_view name) {
  PSDACC_EXPECTS(src < node_count());
  return append(QuantizerNode{format, moments}, {&src, 1}, name);
}

void Graph::add_adder_input(NodeId adder, NodeId src, double sign) {
  PSDACC_EXPECTS(adder < node_count());
  PSDACC_EXPECTS(src < node_count());
  auto* payload = std::get_if<AdderNode>(&payloads_[adder]);
  PSDACC_EXPECTS(payload != nullptr);
  const std::uint32_t begin = fanin_begin_[adder];
  const std::uint32_t count = fanin_count_[adder];
  PSDACC_EXPECTS(edge_pool_.size() + count + 1 <
                 std::numeric_limits<std::uint32_t>::max());
  if (begin + count != edge_pool_.size()) {
    // Relocate this node's fan-in run to the pool tail so it can grow in
    // place; the old run becomes a hole.
    edge_pool_.reserve(edge_pool_.size() + count + 1);
    fanin_begin_[adder] = static_cast<std::uint32_t>(edge_pool_.size());
    for (std::uint32_t k = 0; k < count; ++k)
      edge_pool_.push_back(edge_pool_[begin + k]);
  }
  edge_pool_.push_back(src);
  ++fanin_count_[adder];
  payload->signs.push_back(sign);
  note_new_edge_tail(src);
  ++node_revisions_[adder];
  ++topology_revision_;
  ++propagation_revision_;
  ++revision_;
}

Graph Graph::from_nodes(std::vector<Node> nodes) {
  Graph g;
  std::size_t edges = 0;
  for (const Node& n : nodes) edges += n.inputs.size();
  g.reserve(nodes.size(), edges);
  for (Node& n : nodes) {
    g.payloads_.push_back(std::move(n.payload));
    g.name_ids_.push_back(g.intern(n.name));
    g.fanin_begin_.push_back(static_cast<std::uint32_t>(g.edge_pool_.size()));
    g.fanin_count_.push_back(static_cast<std::uint32_t>(n.inputs.size()));
    g.edge_pool_.insert(g.edge_pool_.end(), n.inputs.begin(),
                        n.inputs.end());
    g.node_revisions_.push_back(0);
  }
  // As if every node had been appended through the builders.
  g.revision_ = g.node_count();
  g.topology_revision_ = g.node_count();
  g.propagation_revision_ = g.node_count();
  g.validate();
  return g;
}

std::vector<Node> Graph::to_nodes() const {
  std::vector<Node> out;
  out.reserve(node_count());
  for (NodeId i = 0; i < node_count(); ++i) {
    const auto fi = fan_in(i);
    out.push_back(Node{payloads_[i], std::vector<NodeId>(fi.begin(), fi.end()),
                       name_pool_[name_ids_[i]]});
  }
  return out;
}

NodeView Graph::node(NodeId id) const {
  PSDACC_EXPECTS(id < node_count());
  return NodeView(payloads_[id], fan_in(id), name_pool_[name_ids_[id]]);
}

std::string_view Graph::name(NodeId id) const {
  PSDACC_EXPECTS(id < node_count());
  return name_pool_[name_ids_[id]];
}

void Graph::set_format(NodeId id, fxp::FixedPointFormat format) {
  PSDACC_EXPECTS(id < node_count());
  if (auto* q = std::get_if<QuantizerNode>(&payloads_[id])) {
    q->format = format;
    q->moments = fxp::continuous_quantization_noise(format);
  } else {
    auto* b = std::get_if<BlockNode>(&payloads_[id]);
    PSDACC_EXPECTS(b != nullptr && b->output_format.has_value());
    b->output_format = format;
  }
  ++node_revisions_[id];
  ++revision_;
  format_journal_[format_edit_count_ % kFormatJournalSize] = id;
  ++format_edit_count_;
}

void Graph::set_payload(NodeId id, NodePayload payload) {
  PSDACC_EXPECTS(id < node_count());
  std::visit(ArityVisitor{fanin_count_[id]}, payload);
  payloads_[id] = std::move(payload);
  ++node_revisions_[id];
  ++propagation_revision_;
  ++revision_;
}

std::uint64_t Graph::node_revision(NodeId id) const {
  PSDACC_EXPECTS(id < node_count());
  return node_revisions_[id];
}

bool Graph::format_edits_since(std::uint64_t seen,
                               std::vector<NodeId>& out) const {
  PSDACC_EXPECTS(seen <= format_edit_count_);
  if (format_edit_count_ - seen > kFormatJournalSize) return false;
  for (std::uint64_t i = seen; i < format_edit_count_; ++i)
    out.push_back(format_journal_[i % kFormatJournalSize]);
  return true;
}

void Graph::sync_consumers() const {
  if (rev_csr_topology_ == topology_revision_) return;
  const std::size_t n = node_count();
  rev_count_.assign(n, 0);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId src : fan_in(i)) ++rev_count_[src];
  rev_begin_.resize(n);
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    rev_begin_[i] = acc;
    acc += rev_count_[i];
  }
  rev_pool_.resize(acc);
  std::vector<std::uint32_t> cursor(rev_begin_.begin(), rev_begin_.end());
  // Filling in ascending consumer id keeps each consumer list ascending —
  // the order the rebuild-on-call predecessor produced, so traversal
  // orders (and thus floating-point summation orders downstream) are
  // unchanged.
  for (NodeId i = 0; i < n; ++i)
    for (NodeId src : fan_in(i)) rev_pool_[cursor[src]++] = i;
  rev_csr_topology_ = topology_revision_;
}

std::span<const NodeId> Graph::consumers(NodeId v) const {
  PSDACC_EXPECTS(v < node_count());
  sync_consumers();
  return {rev_pool_.data() + rev_begin_[v], rev_count_[v]};
}

void Graph::sync_cones() const {
  if (cone_topology_ == topology_revision_) return;
  const std::size_t n = node_count();
  if (cone_topology_ == kNeverSynced || cone_pending_overflow_) {
    cone_rows_.assign(n, {});
    cone_sizes_.assign(n, 0);
  } else {
    // Batched invalidation: row u is stale iff u reaches the tail of an
    // edge added since the last sync — i.e. u lies in the upstream cone
    // of a recorded tail. One reverse BFS over fan-in edges finds every
    // such u; all other rows provably still hold (nothing reachable from
    // them changed).
    std::vector<char> affected(n, 0);
    std::vector<NodeId> frontier;
    for (NodeId t : cone_pending_tails_) {
      if (t < n && !affected[t]) {
        affected[t] = 1;
        frontier.push_back(t);
      }
    }
    while (!frontier.empty()) {
      const NodeId id = frontier.back();
      frontier.pop_back();
      for (NodeId src : fan_in(id)) {
        if (affected[src]) continue;
        affected[src] = 1;
        frontier.push_back(src);
      }
    }
    cone_rows_.resize(n);
    cone_sizes_.resize(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      if (affected[u]) {
        cone_rows_[u].clear();
        cone_sizes_[u] = 0;
      }
    }
  }
  cone_pending_tails_.clear();
  cone_pending_overflow_ = false;
  cone_topology_ = topology_revision_;
}

void Graph::build_cone_row(NodeId v) const {
  sync_consumers();
  auto& row = cone_rows_[v];
  row.assign((node_count() + 63) / 64, 0);
  std::uint32_t size = 0;
  std::vector<NodeId> frontier{v};
  row[v >> 6] |= std::uint64_t{1} << (v & 63);
  ++size;
  while (!frontier.empty()) {
    const NodeId id = frontier.back();
    frontier.pop_back();
    for (NodeId c : consumers(id)) {
      auto& word = row[c >> 6];
      const std::uint64_t bit = std::uint64_t{1} << (c & 63);
      if ((word & bit) != 0) continue;
      word |= bit;
      ++size;
      frontier.push_back(c);
    }
  }
  cone_sizes_[v] = size;
}

ConeView Graph::downstream_cone(NodeId v) const {
  PSDACC_EXPECTS(v < node_count());
  sync_cones();
  const std::vector<std::uint64_t>& row = cone_rows_[v];
  if (row.empty()) build_cone_row(v);  // cones always contain v: empty==unset
  return ConeView(row.data(), row.size(), cone_sizes_[v]);
}

void Graph::sync_roles() const {
  if (role_propagation_ == propagation_revision_) return;
  inputs_memo_.clear();
  outputs_memo_.clear();
  noise_sources_memo_.clear();
  for (NodeId i = 0; i < node_count(); ++i) {
    const NodePayload& p = payloads_[i];
    if (std::holds_alternative<InputNode>(p)) {
      inputs_memo_.push_back(i);
    } else if (std::holds_alternative<OutputNode>(p)) {
      outputs_memo_.push_back(i);
    } else if (std::holds_alternative<QuantizerNode>(p)) {
      noise_sources_memo_.push_back(i);
    } else if (const auto* block = std::get_if<BlockNode>(&p);
               block != nullptr && block->output_format.has_value()) {
      noise_sources_memo_.push_back(i);
    }
  }
  role_propagation_ = propagation_revision_;
}

const std::vector<NodeId>& Graph::inputs() const {
  sync_roles();
  return inputs_memo_;
}

const std::vector<NodeId>& Graph::outputs() const {
  sync_roles();
  return outputs_memo_;
}

const std::vector<NodeId>& Graph::noise_sources() const {
  sync_roles();
  return noise_sources_memo_;
}

bool Graph::has_cycles() const {
  // Kahn's algorithm: cycle iff not all nodes are drained.
  const std::size_t n = node_count();
  sync_consumers();
  std::vector<std::size_t> indegree(n, 0);
  for (NodeId i = 0; i < n; ++i) indegree[i] = fanin_count_[i];
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(i);
  std::size_t drained = 0;
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++drained;
    for (NodeId c : consumers(id))
      if (--indegree[c] == 0) ready.push_back(c);
  }
  return drained != n;
}

std::vector<NodeId> Graph::topological_order() const {
  const std::size_t n = node_count();
  sync_consumers();
  std::vector<std::size_t> indegree(n, 0);
  for (NodeId i = 0; i < n; ++i) indegree[i] = fanin_count_[i];
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < n; ++i)
    if (indegree[i] == 0) ready.push_back(i);
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId c : consumers(id))
      if (--indegree[c] == 0) ready.push_back(c);
  }
  PSDACC_ENSURES(order.size() == n);  // acyclic
  return order;
}

void Graph::validate() const {
  for (NodeId i = 0; i < node_count(); ++i) {
    for (NodeId src : fan_in(i)) PSDACC_EXPECTS(src < node_count());
    std::visit(ArityVisitor{fan_in(i).size()}, payloads_[i]);
  }
}

fxp::NoiseMoments noise_source_moments(const NodeView& node) {
  if (const auto* q = std::get_if<QuantizerNode>(&node.payload))
    return q->moments;
  const auto* block = std::get_if<BlockNode>(&node.payload);
  PSDACC_EXPECTS(block != nullptr && block->output_format.has_value());
  return fxp::continuous_quantization_noise(*block->output_format);
}

bool Graph::is_single_rate() const {
  return std::none_of(payloads_.begin(), payloads_.end(),
                      [](const NodePayload& p) {
                        return std::holds_alternative<DownsampleNode>(p) ||
                               std::holds_alternative<UpsampleNode>(p);
                      });
}

}  // namespace psdacc::sfg
