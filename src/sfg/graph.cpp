#include "sfg/graph.hpp"

#include <algorithm>
#include <atomic>

#include "support/assert.hpp"

namespace psdacc::sfg {
namespace {
std::atomic<std::size_t> graph_copies{0};
}  // namespace

Graph::CopyCounter::CopyCounter(const CopyCounter&) {
  graph_copies.fetch_add(1, std::memory_order_relaxed);
}

Graph::CopyCounter& Graph::CopyCounter::operator=(const CopyCounter&) {
  graph_copies.fetch_add(1, std::memory_order_relaxed);
  return *this;
}

std::size_t Graph::copies_made() {
  return graph_copies.load(std::memory_order_relaxed);
}

const char* node_kind_name(const NodePayload& payload) {
  struct Visitor {
    const char* operator()(const InputNode&) const { return "input"; }
    const char* operator()(const OutputNode&) const { return "output"; }
    const char* operator()(const BlockNode&) const { return "block"; }
    const char* operator()(const GainNode&) const { return "gain"; }
    const char* operator()(const DelayNode&) const { return "delay"; }
    const char* operator()(const AdderNode&) const { return "adder"; }
    const char* operator()(const DownsampleNode&) const { return "down"; }
    const char* operator()(const UpsampleNode&) const { return "up"; }
    const char* operator()(const QuantizerNode&) const { return "quant"; }
  };
  return std::visit(Visitor{}, payload);
}

NodeId Graph::append(Node node) {
  nodes_.push_back(std::move(node));
  node_revisions_.push_back(0);
  ++topology_revision_;
  ++revision_;
  return nodes_.size() - 1;
}

NodeId Graph::add_input(std::string name) {
  return append(Node{InputNode{}, {}, std::move(name)});
}

NodeId Graph::add_output(NodeId src, std::string name) {
  PSDACC_EXPECTS(src < nodes_.size());
  return append(Node{OutputNode{}, {src}, std::move(name)});
}

NodeId Graph::add_block(NodeId src, filt::TransferFunction tf,
                        std::optional<fxp::FixedPointFormat> output_format,
                        std::string name) {
  PSDACC_EXPECTS(src < nodes_.size());
  return append(
      Node{BlockNode{std::move(tf), output_format}, {src}, std::move(name)});
}

NodeId Graph::add_gain(NodeId src, double gain, std::string name) {
  PSDACC_EXPECTS(src < nodes_.size());
  return append(Node{GainNode{gain}, {src}, std::move(name)});
}

NodeId Graph::add_delay(NodeId src, std::size_t delay, std::string name) {
  PSDACC_EXPECTS(src < nodes_.size());
  return append(Node{DelayNode{delay}, {src}, std::move(name)});
}

NodeId Graph::add_adder(std::span<const NodeId> srcs,
                        std::span<const double> signs, std::string name) {
  PSDACC_EXPECTS(srcs.size() >= 1);
  AdderNode adder;
  if (signs.empty()) {
    adder.signs.assign(srcs.size(), 1.0);
  } else {
    PSDACC_EXPECTS(signs.size() == srcs.size());
    adder.signs.assign(signs.begin(), signs.end());
  }
  Node node{std::move(adder), {}, std::move(name)};
  for (NodeId s : srcs) {
    PSDACC_EXPECTS(s < nodes_.size());
    node.inputs.push_back(s);
  }
  return append(std::move(node));
}

NodeId Graph::add_adder(std::initializer_list<NodeId> srcs,
                        std::string name) {
  std::vector<NodeId> v(srcs);
  return add_adder(std::span<const NodeId>(v), {}, std::move(name));
}

NodeId Graph::add_downsample(NodeId src, std::size_t factor,
                             std::string name) {
  PSDACC_EXPECTS(src < nodes_.size());
  PSDACC_EXPECTS(factor >= 1);
  return append(Node{DownsampleNode{factor}, {src}, std::move(name)});
}

NodeId Graph::add_upsample(NodeId src, std::size_t factor, std::string name) {
  PSDACC_EXPECTS(src < nodes_.size());
  PSDACC_EXPECTS(factor >= 1);
  return append(Node{UpsampleNode{factor}, {src}, std::move(name)});
}

NodeId Graph::add_quantizer(NodeId src, fxp::FixedPointFormat format,
                            std::string name) {
  return add_quantizer(src, format, fxp::continuous_quantization_noise(format),
                       std::move(name));
}

NodeId Graph::add_quantizer(NodeId src, fxp::FixedPointFormat format,
                            fxp::NoiseMoments moments, std::string name) {
  PSDACC_EXPECTS(src < nodes_.size());
  return append(
      Node{QuantizerNode{format, moments}, {src}, std::move(name)});
}

void Graph::add_adder_input(NodeId adder, NodeId src, double sign) {
  PSDACC_EXPECTS(adder < nodes_.size());
  PSDACC_EXPECTS(src < nodes_.size());
  auto* payload = std::get_if<AdderNode>(&nodes_[adder].payload);
  PSDACC_EXPECTS(payload != nullptr);
  nodes_[adder].inputs.push_back(src);
  payload->signs.push_back(sign);
  ++node_revisions_[adder];
  ++topology_revision_;
  ++revision_;
}

Graph Graph::from_nodes(std::vector<Node> nodes) {
  Graph g;
  g.nodes_ = std::move(nodes);
  g.node_revisions_.assign(g.nodes_.size(), 0);
  // As if every node had been appended through the builders.
  g.revision_ = g.nodes_.size();
  g.topology_revision_ = g.nodes_.size();
  g.validate();
  return g;
}

const Node& Graph::node(NodeId id) const {
  PSDACC_EXPECTS(id < nodes_.size());
  return nodes_[id];
}

Node& Graph::node(NodeId id) {
  PSDACC_EXPECTS(id < nodes_.size());
  // Conservative: the caller may mutate through this reference, so the
  // revision moves now, before any edit happens.
  ++node_revisions_[id];
  ++revision_;
  return nodes_[id];
}

std::uint64_t Graph::node_revision(NodeId id) const {
  PSDACC_EXPECTS(id < nodes_.size());
  return node_revisions_[id];
}

const std::vector<NodeId>& Graph::downstream_cone(NodeId v) const {
  PSDACC_EXPECTS(v < nodes_.size());
  if (cone_topology_ != topology_revision_) {
    cone_cache_.assign(nodes_.size(), {});
    cone_consumers_ = consumers();
    cone_topology_ = topology_revision_;
  }
  std::vector<NodeId>& cone = cone_cache_[v];
  if (!cone.empty()) return cone;  // cones always contain v: empty == unset
  std::vector<char> seen(nodes_.size(), 0);
  std::vector<NodeId> frontier{v};
  seen[v] = 1;
  cone.push_back(v);
  while (!frontier.empty()) {
    const NodeId id = frontier.back();
    frontier.pop_back();
    for (NodeId c : cone_consumers_[id]) {
      if (seen[c]) continue;
      seen[c] = 1;
      cone.push_back(c);
      frontier.push_back(c);
    }
  }
  std::sort(cone.begin(), cone.end());
  return cone;
}

namespace {

template <typename Predicate>
std::vector<NodeId> collect(const std::vector<Node>& nodes, Predicate pred) {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < nodes.size(); ++i)
    if (pred(nodes[i])) out.push_back(i);
  return out;
}

}  // namespace

std::vector<NodeId> Graph::inputs() const {
  return collect(nodes_, [](const Node& n) {
    return std::holds_alternative<InputNode>(n.payload);
  });
}

std::vector<NodeId> Graph::outputs() const {
  return collect(nodes_, [](const Node& n) {
    return std::holds_alternative<OutputNode>(n.payload);
  });
}

std::vector<NodeId> Graph::noise_sources() const {
  return collect(nodes_, [](const Node& n) {
    if (std::holds_alternative<QuantizerNode>(n.payload)) return true;
    if (const auto* block = std::get_if<BlockNode>(&n.payload))
      return block->output_format.has_value();
    return false;
  });
}

std::vector<std::vector<NodeId>> Graph::consumers() const {
  std::vector<std::vector<NodeId>> out(nodes_.size());
  for (NodeId i = 0; i < nodes_.size(); ++i)
    for (NodeId src : nodes_[i].inputs) out[src].push_back(i);
  return out;
}

bool Graph::has_cycles() const {
  // Kahn's algorithm: cycle iff not all nodes are drained.
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i)
    indegree[i] = nodes_[i].inputs.size();
  const auto cons = consumers();
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (indegree[i] == 0) ready.push_back(i);
  std::size_t drained = 0;
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    ++drained;
    for (NodeId c : cons[id])
      if (--indegree[c] == 0) ready.push_back(c);
  }
  return drained != nodes_.size();
}

std::vector<NodeId> Graph::topological_order() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (NodeId i = 0; i < nodes_.size(); ++i)
    indegree[i] = nodes_[i].inputs.size();
  const auto cons = consumers();
  std::vector<NodeId> ready;
  for (NodeId i = 0; i < nodes_.size(); ++i)
    if (indegree[i] == 0) ready.push_back(i);
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (NodeId c : cons[id])
      if (--indegree[c] == 0) ready.push_back(c);
  }
  PSDACC_ENSURES(order.size() == nodes_.size());  // acyclic
  return order;
}

void Graph::validate() const {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    for (NodeId src : n.inputs) PSDACC_EXPECTS(src < nodes_.size());
    struct ArityVisitor {
      std::size_t fan_in;
      void operator()(const InputNode&) const { PSDACC_EXPECTS(fan_in == 0); }
      void operator()(const OutputNode&) const { PSDACC_EXPECTS(fan_in == 1); }
      void operator()(const BlockNode&) const { PSDACC_EXPECTS(fan_in == 1); }
      void operator()(const GainNode&) const { PSDACC_EXPECTS(fan_in == 1); }
      void operator()(const DelayNode&) const { PSDACC_EXPECTS(fan_in == 1); }
      void operator()(const AdderNode& a) const {
        PSDACC_EXPECTS(fan_in >= 1);
        PSDACC_EXPECTS(a.signs.size() == fan_in);
      }
      void operator()(const DownsampleNode& d) const {
        PSDACC_EXPECTS(fan_in == 1);
        PSDACC_EXPECTS(d.factor >= 1);
      }
      void operator()(const UpsampleNode& u) const {
        PSDACC_EXPECTS(fan_in == 1);
        PSDACC_EXPECTS(u.factor >= 1);
      }
      void operator()(const QuantizerNode&) const {
        PSDACC_EXPECTS(fan_in == 1);
      }
    };
    std::visit(ArityVisitor{n.inputs.size()}, n.payload);
  }
}

fxp::NoiseMoments noise_source_moments(const Node& node) {
  if (const auto* q = std::get_if<QuantizerNode>(&node.payload))
    return q->moments;
  const auto* block = std::get_if<BlockNode>(&node.payload);
  PSDACC_EXPECTS(block != nullptr && block->output_format.has_value());
  return fxp::continuous_quantization_noise(*block->output_format);
}

bool Graph::is_single_rate() const {
  return std::none_of(nodes_.begin(), nodes_.end(), [](const Node& n) {
    return std::holds_alternative<DownsampleNode>(n.payload) ||
           std::holds_alternative<UpsampleNode>(n.payload);
  });
}

}  // namespace psdacc::sfg
