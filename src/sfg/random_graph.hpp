/// @file random_graph.hpp
/// Structure-aware random SFG generation — the shared generator behind the
/// randomized property tests (tests/test_random_graphs.cpp), the
/// round-trip serialization suite, and the `psdacc-verify fuzz`
/// differential fuzzer. Deterministic: one Xoshiro256 seed fully fixes the
/// graph.
///
/// With default options the generator reproduces the historical
/// test_random_graphs.cpp population exactly (same RNG call sequence), so
/// the tolerance bands those tests pinned remain valid. The extra knobs
/// grow the population along axes the serializer and engines must survive:
///
///  * `multirate`   — down/upsampler trunk stages (psd/moment-only
///                    territory; the flat engine refuses these graphs);
///  * `hostile_names` — parser-hostile node names: quotes, backslashes,
///                    newlines, tabs, control bytes, '#'/'='/brackets,
///                    very long names, leading/trailing spaces;
///  * `degenerate`  — occasionally emit boundary graphs (empty, a single
///                    input, a source-free pass-through) that exercise the
///                    serializer but are not evaluable by the engines;
///  * `max_block_taps` — raises the FIR design order up to "max-order"
///                    transfer functions for long-coefficient-list lines.
#pragma once

#include <cstdint>
#include <string>

#include "filters/transfer_function.hpp"
#include "sfg/graph.hpp"
#include "support/random.hpp"

namespace psdacc::sfg {

struct RandomGraphOptions {
  /// Trunk stages (branch / gain / delay / block, plus multirate stages
  /// when enabled).
  int depth = 6;
  /// Insert downsample/upsample trunk stages (multirate population).
  bool multirate = false;
  /// Draw node names from a parser-hostile alphabet.
  bool hostile_names = false;
  /// Roughly 1 in 8 seeds produce a boundary graph (empty / single node /
  /// no noise source) instead of a trunk graph.
  bool degenerate = false;
  /// Upper bound on random FIR block length (default matches the
  /// historical zoo: 9 + 2*19 = 47 taps).
  int max_block_taps = 47;
};

/// Random LTI block from the design zoo (FIR low/high-pass, Butterworth /
/// Chebyshev-I IIR, pure gain). `max_taps` bounds the FIR length.
filt::TransferFunction random_transfer_function(Xoshiro256& rng,
                                                int max_taps = 47);

/// A parser-hostile node name: quotes, escapes, control bytes, '#', '=',
/// brackets, long runs — everything the serializer must escape.
std::string random_hostile_name(Xoshiro256& rng);

/// Builds a random acyclic SFG: a trunk of quantized blocks with
/// occasional two-branch fan-out/fan-in (distinct sources per branch with
/// a decorrelating delay, so Eq. 14 is applicable) and delays. Exactly one
/// input and one output except for `degenerate` draws.
Graph random_graph(std::uint64_t seed, const RandomGraphOptions& opts = {});

}  // namespace psdacc::sfg
