// SFG builders for the three classical IIR realization forms of the same
// H(z) — direct, cascade of biquads, parallel — with every section output
// quantized. Together with the PSD engine this reproduces the Jackson-
// style realization-form roundoff-noise comparison (the paper's reference
// [10]).
#pragma once

#include "filters/sos.hpp"
#include "sfg/graph.hpp"

namespace psdacc::sfg {

/// in -> Q(fmt) -> [single quantized block H(z)] -> out.
Graph build_direct_form(const filt::TransferFunction& tf,
                        const fxp::FixedPointFormat& fmt);

/// in -> Q(fmt) -> [biquad 1, quantized] -> ... -> [biquad k] -> out.
Graph build_cascade_form(const std::vector<filt::Biquad>& sections,
                         const fxp::FixedPointFormat& fmt);

/// in -> Q(fmt) -> parallel branches (each a quantized first/second-order
/// block plus the direct gain) -> adder -> out.
Graph build_parallel_form(const filt::ParallelForm& form,
                          const fxp::FixedPointFormat& fmt);

}  // namespace psdacc::sfg
