#include "sfg/random_graph.hpp"

#include <string_view>

#include "filters/fir_design.hpp"
#include "filters/iir_design.hpp"

namespace psdacc::sfg {

filt::TransferFunction random_transfer_function(Xoshiro256& rng,
                                                int max_taps) {
  // Historical zoo (max_taps == 47 reproduces the original
  // test_random_graphs.cpp draw: taps in {9, 11, ..., 47}).
  const std::uint64_t tap_choices =
      max_taps >= 11 ? static_cast<std::uint64_t>((max_taps - 9) / 2 + 1)
                     : 1;
  switch (rng.below(5)) {
    case 0:
      return filt::TransferFunction(filt::fir_lowpass(
          9 + 2 * rng.below(tap_choices), rng.uniform(0.08, 0.4)));
    case 1:
      return filt::TransferFunction(filt::fir_highpass(
          9 + 2 * rng.below(tap_choices), rng.uniform(0.08, 0.4)));
    case 2:
      return filt::iir_lowpass(filt::IirFamily::kButterworth,
                               2 + static_cast<int>(rng.below(4)),
                               rng.uniform(0.1, 0.35));
    case 3:
      return filt::iir_highpass(filt::IirFamily::kChebyshev1,
                                2 + static_cast<int>(rng.below(3)),
                                rng.uniform(0.1, 0.3));
    default:
      return filt::TransferFunction::gain(rng.uniform(0.3, 1.5));
  }
}

std::string random_hostile_name(Xoshiro256& rng) {
  using namespace std::string_view_literals;
  // Everything the serializer's string escaping must survive; sv literals
  // keep embedded NUL and control bytes.
  static constexpr std::string_view kPieces[] = {
      "plain"sv,        "with space"sv,  "quote\"q"sv,   "back\\slash"sv,
      "line\nbreak"sv,  "tab\tsep"sv,    "cr\rret"sv,    "#comment"sv,
      "key=value"sv,    "[list]"sv,      "{brace}"sv,    "trailing "sv,
      " leading"sv,     "utf8-\xc3\xa9"sv, "ctrl-\x01\x02"sv,
      "del-\x7f"sv,     "nul-\0-byte"sv,
  };
  constexpr std::uint64_t kCount = sizeof(kPieces) / sizeof(kPieces[0]);
  std::string out;
  const std::uint64_t pieces = rng.below(4);  // 0..3: empty names are legal
  for (std::uint64_t i = 0; i < pieces; ++i)
    out += kPieces[rng.below(kCount)];
  if (rng.below(8) == 0) out.append(200 + rng.below(100), 'x');
  return out;
}

namespace {

// Boundary graphs the serializer must round-trip even though the engines
// cannot evaluate them.
Graph degenerate_graph(Xoshiro256& rng) {
  Graph g;
  switch (rng.below(4)) {
    case 0:  // empty
      break;
    case 1:  // a single dangling input
      g.add_input();
      break;
    case 2:  // source-free pass-through
      g.add_output(g.add_input());
      break;
    default: {  // source-free with an exact node in between
      const auto in = g.add_input();
      g.add_output(g.add_delay(in, 1 + rng.below(4)));
      break;
    }
  }
  return g;
}

}  // namespace

Graph random_graph(std::uint64_t seed, const RandomGraphOptions& opts) {
  Xoshiro256 rng(seed);
  if (opts.degenerate && rng.below(8) == 0) return degenerate_graph(rng);

  const auto name = [&](const char* plain) {
    return opts.hostile_names ? random_hostile_name(rng)
                              : std::string(plain);
  };
  const auto fmt = fxp::q_format(5, 12);
  Graph g;
  const auto in = g.add_input(name("in"));
  NodeId head = g.add_quantizer(in, fmt, name("quant"));
  // Draws are hoisted into locals so the RNG call sequence is fixed by the
  // code, not by argument evaluation order (hostile names draw too).
  const auto random_block = [&]() {
    return random_transfer_function(rng, opts.max_block_taps);
  };
  const std::uint64_t choices = opts.multirate ? 6 : 4;
  for (int stage = 0; stage < opts.depth; ++stage) {
    const auto choice = rng.below(choices);
    if (choice == 0) {
      // Branch: two differently-filtered quantized paths, re-joined. The
      // common upstream noise reconverges with a decorrelating delay.
      auto left_tf = random_block();
      const auto left = g.add_block(head, std::move(left_tf), fmt,
                                    name("block"));
      const auto right_delay = 1 + rng.below(8);
      const auto right_d = g.add_delay(head, right_delay, name("delay"));
      auto right_tf = random_block();
      const auto right = g.add_block(right_d, std::move(right_tf), fmt,
                                     name("block"));
      head = g.add_adder({left, right}, name("add"));
    } else if (choice == 1) {
      const double gain = rng.uniform(0.4, 1.2);
      head = g.add_gain(head, gain, name("gain"));
    } else if (choice == 2) {
      const auto delay = 1 + rng.below(4);
      head = g.add_delay(head, delay, name("delay"));
    } else if (choice == 3) {
      auto tf = random_block();
      head = g.add_block(head, std::move(tf), fmt, name("block"));
    } else if (choice == 4) {
      // Anti-alias filter then decimate (the paper's multirate shape).
      auto tf = random_block();
      head = g.add_block(head, std::move(tf), fmt, name("block"));
      const auto factor = 2 + rng.below(2);
      head = g.add_downsample(head, factor, name("down"));
    } else {
      // Expand then interpolate.
      head = g.add_upsample(head, 2, name("up"));
      auto tf = random_block();
      head = g.add_block(head, std::move(tf), fmt, name("block"));
    }
  }
  g.add_output(head, name("out"));
  g.validate();
  return g;
}

}  // namespace psdacc::sfg
