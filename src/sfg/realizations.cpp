#include "sfg/realizations.hpp"

#include "support/assert.hpp"

namespace psdacc::sfg {

Graph build_direct_form(const filt::TransferFunction& tf,
                        const fxp::FixedPointFormat& fmt) {
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fmt, "q_in");
  g.add_output(g.add_block(q, tf, fmt, "direct"));
  g.validate();
  return g;
}

Graph build_cascade_form(const std::vector<filt::Biquad>& sections,
                         const fxp::FixedPointFormat& fmt) {
  PSDACC_EXPECTS(!sections.empty());
  Graph g;
  const auto in = g.add_input();
  NodeId head = g.add_quantizer(in, fmt, "q_in");
  int index = 0;
  for (const auto& s : sections) {
    head = g.add_block(head, s.tf(), fmt,
                       "sos" + std::to_string(index++));
  }
  g.add_output(head);
  g.validate();
  return g;
}

Graph build_parallel_form(const filt::ParallelForm& form,
                          const fxp::FixedPointFormat& fmt) {
  PSDACC_EXPECTS(!form.sections.empty());
  Graph g;
  const auto in = g.add_input();
  const auto q = g.add_quantizer(in, fmt, "q_in");
  std::vector<NodeId> branches;
  if (form.direct != 0.0)
    branches.push_back(g.add_gain(q, form.direct, "direct"));
  int index = 0;
  for (const auto& s : form.sections) {
    branches.push_back(
        g.add_block(q, s.tf(), fmt, "par" + std::to_string(index++)));
  }
  const auto sum = g.add_adder(std::span<const NodeId>(branches), {}, "sum");
  g.add_output(sum);
  g.validate();
  return g;
}

}  // namespace psdacc::sfg
