/// @file serialize.hpp
/// Versioned text serialization for signal-flow graphs and evaluation
/// scenarios — the persistence layer behind the golden corpus, the
/// `psdacc-verify` CLI, and every future replay/serve pipeline.
///
/// ## Format (version 1)
///
/// A document is a version header followed by named sections:
///
///     psdacc-sfg v1
///     graph {
///       node 0 input name="in"
///       node 1 quant in=[0] format=sQ4.12/round/sat
///           moments=[0 2.02e-08] name="q"       (one line in a real file)
///       node 2 block in=[1] b=[1 0.5] a=[1 -0.25]
///           format=sQ4.12/round/sat name="h"    (one line in a real file)
///       node 3 output in=[2] name="out"
///     }
///     config {
///       n_psd=1024
///       ...
///       engines=[simulation psd moment flat]
///     }
///     expect {
///       psd=1.234e-08
///     }
///
/// (shown wrapped; real documents keep one node per line). The `graph`
/// section is mandatory; `config` (a sim::EvaluationConfig), `expect`
/// (golden per-engine output noise powers), and `opt_expect` (golden
/// word-length-optimizer outcomes, one `run ...` line each) are
/// optional. See docs/SERIALIZATION.md for the full grammar and the
/// versioning policy.
///
/// ## Contracts
///
///  * **Round-trip exactness.** Doubles are emitted with shortest
///    round-trip formatting (std::to_chars), so parse(serialize(x))
///    reproduces every field bit-for-bit, including overridden quantizer
///    noise moments and feedback (forward) adder edges.
///  * **Canonical emission.** serialize() output is canonical: fixed key
///    order, single spaces, LF endings. serialize(parse(serialize(x)))
///    is byte-identical to serialize(x), and a canonical document
///    re-serializes to itself — the property the corpus and fuzzer pin.
///  * **Strict, diagnosable errors.** Malformed input throws ParseError
///    carrying 1-based line/column and a message (truncated documents,
///    unsupported versions, dangling edges, NaN/inf coefficients, arity
///    violations, bad escapes) — never UB, never a contract abort.
///  * **Forward compatibility.** Unknown node attributes, unknown
///    config/expect keys, and unknown sections are skipped, so a v1
///    parser reads documents written by later minor revisions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"

namespace psdacc::sfg {

/// Version emitted in the header and accepted by the parser.
inline constexpr int kSerializeFormatVersion = 1;

/// Parse failure with 1-based source position. what() is
/// "line L, column C: message".
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t line,
             std::size_t column);

  std::size_t line() const { return line_; }
  std::size_t column() const { return column_; }
  /// The message without the position prefix.
  const std::string& message() const { return message_; }

 private:
  std::string message_;
  std::size_t line_;
  std::size_t column_;
};

/// One optimizer golden: a word-length search pinned end to end — the
/// strategy token (opt::search vocabulary: uniform | greedy |
/// min_plus_one | anneal | tabu | bnb), the probe engine and constraints
/// it ran under, and the weighted bit cost it must reproduce. The
/// variables are the graph's noise sources, weights all 1, n_psd the
/// scenario config's; `seed` feeds the annealer's master RNG and is
/// carried (and ignored) by the deterministic strategies.
struct OptExpectation {
  std::string strategy = "greedy";
  core::EngineKind engine = core::EngineKind::kPsd;
  double budget = 1e-8;
  int min_bits = 2;
  int max_bits = 24;
  std::uint64_t seed = 0;
  double cost = 0.0;  ///< Golden cost (exact: integer-valued sums).
};

/// A serializable evaluation scenario: the graph, how to evaluate it, and
/// (for golden-corpus entries) the expected output noise power per engine.
struct Scenario {
  Graph graph;
  sim::EvaluationConfig config;
  /// Golden `output_noise_power()` per engine, in emission order
  /// (kAllEngineKinds order when written by serialize()). Empty for
  /// non-corpus documents.
  std::vector<std::pair<core::EngineKind, double>> expected;
  /// Optimizer goldens (`opt_expect` section), in emission order. Empty
  /// for non-corpus documents.
  std::vector<OptExpectation> opt_expected;
};

/// Canonical graph-only document (header + graph section).
std::string serialize(const Graph& g);
/// Canonical scenario document (header + graph + config [+ expect]).
std::string serialize(const Scenario& s);

/// Parses a document and returns its graph, ignoring config/expect.
/// @throws ParseError on malformed input
Graph parse_graph(std::string_view text);

/// Parses a full document. A missing config section yields a
/// default-constructed sim::EvaluationConfig; a missing expect section
/// yields an empty expectation list.
/// @throws ParseError on malformed input
Scenario parse_scenario(std::string_view text);

/// Exact structural equality: same node count and, per node, identical
/// payload (bitwise doubles), input edges, and name. Revision counters and
/// lazy caches are ignored — equality is about what would serialize.
bool graphs_equal(const Graph& a, const Graph& b);

/// Stable 128-bit content digest of a graph (or scenario) — the cache-key
/// contract of the serving layer: two submissions with the same hash carry
/// byte-identical canonical documents, so a result computed for one is the
/// result of the other.
///
/// The hash is FNV-1a/128 over the *canonical serialized form*, so it is
/// independent of construction history (revision counters, cone caches,
/// probe state) and stable across processes, platforms, and PRs — a pinned
/// value in the regression suite guards the latter. Changing the canonical
/// emission (a format version bump) intentionally changes hashes: cached
/// results keyed on the old format must not survive a format change.
struct ContentHash {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  friend bool operator==(const ContentHash&, const ContentHash&) = default;
  /// 32 lowercase hex characters, high half first.
  std::string to_string() const;
};

/// FNV-1a/128 of raw bytes (the primitive the overloads share).
ContentHash content_hash_bytes(std::string_view bytes);
/// Hash of the canonical graph-only document.
ContentHash content_hash(const Graph& g);
/// Hash of the canonical graph + config document: covers the engine set,
/// spectral resolution, and the full Monte-Carlo plan, so two jobs hash
/// equal only when their evaluations are interchangeable.
ContentHash content_hash(const Graph& g, const sim::EvaluationConfig& cfg);

/// File helpers. load_scenario throws std::runtime_error on I/O failure
/// and ParseError (with the file's line/column) on malformed content.
Scenario load_scenario(const std::string& path);
void save_scenario(const std::string& path, const Scenario& s);

}  // namespace psdacc::sfg
