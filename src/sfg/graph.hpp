/// @file graph.hpp
/// Signal-flow graph container and builder API.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sfg/node.hpp"

namespace psdacc::sfg {

/// The paper's system model (Fig. 1): a directed graph of LTI blocks
/// delimited by additive quantization-noise sources.
///
/// Nodes are appended through typed add_* methods that wire fan-in edges at
/// construction; feedback loops are created afterwards with
/// `add_adder_input` and must be removed by `collapse_loops` (see
/// transform.hpp) before any analysis or simulation runs (method step 1 of
/// the paper). Every add_* method returns the new node's NodeId, which is
/// the handle used for wiring and for indexing analysis results.
class Graph {
 public:
  /// Process-wide number of Graph copy constructions/assignments so far
  /// (monotonic, thread-safe). Copies are legal — the parallel runtime
  /// clones graphs per worker on purpose — but counted, so tests can
  /// assert that move-friendly APIs (runtime::BatchRunner's rvalue
  /// overload, moved-in BatchJobs) never copy a graph.
  static std::size_t copies_made();

  /// External signal input (no noise of its own).
  NodeId add_input(std::string name = "in");
  /// Marks @p src as a system output; analyses report noise here.
  NodeId add_output(NodeId src, std::string name = "out");
  /// LTI block with transfer function @p tf fed by @p src.
  /// @param output_format when set, the block computes in fixed point and
  ///        injects quantization noise at its output
  NodeId add_block(NodeId src, filt::TransferFunction tf,
                   std::optional<fxp::FixedPointFormat> output_format = {},
                   std::string name = "block");
  /// Constant multiplier.
  NodeId add_gain(NodeId src, double gain, std::string name = "gain");
  /// Pure delay of @p delay samples (z^-delay).
  NodeId add_delay(NodeId src, std::size_t delay, std::string name = "delay");
  /// N-ary adder; @p signs (+1/-1 per input) defaults to all +1.
  NodeId add_adder(std::span<const NodeId> srcs,
                   std::span<const double> signs = {},
                   std::string name = "add");
  NodeId add_adder(std::initializer_list<NodeId> srcs,
                   std::string name = "add");
  /// Keep every @p factor-th sample (multirate decimation).
  NodeId add_downsample(NodeId src, std::size_t factor,
                        std::string name = "down");
  /// Insert @p factor - 1 zeros between samples (multirate expansion).
  NodeId add_upsample(NodeId src, std::size_t factor,
                      std::string name = "up");
  /// Explicit quantizer to @p format; PQN moments derived from the format.
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       std::string name = "quant");
  /// Explicit quantizer with caller-supplied noise moments (e.g. the
  /// narrowing corrected form, or measured moments).
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       fxp::NoiseMoments moments, std::string name = "quant");

  /// Adds a (possibly feedback) input edge to an existing adder.
  void add_adder_input(NodeId adder, NodeId src, double sign = 1.0);

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  Node& node(NodeId id);

  /// Ids of all Input / Output / noise-injecting nodes.
  std::vector<NodeId> inputs() const;
  std::vector<NodeId> outputs() const;
  std::vector<NodeId> noise_sources() const;

  /// Consumers of each node (inverse adjacency), rebuilt on call.
  std::vector<std::vector<NodeId>> consumers() const;

  /// True when the graph contains at least one cycle.
  bool has_cycles() const;

  /// Topological order (asserts acyclicity).
  std::vector<NodeId> topological_order() const;

  /// Structural checks: edges in range, fan-in arity per node kind, adder
  /// sign count matches fan-in. Aborts via contract violation on failure.
  void validate() const;

  /// True if the graph contains no Up/Downsample nodes (required by the
  /// flat analyzer, which assumes a single-rate LTI system).
  bool is_single_rate() const;

 private:
  // Bumps the copies_made() counter whenever a Graph is copied while
  // keeping Graph's own special members implicit (a hand-written Graph
  // copy constructor would silently drop members added later).
  struct CopyCounter {
    CopyCounter() = default;
    CopyCounter(const CopyCounter&);
    CopyCounter& operator=(const CopyCounter&);
    CopyCounter(CopyCounter&&) noexcept = default;
    CopyCounter& operator=(CopyCounter&&) noexcept = default;
  };

  NodeId append(Node node);

  [[no_unique_address]] CopyCounter copy_counter_;
  std::vector<Node> nodes_;
};

}  // namespace psdacc::sfg
