/// @file graph.hpp
/// Signal-flow graph container and builder API (arena/SoA storage).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sfg/node.hpp"

namespace psdacc::sfg {

/// Read-only view of a memoized downstream cone: the node set a word-length
/// change at one vertex can perturb, held as a dynamic bitset over NodeId.
/// Iteration yields members in ascending NodeId order. A view is valid
/// until the next structural edit of the owning Graph (the same lifetime
/// contract as the per-vertex vectors it replaced) — it never materializes
/// the member list.
class ConeView {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = NodeId;
    using difference_type = std::ptrdiff_t;
    using pointer = const NodeId*;
    using reference = NodeId;

    iterator() = default;
    iterator(const std::uint64_t* words, std::size_t n_words,
             std::size_t word)
        : words_(words), n_words_(n_words), word_(word) {
      bits_ = word_ < n_words_ ? words_[word_] : 0;
      advance_to_set_bit();
    }

    NodeId operator*() const {
      return (word_ << 6) + static_cast<std::size_t>(std::countr_zero(bits_));
    }
    iterator& operator++() {
      bits_ &= bits_ - 1;  // clear lowest set bit
      advance_to_set_bit();
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.word_ == b.word_ && a.bits_ == b.bits_;
    }

   private:
    void advance_to_set_bit() {
      while (bits_ == 0) {
        ++word_;
        if (word_ >= n_words_) {
          word_ = n_words_;
          return;
        }
        bits_ = words_[word_];
      }
    }

    const std::uint64_t* words_ = nullptr;
    std::size_t n_words_ = 0;
    std::size_t word_ = 0;
    std::uint64_t bits_ = 0;
  };

  ConeView() = default;
  ConeView(const std::uint64_t* words, std::size_t n_words, std::size_t size)
      : words_(words), n_words_(n_words), size_(size) {}

  /// O(1) membership test. Ids beyond the bitset (nodes appended after the
  /// row was built, necessarily outside it) test false.
  bool contains(NodeId v) const {
    const std::size_t w = v >> 6;
    return w < n_words_ && ((words_[w] >> (v & 63)) & 1u) != 0;
  }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::span<const std::uint64_t> words() const { return {words_, n_words_}; }
  iterator begin() const { return iterator(words_, n_words_, 0); }
  iterator end() const { return iterator(words_, n_words_, n_words_); }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t n_words_ = 0;
  std::size_t size_ = 0;
};

/// The paper's system model (Fig. 1): a directed graph of LTI blocks
/// delimited by additive quantization-noise sources.
///
/// Nodes are appended through typed add_* methods that wire fan-in edges at
/// construction; feedback loops are created afterwards with
/// `add_adder_input` and must be removed by `collapse_loops` (see
/// transform.hpp) before any analysis or simulation runs (method step 1 of
/// the paper). Every add_* method returns the new node's NodeId, which is
/// the handle used for wiring and for indexing analysis results.
///
/// Storage is structure-of-arrays: payload variants live in one contiguous
/// arena, fan-in edges in a CSR-style flat pool, and names are interned in
/// a string pool — a 10^5-node graph is a handful of allocations. Lazy
/// query caches (reverse CSR, cone bitsets, role lists) follow a one-writer
/// contract: graphs are cloned per worker, never queried concurrently
/// through one shared instance.
class Graph {
 public:
  /// Process-wide number of Graph copy constructions/assignments so far
  /// (monotonic, thread-safe). Copies are legal — the parallel runtime
  /// clones graphs per worker on purpose — but counted, so tests can
  /// assert that move-friendly APIs (runtime::BatchRunner's rvalue
  /// overload, moved-in BatchJobs) never copy a graph.
  static std::size_t copies_made();

  /// Pre-sizes the node arenas (and optionally the edge pool) so bulk
  /// construction is allocation-free past this call.
  void reserve(std::size_t nodes, std::size_t edges = 0);

  /// External signal input (no noise of its own).
  NodeId add_input(std::string_view name = "in");
  /// Marks @p src as a system output; analyses report noise here.
  NodeId add_output(NodeId src, std::string_view name = "out");
  /// LTI block with transfer function @p tf fed by @p src.
  /// @param output_format when set, the block computes in fixed point and
  ///        injects quantization noise at its output
  NodeId add_block(NodeId src, filt::TransferFunction tf,
                   std::optional<fxp::FixedPointFormat> output_format = {},
                   std::string_view name = "block");
  /// Constant multiplier.
  NodeId add_gain(NodeId src, double gain, std::string_view name = "gain");
  /// Pure delay of @p delay samples (z^-delay).
  NodeId add_delay(NodeId src, std::size_t delay,
                   std::string_view name = "delay");
  /// N-ary adder; @p signs (+1/-1 per input) defaults to all +1.
  NodeId add_adder(std::span<const NodeId> srcs,
                   std::span<const double> signs = {},
                   std::string_view name = "add");
  NodeId add_adder(std::initializer_list<NodeId> srcs,
                   std::string_view name = "add");
  /// Keep every @p factor-th sample (multirate decimation).
  NodeId add_downsample(NodeId src, std::size_t factor,
                        std::string_view name = "down");
  /// Insert @p factor - 1 zeros between samples (multirate expansion).
  NodeId add_upsample(NodeId src, std::size_t factor,
                      std::string_view name = "up");
  /// Explicit quantizer to @p format; PQN moments derived from the format.
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       std::string_view name = "quant");
  /// Explicit quantizer with caller-supplied noise moments (e.g. the
  /// narrowing corrected form, or measured moments).
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       fxp::NoiseMoments moments,
                       std::string_view name = "quant");

  /// Adds a (possibly feedback) input edge to an existing adder.
  void add_adder_input(NodeId adder, NodeId src, double sign = 1.0);

  /// Rebuilds a graph from a complete node list — the deserialization
  /// path. Unlike the incremental add_* builders this accepts forward
  /// edges anywhere they are representable (feedback adder inputs), so a
  /// parsed graph reproduces the original byte-for-byte. The node list
  /// must already be structurally sound: `validate()` runs on the result
  /// (contract abort on violation), so parsers diagnose malformed input
  /// *before* calling this.
  static Graph from_nodes(std::vector<Node> nodes);

  /// Materializes the AoS node list back out of the arenas — the escape
  /// hatch for structural surgery (transform.cpp edits plain Nodes, then
  /// rebuilds with from_nodes).
  std::vector<Node> to_nodes() const;

  std::size_t node_count() const { return payloads_.size(); }
  /// Read view of one node (payload arena ref + fan-in span + interned
  /// name). Valid until the next mutation.
  NodeView node(NodeId id) const;
  std::string_view name(NodeId id) const;

  /// Re-formats a noise source in place: a QuantizerNode gets @p format
  /// plus the format-derived continuous PQN moments; a quantized BlockNode
  /// gets @p format as its output_format. Only that node's revision (and
  /// the graph revision + format-edit journal) move — per-source caches of
  /// *other* sources stay warm, which is what keeps optimizer probe loops
  /// O(1) per probe. Aborts unless @p id is a noise source.
  void set_format(NodeId id, fxp::FixedPointFormat format);

  /// Replaces a node's payload wholesale (fan-in arity must stay legal for
  /// the new payload kind). This is a propagation-affecting edit: it bumps
  /// `propagation_revision()`, so engines drop derived transfer state.
  void set_payload(NodeId id, NodePayload payload);

  /// Monotonic counter covering *every* mutation: structural edits,
  /// set_format and set_payload. Evaluation caches key on it: equal
  /// revisions guarantee an unchanged graph.
  std::uint64_t revision() const { return revision_; }
  /// Monotonic counter covering structural edits only (add_* /
  /// add_adder_input / from_nodes). Reachability memos and analyzer
  /// preprocessing key on it; payload and format edits leave it untouched.
  std::uint64_t topology_revision() const { return topology_revision_; }
  /// Monotonic counter covering every edit that can change signal/noise
  /// *propagation*: structural edits and set_payload. Format edits via
  /// set_format leave it untouched (a source's format scales its injected
  /// noise but never alters any transfer function), so unit-response
  /// caches key on this and survive optimizer probe storms.
  std::uint64_t propagation_revision() const { return propagation_revision_; }
  /// Per-node counter: bumped when the node is edited (set_format /
  /// set_payload) or gains a fan-in edge. Lets per-source caches re-derive
  /// only the contributions whose source actually moved.
  std::uint64_t node_revision(NodeId id) const;

  /// Total set_format edits so far. Together with `format_edits_since`
  /// this forms a bounded journal: caches remember the count they last
  /// synced at and replay only the edits in between.
  std::uint64_t format_edit_count() const { return format_edit_count_; }
  /// Appends the node ids of the format edits in (@p seen,
  /// format_edit_count()] to @p out (possibly with duplicates), oldest
  /// first. Returns false when the journal ring no longer covers that
  /// window — the caller must fall back to a per-term revision scan.
  bool format_edits_since(std::uint64_t seen, std::vector<NodeId>& out) const;

  /// All nodes reachable from @p v along signal-flow edges, @p v included
  /// — the "dirty cone" a word-length change at @p v can perturb.
  /// Memoized per node as a bitset row; rows are dropped in batch on
  /// topology edits, and only rows whose owner reaches an edited edge's
  /// tail drop (the rest stay warm). Format edits keep every row valid.
  ConeView downstream_cone(NodeId v) const;

  /// Ids of all Input / Output / noise-injecting nodes, ascending.
  /// Memoized on propagation_revision(); the reference is valid until the
  /// next structural or payload edit.
  const std::vector<NodeId>& inputs() const;
  const std::vector<NodeId>& outputs() const;
  const std::vector<NodeId>& noise_sources() const;

  /// Consumers of @p v (inverse adjacency), ascending. Served from a
  /// mirrored reverse CSR rebuilt lazily per topology revision — O(1) per
  /// call, not O(V+E) like the rebuild-on-call predecessor.
  std::span<const NodeId> consumers(NodeId v) const;

  /// True when the graph contains at least one cycle.
  bool has_cycles() const;

  /// Topological order (asserts acyclicity).
  std::vector<NodeId> topological_order() const;

  /// Structural checks: edges in range, fan-in arity per node kind, adder
  /// sign count matches fan-in. Aborts via contract violation on failure.
  void validate() const;

  /// True if the graph contains no Up/Downsample nodes (required by the
  /// flat analyzer, which assumes a single-rate LTI system).
  bool is_single_rate() const;

 private:
  // Bumps the copies_made() counter whenever a Graph is copied while
  // keeping Graph's own special members implicit (a hand-written Graph
  // copy constructor would silently drop members added later).
  struct CopyCounter {
    CopyCounter() = default;
    CopyCounter(const CopyCounter&);
    CopyCounter& operator=(const CopyCounter&);
    CopyCounter(CopyCounter&&) noexcept = default;
    CopyCounter& operator=(CopyCounter&&) noexcept = default;
  };

  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  static constexpr std::uint64_t kNeverSynced = ~std::uint64_t{0};
  static constexpr std::size_t kFormatJournalSize = 64;
  // Past this many pending dirty-edge tails a batched cone sync degrades
  // to a full drop (the upstream sweep would cost more than rebuilding).
  static constexpr std::size_t kMaxPendingTails = 64;

  NodeId append(NodePayload payload, std::span<const NodeId> inputs,
                std::string_view name);
  std::uint32_t intern(std::string_view name);
  std::span<const NodeId> fan_in(NodeId id) const {
    return {edge_pool_.data() + fanin_begin_[id], fanin_count_[id]};
  }
  void note_new_edge_tail(NodeId tail);
  void sync_consumers() const;
  void sync_cones() const;
  void build_cone_row(NodeId v) const;
  void sync_roles() const;

  [[no_unique_address]] CopyCounter copy_counter_;

  // --- SoA arenas -------------------------------------------------------
  std::vector<NodePayload> payloads_;
  std::vector<std::uint32_t> name_ids_;     // index into name_pool_
  std::vector<std::uint32_t> fanin_begin_;  // offset into edge_pool_
  std::vector<std::uint32_t> fanin_count_;
  std::vector<NodeId> edge_pool_;  // CSR fan-in runs (holes possible after
                                   // an adder run relocates to grow)
  std::vector<std::string> name_pool_;
  std::unordered_map<std::string, std::uint32_t, NameHash, std::equal_to<>>
      name_lookup_;

  // --- revision counters ------------------------------------------------
  std::uint64_t revision_ = 0;
  std::uint64_t topology_revision_ = 0;
  std::uint64_t propagation_revision_ = 0;
  std::vector<std::uint64_t> node_revisions_;

  // --- format-edit journal ----------------------------------------------
  std::uint64_t format_edit_count_ = 0;
  std::array<NodeId, kFormatJournalSize> format_journal_{};

  // --- lazy query caches (one-writer contract, see class comment) -------
  mutable std::uint64_t rev_csr_topology_ = kNeverSynced;
  mutable std::vector<std::uint32_t> rev_begin_;
  mutable std::vector<std::uint32_t> rev_count_;
  mutable std::vector<NodeId> rev_pool_;

  mutable std::uint64_t cone_topology_ = kNeverSynced;
  mutable std::vector<std::vector<std::uint64_t>> cone_rows_;
  mutable std::vector<std::uint32_t> cone_sizes_;
  // Tails (src endpoints) of edges added since the last cone sync; a row
  // is stale iff its owner reaches one of these.
  mutable std::vector<NodeId> cone_pending_tails_;
  mutable bool cone_pending_overflow_ = false;

  mutable std::uint64_t role_propagation_ = kNeverSynced;
  mutable std::vector<NodeId> inputs_memo_;
  mutable std::vector<NodeId> outputs_memo_;
  mutable std::vector<NodeId> noise_sources_memo_;
};

/// PQN moments a noise source injects: the stored (possibly overridden)
/// moments of a QuantizerNode, or the continuous-amplitude moments of a
/// quantized BlockNode's output format. Asserts @p node is a source.
fxp::NoiseMoments noise_source_moments(const NodeView& node);

}  // namespace psdacc::sfg
