/// @file graph.hpp
/// Signal-flow graph container and builder API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sfg/node.hpp"

namespace psdacc::sfg {

/// The paper's system model (Fig. 1): a directed graph of LTI blocks
/// delimited by additive quantization-noise sources.
///
/// Nodes are appended through typed add_* methods that wire fan-in edges at
/// construction; feedback loops are created afterwards with
/// `add_adder_input` and must be removed by `collapse_loops` (see
/// transform.hpp) before any analysis or simulation runs (method step 1 of
/// the paper). Every add_* method returns the new node's NodeId, which is
/// the handle used for wiring and for indexing analysis results.
class Graph {
 public:
  /// Process-wide number of Graph copy constructions/assignments so far
  /// (monotonic, thread-safe). Copies are legal — the parallel runtime
  /// clones graphs per worker on purpose — but counted, so tests can
  /// assert that move-friendly APIs (runtime::BatchRunner's rvalue
  /// overload, moved-in BatchJobs) never copy a graph.
  static std::size_t copies_made();

  /// External signal input (no noise of its own).
  NodeId add_input(std::string name = "in");
  /// Marks @p src as a system output; analyses report noise here.
  NodeId add_output(NodeId src, std::string name = "out");
  /// LTI block with transfer function @p tf fed by @p src.
  /// @param output_format when set, the block computes in fixed point and
  ///        injects quantization noise at its output
  NodeId add_block(NodeId src, filt::TransferFunction tf,
                   std::optional<fxp::FixedPointFormat> output_format = {},
                   std::string name = "block");
  /// Constant multiplier.
  NodeId add_gain(NodeId src, double gain, std::string name = "gain");
  /// Pure delay of @p delay samples (z^-delay).
  NodeId add_delay(NodeId src, std::size_t delay, std::string name = "delay");
  /// N-ary adder; @p signs (+1/-1 per input) defaults to all +1.
  NodeId add_adder(std::span<const NodeId> srcs,
                   std::span<const double> signs = {},
                   std::string name = "add");
  NodeId add_adder(std::initializer_list<NodeId> srcs,
                   std::string name = "add");
  /// Keep every @p factor-th sample (multirate decimation).
  NodeId add_downsample(NodeId src, std::size_t factor,
                        std::string name = "down");
  /// Insert @p factor - 1 zeros between samples (multirate expansion).
  NodeId add_upsample(NodeId src, std::size_t factor,
                      std::string name = "up");
  /// Explicit quantizer to @p format; PQN moments derived from the format.
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       std::string name = "quant");
  /// Explicit quantizer with caller-supplied noise moments (e.g. the
  /// narrowing corrected form, or measured moments).
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       fxp::NoiseMoments moments, std::string name = "quant");

  /// Adds a (possibly feedback) input edge to an existing adder.
  void add_adder_input(NodeId adder, NodeId src, double sign = 1.0);

  /// Rebuilds a graph from a complete node list — the deserialization
  /// path. Unlike the incremental add_* builders this accepts forward
  /// edges anywhere they are representable (feedback adder inputs), so a
  /// parsed graph reproduces the original byte-for-byte. The node list
  /// must already be structurally sound: `validate()` runs on the result
  /// (contract abort on violation), so parsers diagnose malformed input
  /// *before* calling this.
  static Graph from_nodes(std::vector<Node> nodes);

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  /// Mutable access. Handing out a mutable node conservatively bumps the
  /// graph revision and the node's revision counter — the caller may be
  /// about to edit a format — so revision-keyed caches (engine power
  /// caches, per-source delta contributions) invalidate exactly the state
  /// that could have changed. Read through a const Graph& when no
  /// mutation is intended.
  Node& node(NodeId id);

  /// Monotonic counter covering *every* mutation: structural edits and
  /// each mutable node() access. Evaluation caches key on it: equal
  /// revisions guarantee an unchanged graph.
  std::uint64_t revision() const { return revision_; }
  /// Monotonic counter covering structural edits only (add_* /
  /// add_adder_input). Reachability memos and analyzer preprocessing key
  /// on it; format edits leave it untouched.
  std::uint64_t topology_revision() const { return topology_revision_; }
  /// Per-node counter: bumped whenever node(id) is handed out mutably (or
  /// the node gains a fan-in edge). Lets per-source caches re-derive only
  /// the contributions whose source actually moved.
  std::uint64_t node_revision(NodeId id) const;

  /// All nodes reachable from @p v along signal-flow edges, @p v included,
  /// in ascending NodeId order — the "dirty cone" a word-length change at
  /// @p v can perturb. Memoized per node; the memo is invalidated by
  /// topology edits (format edits keep it valid).
  const std::vector<NodeId>& downstream_cone(NodeId v) const;

  /// Ids of all Input / Output / noise-injecting nodes.
  std::vector<NodeId> inputs() const;
  std::vector<NodeId> outputs() const;
  std::vector<NodeId> noise_sources() const;

  /// Consumers of each node (inverse adjacency), rebuilt on call.
  std::vector<std::vector<NodeId>> consumers() const;

  /// True when the graph contains at least one cycle.
  bool has_cycles() const;

  /// Topological order (asserts acyclicity).
  std::vector<NodeId> topological_order() const;

  /// Structural checks: edges in range, fan-in arity per node kind, adder
  /// sign count matches fan-in. Aborts via contract violation on failure.
  void validate() const;

  /// True if the graph contains no Up/Downsample nodes (required by the
  /// flat analyzer, which assumes a single-rate LTI system).
  bool is_single_rate() const;

 private:
  // Bumps the copies_made() counter whenever a Graph is copied while
  // keeping Graph's own special members implicit (a hand-written Graph
  // copy constructor would silently drop members added later).
  struct CopyCounter {
    CopyCounter() = default;
    CopyCounter(const CopyCounter&);
    CopyCounter& operator=(const CopyCounter&);
    CopyCounter(CopyCounter&&) noexcept = default;
    CopyCounter& operator=(CopyCounter&&) noexcept = default;
  };

  NodeId append(Node node);

  [[no_unique_address]] CopyCounter copy_counter_;
  std::vector<Node> nodes_;
  std::uint64_t revision_ = 0;
  std::uint64_t topology_revision_ = 0;
  std::vector<std::uint64_t> node_revisions_;
  // downstream_cone memo (and the consumer lists it walks), valid while
  // cone_topology_ matches topology_revision_. Mutable lazy state: like
  // the analyzers' workspaces, lazy queries follow the one-writer
  // contract (graphs are cloned per worker, never mutated concurrently).
  mutable std::uint64_t cone_topology_ = ~std::uint64_t{0};
  mutable std::vector<std::vector<NodeId>> cone_cache_;
  mutable std::vector<std::vector<NodeId>> cone_consumers_;
};

/// PQN moments a noise source injects: the stored (possibly overridden)
/// moments of a QuantizerNode, or the continuous-amplitude moments of a
/// quantized BlockNode's output format. Asserts @p node is a source.
fxp::NoiseMoments noise_source_moments(const Node& node);

}  // namespace psdacc::sfg
