// Signal-flow graph container and builder API.
//
// Nodes are appended through typed add_* methods that wire fan-in edges at
// construction; feedback loops are created afterwards with
// `add_adder_input` and must be removed by `collapse_loops` (see
// transform.hpp) before any analysis or simulation runs (method step 1 of
// the paper).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sfg/node.hpp"

namespace psdacc::sfg {

class Graph {
 public:
  NodeId add_input(std::string name = "in");
  NodeId add_output(NodeId src, std::string name = "out");
  NodeId add_block(NodeId src, filt::TransferFunction tf,
                   std::optional<fxp::FixedPointFormat> output_format = {},
                   std::string name = "block");
  NodeId add_gain(NodeId src, double gain, std::string name = "gain");
  NodeId add_delay(NodeId src, std::size_t delay, std::string name = "delay");
  NodeId add_adder(std::span<const NodeId> srcs,
                   std::span<const double> signs = {},
                   std::string name = "add");
  NodeId add_adder(std::initializer_list<NodeId> srcs,
                   std::string name = "add");
  NodeId add_downsample(NodeId src, std::size_t factor,
                        std::string name = "down");
  NodeId add_upsample(NodeId src, std::size_t factor,
                      std::string name = "up");
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       std::string name = "quant");
  NodeId add_quantizer(NodeId src, fxp::FixedPointFormat format,
                       fxp::NoiseMoments moments, std::string name = "quant");

  /// Adds a (possibly feedback) input edge to an existing adder.
  void add_adder_input(NodeId adder, NodeId src, double sign = 1.0);

  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  Node& node(NodeId id);

  /// Ids of all Input / Output / noise-injecting nodes.
  std::vector<NodeId> inputs() const;
  std::vector<NodeId> outputs() const;
  std::vector<NodeId> noise_sources() const;

  /// Consumers of each node (inverse adjacency), rebuilt on call.
  std::vector<std::vector<NodeId>> consumers() const;

  /// True when the graph contains at least one cycle.
  bool has_cycles() const;

  /// Topological order (asserts acyclicity).
  std::vector<NodeId> topological_order() const;

  /// Structural checks: edges in range, fan-in arity per node kind, adder
  /// sign count matches fan-in. Aborts via contract violation on failure.
  void validate() const;

  /// True if the graph contains no Up/Downsample nodes (required by the
  /// flat analyzer, which assumes a single-rate LTI system).
  bool is_single_rate() const;

 private:
  NodeId append(Node node);

  std::vector<Node> nodes_;
};

}  // namespace psdacc::sfg
