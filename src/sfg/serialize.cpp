#include "sfg/serialize.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>
#include <system_error>

namespace psdacc::sfg {
namespace {

// ---------------------------------------------------------------------------
// Canonical emission
// ---------------------------------------------------------------------------

// Shortest representation that round-trips (std::to_chars default): the
// emitted text parses back to the identical double, and re-emitting that
// double reproduces the identical text — the byte-identity contract.
void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20 || c == 0x7f) {
          static const char* hex = "0123456789abcdef";
          out += "\\x";
          out += hex[c >> 4];
          out += hex[c & 0xf];
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void append_double_list(std::string& out, const char* key,
                        std::span<const double> values) {
  out += ' ';
  out += key;
  out += "=[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ' ';
    append_double(out, values[i]);
  }
  out += ']';
}

void append_format(std::string& out, const fxp::FixedPointFormat& fmt) {
  out += " format=";
  out += fmt.to_string();  // canonical: [su]Q<i>.<f>/<round>/<ovf>
}

void append_node(std::string& out, NodeId id, const NodeView& node) {
  out += "  node ";
  append_uint(out, id);
  out += ' ';
  out += node_kind_name(node.payload);
  if (!node.inputs.empty()) {
    out += " in=[";
    for (std::size_t i = 0; i < node.inputs.size(); ++i) {
      if (i != 0) out += ' ';
      append_uint(out, node.inputs[i]);
    }
    out += ']';
  }
  struct PayloadWriter {
    std::string& out;
    void operator()(const InputNode&) const {}
    void operator()(const OutputNode&) const {}
    void operator()(const BlockNode& b) const {
      append_double_list(out, "b", b.tf.numerator());
      append_double_list(out, "a", b.tf.denominator());
      if (b.output_format.has_value()) append_format(out, *b.output_format);
    }
    void operator()(const GainNode& g) const {
      out += " gain=";
      append_double(out, g.gain);
    }
    void operator()(const DelayNode& d) const {
      out += " delay=";
      append_uint(out, d.delay);
    }
    void operator()(const AdderNode& a) const {
      append_double_list(out, "signs", a.signs);
    }
    void operator()(const DownsampleNode& d) const {
      out += " factor=";
      append_uint(out, d.factor);
    }
    void operator()(const UpsampleNode& u) const {
      out += " factor=";
      append_uint(out, u.factor);
    }
    void operator()(const QuantizerNode& q) const {
      append_format(out, q.format);
      out += " moments=[";
      append_double(out, q.moments.mean);
      out += ' ';
      append_double(out, q.moments.variance);
      out += ']';
    }
  };
  std::visit(PayloadWriter{out}, node.payload);
  out += " name=";
  append_quoted(out, node.name);
  out += '\n';
}

void append_header(std::string& out) {
  out += "psdacc-sfg v";
  append_uint(out, kSerializeFormatVersion);
  out += '\n';
}

void append_graph_section(std::string& out, const Graph& g) {
  // Rough per-node line estimate; keeps 10^5-node emission out of the
  // string's doubling regime.
  out.reserve(out.size() + 16 + g.node_count() * 48);
  out += "graph {\n";
  for (NodeId id = 0; id < g.node_count(); ++id)
    append_node(out, id, g.node(id));
  out += "}\n";
}

void append_config_section(std::string& out,
                           const sim::EvaluationConfig& cfg) {
  out += "config {\n  n_psd=";
  append_uint(out, cfg.n_psd);
  out += "\n  sim_samples=";
  append_uint(out, cfg.sim_samples);
  out += "\n  discard=";
  append_uint(out, cfg.discard);
  out += "\n  seed=";
  append_uint(out, cfg.seed);
  out += "\n  input_amplitude=";
  append_double(out, cfg.input_amplitude);
  out += "\n  shards=";
  append_uint(out, cfg.shards);
  out += "\n  engines=[";
  for (std::size_t i = 0; i < cfg.engines.size(); ++i) {
    if (i != 0) out += ' ';
    out += to_string(cfg.engines[i]);
  }
  out += "]\n}\n";
}

void append_expect_section(
    std::string& out,
    const std::vector<std::pair<core::EngineKind, double>>& expected) {
  if (expected.empty()) return;
  out += "expect {\n";
  // Canonical order regardless of how the caller filled the vector.
  for (const core::EngineKind kind : core::kAllEngineKinds) {
    for (const auto& [k, v] : expected) {
      if (k != kind) continue;
      out += "  ";
      out += to_string(kind);
      out += '=';
      append_double(out, v);
      out += '\n';
      break;
    }
  }
  out += "}\n";
}

void append_opt_expect_section(
    std::string& out, const std::vector<OptExpectation>& expected) {
  if (expected.empty()) return;
  out += "opt_expect {\n";
  for (const OptExpectation& e : expected) {
    out += "  run strategy=";
    out += e.strategy;
    out += " engine=";
    out += to_string(e.engine);
    out += " budget=";
    append_double(out, e.budget);
    out += " min_bits=";
    append_uint(out, static_cast<std::uint64_t>(e.min_bits));
    out += " max_bits=";
    append_uint(out, static_cast<std::uint64_t>(e.max_bits));
    out += " seed=";
    append_uint(out, e.seed);
    out += " cost=";
    append_double(out, e.cost);
    out += '\n';
  }
  out += "}\n";
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kEnd, kPunct, kWord, kString };
  Kind kind = Kind::kEnd;
  std::string_view word;  // kWord: raw text; kPunct: the single character
  std::string str;        // kString: unescaped contents
  std::size_t line = 1;
  std::size_t column = 1;
};

[[noreturn]] void fail_at(const std::string& message, std::size_t line,
                          std::size_t column) {
  throw ParseError(message, line, column);
}

[[noreturn]] void fail_at(const std::string& message, const Token& tok) {
  fail_at(message, tok.line, tok.column);
}

bool is_punct(char c) {
  return c == '{' || c == '}' || c == '[' || c == ']' || c == '=';
}

bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Tokenizes the whole document up front; the parser then has free
// lookahead. Whitespace separates tokens; '#' comments run to end of line.
std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> out;
  std::size_t line = 1, column = 1;
  std::size_t i = 0;
  const auto bump = [&](char c) {
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    if (is_space(c)) {
      bump(c);
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') {
        bump(text[i]);
        ++i;
      }
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = column;
    if (is_punct(c)) {
      tok.kind = Token::Kind::kPunct;
      tok.word = text.substr(i, 1);
      bump(c);
      ++i;
    } else if (c == '"') {
      tok.kind = Token::Kind::kString;
      bump(c);
      ++i;
      bool closed = false;
      while (i < text.size()) {
        const char s = text[i];
        if (s == '"') {
          bump(s);
          ++i;
          closed = true;
          break;
        }
        if (s == '\n')
          fail_at("unterminated string literal (newline before closing "
                  "quote)",
                  tok);
        if (s == '\\') {
          if (i + 1 >= text.size())
            fail_at("unterminated escape sequence", line, column);
          const char e = text[i + 1];
          switch (e) {
            case '"': tok.str += '"'; break;
            case '\\': tok.str += '\\'; break;
            case 'n': tok.str += '\n'; break;
            case 't': tok.str += '\t'; break;
            case 'r': tok.str += '\r'; break;
            case 'x': {
              if (i + 3 >= text.size() || hex_digit(text[i + 2]) < 0 ||
                  hex_digit(text[i + 3]) < 0)
                fail_at("bad \\x escape (expected two hex digits)", line,
                        column);
              tok.str += static_cast<char>(hex_digit(text[i + 2]) * 16 +
                                           hex_digit(text[i + 3]));
              bump(text[i]);
              bump(text[i + 1]);
              i += 2;
              break;
            }
            default:
              fail_at(std::string("unknown escape sequence '\\") + e + "'",
                      line, column);
          }
          bump(text[i]);
          bump(text[i + 1]);
          i += 2;
          continue;
        }
        tok.str += s;
        bump(s);
        ++i;
      }
      if (!closed) fail_at("unterminated string literal", tok);
    } else {
      tok.kind = Token::Kind::kWord;
      const std::size_t start = i;
      while (i < text.size() && !is_space(text[i]) && !is_punct(text[i]) &&
             text[i] != '"' && text[i] != '#') {
        bump(text[i]);
        ++i;
      }
      tok.word = text.substr(start, i - start);
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.line = line;
  end.column = column;
  out.push_back(std::move(end));
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : tokens_(tokenize(text)) {}

  Scenario parse_document() {
    parse_header();
    Scenario out;
    bool have_graph = false;
    while (cur().kind != Token::Kind::kEnd) {
      const Token& section = cur();
      if (section.kind != Token::Kind::kWord)
        fail_at("expected a section name", section);
      if (section.word == "graph") {
        if (have_graph) fail_at("duplicate graph section", section);
        advance();
        out.graph = parse_graph_section();
        have_graph = true;
      } else if (section.word == "config") {
        advance();
        parse_config_section(out.config);
      } else if (section.word == "expect") {
        advance();
        parse_expect_section(out.expected);
      } else if (section.word == "opt_expect") {
        advance();
        parse_opt_expect_section(out.opt_expected);
      } else {
        // Forward compatibility: an unknown section is skipped wholesale.
        advance();
        skip_braced_block();
      }
    }
    if (!have_graph) fail_at("missing graph section", cur());
    return out;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& ahead() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool cur_is_punct(char c) const {
    return cur().kind == Token::Kind::kPunct && cur().word[0] == c;
  }

  void expect_punct(char c) {
    if (!cur_is_punct(c))
      fail_at(std::string("expected '") + c + "'", cur());
    advance();
  }

  std::string_view expect_word(const char* what) {
    if (cur().kind != Token::Kind::kWord)
      fail_at(std::string("expected ") + what, cur());
    const std::string_view w = cur().word;
    advance();
    return w;
  }

  double parse_double_value(const char* what) {
    if (cur().kind != Token::Kind::kWord)
      fail_at(std::string("expected ") + what, cur());
    const std::string_view w = cur().word;
    double v = 0.0;
    const auto res = std::from_chars(w.data(), w.data() + w.size(), v);
    if (res.ec != std::errc{} || res.ptr != w.data() + w.size())
      fail_at("expected a number, got '" + std::string(w) + "'", cur());
    if (!std::isfinite(v))
      fail_at("non-finite value '" + std::string(w) + "'", cur());
    advance();
    return v;
  }

  std::uint64_t parse_uint_value(const char* what) {
    if (cur().kind != Token::Kind::kWord)
      fail_at(std::string("expected ") + what, cur());
    const std::string_view w = cur().word;
    std::uint64_t v = 0;
    const auto res = std::from_chars(w.data(), w.data() + w.size(), v);
    if (res.ec != std::errc{} || res.ptr != w.data() + w.size())
      fail_at("expected a non-negative integer, got '" + std::string(w) +
                  "'",
              cur());
    advance();
    return v;
  }

  std::vector<double> parse_double_list() {
    expect_punct('[');
    std::vector<double> out;
    while (!cur_is_punct(']')) {
      if (cur().kind == Token::Kind::kEnd)
        fail_at("unterminated list (missing ']')", cur());
      out.push_back(parse_double_value("a number"));
    }
    advance();  // ']'
    return out;
  }

  std::vector<NodeId> parse_id_list() {
    expect_punct('[');
    std::vector<NodeId> out;
    while (!cur_is_punct(']')) {
      if (cur().kind == Token::Kind::kEnd)
        fail_at("unterminated list (missing ']')", cur());
      out.push_back(static_cast<NodeId>(parse_uint_value("a node id")));
    }
    advance();
    return out;
  }

  std::vector<core::EngineKind> parse_engine_list() {
    expect_punct('[');
    std::vector<core::EngineKind> out;
    while (!cur_is_punct(']')) {
      const Token& tok = cur();
      const std::string_view w = expect_word("an engine name");
      const auto kind = core::parse_engine_kind(w);
      if (!kind.has_value())
        fail_at("unknown engine '" + std::string(w) + "'", tok);
      out.push_back(*kind);
    }
    advance();
    return out;
  }

  std::string parse_string_value(const char* what) {
    if (cur().kind != Token::Kind::kString)
      fail_at(std::string("expected a quoted string for ") + what, cur());
    std::string s = cur().str;
    advance();
    return s;
  }

  fxp::FixedPointFormat parse_format_value() {
    const Token& tok = cur();
    const std::string_view w = expect_word("a fixed-point format");
    fxp::FixedPointFormat fmt;
    const char* p = w.data();
    const char* end = w.data() + w.size();
    const auto bad = [&]() -> ParseError {
      return ParseError("bad fixed-point format '" + std::string(w) +
                            "' (expected "
                            "[su]Q<int>.<frac>/<trunc|round|conv>/"
                            "<sat|wrap>)",
                        tok.line, tok.column);
    };
    if (p == end || (*p != 's' && *p != 'u')) throw bad();
    fmt.is_signed = *p == 's';
    ++p;
    if (p == end || *p != 'Q') throw bad();
    ++p;
    auto res = std::from_chars(p, end, fmt.integer_bits);
    if (res.ec != std::errc{} || res.ptr == end || *res.ptr != '.')
      throw bad();
    p = res.ptr + 1;
    res = std::from_chars(p, end, fmt.fractional_bits);
    if (res.ec != std::errc{} || res.ptr == end || *res.ptr != '/')
      throw bad();
    std::string_view rest(res.ptr + 1, end - res.ptr - 1);
    const std::size_t slash = rest.find('/');
    if (slash == std::string_view::npos) throw bad();
    const std::string_view round = rest.substr(0, slash);
    const std::string_view ovf = rest.substr(slash + 1);
    if (round == "trunc") {
      fmt.rounding = fxp::RoundingMode::kTruncate;
    } else if (round == "round") {
      fmt.rounding = fxp::RoundingMode::kRoundNearest;
    } else if (round == "conv") {
      fmt.rounding = fxp::RoundingMode::kConvergent;
    } else {
      throw bad();
    }
    if (ovf == "sat") {
      fmt.overflow = fxp::OverflowMode::kSaturate;
    } else if (ovf == "wrap") {
      fmt.overflow = fxp::OverflowMode::kWrap;
    } else {
      throw bad();
    }
    return fmt;
  }

  // Skips the value of an attribute or config entry we do not understand:
  // a single scalar/string token or a balanced (possibly nested) list.
  void skip_value() {
    if (cur_is_punct('[')) {
      advance();
      std::size_t depth = 1;
      while (depth > 0) {
        if (cur().kind == Token::Kind::kEnd)
          fail_at("unterminated list (missing ']')", cur());
        if (cur_is_punct('[')) ++depth;
        if (cur_is_punct(']')) --depth;
        advance();
      }
      return;
    }
    if (cur().kind == Token::Kind::kWord ||
        cur().kind == Token::Kind::kString) {
      advance();
      return;
    }
    fail_at("expected a value", cur());
  }

  void skip_braced_block() {
    expect_punct('{');
    std::size_t depth = 1;
    while (depth > 0) {
      if (cur().kind == Token::Kind::kEnd)
        fail_at("unterminated section (missing '}')", cur());
      if (cur_is_punct('{')) ++depth;
      if (cur_is_punct('}')) --depth;
      advance();
    }
  }

  void parse_header() {
    const Token& magic = cur();
    if (magic.kind != Token::Kind::kWord || magic.word != "psdacc-sfg")
      fail_at("expected 'psdacc-sfg v" +
                  std::to_string(kSerializeFormatVersion) + "' header",
              magic);
    advance();
    const Token& ver = cur();
    if (ver.kind != Token::Kind::kWord || ver.word.size() < 2 ||
        ver.word[0] != 'v')
      fail_at("expected a format version after 'psdacc-sfg'", ver);
    int version = 0;
    const auto res = std::from_chars(ver.word.data() + 1,
                                     ver.word.data() + ver.word.size(),
                                     version);
    if (res.ec != std::errc{} ||
        res.ptr != ver.word.data() + ver.word.size())
      fail_at("expected a format version after 'psdacc-sfg'", ver);
    if (version != kSerializeFormatVersion)
      fail_at("unsupported format version " + std::to_string(version) +
                  " (this reader supports v" +
                  std::to_string(kSerializeFormatVersion) + ")",
              ver);
    advance();
  }

  // One parsed node line, with enough position info for post-hoc
  // diagnostics (dangling edges are only detectable once the whole graph
  // section is read, since feedback edges reference later nodes).
  struct ParsedNode {
    Node node;
    std::size_t line = 1;
    std::size_t column = 1;
  };

  Graph parse_graph_section() {
    expect_punct('{');
    std::vector<ParsedNode> parsed;
    // First pass over the (already tokenized) section: count the node
    // lines so a 10^5-node document fills one right-sized allocation
    // instead of log2(n) reallocation copies.
    std::size_t count = 0, depth = 1;
    for (std::size_t i = pos_; i < tokens_.size() && depth > 0; ++i) {
      const Token& t = tokens_[i];
      if (t.kind == Token::Kind::kPunct) {
        if (t.word[0] == '{') ++depth;
        if (t.word[0] == '}') --depth;
      } else if (t.kind == Token::Kind::kWord && t.word == "node") {
        ++count;
      }
    }
    parsed.reserve(count);
    while (!cur_is_punct('}')) {
      const Token& tok = cur();
      if (tok.kind != Token::Kind::kWord || tok.word != "node")
        fail_at("expected 'node' or '}'", tok);
      advance();
      parsed.push_back(parse_node(parsed.size(), tok));
    }
    advance();  // '}'

    // Cross-node validation with per-node positions.
    std::vector<Node> nodes;
    nodes.reserve(parsed.size());
    for (const ParsedNode& pn : parsed) {
      for (const NodeId src : pn.node.inputs)
        if (src >= parsed.size())
          fail_at("edge to undefined node " + std::to_string(src), pn.line,
                  pn.column);
      nodes.push_back(pn.node);
    }
    return Graph::from_nodes(std::move(nodes));
  }

  ParsedNode parse_node(std::size_t expected_id, const Token& node_tok) {
    const Token& id_tok = cur();
    const std::uint64_t id = parse_uint_value("a node id");
    if (id != expected_id)
      fail_at("node id " + std::to_string(id) + " out of order (expected " +
                  std::to_string(expected_id) + ")",
              id_tok);
    const Token& kind_tok = cur();
    const std::string_view kind = expect_word("a node kind");

    // Collected attributes; each kind picks what it needs below.
    std::vector<NodeId> in;
    std::string name;
    bool have_name = false;
    std::vector<double> b, a, signs;
    bool have_b = false, have_a = false, have_signs = false;
    std::optional<fxp::FixedPointFormat> format;
    std::optional<fxp::NoiseMoments> moments;
    double gain = GainNode{}.gain;
    std::uint64_t delay = DelayNode{}.delay;
    std::uint64_t factor = DownsampleNode{}.factor;

    while (cur().kind == Token::Kind::kWord &&
           ahead().kind == Token::Kind::kPunct && ahead().word[0] == '=') {
      const Token& key_tok = cur();
      const std::string_view key = expect_word("an attribute key");
      advance();  // '='
      if (key == "in") {
        in = parse_id_list();
      } else if (key == "name") {
        name = parse_string_value("name");
        have_name = true;
      } else if (key == "b") {
        b = parse_double_list();
        have_b = true;
      } else if (key == "a") {
        a = parse_double_list();
        have_a = true;
      } else if (key == "signs") {
        signs = parse_double_list();
        have_signs = true;
      } else if (key == "format") {
        format = parse_format_value();
      } else if (key == "moments") {
        const auto list = parse_double_list();
        if (list.size() != 2)
          fail_at("moments expects [mean variance]", key_tok);
        moments = fxp::NoiseMoments{list[0], list[1]};
      } else if (key == "gain") {
        gain = parse_double_value("a gain");
      } else if (key == "delay") {
        delay = parse_uint_value("a delay");
      } else if (key == "factor") {
        factor = parse_uint_value("a factor");
        if (factor < 1) fail_at("factor must be >= 1", key_tok);
      } else {
        skip_value();  // forward compatibility: unknown attribute
      }
    }

    const auto require_fan_in = [&](std::size_t n) {
      if (in.size() != n)
        fail_at(std::string(kind) + " node expects " + std::to_string(n) +
                    " input(s), got " + std::to_string(in.size()),
                node_tok);
    };

    ParsedNode out;
    out.line = node_tok.line;
    out.column = node_tok.column;
    if (kind == "input") {
      require_fan_in(0);
      out.node.payload = InputNode{};
    } else if (kind == "output") {
      require_fan_in(1);
      out.node.payload = OutputNode{};
    } else if (kind == "block") {
      require_fan_in(1);
      if (!have_b || b.empty())
        fail_at("block node requires a non-empty numerator b=[...]",
                node_tok);
      if (!have_a) a = {1.0};
      if (a.empty() || a[0] == 0.0)
        fail_at("block denominator leading coefficient must be nonzero",
                node_tok);
      out.node.payload =
          BlockNode{filt::TransferFunction(std::move(b), std::move(a)),
                    format};
    } else if (kind == "gain") {
      require_fan_in(1);
      out.node.payload = GainNode{gain};
    } else if (kind == "delay") {
      require_fan_in(1);
      out.node.payload = DelayNode{static_cast<std::size_t>(delay)};
    } else if (kind == "adder") {
      if (in.empty()) fail_at("adder node expects at least 1 input", node_tok);
      if (!have_signs) signs.assign(in.size(), 1.0);
      if (signs.size() != in.size())
        fail_at("adder has " + std::to_string(in.size()) + " input(s) but " +
                    std::to_string(signs.size()) + " sign(s)",
                node_tok);
      out.node.payload = AdderNode{std::move(signs)};
    } else if (kind == "down") {
      require_fan_in(1);
      out.node.payload = DownsampleNode{static_cast<std::size_t>(factor)};
    } else if (kind == "up") {
      require_fan_in(1);
      out.node.payload = UpsampleNode{static_cast<std::size_t>(factor)};
    } else if (kind == "quant") {
      require_fan_in(1);
      if (!format.has_value())
        fail_at("quant node requires format=...", node_tok);
      out.node.payload = QuantizerNode{
          *format, moments.has_value()
                       ? *moments
                       : fxp::continuous_quantization_noise(*format)};
    } else {
      fail_at("unknown node kind '" + std::string(kind) + "'", kind_tok);
    }
    out.node.inputs = std::move(in);
    out.node.name = have_name ? std::move(name)
                              : std::string(node_kind_name(out.node.payload));
    return out;
  }

  void parse_config_section(sim::EvaluationConfig& cfg) {
    expect_punct('{');
    while (!cur_is_punct('}')) {
      if (cur().kind == Token::Kind::kEnd)
        fail_at("unterminated config section (missing '}')", cur());
      const std::string_view key = expect_word("a config key");
      expect_punct('=');
      if (key == "n_psd") {
        cfg.n_psd = static_cast<std::size_t>(parse_uint_value("n_psd"));
      } else if (key == "sim_samples") {
        cfg.sim_samples =
            static_cast<std::size_t>(parse_uint_value("sim_samples"));
      } else if (key == "discard") {
        cfg.discard = static_cast<std::size_t>(parse_uint_value("discard"));
      } else if (key == "seed") {
        cfg.seed = parse_uint_value("seed");
      } else if (key == "input_amplitude") {
        cfg.input_amplitude = parse_double_value("input_amplitude");
      } else if (key == "shards") {
        cfg.shards = static_cast<std::size_t>(parse_uint_value("shards"));
      } else if (key == "engines") {
        cfg.engines = parse_engine_list();
      } else {
        skip_value();  // forward compatibility: unknown config key
      }
    }
    advance();
  }

  void parse_expect_section(
      std::vector<std::pair<core::EngineKind, double>>& expected) {
    expect_punct('{');
    while (!cur_is_punct('}')) {
      if (cur().kind == Token::Kind::kEnd)
        fail_at("unterminated expect section (missing '}')", cur());
      const Token& key_tok = cur();
      const std::string_view key = expect_word("an engine name");
      const auto kind = core::parse_engine_kind(key);
      if (!kind.has_value())
        fail_at("unknown engine '" + std::string(key) + "'", key_tok);
      expect_punct('=');
      const double value = parse_double_value("an expected power");
      for (const auto& [k, v] : expected)
        if (k == *kind)
          fail_at("duplicate expect entry for '" + std::string(key) + "'",
                  key_tok);
      expected.emplace_back(*kind, value);
    }
    advance();
  }

  void parse_opt_expect_section(std::vector<OptExpectation>& expected) {
    expect_punct('{');
    while (!cur_is_punct('}')) {
      if (cur().kind == Token::Kind::kEnd)
        fail_at("unterminated opt_expect section (missing '}')", cur());
      const Token& run_tok = cur();
      if (run_tok.kind != Token::Kind::kWord || run_tok.word != "run")
        fail_at("expected 'run' or '}'", run_tok);
      advance();
      OptExpectation e;
      bool have_cost = false;
      while (cur().kind == Token::Kind::kWord &&
             ahead().kind == Token::Kind::kPunct &&
             ahead().word[0] == '=') {
        const std::string_view key = expect_word("an attribute key");
        advance();  // '='
        if (key == "strategy") {
          e.strategy = std::string(expect_word("a strategy name"));
        } else if (key == "engine") {
          const Token& tok = cur();
          const std::string_view w = expect_word("an engine name");
          const auto kind = core::parse_engine_kind(w);
          if (!kind.has_value())
            fail_at("unknown engine '" + std::string(w) + "'", tok);
          e.engine = *kind;
        } else if (key == "budget") {
          e.budget = parse_double_value("a noise budget");
        } else if (key == "min_bits") {
          e.min_bits = static_cast<int>(parse_uint_value("min_bits"));
        } else if (key == "max_bits") {
          e.max_bits = static_cast<int>(parse_uint_value("max_bits"));
        } else if (key == "seed") {
          e.seed = parse_uint_value("seed");
        } else if (key == "cost") {
          e.cost = parse_double_value("a cost");
          have_cost = true;
        } else {
          skip_value();  // forward compatibility: unknown attribute
        }
      }
      if (!have_cost) fail_at("run entry requires cost=...", run_tok);
      if (e.min_bits < 1 || e.min_bits > e.max_bits)
        fail_at("run entry requires 1 <= min_bits <= max_bits", run_tok);
      expected.push_back(std::move(e));
    }
    advance();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ParseError::ParseError(const std::string& message, std::size_t line,
                       std::size_t column)
    : std::runtime_error("line " + std::to_string(line) + ", column " +
                         std::to_string(column) + ": " + message),
      message_(message),
      line_(line),
      column_(column) {}

std::string serialize(const Graph& g) {
  std::string out;
  append_header(out);
  append_graph_section(out, g);
  return out;
}

std::string serialize(const Scenario& s) {
  std::string out;
  append_header(out);
  append_graph_section(out, s.graph);
  append_config_section(out, s.config);
  append_expect_section(out, s.expected);
  append_opt_expect_section(out, s.opt_expected);
  return out;
}

Graph parse_graph(std::string_view text) {
  return Parser(text).parse_document().graph;
}

Scenario parse_scenario(std::string_view text) {
  return Parser(text).parse_document();
}

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.node_count() != b.node_count()) return false;
  for (NodeId id = 0; id < a.node_count(); ++id)
    if (!(a.node(id) == b.node(id))) return false;
  return true;
}

std::string ContentHash::to_string() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf, 32);
}

ContentHash content_hash_bytes(std::string_view bytes) {
  // FNV-1a/128 with the spec's offset basis and prime (2^88 + 2^8 + 0x3b).
  // Chosen over a seeded hash on purpose: the digest must be reproducible
  // across processes and releases — it is a persistent cache key.
  using u128 = unsigned __int128;
  constexpr u128 kOffset =
      (u128{0x6c62272e07bb0142ull} << 64) | 0x62b821756295c58dull;
  constexpr u128 kPrime = (u128{0x0000000001000000ull} << 64) | 0x13bull;
  u128 h = kOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kPrime;
  }
  return ContentHash{static_cast<std::uint64_t>(h >> 64),
                     static_cast<std::uint64_t>(h)};
}

ContentHash content_hash(const Graph& g) {
  return content_hash_bytes(serialize(g));
}

ContentHash content_hash(const Graph& g, const sim::EvaluationConfig& cfg) {
  // The canonical header + graph + config sections, exactly as
  // serialize(Scenario) would emit them for an expectation-free scenario —
  // without requiring a Scenario (and therefore a graph copy) to exist.
  std::string out;
  append_header(out);
  append_graph_section(out, g);
  append_config_section(out, cfg);
  return content_hash_bytes(out);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof())
    throw std::runtime_error("error reading '" + path + "'");
  return parse_scenario(buf.str());
}

void save_scenario(const std::string& path, const Scenario& s) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for write");
  const std::string text = serialize(s);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out.good()) throw std::runtime_error("error writing '" + path + "'");
}

}  // namespace psdacc::sfg
