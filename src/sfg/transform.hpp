// SFG transformations — step 1 of the paper's method: "detect cycles in the
// SFG and break them to obtain an equivalent acyclic SFG ... using classical
// SFG transformations".
//
// Supported loop shape: a single feedback loop through one adder, where the
// forward return path consists of LTI nodes (blocks without quantization,
// gains, delays) none of which feed nodes outside the loop. The loop is
// replaced by an equivalent closed-loop block 1 / (1 - sign * L(z)) placed
// after the adder, where L(z) is the cascade of the loop path. Quantizers
// inside loops are not supported — model a quantized recursion as a
// BlockNode with a rational transfer function instead (its noise transfer
// function 1/A(z) is handled natively).
#pragma once

#include <vector>

#include "sfg/graph.hpp"

namespace psdacc::sfg {

/// Strongly connected components with >= 2 nodes, or single nodes with a
/// self-loop (Tarjan). Each inner vector lists the member node ids.
std::vector<std::vector<NodeId>> find_cycles(const Graph& g);

/// Collapses every feedback loop as described above, returning a new
/// acyclic graph. Node ids are preserved for nodes outside loops; loop
/// bodies are rewritten. Aborts (contract violation) on unsupported loop
/// shapes. Returns `g` unchanged when it is already acyclic.
Graph collapse_loops(const Graph& g);

}  // namespace psdacc::sfg
