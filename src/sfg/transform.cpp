#include "sfg/transform.hpp"

#include <algorithm>
#include <functional>
#include <string>
#include <utility>

#include "support/assert.hpp"

namespace psdacc::sfg {

std::vector<std::vector<NodeId>> find_cycles(const Graph& g) {
  // Tarjan's strongly-connected components over the consumer adjacency,
  // read per node straight from the graph's reverse CSR.
  const std::size_t n = g.node_count();
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::vector<std::vector<NodeId>> sccs;
  int next_index = 0;

  std::function<void(NodeId)> strongconnect = [&](NodeId v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (NodeId w : g.consumers(v)) {
      if (index[w] < 0) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<NodeId> scc;
      NodeId w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
      } while (w != v);
      const auto self = g.consumers(scc[0]);
      const bool self_loop =
          scc.size() == 1 &&
          std::find(self.begin(), self.end(), scc[0]) != self.end();
      if (scc.size() >= 2 || self_loop) sccs.push_back(std::move(scc));
    }
  };

  for (NodeId v = 0; v < n; ++v)
    if (index[v] < 0) strongconnect(v);
  return sccs;
}

namespace {

// Transfer function of a loop-body node; asserts it is LTI and unquantized.
filt::TransferFunction loop_node_tf(const Node& node) {
  if (const auto* block = std::get_if<BlockNode>(&node.payload)) {
    PSDACC_EXPECTS(!block->output_format.has_value());
    return block->tf;
  }
  if (const auto* gain = std::get_if<GainNode>(&node.payload))
    return filt::TransferFunction::gain(gain->gain);
  if (const auto* delay = std::get_if<DelayNode>(&node.payload))
    return filt::TransferFunction::delay(delay->delay);
  PSDACC_EXPECTS(false && "unsupported node kind inside a feedback loop");
  return filt::TransferFunction::identity();
}

}  // namespace

Graph collapse_loops(const Graph& g) {
  if (!g.has_cycles()) return g;
  // Structural surgery works on the materialized AoS node list; the arenas
  // are rebuilt once at the end via from_nodes.
  std::vector<Node> nodes = g.to_nodes();
  const auto sccs = find_cycles(g);
  for (const auto& scc : sccs) {
    PSDACC_EXPECTS(scc.size() >= 2 && "self-loops are not supported");
    const auto in_scc = [&](NodeId id) {
      return std::find(scc.begin(), scc.end(), id) != scc.end();
    };
    // Exactly one adder closes the loop.
    std::vector<NodeId> adders;
    for (NodeId id : scc)
      if (std::holds_alternative<AdderNode>(nodes[id].payload))
        adders.push_back(id);
    PSDACC_EXPECTS(adders.size() == 1 &&
                   "loop must contain exactly one adder");
    const NodeId adder_id = adders[0];

    // Locate the unique feedback edge into the adder.
    Node& adder_node = nodes[adder_id];
    auto& adder = std::get<AdderNode>(adder_node.payload);
    std::size_t fb_port = adder_node.inputs.size();
    for (std::size_t i = 0; i < adder_node.inputs.size(); ++i) {
      if (in_scc(adder_node.inputs[i])) {
        PSDACC_EXPECTS(fb_port == adder_node.inputs.size() &&
                       "loop must have a single feedback edge");
        fb_port = i;
      }
    }
    PSDACC_EXPECTS(fb_port < adder_node.inputs.size());
    const double fb_sign = adder.signs[fb_port];
    const NodeId fb_src = adder_node.inputs[fb_port];

    // Walk backwards fb_src -> ... -> adder collecting the loop path.
    std::vector<NodeId> path;  // reverse order: fb_src first
    NodeId cursor = fb_src;
    while (cursor != adder_id) {
      PSDACC_EXPECTS(in_scc(cursor));
      path.push_back(cursor);
      const Node& node = nodes[cursor];
      PSDACC_EXPECTS(node.inputs.size() == 1 &&
                     "loop body must be a simple chain");
      cursor = node.inputs[0];
    }
    PSDACC_EXPECTS(path.size() + 1 == scc.size() &&
                   "loop body must contain all SCC nodes");

    // Loop nodes must not feed anything outside the loop.
    for (NodeId id : path) {
      for (NodeId c : g.consumers(id)) PSDACC_EXPECTS(in_scc(c));
    }

    // Loop transfer function L(z) = cascade along adder -> ... -> fb_src.
    filt::TransferFunction loop_tf = filt::TransferFunction::identity();
    for (auto it = path.rbegin(); it != path.rend(); ++it)
      loop_tf = loop_tf.cascade(loop_node_tf(nodes[*it]));

    // Closed loop: u = sum(ext) + fb_sign * L(z) * u
    //   =>  H_cl(z) = 1 / (1 - fb_sign * L(z)).
    const auto h_cl = filt::TransferFunction::identity().feedback(
        filt::TransferFunction::gain(-fb_sign).cascade(loop_tf));
    PSDACC_EXPECTS(h_cl.is_stable() && "collapsed loop must be stable");

    // Remove the feedback edge.
    adder_node.inputs.erase(adder_node.inputs.begin() +
                            static_cast<std::ptrdiff_t>(fb_port));
    adder.signs.erase(adder.signs.begin() +
                      static_cast<std::ptrdiff_t>(fb_port));

    // Append the closed-loop block and rewire external consumers of the
    // adder to it.
    const NodeId cl_id = static_cast<NodeId>(nodes.size());
    Node cl;
    cl.payload = BlockNode{h_cl, {}};
    cl.inputs = {adder_id};
    cl.name = adder_node.name + "_closed";
    nodes.push_back(std::move(cl));
    for (NodeId c = 0; c < cl_id; ++c) {
      if (in_scc(c)) continue;
      for (NodeId& src : nodes[c].inputs)
        if (src == adder_id) src = cl_id;
    }
    // Neutralize the now-dead loop body nodes.
    for (NodeId id : path) {
      Node& dead = nodes[id];
      dead.payload = GainNode{0.0};
      dead.inputs = {cl_id};
      dead.name += "_dead";
    }
  }
  Graph out = Graph::from_nodes(std::move(nodes));
  PSDACC_ENSURES(!out.has_cycles());
  return out;
}

}  // namespace psdacc::sfg
