#include "sfg/dot.hpp"

#include <algorithm>
#include <ostream>

namespace psdacc::sfg {
namespace {

// Escapes a string for use inside a double-quoted DOT string. Quotes and
// backslashes get the usual backslash escape; newline/CR become graphviz
// line breaks (\n); other control characters have no DOT escape syntax and
// would corrupt the emitted file, so they are rendered as visible \xHH
// text instead.
std::string escape(std::string_view s) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\n"; break;
      case '\t': out += "  "; break;
      default:
        if (c < 0x20 || c == 0x7f) {
          out += "\\\\x";  // renders as literal \xHH
          out += hex[c >> 4];
          out += hex[c & 0xf];
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string node_label(const NodeView& node) {
  struct Visitor {
    const NodeView& node;
    std::string name() const { return std::string(node.name); }
    std::string operator()(const InputNode&) const {
      return name() + "\\n(input)";
    }
    std::string operator()(const OutputNode&) const {
      return name() + "\\n(output)";
    }
    std::string operator()(const BlockNode& b) const {
      std::string s = name() + "\\nH(z) order " +
                      std::to_string(std::max(b.tf.numerator().size(),
                                              b.tf.denominator().size()) -
                                     1);
      if (b.output_format.has_value())
        s += "\\n" + b.output_format->to_string();
      return s;
    }
    std::string operator()(const GainNode& g) const {
      return name() + "\\nx " + std::to_string(g.gain);
    }
    std::string operator()(const DelayNode& d) const {
      return name() + "\\nz^-" + std::to_string(d.delay);
    }
    std::string operator()(const AdderNode&) const {
      return name() + "\\n(+)";
    }
    std::string operator()(const DownsampleNode& d) const {
      return name() + "\\nv " + std::to_string(d.factor);
    }
    std::string operator()(const UpsampleNode& u) const {
      return name() + "\\n^ " + std::to_string(u.factor);
    }
    std::string operator()(const QuantizerNode& q) const {
      return name() + "\\nQ " + q.format.to_string();
    }
  };
  return std::visit(Visitor{node}, node.payload);
}

const char* node_shape(const NodePayload& payload) {
  if (std::holds_alternative<QuantizerNode>(payload)) return "doublecircle";
  if (const auto* b = std::get_if<BlockNode>(&payload))
    return b->output_format.has_value() ? "box3d" : "box";
  if (std::holds_alternative<AdderNode>(payload)) return "circle";
  if (std::holds_alternative<InputNode>(payload) ||
      std::holds_alternative<OutputNode>(payload))
    return "plaintext";
  return "ellipse";
}

}  // namespace

namespace dot {

void to_dot(std::ostream& out, const Graph& g, std::string_view title,
            const DotOptions& opts) {
  const std::size_t shown = std::min<std::size_t>(g.node_count(),
                                                  opts.max_nodes);
  out << "digraph \"" << escape(title) << "\" {\n"
      << "  rankdir=LR;\n  node [fontsize=10];\n";
  for (NodeId id = 0; id < shown; ++id) {
    const NodeView node = g.node(id);
    out << "  n" << id << " [label=\"" << escape(node_label(node))
        << "\", shape=" << node_shape(node.payload) << "];\n";
  }
  std::size_t elided_edges = 0;
  for (NodeId id = 0; id < g.node_count(); ++id) {
    for (NodeId src : g.node(id).inputs) {
      if (id < shown && src < shown) {
        out << "  n" << src << " -> n" << id << ";\n";
      } else {
        ++elided_edges;
      }
    }
  }
  if (shown < g.node_count()) {
    out << "  // elided " << (g.node_count() - shown) << " of "
        << g.node_count() << " nodes and " << elided_edges
        << " incident edge(s) (max_nodes=" << opts.max_nodes << ")\n";
  }
  out << "}\n";
}

}  // namespace dot

}  // namespace psdacc::sfg
