#include "sfg/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>

#include "core/accuracy_engine.hpp"
#include "core/metrics.hpp"
// Verification reaches *up* into the search layer on purpose: optimizer
// goldens are corpus content, and the corpus checker is the one place
// where serialization and search meet. Headers stay acyclic (opt/search
// includes sfg types, never sfg/verify).
#include "opt/search/strategies.hpp"

namespace psdacc::sfg {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool rel_close(double a, double b, double rel_tol) {
  return std::abs(a - b) <= rel_tol * std::max({std::abs(a), std::abs(b),
                                                1e-30});
}

/// Current word-length format of a noise source (quantizer format or
/// quantized block output format).
std::optional<fxp::FixedPointFormat> source_format(const NodeView& node) {
  if (const auto* q = std::get_if<QuantizerNode>(&node.payload))
    return q->format;
  if (const auto* b = std::get_if<BlockNode>(&node.payload))
    return b->output_format;
  return std::nullopt;
}

/// evaluate_delta re-derives PQN moments from the hypothesized format, so
/// delta(v, current format) equals the full evaluation only when the
/// source's stored moments are the format-derived ones (true everywhere
/// except quantizers with overridden moments, e.g. narrowing corrections).
bool delta_comparable(const NodeView& node) {
  const auto* q = std::get_if<QuantizerNode>(&node.payload);
  if (q == nullptr) return true;
  return q->moments == fxp::continuous_quantization_noise(q->format);
}

/// The engines can only evaluate a well-formed SISO scenario graph.
bool evaluable(const Graph& g) {
  return !g.has_cycles() && g.outputs().size() == 1 &&
         g.inputs().size() == 1 && !g.noise_sources().empty();
}

void check_delta_parity(core::AccuracyEngine& engine, const Graph& g,
                        double full_power, double rel_tol,
                        std::vector<VerifyIssue>& issues) {
  if (!engine.capabilities().delta) return;
  const std::string tag = "delta:" + std::string(engine.name());
  for (const NodeId v : g.noise_sources()) {
    if (!delta_comparable(g.node(v))) continue;
    const auto fmt = source_format(g.node(v));
    if (!fmt.has_value()) continue;
    const double delta = engine.evaluate_delta(v, *fmt);
    if (!rel_close(delta, full_power, rel_tol))
      issues.push_back(
          {tag, "source " + std::to_string(v) + ": evaluate_delta=" +
                    fmt_double(delta) + " vs full=" + fmt_double(full_power)});
  }
}

/// Runs one optimizer golden exactly as recorded: the named strategy over
/// the graph's noise sources (unit weights, serial, the scenario config's
/// spectral resolution), on a private copy of the graph so verification
/// never mutates the caller's scenario.
opt::OptimizerResult run_opt_expectation(const Scenario& s,
                                         const OptExpectation& e) {
  Graph g = s.graph;
  opt::OptimizerConfig cfg;
  cfg.noise_budget = e.budget;
  cfg.min_bits = e.min_bits;
  cfg.max_bits = e.max_bits;
  cfg.n_psd = s.config.n_psd;
  cfg.engine = e.engine;
  cfg.engine_opts = engine_options_for(s.config);
  opt::WordlengthOptimizer optimizer(g, g.noise_sources(), cfg);
  opt::search::StrategySpec spec;
  spec.name = e.strategy;
  spec.anneal.seed = e.seed;
  return opt::search::run_strategy(optimizer, spec);
}

}  // namespace

core::EngineOptions engine_options_for(const sim::EvaluationConfig& cfg) {
  core::EngineOptions opts;
  opts.n_psd = cfg.n_psd;
  opts.sim_samples = cfg.sim_samples;
  opts.sim_shards = cfg.shards;
  opts.sim_discard = cfg.discard;
  opts.sim_seed = cfg.seed;
  opts.sim_amplitude = cfg.input_amplitude;
  return opts;
}

std::vector<std::pair<core::EngineKind, double>> evaluate_expected(
    const Scenario& s) {
  std::vector<std::pair<core::EngineKind, double>> out;
  const auto opts = engine_options_for(s.config);
  for (const core::EngineKind kind : s.config.engines) {
    if (!core::engine_supports(kind, s.graph)) continue;
    const auto engine = core::make_engine(kind, s.graph, opts);
    out.emplace_back(kind, engine->output_noise_power());
  }
  return out;
}

std::vector<VerifyIssue> verify_scenario_text(std::string_view text,
                                              const VerifyOptions& opts) {
  std::vector<VerifyIssue> issues;
  Scenario s;
  try {
    s = parse_scenario(text);
  } catch (const ParseError& e) {
    issues.push_back({"parse", e.what()});
    return issues;
  }

  const std::string canonical = serialize(s);
  if (canonical != text) {
    std::size_t i = 0;
    const std::size_t n = std::min(canonical.size(), text.size());
    while (i < n && canonical[i] == text[i]) ++i;
    issues.push_back({"canonical",
                      "document is not canonical (first difference at byte " +
                          std::to_string(i) + "); run 'psdacc-verify regen'"});
  }

  if (!evaluable(s.graph)) {
    if (!s.expected.empty() || !s.opt_expected.empty())
      issues.push_back({"golden",
                        "document carries expectations but the graph is not "
                        "evaluable (need one input, one output, >= 1 noise "
                        "source, no cycles)"});
    return issues;
  }

  const auto engine_opts = engine_options_for(s.config);
  double flat_power = 0.0, psd_power = 0.0;
  double flat_golden = 0.0, psd_golden = 0.0;
  bool have_flat = false, have_psd = false;
  for (const auto& [kind, golden] : s.expected) {
    const std::string kind_name{to_string(kind)};
    if (!core::engine_supports(kind, s.graph)) {
      issues.push_back({"golden:" + kind_name,
                        "engine does not support this graph"});
      continue;
    }
    const auto engine = core::make_engine(kind, s.graph, engine_opts);
    const double power = engine->output_noise_power();
    if (!rel_close(power, golden, opts.golden_rel_tol))
      issues.push_back({"golden:" + kind_name,
                        "evaluated " + fmt_double(power) + " vs golden " +
                            fmt_double(golden) + " (tol " +
                            fmt_double(opts.golden_rel_tol) + " rel)"});
    check_delta_parity(*engine, s.graph, power, opts.delta_rel_tol, issues);
    if (kind == core::EngineKind::kFlat) {
      flat_power = power;
      flat_golden = golden;
      have_flat = true;
    }
    if (kind == core::EngineKind::kPsd) {
      psd_power = power;
      psd_golden = golden;
      have_psd = true;
    }
  }

  // Cross-engine band check, gated on the *recorded* goldens: graphs with
  // strongly correlated reconvergent noise (e.g. a parallel realization,
  // every branch fed by the same quantizer with no decorrelating delay)
  // legitimately violate the uncorrelated-sources assumption, and their
  // documents record that deviation in the goldens. The check therefore
  // only fires when the goldens agree but the evaluated engines no longer
  // do — i.e. on new divergence, not on known model limitations.
  if (opts.cross_engine && have_flat && have_psd &&
      core::within_one_bit(core::mse_deviation(flat_golden, psd_golden))) {
    const double ed = core::mse_deviation(flat_power, psd_power);
    if (!core::within_one_bit(ed))
      issues.push_back({"cross:flat-vs-psd",
                        "psd deviates from flat by E_d=" + fmt_double(ed) +
                            " (outside the one-bit band)"});
  }

  // Optimizer goldens: every recorded search must reproduce its cost
  // exactly — word-length costs are small integer sums and every strategy
  // is deterministic (the annealer via its recorded seed), so equality is
  // bitwise, pinning search behavior the way `expect` pins the engines.
  for (const OptExpectation& e : s.opt_expected) {
    const std::string tag = "optgolden:" + e.strategy;
    if (!opt::search::known_strategy(e.strategy)) {
      issues.push_back({tag, "unknown strategy '" + e.strategy + "'"});
      continue;
    }
    if (!core::engine_supports(e.engine, s.graph)) {
      issues.push_back({tag, "engine '" + std::string(to_string(e.engine)) +
                                 "' does not support this graph"});
      continue;
    }
    const opt::OptimizerResult r = run_opt_expectation(s, e);
    if (r.cost != e.cost)
      issues.push_back(
          {tag, "budget " + fmt_double(e.budget) + " (" +
                    std::string(to_string(e.engine)) + "): searched cost " +
                    fmt_double(r.cost) + " vs golden " + fmt_double(e.cost)});
  }
  return issues;
}

std::vector<OptExpectation> evaluate_opt_expected(const Scenario& s) {
  std::vector<OptExpectation> out;
  for (const OptExpectation& e : s.opt_expected) {
    if (!opt::search::known_strategy(e.strategy)) continue;
    if (!core::engine_supports(e.engine, s.graph)) continue;
    OptExpectation fresh = e;
    fresh.cost = run_opt_expectation(s, e).cost;
    out.push_back(std::move(fresh));
  }
  return out;
}

std::vector<VerifyIssue> differential_check(const Graph& g,
                                            const DifferentialOptions& opts) {
  std::vector<VerifyIssue> issues;

  // 1. Round-trip.
  const std::string text = serialize(g);
  Graph parsed;
  try {
    parsed = parse_graph(text);
  } catch (const ParseError& e) {
    issues.push_back({"round-trip", std::string("serialized graph does not "
                                                "parse: ") +
                                        e.what()});
    return issues;
  }
  if (!graphs_equal(g, parsed)) {
    issues.push_back({"round-trip",
                      "parse(serialize(g)) is not structurally equal to g"});
    return issues;
  }
  if (serialize(parsed) != text) {
    issues.push_back({"canonical",
                      "re-serializing the parsed graph changed bytes"});
    return issues;
  }

  if (!evaluable(g)) return issues;  // boundary graph: round-trip only

  std::size_t adders = 0;
  for (NodeId id = 0; id < g.node_count(); ++id)
    if (std::holds_alternative<AdderNode>(g.node(id).payload)) ++adders;

  // 2.-4. Engine differential on original vs parsed copy.
  core::EngineOptions engine_opts;
  engine_opts.n_psd = opts.n_psd;
  double flat_power = 0.0, psd_power = 0.0;
  bool have_flat = false, have_psd = false;
  for (const core::EngineKind kind :
       {core::EngineKind::kFlat, core::EngineKind::kMoment,
        core::EngineKind::kPsd}) {
    if (!core::engine_supports(kind, g)) continue;
    const std::string kind_name{to_string(kind)};
    const auto engine = core::make_engine(kind, g, engine_opts);
    const auto twin = core::make_engine(kind, parsed, engine_opts);
    const double power = engine->output_noise_power();
    const double twin_power = twin->output_noise_power();
    if (power != twin_power)
      issues.push_back({"differential:" + kind_name,
                        "original " + fmt_double(power) +
                            " != parsed copy " + fmt_double(twin_power)});
    check_delta_parity(*engine, g, power, opts.delta_rel_tol, issues);
    switch (kind) {
      case core::EngineKind::kFlat:
        flat_power = power;
        have_flat = true;
        break;
      case core::EngineKind::kPsd:
        psd_power = power;
        have_psd = true;
        break;
      default:
        break;  // moment: differential + delta parity only (no band)
    }
  }

  // Cross-engine agreement. Without an adder there is no reconvergence
  // and the hierarchical PSD method is exact — a theorem, enforced to
  // golden precision under the hard "cross:" tag. With reconvergent
  // joins, correlated path contributions can legitimately push any
  // single graph outside the paper's one-bit band (the band is a
  // statistical claim over filter populations), so violations are
  // reported under the advisory "band:" tag, which the fuzz driver
  // counts against an aggregate rate threshold instead of failing
  // per graph.
  if (have_flat && have_psd && flat_power > 0.0) {
    if (adders == 0) {
      if (!rel_close(flat_power, psd_power, 1e-9))
        issues.push_back({"cross:chain-exact",
                          "chain graph: psd " + fmt_double(psd_power) +
                              " != flat " + fmt_double(flat_power) +
                              " (must agree to 1e-9 without reconvergence)"});
    } else {
      const double ed = core::mse_deviation(flat_power, psd_power);
      if (!core::within_one_bit(ed))
        issues.push_back({"band:flat-vs-psd",
                          "psd deviates from flat by E_d=" + fmt_double(ed)});
    }
  }

  // 5. Optional simulation band check (the expensive mutual oracle).
  if (opts.with_simulation &&
      core::engine_supports(core::EngineKind::kSimulation, g)) {
    core::EngineOptions sim_opts = engine_opts;
    sim_opts.sim_samples = opts.sim_samples;
    sim_opts.sim_discard = std::min<std::size_t>(1024, opts.sim_samples / 4);
    const auto sim =
        core::make_engine(core::EngineKind::kSimulation, g, sim_opts);
    const double sim_power = sim->output_noise_power();
    if (sim_power > 0.0) {
      // Simulation bands are advisory for the same reason as
      // flat-vs-psd: correlated reconvergence (psd) and PQN-model
      // validity (flat) are statistical claims, not per-graph theorems.
      if (have_psd &&
          !core::within_one_bit(core::mse_deviation(sim_power, psd_power)))
        issues.push_back({"band:sim-vs-psd",
                          "psd " + fmt_double(psd_power) +
                              " outside the one-bit band of simulation " +
                              fmt_double(sim_power)});
      if (have_flat &&
          !core::within_one_bit(core::mse_deviation(sim_power, flat_power)))
        issues.push_back({"band:sim-vs-flat",
                          "flat " + fmt_double(flat_power) +
                              " outside the one-bit band of simulation " +
                              fmt_double(sim_power)});
    }
  }
  return issues;
}

}  // namespace psdacc::sfg
