// Node taxonomy for signal-flow graphs (SFG).
//
// An SFG is the paper's system model (Fig. 1): LTI blocks delimited by
// additive quantization-noise sources. psdacc represents word-length
// decisions explicitly:
//
//  * a `QuantizerNode` quantizes the signal passing through it and is the
//    canonical additive-noise source b_i of the paper;
//  * a `BlockNode` may carry an `output_format`, meaning the block's output
//    (including the recursive state of an IIR realization) is quantized
//    every sample. Its noise enters *inside* the recursion and therefore is
//    shaped by the noise transfer function 1/A(z) rather than B(z)/A(z).
//
// All other nodes are exact (adders of same-format operands, delays,
// up/downsamplers introduce no new fractional bits).
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "filters/transfer_function.hpp"
#include "fixedpoint/format.hpp"
#include "fixedpoint/noise_model.hpp"

namespace psdacc::sfg {

using NodeId = std::size_t;

// Every payload is exactly-comparable so a deserialized graph can be
// checked field-for-field against the original (serialization round-trip
// contract; doubles compare bitwise through ==).
struct InputNode {
  bool operator==(const InputNode&) const = default;
};

struct OutputNode {
  bool operator==(const OutputNode&) const = default;
};

struct BlockNode {
  filt::TransferFunction tf;
  /// When set, the block output is re-quantized each sample; analytically
  /// this injects PQN noise shaped by 1/A(z).
  std::optional<fxp::FixedPointFormat> output_format;

  bool operator==(const BlockNode&) const = default;
};

struct GainNode {
  double gain = 1.0;

  bool operator==(const GainNode&) const = default;
};

struct DelayNode {
  std::size_t delay = 1;

  bool operator==(const DelayNode&) const = default;
};

/// Adds its inputs with per-input signs (+1/-1 typically).
struct AdderNode {
  std::vector<double> signs;

  bool operator==(const AdderNode&) const = default;
};

struct DownsampleNode {
  std::size_t factor = 2;

  bool operator==(const DownsampleNode&) const = default;
};

struct UpsampleNode {
  std::size_t factor = 2;

  bool operator==(const UpsampleNode&) const = default;
};

/// Pass-through quantizer: rounds the signal to `format` and is the
/// additive noise source of Eq. 10. `moments` defaults to the
/// continuous-amplitude PQN statistics of `format` but can be overridden
/// (e.g. narrowing re-quantization).
struct QuantizerNode {
  fxp::FixedPointFormat format;
  fxp::NoiseMoments moments;

  bool operator==(const QuantizerNode&) const = default;
};

using NodePayload =
    std::variant<InputNode, OutputNode, BlockNode, GainNode, DelayNode,
                 AdderNode, DownsampleNode, UpsampleNode, QuantizerNode>;

struct Node {
  NodePayload payload;
  std::vector<NodeId> inputs;  // producer ids, ordered
  std::string name;

  bool operator==(const Node&) const = default;
};

/// Read-only view of one node in a Graph's structure-of-arrays storage.
/// Cheap to copy; valid until the next mutation of the owning Graph. A
/// plain `Node` converts implicitly, so functions taking a NodeView accept
/// both storage forms.
struct NodeView {
  const NodePayload& payload;
  std::span<const NodeId> inputs;  // producer ids, ordered
  std::string_view name;

  NodeView(const NodePayload& p, std::span<const NodeId> in,
           std::string_view nm)
      : payload(p), inputs(in), name(nm) {}
  NodeView(const Node& n)  // NOLINT(google-explicit-constructor)
      : payload(n.payload), inputs(n.inputs), name(n.name) {}

  friend bool operator==(const NodeView& a, const NodeView& b) {
    return a.payload == b.payload && a.name == b.name &&
           std::equal(a.inputs.begin(), a.inputs.end(), b.inputs.begin(),
                      b.inputs.end());
  }
};

/// Human-readable payload tag, for diagnostics.
const char* node_kind_name(const NodePayload& payload);

}  // namespace psdacc::sfg
