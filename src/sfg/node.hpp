// Node taxonomy for signal-flow graphs (SFG).
//
// An SFG is the paper's system model (Fig. 1): LTI blocks delimited by
// additive quantization-noise sources. psdacc represents word-length
// decisions explicitly:
//
//  * a `QuantizerNode` quantizes the signal passing through it and is the
//    canonical additive-noise source b_i of the paper;
//  * a `BlockNode` may carry an `output_format`, meaning the block's output
//    (including the recursive state of an IIR realization) is quantized
//    every sample. Its noise enters *inside* the recursion and therefore is
//    shaped by the noise transfer function 1/A(z) rather than B(z)/A(z).
//
// All other nodes are exact (adders of same-format operands, delays,
// up/downsamplers introduce no new fractional bits).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "filters/transfer_function.hpp"
#include "fixedpoint/format.hpp"
#include "fixedpoint/noise_model.hpp"

namespace psdacc::sfg {

using NodeId = std::size_t;

struct InputNode {};

struct OutputNode {};

struct BlockNode {
  filt::TransferFunction tf;
  /// When set, the block output is re-quantized each sample; analytically
  /// this injects PQN noise shaped by 1/A(z).
  std::optional<fxp::FixedPointFormat> output_format;
};

struct GainNode {
  double gain = 1.0;
};

struct DelayNode {
  std::size_t delay = 1;
};

/// Adds its inputs with per-input signs (+1/-1 typically).
struct AdderNode {
  std::vector<double> signs;
};

struct DownsampleNode {
  std::size_t factor = 2;
};

struct UpsampleNode {
  std::size_t factor = 2;
};

/// Pass-through quantizer: rounds the signal to `format` and is the
/// additive noise source of Eq. 10. `moments` defaults to the
/// continuous-amplitude PQN statistics of `format` but can be overridden
/// (e.g. narrowing re-quantization).
struct QuantizerNode {
  fxp::FixedPointFormat format;
  fxp::NoiseMoments moments;
};

using NodePayload =
    std::variant<InputNode, OutputNode, BlockNode, GainNode, DelayNode,
                 AdderNode, DownsampleNode, UpsampleNode, QuantizerNode>;

struct Node {
  NodePayload payload;
  std::vector<NodeId> inputs;  // producer ids, ordered
  std::string name;
};

/// Human-readable payload tag, for diagnostics.
const char* node_kind_name(const NodePayload& payload);

}  // namespace psdacc::sfg
