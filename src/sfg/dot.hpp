// Graphviz DOT export of signal-flow graphs, for debugging and
// documentation of generated systems.
#pragma once

#include <string>

#include "sfg/graph.hpp"

namespace psdacc::sfg {

/// Renders the graph in DOT syntax. Noise-injecting nodes are drawn as
/// double circles; blocks are boxes labelled with name and order.
std::string to_dot(const Graph& g, const std::string& title = "sfg");

}  // namespace psdacc::sfg
