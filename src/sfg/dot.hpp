// Graphviz DOT export of signal-flow graphs, for debugging and
// documentation of generated systems.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>

#include "sfg/graph.hpp"

namespace psdacc::sfg {

namespace dot {

struct DotOptions {
  /// Nodes beyond this count are elided: the emitted document covers the
  /// first `max_nodes` node ids (and only the edges between them) and ends
  /// with a comment footer summarizing how much was left out. Graphviz
  /// itself stops being useful long before 10^5 nodes, so capped renders
  /// keep to_dot usable for diagnosing huge generated graphs.
  std::size_t max_nodes = std::numeric_limits<std::size_t>::max();
};

/// Streams the graph in DOT syntax. Noise-injecting nodes are drawn as
/// double circles; blocks are boxes labelled with name and order. Writes
/// straight to @p out — no intermediate whole-document string — so huge
/// graphs render in O(1) memory.
void to_dot(std::ostream& out, const Graph& g,
            std::string_view title = "sfg", const DotOptions& opts = {});

}  // namespace dot

}  // namespace psdacc::sfg
