// Fast Fourier transforms.
//
// Provides an iterative radix-2 Cooley-Tukey FFT for power-of-two sizes and
// a Bluestein chirp-z fallback for arbitrary sizes, so callers never need to
// care about the transform length. Conventions: forward transform is
// X[k] = sum_n x[n] e^{-j 2 pi k n / N}; the inverse divides by N.
//
// These free functions delegate to the per-size plan cache in fft_plan.hpp;
// hot loops that transform one size repeatedly should hold an FftPlan
// directly to also reuse its output/scratch buffers.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace psdacc::dsp {

using cplx = std::complex<double>;

/// True iff n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT. `data.size()` may be any length >= 1; non-powers of
/// two use the Bluestein algorithm internally.
void fft(std::vector<cplx>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft(std::vector<cplx>& data);

/// Out-of-place forward FFT of a real signal; returns all N complex bins.
std::vector<cplx> fft_real(std::span<const double> x);

/// Forward FFT of a real signal zero-padded (or truncated) to length n.
std::vector<cplx> fft_real(std::span<const double> x, std::size_t n);

/// Inverse FFT returning only the real parts (caller asserts the spectrum is
/// conjugate-symmetric up to round-off).
std::vector<double> ifft_real(std::span<const cplx> spectrum);

/// Naive O(N^2) DFT, used as a test oracle only.
std::vector<cplx> dft_reference(std::span<const cplx> x);

}  // namespace psdacc::dsp
