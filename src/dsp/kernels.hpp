// dsp::kernels — the single public entry point for the library's
// vectorizable per-sample loops.
//
// Every scalar hot loop that used to be hand-rolled at its call site
// (ExecutionPlan's direct-form FIR/IIR and quantized kernels, FftPlan's
// butterflies and Bluestein pointwise products, quantizer spans, Welch
// windowing and periodogram accumulation) now routes through this header,
// so the scalar/SIMD selection lives in exactly one place. The SIMD
// implementations are built on dsp/simd.hpp (GCC/Clang vector extensions,
// configure-time width, -DPSDACC_SIMD=OFF forces scalar); `width()` and
// `active_isa()` report what the build selected.
//
// Bit-exactness contract: every kernel vectorizes across independent
// outputs — each lane performs the same operations in the same order the
// scalar reference does — and no kernel reassociates a summation (tap
// accumulation runs in ascending-j order in every lane; horizontal sums
// are never used). The SIMD and scalar builds therefore produce
// bit-identical results, which tests/test_kernels.cpp asserts exactly.
// The scalar references are always compiled, under kernels::scalar, so the
// SIMD build can verify (and benchmark) itself against them in-process.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "fixedpoint/quantizer.hpp"

namespace psdacc::dsp::kernels {

/// Lanes of double per vector op: 1 in scalar builds (PSDACC_SIMD=OFF or a
/// compiler without the vector extensions), else PSDACC_SIMD_WIDTH.
std::size_t width() noexcept;

/// "scalar", or "vec128"/"vec256"/"vec512" for 2/4/8-lane builds.
std::string_view active_isa() noexcept;

/// Whole-vector FIR with zero initial state:
/// out[i] = sum_{j=0}^{nb-1} b[j] x[i-j], taps accumulated in ascending j.
/// Reads straight from the input buffer (no history register file), so the
/// steady-state region vectorizes across output samples.
void fir_apply(std::span<const double> b, std::span<const double> x,
               std::vector<double>& out);

/// Whole-vector direct-form IIR, a[0] stripped (feedback taps a[1..] as in
/// the direct-form realizations): out[i] = sum_j b[j] x[i-j]
/// - sum_j a[j] out[i-1-j]. The feedforward part vectorizes like
/// fir_apply; the feedback recurrence is inherently sequential and runs
/// scalar, in the same b-then-a accumulation order as the all-scalar loop.
void iir_df2(std::span<const double> b, std::span<const double> a,
             std::span<const double> x, std::vector<double>& out);

/// Fixed-point direct-form I block: iir_df2 with the accumulator quantized
/// to @p q each sample and the feedback taps reading the quantized
/// outputs. The quantizer keeps the recurrence sequential; only the
/// feedforward dot products vectorize.
void iir_df1_quantized(std::span<const double> b, std::span<const double> a,
                       const fxp::QuantizerKernel& q,
                       std::span<const double> x, std::vector<double>& out);

/// Lane-wise quantization: out[i] = q(x[i]). Round (truncate / nearest /
/// convergent) and saturate run fully vectorized on the in-range fast
/// path; lanes that overflow the representable range (wrap/saturate
/// boundary traffic) or sit outside the exact-floor domain (|x/step| >=
/// 2^52, non-finite) fall back to the scalar kernel per chunk, so every
/// lane is bit-identical to q(x[i]). In-place (out == x) is allowed.
void quantize_span(const fxp::QuantizerKernel& q, std::span<const double> x,
                   std::span<double> out);

/// Pointwise window application: out[i] = x[i] * w[i] (sizes must match).
/// In-place (out aliasing x) is allowed.
void window_apply(std::span<const double> x, std::span<const double> w,
                  std::span<double> out);

/// Periodogram/Welch accumulation:
/// acc[k] += (re(spectrum[k])^2 + im(spectrum[k])^2) * scale.
/// The squared magnitude is computed as re^2 + im^2 in both paths (PSD
/// magnitudes never approach the overflow range std::norm's abs-based
/// form guards against).
void window_accumulate(std::span<double> acc,
                       std::span<const std::complex<double>> spectrum,
                       double scale);

/// Pointwise complex product on split-complex spans, in place:
/// (xr,xi)[i] *= (yr,yi)[i], computed as (xr*yr - xi*yi,
/// xr*yi + xi*yr) — the direct formula std::complex uses for finite
/// operands. The Bluestein chirp/kernel products run on this.
void complex_mul(std::span<double> xr, std::span<double> xi,
                 std::span<const double> yr, std::span<const double> yi);

/// Pointwise complex product on interleaved std::complex arrays:
/// x[i] *= y[i]. The fast-convolution spectrum products
/// (convolve_fft, OverlapSave) run on this.
void complex_mul(std::span<std::complex<double>> x,
                 std::span<const std::complex<double>> y);

/// Split-complex multiply-accumulate: (or_,oi)[i] += (xr,xi)[i] * (yr,yi)[i],
/// with the product formed by the direct formula and added to the
/// accumulator in one (unfused) add per component.
void complex_mul_add(std::span<double> or_, std::span<double> oi,
                     std::span<const double> xr, std::span<const double> xi,
                     std::span<const double> yr, std::span<const double> yi);

/// Deinterleaves std::complex data into split re/im arrays (all spans the
/// same length). The FFT entry points use this to move between the public
/// interleaved layout and the plan's split-complex scratch.
void split_complex(std::span<const std::complex<double>> x,
                   std::span<double> re, std::span<double> im);

/// Inverse of split_complex: out[i] = {re[i], im[i]}.
void merge_complex(std::span<const double> re, std::span<const double> im,
                   std::span<std::complex<double>> out);

/// In-place scaling: x[i] *= s. Interleaved complex data can be scaled by
/// viewing it as a double span of twice the length (componentwise multiply
/// is exactly what complex * real does).
void scale(std::span<double> x, double s);

/// One radix-2 butterfly group over split-complex data: for k in [0,half),
/// with u = (re,im)[k], v = (re,im)[k+half] and w = (wr,wi)[k] (conjugated
/// when @p conj_twiddles, i.e. the inverse transform):
///   (re,im)[k]        = u + v*w
///   (re,im)[k+half]   = u - v*w
void butterfly(double* re, double* im, std::size_t half, const double* wr,
               const double* wi, bool conj_twiddles);

/// Scalar reference implementations, always compiled (even in SIMD builds):
/// the parity oracle for tests/test_kernels.cpp and the baseline the
/// bench_micro_kernels speedup floor measures against. In scalar builds the
/// public entry points are these.
namespace scalar {

void fir_apply(std::span<const double> b, std::span<const double> x,
               std::vector<double>& out);
void iir_df2(std::span<const double> b, std::span<const double> a,
             std::span<const double> x, std::vector<double>& out);
void iir_df1_quantized(std::span<const double> b, std::span<const double> a,
                       const fxp::QuantizerKernel& q,
                       std::span<const double> x, std::vector<double>& out);
void quantize_span(const fxp::QuantizerKernel& q, std::span<const double> x,
                   std::span<double> out);
void window_apply(std::span<const double> x, std::span<const double> w,
                  std::span<double> out);
void window_accumulate(std::span<double> acc,
                       std::span<const std::complex<double>> spectrum,
                       double scale);
void complex_mul(std::span<double> xr, std::span<double> xi,
                 std::span<const double> yr, std::span<const double> yi);
void complex_mul(std::span<std::complex<double>> x,
                 std::span<const std::complex<double>> y);
void complex_mul_add(std::span<double> or_, std::span<double> oi,
                     std::span<const double> xr, std::span<const double> xi,
                     std::span<const double> yr, std::span<const double> yi);
void split_complex(std::span<const std::complex<double>> x,
                   std::span<double> re, std::span<double> im);
void merge_complex(std::span<const double> re, std::span<const double> im,
                   std::span<std::complex<double>> out);
void scale(std::span<double> x, double s);
void butterfly(double* re, double* im, std::size_t half, const double* wr,
               const double* wi, bool conj_twiddles);

}  // namespace scalar

}  // namespace psdacc::dsp::kernels
