#include "dsp/convolution.hpp"

#include <algorithm>

#include "dsp/kernels.hpp"
#include "support/assert.hpp"

namespace psdacc::dsp {

std::vector<double> convolve_direct(std::span<const double> x,
                                    std::span<const double> h) {
  PSDACC_EXPECTS(!x.empty() && !h.empty());
  std::vector<double> out(x.size() + h.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    for (std::size_t j = 0; j < h.size(); ++j) out[i + j] += x[i] * h[j];
  return out;
}

std::vector<double> convolve_fft(std::span<const double> x,
                                 std::span<const double> h) {
  PSDACC_EXPECTS(!x.empty() && !h.empty());
  const std::size_t out_len = x.size() + h.size() - 1;
  const std::size_t n = next_power_of_two(out_len);
  const FftPlan& plan = plan_for(n);
  std::vector<cplx> xs, hs;
  plan.rfft(x, xs);
  plan.rfft(h, hs);
  kernels::complex_mul(xs, hs);
  plan.inverse(xs);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) out[i] = xs[i].real();
  return out;
}

OverlapSave::OverlapSave(std::span<const double> h, std::size_t fft_size)
    : taps_(h.size()),
      fft_size_(fft_size),
      plan_(PlanCache::instance().handle(fft_size)) {
  PSDACC_EXPECTS(!h.empty());
  PSDACC_EXPECTS(is_power_of_two(fft_size));
  PSDACC_EXPECTS(fft_size >= 2 * h.size());
  block_size_ = fft_size_ - taps_ + 1;
  plan_->rfft(h, h_spectrum_);
  history_.assign(taps_ - 1, 0.0);
  buf_.resize(fft_size_);
}

std::vector<double> OverlapSave::process_block(std::span<const double> x) {
  PSDACC_EXPECTS(x.size() == block_size_);
  // Assemble [history | x] of length fft_size_.
  for (std::size_t i = 0; i < history_.size(); ++i)
    buf_[i] = cplx(history_[i], 0.0);
  for (std::size_t i = 0; i < x.size(); ++i)
    buf_[history_.size() + i] = cplx(x[i], 0.0);
  plan_->forward(buf_);
  kernels::complex_mul(buf_, h_spectrum_);
  plan_->inverse(buf_);
  // The first taps_-1 outputs are circularly corrupted; keep the rest.
  std::vector<double> out(block_size_);
  for (std::size_t i = 0; i < block_size_; ++i)
    out[i] = buf_[taps_ - 1 + i].real();
  // Save the tail of the input as history for the next block.
  if (taps_ > 1) {
    const std::size_t keep = taps_ - 1;
    std::vector<double> next(keep);
    if (x.size() >= keep) {
      std::copy(x.end() - static_cast<std::ptrdiff_t>(keep), x.end(),
                next.begin());
    } else {
      const std::size_t from_hist = keep - x.size();
      std::copy(history_.end() - static_cast<std::ptrdiff_t>(from_hist),
                history_.end(), next.begin());
      std::copy(x.begin(), x.end(), next.begin() + static_cast<std::ptrdiff_t>(
                                                       from_hist));
    }
    history_ = std::move(next);
  }
  return out;
}

std::vector<double> OverlapSave::filter(std::span<const double> x) {
  std::vector<double> out;
  out.reserve(x.size());
  std::vector<double> block(block_size_, 0.0);
  std::size_t pos = 0;
  while (pos < x.size()) {
    const std::size_t take = std::min(block_size_, x.size() - pos);
    std::fill(block.begin(), block.end(), 0.0);
    std::copy(x.begin() + static_cast<std::ptrdiff_t>(pos),
              x.begin() + static_cast<std::ptrdiff_t>(pos + take),
              block.begin());
    const auto y = process_block(block);
    const std::size_t emit = std::min(take, y.size());
    out.insert(out.end(), y.begin(),
               y.begin() + static_cast<std::ptrdiff_t>(emit));
    pos += take;
  }
  return out;
}

void OverlapSave::reset() { std::fill(history_.begin(), history_.end(), 0.0); }

}  // namespace psdacc::dsp
