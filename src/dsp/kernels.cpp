#include "dsp/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/simd.hpp"
#include "support/assert.hpp"

namespace psdacc::dsp::kernels {

namespace {

using cplx = std::complex<double>;

// Shared sequential passes: the IIR feedback recurrence cannot vectorize
// (out[i] depends on out[i-1]), so both the scalar references and the SIMD
// entry points run these after their (scalar or vectorized) feedforward.
// Accumulation order matches the historical one-pass loop exactly: the
// b-taps were summed first (that sum is now out[i] on entry), then the
// a-taps subtracted in ascending j.
void iir_feedback(std::span<const double> a, std::vector<double>& y) {
  const std::size_t na = a.size();
  const std::size_t len = y.size();
  for (std::size_t i = 0; i < len; ++i) {
    double acc = y[i];
    const std::size_t ja = std::min(na, i);
    for (std::size_t j = 0; j < ja; ++j) acc -= a[j] * y[i - 1 - j];
    y[i] = acc;
  }
}

void iir_feedback_quantized(std::span<const double> a,
                            const fxp::QuantizerKernel& q,
                            std::vector<double>& y) {
  const std::size_t na = a.size();
  const std::size_t len = y.size();
  for (std::size_t i = 0; i < len; ++i) {
    double acc = y[i];
    const std::size_t ja = std::min(na, i);
    // Feedback reads the already-quantized outputs (direct form I).
    for (std::size_t j = 0; j < ja; ++j) acc -= a[j] * y[i - 1 - j];
    y[i] = q(acc);
  }
}

}  // namespace

std::size_t width() noexcept { return simd::kWidth; }

std::string_view active_isa() noexcept {
  switch (simd::kWidth) {
    case 2:
      return "vec128";
    case 4:
      return "vec256";
    case 8:
      return "vec512";
    default:
      return "scalar";
  }
}

// ---------------------------------------------------------------------------
// Scalar references (always compiled: the parity oracle and speedup
// baseline, and the public entry points of -DPSDACC_SIMD=OFF builds).
// ---------------------------------------------------------------------------

namespace scalar {

void fir_apply(std::span<const double> b, std::span<const double> x,
               std::vector<double>& out) {
  const std::size_t len = x.size();
  const std::size_t nb = b.size();
  out.resize(len);
  const std::size_t head = std::min(len, nb > 0 ? nb - 1 : 0);
  for (std::size_t i = 0; i < head; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i; ++j) acc += b[j] * x[i - j];
    out[i] = acc;
  }
  for (std::size_t i = head; i < len; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < nb; ++j) acc += b[j] * x[i - j];
    out[i] = acc;
  }
}

void iir_df2(std::span<const double> b, std::span<const double> a,
             std::span<const double> x, std::vector<double>& out) {
  fir_apply(b, x, out);
  iir_feedback(a, out);
}

void iir_df1_quantized(std::span<const double> b, std::span<const double> a,
                       const fxp::QuantizerKernel& q,
                       std::span<const double> x, std::vector<double>& out) {
  fir_apply(b, x, out);
  iir_feedback_quantized(a, q, out);
}

void quantize_span(const fxp::QuantizerKernel& q, std::span<const double> x,
                   std::span<double> out) {
  PSDACC_EXPECTS(out.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = q(x[i]);
}

void window_apply(std::span<const double> x, std::span<const double> w,
                  std::span<double> out) {
  PSDACC_EXPECTS(x.size() == w.size());
  PSDACC_EXPECTS(out.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * w[i];
}

void window_accumulate(std::span<double> acc, std::span<const cplx> spectrum,
                       double scale) {
  PSDACC_EXPECTS(acc.size() >= spectrum.size());
  for (std::size_t k = 0; k < spectrum.size(); ++k) {
    const double re = spectrum[k].real();
    const double im = spectrum[k].imag();
    acc[k] += (re * re + im * im) * scale;
  }
}

void complex_mul(std::span<double> xr, std::span<double> xi,
                 std::span<const double> yr, std::span<const double> yi) {
  PSDACC_EXPECTS(xr.size() == xi.size());
  PSDACC_EXPECTS(yr.size() >= xr.size() && yi.size() >= xr.size());
  for (std::size_t i = 0; i < xr.size(); ++i) {
    const double r = xr[i] * yr[i] - xi[i] * yi[i];
    const double m = xr[i] * yi[i] + xi[i] * yr[i];
    xr[i] = r;
    xi[i] = m;
  }
}

void complex_mul(std::span<cplx> x, std::span<const cplx> y) {
  PSDACC_EXPECTS(y.size() >= x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double a = x[i].real();
    const double b = x[i].imag();
    const double c = y[i].real();
    const double d = y[i].imag();
    x[i] = cplx(a * c - b * d, a * d + b * c);
  }
}

void complex_mul_add(std::span<double> or_, std::span<double> oi,
                     std::span<const double> xr, std::span<const double> xi,
                     std::span<const double> yr, std::span<const double> yi) {
  PSDACC_EXPECTS(or_.size() == oi.size());
  PSDACC_EXPECTS(xr.size() >= or_.size() && xi.size() >= or_.size());
  PSDACC_EXPECTS(yr.size() >= or_.size() && yi.size() >= or_.size());
  for (std::size_t i = 0; i < or_.size(); ++i) {
    or_[i] += xr[i] * yr[i] - xi[i] * yi[i];
    oi[i] += xr[i] * yi[i] + xi[i] * yr[i];
  }
}

void split_complex(std::span<const cplx> x, std::span<double> re,
                   std::span<double> im) {
  PSDACC_EXPECTS(re.size() == x.size() && im.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
}

void merge_complex(std::span<const double> re, std::span<const double> im,
                   std::span<cplx> out) {
  PSDACC_EXPECTS(re.size() == out.size() && im.size() == out.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = cplx(re[i], im[i]);
}

void scale(std::span<double> x, double s) {
  for (double& v : x) v *= s;
}

void butterfly(double* re, double* im, std::size_t half, const double* wr,
               const double* wi, bool conj_twiddles) {
  for (std::size_t k = 0; k < half; ++k) {
    const double wre = wr[k];
    const double wim = conj_twiddles ? -wi[k] : wi[k];
    const double vr = re[k + half];
    const double vi = im[k + half];
    const double tr = vr * wre - vi * wim;
    const double ti = vr * wim + vi * wre;
    const double ur = re[k];
    const double ui = im[k];
    re[k] = ur + tr;
    im[k] = ui + ti;
    re[k + half] = ur - tr;
    im[k + half] = ui - ti;
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// SIMD entry points. Each vectorizes across independent outputs with the
// per-lane operation order of its scalar reference (see header contract)
// and finishes with an explicit scalar tail loop.
// ---------------------------------------------------------------------------

#if PSDACC_SIMD_ENABLED
namespace {

constexpr std::size_t W = simd::kWidth;

}  // namespace
#endif

void fir_apply(std::span<const double> b, std::span<const double> x,
               std::vector<double>& out) {
#if !PSDACC_SIMD_ENABLED
  scalar::fir_apply(b, x, out);
#else
  const std::size_t len = x.size();
  const std::size_t nb = b.size();
  out.resize(len);
  const std::size_t head = std::min(len, nb > 0 ? nb - 1 : 0);
  for (std::size_t i = 0; i < head; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i; ++j) acc += b[j] * x[i - j];
    out[i] = acc;
  }
  std::size_t i = head;
  // 2*W output samples at a time; every lane accumulates its own dot
  // product in ascending-j order, exactly like the scalar loop. The pair
  // of accumulators shares each tap broadcast and gives the CPU two
  // independent add chains to overlap (a single chain leaves it
  // latency-bound and barely ahead of scalar).
  for (; i + 2 * W <= len; i += 2 * W) {
    simd::VDouble acc0{};
    simd::VDouble acc1{};
    for (std::size_t j = 0; j < nb; ++j) {
      const simd::VDouble bj = simd::splat(b[j]);
      acc0 = acc0 + bj * simd::load(&x[i - j]);
      acc1 = acc1 + bj * simd::load(&x[i + W - j]);
    }
    simd::store(&out[i], acc0);
    simd::store(&out[i + W], acc1);
  }
  for (; i + W <= len; i += W) {
    simd::VDouble acc{};
    for (std::size_t j = 0; j < nb; ++j)
      acc = acc + simd::splat(b[j]) * simd::load(&x[i - j]);
    simd::store(&out[i], acc);
  }
  for (; i < len; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < nb; ++j) acc += b[j] * x[i - j];
    out[i] = acc;
  }
#endif
}

void iir_df2(std::span<const double> b, std::span<const double> a,
             std::span<const double> x, std::vector<double>& out) {
  fir_apply(b, x, out);
  iir_feedback(a, out);
}

void iir_df1_quantized(std::span<const double> b, std::span<const double> a,
                       const fxp::QuantizerKernel& q,
                       std::span<const double> x, std::vector<double>& out) {
  fir_apply(b, x, out);
  iir_feedback_quantized(a, q, out);
}

void quantize_span(const fxp::QuantizerKernel& q, std::span<const double> x,
                   std::span<double> out) {
#if !PSDACC_SIMD_ENABLED
  scalar::quantize_span(q, x, out);
#else
  PSDACC_EXPECTS(out.size() == x.size());
  const simd::VDouble vinv = simd::splat(q.inv_step());
  const simd::VDouble vstep = simd::splat(q.step());
  const simd::VDouble vlo = simd::splat(q.lo());
  const simd::VDouble vhi = simd::splat(q.hi());
  const simd::VDouble vlim = simd::splat(simd::kExactFloorBound);
  const simd::VDouble vhalf = simd::splat(0.5);
  const simd::VDouble vone = simd::splat(1.0);
  const fxp::RoundingMode mode = q.rounding();
  const bool saturate = q.overflow() == fxp::OverflowMode::kSaturate;

  // Scaled value -> rounded unit count, per lane, in the exact-floor
  // domain. Every branch reproduces the scalar kernel's arithmetic
  // lane-wise, including the sign of zero results.
  const auto units_for = [&](simd::VDouble scaled) -> simd::VDouble {
    switch (mode) {
      case fxp::RoundingMode::kTruncate:
        return simd::floor_small(scaled);
      case fxp::RoundingMode::kRoundNearest:
        return simd::floor_small(scaled + vhalf);
      case fxp::RoundingMode::kConvergent: {
        const simd::VDouble fl = simd::floor_small(scaled);
        const simd::VDouble frac = scaled - fl;
        const simd::VMask m_up = frac > vhalf;
        // fl is odd iff fl/2 is not an integer; the halves are < 2^50 so
        // the round-trip test is exact and stays in double lanes.
        const simd::VDouble half_fl = fl * vhalf;
        const simd::VMask m_odd =
            simd::round_even_small(half_fl) != half_fl;
        const simd::VMask m_tie = (frac == vhalf) & m_odd;
        // Select (not add) so untouched lanes keep fl exactly, -0.0
        // included.
        return simd::select(m_up | m_tie, fl + vone, fl);
      }
    }
    return simd::VDouble{};  // unreachable
  };

  // Saturation. When the range straddles zero (every signed format) a
  // plain min/max clamp is bit-identical to the scalar kernel's branches:
  // out-of-range lanes take lo_/hi_'s own bits, equal nonzero doubles
  // share one bit pattern, and ±0.0 lanes are strictly inside the range
  // so the compares pass them through untouched. Only a range touching
  // zero (an unsigned format's lo_ == 0.0, where scalar keeps a -0.0
  // result that max() would rewrite to +0.0) needs the slower
  // select-based form that mirrors the scalar branch structure exactly.
  const bool fast_clamp = q.lo() < 0.0 && q.hi() > 0.0;
  const auto saturate_res = [&](simd::VDouble res) -> simd::VDouble {
    if (fast_clamp) return simd::min(simd::max(res, vlo), vhi);
    const simd::VMask in_range = (res >= vlo) & (res <= vhi);
    return simd::select(in_range, res,
                        simd::select(res < vlo, vlo, vhi));
  };

  std::size_t i = 0;
  // Two W-lane chunks per iteration, sharing one domain-guard branch;
  // the independent chains overlap the per-chunk rounding latency.
  for (; i + 2 * W <= x.size(); i += 2 * W) {
    const simd::VDouble s0 = simd::load(&x[i]) * vinv;
    const simd::VDouble s1 = simd::load(&x[i + W]) * vinv;
    // Non-finite lanes fail the compare; huge lanes sit outside the
    // exact-floor domain. Either sends the whole pair scalar.
    if (!simd::all_of((simd::abs(s0) < vlim) & (simd::abs(s1) < vlim))) {
      for (std::size_t l = 0; l < 2 * W; ++l) out[i + l] = q(x[i + l]);
      continue;
    }
    const simd::VDouble r0 = units_for(s0) * vstep;
    const simd::VDouble r1 = units_for(s1) * vstep;
    if (saturate) {
      simd::store(&out[i], saturate_res(r0));
      simd::store(&out[i + W], saturate_res(r1));
    } else if (simd::all_of((r0 >= vlo) & (r0 <= vhi) & (r1 >= vlo) &
                            (r1 <= vhi))) {
      simd::store(&out[i], r0);
      simd::store(&out[i + W], r1);
    } else {
      // Wrap boundary traffic: rare, and fmod-based wrapping is not worth
      // re-deriving lane-wise — replay the offending pair through the
      // scalar kernel for exact parity.
      for (std::size_t l = 0; l < 2 * W; ++l) out[i + l] = q(x[i + l]);
    }
  }
  for (; i < x.size(); ++i) out[i] = q(x[i]);
#endif
}

void window_apply(std::span<const double> x, std::span<const double> w,
                  std::span<double> out) {
#if !PSDACC_SIMD_ENABLED
  scalar::window_apply(x, w, out);
#else
  PSDACC_EXPECTS(x.size() == w.size());
  PSDACC_EXPECTS(out.size() == x.size());
  std::size_t i = 0;
  for (; i + W <= x.size(); i += W)
    simd::store(&out[i], simd::load(&x[i]) * simd::load(&w[i]));
  for (; i < x.size(); ++i) out[i] = x[i] * w[i];
#endif
}

void window_accumulate(std::span<double> acc, std::span<const cplx> spectrum,
                       double scale) {
#if !PSDACC_SIMD_ENABLED
  scalar::window_accumulate(acc, spectrum, scale);
#else
  PSDACC_EXPECTS(acc.size() >= spectrum.size());
  const double* s = reinterpret_cast<const double*>(spectrum.data());
  const simd::VDouble vscale = simd::splat(scale);
  std::size_t k = 0;
  for (; k + W <= spectrum.size(); k += W) {
    simd::VDouble re, im;
    simd::deinterleave(simd::load(s + 2 * k), simd::load(s + 2 * k + W), re,
                       im);
    simd::store(&acc[k],
                simd::load(&acc[k]) + (re * re + im * im) * vscale);
  }
  for (; k < spectrum.size(); ++k) {
    const double re = spectrum[k].real();
    const double im = spectrum[k].imag();
    acc[k] += (re * re + im * im) * scale;
  }
#endif
}

void complex_mul(std::span<double> xr, std::span<double> xi,
                 std::span<const double> yr, std::span<const double> yi) {
#if !PSDACC_SIMD_ENABLED
  scalar::complex_mul(xr, xi, yr, yi);
#else
  PSDACC_EXPECTS(xr.size() == xi.size());
  PSDACC_EXPECTS(yr.size() >= xr.size() && yi.size() >= xr.size());
  std::size_t i = 0;
  for (; i + W <= xr.size(); i += W) {
    const simd::VDouble ar = simd::load(&xr[i]);
    const simd::VDouble ai = simd::load(&xi[i]);
    const simd::VDouble br = simd::load(&yr[i]);
    const simd::VDouble bi = simd::load(&yi[i]);
    simd::store(&xr[i], ar * br - ai * bi);
    simd::store(&xi[i], ar * bi + ai * br);
  }
  for (; i < xr.size(); ++i) {
    const double r = xr[i] * yr[i] - xi[i] * yi[i];
    const double m = xr[i] * yi[i] + xi[i] * yr[i];
    xr[i] = r;
    xi[i] = m;
  }
#endif
}

void complex_mul(std::span<cplx> x, std::span<const cplx> y) {
#if !PSDACC_SIMD_ENABLED
  scalar::complex_mul(x, y);
#else
  PSDACC_EXPECTS(y.size() >= x.size());
  double* xd = reinterpret_cast<double*>(x.data());
  const double* yd = reinterpret_cast<const double*>(y.data());
  std::size_t i = 0;
  for (; i + W <= x.size(); i += W) {
    simd::VDouble ar, ai, br, bi;
    simd::deinterleave(simd::load(xd + 2 * i), simd::load(xd + 2 * i + W),
                       ar, ai);
    simd::deinterleave(simd::load(yd + 2 * i), simd::load(yd + 2 * i + W),
                       br, bi);
    simd::VDouble lo, hi;
    simd::interleave(ar * br - ai * bi, ar * bi + ai * br, lo, hi);
    simd::store(xd + 2 * i, lo);
    simd::store(xd + 2 * i + W, hi);
  }
  for (; i < x.size(); ++i) {
    const double a = x[i].real();
    const double b = x[i].imag();
    const double c = y[i].real();
    const double d = y[i].imag();
    x[i] = cplx(a * c - b * d, a * d + b * c);
  }
#endif
}

void complex_mul_add(std::span<double> or_, std::span<double> oi,
                     std::span<const double> xr, std::span<const double> xi,
                     std::span<const double> yr, std::span<const double> yi) {
#if !PSDACC_SIMD_ENABLED
  scalar::complex_mul_add(or_, oi, xr, xi, yr, yi);
#else
  PSDACC_EXPECTS(or_.size() == oi.size());
  PSDACC_EXPECTS(xr.size() >= or_.size() && xi.size() >= or_.size());
  PSDACC_EXPECTS(yr.size() >= or_.size() && yi.size() >= or_.size());
  std::size_t i = 0;
  for (; i + W <= or_.size(); i += W) {
    const simd::VDouble ar = simd::load(&xr[i]);
    const simd::VDouble ai = simd::load(&xi[i]);
    const simd::VDouble br = simd::load(&yr[i]);
    const simd::VDouble bi = simd::load(&yi[i]);
    simd::store(&or_[i], simd::load(&or_[i]) + (ar * br - ai * bi));
    simd::store(&oi[i], simd::load(&oi[i]) + (ar * bi + ai * br));
  }
  for (; i < or_.size(); ++i) {
    or_[i] += xr[i] * yr[i] - xi[i] * yi[i];
    oi[i] += xr[i] * yi[i] + xi[i] * yr[i];
  }
#endif
}

void split_complex(std::span<const cplx> x, std::span<double> re,
                   std::span<double> im) {
#if !PSDACC_SIMD_ENABLED
  scalar::split_complex(x, re, im);
#else
  PSDACC_EXPECTS(re.size() == x.size() && im.size() == x.size());
  const double* xd = reinterpret_cast<const double*>(x.data());
  std::size_t i = 0;
  for (; i + W <= x.size(); i += W) {
    simd::VDouble vr, vi;
    simd::deinterleave(simd::load(xd + 2 * i), simd::load(xd + 2 * i + W),
                       vr, vi);
    simd::store(&re[i], vr);
    simd::store(&im[i], vi);
  }
  for (; i < x.size(); ++i) {
    re[i] = x[i].real();
    im[i] = x[i].imag();
  }
#endif
}

void merge_complex(std::span<const double> re, std::span<const double> im,
                   std::span<cplx> out) {
#if !PSDACC_SIMD_ENABLED
  scalar::merge_complex(re, im, out);
#else
  PSDACC_EXPECTS(re.size() == out.size() && im.size() == out.size());
  double* od = reinterpret_cast<double*>(out.data());
  std::size_t i = 0;
  for (; i + W <= out.size(); i += W) {
    simd::VDouble lo, hi;
    simd::interleave(simd::load(&re[i]), simd::load(&im[i]), lo, hi);
    simd::store(od + 2 * i, lo);
    simd::store(od + 2 * i + W, hi);
  }
  for (; i < out.size(); ++i) out[i] = cplx(re[i], im[i]);
#endif
}

void scale(std::span<double> x, double s) {
#if !PSDACC_SIMD_ENABLED
  scalar::scale(x, s);
#else
  const simd::VDouble vs = simd::splat(s);
  std::size_t i = 0;
  for (; i + W <= x.size(); i += W)
    simd::store(&x[i], simd::load(&x[i]) * vs);
  for (; i < x.size(); ++i) x[i] *= s;
#endif
}

void butterfly(double* re, double* im, std::size_t half, const double* wr,
               const double* wi, bool conj_twiddles) {
#if !PSDACC_SIMD_ENABLED
  scalar::butterfly(re, im, half, wr, wi, conj_twiddles);
#else
  std::size_t k = 0;
  for (; k + W <= half; k += W) {
    const simd::VDouble wre = simd::load(wr + k);
    simd::VDouble wim = simd::load(wi + k);
    if (conj_twiddles) wim = -wim;
    const simd::VDouble vr = simd::load(re + k + half);
    const simd::VDouble vi = simd::load(im + k + half);
    const simd::VDouble tr = vr * wre - vi * wim;
    const simd::VDouble ti = vr * wim + vi * wre;
    const simd::VDouble ur = simd::load(re + k);
    const simd::VDouble ui = simd::load(im + k);
    simd::store(re + k, ur + tr);
    simd::store(im + k, ui + ti);
    simd::store(re + k + half, ur - tr);
    simd::store(im + k + half, ui - ti);
  }
  for (; k < half; ++k) {
    const double wre = wr[k];
    const double wim = conj_twiddles ? -wi[k] : wi[k];
    const double vr = re[k + half];
    const double vi = im[k + half];
    const double tr = vr * wre - vi * wim;
    const double ti = vr * wim + vi * wre;
    const double ur = re[k];
    const double ui = im[k];
    re[k] = ur + tr;
    im[k] = ui + ti;
    re[k + half] = ur - tr;
    im[k + half] = ui - ti;
  }
#endif
}

}  // namespace psdacc::dsp::kernels
