#include "dsp/fft_plan.hpp"

#include <cmath>
#include <cstdint>
#include <iterator>
#include <memory>
#include <numbers>
#include <unordered_map>

#include "dsp/kernels.hpp"
#include "support/assert.hpp"

// Transforms run in split-complex (SoA) layout throughout: the butterfly
// stages and Bluestein pointwise products call the vectorized dsp::kernels
// entry points, and only the interleaved std::complex boundary converts.
// The kernels reproduce libstdc++'s finite-operand complex arithmetic
// operation for operation, so the results are bit-identical to the old
// interleaved implementation (and between SIMD and scalar builds).

namespace psdacc::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  PSDACC_EXPECTS(n >= 1);
  PlanCache& cache = PlanCache::instance();
  if (is_power_of_two(n_)) {
    // Bit-reversal permutation, stored as the swap pairs applied in order.
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) {
        bitrev_swaps_.push_back(i);
        bitrev_swaps_.push_back(j);
      }
    }
    // Forward twiddles e^{-j 2 pi k / len}, k = 0..len/2-1, one run per
    // butterfly stage; the stage with span `len` starts at offset len/2 - 1.
    const std::size_t total = n_ > 1 ? n_ - 1 : 0;
    twiddle_re_.reserve(total);
    twiddle_im_.reserve(total);
    for (std::size_t len = 2; len <= n_; len <<= 1) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>(k) /
                             static_cast<double>(len);
        twiddle_re_.push_back(std::cos(angle));
        twiddle_im_.push_back(std::sin(angle));
      }
    }
  } else {
    // Bluestein: DFT as a convolution with a chirp, via a power-of-two FFT.
    const std::size_t m = next_power_of_two(2 * n_ + 1);
    conv_ = cache.handle(m);
    chirp_re_.resize(n_);
    chirp_im_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      // angle = -pi * i^2 / n, with i^2 taken mod 2n to avoid overflow.
      const std::size_t sq = (i * i) % (2 * n_);
      const double angle = -std::numbers::pi * static_cast<double>(sq) /
                           static_cast<double>(n_);
      chirp_re_[i] = std::cos(angle);
      chirp_im_[i] = std::sin(angle);
    }
    kernel_re_.assign(m, 0.0);
    kernel_im_.assign(m, 0.0);
    kernel_re_[0] = chirp_re_[0];
    kernel_im_[0] = -chirp_im_[0];
    for (std::size_t i = 1; i < n_; ++i) {
      kernel_re_[i] = chirp_re_[i];
      kernel_im_[i] = -chirp_im_[i];
      kernel_re_[m - i] = chirp_re_[i];
      kernel_im_[m - i] = -chirp_im_[i];
    }
    conv_->transform_pow2_split(kernel_re_.data(), kernel_im_.data(), -1);
    work_re_.resize(m);
    work_im_.resize(m);
  }
  split_re_.resize(n_);
  split_im_.resize(n_);
  if (n_ >= 2 && n_ % 2 == 0) {
    half_ = cache.handle(n_ / 2);
    rfft_tw_re_.resize(n_ / 2 + 1);
    rfft_tw_im_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n_);
      rfft_tw_re_[k] = std::cos(angle);
      rfft_tw_im_[k] = std::sin(angle);
    }
    half_re_.resize(n_ / 2);
    half_im_.resize(n_ / 2);
  }
}

void FftPlan::transform_pow2_split(double* re, double* im, int sign) const {
  for (std::size_t p = 0; p < bitrev_swaps_.size(); p += 2) {
    std::swap(re[bitrev_swaps_[p]], re[bitrev_swaps_[p + 1]]);
    std::swap(im[bitrev_swaps_[p]], im[bitrev_swaps_[p + 1]]);
  }
  const double* wr = twiddle_re_.data();
  const double* wi = twiddle_im_.data();
  const bool conj_tw = sign > 0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len)
      kernels::butterfly(re + i, im + i, half, wr, wi, conj_tw);
    wr += half;
    wi += half;
  }
}

void FftPlan::bluestein_split(double* re, double* im) const {
  const std::size_t m = work_re_.size();
  std::copy(re, re + n_, work_re_.begin());
  std::copy(im, im + n_, work_im_.begin());
  kernels::complex_mul({work_re_.data(), n_}, {work_im_.data(), n_},
                       {chirp_re_.data(), n_}, {chirp_im_.data(), n_});
  std::fill(work_re_.begin() + static_cast<std::ptrdiff_t>(n_),
            work_re_.end(), 0.0);
  std::fill(work_im_.begin() + static_cast<std::ptrdiff_t>(n_),
            work_im_.end(), 0.0);
  conv_->transform_pow2_split(work_re_.data(), work_im_.data(), -1);
  kernels::complex_mul({work_re_.data(), m}, {work_im_.data(), m},
                       {kernel_re_.data(), m}, {kernel_im_.data(), m});
  conv_->transform_pow2_split(work_re_.data(), work_im_.data(), +1);
  // Same operation order as the interleaved original: the 1/m scaling
  // applies before the chirp product.
  const double inv_m = 1.0 / static_cast<double>(m);
  kernels::scale({work_re_.data(), n_}, inv_m);
  kernels::scale({work_im_.data(), n_}, inv_m);
  kernels::complex_mul({work_re_.data(), n_}, {work_im_.data(), n_},
                       {chirp_re_.data(), n_}, {chirp_im_.data(), n_});
  std::copy(work_re_.begin(), work_re_.begin() + static_cast<std::ptrdiff_t>(n_),
            re);
  std::copy(work_im_.begin(), work_im_.begin() + static_cast<std::ptrdiff_t>(n_),
            im);
}

void FftPlan::forward_split(double* re, double* im) const {
  if (n_ == 1) return;
  if (conv_ == nullptr) {
    transform_pow2_split(re, im, -1);
  } else {
    bluestein_split(re, im);
  }
}

void FftPlan::forward(std::vector<cplx>& data) const {
  PSDACC_EXPECTS(data.size() == n_);
  if (n_ == 1) return;
  kernels::split_complex(data, split_re_, split_im_);
  forward_split(split_re_.data(), split_im_.data());
  kernels::merge_complex(split_re_, split_im_, data);
}

void FftPlan::inverse(std::vector<cplx>& data) const {
  PSDACC_EXPECTS(data.size() == n_);
  if (n_ == 1) return;
  kernels::split_complex(data, split_re_, split_im_);
  const double inv_n = 1.0 / static_cast<double>(n_);
  if (conv_ == nullptr) {
    transform_pow2_split(split_re_.data(), split_im_.data(), +1);
    kernels::scale(split_re_, inv_n);
    kernels::scale(split_im_, inv_n);
  } else {
    // IFFT(x) = conj(FFT(conj(x))) / n keeps the Bluestein tables
    // forward-only. Conjugation is a sign flip on the imaginary array
    // (multiplying by -1 is exact), and the trailing conj folds into the
    // 1/n scaling.
    kernels::scale(split_im_, -1.0);
    bluestein_split(split_re_.data(), split_im_.data());
    kernels::scale(split_re_, inv_n);
    kernels::scale(split_im_, -inv_n);
  }
  kernels::merge_complex(split_re_, split_im_, data);
}

void FftPlan::rfft(std::span<const double> x, std::vector<cplx>& out) const {
  const std::size_t copy = std::min(n_, x.size());
  if (half_ == nullptr) {
    // Size 1 or odd size: plain complex transform of the real signal.
    out.assign(n_, cplx(0.0, 0.0));
    for (std::size_t i = 0; i < copy; ++i) out[i] = cplx(x[i], 0.0);
    forward(out);
    return;
  }
  // Pack pairs of real samples into one half-length complex signal,
  // z[i] = x[2i] + j x[2i+1] — in split layout that is exactly a
  // deinterleave of the input, straight into the half-size scratch.
  const std::size_t h = n_ / 2;
  if (copy == n_) {
    kernels::split_complex(
        {reinterpret_cast<const cplx*>(x.data()), h}, half_re_, half_im_);
  } else {
    for (std::size_t i = 0; i < h; ++i) {
      half_re_[i] = 2 * i < copy ? x[2 * i] : 0.0;
      half_im_[i] = 2 * i + 1 < copy ? x[2 * i + 1] : 0.0;
    }
  }
  half_->forward_split(half_re_.data(), half_im_.data());
  // Split Z into the even/odd-sample spectra and recombine:
  // X[k] = E[k] + W_n^k O[k], with X[n-k] = conj(X[k]). The component
  // expressions below spell out the complex arithmetic of the interleaved
  // original (including the zero products) so results match it bit for
  // bit.
  out.resize(n_);
  out[0] = cplx(half_re_[0] + half_im_[0], 0.0);
  out[h] = cplx(half_re_[0] - half_im_[0], 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const double ar = half_re_[k];
    const double ai = half_im_[k];
    const double br = half_re_[h - k];
    const double bi = -half_im_[h - k];  // conj(Z[h-k])
    const double even_re = 0.5 * (ar + br);
    const double even_im = 0.5 * (ai + bi);
    const double d_re = ar - br;
    const double d_im = ai - bi;
    // odd = (0 - 0.5j) * d, written as the full product formula.
    const double odd_re = 0.0 * d_re - (-0.5) * d_im;
    const double odd_im = 0.0 * d_im + (-0.5) * d_re;
    const double wr = rfft_tw_re_[k];
    const double wi = rfft_tw_im_[k];
    const double xk_re = even_re + (wr * odd_re - wi * odd_im);
    const double xk_im = even_im + (wr * odd_im + wi * odd_re);
    out[k] = cplx(xk_re, xk_im);
    out[n_ - k] = cplx(xk_re, -xk_im);
  }
}

namespace {

constexpr std::size_t kDefaultPlanCacheCapacity = 64;

struct CacheEntry {
  std::shared_ptr<const FftPlan> plan;
  std::uint64_t last_use = 0;
};

// One cache per thread: plans carry mutable scratch, so sharing instances
// across threads would race. Thread-local duplication trades a little
// memory (twiddle tables per worker) for lock-free lookups on the hot path.
// Bounded: LRU-evicted down to `capacity` after every insert, so a server
// worker sweeping arbitrary transform sizes holds O(capacity) plans.
struct CacheState {
  std::unordered_map<std::size_t, CacheEntry> map;
  std::uint64_t tick = 0;
  std::size_t capacity = kDefaultPlanCacheCapacity;
};

CacheState& thread_cache() {
  thread_local CacheState cache;
  return cache;
}

// Evicting is a plain erase: the shared_ptr keeps the plan alive for any
// holder (a parent plan's sub-plan member, an OverlapSave, a caller mid
// PlanCache::handle), so eviction can only ever free memory, never dangle.
void evict_to_capacity(CacheState& cache) {
  while (cache.map.size() > cache.capacity) {
    auto victim = cache.map.begin();
    for (auto it = std::next(victim); it != cache.map.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    cache.map.erase(victim);
  }
}

}  // namespace

PlanCache& PlanCache::instance() {
  // The facade is stateless (all real state is in thread_cache()), but
  // handing out a thread_local instance keeps the call sites honest about
  // the per-thread scoping.
  thread_local PlanCache facade;
  return facade;
}

std::shared_ptr<const FftPlan> PlanCache::handle(std::size_t n) {
  PSDACC_EXPECTS(n >= 1);
  CacheState& cache = thread_cache();
  const auto it = cache.map.find(n);
  if (it != cache.map.end()) {
    it->second.last_use = ++cache.tick;
    return it->second.plan;
  }
  // Construct before inserting: the constructor recurses into handle()
  // for its sub-plans (Bluestein convolution size, rfft half size), and
  // those inserts may themselves evict.
  auto plan = std::make_shared<const FftPlan>(n);
  CacheEntry& entry = cache.map[n];
  entry.plan = plan;
  entry.last_use = ++cache.tick;
  evict_to_capacity(cache);
  return plan;
}

const FftPlan& PlanCache::get(std::size_t n) { return *handle(n); }

std::size_t PlanCache::size() const { return thread_cache().map.size(); }

std::size_t PlanCache::capacity() const { return thread_cache().capacity; }

void PlanCache::set_capacity(std::size_t capacity) {
  CacheState& cache = thread_cache();
  cache.capacity = capacity < 1 ? 1 : capacity;
  evict_to_capacity(cache);
}

void PlanCache::clear() { thread_cache().map.clear(); }

const FftPlan& plan_for(std::size_t n) {
  // The cache's reference keeps the plan alive after the handle returned
  // here dies; the next insert may evict it, which is why bare references
  // are only stable until the thread's next plan_for call.
  return PlanCache::instance().get(n);
}

std::shared_ptr<const FftPlan> plan_handle_for(std::size_t n) {
  return PlanCache::instance().handle(n);
}

std::size_t plan_cache_capacity() {
  return PlanCache::instance().capacity();
}

void set_plan_cache_capacity(std::size_t capacity) {
  PlanCache::instance().set_capacity(capacity);
}

std::size_t plan_cache_size() { return PlanCache::instance().size(); }

void clear_plan_cache() { PlanCache::instance().clear(); }

}  // namespace psdacc::dsp
