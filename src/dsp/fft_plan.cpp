#include "dsp/fft_plan.hpp"

#include <cmath>
#include <cstdint>
#include <iterator>
#include <memory>
#include <numbers>
#include <unordered_map>

#include "support/assert.hpp"

namespace psdacc::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  PSDACC_EXPECTS(n >= 1);
  if (is_power_of_two(n_)) {
    // Bit-reversal permutation, stored as the swap pairs applied in order.
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) {
        bitrev_swaps_.push_back(i);
        bitrev_swaps_.push_back(j);
      }
    }
    // Forward twiddles e^{-j 2 pi k / len}, k = 0..len/2-1, one run per
    // butterfly stage; the stage with span `len` starts at offset len/2 - 1.
    twiddle_.reserve(n_ > 1 ? n_ - 1 : 0);
    for (std::size_t len = 2; len <= n_; len <<= 1) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const double angle = -2.0 * std::numbers::pi *
                             static_cast<double>(k) /
                             static_cast<double>(len);
        twiddle_.emplace_back(std::cos(angle), std::sin(angle));
      }
    }
  } else {
    // Bluestein: DFT as a convolution with a chirp, via a power-of-two FFT.
    const std::size_t m = next_power_of_two(2 * n_ + 1);
    conv_ = plan_handle_for(m);
    chirp_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      // angle = -pi * i^2 / n, with i^2 taken mod 2n to avoid overflow.
      const std::size_t sq = (i * i) % (2 * n_);
      const double angle = -std::numbers::pi * static_cast<double>(sq) /
                           static_cast<double>(n_);
      chirp_[i] = cplx(std::cos(angle), std::sin(angle));
    }
    kernel_spectrum_.assign(m, cplx(0.0, 0.0));
    kernel_spectrum_[0] = std::conj(chirp_[0]);
    for (std::size_t i = 1; i < n_; ++i) {
      kernel_spectrum_[i] = std::conj(chirp_[i]);
      kernel_spectrum_[m - i] = std::conj(chirp_[i]);
    }
    conv_->forward(kernel_spectrum_);
    work_.resize(m);
  }
  if (n_ >= 2 && n_ % 2 == 0) {
    half_ = plan_handle_for(n_ / 2);
    rfft_twiddle_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) /
                           static_cast<double>(n_);
      rfft_twiddle_[k] = cplx(std::cos(angle), std::sin(angle));
    }
    half_work_.resize(n_ / 2);
  }
}

void FftPlan::transform_pow2(cplx* a, int sign) const {
  for (std::size_t p = 0; p < bitrev_swaps_.size(); p += 2)
    std::swap(a[bitrev_swaps_[p]], a[bitrev_swaps_[p + 1]]);
  const cplx* stage = twiddle_.data();
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx w = sign < 0 ? stage[k] : std::conj(stage[k]);
        const cplx u = a[i + k];
        const cplx v = a[i + k + half] * w;
        a[i + k] = u + v;
        a[i + k + half] = u - v;
      }
    }
    stage += half;
  }
}

void FftPlan::forward_bluestein(std::vector<cplx>& data) const {
  const std::size_t m = work_.size();
  for (std::size_t i = 0; i < n_; ++i) work_[i] = data[i] * chirp_[i];
  for (std::size_t i = n_; i < m; ++i) work_[i] = cplx(0.0, 0.0);
  conv_->transform_pow2(work_.data(), -1);
  for (std::size_t i = 0; i < m; ++i) work_[i] *= kernel_spectrum_[i];
  conv_->transform_pow2(work_.data(), +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t i = 0; i < n_; ++i)
    data[i] = work_[i] * inv_m * chirp_[i];
}

void FftPlan::forward(std::vector<cplx>& data) const {
  PSDACC_EXPECTS(data.size() == n_);
  if (n_ == 1) return;
  if (conv_ == nullptr) {
    transform_pow2(data.data(), -1);
  } else {
    forward_bluestein(data);
  }
}

void FftPlan::inverse(std::vector<cplx>& data) const {
  PSDACC_EXPECTS(data.size() == n_);
  if (n_ == 1) return;
  if (conv_ == nullptr) {
    transform_pow2(data.data(), +1);
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (auto& v : data) v *= inv_n;
    return;
  }
  // IFFT(x) = conj(FFT(conj(x))) / n keeps the Bluestein tables
  // forward-only.
  for (auto& v : data) v = std::conj(v);
  forward_bluestein(data);
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (auto& v : data) v = std::conj(v) * inv_n;
}

void FftPlan::rfft(std::span<const double> x, std::vector<cplx>& out) const {
  const std::size_t copy = std::min(n_, x.size());
  if (half_ == nullptr) {
    // Size 1 or odd size: plain complex transform of the real signal.
    out.assign(n_, cplx(0.0, 0.0));
    for (std::size_t i = 0; i < copy; ++i) out[i] = cplx(x[i], 0.0);
    forward(out);
    return;
  }
  // Pack pairs of real samples into one half-length complex signal:
  // z[i] = x[2i] + j x[2i+1].
  const std::size_t h = n_ / 2;
  for (std::size_t i = 0; i < h; ++i) {
    const double re = 2 * i < copy ? x[2 * i] : 0.0;
    const double im = 2 * i + 1 < copy ? x[2 * i + 1] : 0.0;
    half_work_[i] = cplx(re, im);
  }
  half_->forward(half_work_);
  // Split Z into the even/odd-sample spectra and recombine:
  // X[k] = E[k] + W_n^k O[k], with X[n-k] = conj(X[k]).
  out.resize(n_);
  const cplx z0 = half_work_[0];
  out[0] = cplx(z0.real() + z0.imag(), 0.0);
  out[h] = cplx(z0.real() - z0.imag(), 0.0);
  for (std::size_t k = 1; k < h; ++k) {
    const cplx zk = half_work_[k];
    const cplx zc = std::conj(half_work_[h - k]);
    const cplx even = 0.5 * (zk + zc);
    const cplx odd = cplx(0.0, -0.5) * (zk - zc);
    const cplx xk = even + rfft_twiddle_[k] * odd;
    out[k] = xk;
    out[n_ - k] = std::conj(xk);
  }
}

namespace {

constexpr std::size_t kDefaultPlanCacheCapacity = 64;

struct CacheEntry {
  std::shared_ptr<const FftPlan> plan;
  std::uint64_t last_use = 0;
};

// One cache per thread: plans carry mutable scratch, so sharing instances
// across threads would race. Thread-local duplication trades a little
// memory (twiddle tables per worker) for lock-free lookups on the hot path.
// Bounded: LRU-evicted down to `capacity` after every insert, so a server
// worker sweeping arbitrary transform sizes holds O(capacity) plans.
struct PlanCache {
  std::unordered_map<std::size_t, CacheEntry> map;
  std::uint64_t tick = 0;
  std::size_t capacity = kDefaultPlanCacheCapacity;
};

PlanCache& thread_cache() {
  thread_local PlanCache cache;
  return cache;
}

// Evicting is a plain erase: the shared_ptr keeps the plan alive for any
// holder (a parent plan's sub-plan member, an OverlapSave, a caller mid
// plan_handle_for), so eviction can only ever free memory, never dangle.
void evict_to_capacity(PlanCache& cache) {
  while (cache.map.size() > cache.capacity) {
    auto victim = cache.map.begin();
    for (auto it = std::next(victim); it != cache.map.end(); ++it)
      if (it->second.last_use < victim->second.last_use) victim = it;
    cache.map.erase(victim);
  }
}

}  // namespace

std::shared_ptr<const FftPlan> plan_handle_for(std::size_t n) {
  PSDACC_EXPECTS(n >= 1);
  PlanCache& cache = thread_cache();
  const auto it = cache.map.find(n);
  if (it != cache.map.end()) {
    it->second.last_use = ++cache.tick;
    return it->second.plan;
  }
  // Construct before inserting: the constructor recurses into
  // plan_handle_for() for its sub-plans (Bluestein convolution size, rfft
  // half size), and those inserts may themselves evict.
  auto plan = std::make_shared<const FftPlan>(n);
  CacheEntry& entry = cache.map[n];
  entry.plan = plan;
  entry.last_use = ++cache.tick;
  evict_to_capacity(cache);
  return plan;
}

const FftPlan& plan_for(std::size_t n) {
  // The cache's reference keeps the plan alive after the handle returned
  // here dies; the next insert may evict it, which is why bare references
  // are only stable until the thread's next plan_for call.
  return *plan_handle_for(n);
}

std::size_t plan_cache_capacity() { return thread_cache().capacity; }

void set_plan_cache_capacity(std::size_t capacity) {
  PlanCache& cache = thread_cache();
  cache.capacity = capacity < 1 ? 1 : capacity;
  evict_to_capacity(cache);
}

std::size_t plan_cache_size() { return thread_cache().map.size(); }

void clear_plan_cache() { thread_cache().map.clear(); }

}  // namespace psdacc::dsp
