// Portable SIMD primitives for the dsp::kernels hot loops.
//
// Built on the GCC/Clang vector extensions, so the same source compiles to
// SSE2, AVX, or NEON without intrinsics or a hard library dependency; any
// other compiler (or -DPSDACC_SIMD=OFF, which defines PSDACC_SIMD_SCALAR)
// gets kWidth == 1 and the kernels fall back to their scalar reference
// implementations. The vector width in doubles is a configure-time choice
// (PSDACC_SIMD_WIDTH, default 2 = 128-bit vectors, native for SSE2 and
// NEON). Wider-than-native widths are legal but slow: GCC lowers e.g. a
// 256-bit generic vector on an SSE2-only target through stack slots, so
// pick the width that matches the target ISA (4 for AVX, 8 for AVX-512).
//
// Design rule inherited by every kernel built on this header: vectorize
// across *independent outputs* (each lane accumulates its own result in the
// same order the scalar code would), never across a single reduction. That
// keeps every kernel bit-identical to its scalar reference — there is no
// reassociated summation anywhere — so the SIMD and scalar builds agree to
// the last bit and the golden corpus needs no SIMD-specific tolerances.
// A horizontal sum is deliberately not provided.
#pragma once

#include <cstddef>
#include <cstring>

#if !defined(PSDACC_SIMD_SCALAR) && (defined(__GNUC__) || defined(__clang__))
#define PSDACC_SIMD_ENABLED 1
#ifndef PSDACC_SIMD_WIDTH
#define PSDACC_SIMD_WIDTH 2
#endif
#else
#define PSDACC_SIMD_ENABLED 0
#endif

namespace psdacc::dsp::simd {

#if PSDACC_SIMD_ENABLED

// Wider-than-native vectors (e.g. 256-bit on SSE2-only x86) are passed
// between the inline helpers below by value, which GCC flags with -Wpsabi
// (an ABI-compatibility note that is irrelevant here: every function
// touching vector types is inline and every TU uses one configured width).
// The build also passes -Wno-psabi; this pragma covers standalone header
// compiles.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

inline constexpr std::size_t kWidth = PSDACC_SIMD_WIDTH;
static_assert(kWidth == 2 || kWidth == 4 || kWidth == 8,
              "PSDACC_SIMD_WIDTH must be 2, 4, or 8 doubles");

using VDouble =
    double __attribute__((vector_size(kWidth * sizeof(double))));
using VInt =
    long long __attribute__((vector_size(kWidth * sizeof(long long))));
// Vector comparisons yield a VInt of all-ones (-1) / all-zeros lanes.
using VMask = VInt;

/// Unaligned load of kWidth doubles.
inline VDouble load(const double* p) {
  VDouble v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Unaligned store of kWidth doubles.
inline void store(double* p, VDouble v) { std::memcpy(p, &v, sizeof v); }

/// All lanes set to x. Lane-by-lane fill rather than `VDouble{} + x`: GCC
/// folds the loop to a plain broadcast, while the additive form keeps a
/// real add (0.0 + x is not an identity under signed zeros).
inline VDouble splat(double x) {
  VDouble v;
  for (std::size_t i = 0; i < kWidth; ++i) v[i] = x;
  return v;
}

/// Bit-reinterpret between same-size vector types.
template <typename To, typename From>
inline To vec_bit_cast(From v) {
  static_assert(sizeof(To) == sizeof(From));
  To t;
  std::memcpy(&t, &v, sizeof t);
  return t;
}

/// Lane-wise select: m ? a : b (m lanes are all-ones or all-zeros). Pure
/// bit arithmetic, so NaN payloads pass through untouched.
inline VDouble select(VMask m, VDouble a, VDouble b) {
  return vec_bit_cast<VDouble>((m & vec_bit_cast<VMask>(a)) |
                               (~m & vec_bit_cast<VMask>(b)));
}

/// True iff every lane of the mask is set.
inline bool all_of(VMask m) {
  long long acc = -1;
  for (std::size_t i = 0; i < kWidth; ++i) acc &= m[i];
  return acc == -1;
}

/// Lane-wise |v| (clears the sign bit, so -0.0 and NaN payloads behave
/// like std::fabs).
inline VDouble abs(VDouble v) {
  const VMask sign = VMask{} + (1LL << 63);
  return vec_bit_cast<VDouble>(vec_bit_cast<VMask>(v) & ~sign);
}

/// Lane-wise min/max via the vector conditional operator (GCC 4.9+,
/// Clang 10+), which lowers to the native min/max instructions. IEEE
/// caveats as with minpd/maxpd: the result takes the second operand when
/// the compare is false, so NaN lanes yield b and ±0.0 compare equal.
/// The quantizer only uses these on lanes its domain guard proved finite.
inline VDouble min(VDouble a, VDouble b) { return a < b ? a : b; }
inline VDouble max(VDouble a, VDouble b) { return a > b ? a : b; }

/// Domain bound for the all-double rounding tricks below: they are exact
/// for |v| < 2^51 (callers guard the fast path and fall back to scalar
/// std::floor beyond it, where every double is an integer anyway).
inline constexpr double kExactFloorBound = 2251799813685248.0;  // 2^51

/// Lane-wise round-to-nearest-even, the classic magic-number form: adding
/// and subtracting 1.5*2^52 forces the fraction bits out of the
/// significand (the extra 2^51 keeps v + c at or above 2^52 for negative
/// v, where the spacing is still a full integer). Exact for |v| < 2^51;
/// stays entirely in double lanes, which matters on SSE2-class targets
/// where vector double<->int64 conversion has no instruction and
/// __builtin_convertvector scalarizes.
inline VDouble round_even_small(VDouble v) {
  const VDouble c = splat(6755399441055744.0);  // 2^52 + 2^51
  return (v + c) - c;
}

/// Lane-wise floor, matching std::floor bit-for-bit on its domain:
/// exact only for |v| < kExactFloorBound (and finite).
inline VDouble floor_small(VDouble v) {
  const VDouble r = round_even_small(v);
  // Where rounding went up, subtract exactly 1.
  VDouble f = r - select(r > v, splat(1.0), VDouble{});
  // The magic round turns -0.0 into +0.0, but std::floor(-0.0) is -0.0.
  // A zero floor only comes from a ±0.0 input, so OR the input's sign bit
  // back into zero-result lanes.
  const VMask sign = VMask{} + (1LL << 63);
  const VMask zero = f == VDouble{};
  return vec_bit_cast<VDouble>(vec_bit_cast<VMask>(f) |
                               (zero & sign & vec_bit_cast<VMask>(v)));
}

/// Splits two consecutive vectors of interleaved pairs [a0 b0 a1 b1 ...]
/// into the even-index and odd-index lanes (deinterleave re/im of
/// std::complex arrays).
// Preprocessor dispatch (not if constexpr): the shuffle index lists are
// width-specific literals, and a discarded constexpr branch still
// type-checks a non-dependent too-long initializer.
inline void deinterleave(VDouble lo, VDouble hi, VDouble& even,
                         VDouble& odd) {
#if defined(__clang__)
#if PSDACC_SIMD_WIDTH == 2
  even = __builtin_shufflevector(lo, hi, 0, 2);
  odd = __builtin_shufflevector(lo, hi, 1, 3);
#elif PSDACC_SIMD_WIDTH == 4
  even = __builtin_shufflevector(lo, hi, 0, 2, 4, 6);
  odd = __builtin_shufflevector(lo, hi, 1, 3, 5, 7);
#else
  even = __builtin_shufflevector(lo, hi, 0, 2, 4, 6, 8, 10, 12, 14);
  odd = __builtin_shufflevector(lo, hi, 1, 3, 5, 7, 9, 11, 13, 15);
#endif
#else
// Literal index vectors so GCC lowers to constant shuffles, not a
// variable permute.
#if PSDACC_SIMD_WIDTH == 2
  even = __builtin_shuffle(lo, hi, VInt{0, 2});
  odd = __builtin_shuffle(lo, hi, VInt{1, 3});
#elif PSDACC_SIMD_WIDTH == 4
  even = __builtin_shuffle(lo, hi, VInt{0, 2, 4, 6});
  odd = __builtin_shuffle(lo, hi, VInt{1, 3, 5, 7});
#else
  even = __builtin_shuffle(lo, hi, VInt{0, 2, 4, 6, 8, 10, 12, 14});
  odd = __builtin_shuffle(lo, hi, VInt{1, 3, 5, 7, 9, 11, 13, 15});
#endif
#endif
}

/// Inverse of deinterleave: merges even/odd lane vectors back into two
/// consecutive vectors of interleaved pairs [e0 o0 e1 o1 ...].
inline void interleave(VDouble even, VDouble odd, VDouble& lo, VDouble& hi) {
#if defined(__clang__)
#if PSDACC_SIMD_WIDTH == 2
  lo = __builtin_shufflevector(even, odd, 0, 2);
  hi = __builtin_shufflevector(even, odd, 1, 3);
#elif PSDACC_SIMD_WIDTH == 4
  lo = __builtin_shufflevector(even, odd, 0, 4, 1, 5);
  hi = __builtin_shufflevector(even, odd, 2, 6, 3, 7);
#else
  lo = __builtin_shufflevector(even, odd, 0, 8, 1, 9, 2, 10, 3, 11);
  hi = __builtin_shufflevector(even, odd, 4, 12, 5, 13, 6, 14, 7, 15);
#endif
#else
#if PSDACC_SIMD_WIDTH == 2
  lo = __builtin_shuffle(even, odd, VInt{0, 2});
  hi = __builtin_shuffle(even, odd, VInt{1, 3});
#elif PSDACC_SIMD_WIDTH == 4
  lo = __builtin_shuffle(even, odd, VInt{0, 4, 1, 5});
  hi = __builtin_shuffle(even, odd, VInt{2, 6, 3, 7});
#else
  lo = __builtin_shuffle(even, odd, VInt{0, 8, 1, 9, 2, 10, 3, 11});
  hi = __builtin_shuffle(even, odd, VInt{4, 12, 5, 13, 6, 14, 7, 15});
#endif
#endif
}

#else  // !PSDACC_SIMD_ENABLED

inline constexpr std::size_t kWidth = 1;

#endif  // PSDACC_SIMD_ENABLED

}  // namespace psdacc::dsp::simd
