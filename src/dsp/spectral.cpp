#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "support/assert.hpp"

namespace psdacc::dsp {

std::vector<double> autocorrelation(std::span<const double> x,
                                    std::size_t max_lag) {
  PSDACC_EXPECTS(!x.empty());
  PSDACC_EXPECTS(max_lag < x.size());
  std::vector<double> r(max_lag + 1, 0.0);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (std::size_t m = 0; m <= max_lag; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i + m < x.size(); ++i) acc += x[i] * x[i + m];
    r[m] = acc * inv_n;
  }
  return r;
}

std::vector<double> periodogram(std::span<const double> x,
                                std::size_t n_bins) {
  PSDACC_EXPECTS(!x.empty());
  PSDACC_EXPECTS(n_bins >= 1);
  const auto spectrum = fft_real(x, n_bins);
  // With a length-N signal folded into n bins by the FFT, the total power is
  // recovered by dividing |X[k]|^2 by (N * n): Parseval gives
  // sum_k |X[k]|^2 = n * sum_i x_i^2 when N <= n.
  const double scale =
      1.0 / (static_cast<double>(std::min(x.size(), n_bins)) *
             static_cast<double>(n_bins));
  std::vector<double> psd(n_bins);
  for (std::size_t k = 0; k < n_bins; ++k)
    psd[k] = std::norm(spectrum[k]) * scale;
  return psd;
}

namespace {

// Shared Welch segmentation: calls `accumulate(xw_fft, yw_fft)` for each
// windowed 50%-overlapped segment pair.
template <typename Accumulate>
std::size_t welch_segments(std::span<const double> x,
                           std::span<const double> y, std::size_t n_bins,
                           WindowKind window, Accumulate&& accumulate) {
  const std::size_t seg = std::min(n_bins, x.size());
  const std::size_t hop = std::max<std::size_t>(1, seg / 2);
  const auto w = make_window(window, seg);
  double wpow = 0.0;
  for (double v : w) wpow += v * v;
  wpow /= static_cast<double>(seg);

  std::vector<double> xw(seg), yw(seg);
  std::size_t count = 0;
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    for (std::size_t i = 0; i < seg; ++i) {
      xw[i] = x[start + i] * w[i];
      yw[i] = y[start + i] * w[i];
    }
    const auto xs = fft_real(xw, n_bins);
    const auto ys = fft_real(yw, n_bins);
    accumulate(xs, ys, wpow);
    ++count;
    if (x.size() < seg + hop) break;  // single segment case
  }
  return count;
}

}  // namespace

std::vector<double> welch_psd(std::span<const double> x, std::size_t n_bins,
                              WindowKind window) {
  PSDACC_EXPECTS(!x.empty());
  PSDACC_EXPECTS(n_bins >= 1);
  std::vector<double> psd(n_bins, 0.0);
  const std::size_t seg = std::min(n_bins, x.size());
  const std::size_t count = welch_segments(
      x, x, n_bins, window,
      [&](const std::vector<cplx>& xs, const std::vector<cplx>&,
          double wpow) {
        const double scale = 1.0 / (static_cast<double>(seg) *
                                    static_cast<double>(n_bins) * wpow);
        for (std::size_t k = 0; k < n_bins; ++k)
          psd[k] += std::norm(xs[k]) * scale;
      });
  PSDACC_ENSURES(count > 0);
  for (auto& v : psd) v /= static_cast<double>(count);
  return psd;
}

std::vector<double> welch_cross_psd_real(std::span<const double> x,
                                         std::span<const double> y,
                                         std::size_t n_bins,
                                         WindowKind window) {
  PSDACC_EXPECTS(x.size() == y.size());
  PSDACC_EXPECTS(!x.empty());
  std::vector<double> cross(n_bins, 0.0);
  const std::size_t seg = std::min(n_bins, x.size());
  const std::size_t count = welch_segments(
      x, y, n_bins, window,
      [&](const std::vector<cplx>& xs, const std::vector<cplx>& ys,
          double wpow) {
        const double scale = 1.0 / (static_cast<double>(seg) *
                                    static_cast<double>(n_bins) * wpow);
        for (std::size_t k = 0; k < n_bins; ++k)
          cross[k] += (xs[k] * std::conj(ys[k])).real() * scale;
      });
  PSDACC_ENSURES(count > 0);
  for (auto& v : cross) v /= static_cast<double>(count);
  return cross;
}

}  // namespace psdacc::dsp
