#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"
#include "dsp/kernels.hpp"
#include "support/assert.hpp"

namespace psdacc::dsp {

std::vector<double> autocorrelation(std::span<const double> x,
                                    std::size_t max_lag) {
  PSDACC_EXPECTS(!x.empty());
  PSDACC_EXPECTS(max_lag < x.size());
  std::vector<double> r(max_lag + 1, 0.0);
  const double inv_n = 1.0 / static_cast<double>(x.size());
  for (std::size_t m = 0; m <= max_lag; ++m) {
    double acc = 0.0;
    for (std::size_t i = 0; i + m < x.size(); ++i) acc += x[i] * x[i + m];
    r[m] = acc * inv_n;
  }
  return r;
}

std::vector<double> periodogram(std::span<const double> x,
                                std::size_t n_bins) {
  PSDACC_EXPECTS(!x.empty());
  PSDACC_EXPECTS(n_bins >= 1);
  // Bartlett-average consecutive length-n segments so no sample is dropped
  // when x.size() > n_bins (the old implementation silently truncated).
  // Per segment, Parseval gives sum_k |Y[k]|^2 = n * sum_i y_i^2 for any
  // segment length <= n (zero-padded), so accumulating |Y[k]|^2 / (N * n)
  // over all segments makes sum_k S[k] == mean_square(x) exactly, for every
  // combination of signal length N and bin count n.
  const FftPlan& plan = plan_for(n_bins);
  const double scale = 1.0 / (static_cast<double>(x.size()) *
                              static_cast<double>(n_bins));
  std::vector<double> psd(n_bins, 0.0);
  std::vector<cplx> spectrum;
  for (std::size_t start = 0; start < x.size(); start += n_bins) {
    const std::size_t len = std::min(n_bins, x.size() - start);
    plan.rfft(x.subspan(start, len), spectrum);
    kernels::window_accumulate(psd, spectrum, scale);
  }
  return psd;
}

namespace {

// Shared Welch segmentation: calls `accumulate(xw_fft, yw_fft)` for each
// windowed 50%-overlapped segment pair. The auto case (y aliasing x) costs
// one real FFT per segment; the cross case packs both windowed segments
// into a single complex transform and splits the spectra afterwards.
template <typename Accumulate>
std::size_t welch_segments(std::span<const double> x,
                           std::span<const double> y, std::size_t n_bins,
                           WindowKind window, Accumulate&& accumulate) {
  const std::size_t seg = std::min(n_bins, x.size());
  const std::size_t hop = std::max<std::size_t>(1, seg / 2);
  const auto w = make_window(window, seg);
  double wpow = 0.0;
  for (double v : w) wpow += v * v;
  wpow /= static_cast<double>(seg);

  const FftPlan& plan = plan_for(n_bins);
  const bool same = x.data() == y.data() && x.size() == y.size();
  std::vector<double> xw(seg);
  std::vector<cplx> packed, xs, ys;
  std::size_t count = 0;
  for (std::size_t start = 0; start + seg <= x.size(); start += hop) {
    if (same) {
      kernels::window_apply(x.subspan(start, seg), w, xw);
      plan.rfft(xw, xs);
      accumulate(xs, xs, wpow);
    } else {
      packed.resize(n_bins);
      for (std::size_t i = 0; i < seg; ++i)
        packed[i] = cplx(x[start + i] * w[i], y[start + i] * w[i]);
      std::fill(packed.begin() + static_cast<std::ptrdiff_t>(seg),
                packed.end(), cplx(0.0, 0.0));
      plan.forward(packed);
      // Two real spectra from one complex transform: with z = xw + j yw,
      // X[k] = (Z[k] + conj(Z[n-k])) / 2 and Y[k] = -j (Z[k] - conj(Z[n-k])) / 2.
      xs.resize(n_bins);
      ys.resize(n_bins);
      for (std::size_t k = 0; k < n_bins; ++k) {
        const cplx zk = packed[k];
        const cplx zc = std::conj(packed[(n_bins - k) % n_bins]);
        xs[k] = 0.5 * (zk + zc);
        ys[k] = cplx(0.0, -0.5) * (zk - zc);
      }
      accumulate(xs, ys, wpow);
    }
    ++count;
  }
  return count;
}

}  // namespace

std::vector<double> welch_psd(std::span<const double> x, std::size_t n_bins,
                              WindowKind window) {
  PSDACC_EXPECTS(!x.empty());
  PSDACC_EXPECTS(n_bins >= 1);
  std::vector<double> psd(n_bins, 0.0);
  const std::size_t seg = std::min(n_bins, x.size());
  const std::size_t count = welch_segments(
      x, x, n_bins, window,
      [&](const std::vector<cplx>& xs, const std::vector<cplx>&,
          double wpow) {
        const double scale = 1.0 / (static_cast<double>(seg) *
                                    static_cast<double>(n_bins) * wpow);
        kernels::window_accumulate(psd, xs, scale);
      });
  PSDACC_ENSURES(count > 0);
  for (auto& v : psd) v /= static_cast<double>(count);
  return psd;
}

std::vector<double> welch_cross_psd_real(std::span<const double> x,
                                         std::span<const double> y,
                                         std::size_t n_bins,
                                         WindowKind window) {
  PSDACC_EXPECTS(x.size() == y.size());
  PSDACC_EXPECTS(!x.empty());
  std::vector<double> cross(n_bins, 0.0);
  const std::size_t seg = std::min(n_bins, x.size());
  const std::size_t count = welch_segments(
      x, y, n_bins, window,
      [&](const std::vector<cplx>& xs, const std::vector<cplx>& ys,
          double wpow) {
        const double scale = 1.0 / (static_cast<double>(seg) *
                                    static_cast<double>(n_bins) * wpow);
        for (std::size_t k = 0; k < n_bins; ++k)
          cross[k] += (xs[k] * std::conj(ys[k])).real() * scale;
      });
  PSDACC_ENSURES(count > 0);
  for (auto& v : cross) v /= static_cast<double>(count);
  return cross;
}

}  // namespace psdacc::dsp
