// Linear convolution: direct, FFT-based, and streaming overlap-save.
//
// Overlap-save is the block method the paper's frequency-domain filter
// (Fig. 2) is built on; the streaming class keeps the tail between calls so
// it can sit inside a per-sample simulation.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft_plan.hpp"

namespace psdacc::dsp {

/// Direct O(N*M) linear convolution; output length N + M - 1.
std::vector<double> convolve_direct(std::span<const double> x,
                                    std::span<const double> h);

/// FFT-based linear convolution; output length N + M - 1. Identical result
/// to convolve_direct up to round-off.
std::vector<double> convolve_fft(std::span<const double> x,
                                 std::span<const double> h);

/// Streaming overlap-save convolver. Processes fixed-size input blocks with
/// an FFT of size fft_size >= 2 * taps; emits `block_size = fft_size - taps
/// + 1` valid output samples per block.
class OverlapSave {
 public:
  /// `h` is the FIR impulse response; `fft_size` must be >= 2 * h.size()
  /// rounded to a power of two by the caller (asserted).
  OverlapSave(std::span<const double> h, std::size_t fft_size);

  std::size_t block_size() const { return block_size_; }
  std::size_t fft_size() const { return fft_size_; }

  /// Consumes exactly block_size() input samples, produces block_size()
  /// output samples of the steady-state convolution x * h.
  std::vector<double> process_block(std::span<const double> x);

  /// Convenience: filters a whole signal (padding the tail with zeros);
  /// returns x.size() samples, matching the "same" part of x * h.
  std::vector<double> filter(std::span<const double> x);

  /// Resets the inter-block history to zero.
  void reset();

 private:
  std::size_t taps_;
  std::size_t fft_size_;
  std::size_t block_size_;
  // Shared ownership: stays valid even if the thread's plan cache evicts
  // this size while the convolver is alive.
  std::shared_ptr<const FftPlan> plan_;
  std::vector<cplx> h_spectrum_;
  std::vector<double> history_;  // last taps_-1 inputs from previous block
  std::vector<cplx> buf_;        // per-block transform scratch, reused
};

}  // namespace psdacc::dsp
