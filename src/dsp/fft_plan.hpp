// Cached FFT plans.
//
// An FftPlan precomputes everything about a transform of one size that does
// not depend on the data: the bit-reversal permutation and per-stage twiddle
// tables for the radix-2 path, and the chirp sequence plus the kernel
// spectrum for the Bluestein path. Plans also carry the scratch buffers the
// transform needs, so a hot loop that transforms the same length repeatedly
// (Welch segmentation, overlap-save blocks, PSD probes) performs no
// allocations and no trigonometry after the first call.
//
// `plan_for(n)` returns a cached plan per size. The cache is thread-local:
// concurrent `plan_for` calls from different threads are safe and each
// thread gets its own plan instances (plans own mutable scratch, so a
// single plan must not be driven from two threads at once). Objects that
// hold plan pointers (`OverlapSave`, spectral estimators mid-call) are
// therefore bound to the thread that created them; the `runtime::`
// ThreadPool workloads respect this by giving every worker its own
// analyzers and plans.
//
// The cache is *bounded*: at most `plan_cache_capacity()` plans per thread,
// least-recently-used evicted first, so a long-running server worker that
// sweeps many transform sizes cannot grow the twiddle tables without bound.
// Eviction is safe for live holders: plans are shared_ptr-owned and a plan
// owns its sub-plans (Bluestein convolution size, rfft half size), so
// evicting an entry only drops the cache's reference — anything still using
// the plan (an `OverlapSave`, a parent plan) keeps it alive. References
// returned by `plan_for` are only guaranteed until the calling thread's
// next `plan_for`/`plan_handle_for` call; holders that outlive that use
// `plan_handle_for`.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace psdacc::dsp {

/// Reusable transform of one fixed size. Forward convention matches fft():
/// X[k] = sum_n x[n] e^{-j 2 pi k n / N}; inverse() includes the 1/N.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform; data.size() must equal size().
  void forward(std::vector<cplx>& data) const;
  /// In-place inverse transform (includes the 1/N normalization).
  void inverse(std::vector<cplx>& data) const;

  /// Real-input forward transform: out receives all size() complex bins of
  /// the FFT of x zero-padded (or truncated) to size(). Even sizes use the
  /// half-length complex-transform trick (one FFT of size()/2); odd sizes
  /// fall back to the complex path.
  void rfft(std::span<const double> x, std::vector<cplx>& out) const;

 private:
  void transform_pow2(cplx* a, int sign) const;
  void forward_bluestein(std::vector<cplx>& data) const;

  std::size_t n_;
  // Radix-2 path (n_ a power of two).
  std::vector<std::size_t> bitrev_swaps_;  // (i, j) pairs with i < j
  std::vector<cplx> twiddle_;  // forward twiddles, stages concatenated
  // Bluestein path (n_ not a power of two): convolution plan of size m.
  // Sub-plans are shared with the cache but co-owned, so cache eviction
  // can never dangle a live parent plan.
  std::shared_ptr<const FftPlan> conv_;
  std::vector<cplx> chirp_;            // e^{-j pi i^2 / n}, n entries
  std::vector<cplx> kernel_spectrum_;  // FFT_m of the chirp kernel
  mutable std::vector<cplx> work_;     // size m scratch
  // Real-input path (n_ even): half-size plan + post-combine twiddles.
  std::shared_ptr<const FftPlan> half_;
  std::vector<cplx> rfft_twiddle_;       // e^{-j 2 pi k / n}, k = 0..n/2
  mutable std::vector<cplx> half_work_;  // size n/2 scratch
};

/// Thread-local plan cache, keyed by transform size. Safe to call from any
/// number of threads concurrently; each thread caches its own plans. The
/// returned reference stays valid until this thread's next
/// `plan_for`/`plan_handle_for` call (which may evict) or
/// `clear_plan_cache`; use `plan_handle_for` to hold a plan longer.
const FftPlan& plan_for(std::size_t n);

/// As plan_for, but returns shared ownership: the plan stays alive for the
/// holder even after the cache evicts it. The form every object that keeps
/// a plan across calls (OverlapSave, a server worker's warm set) uses.
std::shared_ptr<const FftPlan> plan_handle_for(std::size_t n);

/// Per-thread plan-cache size cap (default 64 plans). Eviction is LRU and
/// never invalidates live holders (see plan_handle_for). The cap is
/// clamped to >= 1; setting it below the current size evicts immediately.
std::size_t plan_cache_capacity();
void set_plan_cache_capacity(std::size_t capacity);
/// Number of plans currently cached by the calling thread.
std::size_t plan_cache_size();

/// Drops the calling thread's cached plans. Plans checked out via
/// plan_handle_for survive; bare plan_for references dangle (test hook).
void clear_plan_cache();

}  // namespace psdacc::dsp
