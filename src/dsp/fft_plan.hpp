// Cached FFT plans.
//
// An FftPlan precomputes everything about a transform of one size that does
// not depend on the data: the bit-reversal permutation and per-stage twiddle
// tables for the radix-2 path, and the chirp sequence plus the kernel
// spectrum for the Bluestein path. Plans also carry the scratch buffers the
// transform needs, so a hot loop that transforms the same length repeatedly
// (Welch segmentation, overlap-save blocks, PSD probes) performs no
// allocations and no trigonometry after the first call.
//
// Internally every table and scratch buffer lives in split-complex (SoA)
// layout — separate re/im arrays — so the butterfly stages and Bluestein
// pointwise products run through the vectorized dsp::kernels entry points.
// The public interface stays interleaved std::complex; the entry points
// convert at the boundary (the real-input path packs straight into split
// scratch and never interleaves an intermediate).
//
// `PlanCache::instance()` (and the `plan_for(n)` convenience) returns a
// cached plan per size. The cache is thread-local: concurrent lookups from
// different threads are safe and each thread gets its own plan instances
// (plans own mutable scratch, so a single plan must not be driven from two
// threads at once). Objects that hold plan pointers (`OverlapSave`,
// spectral estimators mid-call) are therefore bound to the thread that
// created them; the `runtime::` ThreadPool workloads respect this by giving
// every worker its own analyzers and plans.
//
// The cache is *bounded*: at most `PlanCache::capacity()` plans per thread,
// least-recently-used evicted first, so a long-running server worker that
// sweeps many transform sizes cannot grow the twiddle tables without bound.
// Eviction is safe for live holders: plans are shared_ptr-owned and a plan
// owns its sub-plans (Bluestein convolution size, rfft half size), so
// evicting an entry only drops the cache's reference — anything still using
// the plan (an `OverlapSave`, a parent plan) keeps it alive. References
// returned by `plan_for` are only guaranteed until the calling thread's
// next `plan_for`/`PlanCache::handle` call; holders that outlive that use
// `PlanCache::handle`.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace psdacc::dsp {

/// Reusable transform of one fixed size. Forward convention matches fft():
/// X[k] = sum_n x[n] e^{-j 2 pi k n / N}; inverse() includes the 1/N.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform; data.size() must equal size().
  void forward(std::vector<cplx>& data) const;
  /// In-place inverse transform (includes the 1/N normalization).
  void inverse(std::vector<cplx>& data) const;

  /// Real-input forward transform: out receives all size() complex bins of
  /// the FFT of x zero-padded (or truncated) to size(). Even sizes use the
  /// half-length complex-transform trick (one FFT of size()/2); odd sizes
  /// fall back to the complex path.
  void rfft(std::span<const double> x, std::vector<cplx>& out) const;

 private:
  /// Core transform over caller-owned split-complex arrays of size().
  void forward_split(double* re, double* im) const;
  void transform_pow2_split(double* re, double* im, int sign) const;
  void bluestein_split(double* re, double* im) const;

  std::size_t n_;
  // Radix-2 path (n_ a power of two).
  std::vector<std::size_t> bitrev_swaps_;  // (i, j) pairs with i < j
  // Forward twiddles, stages concatenated, split re/im.
  std::vector<double> twiddle_re_;
  std::vector<double> twiddle_im_;
  // Bluestein path (n_ not a power of two): convolution plan of size m.
  // Sub-plans are shared with the cache but co-owned, so cache eviction
  // can never dangle a live parent plan.
  std::shared_ptr<const FftPlan> conv_;
  std::vector<double> chirp_re_;   // e^{-j pi i^2 / n}, n entries
  std::vector<double> chirp_im_;
  std::vector<double> kernel_re_;  // FFT_m of the chirp kernel
  std::vector<double> kernel_im_;
  mutable std::vector<double> work_re_;  // size m scratch
  mutable std::vector<double> work_im_;
  // Split scratch of size n_ for the interleaved entry points.
  mutable std::vector<double> split_re_;
  mutable std::vector<double> split_im_;
  // Real-input path (n_ even): half-size plan + post-combine twiddles.
  std::shared_ptr<const FftPlan> half_;
  std::vector<double> rfft_tw_re_;      // e^{-j 2 pi k / n}, k = 0..n/2
  std::vector<double> rfft_tw_im_;
  mutable std::vector<double> half_re_;  // size n/2 scratch
  mutable std::vector<double> half_im_;
};

/// Facade over the calling thread's bounded LRU plan cache. All state is
/// thread-local; `instance()` hands back the current thread's view, so the
/// usual shape is `PlanCache::instance().handle(n)`. See the file comment
/// for the eviction/lifetime contract.
class PlanCache {
 public:
  /// The calling thread's cache.
  static PlanCache& instance();

  /// Cached plan with shared ownership: stays alive for the holder even
  /// after eviction. The form every object that keeps a plan across calls
  /// (OverlapSave, a server worker's warm set) uses.
  std::shared_ptr<const FftPlan> handle(std::size_t n);

  /// Cached plan by reference; valid until this thread's next cache
  /// lookup (which may evict) or clear().
  const FftPlan& get(std::size_t n);

  /// Number of plans currently cached by this thread.
  std::size_t size() const;

  /// Per-thread plan count cap (default 64). Eviction is LRU and never
  /// invalidates live holders. The cap is clamped to >= 1; setting it
  /// below the current size evicts immediately.
  std::size_t capacity() const;
  void set_capacity(std::size_t capacity);

  /// Drops this thread's cached plans. Plans checked out via handle()
  /// survive; bare get()/plan_for references dangle (test hook).
  void clear();

 private:
  PlanCache() = default;
};

/// Thread-local cached plan lookup, the common shorthand for
/// `PlanCache::instance().get(n)`. The returned reference stays valid
/// until this thread's next cache lookup; use `PlanCache::handle` to hold
/// a plan longer.
const FftPlan& plan_for(std::size_t n);

/// Deprecated free-function spellings of the PlanCache facade.
[[deprecated("use dsp::PlanCache::instance().handle()")]]
std::shared_ptr<const FftPlan> plan_handle_for(std::size_t n);
[[deprecated("use dsp::PlanCache::instance().capacity()")]]
std::size_t plan_cache_capacity();
[[deprecated("use dsp::PlanCache::instance().set_capacity()")]]
void set_plan_cache_capacity(std::size_t capacity);
[[deprecated("use dsp::PlanCache::instance().size()")]]
std::size_t plan_cache_size();
[[deprecated("use dsp::PlanCache::instance().clear()")]]
void clear_plan_cache();

}  // namespace psdacc::dsp
