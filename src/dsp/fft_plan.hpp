// Cached FFT plans.
//
// An FftPlan precomputes everything about a transform of one size that does
// not depend on the data: the bit-reversal permutation and per-stage twiddle
// tables for the radix-2 path, and the chirp sequence plus the kernel
// spectrum for the Bluestein path. Plans also carry the scratch buffers the
// transform needs, so a hot loop that transforms the same length repeatedly
// (Welch segmentation, overlap-save blocks, PSD probes) performs no
// allocations and no trigonometry after the first call.
//
// `plan_for(n)` returns a cached plan per size. The cache is thread-local:
// concurrent `plan_for` calls from different threads are safe and each
// thread gets its own plan instances (plans own mutable scratch, so a
// single plan must not be driven from two threads at once). Objects that
// hold plan pointers (`OverlapSave`, spectral estimators mid-call) are
// therefore bound to the thread that created them; the `runtime::`
// ThreadPool workloads respect this by giving every worker its own
// analyzers and plans.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.hpp"

namespace psdacc::dsp {

/// Reusable transform of one fixed size. Forward convention matches fft():
/// X[k] = sum_n x[n] e^{-j 2 pi k n / N}; inverse() includes the 1/N.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// In-place forward transform; data.size() must equal size().
  void forward(std::vector<cplx>& data) const;
  /// In-place inverse transform (includes the 1/N normalization).
  void inverse(std::vector<cplx>& data) const;

  /// Real-input forward transform: out receives all size() complex bins of
  /// the FFT of x zero-padded (or truncated) to size(). Even sizes use the
  /// half-length complex-transform trick (one FFT of size()/2); odd sizes
  /// fall back to the complex path.
  void rfft(std::span<const double> x, std::vector<cplx>& out) const;

 private:
  void transform_pow2(cplx* a, int sign) const;
  void forward_bluestein(std::vector<cplx>& data) const;

  std::size_t n_;
  // Radix-2 path (n_ a power of two).
  std::vector<std::size_t> bitrev_swaps_;  // (i, j) pairs with i < j
  std::vector<cplx> twiddle_;  // forward twiddles, stages concatenated
  // Bluestein path (n_ not a power of two): convolution plan of size m.
  const FftPlan* conv_ = nullptr;
  std::vector<cplx> chirp_;            // e^{-j pi i^2 / n}, n entries
  std::vector<cplx> kernel_spectrum_;  // FFT_m of the chirp kernel
  mutable std::vector<cplx> work_;     // size m scratch
  // Real-input path (n_ even): half-size plan + post-combine twiddles.
  const FftPlan* half_ = nullptr;
  std::vector<cplx> rfft_twiddle_;       // e^{-j 2 pi k / n}, k = 0..n/2
  mutable std::vector<cplx> half_work_;  // size n/2 scratch
};

/// Thread-local plan cache, keyed by transform size. Safe to call from any
/// number of threads concurrently; each thread caches its own plans.
const FftPlan& plan_for(std::size_t n);

/// Drops the calling thread's cached plans. Test hook only: any live object
/// still holding a plan reference from this thread (e.g. an OverlapSave)
/// dangles afterwards.
void clear_plan_cache();

}  // namespace psdacc::dsp
