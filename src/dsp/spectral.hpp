// Spectral estimation: autocorrelation, periodogram, Welch PSD.
//
// Convention used throughout psdacc: the discrete PSD of a signal x over N
// bins satisfies sum_k S[k] = E[x^2] (total power), matching Eq. 9 of the
// paper where the integral of the PSD equals mu^2 + sigma^2. Bin k
// corresponds to normalized frequency k/N in cycles/sample, periodic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/window.hpp"

namespace psdacc::dsp {

/// Biased sample autocorrelation r[m] = (1/N) sum_n x[n] x[n+m] for
/// m = 0..max_lag.
std::vector<double> autocorrelation(std::span<const double> x,
                                    std::size_t max_lag);

/// Rectangular-window periodogram over n_bins. Signals longer than n_bins
/// are split into consecutive length-n segments whose periodograms are
/// accumulated (Bartlett averaging), so every sample contributes and
/// sum_k S[k] == mean_square(x) exactly for any N and n. For N <= n this is
/// the classic S[k] = |FFT_n(x)|^2 / (N * n).
std::vector<double> periodogram(std::span<const double> x,
                                std::size_t n_bins);

/// Welch-averaged PSD over n_bins with 50% overlap and the given window.
/// Normalized so that sum_k S[k] ~= E[x^2] for stationary x.
std::vector<double> welch_psd(std::span<const double> x, std::size_t n_bins,
                              WindowKind window = WindowKind::kHann);

/// Cross-PSD of x and y over n_bins via Welch averaging; returns the real
/// part (the part that contributes to the power of x + y).
std::vector<double> welch_cross_psd_real(std::span<const double> x,
                                         std::span<const double> y,
                                         std::size_t n_bins,
                                         WindowKind window = WindowKind::kHann);

}  // namespace psdacc::dsp
