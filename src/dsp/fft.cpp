#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc::dsp {
namespace {

// Iterative radix-2 Cooley-Tukey; `sign` is -1 for forward, +1 for inverse.
void fft_pow2(std::vector<cplx>& a, int sign) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        static_cast<double>(sign) * 2.0 * std::numbers::pi /
        static_cast<double>(len);
    const cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

// Bluestein chirp-z transform: expresses an arbitrary-length DFT as a
// convolution, evaluated with a power-of-two FFT.
void fft_bluestein(std::vector<cplx>& a, int sign) {
  const std::size_t n = a.size();
  const std::size_t m = next_power_of_two(2 * n + 1);
  std::vector<cplx> chirp(n);
  for (std::size_t i = 0; i < n; ++i) {
    // angle = pi * i^2 / n, computed with i^2 mod 2n to avoid overflow for
    // large i.
    const std::size_t sq = (i * i) % (2 * n);
    const double angle = static_cast<double>(sign) * std::numbers::pi *
                         static_cast<double>(sq) / static_cast<double>(n);
    chirp[i] = cplx(std::cos(angle), std::sin(angle));
  }
  std::vector<cplx> u(m, cplx(0.0, 0.0));
  std::vector<cplx> v(m, cplx(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) u[i] = a[i] * chirp[i];
  v[0] = std::conj(chirp[0]);
  for (std::size_t i = 1; i < n; ++i) {
    v[i] = std::conj(chirp[i]);
    v[m - i] = std::conj(chirp[i]);
  }
  fft_pow2(u, -1);
  fft_pow2(v, -1);
  for (std::size_t i = 0; i < m; ++i) u[i] *= v[i];
  fft_pow2(u, +1);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t i = 0; i < n; ++i) a[i] = u[i] * inv_m * chirp[i];
}

void transform(std::vector<cplx>& data, int sign) {
  PSDACC_EXPECTS(!data.empty());
  if (data.size() == 1) return;
  if (is_power_of_two(data.size())) {
    fft_pow2(data, sign);
  } else {
    fft_bluestein(data, sign);
  }
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& data) { transform(data, -1); }

void ifft(std::vector<cplx>& data) {
  transform(data, +1);
  const double inv_n = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= inv_n;
}

std::vector<cplx> fft_real(std::span<const double> x) {
  return fft_real(x, x.size());
}

std::vector<cplx> fft_real(std::span<const double> x, std::size_t n) {
  PSDACC_EXPECTS(n >= 1);
  std::vector<cplx> data(n, cplx(0.0, 0.0));
  const std::size_t copy = std::min(n, x.size());
  for (std::size_t i = 0; i < copy; ++i) data[i] = cplx(x[i], 0.0);
  fft(data);
  return data;
}

std::vector<double> ifft_real(std::span<const cplx> spectrum) {
  std::vector<cplx> data(spectrum.begin(), spectrum.end());
  ifft(data);
  std::vector<double> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i].real();
  return out;
}

std::vector<cplx> dft_reference(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n, cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(i) / static_cast<double>(n);
      out[k] += x[i] * cplx(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace psdacc::dsp
