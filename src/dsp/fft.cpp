#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>

#include "dsp/fft_plan.hpp"
#include "support/assert.hpp"

namespace psdacc::dsp {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(std::vector<cplx>& data) {
  PSDACC_EXPECTS(!data.empty());
  plan_for(data.size()).forward(data);
}

void ifft(std::vector<cplx>& data) {
  PSDACC_EXPECTS(!data.empty());
  plan_for(data.size()).inverse(data);
}

std::vector<cplx> fft_real(std::span<const double> x) {
  return fft_real(x, x.size());
}

std::vector<cplx> fft_real(std::span<const double> x, std::size_t n) {
  PSDACC_EXPECTS(n >= 1);
  std::vector<cplx> out;
  plan_for(n).rfft(x, out);
  return out;
}

std::vector<double> ifft_real(std::span<const cplx> spectrum) {
  std::vector<cplx> data(spectrum.begin(), spectrum.end());
  ifft(data);
  std::vector<double> out(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) out[i] = data[i].real();
  return out;
}

std::vector<cplx> dft_reference(std::span<const cplx> x) {
  const std::size_t n = x.size();
  std::vector<cplx> out(n, cplx(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(i) / static_cast<double>(n);
      out[k] += x[i] * cplx(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace psdacc::dsp
