#include "dsp/window.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc::dsp {

double bessel_i0(double x) {
  // Power series: I0(x) = sum_k ((x/2)^k / k!)^2. Converges quickly for the
  // beta range used in window design.
  const double half = x / 2.0;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k <= 64; ++k) {
    term *= half / static_cast<double>(k);
    const double add = term * term;
    sum += add;
    if (add < 1e-18 * sum) break;
  }
  return sum;
}

double kaiser_beta_for_attenuation(double atten_db) {
  if (atten_db > 50.0) return 0.1102 * (atten_db - 8.7);
  if (atten_db >= 21.0)
    return 0.5842 * std::pow(atten_db - 21.0, 0.4) +
           0.07886 * (atten_db - 21.0);
  return 0.0;
}

std::vector<double> make_window(WindowKind kind, std::size_t n,
                                double kaiser_beta) {
  PSDACC_EXPECTS(n >= 1);
  std::vector<double> w(n, 1.0);
  if (n == 1 || kind == WindowKind::kRectangular) return w;
  const double denom = static_cast<double>(n - 1);
  switch (kind) {
    case WindowKind::kRectangular:
      break;
    case WindowKind::kHann:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                    static_cast<double>(i) / denom);
      break;
    case WindowKind::kHamming:
      for (std::size_t i = 0; i < n; ++i)
        w[i] = 0.54 - 0.46 * std::cos(2.0 * std::numbers::pi *
                                      static_cast<double>(i) / denom);
      break;
    case WindowKind::kBlackman:
      for (std::size_t i = 0; i < n; ++i) {
        const double t =
            2.0 * std::numbers::pi * static_cast<double>(i) / denom;
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
      }
      break;
    case WindowKind::kKaiser: {
      const double norm = bessel_i0(kaiser_beta);
      for (std::size_t i = 0; i < n; ++i) {
        const double r = 2.0 * static_cast<double>(i) / denom - 1.0;
        w[i] = bessel_i0(kaiser_beta * std::sqrt(1.0 - r * r)) / norm;
      }
      break;
    }
  }
  return w;
}

}  // namespace psdacc::dsp
