// Window functions for FIR design and Welch PSD estimation.
#pragma once

#include <cstddef>
#include <vector>

namespace psdacc::dsp {

enum class WindowKind { kRectangular, kHann, kHamming, kBlackman, kKaiser };

/// Symmetric window of length n. `kaiser_beta` only applies to Kaiser.
std::vector<double> make_window(WindowKind kind, std::size_t n,
                                double kaiser_beta = 8.6);

/// Modified zeroth-order Bessel function of the first kind (series
/// expansion), used by the Kaiser window.
double bessel_i0(double x);

/// Kaiser beta for a target stop-band attenuation in dB (Kaiser's formula).
double kaiser_beta_for_attenuation(double atten_db);

}  // namespace psdacc::dsp
