// Bit-true fixed-point radix-2 FFT with per-stage rounding, plus the
// Widrow-Kollar-style stage-noise model that predicts its output error
// power. This refines the block-boundary FFT model of freq_filter.hpp down
// to the butterfly level (the granularity Widrow & Kollar analyze).
//
// Model: after stage s (stages 0..S-1, S = log2 N), every array element is
// re-quantized. Butterflies whose twiddle is +-1 or +-j produce on-grid
// sums (no rounding noise in hardware: they are multiplier-free), so only
// the fraction of elements touched by a nontrivial twiddle injects noise:
//   inj_s = 2 v * (2 * nt_s / N)        per complex element, v = q^2/12,
// and noise injected after stage s is amplified by the remaining butterfly
// additions: power x2 per subsequent stage. Output per-element complex
// error variance:
//   sigma_fft^2 = sum_s inj_s * 2^(S-1-s).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "fixedpoint/format.hpp"

namespace psdacc::ff {

class FixedPointFft {
 public:
  /// `n` must be a power of two. All real/imaginary parts are quantized to
  /// `fmt` after every butterfly stage (and after the final 1/N scaling of
  /// the inverse transform).
  FixedPointFft(std::size_t n, fxp::FixedPointFormat fmt);

  std::size_t size() const { return n_; }

  /// Forward transform with stage-wise rounding.
  std::vector<std::complex<double>> forward(
      std::span<const double> x) const;
  std::vector<std::complex<double>> forward(
      std::span<const std::complex<double>> x) const;

  /// Inverse transform with stage-wise rounding (includes 1/N).
  std::vector<std::complex<double>> inverse(
      std::span<const std::complex<double>> x) const;

  /// Number of multiplier butterflies (nontrivial twiddles) in stage s.
  std::size_t nontrivial_twiddles(std::size_t stage) const;
  /// Predicted per-element complex error variance of forward().
  double forward_noise_variance() const;
  /// Predicted per-element complex error variance of inverse() (includes
  /// the final scaling rounding; the 1/N scaling divides the accumulated
  /// stage noise power by N^2).
  double inverse_noise_variance() const;

 private:
  std::vector<std::complex<double>> transform(
      std::vector<std::complex<double>> data, bool inverse) const;

  std::size_t n_;
  std::size_t stages_;
  fxp::FixedPointFormat fmt_;
};

}  // namespace psdacc::ff
