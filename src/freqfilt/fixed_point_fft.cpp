#include "freqfilt/fixed_point_fft.hpp"

#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "fixedpoint/noise_model.hpp"
#include "fixedpoint/quantizer.hpp"
#include "support/assert.hpp"

namespace psdacc::ff {

using cplx = std::complex<double>;

FixedPointFft::FixedPointFft(std::size_t n, fxp::FixedPointFormat fmt)
    : n_(n), fmt_(fmt) {
  PSDACC_EXPECTS(dsp::is_power_of_two(n) && n >= 2);
  stages_ = 0;
  for (std::size_t m = n; m > 1; m >>= 1) ++stages_;
}

std::size_t FixedPointFft::nontrivial_twiddles(std::size_t stage) const {
  PSDACC_EXPECTS(stage < stages_);
  // Stage s uses len = 2^(s+1); twiddles W_len^k for k = 0..len/2-1 in
  // each of N/len groups. Trivial: k = 0 (W = 1) and, when len >= 4,
  // k = len/4 (W = -j).
  const std::size_t len = std::size_t{1} << (stage + 1);
  const std::size_t per_group = len / 2 - (len >= 4 ? 2 : 1);
  return (n_ / len) * per_group;
}

double FixedPointFft::forward_noise_variance() const {
  const double v = fxp::continuous_quantization_noise(fmt_).variance;
  double total = 0.0;
  for (std::size_t s = 0; s < stages_; ++s) {
    const double fraction =
        2.0 * static_cast<double>(nontrivial_twiddles(s)) /
        static_cast<double>(n_);
    const double injected = 2.0 * v * fraction;  // per complex element
    total += injected * std::ldexp(1.0, static_cast<int>(stages_ - 1 - s));
  }
  return total;
}

double FixedPointFft::inverse_noise_variance() const {
  const double v = fxp::continuous_quantization_noise(fmt_).variance;
  // Stage noise as in forward, then the 1/N scaling divides the power by
  // N^2 and the final rounding adds 2v per element.
  return forward_noise_variance() /
             (static_cast<double>(n_) * static_cast<double>(n_)) +
         2.0 * v;
}

std::vector<cplx> FixedPointFft::transform(std::vector<cplx> a,
                                           bool inverse) const {
  const std::size_t n = n_;
  const double sign = inverse ? 1.0 : -1.0;
  // Bit-reversal permutation (exact, no rounding).
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  const auto quantize_all = [&](std::vector<cplx>& data) {
    for (auto& z : data)
      z = cplx(fxp::quantize(z.real(), fmt_),
               fxp::quantize(z.imag(), fmt_));
  };
  // Input register: the datapath only ever holds representable values. The
  // stage-noise model assumes this (an unrepresentable input would add an
  // input-referred error amplified by the transform's power gain).
  quantize_all(a);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx w(std::cos(angle * static_cast<double>(k)),
                     std::sin(angle * static_cast<double>(k)));
        const cplx u = a[i + k];
        const cplx t = a[i + k + len / 2] * w;
        a[i + k] = u + t;
        a[i + k + len / 2] = u - t;
      }
    }
    quantize_all(a);  // stage-output register file
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& z : a) z *= inv_n;
    quantize_all(a);
  }
  return a;
}

std::vector<cplx> FixedPointFft::forward(std::span<const double> x) const {
  PSDACC_EXPECTS(x.size() == n_);
  std::vector<cplx> data(n_);
  for (std::size_t i = 0; i < n_; ++i) data[i] = cplx(x[i], 0.0);
  return transform(std::move(data), false);
}

std::vector<cplx> FixedPointFft::forward(std::span<const cplx> x) const {
  PSDACC_EXPECTS(x.size() == n_);
  return transform(std::vector<cplx>(x.begin(), x.end()), false);
}

std::vector<cplx> FixedPointFft::inverse(std::span<const cplx> x) const {
  PSDACC_EXPECTS(x.size() == n_);
  return transform(std::vector<cplx>(x.begin(), x.end()), true);
}

}  // namespace psdacc::ff
