#include "freqfilt/freq_filter.hpp"

#include <algorithm>

#include "dsp/fft.hpp"
#include "filters/fir_design.hpp"
#include "freqfilt/fixed_point_fft.hpp"
#include "fixedpoint/noise_model.hpp"
#include "fixedpoint/quantizer.hpp"
#include "support/assert.hpp"

namespace psdacc::ff {

FreqDomainBandpass::FreqDomainBandpass(FreqFilterConfig cfg)
    : cfg_(cfg),
      h_fir_(filt::fir_lowpass(cfg.fir_taps, cfg.fir_cutoff)),
      h_fd_(filt::fir_highpass(cfg.fd_taps, cfg.fd_cutoff)) {
  PSDACC_EXPECTS(dsp::is_power_of_two(cfg.fft_size));
  PSDACC_EXPECTS(cfg.fft_size >= 2 * h_fd_.size() - 2);
}

std::vector<double> FreqDomainBandpass::process(
    std::span<const double> x) const {
  const bool fx = cfg_.format.has_value();
  const auto quant = [&](double v) {
    return fx ? fxp::quantize(v, *cfg_.format) : v;
  };

  // Input quantization.
  std::vector<double> in(x.begin(), x.end());
  if (fx && cfg_.quantize_input)
    for (double& v : in) v = quant(v);

  // Front FIR, causal "same" output, quantized per sample.
  std::vector<double> front(in.size(), 0.0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    double acc = 0.0;
    const std::size_t kmax = std::min(h_fir_.size(), i + 1);
    for (std::size_t k = 0; k < kmax; ++k) acc += h_fir_[k] * in[i - k];
    front[i] = quant(acc);
  }

  // Overlap-save frequency-domain stage.
  const std::size_t n = cfg_.fft_size;
  const std::size_t taps = h_fd_.size();
  const std::size_t hop = n - taps + 1;  // valid samples per block
  const auto h_spec = dsp::fft_real(h_fd_, n);

  std::vector<double> out(front.size(), 0.0);
  std::vector<double> window(n, 0.0);  // [history | new samples]
  std::size_t produced = 0;
  while (produced < front.size()) {
    // Slide the window forward by `hop`.
    std::copy(window.begin() + static_cast<std::ptrdiff_t>(hop),
              window.end(), window.begin());
    for (std::size_t i = 0; i < hop; ++i) {
      const std::size_t src = produced + i;
      window[n - hop + i] = src < front.size() ? front[src] : 0.0;
    }
    // FFT: either bit-true with stage-wise rounding, or double with one
    // rounding per bin at the block boundary.
    std::vector<dsp::cplx> buf(n);
    if (fx && cfg_.stagewise_fft) {
      const ff::FixedPointFft fft(n, *cfg_.format);
      buf = fft.forward(std::span<const double>(window));
    } else {
      for (std::size_t i = 0; i < n; ++i)
        buf[i] = dsp::cplx(window[i], 0.0);
      dsp::fft(buf);
      if (fx)
        for (auto& b : buf)
          b = dsp::cplx(quant(b.real()), quant(b.imag()));
    }
    // Coefficient multiply, quantized.
    for (std::size_t k = 0; k < n; ++k) {
      buf[k] *= h_spec[k];
      if (fx) buf[k] = dsp::cplx(quant(buf[k].real()), quant(buf[k].imag()));
    }
    // IFFT; keep the last `hop` valid samples, quantized.
    if (fx && cfg_.stagewise_fft) {
      const ff::FixedPointFft fft(n, *cfg_.format);
      buf = fft.inverse(buf);
    } else {
      dsp::ifft(buf);
    }
    for (std::size_t i = 0; i < hop && produced + i < out.size(); ++i)
      out[produced + i] = quant(buf[taps - 1 + i].real());
    produced += hop;
  }
  return out;
}

sfg::Graph build_freqfilt_sfg(const FreqFilterConfig& cfg) {
  const FreqDomainBandpass model(cfg);
  sfg::Graph g;
  const auto in = g.add_input("x");
  sfg::NodeId head = in;
  if (cfg.format.has_value()) {
    if (cfg.quantize_input)
      head = g.add_quantizer(head, *cfg.format, "q_in");
    head = g.add_block(head, filt::TransferFunction(model.front_fir()),
                       cfg.format, "h_fir");
    // FD-stage noise bookkeeping (N = fft_size, v = q^2/12 per real
    // rounding):
    //  * FFT-bin quantization: var v on re and im of each of N bins; after
    //    x H and the 1/N IFFT the real-part time-domain contribution is
    //    (1/N^2) sum_k v |H_k|^2 — i.e. an input-referred white source of
    //    variance v/N in front of the h_fd block;
    //  * multiply-stage quantization: same algebra without |H|^2 — an
    //    output-referred white source of variance v/N;
    //  * IFFT-output quantization: white, variance v.
    const auto m = fxp::continuous_quantization_noise(*cfg.format);
    const double v = m.variance;
    const double n = static_cast<double>(cfg.fft_size);
    double pre_var = v / n;       // FFT-bin rounding, input-referred
    double post_var = v / n + v;  // multiply rounding + IFFT rounding
    if (cfg.stagewise_fft) {
      // Per-stage rounding: replace the boundary roundings by the stage
      // noise model. Forward stage noise (per complex element) divided by
      // the N^2 IFFT power scaling and by |H| is input-referred via /N
      // Parseval as before.
      const ff::FixedPointFft fft(cfg.fft_size, *cfg.format);
      pre_var = fft.forward_noise_variance() / n;
      post_var = v / n + fft.inverse_noise_variance() / 2.0;
    }
    head = g.add_quantizer(head, *cfg.format,
                           fxp::NoiseMoments{0.0, pre_var}, "q_fft");
    head = g.add_block(head, filt::TransferFunction(model.fd_fir()), {},
                       "h_fd");
    head = g.add_quantizer(head, *cfg.format,
                           fxp::NoiseMoments{0.0, post_var}, "q_ifft");
  } else {
    head = g.add_block(head, filt::TransferFunction(model.front_fir()), {},
                       "h_fir");
    head = g.add_block(head, filt::TransferFunction(model.fd_fir()), {},
                       "h_fd");
  }
  g.add_output(head, "y");
  g.validate();
  return g;
}

}  // namespace psdacc::ff
