// The paper's Fig. 2 benchmark: a band-pass built from a 16-tap time-domain
// low-pass FIR followed by a frequency-domain high-pass applied with the
// overlap-save method (buffer -> FFT -> coefficient multiply -> IFFT ->
// unbuffer).
//
// Fixed-point model (matching the paper's block granularity S1/S2): the
// datapath is quantized at block boundaries — after the front FIR (every
// sample), at the FFT output (real and imaginary part of every bin), after
// the coefficient multiply, and at the IFFT output. The equivalent
// analytical model is an LTI cascade h_fir * h_fd with three white noise
// sources whose variances follow from Parseval (derivation in
// freq_filter.cpp and DESIGN.md).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "fixedpoint/format.hpp"
#include "sfg/graph.hpp"

namespace psdacc::ff {

struct FreqFilterConfig {
  // The default band [0.18, 0.25] is deliberately narrow: the front
  // low-pass strongly shapes the noise entering the frequency-domain
  // high-pass, which is the effect the PSD method captures and the
  // agnostic baseline cannot (Table II).
  std::size_t fir_taps = 16;   // front time-domain low-pass
  double fir_cutoff = 0.25;
  std::size_t fd_taps = 9;     // frequency-domain high-pass (odd)
  double fd_cutoff = 0.18;
  std::size_t fft_size = 16;
  /// Data format for the whole datapath; empty = reference (double).
  std::optional<fxp::FixedPointFormat> format;
  /// Quantize the input signal on entry (when format is set).
  bool quantize_input = true;
  /// When true, the FFT/IFFT run bit-true with per-butterfly-stage
  /// rounding (FixedPointFft) instead of one rounding at the block
  /// boundary; the SFG model switches to the stage-noise variances.
  bool stagewise_fft = false;
};

/// Bit-exact executable model of the Fig. 2 system.
class FreqDomainBandpass {
 public:
  explicit FreqDomainBandpass(FreqFilterConfig cfg);

  /// Processes a whole signal; output has the same length (zero-padded
  /// tail). Applies the fixed-point quantization steps iff cfg.format set.
  std::vector<double> process(std::span<const double> x) const;

  const std::vector<double>& front_fir() const { return h_fir_; }
  const std::vector<double>& fd_fir() const { return h_fd_; }
  const FreqFilterConfig& config() const { return cfg_; }

 private:
  FreqFilterConfig cfg_;
  std::vector<double> h_fir_;
  std::vector<double> h_fd_;
};

/// Equivalent-LTI SFG for the analytical engines. Contains the input
/// quantizer, the quantized front FIR block, and the FD stage modelled as
/// an unquantized block h_fd bracketed by two white noise sources.
sfg::Graph build_freqfilt_sfg(const FreqFilterConfig& cfg);

}  // namespace psdacc::ff
