// Streaming application of transfer functions (direct-form II transposed)
// in double precision, plus a fixed-point variant that quantizes after every
// multiply-accumulate the way a hardware datapath would.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "filters/transfer_function.hpp"
#include "fixedpoint/quantizer.hpp"

namespace psdacc::filt {

/// Direct-form II transposed filter with persistent state.
class DirectForm2T {
 public:
  explicit DirectForm2T(TransferFunction tf);

  double step(double x);
  std::vector<double> process(std::span<const double> x);
  void reset();

  const TransferFunction& tf() const { return tf_; }

 private:
  TransferFunction tf_;
  std::vector<double> state_;  // max(len(b), len(a)) - 1 registers
};

/// Fixed-point direct-form filter: coefficients are quantized to
/// `coeff_fmt` once, and the accumulator output is quantized to `data_fmt`
/// after each output sample (the "quantize at operator output" model the
/// paper's simulation reference uses). Optionally quantizes each product.
class FixedPointDirectForm {
 public:
  FixedPointDirectForm(TransferFunction tf, fxp::FixedPointFormat data_fmt,
                       std::optional<fxp::FixedPointFormat> coeff_fmt = {},
                       bool quantize_products = false);

  double step(double x);
  std::vector<double> process(std::span<const double> x);
  void reset();

  /// The coefficient set actually used (after coefficient quantization).
  const TransferFunction& effective_tf() const { return tf_; }

 private:
  TransferFunction tf_;
  fxp::FixedPointFormat data_fmt_;
  fxp::QuantizerKernel quantizer_;  // compiled once for data_fmt_
  bool quantize_products_;
  std::vector<double> x_hist_;  // direct-form I input history
  std::vector<double> y_hist_;  // direct-form I output history
};

/// One-shot convenience: filter the whole signal in double precision.
std::vector<double> filter_signal(const TransferFunction& tf,
                                  std::span<const double> x);

}  // namespace psdacc::filt
