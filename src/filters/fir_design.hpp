// Windowed-sinc FIR design: low-pass, high-pass, band-pass, band-stop.
//
// Frequencies are normalized to cycles/sample (Nyquist = 0.5). Designs are
// linear-phase type I/II; high-pass and band-stop force an odd tap count so
// the response at Nyquist is realizable.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/window.hpp"

namespace psdacc::filt {

std::vector<double> fir_lowpass(std::size_t taps, double cutoff,
                                dsp::WindowKind window = dsp::WindowKind::kHamming);

std::vector<double> fir_highpass(std::size_t taps, double cutoff,
                                 dsp::WindowKind window = dsp::WindowKind::kHamming);

std::vector<double> fir_bandpass(std::size_t taps, double low, double high,
                                 dsp::WindowKind window = dsp::WindowKind::kHamming);

std::vector<double> fir_bandstop(std::size_t taps, double low, double high,
                                 dsp::WindowKind window = dsp::WindowKind::kHamming);

}  // namespace psdacc::filt
