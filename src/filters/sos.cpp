#include "filters/sos.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc::filt {
namespace {

// A root group is either a conjugate pair, two reals, or one lone real.
struct RootGroup {
  std::vector<cplx> roots;  // size 1 or 2
  double radius() const {
    double r = 0.0;
    for (const auto& z : roots) r = std::max(r, std::abs(z));
    return r;
  }
  cplx representative() const { return roots[0]; }
};

bool is_real(const cplx& z, double tol = 1e-9) {
  return std::abs(z.imag()) <= tol * (1.0 + std::abs(z.real()));
}

std::vector<RootGroup> group_roots(std::vector<cplx> roots) {
  std::vector<RootGroup> groups;
  std::vector<cplx> reals;
  std::vector<bool> used(roots.size(), false);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (used[i]) continue;
    if (is_real(roots[i])) {
      reals.push_back(roots[i]);
      used[i] = true;
      continue;
    }
    // Find the conjugate partner.
    std::size_t partner = roots.size();
    for (std::size_t j = i + 1; j < roots.size(); ++j) {
      if (used[j]) continue;
      if (std::abs(roots[j] - std::conj(roots[i])) <
          1e-6 * (1.0 + std::abs(roots[i]))) {
        partner = j;
        break;
      }
    }
    PSDACC_EXPECTS(partner < roots.size() &&
                   "complex roots must come in conjugate pairs");
    groups.push_back(RootGroup{{roots[i], roots[partner]}});
    used[i] = true;
    used[partner] = true;
  }
  // Pair reals two at a time, largest magnitude first.
  std::sort(reals.begin(), reals.end(),
            [](const cplx& a, const cplx& b) {
              return std::abs(a) > std::abs(b);
            });
  for (std::size_t i = 0; i + 1 < reals.size(); i += 2)
    groups.push_back(RootGroup{{reals[i], reals[i + 1]}});
  if (reals.size() % 2 == 1)
    groups.push_back(RootGroup{{reals.back()}});
  return groups;
}

// Monic polynomial coefficients (1, c1, c2) in z^-1 form for a group.
void group_to_coeffs(const RootGroup& g, double& c1, double& c2) {
  if (g.roots.size() == 2) {
    c1 = -(g.roots[0] + g.roots[1]).real();
    c2 = (g.roots[0] * g.roots[1]).real();
  } else {
    c1 = -g.roots[0].real();
    c2 = 0.0;
  }
}

}  // namespace

TransferFunction Biquad::tf() const {
  return TransferFunction({b0, b1, b2}, {1.0, a1, a2});
}

std::vector<Biquad> zpk_to_sos(const Zpk& digital) {
  PSDACC_EXPECTS(digital.zeros.size() == digital.poles.size() &&
                 "zpk must be balanced (bilinear output is)");
  auto pole_groups = group_roots(digital.poles);
  auto zero_groups = group_roots(digital.zeros);
  PSDACC_EXPECTS(pole_groups.size() == zero_groups.size());

  // Highest-Q (largest radius) pole groups first: they get the nearest
  // zeros, keeping each section's peak gain low.
  std::sort(pole_groups.begin(), pole_groups.end(),
            [](const RootGroup& a, const RootGroup& b) {
              return a.radius() > b.radius();
            });

  std::vector<Biquad> sections;
  std::vector<bool> zero_used(zero_groups.size(), false);
  for (const auto& pg : pole_groups) {
    // Nearest unused zero group.
    std::size_t best = zero_groups.size();
    double best_dist = 0.0;
    for (std::size_t i = 0; i < zero_groups.size(); ++i) {
      if (zero_used[i]) continue;
      const double dist =
          std::abs(zero_groups[i].representative() - pg.representative());
      if (best == zero_groups.size() || dist < best_dist) {
        best = i;
        best_dist = dist;
      }
    }
    PSDACC_ENSURES(best < zero_groups.size());
    zero_used[best] = true;

    Biquad s;
    group_to_coeffs(pg, s.a1, s.a2);
    double z1 = 0.0, z2 = 0.0;
    group_to_coeffs(zero_groups[best], z1, z2);
    s.b0 = 1.0;
    s.b1 = z1;
    s.b2 = z2;
    sections.push_back(s);
  }
  // Apply the overall gain to the first section.
  if (!sections.empty()) {
    sections.front().b0 *= digital.gain;
    sections.front().b1 *= digital.gain;
    sections.front().b2 *= digital.gain;
  }
  return sections;
}

ParallelForm zpk_to_parallel(const Zpk& digital) {
  const std::size_t n = digital.poles.size();
  PSDACC_EXPECTS(digital.zeros.size() == n);
  PSDACC_EXPECTS(n >= 1);
  // Simple poles only.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      PSDACC_EXPECTS(std::abs(digital.poles[i] - digital.poles[j]) >
                     1e-9 && "parallel form requires simple poles");

  ParallelForm form;
  form.direct = digital.gain;  // H(inf) for balanced zpk

  // Residues r_i = k * prod_j (p_i - z_j) / prod_{j != i} (p_i - p_j).
  std::vector<cplx> residues(n);
  for (std::size_t i = 0; i < n; ++i) {
    cplx num(digital.gain, 0.0);
    for (const auto& z : digital.zeros) num *= digital.poles[i] - z;
    cplx den(1.0, 0.0);
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) den *= digital.poles[i] - digital.poles[j];
    residues[i] = num / den;
  }

  // Combine conjugate pairs into real biquads; collect lone reals.
  std::vector<bool> used(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (used[i]) continue;
    const cplx p = digital.poles[i];
    const cplx r = residues[i];
    if (is_real(p)) {
      Biquad s;
      s.b0 = 0.0;
      s.b1 = r.real();
      s.a1 = -p.real();
      form.sections.push_back(s);
      used[i] = true;
      continue;
    }
    std::size_t partner = n;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!used[j] &&
          std::abs(digital.poles[j] - std::conj(p)) <
              1e-6 * (1.0 + std::abs(p))) {
        partner = j;
        break;
      }
    }
    PSDACC_EXPECTS(partner < n);
    used[i] = true;
    used[partner] = true;
    // r/(z-p) + conj(r)/(z-conj(p)) in z^-1 form.
    Biquad s;
    s.b0 = 0.0;
    s.b1 = 2.0 * r.real();
    s.b2 = -2.0 * (r * std::conj(p)).real();
    s.a1 = -2.0 * p.real();
    s.a2 = std::norm(p);
    form.sections.push_back(s);
  }
  return form;
}

TransferFunction sos_to_tf(const std::vector<Biquad>& sections) {
  PSDACC_EXPECTS(!sections.empty());
  TransferFunction acc = sections.front().tf();
  for (std::size_t i = 1; i < sections.size(); ++i)
    acc = acc.cascade(sections[i].tf());
  return acc;
}

TransferFunction parallel_to_tf(const ParallelForm& form) {
  TransferFunction acc = TransferFunction::gain(form.direct);
  for (const auto& s : form.sections) acc = acc.add(s.tf());
  return acc;
}

std::vector<Biquad> design_sos_lowpass(IirFamily family, int order,
                                       double cutoff, double ripple_db) {
  const auto proto = analog_prototype(family, order, ripple_db);
  const double wc = 2.0 * std::tan(std::numbers::pi * cutoff);
  auto digital = bilinear(lp_to_lp(proto, wc));
  digital.gain = 1.0;
  auto sections = zpk_to_sos(digital);
  // Normalize overall DC gain to 1.
  double dc = 1.0;
  for (const auto& s : sections)
    dc *= (s.b0 + s.b1 + s.b2) / (1.0 + s.a1 + s.a2);
  PSDACC_EXPECTS(dc != 0.0);
  sections.front().b0 /= dc;
  sections.front().b1 /= dc;
  sections.front().b2 /= dc;
  return sections;
}

}  // namespace psdacc::filt
