// Classical IIR design: Butterworth and Chebyshev-I prototypes, analog band
// transforms, bilinear transform with prewarping.
//
// Frequencies are normalized to cycles/sample (Nyquist = 0.5). Responses are
// normalized to unit gain at a band reference (DC for low-pass, Nyquist for
// high-pass, geometric center for band-pass).
#pragma once

#include <complex>
#include <vector>

#include "filters/transfer_function.hpp"

namespace psdacc::filt {

enum class IirFamily { kButterworth, kChebyshev1 };

/// Zero-pole-gain form in the analog (s) or digital (z) plane.
struct Zpk {
  std::vector<cplx> zeros;
  std::vector<cplx> poles;
  double gain = 1.0;
};

/// Analog low-pass prototype with cutoff 1 rad/s.
Zpk analog_prototype(IirFamily family, int order, double ripple_db = 1.0);

/// Analog LP(1 rad/s) -> LP(wc), HP(wc), BP(w0, bw) transforms.
Zpk lp_to_lp(const Zpk& proto, double wc);
Zpk lp_to_hp(const Zpk& proto, double wc);
Zpk lp_to_bp(const Zpk& proto, double w0, double bw);

/// Bilinear transform (fs = 1) mapping analog zpk to the z-plane; fills in
/// zeros at z = -1 so zero and pole counts match.
Zpk bilinear(const Zpk& analog);

/// Digital designs. `cutoff`, `low`, `high` in cycles/sample, in (0, 0.5).
TransferFunction iir_lowpass(IirFamily family, int order, double cutoff,
                             double ripple_db = 1.0);
TransferFunction iir_highpass(IirFamily family, int order, double cutoff,
                              double ripple_db = 1.0);
/// Band-pass of analog-prototype order `order` (digital order 2*order).
TransferFunction iir_bandpass(IirFamily family, int order, double low,
                              double high, double ripple_db = 1.0);

}  // namespace psdacc::filt
