// Second-order-section (biquad) and parallel realizations of IIR filters.
//
// Classic roundoff-noise theory (Jackson 1970, the paper's reference [10])
// studies how the *realization form* — direct, cascade-of-biquads,
// parallel — changes the output quantization noise of the same transfer
// function. psdacc models each section as a quantized block, so the three
// forms become three different SFGs over the same H(z), and the PSD
// engine predicts their (different) noise levels.
#pragma once

#include <vector>

#include "filters/iir_design.hpp"
#include "filters/transfer_function.hpp"

namespace psdacc::filt {

/// One biquad: (b0 + b1 z^-1 + b2 z^-2) / (1 + a1 z^-1 + a2 z^-2).
/// First-order sections are represented with the quadratic coefficients
/// set to zero.
struct Biquad {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;

  TransferFunction tf() const;
};

/// Cascade decomposition of a digital Zpk: poles/zeros are paired
/// conjugate-first, nearest zero to highest-Q pole (the standard pairing
/// that minimizes section peak gain). The product of all section transfer
/// functions equals the original H(z).
std::vector<Biquad> zpk_to_sos(const Zpk& digital);

/// Parallel (partial-fraction) decomposition: H(z) = direct +
/// sum_i section_i where each section is a first- or second-order term.
/// Requires strictly proper or equal-degree rational H with simple poles
/// (asserted); `digital` must be the z-plane zpk.
struct ParallelForm {
  double direct = 0.0;          // constant feed-through term
  std::vector<Biquad> sections; // each with b2 == 0 (proper residue terms)
};
ParallelForm zpk_to_parallel(const Zpk& digital);

/// Overall transfer function of a cascade (product of sections).
TransferFunction sos_to_tf(const std::vector<Biquad>& sections);
/// Overall transfer function of a parallel form (sum of terms).
TransferFunction parallel_to_tf(const ParallelForm& form);

/// Convenience: design + decompose in one step.
std::vector<Biquad> design_sos_lowpass(IirFamily family, int order,
                                       double cutoff,
                                       double ripple_db = 1.0);

}  // namespace psdacc::filt
