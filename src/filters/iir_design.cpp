#include "filters/iir_design.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc::filt {
namespace {

constexpr double kPi = std::numbers::pi;

// Prewarped analog frequency for digital frequency f (cycles/sample), with
// the fs = 1 bilinear convention s = 2 (1 - z^-1) / (1 + z^-1).
double prewarp(double f) {
  PSDACC_EXPECTS(f > 0.0 && f < 0.5);
  return 2.0 * std::tan(kPi * f);
}

TransferFunction zpk_to_tf(const Zpk& digital) {
  auto b = poly_from_roots(digital.zeros);
  for (auto& c : b) c *= digital.gain;
  auto a = poly_from_roots(digital.poles);
  return TransferFunction(std::move(b), std::move(a));
}

TransferFunction normalized_at(const Zpk& digital, double ref_freq) {
  auto tf = zpk_to_tf(digital);
  const double mag = std::abs(tf.response(ref_freq));
  PSDACC_EXPECTS(mag > 0.0);
  std::vector<double> b = tf.numerator();
  for (auto& c : b) c /= mag;
  return TransferFunction(std::move(b), tf.denominator());
}

}  // namespace

Zpk analog_prototype(IirFamily family, int order, double ripple_db) {
  PSDACC_EXPECTS(order >= 1);
  Zpk proto;
  switch (family) {
    case IirFamily::kButterworth:
      for (int k = 0; k < order; ++k) {
        const double theta =
            kPi * (2.0 * static_cast<double>(k) + 1.0) /
                (2.0 * static_cast<double>(order)) +
            kPi / 2.0;
        proto.poles.emplace_back(std::cos(theta), std::sin(theta));
      }
      break;
    case IirFamily::kChebyshev1: {
      PSDACC_EXPECTS(ripple_db > 0.0);
      const double eps =
          std::sqrt(std::pow(10.0, ripple_db / 10.0) - 1.0);
      const double a =
          std::asinh(1.0 / eps) / static_cast<double>(order);
      for (int k = 0; k < order; ++k) {
        const double theta = kPi * (2.0 * static_cast<double>(k) + 1.0) /
                             (2.0 * static_cast<double>(order));
        proto.poles.emplace_back(-std::sinh(a) * std::sin(theta),
                                 std::cosh(a) * std::cos(theta));
      }
      break;
    }
  }
  return proto;
}

Zpk lp_to_lp(const Zpk& proto, double wc) {
  PSDACC_EXPECTS(wc > 0.0);
  Zpk out;
  for (const auto& z : proto.zeros) out.zeros.push_back(z * wc);
  for (const auto& p : proto.poles) out.poles.push_back(p * wc);
  out.gain = proto.gain;
  return out;
}

Zpk lp_to_hp(const Zpk& proto, double wc) {
  PSDACC_EXPECTS(wc > 0.0);
  Zpk out;
  for (const auto& z : proto.zeros) out.zeros.push_back(wc / z);
  for (const auto& p : proto.poles) out.poles.push_back(wc / p);
  // LP zeros at infinity map to HP zeros at s = 0.
  const std::size_t extra = proto.poles.size() - proto.zeros.size();
  for (std::size_t i = 0; i < extra; ++i)
    out.zeros.emplace_back(0.0, 0.0);
  out.gain = proto.gain;
  return out;
}

Zpk lp_to_bp(const Zpk& proto, double w0, double bw) {
  PSDACC_EXPECTS(w0 > 0.0 && bw > 0.0);
  Zpk out;
  auto transform = [&](const cplx& r) {
    const cplx half = r * bw / 2.0;
    const cplx disc = std::sqrt(half * half - w0 * w0);
    return std::pair<cplx, cplx>(half + disc, half - disc);
  };
  for (const auto& z : proto.zeros) {
    auto [a, b] = transform(z);
    out.zeros.push_back(a);
    out.zeros.push_back(b);
  }
  for (const auto& p : proto.poles) {
    auto [a, b] = transform(p);
    out.poles.push_back(a);
    out.poles.push_back(b);
  }
  // Each LP zero at infinity becomes one BP zero at 0 and one at infinity.
  const std::size_t extra = proto.poles.size() - proto.zeros.size();
  for (std::size_t i = 0; i < extra; ++i)
    out.zeros.emplace_back(0.0, 0.0);
  out.gain = proto.gain;
  return out;
}

Zpk bilinear(const Zpk& analog) {
  // s = 2 (z - 1) / (z + 1)  =>  z = (2 + s) / (2 - s).
  Zpk digital;
  const cplx two(2.0, 0.0);
  for (const auto& z : analog.zeros)
    digital.zeros.push_back((two + z) / (two - z));
  for (const auto& p : analog.poles)
    digital.poles.push_back((two + p) / (two - p));
  // Analog zeros at infinity map to z = -1.
  const std::size_t extra = analog.poles.size() - analog.zeros.size();
  for (std::size_t i = 0; i < extra; ++i)
    digital.zeros.emplace_back(-1.0, 0.0);
  digital.gain = analog.gain;
  return digital;
}

TransferFunction iir_lowpass(IirFamily family, int order, double cutoff,
                             double ripple_db) {
  const auto proto = analog_prototype(family, order, ripple_db);
  const auto digital = bilinear(lp_to_lp(proto, prewarp(cutoff)));
  // For even-order Chebyshev the true DC gain is the ripple floor; we
  // normalize at DC anyway because the accuracy experiments only need a
  // consistent unit reference.
  return normalized_at(digital, 0.0);
}

TransferFunction iir_highpass(IirFamily family, int order, double cutoff,
                              double ripple_db) {
  const auto proto = analog_prototype(family, order, ripple_db);
  const auto digital = bilinear(lp_to_hp(proto, prewarp(cutoff)));
  return normalized_at(digital, 0.5);
}

TransferFunction iir_bandpass(IirFamily family, int order, double low,
                              double high, double ripple_db) {
  PSDACC_EXPECTS(low > 0.0 && low < high && high < 0.5);
  const auto proto = analog_prototype(family, order, ripple_db);
  const double wl = prewarp(low);
  const double wh = prewarp(high);
  const double w0 = std::sqrt(wl * wh);
  const double bw = wh - wl;
  const auto digital = bilinear(lp_to_bp(proto, w0, bw));
  // Digital center frequency: invert the prewarp of w0.
  const double f0 = std::atan(w0 / 2.0) / kPi;
  return normalized_at(digital, f0);
}

}  // namespace psdacc::filt
