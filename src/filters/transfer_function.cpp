#include "filters/transfer_function.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc::filt {

TransferFunction::TransferFunction(std::vector<double> b)
    : b_(std::move(b)), a_{1.0} {
  PSDACC_EXPECTS(!b_.empty());
}

TransferFunction::TransferFunction(std::vector<double> b,
                                   std::vector<double> a)
    : b_(std::move(b)), a_(std::move(a)) {
  PSDACC_EXPECTS(!b_.empty());
  PSDACC_EXPECTS(!a_.empty());
  PSDACC_EXPECTS(a_[0] != 0.0);
  if (a_[0] != 1.0) {
    const double inv = 1.0 / a_[0];
    for (auto& c : b_) c *= inv;
    for (auto& c : a_) c *= inv;
    a_[0] = 1.0;
  }
}

TransferFunction TransferFunction::identity() {
  return TransferFunction(std::vector<double>{1.0});
}

TransferFunction TransferFunction::gain(double g) {
  return TransferFunction(std::vector<double>{g});
}

TransferFunction TransferFunction::delay(std::size_t k) {
  std::vector<double> b(k + 1, 0.0);
  b[k] = 1.0;
  return TransferFunction(std::move(b));
}

namespace {

cplx eval_poly_z_inverse(std::span<const double> coeffs, cplx z_inv) {
  // Horner in z^-1.
  cplx acc(0.0, 0.0);
  for (std::size_t i = coeffs.size(); i-- > 0;)
    acc = acc * z_inv + coeffs[i];
  return acc;
}

}  // namespace

cplx TransferFunction::response(double normalized_freq) const {
  const double w = 2.0 * std::numbers::pi * normalized_freq;
  const cplx z_inv(std::cos(w), -std::sin(w));
  return eval_poly_z_inverse(b_, z_inv) / eval_poly_z_inverse(a_, z_inv);
}

double TransferFunction::power_response(double normalized_freq) const {
  return std::norm(response(normalized_freq));
}

std::vector<cplx> TransferFunction::response_grid(std::size_t n) const {
  PSDACC_EXPECTS(n >= 1);
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k)
    out[k] = response(static_cast<double>(k) / static_cast<double>(n));
  return out;
}

std::vector<double> TransferFunction::power_response_grid(
    std::size_t n) const {
  const auto grid = response_grid(n);
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = std::norm(grid[k]);
  return out;
}

double TransferFunction::dc_gain() const { return response(0.0).real(); }

std::vector<double> TransferFunction::impulse_response(std::size_t n) const {
  std::vector<double> h(n, 0.0);
  // Run the difference equation with x = delta.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = i < b_.size() ? b_[i] : 0.0;
    for (std::size_t j = 1; j < a_.size() && j <= i; ++j)
      acc -= a_[j] * h[i - j];
    h[i] = acc;
  }
  return h;
}

double TransferFunction::power_gain(std::size_t n) const {
  const std::size_t len = is_fir() ? b_.size() : n;
  const auto h = impulse_response(len);
  double acc = 0.0;
  for (double v : h) acc += v * v;
  return acc;
}

bool TransferFunction::is_stable() const {
  if (is_fir()) return true;
  // Schur-Cohn recursion on the denominator: stable iff every reflection
  // coefficient |k_m| < 1.
  std::vector<double> a = a_;
  while (a.size() > 1) {
    const double k = a.back();
    if (std::abs(k) >= 1.0) return false;
    const double denom = 1.0 - k * k;
    std::vector<double> next(a.size() - 1);
    for (std::size_t i = 0; i < next.size(); ++i)
      next[i] = (a[i] - k * a[a.size() - 1 - i]) / denom;
    a = std::move(next);
  }
  return true;
}

TransferFunction TransferFunction::cascade(
    const TransferFunction& other) const {
  return TransferFunction(poly_multiply(b_, other.b_),
                          poly_multiply(a_, other.a_));
}

TransferFunction TransferFunction::add(const TransferFunction& other) const {
  // b1/a1 + b2/a2 = (b1 a2 + b2 a1) / (a1 a2).
  auto num1 = poly_multiply(b_, other.a_);
  const auto num2 = poly_multiply(other.b_, a_);
  num1.resize(std::max(num1.size(), num2.size()), 0.0);
  for (std::size_t i = 0; i < num2.size(); ++i) num1[i] += num2[i];
  return TransferFunction(std::move(num1), poly_multiply(a_, other.a_));
}

TransferFunction TransferFunction::feedback(
    const TransferFunction& loop) const {
  // H = G / (1 + G L) with G = this, L = loop.
  // Numerator: b_g * a_l ; denominator: a_g * a_l + b_g * b_l.
  auto num = poly_multiply(b_, loop.a_);
  auto den = poly_multiply(a_, loop.a_);
  const auto gb_lb = poly_multiply(b_, loop.b_);
  den.resize(std::max(den.size(), gb_lb.size()), 0.0);
  for (std::size_t i = 0; i < gb_lb.size(); ++i) den[i] += gb_lb[i];
  return TransferFunction(std::move(num), std::move(den));
}

std::vector<double> poly_multiply(std::span<const double> a,
                                  std::span<const double> b) {
  PSDACC_EXPECTS(!a.empty() && !b.empty());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out[i + j] += a[i] * b[j];
  return out;
}

std::vector<double> poly_from_roots(std::span<const cplx> roots, double tol) {
  // Multiply out (1 - r z^-1) factors; accumulate in complex then check the
  // imaginary residue.
  std::vector<cplx> poly{cplx(1.0, 0.0)};
  for (const cplx& r : roots) {
    std::vector<cplx> next(poly.size() + 1, cplx(0.0, 0.0));
    for (std::size_t i = 0; i < poly.size(); ++i) {
      next[i] += poly[i];
      next[i + 1] -= poly[i] * r;
    }
    poly = std::move(next);
  }
  std::vector<double> out(poly.size());
  for (std::size_t i = 0; i < poly.size(); ++i) {
    PSDACC_ENSURES(std::abs(poly[i].imag()) <=
                   tol * (1.0 + std::abs(poly[i].real())));
    out[i] = poly[i].real();
  }
  return out;
}

}  // namespace psdacc::filt
