// Rational transfer functions H(z) = B(z^-1) / A(z^-1) in negative powers
// of z, the common DSP convention: B(z^-1) = b0 + b1 z^-1 + ..., a0 == 1.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace psdacc::filt {

using cplx = std::complex<double>;

class TransferFunction {
 public:
  /// FIR constructor (A = {1}).
  explicit TransferFunction(std::vector<double> b);
  /// IIR constructor; `a` is normalized so a[0] == 1 (asserted a[0] != 0).
  TransferFunction(std::vector<double> b, std::vector<double> a);

  /// Identity system H(z) = 1.
  static TransferFunction identity();
  /// Pure gain H(z) = g.
  static TransferFunction gain(double g);
  /// Pure delay H(z) = z^-k.
  static TransferFunction delay(std::size_t k);

  const std::vector<double>& numerator() const { return b_; }
  const std::vector<double>& denominator() const { return a_; }
  bool is_fir() const { return a_.size() == 1; }

  /// Complex response at normalized frequency f in cycles/sample
  /// (H evaluated at z = e^{j 2 pi f}).
  cplx response(double normalized_freq) const;
  /// |H|^2 at normalized frequency f.
  double power_response(double normalized_freq) const;
  /// Complex response sampled on the n-point FFT grid f_k = k/n.
  std::vector<cplx> response_grid(std::size_t n) const;
  /// |H|^2 sampled on the n-point FFT grid.
  std::vector<double> power_response_grid(std::size_t n) const;
  /// DC gain H(1).
  double dc_gain() const;

  /// First n samples of the impulse response.
  std::vector<double> impulse_response(std::size_t n) const;
  /// Power gain sum_k h[k]^2 approximated from `n` impulse-response samples
  /// (exact for FIR with n >= taps).
  double power_gain(std::size_t n = 4096) const;

  /// True iff all poles are strictly inside the unit circle (Schur-Cohn
  /// test on the denominator). FIR systems are always stable.
  bool is_stable() const;

  /// Exact coefficient equality (serialization round-trip contract).
  bool operator==(const TransferFunction&) const = default;

  /// Series connection: this followed by other (polynomial products).
  TransferFunction cascade(const TransferFunction& other) const;
  /// Parallel connection: this + other.
  TransferFunction add(const TransferFunction& other) const;
  /// Negative-feedback closed loop: this / (1 + this * other).
  /// With other == identity and loop gain g, use feedback(gain(g)).
  TransferFunction feedback(const TransferFunction& loop) const;

 private:
  std::vector<double> b_;
  std::vector<double> a_;
};

/// Polynomial product c = a * b (coefficient convolution).
std::vector<double> poly_multiply(std::span<const double> a,
                                  std::span<const double> b);

/// Real-coefficient polynomial from complex roots (roots must come in
/// conjugate pairs or be real up to `tol`); returns monic coefficients in
/// ascending-power-of-z^-1 order given roots of A(z^-1) as z-plane roots.
std::vector<double> poly_from_roots(std::span<const cplx> roots,
                                    double tol = 1e-9);

}  // namespace psdacc::filt
