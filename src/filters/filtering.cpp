#include "filters/filtering.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace psdacc::filt {

DirectForm2T::DirectForm2T(TransferFunction tf) : tf_(std::move(tf)) {
  const std::size_t order =
      std::max(tf_.numerator().size(), tf_.denominator().size());
  state_.assign(order > 0 ? order - 1 : 0, 0.0);
}

double DirectForm2T::step(double x) {
  const auto& b = tf_.numerator();
  const auto& a = tf_.denominator();
  const double b0 = b[0];
  const double y = b0 * x + (state_.empty() ? 0.0 : state_[0]);
  for (std::size_t i = 0; i + 1 < state_.size(); ++i) {
    const double bi = i + 1 < b.size() ? b[i + 1] : 0.0;
    const double ai = i + 1 < a.size() ? a[i + 1] : 0.0;
    state_[i] = state_[i + 1] + bi * x - ai * y;
  }
  if (!state_.empty()) {
    const std::size_t last = state_.size() - 1;
    const double bi = last + 1 < b.size() ? b[last + 1] : 0.0;
    const double ai = last + 1 < a.size() ? a[last + 1] : 0.0;
    state_[last] = bi * x - ai * y;
  }
  return y;
}

std::vector<double> DirectForm2T::process(std::span<const double> x) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = step(x[i]);
  return out;
}

void DirectForm2T::reset() { std::fill(state_.begin(), state_.end(), 0.0); }

FixedPointDirectForm::FixedPointDirectForm(
    TransferFunction tf, fxp::FixedPointFormat data_fmt,
    std::optional<fxp::FixedPointFormat> coeff_fmt, bool quantize_products)
    : tf_(std::move(tf)),
      data_fmt_(data_fmt),
      quantizer_(data_fmt),
      quantize_products_(quantize_products) {
  if (coeff_fmt.has_value()) {
    auto b = fxp::quantize(tf_.numerator(), *coeff_fmt);
    auto a = fxp::quantize(tf_.denominator(), *coeff_fmt);
    PSDACC_EXPECTS(a[0] != 0.0);
    tf_ = TransferFunction(std::move(b), std::move(a));
  }
  x_hist_.assign(tf_.numerator().size(), 0.0);
  y_hist_.assign(tf_.denominator().size(), 0.0);
}

double FixedPointDirectForm::step(double x) {
  const auto& b = tf_.numerator();
  const auto& a = tf_.denominator();
  // Shift histories (direct form I keeps quantized samples in the delay
  // line, matching a hardware register file).
  std::rotate(x_hist_.rbegin(), x_hist_.rbegin() + 1, x_hist_.rend());
  x_hist_[0] = x;
  double acc = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    double prod = b[i] * x_hist_[i];
    if (quantize_products_) prod = quantizer_(prod);
    acc += prod;
  }
  for (std::size_t i = 1; i < a.size(); ++i) {
    double prod = a[i] * y_hist_[i - 1];
    if (quantize_products_) prod = quantizer_(prod);
    acc -= prod;
  }
  const double y = quantizer_(acc);
  if (!y_hist_.empty()) {
    std::rotate(y_hist_.rbegin(), y_hist_.rbegin() + 1, y_hist_.rend());
    y_hist_[0] = y;
  }
  return y;
}

std::vector<double> FixedPointDirectForm::process(std::span<const double> x) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = step(x[i]);
  return out;
}

void FixedPointDirectForm::reset() {
  std::fill(x_hist_.begin(), x_hist_.end(), 0.0);
  std::fill(y_hist_.begin(), y_hist_.end(), 0.0);
}

std::vector<double> filter_signal(const TransferFunction& tf,
                                  std::span<const double> x) {
  DirectForm2T f(tf);
  return f.process(x);
}

}  // namespace psdacc::filt
