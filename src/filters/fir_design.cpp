#include "filters/fir_design.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc::filt {
namespace {

// Ideal low-pass impulse response (2*cutoff at the center tap), windowed.
std::vector<double> windowed_sinc(std::size_t taps, double cutoff,
                                  dsp::WindowKind window) {
  PSDACC_EXPECTS(taps >= 2);
  PSDACC_EXPECTS(cutoff > 0.0 && cutoff < 0.5);
  const auto w = dsp::make_window(window, taps);
  std::vector<double> h(taps);
  const double center = (static_cast<double>(taps) - 1.0) / 2.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double t = static_cast<double>(i) - center;
    const double x = 2.0 * std::numbers::pi * cutoff * t;
    const double sinc = (std::abs(t) < 1e-12)
                            ? 2.0 * cutoff
                            : std::sin(x) / (std::numbers::pi * t);
    h[i] = sinc * w[i];
  }
  return h;
}

std::size_t force_odd(std::size_t taps) { return taps % 2 == 0 ? taps + 1 : taps; }

void normalize_dc(std::vector<double>& h) {
  double s = 0.0;
  for (double v : h) s += v;
  PSDACC_EXPECTS(s != 0.0);
  for (double& v : h) v /= s;
}

void normalize_at(std::vector<double>& h, double freq) {
  // Normalize |H| at the given frequency to 1.
  double re = 0.0, im = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    const double w = 2.0 * std::numbers::pi * freq * static_cast<double>(i);
    re += h[i] * std::cos(w);
    im -= h[i] * std::sin(w);
  }
  const double mag = std::hypot(re, im);
  PSDACC_EXPECTS(mag > 0.0);
  for (double& v : h) v /= mag;
}

}  // namespace

std::vector<double> fir_lowpass(std::size_t taps, double cutoff,
                                dsp::WindowKind window) {
  auto h = windowed_sinc(taps, cutoff, window);
  normalize_dc(h);
  return h;
}

std::vector<double> fir_highpass(std::size_t taps, double cutoff,
                                 dsp::WindowKind window) {
  // Spectral inversion of a low-pass: delta at center minus LP. Requires a
  // symmetric center tap, hence odd length.
  const std::size_t n = force_odd(taps);
  auto h = fir_lowpass(n, cutoff, window);
  for (double& v : h) v = -v;
  h[(n - 1) / 2] += 1.0;
  normalize_at(h, 0.5);
  return h;
}

std::vector<double> fir_bandpass(std::size_t taps, double low, double high,
                                 dsp::WindowKind window) {
  PSDACC_EXPECTS(low > 0.0 && low < high && high < 0.5);
  // Difference of two low-pass designs with the same length.
  const std::size_t n = force_odd(taps);
  const auto lp_high = windowed_sinc(n, high, window);
  const auto lp_low = windowed_sinc(n, low, window);
  std::vector<double> h(n);
  for (std::size_t i = 0; i < n; ++i) h[i] = lp_high[i] - lp_low[i];
  normalize_at(h, (low + high) / 2.0);
  return h;
}

std::vector<double> fir_bandstop(std::size_t taps, double low, double high,
                                 dsp::WindowKind window) {
  PSDACC_EXPECTS(low > 0.0 && low < high && high < 0.5);
  const std::size_t n = force_odd(taps);
  auto h = fir_bandpass(n, low, high, window);
  for (double& v : h) v = -v;
  h[(n - 1) / 2] += 1.0;
  normalize_dc(h);
  return h;
}

}  // namespace psdacc::filt
