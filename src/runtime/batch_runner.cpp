#include "runtime/batch_runner.hpp"

#include "support/timer.hpp"

namespace psdacc::runtime {

BatchRunner::BatchRunner(ThreadPool& pool) : pool_(&pool) {}

BatchRunner::BatchRunner(std::size_t workers)
    : owned_pool_(std::make_unique<ThreadPool>(workers)),
      pool_(owned_pool_.get()) {}

std::vector<BatchResult> BatchRunner::run(std::vector<BatchJob>&& jobs) {
  // The vector stays alive (and unmoved) for the whole call; workers only
  // read the jobs in place, so no graph is ever copied.
  return run(std::span<const BatchJob>(jobs));
}

std::vector<BatchResult> BatchRunner::run(std::span<const BatchJob> jobs) {
  return pool_->parallel_map(jobs.size(), [&](std::size_t i) {
    const BatchJob& job = jobs[i];
    BatchResult result;
    result.name = job.name;
    const Stopwatch clock;
    result.report = sim::evaluate_accuracy(job.graph, job.config, pool_);
    result.seconds = clock.seconds();
    return result;
  });
}

}  // namespace psdacc::runtime
