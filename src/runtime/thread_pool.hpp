/// @file thread_pool.hpp
/// Fixed-size worker pool behind psdacc's parallel evaluation runtime.
///
/// The paper's selling point — PSD probes cheap enough to score thousands
/// of word-length candidates per second — multiplies by core count once the
/// embarrassingly parallel loops (optimizer probes, Monte-Carlo shards,
/// batch scenarios) run concurrently. This pool is the one primitive they
/// all share.
///
/// Design rules that keep parallel results bit-identical to serial runs:
///  * `parallel_for`/`parallel_map` assign work by index; callers write
///    results into per-index slots, so scheduling order never changes what
///    is computed, only when.
///  * A pool constructed with `workers == 1` spawns no threads and runs
///    everything inline on the calling thread — the serial baseline and the
///    parallel path execute the same code.
///  * The calling thread participates in `parallel_for`, so nested
///    parallel sections and pools larger than the machine never deadlock:
///    whoever waits also works.
///  * `submit` from inside a pool task of the same pool runs inline
///    (blocking a worker on a nested future would otherwise deadlock a
///    single-worker pool).
///
/// Exceptions thrown by tasks propagate: through the returned future for
/// `submit`, and rethrown (first one wins, remaining chunks are skipped)
/// from `parallel_for`/`parallel_map`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace psdacc::runtime {

/// Reasonable default worker count: the hardware thread count, at least 1.
std::size_t hardware_workers();

class ThreadPool {
 public:
  /// Creates a pool with total concurrency @p workers (the calling thread
  /// counts as one: `workers - 1` threads are spawned; 0 is treated as 1).
  explicit ThreadPool(std::size_t workers = hardware_workers());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (spawned threads + the participating caller).
  std::size_t workers() const { return threads_.size() + 1; }

  /// Schedules @p f and returns its future. On a 1-worker pool, or when
  /// called from inside one of this pool's tasks, runs inline.
  template <class F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    if (threads_.empty() || on_worker_thread()) {
      (*task)();
      return future;
    }
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs body(i) for i in [begin, end), split into chunks of @p grain
  /// indices claimed dynamically by the caller plus the pool workers.
  /// Blocks until every index ran (or an exception stopped the loop).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Maps fn over [0, n) into a vector with results in index order
  /// (deterministic regardless of scheduling). The result type must be
  /// default-constructible.
  template <class F>
  auto parallel_map(std::size_t n, F&& fn, std::size_t grain = 1)
      -> std::vector<std::invoke_result_t<std::decay_t<F>&, std::size_t>> {
    using R = std::invoke_result_t<std::decay_t<F>&, std::size_t>;
    static_assert(!std::is_same_v<R, bool>,
                  "std::vector<bool> packs bits: concurrent per-index "
                  "writes would race. Return char/int instead.");
    std::vector<R> out(n);
    parallel_for(
        0, n, [&](std::size_t i) { out[i] = fn(i); }, grain);
    return out;
  }

 private:
  struct ForState;

  void enqueue(std::function<void()> task);
  bool on_worker_thread() const;
  void worker_loop();
  static void run_chunks(ForState& state);

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  bool shutting_down_ = false;
};

}  // namespace psdacc::runtime
