#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>

namespace psdacc::runtime {
namespace {

// Set for the lifetime of each worker thread so submit() can detect
// re-entrant scheduling (see header).
thread_local const ThreadPool* current_pool = nullptr;

}  // namespace

std::size_t hardware_workers() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

// Shared state of one parallel_for: a chunk cursor plus an in-flight count,
// both guarded by one mutex. Chunks are coarse (an optimizer probe or a
// Monte-Carlo shard each), so the lock is never contended enough to matter,
// and the mutex makes the claim + in-flight transition atomic — the waiter
// can only observe "all claimed and none running" when the loop truly
// finished.
struct ThreadPool::ForState {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t next = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t in_flight = 0;
  bool stop = false;
  std::exception_ptr error;
  const std::function<void(std::size_t)>* body = nullptr;
};

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t spawn = workers > 1 ? workers - 1 : 0;
  threads_.reserve(spawn);
  for (std::size_t t = 0; t < spawn; ++t)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

bool ThreadPool::on_worker_thread() const { return current_pool == this; }

void ThreadPool::worker_loop() {
  current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::run_chunks(ForState& state) {
  for (;;) {
    std::size_t chunk_begin = 0;
    std::size_t chunk_end = 0;
    {
      std::lock_guard lock(state.mutex);
      if (state.stop || state.next >= state.end) break;
      chunk_begin = state.next;
      chunk_end = std::min(chunk_begin + state.grain, state.end);
      state.next = chunk_end;
      ++state.in_flight;
    }
    std::exception_ptr error;
    try {
      for (std::size_t i = chunk_begin; i < chunk_end; ++i) (*state.body)(i);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(state.mutex);
      --state.in_flight;
      if (error && !state.error) {
        state.error = error;
        state.stop = true;
      }
      if (state.in_flight == 0 &&
          (state.stop || state.next >= state.end)) {
        state.done_cv.notify_all();
      }
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  const std::size_t chunks = (total + grain - 1) / grain;
  if (threads_.empty() || chunks < 2) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  // Offset-free iteration: state counts in [begin, end) directly.
  auto state = std::make_shared<ForState>();
  state->next = begin;
  state->end = end;
  state->grain = grain;
  state->body = &body;

  // One helper task per spawned thread (capped by the chunk count); the
  // caller claims chunks too, so helpers that never get scheduled cost
  // nothing and cannot stall completion.
  const std::size_t helpers = std::min(threads_.size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h)
    enqueue([state] { run_chunks(*state); });
  run_chunks(*state);

  std::unique_lock lock(state->mutex);
  state->done_cv.wait(lock, [&] {
    return state->in_flight == 0 &&
           (state->stop || state->next >= state->end);
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace psdacc::runtime
