/// @file batch_runner.hpp
/// Batched scenario driver: evaluates many (graph, EvaluationConfig) jobs
/// concurrently on a runtime::ThreadPool.
///
/// This is the workload the paper's Table 1 implies — sweep a bank of
/// systems (filter banks, word-length variants, Monte-Carlo scenario
/// grids), produce one AccuracyReport each — turned into a first-class
/// driver. Jobs are independent by construction: each job owns its graph,
/// and every worker builds its own analyzers and execution plans, so the
/// batch scales with cores and the reports are bit-identical for any
/// worker count (results are collected in job order).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "sfg/graph.hpp"
#include "sim/error_measurement.hpp"

namespace psdacc::runtime {

/// One scenario: a system plus how to evaluate it. Movable end to end —
/// build the graph, `std::move` it into the job, `std::move` the jobs into
/// `run()` — so batching never copies a graph (asserted by the engine test
/// suite via sfg::Graph::copies_made). `config.engines` selects which
/// accuracy engines each scenario runs, so one batch can sweep systems x
/// engines.
struct BatchJob {
  std::string name;
  sfg::Graph graph;  ///< Owned: jobs must not share mutable graph state.
  sim::EvaluationConfig config;
};

/// One scenario's outcome, in the order the jobs were given.
struct BatchResult {
  std::string name;
  sim::AccuracyReport report;
  double seconds = 0.0;  ///< Wall-clock of this job alone.
};

class BatchRunner {
 public:
  /// Runs batches on @p pool (not owned; must outlive the runner).
  explicit BatchRunner(ThreadPool& pool);
  /// Runs batches on an internally owned pool of @p workers.
  explicit BatchRunner(std::size_t workers = hardware_workers());

  /// Evaluates every job (each through its config's engine set, see
  /// sim::evaluate_accuracy) and returns reports in job order.
  std::vector<BatchResult> run(std::span<const BatchJob> jobs);
  /// Move-friendly form: takes ownership of the job vector for the
  /// duration of the run, so callers can hand over graphs without copying.
  std::vector<BatchResult> run(std::vector<BatchJob>&& jobs);

  ThreadPool& pool() { return *pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
};

}  // namespace psdacc::runtime
