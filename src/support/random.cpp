#include "support/random.hpp"

#include <cmath>
#include <numbers>

#include "support/assert.hpp"

namespace psdacc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  PSDACC_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

double Xoshiro256::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Xoshiro256::gaussian(double mean, double stddev) {
  PSDACC_EXPECTS(stddev >= 0.0);
  return mean + stddev * gaussian();
}

void Xoshiro256::jump() {
  // Blackman & Vigna's published jump polynomial for xoshiro256: the new
  // state is sum_{k in J} T^k s over GF(2), where J is the bit set of these
  // constants and T the one-step state transition. Verified against an
  // independent T^(2^128) matrix power in the unit tests.
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ull << bit)) {
        for (std::size_t i = 0; i < state_.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
  has_cached_gaussian_ = false;
}

Xoshiro256 Xoshiro256::substream(std::uint64_t i) const {
  Xoshiro256 stream = *this;
  stream.has_cached_gaussian_ = false;
  for (; i > 0; --i) stream.jump();
  return stream;
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  PSDACC_EXPECTS(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~0ull - n + 1) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::vector<double> gaussian_signal(std::size_t n, Xoshiro256& rng) {
  std::vector<double> out(n);
  for (auto& v : out) v = rng.gaussian();
  return out;
}

std::vector<double> uniform_signal(std::size_t n, double amplitude,
                                   Xoshiro256& rng) {
  PSDACC_EXPECTS(amplitude >= 0.0);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(-amplitude, amplitude);
  return out;
}

std::vector<double> multitone_signal(std::size_t n, int tones,
                                     double amplitude, Xoshiro256& rng) {
  PSDACC_EXPECTS(tones > 0);
  std::vector<double> out(n, 0.0);
  std::vector<double> freqs(static_cast<std::size_t>(tones));
  std::vector<double> phases(static_cast<std::size_t>(tones));
  for (int t = 0; t < tones; ++t) {
    freqs[static_cast<std::size_t>(t)] = rng.uniform(0.01, 0.49);
    phases[static_cast<std::size_t>(t)] =
        rng.uniform(0.0, 2.0 * std::numbers::pi);
  }
  double peak = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double v = 0.0;
    for (int t = 0; t < tones; ++t) {
      const auto ti = static_cast<std::size_t>(t);
      v += std::sin(2.0 * std::numbers::pi * freqs[ti] *
                        static_cast<double>(i) +
                    phases[ti]);
    }
    out[i] = v;
    peak = std::max(peak, std::abs(v));
  }
  if (peak > 0.0) {
    for (auto& v : out) v *= amplitude / peak;
  }
  return out;
}

std::vector<double> ar1_signal(std::size_t n, double rho, Xoshiro256& rng) {
  PSDACC_EXPECTS(rho > -1.0 && rho < 1.0);
  std::vector<double> out(n);
  // Innovation variance chosen so the stationary variance is 1.
  const double innovation = std::sqrt(1.0 - rho * rho);
  double state = rng.gaussian();
  for (auto& v : out) {
    state = rho * state + innovation * rng.gaussian();
    v = state;
  }
  return out;
}

}  // namespace psdacc
