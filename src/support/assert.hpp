// Lightweight contract-checking macros (Core Guidelines I.6 / E.12 style).
//
// PSDACC_EXPECTS / PSDACC_ENSURES check pre/post-conditions and abort with a
// source location on violation; they stay active in release builds because
// the library is used for numerical experiments where silent corruption is
// worse than a crash.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace psdacc::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "psdacc: %s violation: (%s) at %s:%d\n", kind, expr,
               file, line);
  std::abort();
}

}  // namespace psdacc::detail

#define PSDACC_EXPECTS(cond)                                               \
  ((cond) ? static_cast<void>(0)                                           \
          : ::psdacc::detail::contract_failure("precondition", #cond,     \
                                               __FILE__, __LINE__))

#define PSDACC_ENSURES(cond)                                               \
  ((cond) ? static_cast<void>(0)                                          \
          : ::psdacc::detail::contract_failure("postcondition", #cond,    \
                                               __FILE__, __LINE__))
