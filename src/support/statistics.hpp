// Basic descriptive statistics used throughout the accuracy experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace psdacc {

/// Running mean/variance accumulator (Welford). Numerically stable for the
/// 10^6-10^7 sample Monte-Carlo runs used by the simulation engine.
class RunningStats {
 public:
  void add(double x);
  void add(std::span<const double> xs);

  /// Folds another accumulator in (Chan's parallel Welford combination).
  /// Deterministic for a fixed merge order: the sharded Monte-Carlo
  /// reduction merges shard stats in shard-index order regardless of how
  /// many workers produced them.
  void merge(const RunningStats& other);

  /// Rebuilds an accumulator from summary moments (count, mean, and the
  /// centered sum of squares m2 = n * population variance). min/max are
  /// not recoverable from moments and are set to the mean.
  static RunningStats from_moments(std::size_t n, double mean, double m2);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n).
  double variance() const;
  double stddev() const;
  /// Second raw moment E[x^2] = mean^2 + variance.
  double mean_square() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
/// Population variance (divides by n).
double variance(std::span<const double> xs);
/// Second raw moment E[x^2].
double mean_square(std::span<const double> xs);
double min_element(std::span<const double> xs);
double max_element(std::span<const double> xs);
/// Mean of |x_i|.
double mean_abs(std::span<const double> xs);
/// Element-wise difference a - b (sizes must match).
std::vector<double> subtract(std::span<const double> a,
                             std::span<const double> b);

}  // namespace psdacc
