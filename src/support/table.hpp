// Minimal fixed-width text table used by the benchmark harnesses to print
// paper-style tables (Table I, Table II, ...) to stdout.
#pragma once

#include <string>
#include <vector>

namespace psdacc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Renders the table with column-aligned cells and a header separator.
  std::string render() const;
  /// Renders and writes to stdout.
  void print() const;

  /// Formats a double with `digits` significant digits.
  static std::string num(double v, int digits = 4);
  /// Formats a value as a percentage string, e.g. "-8.40%".
  static std::string percent(double fraction, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psdacc
