#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace psdacc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::add(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * (nb / n_total);
  m2_ += other.m2_ + delta * delta * (na * nb / n_total);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats RunningStats::from_moments(std::size_t n, double mean,
                                        double m2) {
  RunningStats s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = mean;
  s.max_ = mean;
  return s;
}

double RunningStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::mean_square() const {
  return mean() * mean() + variance();
}

double mean(std::span<const double> xs) {
  PSDACC_EXPECTS(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  PSDACC_EXPECTS(!xs.empty());
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double mean_square(std::span<const double> xs) {
  PSDACC_EXPECTS(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return acc / static_cast<double>(xs.size());
}

double min_element(std::span<const double> xs) {
  PSDACC_EXPECTS(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_element(std::span<const double> xs) {
  PSDACC_EXPECTS(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double mean_abs(std::span<const double> xs) {
  PSDACC_EXPECTS(!xs.empty());
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x);
  return acc / static_cast<double>(xs.size());
}

std::vector<double> subtract(std::span<const double> a,
                             std::span<const double> b) {
  PSDACC_EXPECTS(a.size() == b.size());
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace psdacc
