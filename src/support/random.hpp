// Deterministic, fast pseudo-random generation for Monte-Carlo simulation.
//
// The library uses xoshiro256++ (Blackman & Vigna) rather than std::mt19937
// so that noise streams are reproducible across standard-library
// implementations and cheap enough for 10^7-sample runs.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace psdacc {

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words from `seed` via splitmix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Standard normal via Box-Muller (cached second draw).
  double gaussian();
  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  /// Advances the state by 2^128 steps (the standard xoshiro256 jump
  /// polynomial), discarding any cached Gaussian draw. Equivalent to
  /// 2^128 calls to operator(); used to carve one seed into
  /// non-overlapping parallel substreams.
  void jump();

  /// Stream for parallel shard @p i: a copy of this generator jumped
  /// i times, so substreams 0..k are pairwise non-overlapping for the
  /// first 2^128 draws each. substream(0) is the current stream itself.
  Xoshiro256 substream(std::uint64_t i) const;

  /// The raw 256-bit state (s0..s3); exposed for the jump-constant tests.
  const std::array<std::uint64_t, 4>& state() const { return state_; }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// `n` i.i.d. standard-normal samples.
std::vector<double> gaussian_signal(std::size_t n, Xoshiro256& rng);

/// `n` samples uniform in [-amplitude, amplitude].
std::vector<double> uniform_signal(std::size_t n, double amplitude,
                                   Xoshiro256& rng);

/// Sum of `tones` sinusoids with random frequencies/phases, normalized to
/// peak amplitude `amplitude`. Deterministic given the rng state.
std::vector<double> multitone_signal(std::size_t n, int tones,
                                     double amplitude, Xoshiro256& rng);

/// Gaussian noise colored by a single-pole AR(1) filter with coefficient
/// `rho` in (-1, 1), normalized to unit variance. Exercises non-white input
/// spectra.
std::vector<double> ar1_signal(std::size_t n, double rho, Xoshiro256& rng);

}  // namespace psdacc
