#include "support/table.hpp"

#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace psdacc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PSDACC_EXPECTS(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  PSDACC_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c]
          << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << std::string(widths[c] + 2, '-') << "|";
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

std::string TextTable::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string TextTable::percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, 100.0 * fraction);
  return buf;
}

}  // namespace psdacc
