// Cohen-Daubechies-Feauveau 9/7 biorthogonal wavelet filter bank — the
// irreversible transform of JPEG 2000 and the paper's third benchmark.
//
// Conventions: analysis low-pass h0 (9 taps, sum 1), analysis high-pass h1
// (7 taps, sum 0), synthesis low-pass g0 (7 taps, sum 2), synthesis
// high-pass g1 (9 taps, sum 0), related by g0[n] = -(-1)^n h1[n] and
// g1[n] = (-1)^n h0[n]. The two-channel bank
//   y = (g0 * up2(down2(h0 * x))) + (g1 * up2(down2(h1 * x)))
// reconstructs x with a delay of kReconstructionDelay samples.
#pragma once

#include <cstddef>
#include <vector>

namespace psdacc::wav {

/// Reconstruction delay of one analysis+synthesis level, in samples.
inline constexpr std::size_t kReconstructionDelay = 7;

const std::vector<double>& analysis_lowpass();   // h0, 9 taps
const std::vector<double>& analysis_highpass();  // h1, 7 taps
const std::vector<double>& synthesis_lowpass();  // g0, 7 taps
const std::vector<double>& synthesis_highpass(); // g1, 9 taps

}  // namespace psdacc::wav
