#include "wavelet/dwt2d.hpp"

#include "fixedpoint/quantizer.hpp"
#include "support/assert.hpp"
#include "wavelet/daub97.hpp"

namespace psdacc::wav {
namespace {

using img::Image;

std::vector<double> maybe_quantize(
    std::vector<double> v, const std::optional<fxp::FixedPointFormat>& fmt) {
  if (!fmt.has_value()) return v;
  return fxp::quantize(v, *fmt);
}

// Filters + 2:1 decimates every row (along columns) with h.
Image filter_rows_down(const Image& x, const std::vector<double>& h,
                       const std::optional<fxp::FixedPointFormat>& fmt) {
  PSDACC_EXPECTS(x.cols() % 2 == 0);
  Image out(x.rows(), x.cols() / 2);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto filtered = maybe_quantize(circular_filter(x.row(r), h), fmt);
    std::vector<double> down(x.cols() / 2);
    for (std::size_t c = 0; c < down.size(); ++c) down[c] = filtered[2 * c];
    out.set_row(r, down);
  }
  return out;
}

Image filter_cols_down(const Image& x, const std::vector<double>& h,
                       const std::optional<fxp::FixedPointFormat>& fmt) {
  PSDACC_EXPECTS(x.rows() % 2 == 0);
  Image out(x.rows() / 2, x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto filtered = maybe_quantize(circular_filter(x.col(c), h), fmt);
    std::vector<double> down(x.rows() / 2);
    for (std::size_t r = 0; r < down.size(); ++r) down[r] = filtered[2 * r];
    out.set_col(c, down);
  }
  return out;
}

// Upsamples 1:2 and filters every row with h.
Image up_filter_rows(const Image& x, const std::vector<double>& h,
                     const std::optional<fxp::FixedPointFormat>& fmt) {
  Image out(x.rows(), x.cols() * 2);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    std::vector<double> up(row.size() * 2, 0.0);
    for (std::size_t c = 0; c < row.size(); ++c) up[2 * c] = row[c];
    out.set_row(r, maybe_quantize(circular_filter(up, h), fmt));
  }
  return out;
}

Image up_filter_cols(const Image& x, const std::vector<double>& h,
                     const std::optional<fxp::FixedPointFormat>& fmt) {
  Image out(x.rows() * 2, x.cols());
  for (std::size_t c = 0; c < x.cols(); ++c) {
    const auto col = x.col(c);
    std::vector<double> up(col.size() * 2, 0.0);
    for (std::size_t r = 0; r < col.size(); ++r) up[2 * r] = col[r];
    out.set_col(c, maybe_quantize(circular_filter(up, h), fmt));
  }
  return out;
}

Image add_images(const Image& a, const Image& b) {
  PSDACC_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  Image out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i)
    out.data()[i] = a.data()[i] + b.data()[i];
  return out;
}

// Circular delay by `shift` pixels along both axes: out[r][c] =
// in[(r - shift) mod R][(c - shift) mod C].
Image circular_delay(const Image& x, std::size_t shift) {
  Image out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      out.at((r + shift) % x.rows(), (c + shift) % x.cols()) = x.at(r, c);
  return out;
}

}  // namespace

std::vector<double> circular_filter(const std::vector<double>& x,
                                    const std::vector<double>& h) {
  PSDACC_EXPECTS(!x.empty() && !h.empty());
  PSDACC_EXPECTS(h.size() <= x.size());
  const std::size_t n = x.size();
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < h.size(); ++k) {
      const std::size_t j = (i + n - k % n) % n;
      acc += h[k] * x[j];
    }
    y[i] = acc;
  }
  return y;
}

Subbands2d analyze_2d(const img::Image& x,
                      const std::optional<fxp::FixedPointFormat>& fmt) {
  const auto& h0 = analysis_lowpass();
  const auto& h1 = analysis_highpass();
  // Rows first (as in the paper), then columns.
  const Image l = filter_rows_down(x, h0, fmt);
  const Image h = filter_rows_down(x, h1, fmt);
  Subbands2d bands;
  bands.ll = filter_cols_down(l, h0, fmt);
  bands.lh = filter_cols_down(l, h1, fmt);
  bands.hl = filter_cols_down(h, h0, fmt);
  bands.hh = filter_cols_down(h, h1, fmt);
  return bands;
}

img::Image synthesize_2d(const Subbands2d& bands,
                         const std::optional<fxp::FixedPointFormat>& fmt) {
  const auto& g0 = synthesis_lowpass();
  const auto& g1 = synthesis_highpass();
  // Columns first (inverse of the analysis order), then rows.
  const Image l = add_images(up_filter_cols(bands.ll, g0, fmt),
                             up_filter_cols(bands.lh, g1, fmt));
  const Image h = add_images(up_filter_cols(bands.hl, g0, fmt),
                             up_filter_cols(bands.hh, g1, fmt));
  return add_images(up_filter_rows(l, g0, fmt), up_filter_rows(h, g1, fmt));
}

img::Image dwt2d_roundtrip(const img::Image& x, std::size_t levels,
                           const std::optional<fxp::FixedPointFormat>& fmt,
                           bool quantize_input) {
  PSDACC_EXPECTS(levels >= 1);
  PSDACC_EXPECTS(x.rows() % (std::size_t{1} << levels) == 0);
  PSDACC_EXPECTS(x.cols() % (std::size_t{1} << levels) == 0);
  Image in = x;
  if (fmt.has_value() && quantize_input) {
    in.data() = fxp::quantize(in.data(), *fmt);
  }
  // Analyze down the LL chain.
  std::vector<Subbands2d> pyramid;
  Image current = std::move(in);
  for (std::size_t l = 0; l < levels; ++l) {
    pyramid.push_back(analyze_2d(current, fmt));
    current = pyramid.back().ll;
  }
  // Synthesize back up. The reconstruction of the inner levels arrives
  // circularly shifted by t_inner = 7 * (2^inner_levels - 1); delay the
  // detail bands identically so every level recombines aligned (this is
  // the 2-D analogue of the compensating delays in the 1-D SFG codec) and
  // the total codec shift follows the t_L = 2 t_{L-1} + 7 recurrence.
  Image recon = current;
  for (std::size_t l = levels; l-- > 0;) {
    const std::size_t inner_levels = levels - 1 - l;
    const std::size_t t_inner =
        kReconstructionDelay * ((std::size_t{1} << inner_levels) - 1);
    Subbands2d bands = pyramid[l];
    bands.ll = std::move(recon);
    if (t_inner > 0) {
      bands.lh = circular_delay(bands.lh, t_inner);
      bands.hl = circular_delay(bands.hl, t_inner);
      bands.hh = circular_delay(bands.hh, t_inner);
    }
    recon = synthesize_2d(bands, fmt);
  }
  return recon;
}

img::Image align_reconstruction(const img::Image& y, std::size_t levels) {
  const std::size_t shift =
      kReconstructionDelay * ((std::size_t{1} << levels) - 1);
  img::Image out(y.rows(), y.cols());
  for (std::size_t r = 0; r < y.rows(); ++r)
    for (std::size_t c = 0; c < y.cols(); ++c)
      out.at(r, c) = y.at((r + shift) % y.rows(), (c + shift) % y.cols());
  return out;
}

}  // namespace psdacc::wav
