// SFG builders for 1-D CDF 9/7 DWT codecs (Fig. 3 of the paper, 1-D form).
//
// The L-level codec analyzes the input into one approximation and L detail
// bands and immediately re-synthesizes; with `format` set, every filter
// output is quantized (and the input is quantized on entry), reproducing
// the paper's "all fractional word-lengths set to d" setting.
#pragma once

#include <cstddef>
#include <optional>

#include "fixedpoint/format.hpp"
#include "sfg/graph.hpp"

namespace psdacc::wav {

struct DwtCodecSpec {
  std::size_t levels = 2;
  /// When set: quantize the input and every filter block output.
  std::optional<fxp::FixedPointFormat> format;
};

/// Builds in -> [analysis tree -> synthesis tree] -> out. The total
/// codec delay is 7 * (2^levels - 1) samples; detail branches carry
/// compensating delays so reconstruction is exact in reference mode.
sfg::Graph build_dwt1d_codec(const DwtCodecSpec& spec);

/// Codec group delay in samples for the given level count.
std::size_t dwt1d_codec_delay(std::size_t levels);

}  // namespace psdacc::wav
