// Separable 2-D CDF 9/7 DWT codec on images (Fig. 3 of the paper), with
// circular (periodic) convolution so reconstruction is exact up to a
// circular shift of 7 * (2^levels - 1) pixels per axis.
//
// The fixed-point variant quantizes the input image and the output of every
// filtering stage (rows and columns, analysis and synthesis) to the given
// format — the "all fractional word-lengths set to d" experiment.
#pragma once

#include <optional>
#include <vector>

#include "fixedpoint/format.hpp"
#include "imaging/image.hpp"

namespace psdacc::wav {

struct Subbands2d {
  img::Image ll, lh, hl, hh;
};

/// One analysis level: rows then columns, downsampling by 2 each pass.
/// Image dimensions must be even. With `fmt`, filter outputs are quantized.
Subbands2d analyze_2d(const img::Image& x,
                      const std::optional<fxp::FixedPointFormat>& fmt = {});

/// One synthesis level (inverse of analyze_2d).
img::Image synthesize_2d(const Subbands2d& bands,
                         const std::optional<fxp::FixedPointFormat>& fmt = {});

/// Multi-level codec: analyze `levels` deep (recursing on LL), then
/// synthesize back. Dimensions must be divisible by 2^levels.
img::Image dwt2d_roundtrip(const img::Image& x, std::size_t levels,
                           const std::optional<fxp::FixedPointFormat>& fmt = {},
                           bool quantize_input = true);

/// Circular shift compensating the codec delay, so the round-trip output
/// can be compared pixel-to-pixel with the input.
img::Image align_reconstruction(const img::Image& y, std::size_t levels);

/// Circular 1-D convolution helper (shared with tests).
std::vector<double> circular_filter(const std::vector<double>& x,
                                    const std::vector<double>& h);

}  // namespace psdacc::wav
