#include "wavelet/daub97.hpp"

namespace psdacc::wav {
namespace {

// Standard CDF 9/7 coefficients (JPEG 2000 Part 1, irreversible).
const std::vector<double> kH0 = {
    0.026748757410810898,  -0.016864118442875890, -0.078223266528990024,
    0.266864118442875900,  0.602949018236360340,  0.266864118442875900,
    -0.078223266528990024, -0.016864118442875890, 0.026748757410810898};

const std::vector<double> kH1 = {
    0.091271763114249850,  -0.057543526228499310, -0.591271763114249850,
    1.115087052456994400,  -0.591271763114249850, -0.057543526228499310,
    0.091271763114249850};

std::vector<double> derive_g0() {
  // g0[n] = -(-1)^n h1[n].
  std::vector<double> g(kH1.size());
  for (std::size_t n = 0; n < kH1.size(); ++n)
    g[n] = (n % 2 == 0 ? -1.0 : 1.0) * kH1[n];
  return g;
}

std::vector<double> derive_g1() {
  // g1[n] = (-1)^n h0[n].
  std::vector<double> g(kH0.size());
  for (std::size_t n = 0; n < kH0.size(); ++n)
    g[n] = (n % 2 == 0 ? 1.0 : -1.0) * kH0[n];
  return g;
}

}  // namespace

const std::vector<double>& analysis_lowpass() { return kH0; }
const std::vector<double>& analysis_highpass() { return kH1; }

const std::vector<double>& synthesis_lowpass() {
  static const std::vector<double> g0 = derive_g0();
  return g0;
}

const std::vector<double>& synthesis_highpass() {
  static const std::vector<double> g1 = derive_g1();
  return g1;
}

}  // namespace psdacc::wav
