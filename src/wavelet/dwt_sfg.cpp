#include "wavelet/dwt_sfg.hpp"

#include "support/assert.hpp"
#include "wavelet/daub97.hpp"

namespace psdacc::wav {
namespace {

using sfg::Graph;
using sfg::NodeId;

// Builds one analysis+synthesis level around `src`; recursion handles the
// approximation band. Returns the reconstructed node id.
NodeId build_level(Graph& g, NodeId src, std::size_t level,
                   std::size_t levels,
                   const std::optional<fxp::FixedPointFormat>& fmt) {
  const filt::TransferFunction h0(analysis_lowpass());
  const filt::TransferFunction h1(analysis_highpass());
  const filt::TransferFunction g0(synthesis_lowpass());
  const filt::TransferFunction g1(synthesis_highpass());

  // Low branch.
  const NodeId lp = g.add_block(src, h0, fmt, "h0_l" + std::to_string(level));
  const NodeId lp_down = g.add_downsample(lp, 2);
  NodeId approx = lp_down;
  if (level < levels) {
    approx = build_level(g, lp_down, level + 1, levels, fmt);
  }
  const NodeId lp_up = g.add_upsample(approx, 2);
  const NodeId lp_syn =
      g.add_block(lp_up, g0, fmt, "g0_l" + std::to_string(level));

  // High branch, delayed to stay aligned with the recursive low branch.
  const NodeId hp = g.add_block(src, h1, fmt, "h1_l" + std::to_string(level));
  NodeId hp_aligned = hp;
  if (level < levels) {
    const std::size_t sub_delay = dwt1d_codec_delay(levels - level);
    hp_aligned = g.add_delay(hp, 2 * sub_delay,
                             "align_l" + std::to_string(level));
  }
  const NodeId hp_down = g.add_downsample(hp_aligned, 2);
  const NodeId hp_up = g.add_upsample(hp_down, 2);
  const NodeId hp_syn =
      g.add_block(hp_up, g1, fmt, "g1_l" + std::to_string(level));

  return g.add_adder({lp_syn, hp_syn}, "recon_l" + std::to_string(level));
}

}  // namespace

std::size_t dwt1d_codec_delay(std::size_t levels) {
  // D_L = 7 + 2 * D_{L-1}, D_0 = 0  =>  7 * (2^L - 1).
  return kReconstructionDelay * ((std::size_t{1} << levels) - 1);
}

sfg::Graph build_dwt1d_codec(const DwtCodecSpec& spec) {
  PSDACC_EXPECTS(spec.levels >= 1 && spec.levels <= 8);
  Graph g;
  const NodeId in = g.add_input("x");
  NodeId head = in;
  if (spec.format.has_value())
    head = g.add_quantizer(head, *spec.format, "q_in");
  const NodeId recon = build_level(g, head, 1, spec.levels, spec.format);
  g.add_output(recon, "y");
  g.validate();
  return g;
}

}  // namespace psdacc::wav
