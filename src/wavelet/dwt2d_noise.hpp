// Analytical quantization-noise estimation for the 2-D DWT codec — the
// proposed PSD method extended to separable 2-D systems, plus the
// PSD-agnostic moment baseline over the identical structure.
//
// A Spectrum2d is the 2-D analogue of core::NoiseSpectrum: an N x N grid of
// PSD bins over normalized frequencies (ky, kx) = (r/N, c/N) relative to
// the *current* sampling rate of the band being propagated, plus a separate
// coherent mean. Row operations act along kx, column operations along ky.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "fixedpoint/format.hpp"

namespace psdacc::wav {

class Spectrum2d {
 public:
  explicit Spectrum2d(std::size_t n_bins);

  std::size_t size() const { return n_; }
  double mean() const { return mean_; }
  void set_mean(double m) { mean_ = m; }
  double& bin(std::size_t ky, std::size_t kx) { return bins_[ky * n_ + kx]; }
  double bin(std::size_t ky, std::size_t kx) const {
    return bins_[ky * n_ + kx];
  }
  const std::vector<double>& bins() const { return bins_; }

  double variance() const;
  double power() const;

  /// Adds white noise of the given variance (and coherent mean).
  void add_white(double variance, double mean = 0.0);
  /// Eq. 14 in 2-D: bins add, means add coherently.
  void add_uncorrelated(const Spectrum2d& other);

  /// Eq. 11 along one axis: multiplies bins by |H(k/N)|^2 where k is the
  /// kx (row op) or ky (column op) index; mean scales by dc.
  void apply_row_response(std::span<const double> power_response, double dc);
  void apply_col_response(std::span<const double> power_response, double dc);

  /// Multirate rules along one axis (same math as NoiseSpectrum).
  void decimate_rows(std::size_t factor);  // downsampling along x
  void decimate_cols(std::size_t factor);  // downsampling along y
  void expand_rows(std::size_t factor);
  void expand_cols(std::size_t factor);

 private:
  std::size_t n_;
  double mean_ = 0.0;
  std::vector<double> bins_;
};

struct Dwt2dNoiseConfig {
  std::size_t levels = 2;
  fxp::FixedPointFormat format;
  std::size_t n_bins = 64;       // per axis; total grid n_bins^2
  bool quantize_input = true;
};

/// Proposed method: output noise spectrum of the 2-D codec. Power of the
/// returned spectrum estimates E[err^2] per output pixel.
Spectrum2d dwt2d_noise_psd(const Dwt2dNoiseConfig& cfg);

/// PSD-agnostic baseline: same traversal but blind (mu, sigma^2)
/// propagation through per-filter power gains. Returns estimated power.
/// With `blind_multirate` (the paper's Fig. 1.b baseline) the up- and
/// downsamplers are transparent to the moments; with false the exact
/// marginal corrections are applied (ablation A3).
double dwt2d_noise_power_moments(const Dwt2dNoiseConfig& cfg,
                                 bool blind_multirate = true);

}  // namespace psdacc::wav
