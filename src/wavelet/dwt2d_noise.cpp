#include "wavelet/dwt2d_noise.hpp"

#include <cmath>

#include "filters/transfer_function.hpp"
#include "fixedpoint/noise_model.hpp"
#include "support/assert.hpp"
#include "wavelet/daub97.hpp"

namespace psdacc::wav {
namespace {

// Periodic linear interpolation over one axis line.
double sample_line(std::span<const double> line, double index) {
  const auto n = static_cast<double>(line.size());
  double idx = std::fmod(index, n);
  if (idx < 0.0) idx += n;
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const double frac = idx - static_cast<double>(lo);
  const std::size_t hi = (lo + 1) % line.size();
  return line[lo % line.size()] * (1.0 - frac) + line[hi] * frac;
}

// 1-D fold (decimation image sum): out[k] = (1/M) sum_r in((k + rN)/M).
std::vector<double> fold_line(std::span<const double> line,
                              std::size_t factor) {
  const std::size_t n = line.size();
  std::vector<double> out(n, 0.0);
  const double inv_m = 1.0 / static_cast<double>(factor);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t r = 0; r < factor; ++r)
      acc += sample_line(line, (static_cast<double>(k) +
                                static_cast<double>(r * n)) *
                                   inv_m);
    out[k] = acc * inv_m;
  }
  return out;
}

// 1-D spectral compression (zero-insertion): out[k] = (1/L) in[kL mod N].
std::vector<double> compress_line(std::span<const double> line,
                                  std::size_t factor) {
  const std::size_t n = line.size();
  std::vector<double> out(n);
  const double inv_l = 1.0 / static_cast<double>(factor);
  for (std::size_t k = 0; k < n; ++k)
    out[k] = line[(k * factor) % n] * inv_l;
  return out;
}

}  // namespace

Spectrum2d::Spectrum2d(std::size_t n_bins)
    : n_(n_bins), bins_(n_bins * n_bins, 0.0) {
  PSDACC_EXPECTS(n_bins >= 2 && n_bins % 2 == 0);
}

double Spectrum2d::variance() const {
  double acc = 0.0;
  for (double v : bins_) acc += v;
  return acc;
}

double Spectrum2d::power() const { return mean_ * mean_ + variance(); }

void Spectrum2d::add_white(double variance, double mean) {
  const double per_bin = variance / static_cast<double>(n_ * n_);
  for (double& v : bins_) v += per_bin;
  mean_ += mean;
}

void Spectrum2d::add_uncorrelated(const Spectrum2d& other) {
  PSDACC_EXPECTS(other.n_ == n_);
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  mean_ += other.mean_;
}

void Spectrum2d::apply_row_response(std::span<const double> power_response,
                                    double dc) {
  PSDACC_EXPECTS(power_response.size() == n_);
  for (std::size_t ky = 0; ky < n_; ++ky)
    for (std::size_t kx = 0; kx < n_; ++kx)
      bins_[ky * n_ + kx] *= power_response[kx];
  mean_ *= dc;
}

void Spectrum2d::apply_col_response(std::span<const double> power_response,
                                    double dc) {
  PSDACC_EXPECTS(power_response.size() == n_);
  for (std::size_t ky = 0; ky < n_; ++ky)
    for (std::size_t kx = 0; kx < n_; ++kx)
      bins_[ky * n_ + kx] *= power_response[ky];
  mean_ *= dc;
}

void Spectrum2d::decimate_rows(std::size_t factor) {
  if (factor == 1) return;
  std::vector<double> line(n_);
  for (std::size_t ky = 0; ky < n_; ++ky) {
    for (std::size_t kx = 0; kx < n_; ++kx) line[kx] = bins_[ky * n_ + kx];
    const auto folded = fold_line(line, factor);
    for (std::size_t kx = 0; kx < n_; ++kx) bins_[ky * n_ + kx] = folded[kx];
  }
}

void Spectrum2d::decimate_cols(std::size_t factor) {
  if (factor == 1) return;
  std::vector<double> line(n_);
  for (std::size_t kx = 0; kx < n_; ++kx) {
    for (std::size_t ky = 0; ky < n_; ++ky) line[ky] = bins_[ky * n_ + kx];
    const auto folded = fold_line(line, factor);
    for (std::size_t ky = 0; ky < n_; ++ky) bins_[ky * n_ + kx] = folded[ky];
  }
}

void Spectrum2d::expand_rows(std::size_t factor) {
  if (factor == 1) return;
  PSDACC_EXPECTS(n_ % factor == 0);
  std::vector<double> line(n_);
  for (std::size_t ky = 0; ky < n_; ++ky) {
    for (std::size_t kx = 0; kx < n_; ++kx) line[kx] = bins_[ky * n_ + kx];
    const auto compressed = compress_line(line, factor);
    for (std::size_t kx = 0; kx < n_; ++kx)
      bins_[ky * n_ + kx] = compressed[kx];
  }
  // Mean image lines along kx at ky = 0 (the mean is constant along y).
  const double image_power =
      (mean_ / static_cast<double>(factor)) *
      (mean_ / static_cast<double>(factor));
  for (std::size_t r = 1; r < factor; ++r)
    bins_[0 * n_ + (r * n_) / factor] += image_power;
  mean_ /= static_cast<double>(factor);
}

void Spectrum2d::expand_cols(std::size_t factor) {
  if (factor == 1) return;
  PSDACC_EXPECTS(n_ % factor == 0);
  std::vector<double> line(n_);
  for (std::size_t kx = 0; kx < n_; ++kx) {
    for (std::size_t ky = 0; ky < n_; ++ky) line[ky] = bins_[ky * n_ + kx];
    const auto compressed = compress_line(line, factor);
    for (std::size_t ky = 0; ky < n_; ++ky)
      bins_[ky * n_ + kx] = compressed[ky];
  }
  const double image_power =
      (mean_ / static_cast<double>(factor)) *
      (mean_ / static_cast<double>(factor));
  for (std::size_t r = 1; r < factor; ++r)
    bins_[((r * n_) / factor) * n_ + 0] += image_power;
  mean_ /= static_cast<double>(factor);
}

namespace {

struct FilterTables {
  std::vector<double> h0_pow, h1_pow, g0_pow, g1_pow;
  double h0_dc, h1_dc, g0_dc, g1_dc;
  double h0_pg, h1_pg, g0_pg, g1_pg;  // sum h[k]^2, for the moment baseline
};

FilterTables make_tables(std::size_t n_bins) {
  FilterTables t;
  const filt::TransferFunction h0(analysis_lowpass());
  const filt::TransferFunction h1(analysis_highpass());
  const filt::TransferFunction g0(synthesis_lowpass());
  const filt::TransferFunction g1(synthesis_highpass());
  t.h0_pow = h0.power_response_grid(n_bins);
  t.h1_pow = h1.power_response_grid(n_bins);
  t.g0_pow = g0.power_response_grid(n_bins);
  t.g1_pow = g1.power_response_grid(n_bins);
  t.h0_dc = h0.dc_gain();
  t.h1_dc = h1.dc_gain();
  t.g0_dc = g0.dc_gain();
  t.g1_dc = g1.dc_gain();
  t.h0_pg = h0.power_gain();
  t.h1_pg = h1.power_gain();
  t.g0_pg = g0.power_gain();
  t.g1_pg = g1.power_gain();
  return t;
}

// Recursive mirror of dwt2d_roundtrip on spectra (proposed method).
Spectrum2d codec_noise_level(const Spectrum2d& in, std::size_t level,
                             std::size_t levels, const FilterTables& t,
                             double q_var, double q_mean,
                             std::size_t n_bins) {
  auto filt_rows_down = [&](const Spectrum2d& s,
                            const std::vector<double>& pow, double dc) {
    Spectrum2d out = s;
    out.apply_row_response(pow, dc);
    out.add_white(q_var, q_mean);
    out.decimate_rows(2);
    return out;
  };
  auto filt_cols_down = [&](const Spectrum2d& s,
                            const std::vector<double>& pow, double dc) {
    Spectrum2d out = s;
    out.apply_col_response(pow, dc);
    out.add_white(q_var, q_mean);
    out.decimate_cols(2);
    return out;
  };
  auto up_filt_cols = [&](const Spectrum2d& s,
                          const std::vector<double>& pow, double dc) {
    Spectrum2d out = s;
    out.expand_cols(2);
    out.apply_col_response(pow, dc);
    out.add_white(q_var, q_mean);
    return out;
  };
  auto up_filt_rows = [&](const Spectrum2d& s,
                          const std::vector<double>& pow, double dc) {
    Spectrum2d out = s;
    out.expand_rows(2);
    out.apply_row_response(pow, dc);
    out.add_white(q_var, q_mean);
    return out;
  };

  // Analysis.
  const Spectrum2d l = filt_rows_down(in, t.h0_pow, t.h0_dc);
  const Spectrum2d h = filt_rows_down(in, t.h1_pow, t.h1_dc);
  Spectrum2d ll = filt_cols_down(l, t.h0_pow, t.h0_dc);
  const Spectrum2d lh = filt_cols_down(l, t.h1_pow, t.h1_dc);
  const Spectrum2d hl = filt_cols_down(h, t.h0_pow, t.h0_dc);
  const Spectrum2d hh = filt_cols_down(h, t.h1_pow, t.h1_dc);

  // Recurse on the approximation band.
  if (level < levels)
    ll = codec_noise_level(ll, level + 1, levels, t, q_var, q_mean, n_bins);

  // Synthesis (columns then rows, matching dwt2d.cpp).
  Spectrum2d lcol = up_filt_cols(ll, t.g0_pow, t.g0_dc);
  lcol.add_uncorrelated(up_filt_cols(lh, t.g1_pow, t.g1_dc));
  Spectrum2d hcol = up_filt_cols(hl, t.g0_pow, t.g0_dc);
  hcol.add_uncorrelated(up_filt_cols(hh, t.g1_pow, t.g1_dc));
  Spectrum2d out = up_filt_rows(lcol, t.g0_pow, t.g0_dc);
  out.add_uncorrelated(up_filt_rows(hcol, t.g1_pow, t.g1_dc));
  return out;
}

struct Moments {
  double mean = 0.0;
  double variance = 0.0;
};

Moments codec_noise_level_moments(const Moments& in, std::size_t level,
                                  std::size_t levels, const FilterTables& t,
                                  double q_var, double q_mean,
                                  bool blind_multirate) {
  auto filt_down = [&](const Moments& m, double pg, double dc) {
    // Blind variance propagation through the power gain, then the noise of
    // the quantizer; decimation leaves moments unchanged either way.
    return Moments{m.mean * dc + q_mean, m.variance * pg + q_var};
  };
  auto up_filt = [&](const Moments& m, double pg, double dc) {
    if (blind_multirate) {
      // Paper baseline: the upsampler is transparent to the moments.
      return Moments{m.mean * dc + q_mean, m.variance * pg + q_var};
    }
    // Corrected: zero-insertion gives E[y^2] = E[x^2]/2, mean/2; then
    // filter + quantizer.
    const double power = m.mean * m.mean + m.variance;
    const double mean_up = m.mean / 2.0;
    const double var_up = power / 2.0 - mean_up * mean_up;
    return Moments{mean_up * dc + q_mean, var_up * pg + q_var};
  };
  auto add = [](const Moments& a, const Moments& b) {
    return Moments{a.mean + b.mean, a.variance + b.variance};
  };

  const Moments l = filt_down(in, t.h0_pg, t.h0_dc);
  const Moments h = filt_down(in, t.h1_pg, t.h1_dc);
  Moments ll = filt_down(l, t.h0_pg, t.h0_dc);
  const Moments lh = filt_down(l, t.h1_pg, t.h1_dc);
  const Moments hl = filt_down(h, t.h0_pg, t.h0_dc);
  const Moments hh = filt_down(h, t.h1_pg, t.h1_dc);

  if (level < levels)
    ll = codec_noise_level_moments(ll, level + 1, levels, t, q_var, q_mean,
                                   blind_multirate);

  const Moments lcol = add(up_filt(ll, t.g0_pg, t.g0_dc),
                           up_filt(lh, t.g1_pg, t.g1_dc));
  const Moments hcol = add(up_filt(hl, t.g0_pg, t.g0_dc),
                           up_filt(hh, t.g1_pg, t.g1_dc));
  return add(up_filt(lcol, t.g0_pg, t.g0_dc),
             up_filt(hcol, t.g1_pg, t.g1_dc));
}

}  // namespace

Spectrum2d dwt2d_noise_psd(const Dwt2dNoiseConfig& cfg) {
  PSDACC_EXPECTS(cfg.levels >= 1);
  const auto t = make_tables(cfg.n_bins);
  const auto m = fxp::continuous_quantization_noise(cfg.format);
  Spectrum2d in(cfg.n_bins);
  if (cfg.quantize_input) in.add_white(m.variance, m.mean);
  return codec_noise_level(in, 1, cfg.levels, t, m.variance, m.mean,
                           cfg.n_bins);
}

double dwt2d_noise_power_moments(const Dwt2dNoiseConfig& cfg,
                                 bool blind_multirate) {
  PSDACC_EXPECTS(cfg.levels >= 1);
  const auto t = make_tables(cfg.n_bins);
  const auto m = fxp::continuous_quantization_noise(cfg.format);
  Moments in;
  if (cfg.quantize_input) {
    in.mean = m.mean;
    in.variance = m.variance;
  }
  const auto out = codec_noise_level_moments(in, 1, cfg.levels, t,
                                             m.variance, m.mean,
                                             blind_multirate);
  return out.mean * out.mean + out.variance;
}

}  // namespace psdacc::wav
