#include "serve/net.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace psdacc::serve {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool Socket::read_exact(void* buf, std::size_t n) const {
  char* p = static_cast<char*>(buf);
  while (n > 0) {
    const long got = read_some(p, n);
    if (got <= 0) return false;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

long Socket::read_some(void* buf, std::size_t n) const {
  for (;;) {
    const ssize_t got = ::recv(fd_, buf, n, 0);
    if (got >= 0) return static_cast<long>(got);
    if (errno != EINTR) return -1;
  }
}

bool Socket::write_all(const void* buf, std::size_t n) const {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t put = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

ListenSocket::ListenSocket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0)
    throw_errno("bind 127.0.0.1");
  if (::listen(fd, SOMAXCONN) < 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Socket ListenSocket::accept_connection() const {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno != EINTR) return Socket();  // shut down or fatal
  }
}

Socket connect_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket sock(fd);
  const sockaddr_in addr = loopback(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0)
    throw_errno("connect 127.0.0.1");
  return sock;
}

}  // namespace psdacc::serve
