/// @file job_queue.hpp
/// Admission-controlled job queue: a fixed set of executor threads draining
/// a bounded FIFO. Admission is the server's backpressure mechanism — when
/// the queue is full, try_submit fails *immediately* and the caller turns
/// that into a REJECTED_BUSY response, so an overloaded server sheds load
/// in microseconds instead of accumulating unbounded latency. Per-job
/// deadlines are the submitter's concern (jobs capture their deadline and
/// poll it cooperatively); the queue guarantees only that a rejected or
/// drained job never blocks the jobs behind it.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psdacc::serve {

class JobQueue {
 public:
  /// @param workers   executor threads (>= 1)
  /// @param max_depth max jobs waiting (not yet started); 0 means a job is
  ///                  admitted only when an executor is free to take it
  JobQueue(std::size_t workers, std::size_t max_depth);
  /// Drains and joins (see drain_and_stop).
  ~JobQueue();

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admits @p work unless the backlog is at max depth or the queue is
  /// stopping. Returns whether the job was admitted; a rejected job was
  /// never queued and will never run.
  bool try_submit(std::function<void()> work);

  /// Stops admitting, runs every already-admitted job to completion
  /// (in-flight-job drain: a queued job's client is still waiting on its
  /// response), and joins the executors. Idempotent.
  void drain_and_stop();

  /// Jobs admitted but not yet started.
  std::size_t depth() const;
  /// Jobs currently executing.
  std::size_t running() const;

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t max_depth_;
  std::size_t running_ = 0;
  bool stopping_ = false;
};

}  // namespace psdacc::serve
