#include "serve/client.hpp"

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>

namespace psdacc::serve {
namespace {

std::uint64_t parse_u64(std::string_view value) {
  return std::strtoull(std::string(value).c_str(), nullptr, 10);
}

double parse_double(std::string_view value) {
  // Shortest round-trip emission parses back to the identical double, so
  // golden comparisons through the wire lose nothing.
  return std::strtod(std::string(value).c_str(), nullptr);
}

std::vector<int> parse_bits(std::string_view value) {
  std::vector<int> out;
  if (value.size() >= 2 && value.front() == '[' && value.back() == ']')
    value = value.substr(1, value.size() - 2);
  std::size_t pos = 0;
  while (pos < value.size()) {
    while (pos < value.size() && value[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < value.size() && value[end] != ' ') ++end;
    if (end > pos)
      out.push_back(
          std::atoi(std::string(value.substr(pos, end - pos)).c_str()));
    pos = end;
  }
  return out;
}

Response connection_lost(std::string_view detail) {
  Response r;
  r.ok = false;
  r.error = "CONNECTION";
  r.message = std::string(detail);
  return r;
}

// Parses one `budget,cost,noise,feasible,evaluations,bits` row (the
// points_to_csv schema the server's point_<i>/front_<i> lines carry).
SweepPoint parse_sweep_point(std::size_t index, std::string_view row) {
  SweepPoint p;
  p.index = index;
  std::vector<std::string_view> fields;
  std::size_t pos = 0;
  while (pos <= row.size()) {
    std::size_t end = row.find(',', pos);
    if (end == std::string_view::npos) end = row.size();
    fields.push_back(row.substr(pos, end - pos));
    pos = end + 1;
  }
  if (fields.size() < 6) return p;
  p.budget = parse_double(fields[0]);
  p.cost = parse_double(fields[1]);
  p.noise = parse_double(fields[2]);
  p.feasible = fields[3] == "1";
  p.evaluations = parse_u64(fields[4]);
  std::string_view bits = fields[5];
  pos = 0;
  while (pos <= bits.size() && !bits.empty()) {
    std::size_t end = bits.find('|', pos);
    if (end == std::string_view::npos) end = bits.size();
    if (end > pos)
      p.bits.push_back(
          std::atoi(std::string(bits.substr(pos, end - pos)).c_str()));
    pos = end + 1;
  }
  return p;
}

// `point_<i>` / `front_<i>` -> i; nullopt for every other key.
std::optional<std::size_t> indexed_key(std::string_view key,
                                       std::string_view prefix) {
  if (key.size() <= prefix.size() || key.substr(0, prefix.size()) != prefix)
    return std::nullopt;
  const std::string_view digits = key.substr(prefix.size());
  for (const char c : digits)
    if (c < '0' || c > '9') return std::nullopt;
  return static_cast<std::size_t>(parse_u64(digits));
}

}  // namespace

Response parse_response(FrameType type, std::string payload) {
  Response r;
  const auto kv = parse_kv_lines(payload);
  r.raw = std::move(payload);
  r.ok = type == FrameType::kResult && kv_get(kv, "status") == "OK";
  r.error = std::string(kv_get(kv, "code"));
  r.message = std::string(kv_get(kv, "message"));
  r.line = parse_u64(kv_get(kv, "line", "0"));
  r.column = parse_u64(kv_get(kv, "column", "0"));
  r.cache_hit = kv_get(kv, "cache") == "hit";
  r.hash = std::string(kv_get(kv, "hash"));
  r.strategy = std::string(kv_get(kv, "strategy"));
  r.feasible = kv_get(kv, "feasible") == "1";
  r.cancelled = kv_get(kv, "cancelled") == "1";
  r.cost = parse_double(kv_get(kv, "cost", "0"));
  r.noise = parse_double(kv_get(kv, "noise", "0"));
  r.evaluations = parse_u64(kv_get(kv, "evaluations", "0"));
  r.bits = parse_bits(kv_get(kv, "bits"));
  r.probes_full = parse_u64(kv_get(kv, "probes_full", "0"));
  r.probes_cached = parse_u64(kv_get(kv, "probes_cached", "0"));
  r.probes_delta = parse_u64(kv_get(kv, "probes_delta", "0"));
  for (const auto& [key, value] : kv) {
    // Engine result lines are keyed by the engine's stable name; every
    // other key in the payload fails parse_engine_kind.
    const auto kind = core::parse_engine_kind(key);
    if (kind.has_value())
      r.engines.push_back({*kind, parse_double(value)});
    if (const auto i = indexed_key(key, "point_"))
      r.sweep_points.push_back(parse_sweep_point(*i, value));
    if (const auto i = indexed_key(key, "front_"))
      r.front.push_back(parse_sweep_point(*i, value));
  }
  return r;
}

Client::Client(std::uint16_t port) : sock_(connect_local(port)) {}

Response Client::submit_eval(std::string_view document,
                             std::chrono::milliseconds timeout) {
  std::string payload = encode_envelope_prefix(timeout, nullptr);
  payload += document;
  if (!write_frame(sock_, FrameType::kSubmitEval, payload))
    return connection_lost("write failed");
  return await_response();
}

Response Client::submit_opt(std::string_view document,
                            const OptimizerSpec& spec,
                            std::chrono::milliseconds timeout) {
  std::string payload = encode_envelope_prefix(timeout, &spec);
  payload += document;
  if (!write_frame(sock_, FrameType::kSubmitOpt, payload))
    return connection_lost("write failed");
  return await_response();
}

Response Client::submit_sweep(std::string_view document,
                              const SweepSpec& spec,
                              std::chrono::milliseconds timeout) {
  std::string payload = encode_envelope_prefix(timeout, spec);
  payload += document;
  if (!write_frame(sock_, FrameType::kSubmitSweep, payload))
    return connection_lost("write failed");
  return await_response();
}

std::string Client::stats_text() {
  if (!write_frame(sock_, FrameType::kStatsQuery, {})) return {};
  Frame frame;
  if (read_frame(sock_, frame) != ReadStatus::kOk ||
      frame.type != FrameType::kStatsReply)
    return {};
  return std::move(frame.payload);
}

std::vector<std::pair<std::string, std::string>> Client::stats() {
  return parse_kv_lines(stats_text());
}

Response Client::await_response() {
  std::vector<std::string> progress;
  for (;;) {
    Frame frame;
    const ReadStatus status = read_frame(sock_, frame);
    if (status != ReadStatus::kOk)
      return connection_lost(std::string(to_string(status)));
    if (frame.type == FrameType::kProgress) {
      progress.push_back(std::move(frame.payload));
      continue;
    }
    if (frame.type == FrameType::kResult ||
        frame.type == FrameType::kError) {
      Response r = parse_response(frame.type, std::move(frame.payload));
      r.progress = std::move(progress);
      return r;
    }
    return connection_lost("unexpected frame type in response stream");
  }
}

}  // namespace psdacc::serve
