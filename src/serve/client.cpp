#include "serve/client.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace psdacc::serve {
namespace {

std::uint64_t parse_u64(std::string_view value) {
  return std::strtoull(std::string(value).c_str(), nullptr, 10);
}

double parse_double(std::string_view value) {
  // Shortest round-trip emission parses back to the identical double, so
  // golden comparisons through the wire lose nothing.
  return std::strtod(std::string(value).c_str(), nullptr);
}

std::vector<int> parse_bits(std::string_view value) {
  std::vector<int> out;
  if (value.size() >= 2 && value.front() == '[' && value.back() == ']')
    value = value.substr(1, value.size() - 2);
  std::size_t pos = 0;
  while (pos < value.size()) {
    while (pos < value.size() && value[pos] == ' ') ++pos;
    std::size_t end = pos;
    while (end < value.size() && value[end] != ' ') ++end;
    if (end > pos)
      out.push_back(
          std::atoi(std::string(value.substr(pos, end - pos)).c_str()));
    pos = end;
  }
  return out;
}

Response connection_lost(std::string_view detail) {
  Response r;
  r.ok = false;
  r.error = "CONNECTION";
  r.message = std::string(detail);
  return r;
}

}  // namespace

Response parse_response(FrameType type, std::string payload) {
  Response r;
  const auto kv = parse_kv_lines(payload);
  r.raw = std::move(payload);
  r.ok = type == FrameType::kResult && kv_get(kv, "status") == "OK";
  r.error = std::string(kv_get(kv, "code"));
  r.message = std::string(kv_get(kv, "message"));
  r.line = parse_u64(kv_get(kv, "line", "0"));
  r.column = parse_u64(kv_get(kv, "column", "0"));
  r.cache_hit = kv_get(kv, "cache") == "hit";
  r.hash = std::string(kv_get(kv, "hash"));
  r.strategy = std::string(kv_get(kv, "strategy"));
  r.feasible = kv_get(kv, "feasible") == "1";
  r.cancelled = kv_get(kv, "cancelled") == "1";
  r.cost = parse_double(kv_get(kv, "cost", "0"));
  r.noise = parse_double(kv_get(kv, "noise", "0"));
  r.evaluations = parse_u64(kv_get(kv, "evaluations", "0"));
  r.bits = parse_bits(kv_get(kv, "bits"));
  for (const auto& [key, value] : kv) {
    // Engine result lines are keyed by the engine's stable name; every
    // other key in the payload fails parse_engine_kind.
    const auto kind = core::parse_engine_kind(key);
    if (kind.has_value())
      r.engines.push_back({*kind, parse_double(value)});
  }
  return r;
}

Client::Client(std::uint16_t port) : sock_(connect_local(port)) {}

Response Client::submit_eval(std::string_view document,
                             std::chrono::milliseconds timeout) {
  std::string payload = encode_envelope_prefix(timeout, nullptr);
  payload += document;
  if (!write_frame(sock_, FrameType::kSubmitEval, payload))
    return connection_lost("write failed");
  return await_response();
}

Response Client::submit_opt(std::string_view document,
                            const OptimizerSpec& spec,
                            std::chrono::milliseconds timeout) {
  std::string payload = encode_envelope_prefix(timeout, &spec);
  payload += document;
  if (!write_frame(sock_, FrameType::kSubmitOpt, payload))
    return connection_lost("write failed");
  return await_response();
}

std::string Client::stats_text() {
  if (!write_frame(sock_, FrameType::kStatsQuery, {})) return {};
  Frame frame;
  if (read_frame(sock_, frame) != ReadStatus::kOk ||
      frame.type != FrameType::kStatsReply)
    return {};
  return std::move(frame.payload);
}

std::vector<std::pair<std::string, std::string>> Client::stats() {
  return parse_kv_lines(stats_text());
}

Response Client::await_response() {
  std::vector<std::string> progress;
  for (;;) {
    Frame frame;
    const ReadStatus status = read_frame(sock_, frame);
    if (status != ReadStatus::kOk)
      return connection_lost(std::string(to_string(status)));
    if (frame.type == FrameType::kProgress) {
      progress.push_back(std::move(frame.payload));
      continue;
    }
    if (frame.type == FrameType::kResult ||
        frame.type == FrameType::kError) {
      Response r = parse_response(frame.type, std::move(frame.payload));
      r.progress = std::move(progress);
      return r;
    }
    return connection_lost("unexpected frame type in response stream");
  }
}

}  // namespace psdacc::serve
