/// @file client.hpp
/// Blocking client for the psdacc-serve protocol — the library behind the
/// `psdacc-submit` CLI and the serving integration tests. One Client owns
/// one connection; submissions are synchronous (submit, then read PROG
/// frames until the terminal RSLT/ERRF arrives).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/accuracy_engine.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace psdacc::serve {

/// One engine's result line from an evaluation response.
struct EngineResult {
  core::EngineKind kind = core::EngineKind::kPsd;
  double power = 0.0;
};

/// One sweep point from a PARJ response (`point_<i>=` / `front_<i>=`
/// lines, the points_to_csv row schema).
struct SweepPoint {
  std::size_t index = 0;  ///< ladder index (point_<i>) or front rank
  double budget = 0.0;
  double cost = 0.0;
  double noise = 0.0;
  bool feasible = false;
  std::uint64_t evaluations = 0;
  std::vector<int> bits;
};

/// A parsed terminal response (RSLT or ERRF), plus any PROG payloads that
/// streamed in before it. `raw` keeps the terminal payload bytes verbatim
/// — the cache's bit-identical-replay contract is asserted on it.
struct Response {
  bool ok = false;
  /// Terminal frame payload, byte for byte.
  std::string raw;
  /// PROG frame payloads, in arrival order.
  std::vector<std::string> progress;

  // ERRF fields (code is empty on success).
  std::string error;
  std::string message;
  std::uint64_t line = 0;    ///< PARSE errors: 1-based source line
  std::uint64_t column = 0;  ///< PARSE errors: 1-based source column

  // Evaluation results.
  bool cache_hit = false;
  std::string hash;  ///< content hash the server keyed the job on
  std::vector<EngineResult> engines;

  // Optimizer results (also populated on a TIMEOUT's partial state).
  std::string strategy;
  bool feasible = false;
  bool cancelled = false;
  double cost = 0.0;
  double noise = 0.0;
  std::uint64_t evaluations = 0;
  std::vector<int> bits;

  // Sweep results (also populated on a TIMEOUT's completed prefix).
  std::vector<SweepPoint> sweep_points;  ///< ladder order
  std::vector<SweepPoint> front;         ///< dominance-filtered, cost asc
  std::uint64_t probes_full = 0;
  std::uint64_t probes_cached = 0;
  std::uint64_t probes_delta = 0;
};

/// Parses a terminal payload into a Response (exposed for tests that speak
/// raw frames).
Response parse_response(FrameType type, std::string payload);

class Client {
 public:
  /// Connects to 127.0.0.1:@p port.
  /// @throws std::runtime_error when the server is not reachable
  explicit Client(std::uint16_t port);

  /// Submits @p document (a serialized scenario) for evaluation.
  /// @p timeout zero = the server's default budget.
  Response submit_eval(std::string_view document,
                       std::chrono::milliseconds timeout = {});

  /// Submits @p document for word-length optimization under @p spec.
  Response submit_opt(std::string_view document, const OptimizerSpec& spec,
                      std::chrono::milliseconds timeout = {});

  /// Submits @p document for a Pareto-front sweep under @p spec (PARJ).
  /// One PROG frame arrives per completed budget point.
  Response submit_sweep(std::string_view document, const SweepSpec& spec,
                        std::chrono::milliseconds timeout = {});

  /// The server's stats snapshot as parsed key=value pairs.
  std::vector<std::pair<std::string, std::string>> stats();
  /// The raw STTS payload text.
  std::string stats_text();

  /// The underlying connection, for tests that need to write raw bytes.
  Socket& socket() { return sock_; }

 private:
  /// Reads frames until RSLT/ERRF, collecting PROG payloads. A connection
  /// drop surfaces as a synthetic ERRF with error "CONNECTION".
  Response await_response();

  Socket sock_;
};

}  // namespace psdacc::serve
