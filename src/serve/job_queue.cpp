#include "serve/job_queue.hpp"

#include <utility>

#include "support/assert.hpp"

namespace psdacc::serve {

JobQueue::JobQueue(std::size_t workers, std::size_t max_depth)
    : max_depth_(max_depth) {
  PSDACC_EXPECTS(workers >= 1);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

JobQueue::~JobQueue() { drain_and_stop(); }

bool JobQueue::try_submit(std::function<void()> work) {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return false;
    // Admission: either an executor is free to take the job immediately
    // (queue empty, spare capacity) or the backlog is under the cap. With
    // max_depth == 0 this degenerates to "admit only what can start now".
    const bool executor_free =
        queue_.empty() && running_ < workers_.size();
    if (!executor_free && queue_.size() >= max_depth_) return false;
    queue_.push_back(std::move(work));
  }
  cv_.notify_one();
  return true;
}

void JobQueue::drain_and_stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

std::size_t JobQueue::depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::size_t JobQueue::running() const {
  std::lock_guard lock(mutex_);
  return running_;
}

void JobQueue::worker_loop() {
  for (;;) {
    std::function<void()> work;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      work = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    // Jobs wrap their own error handling (an exception becomes an ERRF
    // response); anything escaping anyway must not kill the executor.
    try {
      work();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
    {
      std::lock_guard lock(mutex_);
      --running_;
    }
  }
}

}  // namespace psdacc::serve
