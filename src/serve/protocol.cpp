#include "serve/protocol.hpp"

#include <charconv>
#include <cstring>

#include "opt/search/strategies.hpp"

namespace psdacc::serve {
namespace {

constexpr std::uint32_t tag_of(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kTagEval = tag_of('E', 'V', 'A', 'L');
constexpr std::uint32_t kTagOpt = tag_of('O', 'P', 'T', 'J');
constexpr std::uint32_t kTagSweep = tag_of('P', 'A', 'R', 'J');
constexpr std::uint32_t kTagStat = tag_of('S', 'T', 'A', 'T');
constexpr std::uint32_t kTagResult = tag_of('R', 'S', 'L', 'T');
constexpr std::uint32_t kTagProgress = tag_of('P', 'R', 'O', 'G');
constexpr std::uint32_t kTagError = tag_of('E', 'R', 'R', 'F');
constexpr std::uint32_t kTagStats = tag_of('S', 'T', 'T', 'S');

void put_u32_le(char* out, std::uint32_t v) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t get_u32_le(const char* in) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[2]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

}  // namespace

std::uint32_t frame_tag(FrameType type) {
  switch (type) {
    case FrameType::kSubmitEval: return kTagEval;
    case FrameType::kSubmitOpt: return kTagOpt;
    case FrameType::kSubmitSweep: return kTagSweep;
    case FrameType::kStatsQuery: return kTagStat;
    case FrameType::kResult: return kTagResult;
    case FrameType::kProgress: return kTagProgress;
    case FrameType::kError: return kTagError;
    case FrameType::kStatsReply: return kTagStats;
  }
  return kTagError;
}

std::optional<FrameType> parse_frame_tag(std::uint32_t tag) {
  switch (tag) {
    case kTagEval: return FrameType::kSubmitEval;
    case kTagOpt: return FrameType::kSubmitOpt;
    case kTagSweep: return FrameType::kSubmitSweep;
    case kTagStat: return FrameType::kStatsQuery;
    case kTagResult: return FrameType::kResult;
    case kTagProgress: return FrameType::kProgress;
    case kTagError: return FrameType::kError;
    case kTagStats: return FrameType::kStatsReply;
    default: return std::nullopt;
  }
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.resize(8 + payload.size());
  put_u32_le(out.data(), frame_tag(type));
  put_u32_le(out.data() + 4, static_cast<std::uint32_t>(payload.size()));
  std::memcpy(out.data() + 8, payload.data(), payload.size());
  return out;
}

bool write_frame(const Socket& sock, FrameType type,
                 std::string_view payload) {
  const std::string wire = encode_frame(type, payload);
  return sock.write_all(wire.data(), wire.size());
}

std::string_view to_string(ReadStatus status) {
  switch (status) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kClosed: return "closed";
    case ReadStatus::kTruncated: return "truncated frame";
    case ReadStatus::kBadTag: return "unknown frame tag";
    case ReadStatus::kOversized: return "oversized frame length";
  }
  return "?";
}

ReadStatus read_frame(const Socket& sock, Frame& out) {
  char header[8];
  // First byte separately: EOF here is a clean close, EOF later is a
  // truncated frame — the distinction the robustness tests pin.
  const long first = sock.read_some(header, 1);
  if (first == 0) return ReadStatus::kClosed;
  if (first < 0) return ReadStatus::kTruncated;
  if (!sock.read_exact(header + 1, sizeof(header) - 1))
    return ReadStatus::kTruncated;
  const auto type = parse_frame_tag(get_u32_le(header));
  const std::uint32_t len = get_u32_le(header + 4);
  if (!type.has_value()) return ReadStatus::kBadTag;
  if (len > kMaxFramePayload) return ReadStatus::kOversized;
  out.type = *type;
  out.payload.resize(len);
  if (len > 0 && !sock.read_exact(out.payload.data(), len))
    return ReadStatus::kTruncated;
  return ReadStatus::kOk;
}

// ---------------------------------------------------------------------------
// key=value text
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, std::string>> parse_kv_lines(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    out.emplace_back(std::string(line.substr(0, eq)),
                     std::string(line.substr(eq + 1)));
  }
  return out;
}

std::string_view kv_get(
    const std::vector<std::pair<std::string, std::string>>& kv,
    std::string_view key, std::string_view fallback) {
  for (const auto& [k, v] : kv)
    if (k == key) return v;
  return fallback;
}

void append_kv(std::string& out, std::string_view key,
               std::string_view value) {
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

void append_kv(std::string& out, std::string_view key, double value) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  append_kv(out, key, std::string_view(buf, res.ptr));
}

void append_kv(std::string& out, std::string_view key, std::uint64_t value) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  append_kv(out, key, std::string_view(buf, res.ptr));
}

// ---------------------------------------------------------------------------
// Job envelope
// ---------------------------------------------------------------------------

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

// Next line of `text` starting at `pos`; advances pos past the newline.
std::string_view next_line(std::string_view text, std::size_t& pos) {
  std::size_t end = text.find('\n', pos);
  if (end == std::string_view::npos) end = text.size();
  const std::string_view line = text.substr(pos, end - pos);
  pos = end < text.size() ? end + 1 : text.size();
  return line;
}

double parse_double_value(std::string_view key, std::string_view value) {
  double v = 0.0;
  const auto res =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size())
    throw EnvelopeError("bad numeric value for '" + std::string(key) +
                        "': '" + std::string(value) + "'");
  return v;
}

std::int64_t parse_int_value(std::string_view key, std::string_view value) {
  std::int64_t v = 0;
  const auto res =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size())
    throw EnvelopeError("bad integer value for '" + std::string(key) +
                        "': '" + std::string(value) + "'");
  return v;
}

std::uint64_t parse_u64_value(std::string_view key, std::string_view value) {
  std::uint64_t v = 0;
  const auto res =
      std::from_chars(value.data(), value.data() + value.size(), v);
  if (res.ec != std::errc{} || res.ptr != value.data() + value.size())
    throw EnvelopeError("bad unsigned value for '" + std::string(key) +
                        "': '" + std::string(value) + "'");
  return v;
}

// `[d d d]` — a bracketed, space-separated double list (the serializer's
// list idiom). An empty list `[]` is allowed.
std::vector<double> parse_double_list_value(std::string_view key,
                                            std::string_view value) {
  if (value.size() < 2 || value.front() != '[' || value.back() != ']')
    throw EnvelopeError("expected bracketed list for '" + std::string(key) +
                        "', got '" + std::string(value) + "'");
  std::vector<double> out;
  std::string_view body = value.substr(1, value.size() - 2);
  std::size_t pos = 0;
  while (pos < body.size()) {
    while (pos < body.size() && body[pos] == ' ') ++pos;
    if (pos >= body.size()) break;
    std::size_t end = body.find(' ', pos);
    if (end == std::string_view::npos) end = body.size();
    out.push_back(parse_double_value(key, body.substr(pos, end - pos)));
    pos = end;
  }
  return out;
}

std::string validated_strategy(std::string_view value) {
  std::string name(value);
  if (!opt::search::known_strategy(name))
    throw EnvelopeError("unknown optimizer strategy '" + name + "'");
  return name;
}

core::EngineKind validated_engine(std::string_view value) {
  const auto kind = core::parse_engine_kind(value);
  if (!kind.has_value())
    throw EnvelopeError("unknown engine '" + std::string(value) + "'");
  return *kind;
}

// Parses one `name {` ... `}` header section, dispatching each key=value
// line to `apply`. Unknown keys are skipped by the handlers themselves
// (forward compatibility, matching the serializer's rule).
template <class Apply>
void parse_section(std::string_view payload, std::size_t& pos,
                   std::string_view name, Apply&& apply) {
  for (;;) {
    if (pos >= payload.size())
      throw EnvelopeError("unterminated '" + std::string(name) +
                          "' section (missing '}')");
    const std::string_view line = trim(next_line(payload, pos));
    if (line == "}") return;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0)
      throw EnvelopeError("expected key=value in '" + std::string(name) +
                          "' section, got '" + std::string(line) + "'");
    apply(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
  }
}

}  // namespace

JobEnvelope parse_envelope(std::string_view payload) {
  JobEnvelope env;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t line_start = pos;
    if (pos >= payload.size()) break;
    const std::string_view line = trim(next_line(payload, pos));
    if (line.empty()) continue;
    if (line == "job {") {
      parse_section(payload, pos, "job",
                    [&](std::string_view key, std::string_view value) {
                      if (key == "timeout_ms")
                        env.timeout = std::chrono::milliseconds(
                            parse_int_value(key, value));
                    });
      continue;
    }
    if (line == "optimizer {") {
      env.has_optimizer = true;
      parse_section(
          payload, pos, "optimizer",
          [&](std::string_view key, std::string_view value) {
            OptimizerSpec& o = env.optimizer;
            if (key == "strategy") {
              o.strategy = validated_strategy(value);
            } else if (key == "noise_budget") {
              o.noise_budget = parse_double_value(key, value);
            } else if (key == "min_bits") {
              o.min_bits = static_cast<int>(parse_int_value(key, value));
            } else if (key == "max_bits") {
              o.max_bits = static_cast<int>(parse_int_value(key, value));
            } else if (key == "n_psd") {
              o.n_psd =
                  static_cast<std::size_t>(parse_int_value(key, value));
            } else if (key == "engine") {
              o.engine = validated_engine(value);
            } else if (key == "seed") {
              o.seed = parse_u64_value(key, value);
            }
          });
      continue;
    }
    if (line == "sweep {") {
      env.has_sweep = true;
      parse_section(
          payload, pos, "sweep",
          [&](std::string_view key, std::string_view value) {
            SweepSpec& s = env.sweep;
            if (key == "strategy") {
              s.strategy = validated_strategy(value);
            } else if (key == "budgets") {
              s.budgets = parse_double_list_value(key, value);
            } else if (key == "budget_lo") {
              s.budget_lo = parse_double_value(key, value);
            } else if (key == "budget_hi") {
              s.budget_hi = parse_double_value(key, value);
            } else if (key == "points") {
              s.points =
                  static_cast<std::size_t>(parse_int_value(key, value));
            } else if (key == "min_bits") {
              s.min_bits = static_cast<int>(parse_int_value(key, value));
            } else if (key == "max_bits") {
              s.max_bits = static_cast<int>(parse_int_value(key, value));
            } else if (key == "n_psd") {
              s.n_psd =
                  static_cast<std::size_t>(parse_int_value(key, value));
            } else if (key == "engine") {
              s.engine = validated_engine(value);
            } else if (key == "seed") {
              s.seed = parse_u64_value(key, value);
            }
          });
      continue;
    }
    // Not a header section: the document starts at this line.
    env.document = payload.substr(line_start);
    return env;
  }
  env.document = std::string_view();
  return env;
}

std::string encode_envelope_prefix(std::chrono::milliseconds timeout,
                                   const OptimizerSpec* optimizer) {
  std::string out;
  if (timeout.count() > 0) {
    out += "job {\n";
    out += "  ";
    append_kv(out, "timeout_ms",
              static_cast<std::uint64_t>(timeout.count()));
    out += "}\n";
  }
  if (optimizer != nullptr) {
    out += "optimizer {\n";
    const auto field = [&](std::string_view key, auto value) {
      out += "  ";
      append_kv(out, key, value);
    };
    field("strategy", std::string_view(optimizer->strategy));
    field("noise_budget", optimizer->noise_budget);
    field("min_bits", static_cast<std::uint64_t>(optimizer->min_bits));
    field("max_bits", static_cast<std::uint64_t>(optimizer->max_bits));
    if (optimizer->n_psd > 0)
      field("n_psd", static_cast<std::uint64_t>(optimizer->n_psd));
    field("engine", core::to_string(optimizer->engine));
    if (optimizer->seed != 0)
      field("seed", optimizer->seed);
    out += "}\n";
  }
  return out;
}

std::string encode_sweep_section(const SweepSpec& spec) {
  std::string out = "sweep {\n";
  const auto field = [&](std::string_view key, auto value) {
    out += "  ";
    append_kv(out, key, value);
  };
  field("strategy", std::string_view(spec.strategy));
  if (!spec.budgets.empty()) {
    std::string list = "[";
    for (std::size_t i = 0; i < spec.budgets.size(); ++i) {
      if (i > 0) list += ' ';
      char buf[64];
      const auto res =
          std::to_chars(buf, buf + sizeof(buf), spec.budgets[i]);
      list.append(buf, res.ptr);
    }
    list += ']';
    field("budgets", std::string_view(list));
  } else {
    field("budget_lo", spec.budget_lo);
    field("budget_hi", spec.budget_hi);
    field("points", static_cast<std::uint64_t>(spec.points));
  }
  field("min_bits", static_cast<std::uint64_t>(spec.min_bits));
  field("max_bits", static_cast<std::uint64_t>(spec.max_bits));
  if (spec.n_psd > 0)
    field("n_psd", static_cast<std::uint64_t>(spec.n_psd));
  field("engine", core::to_string(spec.engine));
  if (spec.seed != 0)
    field("seed", spec.seed);
  out += "}\n";
  return out;
}

std::string encode_envelope_prefix(std::chrono::milliseconds timeout,
                                   const SweepSpec& sweep) {
  std::string out;
  if (timeout.count() > 0) {
    out += "job {\n";
    out += "  ";
    append_kv(out, "timeout_ms",
              static_cast<std::uint64_t>(timeout.count()));
    out += "}\n";
  }
  out += encode_sweep_section(sweep);
  return out;
}

}  // namespace psdacc::serve
