/// @file server.hpp
/// The psdacc-serve daemon core: a loopback TCP server that accepts
/// evaluation, word-length-optimization, and Pareto-sweep jobs as
/// serialized scenario documents (the `psdacc-sfg v1` format — the golden
/// corpus is literally a request corpus) and answers with `expect`-style
/// per-engine results, optimizer assignments, or dominance-filtered
/// fronts (one PROG frame per completed budget point).
///
/// Request path, outermost tier first:
///  1. **ResultCache** — a content-hash lookup over the canonical
///     (graph + config) document. A hit replays the stored payload bytes:
///     no parse-again, no engine, bit-identical response.
///  2. **JobQueue admission** — a bounded backlog; a full queue answers
///     REJECTED_BUSY immediately (load shedding, not latency hiding).
///  3. **Execution** — engines exactly as sfg::evaluate_expected runs them
///     (so responses match the golden corpus to the same bits), or a
///     WordlengthOptimizer whose cancel_check enforces the job deadline
///     and streams one PROG frame per accepted descent step.
///
/// Per-job wall-clock timeouts are cooperative: checked before a job
/// starts, between engines of an evaluation, and between optimizer probe
/// rounds — an expired job answers TIMEOUT (with partial state for
/// optimizer jobs) and the queue moves on. See docs/SERVING.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "serve/job_queue.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/stats.hpp"
#include "sfg/serialize.hpp"

namespace psdacc::serve {

struct ServerConfig {
  /// Bind port on 127.0.0.1; 0 picks an ephemeral port (see
  /// Server::port()).
  std::uint16_t port = 0;
  /// Concurrent job executors. 1 keeps every result trivially ordered;
  /// results are deterministic for any value (jobs are independent).
  std::size_t job_workers = 1;
  /// Max jobs *waiting* beyond the executors; 0 = admit only what can
  /// start immediately. Full queue => REJECTED_BUSY.
  std::size_t max_queue_depth = 64;
  /// runtime::ThreadPool workers shared by optimizer jobs' probe rounds.
  std::size_t pool_workers = 1;
  /// ResultCache entries (evaluation jobs only); 0 disables caching.
  std::size_t cache_capacity = 256;
  /// Deadline applied when a job requests none; zero = unlimited.
  std::chrono::milliseconds default_timeout{0};
  /// Upper clamp on any job's requested timeout; zero = no clamp.
  std::chrono::milliseconds max_timeout{0};
};

class Server {
 public:
  explicit Server(ServerConfig cfg = {});
  /// Stops (drain semantics, see stop()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts accepting. Throws std::runtime_error on bind
  /// failure.
  void start();
  /// The bound port (valid after start()).
  std::uint16_t port() const;

  /// Graceful shutdown: stop accepting connections, run every admitted
  /// job to completion and deliver its response (in-flight-job drain),
  /// then close remaining connections. Idempotent.
  void stop();

  /// Snapshot of the lifetime counters (also served as the STTS frame).
  ServerStats stats() const;

 private:
  struct Connection {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection& conn);
  void handle_eval(const Socket& sock, const std::string& payload);
  void handle_opt(const Socket& sock, const std::string& payload);
  void handle_sweep(const Socket& sock, const std::string& payload);
  void run_eval_job(const Socket& sock, const sfg::Scenario& scenario,
                    const ContentHash& hash,
                    std::optional<std::chrono::steady_clock::time_point>
                        deadline,
                    std::chrono::steady_clock::time_point submitted);
  void run_opt_job(const Socket& sock, sfg::Scenario& scenario,
                   const OptimizerSpec& spec,
                   std::optional<std::chrono::steady_clock::time_point>
                       deadline,
                   std::chrono::steady_clock::time_point submitted);
  void run_sweep_job(const Socket& sock, sfg::Scenario& scenario,
                     const SweepSpec& spec,
                     const std::vector<double>& budgets,
                     const ContentHash& hash,
                     std::optional<std::chrono::steady_clock::time_point>
                         deadline,
                     std::chrono::steady_clock::time_point submitted);
  /// Folds one job's optimizer probe counters into the lifetime totals.
  void record_probe_counters(const core::AccuracyEngine::EvalCounters& c);
  bool send_error(const Socket& sock, std::string_view code,
                  std::string_view message, std::string_view extra = {});
  std::optional<std::chrono::steady_clock::time_point> deadline_for(
      std::chrono::milliseconds requested) const;
  void record_latency(std::chrono::steady_clock::time_point submitted);
  /// Joins finished connection threads; with @p all, joins every one.
  void reap_connections(bool all);

  ServerConfig cfg_;
  std::unique_ptr<ListenSocket> listener_;
  std::unique_ptr<runtime::ThreadPool> pool_;
  std::unique_ptr<JobQueue> queue_;
  ResultCache cache_;
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex stats_mutex_;
  std::uint64_t connections_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t jobs_accepted_ = 0;
  std::uint64_t jobs_rejected_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_timeout_ = 0;
  std::uint64_t opt_probes_full_ = 0;
  std::uint64_t opt_probes_cached_ = 0;
  std::uint64_t opt_probes_delta_ = 0;
  LatencyHistogram latency_;
};

}  // namespace psdacc::serve
