/// @file protocol.hpp
/// The psdacc-serve wire protocol: length-prefixed frames whose payloads
/// are text — either a serialized scenario document (job submissions, so
/// the golden corpus doubles as a request corpus) or flat `key=value`
/// lines (results, errors, progress, stats).
///
/// ## Frame grammar
///
///     frame   := tag len payload
///     tag     := 4 ASCII bytes (frame type, e.g. "EVAL")
///     len     := u32 little-endian payload byte count (<= kMaxFramePayload)
///     payload := len bytes
///
/// An oversized len or an unknown tag is a protocol error: the server
/// replies with one ERRF frame (code=PROTOCOL) and closes. A connection
/// that ends mid-frame is a truncated frame — dropped without reply.
///
/// ## Job payloads
///
/// Submission payloads are a sequence of optional header sections followed
/// by the scenario document (whose first line is the `psdacc-sfg v1`
/// version header):
///
///     job {
///       timeout_ms=500
///     }
///     optimizer {
///       strategy=greedy
///       noise_budget=1e-06
///       ...
///     }
///     psdacc-sfg v1
///     graph { ... }
///
/// Unknown section keys are skipped (the serializer's forward-compat
/// rule); malformed values are a BAD_REQUEST error. See docs/SERVING.md
/// for the full protocol description and the job lifecycle.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/accuracy_engine.hpp"
#include "serve/net.hpp"

namespace psdacc::serve {

/// Hard ceiling on one frame's payload. Large enough for a 10^5-node
/// serialized graph, small enough that a garbage length prefix cannot make
/// the server allocate gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint32_t {
  // client -> server
  kSubmitEval,   ///< "EVAL": [job header +] scenario document
  kSubmitOpt,    ///< "OPTJ": [job header +] optimizer header + document
  kSubmitSweep,  ///< "PARJ": [job header +] sweep header + document
  kStatsQuery,   ///< "STAT": empty payload
  // server -> client
  kResult,      ///< "RSLT": key=value result lines
  kProgress,    ///< "PROG": key=value lines, one frame per optimizer step
  kError,       ///< "ERRF": key=value lines (code, message, ...)
  kStatsReply,  ///< "STTS": key=value stats text
};

/// The frame's 4-byte wire tag as a host-order u32 (first byte lowest).
std::uint32_t frame_tag(FrameType type);
/// Inverse of frame_tag; empty on unknown tags.
std::optional<FrameType> parse_frame_tag(std::uint32_t tag);

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Wire encoding of one frame (tag + LE length + payload).
std::string encode_frame(FrameType type, std::string_view payload);
/// Writes one frame; false when the peer is gone.
bool write_frame(const Socket& sock, FrameType type,
                 std::string_view payload);

/// Outcome of reading one frame off a socket.
enum class ReadStatus {
  kOk,         ///< frame read into the out-param
  kClosed,     ///< clean EOF at a frame boundary
  kTruncated,  ///< EOF inside a frame header or payload
  kBadTag,     ///< unknown 4-byte tag
  kOversized,  ///< length prefix exceeds kMaxFramePayload
};
std::string_view to_string(ReadStatus status);

/// Blocking read of the next frame. On kBadTag/kOversized the header has
/// been consumed but the payload has not — the connection is unusable and
/// should be closed after an error reply.
ReadStatus read_frame(const Socket& sock, Frame& out);

// ---------------------------------------------------------------------------
// key=value payload text
// ---------------------------------------------------------------------------

/// Parses flat `key=value` lines (LF-separated; value is everything after
/// the first '='). Lines without '=' and empty lines are skipped.
std::vector<std::pair<std::string, std::string>> parse_kv_lines(
    std::string_view text);
/// First value for @p key, or @p fallback.
std::string_view kv_get(
    const std::vector<std::pair<std::string, std::string>>& kv,
    std::string_view key, std::string_view fallback = "");

/// Appends one `key=value` line. Doubles go through shortest round-trip
/// formatting, so a cached response replayed later is byte-identical to
/// the originally computed one.
void append_kv(std::string& out, std::string_view key,
               std::string_view value);
void append_kv(std::string& out, std::string_view key, double value);
void append_kv(std::string& out, std::string_view key, std::uint64_t value);

/// Stable machine-readable `code=` values carried by ERRF frames.
namespace error_code {
inline constexpr std::string_view kProtocol = "PROTOCOL";
inline constexpr std::string_view kParse = "PARSE";
inline constexpr std::string_view kBadRequest = "BAD_REQUEST";
inline constexpr std::string_view kRejectedBusy = "REJECTED_BUSY";
inline constexpr std::string_view kTimeout = "TIMEOUT";
inline constexpr std::string_view kUnsupported = "UNSUPPORTED";
inline constexpr std::string_view kInternal = "INTERNAL";
}  // namespace error_code

// ---------------------------------------------------------------------------
// Job envelope: the header sections in front of the scenario document
// ---------------------------------------------------------------------------

/// Optimizer job parameters (the `optimizer { ... }` header section).
struct OptimizerSpec {
  /// opt::search::known_strategy vocabulary:
  /// uniform | greedy | min_plus_one | anneal | tabu | bnb.
  std::string strategy = "greedy";
  double noise_budget = 1e-6;
  int min_bits = 2;
  int max_bits = 24;
  /// Spectral resolution for the probes; 0 = the scenario config's n_psd.
  std::size_t n_psd = 0;
  core::EngineKind engine = core::EngineKind::kPsd;
  /// Master RNG seed for the annealer; carried (and ignored) by the
  /// deterministic strategies. Emitted only when nonzero, so pinned
  /// pre-seed request bytes are unchanged.
  std::uint64_t seed = 0;
};

/// Pareto-sweep job parameters (the `sweep { ... }` header section of a
/// PARJ frame): one optimizer run per noise budget, dominance-filtered
/// into a front. An explicit `budgets=[...]` list overrides the
/// log-spaced ladder (`budget_lo`/`budget_hi`/`points`).
struct SweepSpec {
  std::string strategy = "greedy";  ///< same vocabulary as OptimizerSpec
  std::vector<double> budgets;      ///< explicit ladder; empty = log-spaced
  double budget_lo = 1e-10;
  double budget_hi = 1e-4;
  std::size_t points = 8;
  int min_bits = 2;
  int max_bits = 24;
  /// Spectral resolution for the probes; 0 = the scenario config's n_psd.
  std::size_t n_psd = 0;
  core::EngineKind engine = core::EngineKind::kPsd;
  std::uint64_t seed = 0;  ///< annealer master seed (see OptimizerSpec)
};

/// A submission payload split into its parts.
struct JobEnvelope {
  /// Requested wall-clock budget; zero means "server default".
  std::chrono::milliseconds timeout{0};
  OptimizerSpec optimizer;
  bool has_optimizer = false;
  SweepSpec sweep;
  bool has_sweep = false;
  /// The scenario document (everything from `psdacc-sfg` on), viewing into
  /// the payload passed to parse_envelope.
  std::string_view document;
};

/// Malformed envelope header (bad number, unterminated section, ...).
class EnvelopeError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Splits a submission payload into header sections + document.
/// Unknown keys inside `job`/`optimizer` sections are skipped.
/// @throws EnvelopeError on malformed headers
JobEnvelope parse_envelope(std::string_view payload);

/// Client-side encoding: the header sections to prepend to a document.
/// Empty when nothing deviates from the defaults and @p optimizer is null.
std::string encode_envelope_prefix(std::chrono::milliseconds timeout,
                                   const OptimizerSpec* optimizer);
/// PARJ variant: job header (when a timeout is set) + sweep section.
std::string encode_envelope_prefix(std::chrono::milliseconds timeout,
                                   const SweepSpec& sweep);

/// The canonical `sweep { ... }` section text for @p spec — the exact
/// bytes encode_envelope_prefix emits and parse_envelope reads back, and
/// the server's sweep-cache key material (hashed together with the
/// scenario's content hash, so two PARJ submissions collide only when
/// both the sweep parameters and the evaluation are interchangeable).
std::string encode_sweep_section(const SweepSpec& spec);

}  // namespace psdacc::serve
