#include "serve/stats.hpp"

#include <bit>
#include <cmath>

#include "serve/protocol.hpp"

namespace psdacc::serve {

void LatencyHistogram::record_seconds(double seconds) {
  const double us = seconds * 1e6;
  std::size_t bucket = 0;
  if (us >= 1.0) {
    const auto v = static_cast<std::uint64_t>(us);
    bucket = static_cast<std::size_t>(std::bit_width(v) - 1);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++buckets_[bucket];
  ++count_;
}

double LatencyHistogram::quantile_us(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile, 1-based; ceil so p100 is the max.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank && buckets_[i] > 0)
      return std::ldexp(1.0, static_cast<int>(i) + 1);  // upper bound 2^(i+1)
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets));
}

std::string ServerStats::to_text() const {
  std::string out;
  append_kv(out, "connections", connections);
  append_kv(out, "frames", frames);
  append_kv(out, "jobs_accepted", jobs_accepted);
  append_kv(out, "jobs_rejected", jobs_rejected);
  append_kv(out, "jobs_completed", jobs_completed);
  append_kv(out, "jobs_failed", jobs_failed);
  append_kv(out, "jobs_timeout", jobs_timeout);
  append_kv(out, "jobs_running", jobs_running);
  append_kv(out, "cache_hits", cache_hits);
  append_kv(out, "cache_misses", cache_misses);
  append_kv(out, "cache_size", cache_size);
  append_kv(out, "opt_probes_full", opt_probes_full);
  append_kv(out, "opt_probes_cached", opt_probes_cached);
  append_kv(out, "opt_probes_delta", opt_probes_delta);
  append_kv(out, "latency_count", latency_count);
  append_kv(out, "latency_p50_us", latency_p50_us);
  append_kv(out, "latency_p95_us", latency_p95_us);
  return out;
}

}  // namespace psdacc::serve
