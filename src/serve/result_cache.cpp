#include "serve/result_cache.hpp"

namespace psdacc::serve {

std::optional<std::string> ResultCache::lookup(const ContentHash& key) {
  if (capacity_ == 0) return std::nullopt;
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->second;
}

void ResultCache::insert(const ContentHash& key, std::string payload) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(payload));
  map_.emplace(key, lru_.begin());
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::size_t ResultCache::size() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

std::uint64_t ResultCache::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  std::lock_guard lock(mutex_);
  return misses_;
}

}  // namespace psdacc::serve
